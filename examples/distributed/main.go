// Distributed: run the real Orchestrator / Worker / CLI measurement plane
// of §4.2 over loopback TCP. Eight workers play the anycast sites; the
// orchestrator streams targets at a configured rate with per-worker
// offsets; workers probe the simulated Internet, match echoed probe
// identities, and stream results back; the CLI aggregates and classifies.
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	laces "github.com/laces-project/laces"
	"github.com/laces-project/laces/internal/client"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/orchestrator"
	"github.com/laces-project/laces/internal/wire"
	"github.com/laces-project/laces/internal/worker"
)

var siteCities = []string{
	"Amsterdam", "New York", "Tokyo", "Sydney",
	"Sao Paulo", "Johannesburg", "Frankfurt", "Singapore",
}

func main() {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		log.Fatal(err)
	}
	deployment, err := world.NewDeployment("example", siteCities, netsim.PolicyUnmodified)
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Orchestrator on an ephemeral loopback port.
	orch, err := orchestrator.New(orchestrator.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	go orch.Serve(ctx)
	fmt.Println("orchestrator listening on", orch.Addr())

	// Eight workers, one per site. Each computes deterministically which
	// replies arrive at its own site — including replies to other
	// workers' probes, the essence of anycast-based measurement.
	for i, city := range siteCities {
		wk, err := worker.New(worker.Config{
			Name:         fmt.Sprintf("%s-%02d", city, i),
			Orchestrator: orch.Addr(),
			NewProber: func(self int) (worker.Prober, error) {
				return worker.NewSimProber(world, deployment, self)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		go wk.Run(ctx)
	}
	for orch.NumWorkers() < len(siteCities) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("%d workers connected\n\n", orch.NumWorkers())

	// The CLI: one ICMP measurement over the first 800 hitlist targets.
	hl := laces.HitlistForDay(world, false, 0)
	var targets []netip.Addr
	for _, e := range hl.Entries[:800] {
		targets = append(targets, e.Addr)
	}
	cli := &client.Client{Addr: orch.Addr()}
	def := wire.MeasurementDef{
		ID:       1,
		Protocol: "ICMP",
		OffsetMS: 1000,
		Rate:     100000,
	}
	start := time.Now()
	outcome, err := cli.Run(ctx, def, targets, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measurement complete in %.2fs: %d results from %d workers\n",
		time.Since(start).Seconds(), len(outcome.Results), outcome.Workers)

	candidates := outcome.Candidates()
	fmt.Printf("anycast candidates (replies at >= 2 sites): %d\n", len(candidates))
	for i, c := range candidates {
		sets := outcome.ReceiverSets()
		fmt.Printf("  %-18s seen at %d sites\n", c, len(sets[c]))
		if i == 9 {
			fmt.Printf("  ... and %d more\n", len(candidates)-10)
			break
		}
	}
}
