// Query: the longitudinal query engine end to end — archive a 120-day
// census run, build the columnar prefix-timeline index in one
// streaming pass, then answer the paper's longitudinal questions
// (per-prefix timelines, onset/offset/flap/churn events, stability
// scores, daily churn series) from the index alone: not a single
// archived day is decoded on the query path, and the attached
// archive's decode counter proves it.
package main

import (
	"fmt"
	"log"
	"os"

	laces "github.com/laces-project/laces"
)

func main() {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "laces-query-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Produce: 120 daily censuses streamed into the delta store.
	const days = 120
	w, err := laces.CreateArchive(dir, laces.CensusArchiveOptions{SnapshotEvery: 7})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := laces.RunLongitudinalInto(world, days, 1, w); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// Index: one streaming pass over the archive.
	res, err := laces.BuildCensusIndex(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d prefix timelines over %d day-files into %d bytes (%.1f%% of the archive)\n\n",
		res.Prefixes, res.Days, res.Bytes, 100*float64(res.Bytes)/float64(res.SourceBytes))

	ix, err := laces.OpenCensusIndex(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	// Aggregate series: daily anycast counts and churn rate.
	series, err := ix.Series("ipv4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("last week of the daily series:")
	for _, pt := range series[len(series)-7:] {
		fmt.Printf("  day %3d  G=%-4d M=%-4d  +%d/−%d prefixes (churn %.1f%%)\n",
			pt.Day, pt.GCDConfirmed, pt.AnycastOnly, pt.Added, pt.Removed, 100*pt.ChurnRate)
	}

	// Events: the longitudinal incident stream with hysteresis.
	events, err := laces.QueryEvents(ix, "ipv4", nil, 0, -1)
	if err != nil {
		log.Fatal(err)
	}
	perKind := map[laces.TimelineEventKind]int{}
	for _, e := range events {
		perKind[e.Kind]++
	}
	fmt.Printf("\n%d events across %d days:", len(events), days)
	for _, kind := range []laces.TimelineEventKind{"onset", "offset", "flap", "site-churn", "geo-shift"} {
		fmt.Printf(" %s=%d", kind, perKind[kind])
	}
	fmt.Println()

	// Timeline + stability for the most eventful prefix.
	busiest, busiestN := ix.Prefixes("ipv4")[0], 0 // fallback: a fully stable census has no events
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Prefix]++
		if counts[e.Prefix] > busiestN {
			busiest, busiestN = e.Prefix, counts[e.Prefix]
		}
	}
	tl, err := laces.QueryTimeline(ix, "ipv4", busiest)
	if err != nil {
		log.Fatal(err)
	}
	st, err := laces.QueryStability(ix, "ipv4", busiest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbusiest prefix %s (AS%d): present %d/%d days, %d events, stability %.4f\n",
		tl.Prefix, tl.OriginASN, tl.PresentDays(), len(tl.Days), busiestN, st.Score)
	strip := make([]byte, len(tl.Days))
	for i := range tl.Days {
		switch {
		case !tl.Present[i]:
			strip[i] = '.'
		case tl.GCDAnycast[i]:
			strip[i] = 'G'
		case tl.AnycastBased[i]:
			strip[i] = 'M'
		default:
			strip[i] = '+'
		}
	}
	fmt.Printf("  %s\n", strip)

	// The index-only guarantee, demonstrated: every answer above came
	// from the columnar index, not from decoding archived days.
	fmt.Printf("\narchived documents decoded on the query path: %d\n", ix.Archive().Decodes())
}
