// Trigger: the §9 future-work extension — watch a BGP route-collector
// feed and launch targeted GCD measurements the moment a prefix's routing
// changes, instead of waiting for the next daily census. This is what
// catches the paper's single-day events (§7 found 191 prefixes anycast for
// exactly one day: suspected misconfigurations or hijacks that a daily
// census at coarser granularity would miss entirely).
package main

import (
	"fmt"
	"log"
	"sort"

	laces "github.com/laces-project/laces"
	"github.com/laces-project/laces/internal/bgpmon"
	"github.com/laces-project/laces/internal/platform"
)

func main() {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Find the census days on which hijack-style one-day events occur.
	eventDays := map[int]bool{}
	for i := range world.TargetsV4 {
		tg := &world.TargetsV4[i]
		if tg.Operator < 0 && len(tg.TempWindows) == 1 && tg.TempWindows[0].From == tg.TempWindows[0].To {
			eventDays[tg.TempWindows[0].From] = true
		}
	}
	fmt.Printf("ground truth: one-day anycast events on %d distinct days\n\n", len(eventDays))

	// Walk the event days in calendar order so the report reads
	// chronologically and is identical run to run.
	days := make([]int, 0, len(eventDays))
	for day := range eventDays {
		days = append(days, day)
	}
	sort.Ints(days)

	suspected := 0
	for _, day := range days {
		feed := bgpmon.Feed(world, false, day)
		vps, err := platform.Ark(world, day, false)
		if err != nil {
			log.Fatal(err)
		}
		mon := &bgpmon.Monitor{
			World:               world,
			VPs:                 vps,
			KnownAnycastOrigins: bgpmon.KnownOperators(world),
		}
		for _, f := range mon.React(false, feed) {
			if !f.SuspectedHijack {
				continue
			}
			suspected++
			fmt.Printf("day %3d: %-18s AS%-6d turn-up confirmed at %d sites — SUSPECTED HIJACK\n",
				day, f.Event.Prefix, f.Event.Origin, f.Sites)
		}
	}
	fmt.Printf("\n%d suspected hijacks flagged by trigger-based detection\n", suspected)
	fmt.Println("(legitimate on-demand anycast from known DDoS-mitigation operators")
	fmt.Println(" triggers measurements too, but is not flagged)")

	// Contrast: a weekly-stride census would have missed these entirely.
	hist, err := laces.RunLongitudinal(world, 534, 7)
	if err != nil {
		log.Fatal(err)
	}
	caught := 0
	for id, n := range hist.DaysDetected(false) {
		tg := &world.TargetsV4[id]
		if tg.Operator < 0 && len(tg.TempWindows) == 1 &&
			tg.TempWindows[0].From == tg.TempWindows[0].To && n > 0 {
			caught++
		}
	}
	fmt.Printf("\nfor comparison, a 7-day-stride census caught %d of these events\n", caught)
}
