// Quickstart: run one daily LACeS census end to end on a small simulated
// Internet and print what the public repository would publish — the 𝒢
// (GCD-confirmed) and ℳ (anycast-based only) split, plus a few confirmed
// prefixes with their enumerated and geolocated sites.
package main

import (
	"fmt"
	"log"
	"time"

	laces "github.com/laces-project/laces"
)

func main() {
	// 1. A simulated Internet: ~10k IPv4 /24s with the full anycast
	// landscape (hypergiants, regional ccTLD deployments, temporary
	// anycast, global-BGP unicast, ...).
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 2. The measurement platform: the 32-site TANGLED anycast testbed
	// for the anycast-based stage, Ark for latency confirmation.
	deployment, err := laces.Tangled(world)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := laces.NewPipeline(world, laces.PipelineConfig{
		Deployment: deployment,
		GCDVPs:     laces.ArkVPs(world),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. One census day.
	start := time.Now()
	census, err := pipeline.RunDaily(0, false, laces.DayOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LACeS daily census, %s (day 0)\n", census.Day.Format(time.DateOnly))
	fmt.Printf("  hitlist:                %d responsive /24s\n", census.HitlistSize)
	fmt.Printf("  anycast candidates:     %d\n", len(census.Candidates()))
	fmt.Printf("  GCD-confirmed (G):      %d\n", census.CountG())
	fmt.Printf("  anycast-based only (M): %d\n", census.CountM())
	fmt.Printf("  probing cost:           %d anycast-stage + %d GCD-stage probes\n",
		census.ProbesAnycastStage, census.ProbesGCDStage)
	fmt.Printf("  wall clock:             %.2fs\n\n", time.Since(start).Seconds())

	fmt.Println("Sample of GCD-confirmed prefixes:")
	shown := 0
	for _, id := range census.G() {
		e := census.Entries[id]
		if e.GCDSites < 3 {
			continue
		}
		fmt.Printf("  %-18s AS%-6d %2d sites  %v\n", e.Prefix, e.Origin, e.GCDSites, head(e.GCDCities, 4))
		shown++
		if shown == 8 {
			break
		}
	}
}

// head returns the first n elements.
func head(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
