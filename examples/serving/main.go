// Serving: the high-traffic serving tier end to end — archive a census
// run, build the timeline index (which materializes the aggregates
// sidecar), stand up the HTTP API in-process, and drive it with the
// deterministic load generator. The run demonstrates the tier's three
// contracts: archived days answer conditional requests with a 304 and
// an immutable cache policy, /v1/events paginates with opaque cursors
// that replay byte-identically, and the loadgen report proves both
// (determinism_ok) while measuring sustained req/s and tail latency.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	laces "github.com/laces-project/laces"
)

func main() {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "laces-serving-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Produce and index a 30-day census archive.
	const days = 30
	w, err := laces.CreateArchive(dir, laces.CensusArchiveOptions{SnapshotEvery: 7})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := laces.RunLongitudinalInto(world, days, 1, w); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if _, err := laces.BuildCensusIndex(dir); err != nil {
		log.Fatal(err)
	}

	// Open the serving handles and the materialized aggregates.
	a, err := laces.OpenArchive(dir)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := laces.OpenCensusIndex(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	ag, err := laces.QueryAggregates(ix)
	if err != nil {
		log.Fatal(err)
	}
	fa := ag.Family("ipv4")
	fmt.Printf("materialized aggregates: %d days, %d prefixes, %d events, mean stability %.3f (precomputed=%v)\n",
		fa.Days, fa.Prefixes, fa.Churn.Events, fa.Stability.Mean, ix.AggregatesPrecomputed())

	// Stand up the serving tier in-process.
	dep, err := laces.Tangled(world)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := laces.NewCensusAPIServer(world, dep, laces.ArkVPs(world), nil)
	if err != nil {
		log.Fatal(err)
	}
	srv.Archive = a
	srv.Query = ix

	// Drive it: a dashboard-shaped mix, 40% conditional revalidation.
	rep, err := laces.RunLoadTest(laces.LoadConfig{
		Handler:    srv.Handler(),
		Days:       a.Days("ipv4"),
		Prefixes:   ix.Prefixes("ipv4")[:8],
		Requests:   2000,
		Workers:    4,
		Seed:       1,
		Revalidate: 0.4,
		PageSize:   50,
		Duration:   time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loadgen: %d requests at %.0f req/s — p50 %.3fms p95 %.3fms p99 %.3fms\n",
		rep.Requests, rep.ReqPerSec, rep.P50Ms, rep.P95Ms, rep.P99Ms)
	fmt.Printf("caching: %.0f%% of responses were 304 revalidations; %d errors\n",
		100*rep.NotModifiedRate, rep.Errors)
	fmt.Printf("determinism probe (stable ETags, reproducible pagination): ok=%v\n", rep.DeterminismOK)
	if !rep.DeterminismOK || rep.Errors > 0 {
		log.Fatalf("serving-tier contract violated: %s", rep.DeterminismNote)
	}
}
