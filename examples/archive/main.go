// Archive: the longitudinal census store end to end — run a multi-day
// census streaming into the append-only delta-encoded archive, then
// consume it the way the paper's public repository is consumed: verify
// integrity, inspect the storage ledger, replay a day range, and diff
// two days, all without ever holding more than a couple of documents in
// memory.
package main

import (
	"fmt"
	"log"
	"os"

	laces "github.com/laces-project/laces"
)

func main() {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "laces-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Producer side: a 10-day census streamed straight to disk. The
	// runner never retains a finished day — History carries summaries,
	// the archive carries the documents.
	w, err := laces.CreateArchive(dir, laces.CensusArchiveOptions{SnapshotEvery: 7})
	if err != nil {
		log.Fatal(err)
	}
	history, err := laces.RunLongitudinalInto(world, 10, 1, w)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d runs into %s\n\n", len(history.Summaries(false)), dir)

	// Consumer side.
	a, err := laces.OpenArchive(dir)
	if err != nil {
		log.Fatal(err)
	}

	res, err := a.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrity: %d days reproduce their published JSON byte-for-byte\n", res.Days)

	for _, st := range a.Stats() {
		fmt.Printf("storage (%s): %d snapshots + %d deltas, %d B vs %d B full JSON (%.0f%%)\n",
			st.Family, st.Snapshots, st.Deltas, st.StoredBytes, st.FullBytes, 100*st.Ratio())
	}

	// Replay a range: O(1) documents in memory however long the span.
	fmt.Println("\nreplay (ipv4):")
	err = a.Range("ipv4", 0, -1, func(day int, doc *laces.CensusDocument) error {
		fmt.Printf("  day %2d  %s  G=%-4d M=%-4d probes=%d\n",
			day, doc.Date, doc.GCount, doc.MCount, doc.ProbesTotal())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Day-over-day diff straight from the store.
	oldDoc, err := a.Document("ipv4", 0)
	if err != nil {
		log.Fatal(err)
	}
	newDoc, err := a.Document("ipv4", 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := laces.DiffCensus(oldDoc, newDoc).Render(os.Stdout, 3); err != nil {
		log.Fatal(err)
	}
}
