// Globalbgp: the §5.1.3 investigation as a runnable program. Most of the
// census's ℳ set (anycast candidates that GCD calls unicast) comes from
// globally announced prefixes that route internally to a single server —
// the paper confirmed this with traceroute ("we confirm probes ingressing
// at distinct PoPs") and named publishing global BGP in the census as
// future work. This example traceroutes one such prefix from dispersed
// vantage points, prints the classic hop listing, and shows the combined
// evidence that earns the census GlobalBGP flag.
package main

import (
	"fmt"
	"log"
	"sort"

	laces "github.com/laces-project/laces"
	"github.com/laces-project/laces/internal/gcdmeas"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/traceroute"
)

func main() {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Pick a Microsoft-style target: globally announced, internally
	// unicast (netsim.GlobalUnicast is the generator's ground truth; the
	// measurement side below never consults it).
	var target *netsim.Target
	for i := range world.TargetsV4 {
		tg := &world.TargetsV4[i]
		if tg.Kind == netsim.GlobalUnicast && tg.Responsive[packet.ICMP] {
			target = tg
			break
		}
	}
	if target == nil {
		log.Fatal("no global-unicast prefix in the world")
	}
	fmt.Printf("target: %s (AS%d)\n\n", target.Prefix, target.Origin)

	at := netsim.DayTime(120)
	sources := []string{"Amsterdam", "Tokyo", "Los Angeles", "Sao Paulo", "Sydney", "Johannesburg"}
	var vps []netsim.VP
	for i, city := range sources {
		vp, err := world.NewVP(fmt.Sprintf("vp-%02d", i), city, 0)
		if err != nil {
			log.Fatal(err)
		}
		vps = append(vps, vp)
	}

	// Step 1: the raw evidence — two traceroutes entering the operator's
	// network at different PoPs yet ending at the same server.
	for _, vp := range vps[:2] {
		p, err := traceroute.Run(world, vp, target, traceroute.Options{At: at})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("traceroute to %s from %s:\n", target.Addr, vp.Name)
		for _, h := range p.Hops {
			switch {
			case h.Router == "":
				fmt.Printf("  %2d  *\n", h.TTL)
			case h.PoP:
				fmt.Printf("  %2d  %-42s %7.2f ms   ← ingress PoP (%s)\n",
					h.TTL, h.Router, float64(h.RTT.Microseconds())/1000, world.CityAt(h.CityIdx).Name)
			default:
				fmt.Printf("  %2d  %-42s %7.2f ms\n",
					h.TTL, h.Router, float64(h.RTT.Microseconds())/1000)
			}
		}
		fmt.Println()
	}

	// Step 2: the aggregate fan-out across all vantage points.
	fan, err := traceroute.Measure(world, vps, target, traceroute.Options{At: at})
	if err != nil {
		log.Fatal(err)
	}
	var ingress []string
	for city := range fan.IngressCities {
		ingress = append(ingress, world.CityAt(city).Name)
	}
	sort.Strings(ingress)
	fmt.Printf("ingress PoPs observed: %v\n", ingress)
	var responders []string
	for city := range fan.ServerCities {
		responders = append(responders, world.CityAt(city).Name)
	}
	sort.Strings(responders)
	for _, name := range responders {
		fmt.Printf("final responder:       %s (one server for every vantage point)\n", name)
	}

	// Step 3: the latency view — GCD agrees the service is in one place.
	rep := gcdmeas.Run(world, []int{target.ID}, false, gcdmeas.Campaign{
		VPs: vps, Proto: packet.ICMP, At: at,
	})
	gcd := rep.Outcomes[target.ID]
	fmt.Printf("GCD verdict:           anycast=%v from %d VPs\n\n", gcd.Result.Anycast, gcd.VPs)

	// The census flag combines both: candidate at multiple measurement
	// VPs, unicast for GCD, multi-PoP ingress in traceroute.
	if fan.GlobalBGP() && !gcd.Result.Anycast {
		fmt.Println("verdict: global-BGP unicast — published with the census GlobalBGP flag")
		fmt.Println("(globally announced for fast ingress; internal routing to one server)")
	} else {
		fmt.Println("verdict: no global-BGP signature")
	}

	// Contrast: a plain unicast prefix never shows the signature.
	for i := range world.TargetsV4 {
		tg := &world.TargetsV4[i]
		if tg.Kind == netsim.Unicast && tg.Responsive[packet.ICMP] && len(tg.TempWindows) == 0 {
			f, err := traceroute.Measure(world, vps, tg, traceroute.Options{At: at})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\ncontrol (%s, plain unicast): ingress PoPs=%d → GlobalBGP=%v\n",
				tg.Prefix, len(f.IngressCities), f.GlobalBGP())
			break
		}
	}
}
