// Geolocate: use the iGreedy latency analysis on its own — the §2.1 /
// Fig 1 workflow. We measure a Cloudflare-like CDN prefix from the Ark
// vantage points, then detect, enumerate and geolocate its sites, and
// compare against the simulator's ground truth (the §6 validation, in
// miniature).
package main

import (
	"fmt"
	"log"
	"sort"

	laces "github.com/laces-project/laces"
	"github.com/laces-project/laces/internal/gcdmeas"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/platform"
)

func main() {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Pick the widest anycast deployment in the world: a Cloudflare-like
	// CDN prefix.
	cf := world.OperatorByName("Cloudflare")
	var target *netsim.Target
	for i := range world.TargetsV4 {
		tg := &world.TargetsV4[i]
		if tg.Operator == cf && tg.Responsive[packet.ICMP] {
			target = tg
			break
		}
	}
	if target == nil {
		log.Fatal("no CDN prefix found")
	}
	fmt.Printf("target: %s (AS%d), ground truth: %d sites\n\n",
		target.Prefix, target.Origin, len(target.Sites))

	// Latency measurement from Ark (day 300: ~200 VPs), then iGreedy.
	vps, err := platform.Ark(world, 300, false)
	if err != nil {
		log.Fatal(err)
	}
	rep := gcdmeas.Run(world, []int{target.ID}, false, gcdmeas.Campaign{
		VPs:   vps,
		Proto: packet.ICMP,
		At:    netsim.DayTime(300),
	})
	out := rep.Outcomes[target.ID]
	res := out.Result

	fmt.Printf("measured from %d VPs → anycast=%v, %d sites enumerated (lower bound)\n\n",
		out.VPs, res.Anycast, res.NumSites())
	fmt.Println("enumerated sites (disc radius → geolocated city):")
	sort.Slice(res.Sites, func(i, j int) bool { return res.Sites[i].Disc.RadiusKm < res.Sites[j].Disc.RadiusKm })
	for _, s := range res.Sites {
		fmt.Printf("  %7.0f km around %-22s → %s\n", s.Disc.RadiusKm, s.VP, s.City)
	}

	// Validation against ground truth: how many geolocated cities are
	// real sites?
	truth := make(map[string]bool, len(target.Sites))
	for _, s := range target.Sites {
		truth[s.City.Name] = true
	}
	hit := 0
	for _, s := range res.Sites {
		if truth[s.City.Name] {
			hit++
		}
	}
	fmt.Printf("\nvalidation: %d of %d geolocations are true site cities (of %d actual sites)\n",
		hit, res.NumSites(), len(target.Sites))
	fmt.Println("enumeration is a lower bound: nearby sites merge into one disc (§2.1).")
}
