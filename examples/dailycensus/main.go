// Dailycensus: a compressed longitudinal census (§7) — 534 simulated days
// sampled every 14 days, with the paper's operational events injected (the
// Sep–Dec 2024 DNS tooling bug, pre-fix worker disconnections, periodic
// GCD_LS feedback reruns). Every finished day streams into the
// delta-encoded census archive (the §4.4 public repository); the program
// prints the Fig 9-style series and the Fig 10 persistence summary.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	laces "github.com/laces-project/laces"
)

func main() {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "laces-census-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sink, err := laces.CreateArchive(dir, laces.CensusArchiveOptions{})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	history, err := laces.RunLongitudinalInto(world, 534, 14, sink)
	if err != nil {
		log.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("longitudinal census: %d runs across 534 days in %.1fs\n",
		len(history.Summaries(false)), time.Since(start).Seconds())
	if a, err := laces.OpenArchive(dir); err == nil {
		for _, st := range a.Stats() {
			fmt.Printf("archived %s: %d days, %.0f%% of full-JSON size\n",
				st.Family, st.Days, 100*st.Ratio())
		}
	}
	fmt.Println()

	fmt.Println("day  hitlist  AC(ICMP)  AC(TCP)  AC(DNS)  G    M    workers  alerts")
	for _, s := range history.Summaries(false) {
		fmt.Printf("%3d  %7d  %8d  %7d  %7d  %3d  %3d  %7d  %6d\n",
			s.Day, s.Hitlist, s.AC[laces.ICMP], s.AC[laces.TCP], s.AC[laces.DNS],
			s.GTotal, s.MTotal, s.Workers, s.Alerts)
	}

	union, everyDay := history.UnionAnycast(false)
	gUnion, gEvery := history.UnionG(false)
	fmt.Printf("\npersistence (IPv4):\n")
	fmt.Printf("  prefixes ever carried as anycast: %d, on every run: %d (%.0f%%)\n",
		union, everyDay, 100*float64(everyDay)/float64(union))
	fmt.Printf("  GCD-confirmed union: %d, on every run: %d (%.0f%%)\n",
		gUnion, gEvery, 100*float64(gEvery)/float64(gUnion))
	fmt.Println("\nthe GCD set is far more stable than the anycast-based set — the")
	fmt.Println("reason LACeS publishes both with independent confidence (§5.1.6).")

	cdf := history.PersistenceCDF(false)
	fmt.Println("\ncumulative prefixes anycast for at most X runs (Fig 10):")
	for _, x := range []int{1, 2, 5, 10, 20, 30, len(history.Summaries(false))} {
		if x > len(history.Summaries(false)) {
			break
		}
		fmt.Printf("  <= %2d runs: %4.0f prefixes\n", x, cdf.P(x)*float64(cdf.Len()))
	}
}
