// Chaos: fault-injection drills over the census pipeline. Runs one clean
// daily census as the baseline, then re-runs the same day under each
// built-in chaos scenario (site outage, regional blackout, lossy transit,
// latency storm, flapping upstream, clock skew, reply throttling) and
// prints how census accuracy (precision/recall of 𝒢 and ℳ against the
// simulator's anycast oracle) degrades. Every run is deterministic: the
// same world seed and scenario always produce a byte-identical census.
package main

import (
	"fmt"
	"log"
	"os"

	laces "github.com/laces-project/laces"
)

const day = 180 // every built-in scenario's window covers this day

func main() {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		log.Fatal(err)
	}
	truth := responsiveTruth(world)

	baseline, err := runCensus(world, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clean baseline on day %d: |G|=%d |M|=%d\n\n",
		day, baseline.CountG(), baseline.CountM())

	report := &laces.ChaosReport{Baseline: score("baseline", "no faults injected", baseline, truth)}
	for _, name := range laces.ChaosScenarios() {
		sc, _ := laces.ChaosScenarioByName(name)
		if !sc.ActiveOn(day) {
			continue
		}
		census, err := runCensus(world, &sc)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		report.Scenarios = append(report.Scenarios, score(sc.Name, sc.Description, census, truth))
	}
	if err := report.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nhigh-churn scenarios inflate M (anycast-based false positives) while")
	fmt.Println("G's GCD confirmation holds precision 1.0 — the reason LACeS publishes")
	fmt.Println("both sets with independent confidence.")
}

// runCensus executes one daily census, optionally under a chaos scenario.
func runCensus(world *laces.World, sc *laces.ChaosScenario) (*laces.DailyCensus, error) {
	dep, err := laces.Tangled(world)
	if err != nil {
		return nil, err
	}
	pipe, err := laces.NewPipeline(world, laces.PipelineConfig{
		Deployment: dep,
		GCDVPs:     laces.ArkVPs(world),
	})
	if err != nil {
		return nil, err
	}
	return pipe.RunDaily(day, false, laces.DayOptions{Chaos: sc})
}

// responsiveTruth is the anycast oracle restricted to probe-able targets.
func responsiveTruth(world *laces.World) map[int]bool {
	truth := world.GroundTruthAnycast(false, day)
	targets := world.Targets(false)
	out := make(map[int]bool, len(truth))
	for id := range truth {
		tg := &targets[id]
		if tg.Responsive[laces.ICMP] || tg.Responsive[laces.TCP] || tg.Responsive[laces.DNS] {
			out[id] = true
		}
	}
	return out
}

// score folds a census into one report row.
func score(name, desc string, c *laces.DailyCensus, truth map[int]bool) laces.ChaosOutcome {
	g := toSet(c.G())
	m := toSet(c.M())
	return laces.ChaosOutcome{
		Scenario:    name,
		Description: desc,
		Day:         c.DayIndex,
		Workers:     c.Workers,
		GCount:      len(g),
		MCount:      len(m),
		G:           laces.ChaosScore(g, truth),
		M:           laces.ChaosScore(m, truth),
	}
}

func toSet(ids []int) map[int]bool {
	out := make(map[int]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}
