package laces_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	laces "github.com/laces-project/laces"
)

var (
	facadeOnce sync.Once
	facadeW    *laces.World
	facadeWErr error
)

// facadeWorld builds the shared test world once per process.
func facadeWorld(t *testing.T) *laces.World {
	t.Helper()
	facadeOnce.Do(func() {
		facadeW, facadeWErr = laces.NewWorld(laces.TestConfig())
	})
	if facadeWErr != nil {
		t.Fatal(facadeWErr)
	}
	return facadeW
}

// TestFacadeQuickstart exercises the documented public API end to end.
func TestFacadeQuickstart(t *testing.T) {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := laces.Tangled(world)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := laces.NewPipeline(world, laces.PipelineConfig{
		Deployment: dep,
		GCDVPs:     laces.ArkVPs(world),
	})
	if err != nil {
		t.Fatal(err)
	}
	census, err := pipe.RunDaily(0, false, laces.DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(census.G()) == 0 || len(census.M()) == 0 {
		t.Fatalf("quickstart census degenerate: |G|=%d |M|=%d", len(census.G()), len(census.M()))
	}
}

func TestFacadeHitlistAndGCD(t *testing.T) {
	world, err := laces.NewWorld(laces.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	hl := laces.HitlistForDay(world, false, 0)
	if hl.Len() == 0 {
		t.Fatal("empty hitlist")
	}
	// A hand-built GCD analysis through the facade.
	res := laces.AnalyzeGCD([]laces.GCDSample{
		{VP: "ams", Loc: mustCity(t, world, "Amsterdam"), RTT: 2 * time.Millisecond},
		{VP: "syd", Loc: mustCity(t, world, "Sydney"), RTT: 2 * time.Millisecond},
	})
	if !res.Anycast || res.NumSites() != 2 {
		t.Fatalf("facade GCD analysis: %+v", res)
	}
}

func TestFacadeEpoch(t *testing.T) {
	want := time.Date(2024, 3, 21, 0, 0, 0, 0, time.UTC)
	if !laces.CensusEpoch.Equal(want) {
		t.Fatalf("census epoch = %v", laces.CensusEpoch)
	}
}

func mustCity(t *testing.T, w *laces.World, name string) laces.Coordinate {
	t.Helper()
	loc, ok := laces.CityLocation(w, name)
	if !ok {
		t.Fatalf("city %s missing", name)
	}
	return loc
}

func TestFacadeTracerouteAndDiff(t *testing.T) {
	world := facadeWorld(t)
	dep, err := laces.Tangled(world)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := laces.NewPipeline(world, laces.PipelineConfig{
		Deployment: dep,
		GCDVPs:     laces.ArkVPs(world),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := pipe.RunDaily(10, false, laces.DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipe.RunDaily(17, false, laces.DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := laces.DiffCensus(a.Document(), b.Document())
	if d.From == d.To {
		t.Fatal("diff did not carry dates")
	}
	var buf bytes.Buffer
	if err := laces.RenderDashboard(&buf, []*laces.CensusDocument{a.Document(), b.Document()}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty dashboard")
	}

	// Round-trip a document through the facade parser.
	buf.Reset()
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := laces.ParseCensusDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if doc.GCount != len(a.G()) {
		t.Fatalf("parsed GCount %d, census has %d", doc.GCount, len(a.G()))
	}

	// Traceroute through the facade.
	vp, err := world.NewVP("facade-vp", "Amsterdam", 0)
	if err != nil {
		t.Fatal(err)
	}
	targets := world.Targets(false)
	p, err := laces.Traceroute(world, vp, &targets[0], laces.CensusEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) == 0 {
		t.Fatal("empty trace")
	}
}

// TestFacadeArchive exercises the documented archive surface: stream a
// longitudinal run into a store, reopen it, and read a day back
// byte-identically to its published form.
func TestFacadeArchive(t *testing.T) {
	world := facadeWorld(t)
	dir := t.TempDir()
	w, err := laces.CreateArchive(dir, laces.CensusArchiveOptions{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := laces.RunLongitudinalInto(world, 3, 1, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(h.Summaries(false)) != 3 {
		t.Fatalf("ran %d days", len(h.Summaries(false)))
	}
	a, err := laces.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := a.Verify(); err != nil || res.Days != 6 { // 3 days × 2 families
		t.Fatalf("verify: %v (%+v)", err, res)
	}
	doc, err := a.Document("ipv4", 2)
	if err != nil {
		t.Fatal(err)
	}
	if doc.GCount == 0 || doc.ProbesAnycastStage == 0 {
		t.Fatalf("archived day degenerate: %+v", doc)
	}
	// Append more days through the facade's resume path.
	w2, err := laces.OpenArchiveWriter(dir, laces.CensusArchiveOptions{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := laces.RunLongitudinalInto(world, 3, 1, w2); err == nil {
		t.Fatal("re-running days 0–2 must violate append-only ordering")
	}
	_ = w2.Close()
}

// TestFacadeQueryEngine exercises the longitudinal query surface:
// archive a run, build the timeline index, and answer timeline /
// events / stability queries without decoding archived days.
func TestFacadeQueryEngine(t *testing.T) {
	world := facadeWorld(t)
	dir := t.TempDir()
	w, err := laces.CreateArchive(dir, laces.CensusArchiveOptions{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := laces.RunLongitudinalInto(world, 4, 1, w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := laces.BuildCensusIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Families != 2 || res.Prefixes == 0 {
		t.Fatalf("index build degenerate: %+v", res)
	}
	ix, err := laces.OpenCensusIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	prefix := ix.Prefixes("ipv4")[0]
	tl, err := laces.QueryTimeline(ix, "ipv4", prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Days) != 4 || tl.PresentDays() == 0 {
		t.Fatalf("timeline degenerate: %+v", tl)
	}
	if _, err := laces.QueryEvents(ix, "ipv4", nil, 0, -1); err != nil {
		t.Fatal(err)
	}
	st, err := laces.QueryStability(ix, "ipv4", prefix)
	if err != nil {
		t.Fatal(err)
	}
	if st.Score <= 0 || st.Score > 1 {
		t.Fatalf("stability score out of range: %+v", st)
	}
	// The documented index-only guarantee, at the facade level.
	if n := ix.Archive().Decodes(); n != 0 {
		t.Fatalf("facade queries decoded %d documents, want 0", n)
	}
}

// TestFacadeGovernance exercises the exported responsible-probing
// surface: budget parsing, a governed pipeline run, the responsibility
// block and the opt-out audit trail.
func TestFacadeGovernance(t *testing.T) {
	b, err := laces.ParseProbeBudget("daily:5000000,prefix:200")
	if err != nil {
		t.Fatal(err)
	}
	world := facadeWorld(t)
	dep, err := laces.Tangled(world)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := laces.NewPipeline(world, laces.PipelineConfig{
		Deployment: dep,
		GCDVPs:     laces.ArkVPs(world),
		Budget:     b,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Ledger() == nil {
		t.Fatal("governed pipeline exposes no ledger")
	}
	census, err := pipe.RunDaily(0, false, laces.DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := census.Document()
	r := doc.Responsibility
	if r == nil {
		t.Fatal("governed census published no responsibility block")
	}
	if r.ProbesSpent+r.ProbesSkipped != r.ProbesDemanded {
		t.Fatalf("responsibility does not reconcile: %+v", r)
	}
	// Round-trip through the facade parser keeps the block.
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := laces.ParseCensusDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Responsibility == nil || *parsed.Responsibility != *r {
		t.Fatal("responsibility block lost in round trip")
	}
	// Rate controller floor.
	if rate, steps := laces.StepProbeRate(8000, 10); rate != 1000 || steps != 3 {
		t.Fatalf("StepProbeRate floor = %v/%d, want 1000/3", rate, steps)
	}
}
