package stats

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]int{3, 1, 2, 2, 5})
	if c.Len() != 5 {
		t.Fatal("len")
	}
	cases := []struct {
		x    int
		want float64
	}{{0, 0}, {1, 0.2}, {2, 0.6}, {3, 0.8}, {4, 0.8}, {5, 1}, {100, 1}}
	for _, tc := range cases {
		if got := c.P(tc.x); got != tc.want {
			t.Errorf("P(%d) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Max() != 5 {
		t.Errorf("Max = %d", c.Max())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.P(10) != 0 || c.Quantile(0.5) != 0 || c.Max() != 0 || c.Len() != 0 {
		t.Fatal("empty CDF should be all zeros")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]int{10, 20, 30, 40})
	if q := c.Quantile(0.5); q != 20 {
		t.Errorf("median = %d, want 20", q)
	}
	if q := c.Quantile(0); q != 10 {
		t.Errorf("q0 = %d", q)
	}
	if q := c.Quantile(1); q != 40 {
		t.Errorf("q1 = %d", q)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(vals []int16, a, b int16) bool {
		ints := make([]int, len(vals))
		for i, v := range vals {
			ints[i] = int(v)
		}
		c := NewCDF(ints)
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.P(lo) <= c.P(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPointsReachOne(t *testing.T) {
	c := NewCDF([]int{1, 1, 2, 9})
	xs, ps := c.Points()
	if len(xs) != 3 || xs[0] != 1 || xs[2] != 9 {
		t.Fatalf("xs = %v", xs)
	}
	if ps[len(ps)-1] != 1 {
		t.Fatalf("last point = %v, want 1", ps[len(ps)-1])
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatal("points not increasing")
		}
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet([]int{1, 2, 3, 4})
	b := NewSet([]int{3, 4, 5})
	if a.Intersect(b) != 2 || b.Intersect(a) != 2 {
		t.Fatal("intersect")
	}
	if a.Minus(b) != 2 || b.Minus(a) != 1 {
		t.Fatal("minus")
	}
	if u := a.Union(b); len(u) != 5 {
		t.Fatal("union")
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := make(Set), make(Set)
		for _, x := range xs {
			a[int(x)] = true
		}
		for _, y := range ys {
			b[int(y)] = true
		}
		// |A| = |A∩B| + |A\B|, and union size consistency.
		if len(a) != a.Intersect(b)+a.Minus(b) {
			return false
		}
		return len(a.Union(b)) == len(a)+b.Minus(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUpSetFig7Shape(t *testing.T) {
	// Mimic Fig 7: ICMP {1..10}, TCP {6..12}, DNS {10, 13}.
	icmp := NewSet([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	tcp := NewSet([]int{6, 7, 8, 9, 10, 11, 12})
	dns := NewSet([]int{10, 13})
	rows := UpSet([]string{"ICMP", "TCP", "DNS"}, []Set{icmp, tcp, dns})

	byLabel := map[string]int{}
	total := 0
	for _, r := range rows {
		byLabel[r.Label()] = r.Count
		total += r.Count
	}
	if total != 13 { // |union|
		t.Fatalf("exclusive buckets sum to %d, want 13", total)
	}
	want := map[string]int{
		"ICMP":         5, // 1..5
		"ICMP∩TCP":     4, // 6..9
		"ICMP∩TCP∩DNS": 1, // 10
		"TCP":          2, // 11,12
		"DNS":          1, // 13
	}
	for label, n := range want {
		if byLabel[label] != n {
			t.Errorf("bucket %s = %d, want %d (all: %v)", label, byLabel[label], n, byLabel)
		}
	}
	// Ordered by descending count.
	for i := 1; i < len(rows); i++ {
		if rows[i].Count > rows[i-1].Count {
			t.Fatal("rows not sorted")
		}
	}
	// Shares sum to 1.
	var share float64
	for _, r := range rows {
		share += r.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("shares sum to %v", share)
	}
}

func TestUpSetExhaustiveProperty(t *testing.T) {
	f := func(xs, ys, zs []uint8) bool {
		sets := []Set{make(Set), make(Set), make(Set)}
		for _, x := range xs {
			sets[0][int(x)] = true
		}
		for _, y := range ys {
			sets[1][int(y)] = true
		}
		for _, z := range zs {
			sets[2][int(z)] = true
		}
		rows := UpSet([]string{"a", "b", "c"}, sets)
		total := 0
		for _, r := range rows {
			total += r.Count
		}
		union := sets[0].Union(sets[1]).Union(sets[2])
		return total == len(union)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:  "Table X",
		Header: []string{"name", "count", "share"},
	}
	tb.Add("alpha", 10, 33.3333)
	tb.Add("beta-long-name", 2, 0.5)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Table X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(lines[3], "33.3") {
		t.Fatalf("float formatting: %s", lines[3])
	}
	// Columns aligned: the separator is as wide as the widest cell.
	if len(lines[2]) < len("beta-long-name") {
		t.Fatal("separator narrower than data")
	}
}

func TestPct(t *testing.T) {
	if Pct(1, 2) != "50.0%" {
		t.Fatalf("Pct = %s", Pct(1, 2))
	}
	if Pct(1, 0) != "n/a" {
		t.Fatal("division by zero not guarded")
	}
}

func TestUpSetPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UpSet([]string{"a"}, nil)
}
