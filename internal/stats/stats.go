// Package stats provides the small statistical and set-algebra helpers the
// evaluation harness uses to regenerate the paper's tables and figures:
// empirical CDFs (Fig 6, Fig 10), Venn/UpSet intersections over candidate
// sets (Fig 7/8/13/14), and plain-text table rendering.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode/utf8"
)

// CDF is an empirical cumulative distribution over integer observations.
type CDF struct {
	values []int
}

// NewCDF builds a CDF from observations (copied and sorted).
func NewCDF(values []int) *CDF {
	v := append([]int(nil), values...)
	sort.Ints(v)
	return &CDF{values: v}
}

// Len returns the number of observations.
func (c *CDF) Len() int { return len(c.values) }

// P returns the cumulative probability P(X <= x).
func (c *CDF) P(x int) float64 {
	if len(c.values) == 0 {
		return 0
	}
	i := sort.SearchInts(c.values, x+1)
	return float64(i) / float64(len(c.values))
}

// Quantile returns the smallest value v with P(X <= v) >= q.
func (c *CDF) Quantile(q float64) int {
	if len(c.values) == 0 {
		return 0
	}
	if q <= 0 {
		return c.values[0]
	}
	if q >= 1 {
		return c.values[len(c.values)-1]
	}
	i := int(q*float64(len(c.values))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.values) {
		i = len(c.values) - 1
	}
	return c.values[i]
}

// Max returns the largest observation.
func (c *CDF) Max() int {
	if len(c.values) == 0 {
		return 0
	}
	return c.values[len(c.values)-1]
}

// Points returns (value, cumulative probability) pairs at each distinct
// value — the plot series of a CDF figure.
func (c *CDF) Points() (xs []int, ps []float64) {
	for i, v := range c.values {
		if i+1 < len(c.values) && c.values[i+1] == v {
			continue
		}
		xs = append(xs, v)
		ps = append(ps, float64(i+1)/float64(len(c.values)))
	}
	return
}

// Set is a set of target IDs.
type Set map[int]bool

// NewSet builds a set from IDs.
func NewSet(ids []int) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Intersect returns |a ∩ b|.
func (a Set) Intersect(b Set) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for id := range a {
		if b[id] {
			n++
		}
	}
	return n
}

// Minus returns |a \ b|.
func (a Set) Minus(b Set) int {
	n := 0
	for id := range a {
		if !b[id] {
			n++
		}
	}
	return n
}

// Union returns a ∪ b as a new set.
func (a Set) Union(b Set) Set {
	out := make(Set, len(a)+len(b))
	for id := range a {
		out[id] = true
	}
	for id := range b {
		out[id] = true
	}
	return out
}

// UpSetRow is one intersection bucket of an UpSet plot: the exclusive
// intersection of the sets flagged in Members.
type UpSetRow struct {
	Members []string // names of the participating sets
	Count   int
	Share   float64 // of the union
}

// UpSet computes the exclusive intersections of named sets — the Fig 7/13
// (IPv4) and Fig 14 (IPv6) protocol breakdowns. Rows are ordered by
// descending count.
func UpSet(names []string, sets []Set) []UpSetRow {
	if len(names) != len(sets) {
		panic("stats: names/sets length mismatch")
	}
	union := make(Set)
	for _, s := range sets {
		for id := range s {
			union[id] = true
		}
	}
	counts := make(map[uint]int)
	for id := range union {
		var mask uint
		for i, s := range sets {
			if s[id] {
				mask |= 1 << i
			}
		}
		counts[mask]++
	}
	var rows []UpSetRow
	for mask, n := range counts {
		if mask == 0 {
			continue
		}
		var members []string
		for i := range sets {
			if mask&(1<<i) != 0 {
				members = append(members, names[i])
			}
		}
		share := 0.0
		if len(union) > 0 {
			share = float64(n) / float64(len(union))
		}
		rows = append(rows, UpSetRow{Members: members, Count: n, Share: share})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return strings.Join(rows[i].Members, "∩") < strings.Join(rows[j].Members, "∩")
	})
	return rows
}

// Label renders the row's membership as "A∩B".
func (r UpSetRow) Label() string { return strings.Join(r.Members, "∩") }

// Table renders aligned plain-text tables for the experiment harness.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := utf8.RuneCountInString(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a ratio as a percentage string.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
