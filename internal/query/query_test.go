package query

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/laces-project/laces/internal/archive"
	"github.com/laces-project/laces/internal/core"
)

// synthChain builds a deterministic multi-day census chain with the
// longitudinal dynamics the query engine exists to detect: late
// onsets, 1-day flaps, multi-day offset/onset gaps, trailing offsets,
// site-count churn and geo shifts.
func synthChain(days, entries int) []*core.Document {
	docs := make([]*core.Document, 0, days)
	for d := 0; d < days; d++ {
		doc := &core.Document{
			Date:               fmt.Sprintf("2024-%02d-%02d", 3+d/28, 1+d%28),
			Family:             "ipv4",
			HitlistSize:        entries * 3,
			Workers:            32,
			ProbesAnycastStage: int64(entries)*96 + int64(d),
			ProbesGCDStage:     int64(entries) * 7,
		}
		for i := 0; i < entries; i++ {
			if !synthPresent(i, d, days) {
				continue
			}
			doc.Entries = append(doc.Entries, synthEntry(i, d))
			if doc.Entries[len(doc.Entries)-1].GCDAnycast {
				doc.GCount++
			} else {
				doc.MCount++
			}
		}
		sortCanonical(doc)
		docs = append(docs, doc)
	}
	return docs
}

// synthPresent is the presence rule: deterministic gaps of every shape.
func synthPresent(i, d, days int) bool {
	switch {
	case i%11 == 3 && d%9 == 4: // 1-day blips → flaps
		return false
	case i%13 == 5 && d%17 >= 5 && d%17 <= 7: // 3-day gaps → offset+onset
		return false
	case i%17 == 7 && d < 10: // late arrival → onset
		return false
	case i%19 == 9 && d >= days-4: // disappears near the end → offset
		return false
	}
	return true
}

func synthEntry(i, d int) core.DocumentEntry {
	e := core.DocumentEntry{
		Prefix:    synthPrefix(i),
		OriginASN: uint32(64500 + i%200),
	}
	if i%3 == 0 {
		e.ACProtocols = []string{"ICMP", "TCP"}
		e.MaxReceivers = 2 + i%7
		e.GCDMeasured = true
		e.GCDAnycast = true
		e.GCDSites = 2 + i%9
		if i%23 == 11 && d%15 >= 8 {
			e.GCDSites += 2 // site churn
		}
		e.GCDCities = []string{"Amsterdam", "Tokyo"}
		if i%29 == 13 && d%19 >= 10 {
			e.GCDCities = []string{"London", "Paris"} // geo shift, same count
		}
		e.GCDVPs = 40 + i%5
	} else {
		e.ACProtocols = []string{"DNS"}
		e.MaxReceivers = 2
		e.GCDMeasured = i%2 == 0
	}
	return e
}

func synthPrefix(i int) string {
	bases := []int{2, 8, 10, 23, 77, 100, 192}
	return fmt.Sprintf("%d.%d.%d.0/24", bases[i%len(bases)], (i/7)%250, i%250)
}

func sortCanonical(d *core.Document) {
	es := d.Entries
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && core.ComparePrefixStrings(es[j].Prefix, es[j-1].Prefix) < 0; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// packChain archives docs as days 0..n-1 and returns the directory.
func packChain(t testing.TB, docs []*core.Document) string {
	t.Helper()
	dir := t.TempDir()
	w, err := archive.Create(dir, archive.Options{SnapshotEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range docs {
		if err := w.Append(i, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// buildIndex packs docs and builds the timeline index, returning the
// archive dir and the opened index.
func buildIndex(t testing.TB, docs []*core.Document) (string, *Index) {
	t.Helper()
	dir := packChain(t, docs)
	if _, err := BuildDir(dir); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(filepath.Join(dir, IndexFileName))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return dir, ix
}

// timelineFromDocs derives the expected timeline by brute force.
func timelineFromDocs(docs []*core.Document, prefix string) *Timeline {
	tl := &Timeline{Family: "ipv4", Prefix: prefix}
	n := len(docs)
	tl.Days = make([]int, n)
	tl.Present = make([]bool, n)
	tl.AnycastBased = make([]bool, n)
	tl.GCDMeasured = make([]bool, n)
	tl.GCDAnycast = make([]bool, n)
	tl.ICMP = make([]bool, n)
	tl.TCP = make([]bool, n)
	tl.DNS = make([]bool, n)
	tl.Partial = make([]bool, n)
	tl.GlobalBGP = make([]bool, n)
	tl.FromFeedback = make([]bool, n)
	tl.Sites = make([]int, n)
	tl.Receivers = make([]int, n)
	tl.VPs = make([]int, n)
	tl.CityHash = make([]uint32, n)
	for d, doc := range docs {
		tl.Days[d] = d
		for i := range doc.Entries {
			e := &doc.Entries[i]
			if e.Prefix != prefix {
				continue
			}
			tl.OriginASN = e.OriginASN
			tl.Present[d] = true
			tl.AnycastBased[d] = len(e.ACProtocols) > 0
			tl.GCDMeasured[d] = e.GCDMeasured
			tl.GCDAnycast[d] = e.GCDAnycast
			for _, p := range e.ACProtocols {
				switch p {
				case "ICMP":
					tl.ICMP[d] = true
				case "TCP":
					tl.TCP[d] = true
				case "DNS":
					tl.DNS[d] = true
				}
			}
			tl.Partial[d] = e.PartialAnycast
			tl.GlobalBGP[d] = e.GlobalBGP
			tl.FromFeedback[d] = e.FromFeedback
			tl.Sites[d] = e.GCDSites
			tl.Receivers[d] = e.MaxReceivers
			tl.VPs[d] = e.GCDVPs
			tl.CityHash[d] = cityHash(e.GCDCities)
		}
	}
	return tl
}

func timelinesEqual(a, b *Timeline) bool {
	if a.Family != b.Family || a.Prefix != b.Prefix || a.OriginASN != b.OriginASN {
		return false
	}
	ints := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	bools := func(x, y []bool) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !ints(a.Days, b.Days) || !ints(a.Sites, b.Sites) || !ints(a.Receivers, b.Receivers) || !ints(a.VPs, b.VPs) {
		return false
	}
	for i := range a.CityHash {
		if a.CityHash[i] != b.CityHash[i] {
			return false
		}
	}
	pairs := [][2][]bool{
		{a.Present, b.Present}, {a.AnycastBased, b.AnycastBased},
		{a.GCDMeasured, b.GCDMeasured}, {a.GCDAnycast, b.GCDAnycast},
		{a.ICMP, b.ICMP}, {a.TCP, b.TCP}, {a.DNS, b.DNS},
		{a.Partial, b.Partial}, {a.GlobalBGP, b.GlobalBGP}, {a.FromFeedback, b.FromFeedback},
	}
	for _, p := range pairs {
		if !bools(p[0], p[1]) {
			return false
		}
	}
	return len(a.CityHash) == len(b.CityHash)
}

// TestTimelineMatchesDocuments cross-validates every indexed prefix's
// timeline against the brute-force answer derived from the documents.
func TestTimelineMatchesDocuments(t *testing.T) {
	docs := synthChain(40, 90)
	_, ix := buildIndex(t, docs)
	prefixes := ix.Prefixes("ipv4")
	if len(prefixes) != 90 {
		t.Fatalf("indexed %d prefixes, want 90", len(prefixes))
	}
	for _, p := range prefixes {
		got, err := ix.Timeline("ipv4", p)
		if err != nil {
			t.Fatal(err)
		}
		want := timelineFromDocs(docs, p)
		if !timelinesEqual(got, want) {
			t.Fatalf("timeline for %s diverges from the documents", p)
		}
	}
}

// TestQueriesAnswerFromIndexAlone is the decode-counter contract:
// Timeline, Events, Stability and Series must not materialize a single
// document, while the FullEntries fallback must.
func TestQueriesAnswerFromIndexAlone(t *testing.T) {
	docs := synthChain(30, 60)
	dir, _ := buildIndex(t, docs)

	// Fresh archive handle so the build pass's decodes don't count.
	a, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(filepath.Join(dir, IndexFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ix.AttachArchive(a)

	prefix := ix.Prefixes("ipv4")[0]
	if _, err := ix.Timeline("ipv4", prefix); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Events("ipv4", nil, 0, -1, EventOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Stability("ipv4", prefix); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Series("ipv4"); err != nil {
		t.Fatal(err)
	}
	if n := a.Decodes(); n != 0 {
		t.Fatalf("index-answered queries decoded %d documents, want 0", n)
	}

	full, err := ix.FullEntries("ipv4", prefix, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("FullEntries returned nothing")
	}
	if a.Decodes() == 0 {
		t.Fatal("FullEntries did not touch the document store (decode counter stuck at 0)")
	}
}

// mkTimeline hand-builds a timeline for event-detection goldens.
func mkTimeline(present []bool, sites []int, hashes []uint32) *Timeline {
	n := len(present)
	tl := &Timeline{
		Family: "ipv4", Prefix: "192.0.2.0/24",
		Days:    make([]int, n),
		Present: present,
		Sites:   make([]int, n), CityHash: make([]uint32, n),
		GCDAnycast: make([]bool, n),
	}
	for i := range tl.Days {
		tl.Days[i] = i + 100 // non-zero-based days: events must carry day numbers, not positions
	}
	copy(tl.Sites, sites)
	copy(tl.CityHash, hashes)
	for i, s := range tl.Sites {
		tl.GCDAnycast[i] = s > 0
	}
	return tl
}

// TestEventDetectionGolden pins the exact event stream for hand-built
// timelines covering every kind and the hysteresis boundary.
func TestEventDetectionGolden(t *testing.T) {
	pfx := "192.0.2.0/24"
	cases := []struct {
		name string
		tl   *Timeline
		opts EventOptions
		want []Event
	}{
		{
			name: "late-onset",
			tl: mkTimeline(
				[]bool{false, false, true, true, true},
				[]int{0, 0, 3, 3, 3},
				[]uint32{0, 0, 9, 9, 9}),
			// PrevDay -1: no earlier presence in the window.
			want: []Event{{Kind: EventOnset, Family: "ipv4", Prefix: pfx, Day: 102, PrevDay: -1}},
		},
		{
			name: "flap-below-hysteresis",
			tl: mkTimeline(
				[]bool{true, false, true, true, true},
				[]int{3, 0, 3, 3, 3},
				[]uint32{9, 0, 9, 9, 9}),
			want: []Event{{Kind: EventFlap, Family: "ipv4", Prefix: pfx, Day: 102, PrevDay: 100, GapDays: 1}},
		},
		{
			name: "offset-onset-at-hysteresis",
			tl: mkTimeline(
				[]bool{true, false, false, true, true},
				[]int{3, 0, 0, 3, 3},
				[]uint32{9, 0, 0, 9, 9}),
			want: []Event{
				{Kind: EventOffset, Family: "ipv4", Prefix: pfx, Day: 101, PrevDay: 100, GapDays: 2},
				{Kind: EventOnset, Family: "ipv4", Prefix: pfx, Day: 103, PrevDay: 100, GapDays: 2},
			},
		},
		{
			name: "trailing-offset",
			tl: mkTimeline(
				[]bool{true, true, true, false, false},
				[]int{3, 3, 3, 0, 0},
				[]uint32{9, 9, 9, 0, 0}),
			want: []Event{{Kind: EventOffset, Family: "ipv4", Prefix: pfx, Day: 103, PrevDay: 102, GapDays: 2}},
		},
		{
			name: "trailing-gap-undecided",
			tl: mkTimeline(
				[]bool{true, true, true, true, false},
				[]int{3, 3, 3, 3, 0},
				[]uint32{9, 9, 9, 9, 0}),
			want: nil,
		},
		{
			name: "site-churn",
			tl: mkTimeline(
				[]bool{true, true, true, true, true},
				[]int{3, 3, 5, 5, 5},
				[]uint32{9, 9, 9, 9, 9}),
			want: []Event{{Kind: EventSiteChurn, Family: "ipv4", Prefix: pfx, Day: 102, PrevDay: 101, PrevSites: 3, Sites: 5}},
		},
		{
			name: "site-churn-below-min-delta",
			tl: mkTimeline(
				[]bool{true, true, true},
				[]int{3, 4, 4},
				[]uint32{9, 9, 9}),
			opts: EventOptions{MinSiteDelta: 2},
			want: nil,
		},
		{
			name: "geo-shift",
			tl: mkTimeline(
				[]bool{true, true, true},
				[]int{3, 3, 3},
				[]uint32{9, 9, 11}),
			want: []Event{{Kind: EventGeoShift, Family: "ipv4", Prefix: pfx, Day: 102, PrevDay: 101, PrevSites: 3, Sites: 3}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := TimelineEvents(tc.tl, tc.opts)
			if len(got) != len(tc.want) {
				t.Fatalf("events = %+v, want %+v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("event %d = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestEventsFilters pins kind and day-range filtering plus the
// chronological ordering of the family-wide scan.
func TestEventsFilters(t *testing.T) {
	docs := synthChain(40, 90)
	_, ix := buildIndex(t, docs)

	all, err := ix.Events("ipv4", nil, 0, -1, EventOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("synthetic chain produced no events")
	}
	seen := make(map[EventKind]int)
	for i, e := range all {
		seen[e.Kind]++
		if i > 0 && all[i].Day < all[i-1].Day {
			t.Fatalf("events out of day order at %d: %+v after %+v", i, all[i], all[i-1])
		}
	}
	for _, k := range EventKinds() {
		if seen[k] == 0 {
			t.Fatalf("synthetic chain produced no %s events (have %v)", k, seen)
		}
	}

	onsets, err := ix.Events("ipv4", []EventKind{EventOnset}, 0, -1, EventOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(onsets) != seen[EventOnset] {
		t.Fatalf("kind filter returned %d onsets, scan saw %d", len(onsets), seen[EventOnset])
	}
	for _, e := range onsets {
		if e.Kind != EventOnset {
			t.Fatalf("kind filter leaked %+v", e)
		}
	}

	window, err := ix.Events("ipv4", nil, 10, 20, EventOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range window {
		if e.Day < 10 || e.Day > 20 {
			t.Fatalf("day filter leaked %+v", e)
		}
	}
}

// TestStabilityScoring pins the score shape: full presence with a
// frozen site set scores 1.0 and every instability lowers it.
func TestStabilityScoring(t *testing.T) {
	steady := mkTimeline(
		[]bool{true, true, true, true, true},
		[]int{3, 3, 3, 3, 3},
		[]uint32{9, 9, 9, 9, 9})
	st := ScoreTimeline(steady, EventOptions{})
	if st.Score != 1.0 || st.DaysPresent != 5 || st.MeanSites != 3 {
		t.Fatalf("steady prefix scored %+v", st)
	}
	flappy := mkTimeline(
		[]bool{true, false, true, false, true},
		[]int{3, 0, 3, 0, 3},
		[]uint32{9, 0, 9, 0, 9})
	fst := ScoreTimeline(flappy, EventOptions{})
	if fst.Score >= st.Score {
		t.Fatalf("flappy prefix (%v) scored no worse than steady (%v)", fst.Score, st.Score)
	}
	if fst.Flaps != 2 {
		t.Fatalf("flappy prefix counted %d flaps, want 2", fst.Flaps)
	}
}

// TestSeriesMatchesDocuments cross-validates the aggregate series.
func TestSeriesMatchesDocuments(t *testing.T) {
	docs := synthChain(25, 70)
	_, ix := buildIndex(t, docs)
	series, err := ix.Series("ipv4")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(docs) {
		t.Fatalf("series has %d points, want %d", len(series), len(docs))
	}
	prev := map[string]bool{}
	for d, doc := range docs {
		cur := map[string]bool{}
		for i := range doc.Entries {
			cur[doc.Entries[i].Prefix] = true
		}
		added, removed := 0, 0
		if d > 0 {
			for p := range cur {
				if !prev[p] {
					added++
				}
			}
			for p := range prev {
				if !cur[p] {
					removed++
				}
			}
		}
		pt := series[d]
		if pt.Day != d || pt.Entries != len(doc.Entries) || pt.GCDConfirmed != doc.GCount ||
			pt.AnycastOnly != doc.MCount || pt.Added != added || pt.Removed != removed {
			t.Fatalf("day %d: series point %+v diverges (want entries=%d g=%d m=%d +%d -%d)",
				d, pt, len(doc.Entries), doc.GCount, doc.MCount, added, removed)
		}
		prev = cur
	}
}

// TestRebuildByteIdentical: building the index twice from the same
// archive produces byte-identical files (no map-order leakage).
func TestRebuildByteIdentical(t *testing.T) {
	docs := synthChain(30, 80)
	dir := packChain(t, docs)
	a, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p1 := filepath.Join(t.TempDir(), "one.idx")
	p2 := filepath.Join(t.TempDir(), "two.idx")
	if _, err := Build(a, p1); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(a, p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two builds of the same archive produced different index bytes")
	}
}

// TestOpenDetectsCorruption flips one byte in each section and expects
// Open to refuse the file.
func TestOpenDetectsCorruption(t *testing.T) {
	docs := synthChain(15, 40)
	dir, ix := buildIndex(t, docs)
	ix.Close()
	path := filepath.Join(dir, IndexFileName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, off := range map[string]int{
		"toc":  headerLen + 3,
		"rows": len(pristine) - 5,
	} {
		b := bytes.Clone(pristine)
		b[off] ^= 0x41
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); err == nil {
			t.Fatalf("Open accepted an index with a corrupt %s section", name)
		}
	}
	// Truncation must also be caught.
	if err := os.WriteFile(path, pristine[:len(pristine)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a truncated index")
	}
}

// TestUnknownLookups pins the typed errors the HTTP layer maps to 404.
func TestUnknownLookups(t *testing.T) {
	docs := synthChain(10, 20)
	_, ix := buildIndex(t, docs)
	if _, err := ix.Timeline("ipv6", "2.0.0.0/24"); !errors.Is(err, ErrUnknownFamily) {
		t.Fatalf("unknown family: %v", err)
	}
	if _, err := ix.Timeline("ipv4", "198.51.100.0/24"); !errors.Is(err, ErrUnknownPrefix) {
		t.Fatalf("unknown prefix: %v", err)
	}
	if _, err := ix.Events("ipv6", nil, 0, -1, EventOptions{}); !errors.Is(err, ErrUnknownFamily) {
		t.Fatalf("unknown family events: %v", err)
	}
	if _, err := ix.Series("ipv6"); !errors.Is(err, ErrUnknownFamily) {
		t.Fatalf("unknown family series: %v", err)
	}
	if _, err := ix.Stability("ipv4", "198.51.100.0/24"); !errors.Is(err, ErrUnknownPrefix) {
		t.Fatalf("unknown prefix stability: %v", err)
	}
}

// TestOpenDirRejectsStaleIndex: an index built before more days were
// appended must be refused, not silently serve wrong longitudinal
// answers for the days it never saw.
func TestOpenDirRejectsStaleIndex(t *testing.T) {
	docs := synthChain(11, 30)
	dir := packChain(t, docs[:10])
	if _, err := BuildDir(dir); err != nil {
		t.Fatal(err)
	}
	if ix, err := OpenDir(dir); err != nil {
		t.Fatal(err)
	} else {
		ix.Close() // fresh index opens fine
	}
	w, err := archive.OpenWriter(dir, archive.Options{SnapshotEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(10, docs[10]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if ix, err := OpenDir(dir); err == nil {
		ix.Close()
		t.Fatal("OpenDir accepted an index that no longer covers the archive")
	}
	// Rebuilding heals it.
	if _, err := BuildDir(dir); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()
}

// TestTimelineCacheBounded pins the decoded-timeline LRU bound.
func TestTimelineCacheBounded(t *testing.T) {
	docs := synthChain(10, 50)
	_, ix := buildIndex(t, docs)
	ix.SetCacheSize(4)
	for _, p := range ix.Prefixes("ipv4") {
		if _, err := ix.Timeline("ipv4", p); err != nil {
			t.Fatal(err)
		}
	}
	ix.mu.Lock()
	n := ix.cache.Len()
	ix.mu.Unlock()
	if n > 4 {
		t.Fatalf("timeline LRU holds %d rows, bound is 4", n)
	}
}
