package query

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"github.com/laces-project/laces/internal/archive"
	"github.com/laces-project/laces/internal/core"
)

// rowBuilder accumulates one prefix's column during the build pass.
type rowBuilder struct {
	prefix string
	origin uint32

	// Flag bitmaps over day positions.
	present, candidate, gcdMeasured, gcdAnycast []byte
	icmp, tcp, dns                              []byte
	partial, globalBGP, fromFeedback            []byte

	// Series over present days, in day order.
	sites, receivers, vps []uint64
	cities                []uint32
}

func newRowBuilder(prefix string, nDays int) *rowBuilder {
	n := bitmapLen(nDays)
	return &rowBuilder{
		prefix:  prefix,
		present: make([]byte, n), candidate: make([]byte, n),
		gcdMeasured: make([]byte, n), gcdAnycast: make([]byte, n),
		icmp: make([]byte, n), tcp: make([]byte, n), dns: make([]byte, n),
		partial: make([]byte, n), globalBGP: make([]byte, n), fromFeedback: make([]byte, n),
	}
}

// bitmaps returns the row's bitmaps in their serialized order — the one
// contract decodeRow mirrors.
func (rb *rowBuilder) bitmaps() [][]byte {
	return [][]byte{
		rb.present, rb.candidate, rb.gcdMeasured, rb.gcdAnycast,
		rb.icmp, rb.tcp, rb.dns,
		rb.partial, rb.globalBGP, rb.fromFeedback,
	}
}

func (rb *rowBuilder) add(pos int, e *core.DocumentEntry) {
	setBit(rb.present, pos)
	rb.origin = e.OriginASN
	if len(e.ACProtocols) > 0 {
		setBit(rb.candidate, pos)
	}
	for _, p := range e.ACProtocols {
		switch p {
		case "ICMP":
			setBit(rb.icmp, pos)
		case "TCP":
			setBit(rb.tcp, pos)
		case "DNS":
			setBit(rb.dns, pos)
		}
	}
	if e.GCDMeasured {
		setBit(rb.gcdMeasured, pos)
	}
	if e.GCDAnycast {
		setBit(rb.gcdAnycast, pos)
	}
	if e.PartialAnycast {
		setBit(rb.partial, pos)
	}
	if e.GlobalBGP {
		setBit(rb.globalBGP, pos)
	}
	if e.FromFeedback {
		setBit(rb.fromFeedback, pos)
	}
	rb.sites = append(rb.sites, uint64(e.GCDSites))
	rb.receivers = append(rb.receivers, uint64(e.MaxReceivers))
	rb.vps = append(rb.vps, uint64(e.GCDVPs))
	rb.cities = append(rb.cities, cityHash(e.GCDCities))
}

// encode serializes the row record.
func (rb *rowBuilder) encode(w *bufWriter) {
	for _, bm := range rb.bitmaps() {
		w.b = append(w.b, bm...)
	}
	for _, s := range rb.sites {
		w.uvarint(s)
	}
	for _, s := range rb.receivers {
		w.uvarint(s)
	}
	for _, s := range rb.vps {
		w.uvarint(s)
	}
	for _, c := range rb.cities {
		w.u32(c)
	}
}

// famBuilder accumulates one family's section.
type famBuilder struct {
	family string
	days   []int
	// Per-day aggregate columns.
	entries, g, m, added, removed []uint32
	rows                          map[string]*rowBuilder
}

// BuildResult summarises one index build.
type BuildResult struct {
	Path     string
	Families int
	// Days counts indexed day-files summed across families (a 120-day
	// dual-family archive indexes 240).
	Days     int
	Prefixes int
	// Bytes is the written index file size; SourceBytes the archive's
	// stored size it summarises — the pair is the index's footprint
	// ledger.
	Bytes       int64
	SourceBytes int64
}

// Build makes one streaming pass over every family of the archive and
// writes the columnar prefix-timeline index to path. Building decodes
// each day exactly once (via archive.Range); answering queries
// afterwards decodes none. The write is atomic: the index appears at
// path complete and CRC'd, or not at all.
func Build(a *archive.Archive, path string) (*BuildResult, error) {
	var fams []*famBuilder
	for _, family := range a.Families() {
		fb := &famBuilder{family: family, days: a.Days(family), rows: make(map[string]*rowBuilder)}
		pos := make(map[int]int, len(fb.days))
		for i, d := range fb.days {
			pos[d] = i
		}
		prev := make(map[string]bool)
		err := a.Range(family, 0, -1, func(day int, doc *core.Document) error {
			p := pos[day]
			cur := make(map[string]bool, len(doc.Entries))
			var added uint32
			for i := range doc.Entries {
				e := &doc.Entries[i]
				cur[e.Prefix] = true
				if p > 0 && !prev[e.Prefix] {
					added++
				}
				rb := fb.rows[e.Prefix]
				if rb == nil {
					rb = newRowBuilder(e.Prefix, len(fb.days))
					fb.rows[e.Prefix] = rb
				}
				rb.add(p, e)
			}
			var removed uint32
			if p > 0 {
				for pfx := range prev {
					if !cur[pfx] {
						removed++
					}
				}
			}
			fb.entries = append(fb.entries, uint32(len(doc.Entries)))
			fb.g = append(fb.g, uint32(doc.GCount))
			fb.m = append(fb.m, uint32(doc.MCount))
			fb.added = append(fb.added, added)
			fb.removed = append(fb.removed, removed)
			prev = cur
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("query: indexing %s: %w", family, err)
		}
		fams = append(fams, fb)
	}
	res, err := writeIndex(a, path, fams)
	if err != nil {
		return nil, err
	}
	// Materialize the dashboard aggregates next to the index: the
	// serving tier answers its hot queries from this sidecar without
	// touching row storage. Computed by re-opening the committed file so
	// the sidecar is a pure function of the index bytes (and carries
	// their fingerprint).
	ix, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	ag, err := ix.computeAggregates()
	if err != nil {
		return nil, err
	}
	if err := writeAggregates(AggregatesPath(path), ag); err != nil {
		return nil, err
	}
	return res, nil
}

// BuildDir builds the index for the archive at dir, writing it next to
// the archive's index.jsonl as timeline.idx.
func BuildDir(dir string) (*BuildResult, error) {
	a, err := archive.Open(dir)
	if err != nil {
		return nil, err
	}
	return Build(a, filepath.Join(dir, IndexFileName))
}

// writeIndex serializes the accumulated sections and commits the file.
func writeIndex(a *archive.Archive, path string, fams []*famBuilder) (*BuildResult, error) {
	res := &BuildResult{Path: path, Families: len(fams)}

	// Rows first: the TOC needs each row's offset and length.
	type rowRef struct {
		prefix string
		origin uint32
		off    uint64
		length uint32
	}
	rows := &bufWriter{}
	refs := make([][]rowRef, len(fams))
	for fi, fb := range fams {
		prefixes := make([]string, 0, len(fb.rows))
		for p := range fb.rows {
			prefixes = append(prefixes, p)
		}
		sort.Slice(prefixes, func(i, j int) bool {
			return core.ComparePrefixStrings(prefixes[i], prefixes[j]) < 0
		})
		res.Days += len(fb.days)
		res.Prefixes += len(prefixes)
		for _, p := range prefixes {
			rb := fb.rows[p]
			off := uint64(len(rows.b))
			rb.encode(rows)
			refs[fi] = append(refs[fi], rowRef{
				prefix: p, origin: rb.origin,
				off: off, length: uint32(uint64(len(rows.b)) - off),
			})
		}
	}

	toc := &bufWriter{}
	toc.u32(uint32(len(fams)))
	for fi, fb := range fams {
		toc.str16(fb.family)
		toc.u32(uint32(len(fb.days)))
		for _, d := range fb.days {
			toc.u32(uint32(d))
		}
		for _, col := range [][]uint32{fb.entries, fb.g, fb.m, fb.added, fb.removed} {
			for _, v := range col {
				toc.u32(v)
			}
		}
		toc.u32(uint32(len(refs[fi])))
		for _, ref := range refs[fi] {
			toc.str16(ref.prefix)
			toc.u32(ref.origin)
			toc.u64(ref.off)
			toc.u32(ref.length)
		}
	}

	h := header{
		version: Version,
		tocLen:  uint32(len(toc.b)),
		rowsLen: uint64(len(rows.b)),
		tocCRC:  crc32.Checksum(toc.b, castagnoli),
		rowsCRC: crc32.Checksum(rows.b, castagnoli),
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("query: creating index: %w", err)
	}
	defer os.Remove(tmp)
	for _, b := range [][]byte{h.encode(), toc.b, rows.b} {
		if _, err := f.Write(b); err != nil {
			f.Close()
			return nil, fmt.Errorf("query: writing index: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("query: closing index: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("query: committing index: %w", err)
	}
	res.Bytes = int64(headerLen + len(toc.b) + len(rows.b))
	for _, st := range a.Stats() {
		res.SourceBytes += st.StoredBytes
	}
	return res, nil
}
