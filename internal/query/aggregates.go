package query

// Materialized aggregates: the dashboard-shaped hot queries — per-day
// aggregate series, churn summary, stability histogram — precomputed at
// index-build time into a small JSON sidecar next to timeline.idx. The
// serving tier answers GET /v1/aggregates from this file without
// touching row storage; the sidecar carries the index fingerprint, so a
// stale or hand-edited file is detected at Open and silently ignored
// (Aggregates then recomputes from rows once and caches the result).

import (
	"encoding/json"
	"fmt"
	"os"
)

// aggSchema names the sidecar's JSON schema version.
const aggSchema = "laces-aggregates/v1"

// AggregatesPath returns the aggregates sidecar path for a timeline
// index at idxPath.
func AggregatesPath(idxPath string) string { return idxPath + ".agg" }

// StabilityBucket is one bar of the stability-score histogram: prefixes
// whose score falls in (previous LE, LE].
type StabilityBucket struct {
	LE    float64 `json:"le"`
	Count int     `json:"count"`
}

// ChurnSummary totals one family's longitudinal events across every
// indexed prefix, plus the mean per-day membership churn rate.
type ChurnSummary struct {
	Onsets        int     `json:"onsets"`
	Offsets       int     `json:"offsets"`
	Flaps         int     `json:"flaps"`
	SiteChanges   int     `json:"site_changes"`
	GeoShifts     int     `json:"geo_shifts"`
	Events        int     `json:"events"`
	MeanChurnRate float64 `json:"mean_churn_rate"`
}

// StabilitySummary is the family-wide stability distribution: ten
// equal-width score buckets over (0, 1] plus the mean score.
type StabilitySummary struct {
	Buckets []StabilityBucket `json:"buckets"`
	Mean    float64           `json:"mean"`
}

// FamilyAggregates is one family's materialized dashboard block.
type FamilyAggregates struct {
	Family    string           `json:"family"`
	Days      int              `json:"days"`
	Prefixes  int              `json:"prefixes"`
	Series    []SeriesPoint    `json:"series"`
	Churn     ChurnSummary     `json:"churn"`
	Stability StabilitySummary `json:"stability"`
}

// Aggregates is the full materialized set, bound to one index build by
// its fingerprint.
type Aggregates struct {
	Schema      string             `json:"schema"`
	Fingerprint string             `json:"fingerprint"`
	Families    []FamilyAggregates `json:"families"`
}

// Family returns one family's block, or nil if the family is absent.
func (ag *Aggregates) Family(name string) *FamilyAggregates {
	for i := range ag.Families {
		if ag.Families[i].Family == name {
			return &ag.Families[i]
		}
	}
	return nil
}

// Aggregates returns the materialized dashboard aggregates for every
// family. When Build wrote a sidecar matching this index (the common
// case), the answer comes straight from it — no row is read. Otherwise
// the set is computed from rows exactly once and cached for the life of
// the Index. The result is shared; treat it as immutable.
func (ix *Index) Aggregates() (*Aggregates, error) {
	ix.aggOnce.Do(func() {
		if ix.agg != nil {
			return // preloaded from the sidecar at Open
		}
		ix.agg, ix.aggErr = ix.computeAggregates()
	})
	return ix.agg, ix.aggErr
}

// AggregatesPrecomputed reports whether Aggregates is backed by the
// build-time sidecar (true) or would need a row scan (false).
func (ix *Index) AggregatesPrecomputed() bool { return ix.aggFromDisk }

// computeAggregates derives the full set from the TOC columns and one
// streaming pass over every row. Detection options are the defaults, so
// the result is a pure function of the index bytes — the same
// fingerprint always yields byte-identical aggregates.
func (ix *Index) computeAggregates() (*Aggregates, error) {
	ag := &Aggregates{Schema: aggSchema, Fingerprint: ix.fingerprint}
	for _, family := range ix.order {
		fam := ix.fams[family]
		fa := FamilyAggregates{Family: family, Days: len(fam.days), Prefixes: len(fam.prefixes)}

		series, err := ix.Series(family)
		if err != nil {
			return nil, err
		}
		fa.Series = series
		var churnSum float64
		for _, p := range series {
			churnSum += p.ChurnRate
		}
		if len(series) > 0 {
			fa.Churn.MeanChurnRate = round4(churnSum / float64(len(series)))
		}

		buckets := make([]StabilityBucket, 10)
		for b := range buckets {
			buckets[b].LE = round4(float64(b+1) / 10)
		}
		var scoreSum float64
		for pos := range fam.prefixes {
			tl, err := ix.loadRow(family, fam, pos)
			if err != nil {
				return nil, err
			}
			for _, e := range TimelineEvents(tl, EventOptions{}) {
				switch e.Kind {
				case EventOnset:
					fa.Churn.Onsets++
				case EventOffset:
					fa.Churn.Offsets++
				case EventFlap:
					fa.Churn.Flaps++
				case EventSiteChurn:
					fa.Churn.SiteChanges++
				case EventGeoShift:
					fa.Churn.GeoShifts++
				}
			}
			st := ScoreTimeline(tl, EventOptions{})
			scoreSum += st.Score
			bi := 0
			for bi < len(buckets)-1 && st.Score > buckets[bi].LE {
				bi++
			}
			buckets[bi].Count++
		}
		fa.Churn.Events = fa.Churn.Onsets + fa.Churn.Offsets + fa.Churn.Flaps +
			fa.Churn.SiteChanges + fa.Churn.GeoShifts
		fa.Stability.Buckets = buckets
		if len(fam.prefixes) > 0 {
			fa.Stability.Mean = round4(scoreSum / float64(len(fam.prefixes)))
		}
		ag.Families = append(ag.Families, fa)
	}
	return ag, nil
}

// writeAggregates commits the sidecar atomically (tmp + rename), like
// the index itself: it appears complete or not at all.
func writeAggregates(path string, ag *Aggregates) error {
	b, err := json.MarshalIndent(ag, "", " ")
	if err != nil {
		return fmt.Errorf("query: encoding aggregates: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("query: writing aggregates: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("query: committing aggregates: %w", err)
	}
	return nil
}

// loadAggregates reads a sidecar and validates it against the opened
// index's fingerprint. Any failure — absent file, bad JSON, schema or
// fingerprint mismatch — returns nil: the sidecar is an accelerator,
// never a correctness dependency.
func loadAggregates(path, fingerprint string) *Aggregates {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var ag Aggregates
	if err := json.Unmarshal(b, &ag); err != nil {
		return nil
	}
	if ag.Schema != aggSchema || ag.Fingerprint != fingerprint {
		return nil
	}
	return &ag
}
