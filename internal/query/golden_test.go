package query_test

// The query engine's determinism contract, pinned against the real
// pipeline: for every (seed, chaos scenario) pair, building the
// timeline index is byte-stable (two builds → identical files), the
// serialized query answers are byte-stable across independent builds,
// and every index-answered timeline matches the brute-force answer
// decoded from the documents themselves.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/laces-project/laces/internal/archive"
	"github.com/laces-project/laces/internal/chaos"
	"github.com/laces-project/laces/internal/core"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
	"github.com/laces-project/laces/internal/query"
)

// runArchive executes a short census run under a scenario and packs it.
func runArchive(t *testing.T, seed uint64, sc *chaos.Scenario, days int) (string, []*core.Document) {
	t.Helper()
	cfg := netsim.TestConfig()
	cfg.Seed = seed
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := core.NewPipeline(w, core.Config{
		Deployment: dep,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(w, day, v6)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	aw, err := archive.Create(dir, archive.Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	var docs []*core.Document
	for day := 0; day < days; day++ {
		c, err := pipe.RunDaily(day, false, core.DayOptions{Chaos: sc})
		if err != nil {
			t.Fatal(err)
		}
		doc := c.Document()
		if err := aw.Append(day, doc); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, docs
}

// matrix crosses seeds with clean and impaired scenarios.
func matrix(t *testing.T, fn func(t *testing.T, seed uint64, sc *chaos.Scenario)) {
	scenarios := []struct {
		name string
		sc   *chaos.Scenario
	}{{"clean", nil}}
	for _, name := range []string{chaos.ScenarioLossyTransit, chaos.ScenarioFlappingUpstream} {
		sc, ok := chaos.Lookup(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		scenarios = append(scenarios, struct {
			name string
			sc   *chaos.Scenario
		}{name, &sc})
	}
	for _, seed := range []uint64{1, 1031} {
		for _, s := range scenarios {
			seed, sc := seed, s.sc
			t.Run(s.name+"/seed="+string(rune('0'+seed%10)), func(t *testing.T) {
				fn(t, seed, sc)
			})
		}
	}
}

// TestIndexByteStableAcrossSeedsAndScenarios: same archive → same
// index bytes, and the JSON forms of Events / Series / Stability are
// identical across two independently built and opened indexes.
func TestIndexByteStableAcrossSeedsAndScenarios(t *testing.T) {
	matrix(t, func(t *testing.T, seed uint64, sc *chaos.Scenario) {
		dir, docs := runArchive(t, seed, sc, 4)
		a, err := archive.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		p1 := filepath.Join(dir, query.IndexFileName)
		p2 := filepath.Join(t.TempDir(), "rebuild.idx")
		if _, err := query.Build(a, p1); err != nil {
			t.Fatal(err)
		}
		if _, err := query.Build(a, p2); err != nil {
			t.Fatal(err)
		}
		b1, err := os.ReadFile(p1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(p2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("rebuilding the index from the same archive changed its bytes")
		}

		ix1, err := query.Open(p1)
		if err != nil {
			t.Fatal(err)
		}
		defer ix1.Close()
		ix2, err := query.Open(p2)
		if err != nil {
			t.Fatal(err)
		}
		defer ix2.Close()

		for _, probe := range []func(ix *query.Index) (any, error){
			func(ix *query.Index) (any, error) { return ix.Events("ipv4", nil, 0, -1, query.EventOptions{}) },
			func(ix *query.Index) (any, error) { return ix.Series("ipv4") },
			func(ix *query.Index) (any, error) {
				return ix.Stability("ipv4", ix.Prefixes("ipv4")[0])
			},
		} {
			v1, err := probe(ix1)
			if err != nil {
				t.Fatal(err)
			}
			v2, err := probe(ix2)
			if err != nil {
				t.Fatal(err)
			}
			j1, err := json.Marshal(v1)
			if err != nil {
				t.Fatal(err)
			}
			j2, err := json.Marshal(v2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1, j2) {
				t.Fatalf("query answers diverge across independent builds:\n%s\nvs\n%s", j1, j2)
			}
		}

		// Cross-validate timelines against the documents.
		validateTimelines(t, ix1, docs)
	})
}

// validateTimelines checks every indexed prefix against the documents.
func validateTimelines(t *testing.T, ix *query.Index, docs []*core.Document) {
	t.Helper()
	byDay := make([]map[string]*core.DocumentEntry, len(docs))
	for d, doc := range docs {
		byDay[d] = make(map[string]*core.DocumentEntry, len(doc.Entries))
		for i := range doc.Entries {
			byDay[d][doc.Entries[i].Prefix] = &doc.Entries[i]
		}
	}
	for _, p := range ix.Prefixes("ipv4") {
		tl, err := ix.Timeline("ipv4", p)
		if err != nil {
			t.Fatal(err)
		}
		if len(tl.Days) != len(docs) {
			t.Fatalf("%s: timeline spans %d days, archive has %d", p, len(tl.Days), len(docs))
		}
		for d := range docs {
			e := byDay[d][p]
			if (e != nil) != tl.Present[d] {
				t.Fatalf("%s day %d: presence bit %v, document says %v", p, d, tl.Present[d], e != nil)
			}
			if e == nil {
				continue
			}
			if tl.GCDAnycast[d] != e.GCDAnycast || tl.Sites[d] != e.GCDSites ||
				tl.Receivers[d] != e.MaxReceivers || tl.VPs[d] != e.GCDVPs ||
				tl.AnycastBased[d] != (len(e.ACProtocols) > 0) {
				t.Fatalf("%s day %d: timeline columns diverge from the document entry", p, d)
			}
		}
	}
}
