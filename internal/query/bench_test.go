package query

// The acceptance bar of the query layer: on the 120-day reference
// chain, answering a prefix timeline from the columnar index must beat
// the decode-every-day archive.Range baseline by ≥10×.
// BenchmarkQueryTimeline/index vs BenchmarkQueryTimeline/decode-baseline.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/laces-project/laces/internal/archive"
	"github.com/laces-project/laces/internal/core"
)

const (
	benchDays    = 120
	benchEntries = 400
	// benchLookups is the number of distinct prefixes each iteration
	// resolves — past the timeline LRU when disabled, so the index
	// path pays its ReadAt every time.
	benchLookups = 8
)

var (
	benchOnce sync.Once
	benchDir  string
	benchErr  error
)

func benchArchive(b *testing.B) string {
	b.Helper()
	benchOnce.Do(func() {
		docs := synthChain(benchDays, benchEntries)
		dir, err := os.MkdirTemp("", "laces-query-bench-*")
		if err != nil {
			benchErr = err
			return
		}
		w, err := archive.Create(dir, archive.Options{SnapshotEvery: 7})
		if err != nil {
			benchErr = err
			return
		}
		for i, d := range docs {
			if err := w.Append(i, d); err != nil {
				benchErr = err
				return
			}
		}
		if err := w.Close(); err != nil {
			benchErr = err
			return
		}
		if _, err := BuildDir(dir); err != nil {
			benchErr = err
			return
		}
		benchDir = dir
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDir
}

// BenchmarkQueryTimeline compares the two ways to answer "what did
// this prefix do across 120 days": the columnar index row vs decoding
// every archived day.
func BenchmarkQueryTimeline(b *testing.B) {
	dir := benchArchive(b)

	b.Run("index", func(b *testing.B) {
		ix, err := Open(filepath.Join(dir, IndexFileName))
		if err != nil {
			b.Fatal(err)
		}
		defer ix.Close()
		// A 1-slot cache with rotating prefixes defeats caching: every
		// lookup decodes its row from disk.
		ix.SetCacheSize(1)
		prefixes := ix.Prefixes("ipv4")[:benchLookups]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range prefixes {
				tl, err := ix.Timeline("ipv4", p)
				if err != nil {
					b.Fatal(err)
				}
				if tl.PresentDays() == 0 {
					b.Fatal("empty timeline")
				}
			}
		}
	})

	b.Run("decode-baseline", func(b *testing.B) {
		a, err := archive.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := Open(filepath.Join(dir, IndexFileName))
		if err != nil {
			b.Fatal(err)
		}
		defer ix.Close()
		prefixes := ix.Prefixes("ipv4")[:benchLookups]
		want := make(map[string]bool, len(prefixes))
		for _, p := range prefixes {
			want[p] = true
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			present := 0
			err := a.Range("ipv4", 0, -1, func(day int, doc *core.Document) error {
				for j := range doc.Entries {
					if want[doc.Entries[j].Prefix] {
						present++
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if present == 0 {
				b.Fatal("empty decode")
			}
		}
	})
}

// BenchmarkQueryEvents times the family-wide event scan — every
// indexed prefix's full timeline — against the same decode baseline.
func BenchmarkQueryEvents(b *testing.B) {
	dir := benchArchive(b)
	ix, err := Open(filepath.Join(dir, IndexFileName))
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events, err := ix.Events("ipv4", nil, 0, -1, EventOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(events) == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkIndexBuild times the one streaming pass that materializes
// the index from the archive.
func BenchmarkIndexBuild(b *testing.B) {
	dir := benchArchive(b)
	a, err := archive.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	out := filepath.Join(b.TempDir(), "bench.idx")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Build(a, out)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Bytes), "index_bytes")
			b.ReportMetric(float64(res.Bytes)/float64(res.Prefixes), "bytes/prefix")
		}
	}
}
