// Package query is the longitudinal query engine over the census
// archive (§7, Fig 9): the questions the paper's longitudinal pillar
// exists to answer — how long does a prefix stay anycast, when do
// deployments appear, disappear or flap, how do site counts churn —
// answered without touching full-day documents on the hot path.
//
// It has two halves. The indexer (Build) makes one streaming pass over
// an archive and materializes a compact columnar prefix-timeline index
// on disk next to index.jsonl: per prefix a presence bitmap over the
// indexed days, per-day anycast-based and GCD verdict bits, protocol
// bits, and site-count / receiver / VP / geo-signature series; per day
// the aggregate census counts and membership churn. The query layer
// (Index) answers Timeline, Events (onset / offset / flap / site-churn
// / geo-shift, with hysteresis), Stability scoring and aggregate Series
// from the index alone — document decode happens only when a caller
// explicitly asks for full entries (FullEntries), and the archive's
// decode counter proves it.
package query

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/laces-project/laces/internal/archive"
	"github.com/laces-project/laces/internal/core"
)

// DefaultCacheSize bounds the Index's decoded-timeline LRU.
const DefaultCacheSize = 64

// Errors the query layer distinguishes for its HTTP mapping: unknown
// names are the caller's lookup miss (404), anything else is an index
// integrity or I/O failure.
var (
	ErrUnknownFamily = errors.New("family not indexed")
	ErrUnknownPrefix = errors.New("prefix not indexed")
)

// prefixRef is one TOC directory entry: where a prefix's row record
// lives in the rows section.
type prefixRef struct {
	prefix string
	origin uint32
	off    int64
	length int
}

// famIndex is one family's in-memory directory.
type famIndex struct {
	days []int
	// Per-day aggregate columns (aligned to days).
	entries, g, m, added, removed []int
	prefixes                      []prefixRef
	byPrefix                      map[string]int
}

// Index is an opened timeline index: the TOC directory in memory, row
// records read on demand (ReadAt, no mmap), and a bounded LRU of
// decoded timelines. Memory stays bounded by the directory plus the
// LRU no matter how many rows are queried.
type Index struct {
	path    string
	f       *os.File
	rowsOff int64
	fams    map[string]*famIndex
	order   []string // family names, sorted

	// fingerprint is the build identity: the header's two section CRCs,
	// fixed at build time. See Fingerprint.
	fingerprint string

	arch *archive.Archive // optional: full-entry fallback

	mu    sync.Mutex
	cache *archive.LRU[tlKey, *Timeline]

	// agg is the materialized dashboard aggregate set: preloaded from
	// the sidecar file when its fingerprint matches, otherwise computed
	// once on first use (aggOnce).
	agg         *Aggregates
	aggFromDisk bool
	aggOnce     sync.Once
	aggErr      error

	// Lookup telemetry, atomically updated per query and never consulted
	// by query logic. decodeFallbacks counts FullEntries calls — the one
	// path that abandons the index for document decoding. Read via Stats.
	lookups         atomic.Int64
	cacheHits       atomic.Int64
	decodeFallbacks atomic.Int64

	// Event-scan telemetry: rows considered by Events and rows the
	// day-range presence-prefix check skipped without a full decode.
	eventRows       atomic.Int64
	eventRowsPruned atomic.Int64
}

// Fingerprint identifies the exact build of this index: the hex digest
// of the TOC and rows section CRC-32Cs recorded in the header at build
// time. It is stable across process restarts and re-opens of the same
// file, and changes whenever the index is rebuilt over different
// archive contents — the property HTTP validators (ETags) need.
func (ix *Index) Fingerprint() string { return ix.fingerprint }

// EventScanStats reports the Events scan telemetry: rows considered and
// rows skipped by the day-range presence check without a full decode.
func (ix *Index) EventScanStats() (scanned, pruned int64) {
	if ix == nil {
		return 0, 0
	}
	return ix.eventRows.Load(), ix.eventRowsPruned.Load()
}

// Stats reports the index's lifetime query telemetry: Timeline lookups,
// how many were served from the decoded-timeline LRU, and how many
// FullEntries calls fell back to document decoding. Zero for a nil
// index.
func (ix *Index) Stats() (lookups, cacheHits, decodeFallbacks int64) {
	if ix == nil {
		return 0, 0, 0
	}
	return ix.lookups.Load(), ix.cacheHits.Load(), ix.decodeFallbacks.Load()
}

type tlKey struct {
	family string
	prefix string
}

// Open loads a timeline index file: it validates the header, checks
// both section CRCs (the rows section is streamed through a small
// buffer, never held), and keeps the file handle for on-demand row
// reads.
func Open(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	hb := make([]byte, headerLen)
	if _, err := io.ReadFull(f, hb); err != nil {
		f.Close()
		return nil, fmt.Errorf("query: reading index header: %w", err)
	}
	h, err := decodeHeader(hb)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Bound the declared section lengths against the actual file size
	// before allocating: a bit-flipped header must fail cleanly, not
	// drive a multi-GiB allocation.
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, fmt.Errorf("query: %w", err)
	} else if want := int64(headerLen) + int64(h.tocLen) + int64(h.rowsLen); want != fi.Size() {
		f.Close()
		return nil, fmt.Errorf("query: index sections declare %d bytes but the file holds %d (corrupt header or truncated file)", want, fi.Size())
	}
	tocBytes := make([]byte, h.tocLen)
	if _, err := io.ReadFull(f, tocBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("query: reading index TOC: %w", err)
	}
	if crc := crc32.Checksum(tocBytes, castagnoli); crc != h.tocCRC {
		f.Close()
		return nil, fmt.Errorf("query: index TOC checksum mismatch (%08x/%08x)", crc, h.tocCRC)
	}
	// Stream the rows section once to prove its checksum — O(buffer)
	// memory however large the section.
	rowsCRC := crc32.New(castagnoli)
	n, err := io.Copy(rowsCRC, io.LimitReader(f, int64(h.rowsLen)))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("query: checksumming index rows: %w", err)
	}
	if uint64(n) != h.rowsLen || rowsCRC.Sum32() != h.rowsCRC {
		f.Close()
		return nil, fmt.Errorf("query: index rows section corrupt (%d/%d bytes, crc %08x/%08x)",
			n, h.rowsLen, rowsCRC.Sum32(), h.rowsCRC)
	}

	ix := &Index{
		path:        path,
		f:           f,
		rowsOff:     int64(headerLen) + int64(h.tocLen),
		fams:        make(map[string]*famIndex),
		fingerprint: fmt.Sprintf("%08x%08x", h.tocCRC, h.rowsCRC),
		cache:       archive.NewLRU[tlKey, *Timeline](DefaultCacheSize),
	}
	r := &bufReader{b: tocBytes}
	nFams := int(r.u32())
	for i := 0; i < nFams && r.err == nil; i++ {
		family := r.str16()
		nDays := int(r.u32())
		fam := &famIndex{days: make([]int, nDays), byPrefix: make(map[string]int)}
		for d := 0; d < nDays; d++ {
			fam.days[d] = int(r.u32())
		}
		for _, col := range []*[]int{&fam.entries, &fam.g, &fam.m, &fam.added, &fam.removed} {
			*col = make([]int, nDays)
			for d := 0; d < nDays; d++ {
				(*col)[d] = int(r.u32())
			}
		}
		nPrefixes := int(r.u32())
		fam.prefixes = make([]prefixRef, nPrefixes)
		for p := 0; p < nPrefixes && r.err == nil; p++ {
			ref := prefixRef{prefix: r.str16(), origin: r.u32()}
			ref.off = int64(r.u64())
			ref.length = int(r.u32())
			fam.prefixes[p] = ref
			fam.byPrefix[ref.prefix] = p
		}
		ix.fams[family] = fam
		ix.order = append(ix.order, family)
	}
	if r.err != nil {
		f.Close()
		return nil, r.err
	}
	// A matching aggregates sidecar (written by Build) lets the hot
	// dashboard queries skip row storage entirely; a missing, stale or
	// unreadable sidecar just means Aggregates computes on first use.
	if ag := loadAggregates(AggregatesPath(path), ix.fingerprint); ag != nil {
		ix.agg, ix.aggFromDisk = ag, true
	}
	return ix, nil
}

// OpenDir opens the timeline index of the archive at dir and attaches
// the archive itself for full-entry fallback queries. It refuses a
// stale index: one that no longer covers the archive's day list.
func OpenDir(dir string) (*Index, error) {
	ix, err := Open(filepath.Join(dir, IndexFileName))
	if err != nil {
		return nil, err
	}
	a, err := archive.Open(dir)
	if err != nil {
		ix.Close()
		return nil, err
	}
	if err := ix.VerifyCoverage(a); err != nil {
		ix.Close()
		return nil, err
	}
	ix.AttachArchive(a)
	return ix, nil
}

// VerifyCoverage checks that the index still describes the archive:
// every archived family indexed, over exactly the archive's day list.
// A mismatch means days were appended (or the store regenerated) after
// the index was built; serving longitudinal answers from it would
// silently misreport the new days — rebuild with Build/BuildDir.
func (ix *Index) VerifyCoverage(a *archive.Archive) error {
	for _, fam := range a.Families() {
		want, got := a.Days(fam), ix.Days(fam)
		if !slices.Equal(got, want) {
			return fmt.Errorf("query: timeline index is stale for %s (%d indexed days, archive has %d) — rebuild it with `laces query build-index`",
				fam, len(got), len(want))
		}
	}
	return nil
}

// AttachArchive wires the document store behind full-entry fallback
// queries (FullEntries). Index-answered queries never touch it.
func (ix *Index) AttachArchive(a *archive.Archive) { ix.arch = a }

// Archive returns the attached fallback store, if any.
func (ix *Index) Archive() *archive.Archive { return ix.arch }

// SetCacheSize rebounds the decoded-timeline LRU (minimum 1).
func (ix *Index) SetCacheSize(n int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.cache = archive.NewLRU[tlKey, *Timeline](n)
}

// Close releases the index file handle.
func (ix *Index) Close() error {
	if ix.f == nil {
		return nil
	}
	err := ix.f.Close()
	ix.f = nil
	return err
}

// Families lists the indexed address families in sorted order.
func (ix *Index) Families() []string { return ix.order }

// Days lists one family's indexed census days in ascending order.
func (ix *Index) Days(family string) []int {
	if fam := ix.fams[family]; fam != nil {
		return fam.days
	}
	return nil
}

// Prefixes returns one family's indexed prefixes in canonical order.
func (ix *Index) Prefixes(family string) []string {
	fam := ix.fams[family]
	if fam == nil {
		return nil
	}
	out := make([]string, len(fam.prefixes))
	for i, ref := range fam.prefixes {
		out[i] = ref.prefix
	}
	return out
}

// Timeline is one prefix's full longitudinal record, every column
// aligned to Days (absent days read false / zero).
type Timeline struct {
	Family    string `json:"family"`
	Prefix    string `json:"prefix"`
	OriginASN uint32 `json:"origin_asn"`
	Days      []int  `json:"days"`

	Present      []bool `json:"present"`
	AnycastBased []bool `json:"anycast_based"`
	GCDMeasured  []bool `json:"gcd_measured"`
	GCDAnycast   []bool `json:"gcd_anycast"`
	ICMP         []bool `json:"icmp"`
	TCP          []bool `json:"tcp"`
	DNS          []bool `json:"dns"`
	Partial      []bool `json:"partial_anycast"`
	GlobalBGP    []bool `json:"global_bgp"`
	FromFeedback []bool `json:"from_feedback"`

	Sites     []int    `json:"gcd_sites"`
	Receivers []int    `json:"anycast_based_vps"`
	VPs       []int    `json:"gcd_vps"`
	CityHash  []uint32 `json:"city_hash"`
}

// PresentDays counts the days the prefix appears in the census.
func (tl *Timeline) PresentDays() int {
	n := 0
	for _, p := range tl.Present {
		if p {
			n++
		}
	}
	return n
}

// FirstPresent returns the first census day carrying the prefix.
func (tl *Timeline) FirstPresent() (int, bool) {
	for i, p := range tl.Present {
		if p {
			return tl.Days[i], true
		}
	}
	return 0, false
}

// LastPresent returns the last census day carrying the prefix.
func (tl *Timeline) LastPresent() (int, bool) {
	for i := len(tl.Present) - 1; i >= 0; i-- {
		if tl.Present[i] {
			return tl.Days[i], true
		}
	}
	return 0, false
}

// Timeline answers one prefix's timeline from the index alone.
func (ix *Index) Timeline(family, prefix string) (*Timeline, error) {
	fam := ix.fams[family]
	if fam == nil {
		return nil, fmt.Errorf("query: no %s timelines: %w", family, ErrUnknownFamily)
	}
	pos, ok := fam.byPrefix[prefix]
	if !ok {
		return nil, fmt.Errorf("query: %s (%s): %w", prefix, family, ErrUnknownPrefix)
	}
	key := tlKey{family, prefix}
	ix.lookups.Add(1)
	ix.mu.Lock()
	if tl, ok := ix.cache.Get(key); ok {
		ix.mu.Unlock()
		ix.cacheHits.Add(1)
		return tl, nil
	}
	ix.mu.Unlock()
	tl, err := ix.loadRow(family, fam, pos)
	if err != nil {
		return nil, err
	}
	ix.mu.Lock()
	ix.cache.Put(key, tl)
	ix.mu.Unlock()
	return tl, nil
}

// loadRow reads and decodes one prefix's row record.
func (ix *Index) loadRow(family string, fam *famIndex, pos int) (*Timeline, error) {
	ref := fam.prefixes[pos]
	b := make([]byte, ref.length)
	if _, err := ix.f.ReadAt(b, ix.rowsOff+ref.off); err != nil {
		return nil, fmt.Errorf("query: reading row for %s: %w", ref.prefix, err)
	}
	return decodeRow(family, ref, fam.days, b)
}

// decodeRow expands a columnar row record into a Timeline.
func decodeRow(family string, ref prefixRef, days []int, b []byte) (*Timeline, error) {
	nDays := len(days)
	bl := bitmapLen(nDays)
	if len(b) < 10*bl {
		return nil, fmt.Errorf("query: row for %s shorter than its bitmaps", ref.prefix)
	}
	tl := &Timeline{
		Family: family, Prefix: ref.prefix, OriginASN: ref.origin, Days: days,
		Sites:     make([]int, nDays),
		Receivers: make([]int, nDays),
		VPs:       make([]int, nDays),
		CityHash:  make([]uint32, nDays),
	}
	cols := []*[]bool{
		&tl.Present, &tl.AnycastBased, &tl.GCDMeasured, &tl.GCDAnycast,
		&tl.ICMP, &tl.TCP, &tl.DNS,
		&tl.Partial, &tl.GlobalBGP, &tl.FromFeedback,
	}
	for c, col := range cols {
		bm := b[c*bl : (c+1)*bl]
		*col = make([]bool, nDays)
		for i := 0; i < nDays; i++ {
			(*col)[i] = getBit(bm, i)
		}
	}
	r := &bufReader{b: b, off: 10 * bl}
	for _, series := range []*[]int{&tl.Sites, &tl.Receivers, &tl.VPs} {
		for i := 0; i < nDays; i++ {
			if tl.Present[i] {
				(*series)[i] = int(r.uvarint())
			}
		}
	}
	for i := 0; i < nDays; i++ {
		if tl.Present[i] {
			tl.CityHash[i] = r.u32()
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("query: row for %s: %w", ref.prefix, r.err)
	}
	return tl, nil
}

// DayEntry is one full published census row on one day — the fallback
// result that does require document decoding.
type DayEntry struct {
	Day   int                `json:"day"`
	Entry core.DocumentEntry `json:"entry"`
}

// FullEntries decodes the prefix's complete published rows for days in
// [from, to] (to < 0 means through the last day). This is the one
// query that touches the document store: everything the index carries
// is answered by Timeline without a single decode.
func (ix *Index) FullEntries(family, prefix string, from, to int) ([]DayEntry, error) {
	if ix.arch == nil {
		return nil, fmt.Errorf("query: no archive attached for full-entry decode")
	}
	if _, err := ix.Timeline(family, prefix); err != nil {
		return nil, err
	}
	ix.decodeFallbacks.Add(1)
	var out []DayEntry
	err := ix.arch.Range(family, from, to, func(day int, doc *core.Document) error {
		for i := range doc.Entries {
			if doc.Entries[i].Prefix == prefix {
				out = append(out, DayEntry{Day: day, Entry: doc.Entries[i]})
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
