package query

import (
	"fmt"
	"math"
	"sort"
)

// EventKind names one longitudinal event class.
type EventKind string

// The event classes the paper's longitudinal analysis cares about
// (Fig 9, Fig 10): deployments starting and ending, unstable prefixes
// blinking in and out, site sets growing/shrinking, and site sets
// moving without changing size.
const (
	// EventOnset: the prefix enters the census after ≥ hysteresis days
	// of absence (or after the window started without it).
	EventOnset EventKind = "onset"
	// EventOffset: the prefix leaves the census for ≥ hysteresis days.
	EventOffset EventKind = "offset"
	// EventFlap: the prefix reappears after a short gap (< hysteresis
	// days) — instability, not a deployment change.
	EventFlap EventKind = "flap"
	// EventSiteChurn: the enumerated site count moves by ≥ MinSiteDelta
	// between consecutive present days.
	EventSiteChurn EventKind = "site-churn"
	// EventGeoShift: the site count holds but the enumerated city set
	// changes — the deployment moved.
	EventGeoShift EventKind = "geo-shift"
)

// EventKinds lists every event kind in reporting order.
func EventKinds() []EventKind {
	return []EventKind{EventOnset, EventOffset, EventFlap, EventSiteChurn, EventGeoShift}
}

// ParseEventKind validates an event-kind name.
func ParseEventKind(s string) (EventKind, error) {
	for _, k := range EventKinds() {
		if string(k) == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("query: unknown event kind %q (onset, offset, flap, site-churn, geo-shift)", s)
}

// Event is one detected longitudinal event.
type Event struct {
	Kind   EventKind `json:"kind"`
	Family string    `json:"family"`
	Prefix string    `json:"prefix"`
	// Day is the census day the event takes effect: the reappearance
	// day for onset/flap, the first absent day for offset, the changed
	// day for site-churn/geo-shift.
	Day int `json:"day"`
	// PrevDay is the last present day before the event, or -1 when
	// there is none (an onset with no earlier presence in the window).
	// Not omitempty: day 0 is a legitimate previous day and must stay
	// distinguishable from "none" in serialized form.
	PrevDay int `json:"prev_day"`
	// GapDays counts the absent indexed days behind a flap or between
	// an offset/onset pair.
	GapDays int `json:"gap_days,omitempty"`
	// PrevSites and Sites carry the site-count movement for site-churn
	// (and the stable count for geo-shift).
	PrevSites int `json:"prev_sites,omitempty"`
	Sites     int `json:"sites,omitempty"`
}

// Detail renders the event's kind-specific annotation for human
// surfaces (the CLI listing and the dashboard section share it), or ""
// when the event carries none.
func (e Event) Detail() string {
	switch e.Kind {
	case EventSiteChurn:
		return fmt.Sprintf("sites %d → %d", e.PrevSites, e.Sites)
	case EventGeoShift:
		return fmt.Sprintf("%d sites moved", e.Sites)
	default:
		if e.GapDays > 0 {
			return fmt.Sprintf("gap %d days", e.GapDays)
		}
	}
	return ""
}

// EventOptions tunes detection.
type EventOptions struct {
	// Hysteresis is the number of consecutive absent indexed days
	// before a disappearance counts as an offset rather than a flap
	// (default 2 — a single missed day is instability, not a
	// deployment ending).
	Hysteresis int
	// MinSiteDelta is the site-count movement that counts as churn
	// (default 1: any change).
	MinSiteDelta int
}

func (o EventOptions) withDefaults() EventOptions {
	if o.Hysteresis <= 0 {
		o.Hysteresis = 2
	}
	if o.MinSiteDelta <= 0 {
		o.MinSiteDelta = 1
	}
	return o
}

// TimelineEvents detects every event on one timeline. Events come out
// in day order; detection is a pure function of the timeline and the
// options, so the same index always yields byte-identical event lists.
func TimelineEvents(tl *Timeline, opts EventOptions) []Event {
	opts = opts.withDefaults()
	var out []Event
	n := len(tl.Days)
	ev := func(kind EventKind, day int) Event {
		return Event{Kind: kind, Family: tl.Family, Prefix: tl.Prefix, Day: day, PrevDay: -1}
	}

	prev := -1 // last present position
	for i := 0; i < n; i++ {
		if !tl.Present[i] {
			continue
		}
		gap := i - prev - 1 // absent indexed days since last presence
		switch {
		case prev < 0 && i > 0:
			// Absent from the window start: a genuine appearance.
			out = append(out, ev(EventOnset, tl.Days[i]))
		case prev >= 0 && gap >= opts.Hysteresis:
			off := ev(EventOffset, tl.Days[prev+1])
			off.PrevDay = tl.Days[prev]
			off.GapDays = gap
			on := ev(EventOnset, tl.Days[i])
			on.PrevDay = tl.Days[prev]
			on.GapDays = gap
			out = append(out, off, on)
		case prev >= 0 && gap > 0:
			fl := ev(EventFlap, tl.Days[i])
			fl.PrevDay = tl.Days[prev]
			fl.GapDays = gap
			out = append(out, fl)
		}
		if prev >= 0 && gap == 0 {
			// Consecutive present days: compare the GCD enumeration.
			ps, cs := tl.Sites[prev], tl.Sites[i]
			switch {
			case ps > 0 && cs > 0 && abs(cs-ps) >= opts.MinSiteDelta:
				e := ev(EventSiteChurn, tl.Days[i])
				e.PrevDay = tl.Days[prev]
				e.PrevSites, e.Sites = ps, cs
				out = append(out, e)
			case ps > 0 && cs == ps && tl.CityHash[prev] != tl.CityHash[i]:
				e := ev(EventGeoShift, tl.Days[i])
				e.PrevDay = tl.Days[prev]
				e.PrevSites, e.Sites = ps, cs
				out = append(out, e)
			}
		}
		prev = i
	}
	// Trailing absence: an offset only once the gap clears hysteresis;
	// a shorter trailing gap is still undecided and emits nothing.
	if prev >= 0 && prev < n-1 && n-1-prev >= opts.Hysteresis {
		off := ev(EventOffset, tl.Days[prev+1])
		off.PrevDay = tl.Days[prev]
		off.GapDays = n - 1 - prev
		out = append(out, off)
	}
	// Day order: interleaved offset/onset pairs above already emit in
	// ascending day order per timeline.
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Events scans every indexed prefix of a family and returns the events
// of the requested kinds with effect days in [from, to] (to < 0 means
// through the last indexed day). A nil or empty kind set selects every
// kind. Rows stream through one at a time — O(1) timelines in memory —
// and no document is decoded.
//
// The day window is pushed into the scan: every event with an effect
// day in [from, to] requires the prefix to be present on some indexed
// day at position [fromPos-1, toPos] (onset/flap/churn/shift days are
// present days inside the window; an offset day is the first absent day
// after a present day, so its predecessor sits at fromPos-1 or later).
// For a narrow window, reading just the presence bitmap — the first
// bytes of the row — rejects most prefixes without decoding their rows.
func (ix *Index) Events(family string, kinds []EventKind, from, to int, opts EventOptions) ([]Event, error) {
	fam := ix.fams[family]
	if fam == nil {
		return nil, fmt.Errorf("query: no %s timelines: %w", family, ErrUnknownFamily)
	}
	n := len(fam.days)
	if n == 0 {
		return nil, nil
	}
	if to < 0 {
		to = fam.days[n-1]
	}
	// Resolve the window to day-list positions once. An empty resolved
	// window means no indexed day — hence no event day — can fall in it.
	fromPos := sort.SearchInts(fam.days, from)
	toPos := sort.SearchInts(fam.days, to+1) - 1
	if fromPos > toPos {
		return nil, nil
	}
	lo := fromPos - 1
	if lo < 0 {
		lo = 0
	}
	full := fromPos == 0 && toPos == n-1
	var bm []byte
	if !full {
		bm = make([]byte, bitmapLen(n))
	}
	want := make(map[EventKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for pos := range fam.prefixes {
		ix.eventRows.Add(1)
		if !full {
			ref := fam.prefixes[pos]
			if _, err := ix.f.ReadAt(bm, ix.rowsOff+ref.off); err != nil {
				return nil, fmt.Errorf("query: reading presence bitmap for %s: %w", ref.prefix, err)
			}
			if !anyBit(bm, lo, toPos) {
				ix.eventRowsPruned.Add(1)
				continue
			}
		}
		tl, err := ix.loadRow(family, fam, pos)
		if err != nil {
			return nil, err
		}
		for _, e := range TimelineEvents(tl, opts) {
			if e.Day < from || e.Day > to {
				continue
			}
			if len(want) > 0 && !want[e.Kind] {
				continue
			}
			out = append(out, e)
		}
	}
	// Prefixes are scanned in canonical order and each timeline emits
	// in day order; re-sort into (day, prefix-scan, emission) order so
	// the list reads chronologically. Stable by construction: sort by
	// day only, ties keep canonical prefix order.
	sortEventsByDay(out)
	return out, nil
}

// sortEventsByDay orders events chronologically. The input is P
// per-prefix runs concatenated in canonical prefix order, each run
// already day-ordered — a stable sort on day alone keeps canonical
// prefix order within a day.
func sortEventsByDay(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].Day < events[j].Day })
}

// Stability scores one prefix's longitudinal steadiness.
type Stability struct {
	Family      string  `json:"family"`
	Prefix      string  `json:"prefix"`
	DaysIndexed int     `json:"days_indexed"`
	DaysPresent int     `json:"days_present"`
	GCDDays     int     `json:"gcd_confirmed_days"`
	Onsets      int     `json:"onsets"`
	Offsets     int     `json:"offsets"`
	Flaps       int     `json:"flaps"`
	SiteChanges int     `json:"site_changes"`
	GeoShifts   int     `json:"geo_shifts"`
	MeanSites   float64 `json:"mean_sites"`
	// Score is 1.0 for a prefix present every day with a frozen site
	// set, decaying with absence and every kind of churn. Rounded to
	// four decimals so serialized scores are byte-stable.
	Score float64 `json:"score"`
}

// Stability computes the score for one prefix from the index alone.
func (ix *Index) Stability(family, prefix string) (*Stability, error) {
	tl, err := ix.Timeline(family, prefix)
	if err != nil {
		return nil, err
	}
	return ScoreTimeline(tl, EventOptions{}), nil
}

// ScoreTimeline derives the stability record from a timeline.
func ScoreTimeline(tl *Timeline, opts EventOptions) *Stability {
	st := &Stability{Family: tl.Family, Prefix: tl.Prefix, DaysIndexed: len(tl.Days)}
	siteSum := 0
	for i := range tl.Days {
		if !tl.Present[i] {
			continue
		}
		st.DaysPresent++
		if tl.GCDAnycast[i] {
			st.GCDDays++
			siteSum += tl.Sites[i]
		}
	}
	for _, e := range TimelineEvents(tl, opts) {
		switch e.Kind {
		case EventOnset:
			st.Onsets++
		case EventOffset:
			st.Offsets++
		case EventFlap:
			st.Flaps++
		case EventSiteChurn:
			st.SiteChanges++
		case EventGeoShift:
			st.GeoShifts++
		}
	}
	if st.GCDDays > 0 {
		st.MeanSites = round4(float64(siteSum) / float64(st.GCDDays))
	}
	if st.DaysIndexed > 0 {
		presence := float64(st.DaysPresent) / float64(st.DaysIndexed)
		churn := float64(st.Onsets+st.Offsets+st.Flaps) +
			0.5*float64(st.SiteChanges) + 0.25*float64(st.GeoShifts)
		st.Score = round4(presence / (1 + churn))
	}
	return st
}

func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// SeriesPoint is one day of the aggregate census series, answered
// entirely from the index's per-day columns.
type SeriesPoint struct {
	Day          int     `json:"day"`
	Entries      int     `json:"entries"`
	GCDConfirmed int     `json:"gcd_confirmed"`
	AnycastOnly  int     `json:"anycast_based_only"`
	Added        int     `json:"added"`
	Removed      int     `json:"removed"`
	ChurnRate    float64 `json:"churn_rate"`
}

// Series returns the family's daily aggregate series: census sizes,
// the 𝒢/ℳ split, membership churn against the previous indexed day,
// and the churn rate (added+removed over the day's size).
func (ix *Index) Series(family string) ([]SeriesPoint, error) {
	fam := ix.fams[family]
	if fam == nil {
		return nil, fmt.Errorf("query: no %s timelines: %w", family, ErrUnknownFamily)
	}
	out := make([]SeriesPoint, len(fam.days))
	for i, day := range fam.days {
		p := SeriesPoint{
			Day:          day,
			Entries:      fam.entries[i],
			GCDConfirmed: fam.g[i],
			AnycastOnly:  fam.m[i],
			Added:        fam.added[i],
			Removed:      fam.removed[i],
		}
		if p.Entries > 0 {
			p.ChurnRate = round4(float64(p.Added+p.Removed) / float64(p.Entries))
		}
		out[i] = p
	}
	return out, nil
}
