package query

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
)

// The on-disk index format (version 1). One file, laid out as
//
//	header | TOC | rows
//
// The fixed header carries the magic, format version, section lengths
// and a CRC-32C per section, so Open can prove integrity before
// trusting a single offset. The TOC is the bounded "directory" an Index
// keeps in memory: per family the indexed day list, the per-day
// aggregate columns, and per prefix a (name, origin, row offset, row
// length) entry. The rows section holds one compact columnar record per
// prefix — flag bitmaps over day positions plus varint series — read on
// demand with ReadAt, never mapped and never loaded wholesale.

// IndexFileName is the timeline index's file name inside an archive
// directory, next to the archive's index.jsonl.
const IndexFileName = "timeline.idx"

// magic identifies a LACeS timeline index file.
var magic = [8]byte{'L', 'A', 'C', 'E', 'S', 'T', 'L', 'X'}

// Version is the current index format version.
const Version = 1

// headerLen is the fixed header size: magic + version + tocLen +
// rowsLen + tocCRC + rowsCRC.
const headerLen = 8 + 4 + 4 + 8 + 4 + 4

// castagnoli is the CRC-32C table shared with the archive layer.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// header is the decoded fixed header.
type header struct {
	version uint32
	tocLen  uint32
	rowsLen uint64
	tocCRC  uint32
	rowsCRC uint32
}

func (h *header) encode() []byte {
	b := make([]byte, headerLen)
	copy(b[:8], magic[:])
	binary.LittleEndian.PutUint32(b[8:], h.version)
	binary.LittleEndian.PutUint32(b[12:], h.tocLen)
	binary.LittleEndian.PutUint64(b[16:], h.rowsLen)
	binary.LittleEndian.PutUint32(b[24:], h.tocCRC)
	binary.LittleEndian.PutUint32(b[28:], h.rowsCRC)
	return b
}

func decodeHeader(b []byte) (*header, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("query: index file shorter than its header")
	}
	if [8]byte(b[:8]) != magic {
		return nil, fmt.Errorf("query: not a timeline index (bad magic)")
	}
	h := &header{
		version: binary.LittleEndian.Uint32(b[8:]),
		tocLen:  binary.LittleEndian.Uint32(b[12:]),
		rowsLen: binary.LittleEndian.Uint64(b[16:]),
		tocCRC:  binary.LittleEndian.Uint32(b[24:]),
		rowsCRC: binary.LittleEndian.Uint32(b[28:]),
	}
	if h.version != Version {
		return nil, fmt.Errorf("query: index format version %d (this build reads %d)", h.version, Version)
	}
	return h, nil
}

// bufWriter serializes the TOC and row records.
type bufWriter struct{ b []byte }

func (w *bufWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *bufWriter) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *bufWriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *bufWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *bufWriter) uvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}

// str16 writes a length-prefixed string (≤ 64 KiB).
func (w *bufWriter) str16(s string) {
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

// bufReader decodes the TOC and row records; the first malformed field
// latches err and subsequent reads return zeros, so callers check err
// once at the end.
type bufReader struct {
	b   []byte
	off int
	err error
}

func (r *bufReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("query: truncated index section at byte %d", r.off)
	}
}

func (r *bufReader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *bufReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *bufReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *bufReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *bufReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *bufReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *bufReader) str16() string {
	n := int(r.u16())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// bitmapLen is the byte length of a bitmap over n day positions.
func bitmapLen(n int) int { return (n + 7) / 8 }

func setBit(b []byte, i int)      { b[i>>3] |= 1 << (i & 7) }
func getBit(b []byte, i int) bool { return b[i>>3]&(1<<(i&7)) != 0 }

// anyBit reports whether any bit in positions [lo, hi] is set,
// byte-at-a-time with masked edges.
func anyBit(b []byte, lo, hi int) bool {
	if lo > hi {
		return false
	}
	loByte, hiByte := lo>>3, hi>>3
	loMask := byte(0xFF << (lo & 7))
	hiMask := byte(0xFF >> (7 - hi&7))
	if loByte == hiByte {
		return b[loByte]&loMask&hiMask != 0
	}
	if b[loByte]&loMask != 0 || b[hiByte]&hiMask != 0 {
		return true
	}
	for i := loByte + 1; i < hiByte; i++ {
		if b[i] != 0 {
			return true
		}
	}
	return false
}

// cityHash digests a published city list into the 32-bit geo signature
// the index stores per present day: geo-shift detection only needs "did
// the enumerated site set move", not the names themselves (those remain
// one document decode away via FullEntries).
func cityHash(cities []string) uint32 {
	if len(cities) == 0 {
		return 0
	}
	h := fnv.New32a()
	for _, c := range cities {
		h.Write([]byte(c))
		h.Write([]byte{0})
	}
	return h.Sum32()
}
