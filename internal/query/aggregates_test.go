package query

// Tests for the materialized aggregates sidecar and the day-window
// pruning path of family-wide event scans.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestEventsWindowEquivalence: a windowed scan must return exactly the
// in-window slice of the full scan — the presence-bitmap pruning is an
// optimization, never a semantic change — and must prune rows whose
// prefixes have no presence near the window.
func TestEventsWindowEquivalence(t *testing.T) {
	_, ix := buildIndex(t, synthChain(40, 150))
	full, err := ix.Events("ipv4", nil, 0, -1, EventOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("synthetic chain produced no events")
	}
	for _, w := range [][2]int{{0, 5}, {8, 12}, {35, 39}, {10, 10}, {0, 39}, {38, 100}} {
		from, to := w[0], w[1]
		got, err := ix.Events("ipv4", nil, from, to, EventOptions{})
		if err != nil {
			t.Fatalf("window [%d,%d]: %v", from, to, err)
		}
		var want []Event
		for _, e := range full {
			if e.Day >= from && e.Day <= to {
				want = append(want, e)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window [%d,%d]: %d events, want %d (pruned scan diverges from filtered full scan)",
				from, to, len(got), len(want))
		}
	}
	// A window between indexed days but out of every timeline is empty.
	empty, err := ix.Events("ipv4", nil, 500, 900, EventOptions{})
	if err != nil || len(empty) != 0 {
		t.Fatalf("out-of-range window: %d events, err %v", len(empty), err)
	}
	scanned, pruned := ix.EventScanStats()
	if scanned == 0 {
		t.Fatal("no rows counted as scanned")
	}
	if pruned == 0 {
		t.Fatal("narrow windows pruned no rows — the bitmap-prefix check never fired")
	}
	if pruned > scanned {
		t.Fatalf("pruned %d > scanned %d", pruned, scanned)
	}
}

// TestAggregatesSidecar: Build writes the sidecar; Open serves it
// (precomputed) with values identical to a fresh computation; a missing
// or corrupt sidecar silently degrades to compute-on-demand with the
// same answers.
func TestAggregatesSidecar(t *testing.T) {
	docs := synthChain(30, 120)
	dir, ix := buildIndex(t, docs)
	sidecar := AggregatesPath(filepath.Join(dir, IndexFileName))
	if _, err := os.Stat(sidecar); err != nil {
		t.Fatalf("Build left no aggregates sidecar: %v", err)
	}
	if !ix.AggregatesPrecomputed() {
		t.Fatal("sidecar present but not loaded at Open")
	}
	ag, err := ix.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	if ag.Fingerprint != ix.Fingerprint() {
		t.Fatalf("sidecar fingerprint %q, index %q", ag.Fingerprint, ix.Fingerprint())
	}
	fa := ag.Family("ipv4")
	if fa == nil || fa.Days != 30 || len(fa.Series) != 30 || len(fa.Stability.Buckets) != 10 {
		t.Fatalf("aggregates degenerate: %+v", fa)
	}
	if fa.Churn.Events == 0 || fa.Churn.Onsets == 0 || fa.Churn.Offsets == 0 {
		t.Fatalf("churn summary empty: %+v", fa.Churn)
	}
	var bucketSum int
	for _, b := range fa.Stability.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != fa.Prefixes {
		t.Fatalf("stability histogram covers %d prefixes, family has %d", bucketSum, fa.Prefixes)
	}

	// Fresh computation agrees with the persisted sidecar.
	fresh, err := ix.computeAggregates()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ag, fresh) {
		t.Fatal("sidecar aggregates differ from a fresh computation")
	}

	// Without the sidecar the endpoint-facing API degrades, not breaks.
	if err := os.Remove(sidecar); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(filepath.Join(dir, IndexFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.AggregatesPrecomputed() {
		t.Fatal("precomputed reported with no sidecar on disk")
	}
	ag2, err := reopened.Aggregates()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ag, ag2) {
		t.Fatal("computed-on-demand aggregates differ from the sidecar")
	}

	// A corrupt sidecar is ignored, not fatal.
	if err := os.WriteFile(sidecar, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt, err := Open(filepath.Join(dir, IndexFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer corrupt.Close()
	if corrupt.AggregatesPrecomputed() {
		t.Fatal("corrupt sidecar accepted")
	}
}

// TestAggregatesDeterministic: two builds over the same documents emit
// byte-identical sidecars — the property that keeps index-keyed ETags
// and dashboard payloads reproducible across rebuilds and machines.
func TestAggregatesDeterministic(t *testing.T) {
	docs := synthChain(20, 100)
	dirA, _ := buildIndex(t, docs)
	dirB, _ := buildIndex(t, docs)
	a, err := os.ReadFile(AggregatesPath(filepath.Join(dirA, IndexFileName)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(AggregatesPath(filepath.Join(dirB, IndexFileName)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("aggregates sidecar bytes differ across identical builds")
	}
}

// BenchmarkQueryEventsWindow measures the windowed event scan: the
// narrow window should beat the full scan by skipping row decodes via
// the presence-bitmap prefix check.
func BenchmarkQueryEventsWindow(b *testing.B) {
	_, ix := buildIndex(b, synthChain(60, 400))
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Events("ipv4", nil, 0, -1, EventOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("narrow-window", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Events("ipv4", nil, 20, 24, EventOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
