// Package par is the deterministic sharded-execution primitive behind the
// census pipeline's parallel engine. Every hot measurement loop (manycast
// targets × sites, gcdmeas targets × VPs, the CHAOS census) iterates an
// ordered input slice whose per-element work is an independent pure
// function of the world seed — so the loop can be split into contiguous
// index shards, run on a worker pool, and the per-shard output buffers
// concatenated in shard order to reproduce the sequential output
// byte-for-byte. Counters (probe-cost accounting) are summed the same way.
//
// The contract callers rely on:
//
//   - Shard s of k covers [s*n/k, (s+1)*n/k): contiguous, ordered,
//     exhaustive and disjoint.
//   - fn must write only shard-local state (its own output buffer and
//     counters, indexed by the shard argument) plus data-race-free shared
//     structures (netsim.World's routing caches are sharded for this).
//   - The shard count is a pure function of (n, workers) via NumShards, so
//     callers can pre-size their per-shard buffers before calling Do.
//
// Parallelism never changes results, only wall-clock time: the same
// (seed, scenario) inputs produce byte-identical censuses at every worker
// count, which is what keeps the chaos engine's determinism guarantee
// intact under concurrency.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a parallelism knob to an effective worker count:
// values <= 0 select GOMAXPROCS (all available cores), 1 is sequential.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// NumShards returns the shard count Do will use for an input of length n
// at the given parallelism: min(Workers(workers), n), and 0 for an empty
// input. Callers size their per-shard output buffers with it.
func NumShards(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if k := Workers(workers); k < n {
		return k
	}
	return n
}

// Shard accumulates one shard's ordered output buffer and probe counter
// during a Gather. Index is the shard's position in shard order, set by
// Gather before fn runs — callers use it to address per-shard telemetry
// cells and label shard spans without threading an extra argument.
type Shard[T any] struct {
	Index int
	Out   []T
	Count int64
}

// Gather is the collect-and-merge pattern every sharded measurement loop
// uses: fn fills its Shard with ordered output and a counter for the index
// range [start, end); Gather concatenates the buffers in shard order and
// sums the counters, reproducing what a sequential loop appending to one
// buffer would produce. Keeping the determinism-critical merge here means
// a new census stage cannot get it subtly wrong.
func Gather[T any](n, workers int, fn func(start, end int, sh *Shard[T])) ([]T, int64) {
	shards := make([]Shard[T], NumShards(n, workers))
	Do(n, workers, func(shard, start, end int) {
		shards[shard].Index = shard
		fn(start, end, &shards[shard])
	})
	var out []T
	var count int64
	for i := range shards {
		out = append(out, shards[i].Out...)
		count += shards[i].Count
	}
	return out, count
}

// Do partitions the index range [0, n) into NumShards(n, workers)
// contiguous shards and invokes fn(shard, start, end) once per shard,
// concurrently when more than one shard exists. It returns when every
// shard has finished. With one shard (or n <= 1) fn runs on the calling
// goroutine, so sequential configurations pay no synchronisation cost.
func Do(n, workers int, fn func(shard, start, end int)) {
	k := NumShards(n, workers)
	switch k {
	case 0:
		return
	case 1:
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(k)
	for s := 0; s < k; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s, s*n/k, (s+1)*n/k)
		}(s)
	}
	wg.Wait()
}
