package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestNumShards(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{0, 4, 0},
		{-1, 4, 0},
		{1, 4, 1},
		{3, 4, 3},
		{10, 4, 4},
		{10, 1, 1},
	}
	for _, c := range cases {
		if got := NumShards(c.n, c.workers); got != c.want {
			t.Fatalf("NumShards(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestDoShardContract verifies shards are contiguous, ordered, disjoint and
// exhaustive for a spread of (n, workers) pairs.
func TestDoShardContract(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 16, 17, 1000} {
		for _, workers := range []int{1, 2, 3, 8, 33} {
			k := NumShards(n, workers)
			bounds := make([][2]int, k)
			Do(n, workers, func(shard, start, end int) {
				bounds[shard] = [2]int{start, end}
			})
			covered := 0
			for s := 0; s < k; s++ {
				start, end := bounds[s][0], bounds[s][1]
				if start > end {
					t.Fatalf("n=%d workers=%d shard %d inverted: [%d,%d)", n, workers, s, start, end)
				}
				if start != covered {
					t.Fatalf("n=%d workers=%d shard %d starts at %d, want %d", n, workers, s, start, covered)
				}
				covered = end
			}
			if covered != n {
				t.Fatalf("n=%d workers=%d covered %d", n, workers, covered)
			}
		}
	}
}

// TestDoMergeOrder is the determinism contract in miniature: per-shard
// buffers concatenated in shard order equal the sequential output.
func TestDoMergeOrder(t *testing.T) {
	const n = 257
	for _, workers := range []int{1, 3, 8} {
		k := NumShards(n, workers)
		shards := make([][]int, k)
		Do(n, workers, func(shard, start, end int) {
			for i := start; i < end; i++ {
				shards[shard] = append(shards[shard], i*i)
			}
		})
		var merged []int
		for _, sh := range shards {
			merged = append(merged, sh...)
		}
		if len(merged) != n {
			t.Fatalf("workers=%d merged %d of %d", workers, len(merged), n)
		}
		for i, v := range merged {
			if v != i*i {
				t.Fatalf("workers=%d merged[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestGatherMatchesSequential: the collect-and-merge helper must equal a
// sequential loop appending to one buffer and bumping one counter.
func TestGatherMatchesSequential(t *testing.T) {
	const n = 143
	work := func(start, end int, sh *Shard[int]) {
		for i := start; i < end; i++ {
			sh.Count += int64(i)
			if i%3 == 0 {
				sh.Out = append(sh.Out, i)
			}
		}
	}
	wantOut, wantCount := Gather(n, 1, work)
	for _, workers := range []int{0, 2, 5, 50} {
		out, count := Gather(n, workers, work)
		if count != wantCount {
			t.Fatalf("workers=%d: count %d, want %d", workers, count, wantCount)
		}
		if len(out) != len(wantOut) {
			t.Fatalf("workers=%d: %d outputs, want %d", workers, len(out), len(wantOut))
		}
		for i := range out {
			if out[i] != wantOut[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], wantOut[i])
			}
		}
	}
	if out, count := Gather[int](0, 4, work); out != nil || count != 0 {
		t.Fatalf("empty Gather = (%v, %d), want (nil, 0)", out, count)
	}
}

func TestDoRunsEveryIndexOnce(t *testing.T) {
	const n = 10_000
	var hits [n]int32
	Do(n, 0, func(_, start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
}
