// Package bgpmon implements the trigger-based anycast detection the paper
// names as future work (§9: "we intend to further extend LACeS by
// including a trigger-based detection of anycast not visible with daily
// census granularity, e.g., using BGP route collectors ... Finally, we are
// planning to use LACeS to detect suspected BGP hijacking").
//
// A route-collector feed is watched for events that change where a prefix
// may be served from — new origins, anycast turn-up/turn-down, suspected
// hijacks. Each interesting event triggers an immediate, targeted GCD
// measurement instead of waiting for the next daily census, which is what
// catches the paper's single-day events (§7 found 191 prefixes anycast
// for one day only, suspected misconfigurations or hijacks).
//
// The feed itself is derived from the simulated world's ground truth: the
// simulator plays the role of RouteViews/RIS, emitting one update per
// routing-visible change.
package bgpmon

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"github.com/laces-project/laces/internal/gcdmeas"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

// EventKind classifies a route-collector observation.
type EventKind uint8

// Event kinds.
const (
	// AnycastTurnUp: a prefix previously served from one location starts
	// being announced from several (temporary anycast activating, a
	// deployment growing, or a hijack).
	AnycastTurnUp EventKind = iota
	// AnycastTurnDown: a previously replicated prefix collapses back to a
	// single origin location.
	AnycastTurnDown
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case AnycastTurnUp:
		return "turn-up"
	case AnycastTurnDown:
		return "turn-down"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one route-collector observation.
type Event struct {
	Day      int
	Kind     EventKind
	TargetID int
	Prefix   netip.Prefix
	Origin   netsim.ASN
}

// Feed replays the routing-visible changes of one census day, in target
// order — the simulated equivalent of a RouteViews/RIS update stream.
func Feed(w *netsim.World, v6 bool, day int) []Event {
	var out []Event
	w.IterTargets(v6, 0, func(batch []netsim.Target) bool {
		for i := range batch {
			tg := &batch[i]
			was := tg.IsAnycastAt(day - 1)
			now := tg.IsAnycastAt(day)
			if was == now {
				continue
			}
			kind := AnycastTurnUp
			if was {
				kind = AnycastTurnDown
			}
			out = append(out, Event{
				Day: day, Kind: kind,
				TargetID: tg.ID, Prefix: tg.Prefix, Origin: tg.Origin,
			})
		}
		return true
	})
	sort.Slice(out, func(a, b int) bool { return out[a].TargetID < out[b].TargetID })
	return out
}

// Finding is the outcome of one triggered measurement.
type Finding struct {
	Event   Event
	Anycast bool
	Sites   int
	// SuspectedHijack marks turn-ups confirmed anycast for a prefix whose
	// origin is not a known anycast operator: the "unicast location plus
	// one anomalous second location" signature of §7.
	SuspectedHijack bool
}

// Monitor consumes route-collector events and triggers targeted GCD
// measurements.
type Monitor struct {
	World *netsim.World
	VPs   []netsim.VP
	// KnownAnycastOrigins suppresses hijack suspicion for operators that
	// legitimately toggle anycast (Imperva-style on-demand DDoS
	// mitigation).
	KnownAnycastOrigins map[netsim.ASN]bool

	// ProbesSent accounts the trigger measurements' cost.
	ProbesSent int64
}

// React processes one day's feed: every turn-up triggers an immediate GCD
// measurement of the affected prefix.
func (m *Monitor) React(v6 bool, events []Event) []Finding {
	var ids []int
	byID := make(map[int]Event, len(events))
	for _, ev := range events {
		if ev.Kind != AnycastTurnUp {
			continue
		}
		ids = append(ids, ev.TargetID)
		byID[ev.TargetID] = ev
	}
	if len(ids) == 0 {
		return nil
	}
	// Trigger within the event day, hours after the change — not the next
	// census.
	at := netsim.DayTime(events[0].Day).Add(3 * time.Hour)
	rep := gcdmeas.Run(m.World, ids, v6, gcdmeas.Campaign{
		VPs:   m.VPs,
		Proto: packet.ICMP,
		At:    at,
	})
	m.ProbesSent += rep.ProbesSent
	var out []Finding
	for _, id := range ids {
		ev := byID[id]
		f := Finding{Event: ev}
		if o, ok := rep.Outcomes[id]; ok {
			f.Anycast = o.Result.Anycast
			f.Sites = o.Result.NumSites()
		}
		if f.Anycast && !m.KnownAnycastOrigins[ev.Origin] && f.Sites == 2 {
			f.SuspectedHijack = true
		}
		out = append(out, f)
	}
	return out
}

// KnownOperators builds the suppression set from the world's modelled
// operators.
func KnownOperators(w *netsim.World) map[netsim.ASN]bool {
	out := make(map[netsim.ASN]bool, len(w.Operators))
	for _, op := range w.Operators {
		out[op.ASN] = true
	}
	return out
}
