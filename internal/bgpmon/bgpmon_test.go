package bgpmon

import (
	"testing"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/platform"
)

var testWorld = mustWorld()

func mustWorld() *netsim.World {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		panic(err)
	}
	return w
}

// firstHijackDay finds a one-day anycast event (hijack model) in the test
// world.
func firstHijackDay(t *testing.T) (int, int) {
	t.Helper()
	for i := range testWorld.TargetsV4 {
		tg := &testWorld.TargetsV4[i]
		if tg.Operator >= 0 || len(tg.TempWindows) != 1 {
			continue
		}
		win := tg.TempWindows[0]
		if win.From == win.To && win.From > 0 {
			return win.From, tg.ID
		}
	}
	t.Fatal("no single-day hijack events in test world")
	return 0, 0
}

func TestFeedEmitsTransitions(t *testing.T) {
	day, id := firstHijackDay(t)
	up := Feed(testWorld, false, day)
	foundUp := false
	for _, ev := range up {
		if ev.TargetID == id {
			if ev.Kind != AnycastTurnUp {
				t.Fatalf("event kind = %v, want turn-up", ev.Kind)
			}
			foundUp = true
		}
	}
	if !foundUp {
		t.Fatal("hijack turn-up not in feed")
	}
	// The day after, the event reverts.
	down := Feed(testWorld, false, day+1)
	foundDown := false
	for _, ev := range down {
		if ev.TargetID == id && ev.Kind == AnycastTurnDown {
			foundDown = true
		}
	}
	if !foundDown {
		t.Fatal("hijack turn-down not in feed")
	}
}

func TestFeedQuietOnStableDays(t *testing.T) {
	// Pick a day and verify only targets whose kind actually changed are
	// reported.
	events := Feed(testWorld, false, 200)
	for _, ev := range events {
		tg := &testWorld.TargetsV4[ev.TargetID]
		if tg.IsAnycastAt(199) == tg.IsAnycastAt(200) {
			t.Fatalf("event for unchanged target %d", ev.TargetID)
		}
	}
}

func TestTriggerCatchesSingleDayEvent(t *testing.T) {
	day, id := firstHijackDay(t)
	vps, err := platform.Ark(testWorld, day, false)
	if err != nil {
		t.Fatal(err)
	}
	m := &Monitor{
		World:               testWorld,
		VPs:                 vps,
		KnownAnycastOrigins: KnownOperators(testWorld),
	}
	findings := m.React(false, Feed(testWorld, false, day))
	if m.ProbesSent == 0 {
		t.Fatal("trigger sent no probes")
	}
	var hit *Finding
	for i := range findings {
		if findings[i].Event.TargetID == id {
			hit = &findings[i]
		}
	}
	if hit == nil {
		t.Fatal("hijacked prefix not measured")
	}
	tg := &testWorld.TargetsV4[id]
	if !tg.Responsive[packet.ICMP] {
		t.Skip("hijacked prefix not ICMP-responsive; GCD cannot confirm")
	}
	if !hit.Anycast {
		t.Fatal("trigger measurement did not confirm the one-day anycast event")
	}
	if !hit.SuspectedHijack {
		t.Fatalf("two-site anomaly from an unknown origin should be flagged: %+v", hit)
	}
}

func TestKnownOperatorsNotFlagged(t *testing.T) {
	// Imperva-style turn-ups are legitimate on-demand anycast, not
	// hijacks.
	ii := testWorld.OperatorByName("Incapsula")
	asn := testWorld.Operators[ii].ASN
	day := -1
	for i := range testWorld.TargetsV4 {
		tg := &testWorld.TargetsV4[i]
		if tg.Origin == asn && len(tg.TempWindows) > 0 && tg.Responsive[packet.ICMP] {
			day = tg.TempWindows[0].From
			break
		}
	}
	if day <= 0 {
		t.Skip("no Incapsula window found")
	}
	vps, _ := platform.Ark(testWorld, day, false)
	m := &Monitor{World: testWorld, VPs: vps, KnownAnycastOrigins: KnownOperators(testWorld)}
	for _, f := range m.React(false, Feed(testWorld, false, day)) {
		if f.Event.Origin == asn && f.SuspectedHijack {
			t.Fatalf("known operator flagged as hijack: %+v", f)
		}
	}
}

func TestReactEmptyFeed(t *testing.T) {
	m := &Monitor{World: testWorld}
	if got := m.React(false, nil); got != nil {
		t.Fatal("empty feed should produce no findings")
	}
}

func TestEventKindString(t *testing.T) {
	if AnycastTurnUp.String() != "turn-up" || AnycastTurnDown.String() != "turn-down" {
		t.Fatal("kind names")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Fatal("unknown kind")
	}
}
