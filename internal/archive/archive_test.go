package archive

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/laces-project/laces/internal/core"
)

// synthDoc builds a deterministic synthetic census document; evolve
// derives the next day with realistic churn (most prefixes persist —
// the Fig 10 redundancy the delta encoding exploits).
func synthDoc(entries int) *core.Document {
	d := &core.Document{
		Date:               "2024-03-21",
		Family:             "ipv4",
		HitlistSize:        entries * 3,
		Workers:            32,
		ProbesAnycastStage: int64(entries) * 96,
		ProbesGCDStage:     int64(entries) * 7,
	}
	for i := 0; i < entries; i++ {
		e := core.DocumentEntry{
			Prefix:    prefixFor(i),
			OriginASN: uint32(64500 + i%200),
		}
		if i%3 == 0 {
			e.ACProtocols = []string{"ICMP", "TCP"}
			e.MaxReceivers = 2 + i%7
			e.GCDMeasured = true
			e.GCDAnycast = true
			e.GCDSites = 2 + i%9
			e.GCDCities = []string{"Amsterdam", "Tokyo"}
			e.GCDVPs = 40
			d.GCount++
		} else {
			e.ACProtocols = []string{"DNS"}
			e.MaxReceivers = 2
			e.GCDMeasured = true
			d.MCount++
		}
		d.Entries = append(d.Entries, e)
	}
	sortCanonical(d)
	return d
}

func prefixFor(i int) string {
	bases := []string{"2", "10", "100", "192", "23", "8", "77"}
	return bases[i%len(bases)] + "." + itoa((i/7)%250) + "." + itoa(i%250) + ".0/24"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func sortCanonical(d *core.Document) {
	es := d.Entries
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && core.ComparePrefixStrings(es[j].Prefix, es[j-1].Prefix) < 0; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func evolve(d *core.Document, day int) *core.Document {
	out := d.DeepCopy()
	out.Date = "2024-03-" + itoa(22+day%8)
	out.ProbesAnycastStage += int64(day)
	kept := out.Entries[:0]
	out.GCount, out.MCount = 0, 0
	for i := range out.Entries {
		e := out.Entries[i]
		if (i+day)%37 == 0 {
			continue // ~3% churn out
		}
		if (i+day)%13 == 0 && e.GCDAnycast {
			e.GCDSites++
		}
		if e.GCDAnycast {
			out.GCount++
		} else {
			out.MCount++
		}
		kept = append(kept, e)
	}
	out.Entries = kept
	out.Entries = append(out.Entries, core.DocumentEntry{
		Prefix:      "203." + itoa(day%200) + ".0.0/24",
		OriginASN:   65000,
		ACProtocols: []string{"ICMP"},
		GCDMeasured: true,
		GCDAnycast:  true,
		GCDSites:    2,
		GCDCities:   []string{"London"},
	})
	out.GCount++
	sortCanonical(out)
	return out
}

// chain produces days of evolving documents starting from a seed doc.
func chain(days, entries int) []*core.Document {
	out := make([]*core.Document, 0, days)
	d := synthDoc(entries)
	for i := 0; i < days; i++ {
		out = append(out, d)
		d = evolve(d, i+1)
	}
	return out
}

func canonicalBytes(t testing.TB, d *core.Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// packChain archives docs as days 0..n-1 in dir.
func packChain(t testing.TB, dir string, docs []*core.Document, k int) {
	t.Helper()
	w, err := Create(dir, Options{SnapshotEvery: k})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range docs {
		if err := w.Append(i, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPackUnpackLossless is the core contract on synthetic data: every
// unpacked day reproduces its canonical bytes, by random access and by
// streaming Range.
func TestPackUnpackLossless(t *testing.T) {
	docs := chain(23, 120)
	want := make([][]byte, len(docs))
	for i, d := range docs {
		want[i] = canonicalBytes(t, d)
	}
	dir := t.TempDir()
	packChain(t, dir, docs, 7)

	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Random access, deliberately out of order to exercise the LRU.
	for _, day := range []int{22, 0, 13, 13, 7, 21, 1} {
		doc, err := a.Document("ipv4", day)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canonicalBytes(t, doc), want[day]) {
			t.Fatalf("day %d: random access did not reproduce canonical bytes", day)
		}
	}
	// Streaming range.
	seen := 0
	err = a.Range("ipv4", 0, -1, func(day int, doc *core.Document) error {
		if !bytes.Equal(canonicalBytes(t, doc), want[day]) {
			t.Fatalf("day %d: range did not reproduce canonical bytes", day)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(docs) {
		t.Fatalf("range visited %d of %d days", seen, len(docs))
	}
	if res, err := a.Verify(); err != nil || res.Days != len(docs) {
		t.Fatalf("verify: %v (%+v)", err, res)
	}
}

// TestArchiveSmallerThanFullJSON pins the efficiency claim on a
// 100+ day run: the delta-encoded store must be well under the size of
// per-day full JSON.
func TestArchiveSmallerThanFullJSON(t *testing.T) {
	docs := chain(120, 150)
	dir := t.TempDir()
	packChain(t, dir, docs, 7)
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if len(st) != 1 || st[0].Days != 120 {
		t.Fatalf("stats: %+v", st)
	}
	if st[0].Snapshots == 0 || st[0].Deltas == 0 {
		t.Fatalf("cadence degenerate: %+v", st[0])
	}
	if r := st[0].Ratio(); r > 0.5 {
		t.Fatalf("archive is %.0f%% of full JSON; want well under 50%% on persistent censuses", 100*r)
	}
}

// TestOpenWriterResume appends across writer restarts and keeps the
// delta chain intact.
func TestOpenWriterResume(t *testing.T) {
	docs := chain(11, 80)
	dir := t.TempDir()
	packChain(t, dir, docs[:5], 4)

	w, err := OpenWriter(dir, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < len(docs); i++ {
		if err := w.Append(i, docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := a.Verify(); err != nil || res.Days != len(docs) {
		t.Fatalf("verify after resume: %v (%+v)", err, res)
	}
	for i, d := range docs {
		got, err := a.Document("ipv4", i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canonicalBytes(t, got), canonicalBytes(t, d)) {
			t.Fatalf("day %d diverged across writer restart", i)
		}
	}
}

// TestAppendOnly rejects out-of-order days and double-create.
func TestAppendOnly(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := synthDoc(10)
	if err := w.Append(5, d); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, evolve(d, 1)); err == nil {
		t.Fatal("duplicate day accepted")
	}
	if err := w.Append(3, evolve(d, 1)); err == nil {
		t.Fatal("backwards day accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("Create over a live archive accepted")
	}
}

// TestAppendRejectsNonCanonicalOrder: a delta day whose base document
// carries entries in non-canonical (e.g. lexicographic) order cannot
// survive delta encoding — Append must refuse it BEFORE committing the
// index record, instead of wedging the append-only store with a day that
// can never be reconstructed.
func TestAppendRejectsNonCanonicalOrder(t *testing.T) {
	lexDoc := func(date string, prefixes ...string) *core.Document {
		d := &core.Document{Date: date, Family: "ipv4"}
		for _, p := range prefixes {
			d.Entries = append(d.Entries, core.DocumentEntry{
				Prefix: p, ACProtocols: []string{"ICMP"}, GCDAnycast: true, GCDSites: 2,
			})
			d.GCount++
		}
		return d
	}
	dir := t.TempDir()
	w, err := Create(dir, Options{SnapshotEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Lexicographic order, as the pre-fix census published it.
	if err := w.Append(0, lexDoc("2024-03-21", "10.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24")); err != nil {
		t.Fatal(err) // snapshots store their own bytes; any order round-trips
	}
	// Day 1 adds a prefix whose canonical position differs from its
	// lexicographic one — the delta cannot reproduce this document.
	err = w.Append(1, lexDoc("2024-03-22", "10.0.0.0/24", "2.0.0.0/24", "25.0.0.0/24", "3.0.0.0/24"))
	if err == nil {
		t.Fatal("Append committed a delta day that cannot be reconstructed")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The refused day must leave no trace: the archive still verifies and
	// the orphan file (if any) is gone.
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := a.Verify(); err != nil || res.Days != 1 {
		t.Fatalf("verify after refused append: %v (%+v)", err, res)
	}
	if _, err := os.Stat(filepath.Join(dir, "ipv4-000001.delta.json")); !os.IsNotExist(err) {
		t.Fatalf("refused append left a day file behind (stat err %v)", err)
	}
}

// TestOrphanDayFileRecovered simulates an append that died between
// writing the day file and the index line: the orphan must not wedge the
// archive — re-appending the day overwrites it.
func TestOrphanDayFileRecovered(t *testing.T) {
	docs := chain(4, 30)
	dir := t.TempDir()
	packChain(t, dir, docs[:3], 7)

	// Forge the orphan the crash would leave behind.
	orphan := filepath.Join(dir, "ipv4-000003.delta.json")
	if err := os.WriteFile(orphan, []byte("{\"header\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(dir, Options{SnapshotEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(3, docs[3]); err != nil {
		t.Fatalf("orphan day file wedged the archive: %v", err)
	}
	if last, ok := w.LastDay("ipv4"); !ok || last != 3 {
		t.Fatalf("LastDay = %d/%v", last, ok)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := a.Verify(); err != nil || res.Days != 4 {
		t.Fatalf("verify after orphan recovery: %v (%+v)", err, res)
	}
}

// TestBothFamilies interleaves ipv4 and ipv6 chains in one archive.
func TestBothFamilies(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	v4 := chain(5, 40)
	v6 := chain(5, 25)
	for i := range v4 {
		v6[i].Family = "ipv6"
		if err := w.Append(i, v4[i]); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(i, v6[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fams := a.Families()
	if len(fams) != 2 || fams[0] != "ipv4" || fams[1] != "ipv6" {
		t.Fatalf("families: %v", fams)
	}
	if res, err := a.Verify(); err != nil || res.Days != 10 {
		t.Fatalf("verify: %v (%+v)", err, res)
	}
}

// TestVerifyDetectsCorruption flips a byte in a delta file and expects
// Verify to fail.
func TestVerifyDetectsCorruption(t *testing.T) {
	docs := chain(9, 60)
	dir := t.TempDir()
	packChain(t, dir, docs, 4)
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := a.Record("ipv4", 2) // a delta day (snapshots at 0, 4, 8)
	if !ok || rec.Kind != KindDelta {
		t.Fatalf("day 2 record: %+v", rec)
	}
	path := filepath.Join(dir, rec.File)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a site count inside the payload (keeping valid JSON).
	idx := bytes.Index(b, []byte(`"gcd_sites":`))
	if idx < 0 {
		t.Skip("no gcd_sites in this delta")
	}
	pos := idx + len(`"gcd_sites":`)
	if b[pos] == '9' {
		b[pos] = '8'
	} else {
		b[pos] = '9'
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	a2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Verify(); err == nil {
		t.Fatal("verify accepted a corrupted delta")
	}
}

// TestLRUBounded pins the decoded-day cache bound.
func TestLRUBounded(t *testing.T) {
	docs := chain(20, 30)
	dir := t.TempDir()
	packChain(t, dir, docs, 5)
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a.SetCacheSize(3)
	for day := 0; day < 20; day++ {
		if _, err := a.Document("ipv4", day); err != nil {
			t.Fatal(err)
		}
	}
	if n := a.CachedDays(); n > 3 {
		t.Fatalf("LRU holds %d decoded days, bound is 3", n)
	}
}
