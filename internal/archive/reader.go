package archive

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/laces-project/laces/internal/core"
)

// DefaultCacheSize bounds the decoded-day LRU of an Archive.
const DefaultCacheSize = 8

// ErrNotFound marks a lookup for a day (or family) the archive does not
// carry — as opposed to a decode or integrity failure on a day it does.
var ErrNotFound = errors.New("day not archived")

// Archive reads an archived census repository. Random access decodes
// from the nearest snapshot at or before the requested day and applies
// deltas forward; a bounded LRU of decoded days keeps repeated and
// nearby lookups cheap. Documents returned by the Archive are shared and
// must be treated as immutable.
type Archive struct {
	dir   string
	recs  []Record
	byFam map[string][]int // record indices per family, ascending day

	mu    sync.Mutex
	cache *LRU[dayKey, *core.Document]

	// decodes counts document materializations (snapshot parses and
	// delta applications). The query layer's index-only guarantee is
	// asserted against this counter: answering a timeline from the
	// columnar index must leave it untouched.
	decodes atomic.Int64

	// cacheHits/cacheMisses tally decoded-day LRU outcomes for requested
	// days: a hit means the day was served straight from the cache, a
	// miss means decoding work happened (walk-back lookups while serving
	// one miss are not separately counted). Read via CacheStats.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// CacheStats reports the decoded-day LRU's hit/miss tallies. Zero for a
// nil archive.
func (a *Archive) CacheStats() (hits, misses int64) {
	if a == nil {
		return 0, 0
	}
	return a.cacheHits.Load(), a.cacheMisses.Load()
}

type dayKey struct {
	family string
	day    int
}

// Open loads an archive directory's index.
//
// The index is append-only (one JSON line per packed day, committed
// with a trailing newline), so a reader racing a writer can observe at
// most one incomplete final line: the record whose newline has not
// landed yet. Open treats exactly that — an unterminated, unparsable
// last segment — as "day not visible yet" rather than corruption, which
// is what lets a serving process re-open the archive mid-census to pick
// up freshly appended days. A malformed line anywhere else is still an
// error.
func Open(dir string) (*Archive, error) {
	data, err := os.ReadFile(filepath.Join(dir, IndexFile))
	if err != nil {
		return nil, fmt.Errorf("archive: %s is not an archive: %w", dir, err)
	}
	a := &Archive{dir: dir, byFam: make(map[string][]int), cache: NewLRU[dayKey, *core.Document](DefaultCacheSize)}
	terminated := len(data) == 0 || data[len(data)-1] == '\n'
	lines := bytes.Split(data, []byte("\n"))
	for i, ln := range lines {
		if len(ln) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(ln, &rec); err != nil {
			if i == len(lines)-1 && !terminated {
				break // append in flight: the torn final record is not visible yet
			}
			return nil, fmt.Errorf("archive: index line %d: %w", i+1, err)
		}
		a.byFam[rec.Family] = append(a.byFam[rec.Family], len(a.recs))
		a.recs = append(a.recs, rec)
	}
	for fam, idxs := range a.byFam {
		for i := 1; i < len(idxs); i++ {
			if a.recs[idxs[i]].Day <= a.recs[idxs[i-1]].Day {
				return nil, fmt.Errorf("archive: %s days out of order in index (%d after %d)",
					fam, a.recs[idxs[i]].Day, a.recs[idxs[i-1]].Day)
			}
		}
	}
	return a, nil
}

// SetCacheSize rebounds the decoded-day LRU (minimum 1).
func (a *Archive) SetCacheSize(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cache = NewLRU[dayKey, *core.Document](n)
}

// Families lists the archived address families in sorted order.
func (a *Archive) Families() []string {
	out := make([]string, 0, len(a.byFam))
	for fam := range a.byFam {
		out = append(out, fam)
	}
	sort.Strings(out)
	return out
}

// Days lists one family's archived census days in ascending order.
func (a *Archive) Days(family string) []int {
	idxs := a.byFam[family]
	out := make([]int, len(idxs))
	for i, idx := range idxs {
		out[i] = a.recs[idx].Day
	}
	return out
}

// Record returns the index record for one archived day.
func (a *Archive) Record(family string, day int) (Record, bool) {
	if pos, ok := a.find(family, day); ok {
		return a.recs[a.byFam[family][pos]], true
	}
	return Record{}, false
}

// Records returns every index record in append order.
func (a *Archive) Records() []Record { return a.recs }

// find locates day's position in the family's record list.
func (a *Archive) find(family string, day int) (int, bool) {
	idxs := a.byFam[family]
	pos := sort.Search(len(idxs), func(i int) bool { return a.recs[idxs[i]].Day >= day })
	if pos < len(idxs) && a.recs[idxs[pos]].Day == day {
		return pos, true
	}
	return 0, false
}

// Document decodes one archived day. The result is cached in the
// bounded LRU and shared across callers; treat it as read-only.
func (a *Archive) Document(family string, day int) (*core.Document, error) {
	pos, ok := a.find(family, day)
	if !ok {
		return nil, fmt.Errorf("archive: no %s census for day %d: %w", family, day, ErrNotFound)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.documentLocked(family, pos)
}

// documentLocked decodes the day at position pos in the family chain,
// starting from the nearest cached day or snapshot behind it.
func (a *Archive) documentLocked(family string, pos int) (*core.Document, error) {
	idxs := a.byFam[family]
	// Walk back to a usable base: a cached day or the chain's snapshot.
	base := pos
	var doc *core.Document
	for {
		day := a.recs[idxs[base]].Day
		if d, ok := a.cache.Get(dayKey{family, day}); ok {
			if base == pos {
				a.cacheHits.Add(1)
			}
			doc = d
			break
		}
		if base == pos {
			a.cacheMisses.Add(1)
		}
		if a.recs[idxs[base]].Kind == KindSnapshot {
			break
		}
		if base == 0 {
			return nil, fmt.Errorf("archive: %s chain starts with a delta (corrupt index)", family)
		}
		base--
	}
	if doc == nil {
		var err error
		doc, err = a.loadSnapshot(a.recs[idxs[base]])
		if err != nil {
			return nil, err
		}
		a.cache.Put(dayKey{family, a.recs[idxs[base]].Day}, doc)
	}
	for i := base + 1; i <= pos; i++ {
		next, err := a.applyDelta(doc, a.recs[idxs[i]])
		if err != nil {
			return nil, err
		}
		doc = next
		a.cache.Put(dayKey{family, a.recs[idxs[i]].Day}, doc)
	}
	return doc, nil
}

// Decodes reports how many document materializations (snapshot parses
// plus delta applications) the archive has performed since Open.
func (a *Archive) Decodes() int64 { return a.decodes.Load() }

// loadSnapshot parses one snapshot file through the streaming reader.
func (a *Archive) loadSnapshot(rec Record) (*core.Document, error) {
	a.decodes.Add(1)
	f, err := os.Open(filepath.Join(a.dir, rec.File))
	if err != nil {
		return nil, fmt.Errorf("archive: opening snapshot: %w", err)
	}
	defer f.Close()
	dr, err := core.NewDocumentReader(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("archive: %s: %w", rec.File, err)
	}
	doc := dr.Header().DeepCopy()
	for {
		e, err := dr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("archive: %s: %w", rec.File, err)
		}
		doc.Entries = append(doc.Entries, *e)
	}
	return doc, nil
}

// applyDelta advances the chain by one day.
func (a *Archive) applyDelta(prev *core.Document, rec Record) (*core.Document, error) {
	if rec.Kind != KindDelta {
		// A snapshot interleaved mid-chain simply restarts it.
		return a.loadSnapshot(rec)
	}
	a.decodes.Add(1)
	b, err := os.ReadFile(filepath.Join(a.dir, rec.File))
	if err != nil {
		return nil, fmt.Errorf("archive: reading delta: %w", err)
	}
	var delta core.DocumentDelta
	if err := json.Unmarshal(b, &delta); err != nil {
		return nil, fmt.Errorf("archive: %s: %w", rec.File, err)
	}
	doc, err := delta.Apply(prev)
	if err != nil {
		return nil, fmt.Errorf("archive: %s: %w", rec.File, err)
	}
	return doc, nil
}

// Range streams one family's documents for days in [from, to] (inclusive;
// to < 0 means "through the last day") in ascending order, holding O(1)
// documents in memory regardless of the span. The documents passed to fn
// are owned by the iteration; copy what outlives the callback.
func (a *Archive) Range(family string, from, to int, fn func(day int, doc *core.Document) error) error {
	idxs := a.byFam[family]
	if len(idxs) == 0 {
		return fmt.Errorf("archive: no %s days archived: %w", family, ErrNotFound)
	}
	if to < 0 {
		to = a.recs[idxs[len(idxs)-1]].Day
	}
	start := sort.Search(len(idxs), func(i int) bool { return a.recs[idxs[i]].Day >= from })
	if start == len(idxs) || a.recs[idxs[start]].Day > to {
		return nil
	}
	// Rewind to the snapshot the first requested day derives from.
	base := start
	for base > 0 && a.recs[idxs[base]].Kind != KindSnapshot {
		base--
	}
	var doc *core.Document
	for i := base; i < len(idxs); i++ {
		rec := a.recs[idxs[i]]
		if rec.Day > to {
			return nil
		}
		if doc == nil && rec.Kind != KindSnapshot {
			return fmt.Errorf("archive: %s chain starts with a delta (corrupt index)", family)
		}
		var err error
		if doc == nil || rec.Kind == KindSnapshot {
			doc, err = a.loadSnapshot(rec)
		} else {
			doc, err = a.applyDelta(doc, rec)
		}
		if err != nil {
			return err
		}
		if rec.Day >= from {
			if err := fn(rec.Day, doc); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyResult summarises an integrity pass.
type VerifyResult struct {
	Days int // days whose canonical bytes matched their index record
}

// Verify re-derives every archived day and proves the round-trip
// contract: the reconstructed document's canonical WriteJSON bytes must
// match the CRC-32C and size recorded at pack time.
func (a *Archive) Verify() (*VerifyResult, error) {
	res := &VerifyResult{}
	for _, fam := range a.Families() {
		err := a.Range(fam, 0, -1, func(day int, doc *core.Document) error {
			rec, _ := a.Record(fam, day)
			crc := crc32.New(castagnoli)
			count := &countingWriter{}
			if err := core.StreamDocument(io.MultiWriter(crc, count), doc); err != nil {
				return err
			}
			if crc.Sum32() != rec.CRC || count.n != rec.FullBytes {
				return fmt.Errorf("archive: %s day %d: reconstructed census does not match packed checksum (crc %08x/%08x, %d/%d bytes)",
					fam, day, crc.Sum32(), rec.CRC, count.n, rec.FullBytes)
			}
			if len(doc.Entries) != rec.Entries || doc.GCount != rec.GCount || doc.MCount != rec.MCount {
				return fmt.Errorf("archive: %s day %d: counts diverge from index", fam, day)
			}
			res.Days++
			return nil
		})
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// FamilyStats is the storage ledger for one family.
type FamilyStats struct {
	Family    string
	Days      int
	Snapshots int
	Deltas    int
	// StoredBytes is the on-disk size; FullBytes what per-day full JSON
	// would occupy.
	StoredBytes int64
	FullBytes   int64
}

// Ratio is stored size over full-JSON size (smaller is better).
func (s FamilyStats) Ratio() float64 {
	if s.FullBytes == 0 {
		return 1
	}
	return float64(s.StoredBytes) / float64(s.FullBytes)
}

// Stats tallies the archive's storage ledger per family.
func (a *Archive) Stats() []FamilyStats {
	var out []FamilyStats
	for _, fam := range a.Families() {
		st := FamilyStats{Family: fam}
		for _, idx := range a.byFam[fam] {
			rec := a.recs[idx]
			st.Days++
			if rec.Kind == KindSnapshot {
				st.Snapshots++
			} else {
				st.Deltas++
			}
			st.StoredBytes += rec.Bytes
			st.FullBytes += rec.FullBytes
		}
		out = append(out, st)
	}
	return out
}

// CachedDays reports how many decoded days the LRU currently holds.
func (a *Archive) CachedDays() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cache.Len()
}
