package archive_test

// The archive's hard contract, pinned against the real pipeline: for
// every (seed, chaos scenario) pair, packing a multi-day census run and
// unpacking it must reproduce each day's WriteJSON bytes exactly. The
// same matrix pins the published-document codec itself (satellite:
// Document → WriteJSON → ParseDocument → WriteJSON is byte-identical).

import (
	"bytes"
	"testing"

	"github.com/laces-project/laces/internal/archive"
	"github.com/laces-project/laces/internal/chaos"
	"github.com/laces-project/laces/internal/core"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
)

// runDays executes a short multi-day census run and returns per-day
// documents with their canonical bytes.
func runDays(t *testing.T, seed uint64, sc *chaos.Scenario, days []int) ([]*core.Document, [][]byte) {
	t.Helper()
	cfg := netsim.TestConfig()
	cfg.Seed = seed
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := core.NewPipeline(w, core.Config{
		Deployment: dep,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(w, day, v6)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var docs []*core.Document
	var raw [][]byte
	for _, day := range days {
		c, err := pipe.RunDaily(day, false, core.DayOptions{Chaos: sc})
		if err != nil {
			t.Fatal(err)
		}
		doc := c.Document()
		var buf bytes.Buffer
		if err := doc.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
		raw = append(raw, buf.Bytes())
	}
	return docs, raw
}

// matrix is the determinism suite: multiple seeds crossed with clean and
// impaired scenarios.
func matrix(t *testing.T, fn func(t *testing.T, seed uint64, sc *chaos.Scenario)) {
	scenarios := map[string]*chaos.Scenario{"clean": nil}
	for _, name := range []string{chaos.ScenarioLossyTransit, chaos.ScenarioFlappingUpstream} {
		sc, ok := chaos.Lookup(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		scenarios[name] = &sc
	}
	for _, seed := range []uint64{1, 1031} {
		for name, sc := range scenarios {
			seed, sc := seed, sc
			t.Run(name+"/seed="+string(rune('0'+seed%10)), func(t *testing.T) {
				fn(t, seed, sc)
			})
		}
	}
}

// TestArchiveRoundTripAcrossSeedsAndScenarios packs a multi-day census
// into a delta-encoded archive and proves unpacking is lossless.
func TestArchiveRoundTripAcrossSeedsAndScenarios(t *testing.T) {
	matrix(t, func(t *testing.T, seed uint64, sc *chaos.Scenario) {
		days := []int{0, 1, 2, 3}
		docs, want := runDays(t, seed, sc, days)

		dir := t.TempDir()
		w, err := archive.Create(dir, archive.Options{SnapshotEvery: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i, doc := range docs {
			if err := w.Append(days[i], doc); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		a, err := archive.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i, day := range days {
			got, err := a.Document("ipv4", day)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := got.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want[i]) {
				t.Fatalf("day %d: unpacked census is not byte-identical to WriteJSON", day)
			}
		}
		if res, err := a.Verify(); err != nil || res.Days != len(days) {
			t.Fatalf("verify: %v (%+v)", err, res)
		}
	})
}

// TestDocumentJSONRoundTrip pins the published codec property:
// Document → WriteJSON → ParseDocument → WriteJSON is byte-identical
// across seeds and chaos scenarios.
func TestDocumentJSONRoundTrip(t *testing.T) {
	matrix(t, func(t *testing.T, seed uint64, sc *chaos.Scenario) {
		_, want := runDays(t, seed, sc, []int{0})
		doc, err := core.ParseDocument(bytes.NewReader(want[0]))
		if err != nil {
			t.Fatal(err)
		}
		var again bytes.Buffer
		if err := doc.WriteJSON(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want[0], again.Bytes()) {
			t.Fatal("WriteJSON → ParseDocument → WriteJSON is not byte-identical")
		}
		if doc.ProbesAnycastStage <= 0 || doc.ProbesGCDStage <= 0 {
			t.Fatalf("published census lacks R3 cost accounting: %+v", doc)
		}
	})
}
