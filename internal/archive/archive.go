// Package archive implements the longitudinal census store behind the
// paper's public repository (§4.4, §7): an append-only, delta-encoded
// archive of daily census documents.
//
// Day-over-day censuses are highly redundant — most prefixes persist
// (Fig 10) — so the archive stores a full snapshot every K days and, in
// between, only the day's changes (core.DocumentDelta). The layout is a
// directory:
//
//	index.jsonl            one JSON line per appended day (the only
//	                       file ever appended to; day files are
//	                       immutable once written)
//	ipv4-000000.snap.json  snapshot: the day's canonical WriteJSON bytes
//	ipv4-000001.delta.json delta against the previous ipv4 day (compact)
//	ipv6-000000.snap.json  families interleave freely; chains are
//	                       per family
//
// Every index record carries a CRC-32C over the day's canonical JSON
// bytes, so Verify can prove — without any external reference — that
// unpacking reproduces exactly what WriteJSON published.
package archive

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"github.com/laces-project/laces/internal/core"
)

// IndexFile is the append-only index at the archive root.
const IndexFile = "index.jsonl"

// DefaultSnapshotEvery is the default snapshot cadence K: one full
// snapshot, then K-1 deltas.
const DefaultSnapshotEvery = 7

// castagnoli is the CRC-32C table used for day checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kinds of archived day files.
const (
	KindSnapshot = "snapshot"
	KindDelta    = "delta"
)

// Record is one index line: everything the reader needs to locate,
// decode and verify one archived census day.
type Record struct {
	Seq    int    `json:"seq"`
	Day    int    `json:"day"`
	Family string `json:"family"`
	Date   string `json:"date"`
	Kind   string `json:"kind"`
	File   string `json:"file"`
	// Bytes is the stored file size; FullBytes the size of the day's
	// canonical WriteJSON form (what a per-day full-JSON repository
	// would carry) — the pair is the archive's compression ledger.
	Bytes     int64 `json:"bytes"`
	FullBytes int64 `json:"full_bytes"`
	// CRC is a CRC-32C over the canonical WriteJSON bytes.
	CRC     uint32 `json:"crc32c"`
	Entries int    `json:"entries"`
	GCount  int    `json:"gcd_confirmed"`
	MCount  int    `json:"anycast_based_only"`
	// Probes is the day's published R3 probing total.
	Probes int64 `json:"probes"`
}

// Sink consumes finished census days as they complete — the streaming
// hand-off between the longitudinal runner and the store. Implementations
// may retain the document; producers must not mutate it after Append.
type Sink interface {
	Append(day int, doc *core.Document) error
}

// Options parameterises a Writer.
type Options struct {
	// SnapshotEvery is the full-snapshot cadence K (default 7): one
	// snapshot, then K-1 deltas per family.
	SnapshotEvery int
}

// famState tracks one family's delta chain inside a Writer.
type famState struct {
	lastDay   int
	sinceSnap int // days appended since the last snapshot
	lastDoc   *core.Document
}

// Writer appends census days to an archive directory. It is single-writer:
// the index is append-only and day files are never rewritten.
type Writer struct {
	dir   string
	opts  Options
	index *os.File
	seq   int
	fams  map[string]*famState

	// Lifetime append telemetry, atomically updated after each committed
	// day. Read via AppendStats; never consulted by the append logic.
	appends     atomic.Int64
	storedBytes atomic.Int64
	fullBytes   atomic.Int64
}

// AppendStats reports the writer's lifetime append telemetry: committed
// days, bytes as stored on disk (snapshot or delta form) and the size of
// the same days in canonical full-JSON form. The stored/full ratio is the
// archive's live compression factor. Zero for a nil writer.
func (w *Writer) AppendStats() (appends, storedBytes, fullBytes int64) {
	if w == nil {
		return 0, 0, 0
	}
	return w.appends.Load(), w.storedBytes.Load(), w.fullBytes.Load()
}

// Create initialises a new archive directory (created if missing; an
// existing index means the archive is live — use OpenWriter to resume).
func Create(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: creating %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, IndexFile)); err == nil {
		return nil, fmt.Errorf("archive: %s already holds an archive (use OpenWriter to append)", dir)
	}
	return newWriter(dir, opts, nil)
}

// OpenWriter resumes appending to an existing archive: it replays the
// index and reconstructs each family's last document so delta chains
// continue seamlessly.
func OpenWriter(dir string, opts Options) (*Writer, error) {
	a, err := Open(dir)
	if err != nil {
		return nil, err
	}
	return newWriter(dir, opts, a)
}

// OpenOrCreate resumes an existing archive at dir, or initialises a new
// one when no index exists yet — the CLI's append-by-default behaviour.
func OpenOrCreate(dir string, opts Options) (*Writer, error) {
	if _, err := os.Stat(filepath.Join(dir, IndexFile)); err == nil {
		return OpenWriter(dir, opts)
	}
	return Create(dir, opts)
}

func newWriter(dir string, opts Options, resume *Archive) (*Writer, error) {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	f, err := os.OpenFile(filepath.Join(dir, IndexFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("archive: opening index: %w", err)
	}
	w := &Writer{dir: dir, opts: opts, index: f, fams: make(map[string]*famState)}
	if resume != nil {
		w.seq = len(resume.recs)
		for _, fam := range resume.Families() {
			days := resume.Days(fam)
			last := days[len(days)-1]
			doc, err := resume.Document(fam, last)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("archive: replaying %s day %d for append: %w", fam, last, err)
			}
			rec, _ := resume.Record(fam, last)
			since := 0
			if rec.Kind == KindDelta {
				// Count days back to the chain's snapshot so the cadence
				// keeps its rhythm across writer restarts.
				for i := len(days) - 1; i >= 0; i-- {
					r, _ := resume.Record(fam, days[i])
					since++
					if r.Kind == KindSnapshot {
						break
					}
				}
			} else {
				since = 1
			}
			w.fams[fam] = &famState{lastDay: last, sinceSnap: since, lastDoc: doc}
		}
	}
	return w, nil
}

// countingWriter tallies bytes written through it.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

// Append stores one census day. Days must be appended in strictly
// increasing order per family; the writer retains doc for the next delta,
// so the caller must not mutate it afterwards. Writer implements Sink.
func (w *Writer) Append(day int, doc *core.Document) error {
	if w.index == nil {
		return fmt.Errorf("archive: writer is closed")
	}
	fam := doc.Family
	if fam != "ipv4" && fam != "ipv6" {
		return fmt.Errorf("archive: document family %q is not ipv4 or ipv6", fam)
	}
	st := w.fams[fam]
	if st != nil && day <= st.lastDay {
		return fmt.Errorf("archive: day %d (%s) appended after day %d — the archive is append-only", day, fam, st.lastDay)
	}

	// One streaming pass over the canonical bytes yields the checksum,
	// the full-JSON size and (for snapshots) the stored file itself.
	crc := crc32.New(castagnoli)
	count := &countingWriter{}
	kind := KindSnapshot
	if st != nil && st.sinceSnap < w.opts.SnapshotEvery {
		kind = KindDelta
	}
	name := fmt.Sprintf("%s-%06d.%s.json", fam, day, map[string]string{KindSnapshot: "snap", KindDelta: "delta"}[kind])
	path := filepath.Join(w.dir, name)
	// A day is part of the archive only once its index record lands, so a
	// pre-existing file here can only be the orphan of an append that died
	// between writing the day file and the index line — overwrite it
	// (O_TRUNC, not O_EXCL); indexed days are already rejected above.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("archive: creating day file: %w", err)
	}
	// Similarly, drop the partial file if this append fails before its
	// index record is written, so a retry starts clean.
	committed := false
	defer func() {
		if !committed {
			os.Remove(path)
		}
	}()
	bw := bufio.NewWriter(f)

	canonical := io.MultiWriter(crc, count)
	var stored int64
	if kind == KindSnapshot {
		stc := &countingWriter{}
		if err := core.StreamDocument(io.MultiWriter(canonical, bw, stc), doc); err != nil {
			f.Close()
			return fmt.Errorf("archive: streaming snapshot: %w", err)
		}
		stored = stc.n
	} else {
		if err := core.StreamDocument(canonical, doc); err != nil {
			f.Close()
			return fmt.Errorf("archive: checksumming day: %w", err)
		}
		delta := core.DiffDocuments(st.lastDoc, doc)
		// Prove the delta reconstructs this day byte-for-byte BEFORE the
		// index record commits it: delta application assumes canonical
		// entry order, and a document packed from foreign JSON (e.g. an
		// older lexicographically-sorted census file) would otherwise
		// become a permanently unreconstructable day in the append-only
		// store. Failing the append keeps the archive sound.
		back, err := delta.Apply(st.lastDoc)
		if err != nil {
			f.Close()
			return fmt.Errorf("archive: delta does not apply to the previous day: %w", err)
		}
		backCRC := crc32.New(castagnoli)
		if err := core.StreamDocument(backCRC, back); err != nil {
			f.Close()
			return fmt.Errorf("archive: checksumming delta reconstruction: %w", err)
		}
		if backCRC.Sum32() != crc.Sum32() {
			f.Close()
			return fmt.Errorf("archive: day %d (%s) does not survive delta encoding — are the document's entries in canonical numeric prefix order?", day, fam)
		}
		b, err := json.Marshal(delta)
		if err != nil {
			f.Close()
			return fmt.Errorf("archive: encoding delta: %w", err)
		}
		b = append(b, '\n')
		if _, err := bw.Write(b); err != nil {
			f.Close()
			return fmt.Errorf("archive: writing delta: %w", err)
		}
		stored = int64(len(b))
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("archive: flushing day file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("archive: closing day file: %w", err)
	}

	rec := Record{
		Seq:       w.seq,
		Day:       day,
		Family:    fam,
		Date:      doc.Date,
		Kind:      kind,
		File:      name,
		Bytes:     stored,
		FullBytes: count.n,
		CRC:       crc.Sum32(),
		Entries:   len(doc.Entries),
		GCount:    doc.GCount,
		MCount:    doc.MCount,
		Probes:    doc.ProbesTotal(),
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := w.index.Write(line); err != nil {
		return fmt.Errorf("archive: appending index record: %w", err)
	}
	committed = true
	w.appends.Add(1)
	w.storedBytes.Add(stored)
	w.fullBytes.Add(count.n)

	if st == nil {
		st = &famState{}
		w.fams[fam] = st
	}
	st.lastDay = day
	st.lastDoc = doc
	if kind == KindSnapshot {
		st.sinceSnap = 1
	} else {
		st.sinceSnap++
	}
	w.seq++
	return nil
}

// LastDay returns the last appended day for a family, or false when the
// family has no days yet.
func (w *Writer) LastDay(family string) (int, bool) {
	st := w.fams[family]
	if st == nil {
		return 0, false
	}
	return st.lastDay, true
}

// Close releases the index handle. The archive stays readable and
// appendable (via OpenWriter) afterwards.
func (w *Writer) Close() error {
	if w.index == nil {
		return nil
	}
	err := w.index.Close()
	w.index = nil
	w.fams = nil
	return err
}
