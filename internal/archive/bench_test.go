package archive

// Benchmarks for the acceptance bar of the archive layer: on a ≥100-day
// run with realistic day-over-day persistence, the delta-encoded store
// must be measurably smaller and faster to decode than per-day full
// JSON. BenchmarkArchivePack / BenchmarkArchiveDecodeRange vs
// BenchmarkFullJSONDecode; bytes_per_day metrics carry the size story.

import (
	"bytes"
	"sync"
	"testing"

	"github.com/laces-project/laces/internal/core"
)

const (
	benchDays    = 120
	benchEntries = 400
)

var (
	benchOnce  sync.Once
	benchDocs  []*core.Document
	benchFull  [][]byte // canonical per-day JSON
	benchBytes int64
)

func benchChain(b *testing.B) ([]*core.Document, [][]byte) {
	b.Helper()
	benchOnce.Do(func() {
		benchDocs = chain(benchDays, benchEntries)
		for _, d := range benchDocs {
			var buf bytes.Buffer
			if err := d.WriteJSON(&buf); err != nil {
				panic(err)
			}
			benchFull = append(benchFull, buf.Bytes())
			benchBytes += int64(buf.Len())
		}
	})
	return benchDocs, benchFull
}

// BenchmarkArchivePack times packing a 120-day census run into the
// delta-encoded store and reports the size ratio against full JSON.
func BenchmarkArchivePack(b *testing.B) {
	docs, _ := benchChain(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		w, err := Create(dir, Options{SnapshotEvery: 7})
		if err != nil {
			b.Fatal(err)
		}
		for day, d := range docs {
			if err := w.Append(day, d); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			a, err := Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			st := a.Stats()[0]
			b.ReportMetric(float64(st.StoredBytes)/float64(benchDays), "archive_bytes/day")
			b.ReportMetric(float64(st.FullBytes)/float64(benchDays), "fulljson_bytes/day")
			b.ReportMetric(st.Ratio(), "size_ratio")
		}
	}
}

// BenchmarkArchiveDecodeRange times streaming every day of the packed
// archive back out (snapshot parse + delta application).
func BenchmarkArchiveDecodeRange(b *testing.B) {
	docs, _ := benchChain(b)
	dir := b.TempDir()
	w, err := Create(dir, Options{SnapshotEvery: 7})
	if err != nil {
		b.Fatal(err)
	}
	for day, d := range docs {
		if err := w.Append(day, d); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	a, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries := 0
		err := a.Range("ipv4", 0, -1, func(day int, doc *core.Document) error {
			entries += len(doc.Entries)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if entries == 0 {
			b.Fatal("empty decode")
		}
	}
}

// BenchmarkFullJSONDecode is the baseline the archive competes with:
// parsing every day's full JSON document from scratch.
func BenchmarkFullJSONDecode(b *testing.B) {
	_, full := benchChain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries := 0
		for _, raw := range full {
			doc, err := core.ParseDocument(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			entries += len(doc.Entries)
		}
		if entries == 0 {
			b.Fatal("empty decode")
		}
	}
}

// BenchmarkStreamEncode times the streaming codec against the buffered
// encoder on one day's document.
func BenchmarkStreamEncode(b *testing.B) {
	docs, _ := benchChain(b)
	doc := docs[benchDays-1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := &countingWriter{}
		if err := core.StreamDocument(count, doc); err != nil {
			b.Fatal(err)
		}
	}
}
