package archive

import "container/list"

// LRU is a small bounded least-recently-used cache — the one primitive
// behind both the archive's decoded-day cache and the API server's
// day cache, so eviction behaviour has a single implementation.
type LRU[K comparable, V any] struct {
	cap   int
	order *list.List // front = most recent; values are *lruPair[K, V]
	byKey map[K]*list.Element
}

type lruPair[K comparable, V any] struct {
	key K
	val V
}

// NewLRU returns an empty cache bounded to max(1, capacity) entries.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{cap: capacity, order: list.New(), byKey: make(map[K]*list.Element)}
}

// Get returns the cached value and marks it most recently used.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	el, ok := l.byKey[k]
	if !ok {
		var zero V
		return zero, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruPair[K, V]).val, true
}

// Put inserts or refreshes a value, evicting the least recently used
// entries beyond the bound.
func (l *LRU[K, V]) Put(k K, v V) {
	if el, ok := l.byKey[k]; ok {
		el.Value.(*lruPair[K, V]).val = v
		l.order.MoveToFront(el)
		return
	}
	l.byKey[k] = l.order.PushFront(&lruPair[K, V]{key: k, val: v})
	for l.order.Len() > l.cap {
		el := l.order.Back()
		l.order.Remove(el)
		delete(l.byKey, el.Value.(*lruPair[K, V]).key)
	}
}

// Len reports the number of cached entries.
func (l *LRU[K, V]) Len() int { return l.order.Len() }
