package orchestrator

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/laces-project/laces/internal/client"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/wire"
	"github.com/laces-project/laces/internal/worker"
)

var (
	testWorldOnce sync.Once
	testWorld     *netsim.World
)

func world(t testing.TB) *netsim.World {
	t.Helper()
	testWorldOnce.Do(func() {
		cfg := netsim.TestConfig()
		cfg.V4Targets = 4000
		cfg.V6Targets = 1000
		cfg.NumASes = 200
		w, err := netsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		testWorld = w
	})
	return testWorld
}

// eightSites is a small measurement deployment for fast integration tests.
var eightSites = []string{
	"Amsterdam", "New York", "Tokyo", "Sydney",
	"Sao Paulo", "Johannesburg", "Frankfurt", "Singapore",
}

// startCluster boots an orchestrator plus n workers over loopback TCP and
// waits until all workers registered.
func startCluster(t testing.TB, n int) (*Orchestrator, *netsim.Deployment, context.CancelFunc) {
	return startClusterCfg(t, n, Config{})
}

// startClusterCfg is startCluster with orchestrator configuration
// (governance knobs); Addr and Logf are always overridden.
func startClusterCfg(t testing.TB, n int, cfg Config) (*Orchestrator, *netsim.Deployment, context.CancelFunc) {
	t.Helper()
	w := world(t)
	dep, err := w.NewDeployment("itest", eightSites[:n], netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	cfg.Logf = t.Logf
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go o.Serve(ctx)

	for i := 0; i < n; i++ {
		wk, err := worker.New(worker.Config{
			Name:         eightSites[i],
			Orchestrator: o.Addr(),
			NewProber: func(self int) (worker.Prober, error) {
				return worker.NewSimProber(w, dep, self)
			},
			ReconnectMin: 20 * time.Millisecond,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		go wk.Run(ctx)
	}
	deadline := time.Now().Add(5 * time.Second)
	for o.NumWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers connected", o.NumWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return o, dep, cancel
}

// pickTargets selects sample targets of different kinds.
func pickTargets(w *netsim.World, nEach int) (addrs []netip.Addr, anycastAddrs, unicastAddrs map[netip.Addr]bool) {
	anycastAddrs = make(map[netip.Addr]bool)
	unicastAddrs = make(map[netip.Addr]bool)
	var nAny, nUni int
	for i := range w.TargetsV4 {
		tg := &w.TargetsV4[i]
		if !tg.Responsive[packet.ICMP] {
			continue
		}
		switch {
		case tg.Kind == netsim.Anycast && len(tg.Sites) >= 20 && tg.AnycastBornDay == 0 && nAny < nEach:
			anycastAddrs[tg.Addr] = true
			addrs = append(addrs, tg.Addr)
			nAny++
		case tg.Kind == netsim.Unicast && len(tg.TempWindows) == 0 && nUni < nEach:
			if a, ok := w.ASByNumber(tg.Origin); ok && !a.TieSplit && !a.Wobbly && !a.Drifty {
				unicastAddrs[tg.Addr] = true
				addrs = append(addrs, tg.Addr)
				nUni++
			}
		}
		if nAny >= nEach && nUni >= nEach {
			break
		}
	}
	return
}

func TestEndToEndMeasurement(t *testing.T) {
	o, _, cancel := startCluster(t, 8)
	defer cancel()

	w := world(t)
	addrs, anycastAddrs, unicastAddrs := pickTargets(w, 40)
	if len(anycastAddrs) < 10 || len(unicastAddrs) < 10 {
		t.Fatalf("too few sample targets: %d anycast, %d unicast", len(anycastAddrs), len(unicastAddrs))
	}

	cli := &client.Client{Addr: o.Addr()}
	def := wire.MeasurementDef{ID: 42, Protocol: "ICMP", OffsetMS: 1000, Rate: 1e6}
	ctx, cancelRun := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelRun()
	out, err := cli.Run(ctx, def, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Workers != 8 {
		t.Fatalf("workers = %d, want 8", out.Workers)
	}
	if len(out.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range out.Results {
		if r.Measurement != 42 {
			t.Fatalf("stray measurement id %d", r.Measurement)
		}
		if r.RxWorker < 0 || r.RxWorker >= 8 || r.TxWorker < 0 || r.TxWorker >= 8 {
			t.Fatalf("worker index out of range: %+v", r)
		}
		if r.RTTMicros <= 0 {
			t.Fatalf("non-positive RTT: %+v", r)
		}
	}

	sets := out.ReceiverSets()
	for a := range unicastAddrs {
		if s, ok := sets[a.String()]; ok && len(s) != 1 {
			t.Errorf("clean unicast %s received at %d VPs", a, len(s))
		}
	}
	multi := 0
	for a := range anycastAddrs {
		if len(sets[a.String()]) >= 2 {
			multi++
		}
	}
	if multi < len(anycastAddrs)*2/3 {
		t.Fatalf("only %d of %d wide anycast targets detected over the wire", multi, len(anycastAddrs))
	}
	if len(out.Candidates()) < multi {
		t.Fatal("Candidates() inconsistent with receiver sets")
	}
}

func TestEndToEndTCPAndDNS(t *testing.T) {
	o, _, cancel := startCluster(t, 4)
	defer cancel()
	w := world(t)

	for _, proto := range []string{"TCP", "DNS"} {
		var addrs []netip.Addr
		p, _ := packet.ParseProtocol(proto)
		for i := range w.TargetsV4 {
			tg := &w.TargetsV4[i]
			if tg.Responsive[p] && tg.Kind == netsim.Anycast && len(tg.Sites) >= 20 {
				addrs = append(addrs, tg.Addr)
				if len(addrs) >= 10 {
					break
				}
			}
		}
		if len(addrs) == 0 {
			t.Fatalf("no %s targets", proto)
		}
		cli := &client.Client{Addr: o.Addr()}
		ctx, cancelRun := context.WithTimeout(context.Background(), 20*time.Second)
		out, err := cli.Run(ctx, wire.MeasurementDef{ID: 7, Protocol: proto, OffsetMS: 1000, Rate: 1e6}, addrs, nil)
		cancelRun()
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if len(out.Candidates()) == 0 {
			t.Fatalf("%s measurement found no candidates", proto)
		}
	}
}

func TestMeasurementSurvivesWorkerLoss(t *testing.T) {
	o, _, cancel := startCluster(t, 4)
	defer cancel()
	w := world(t)

	// A saboteur "worker" that registers, then dies as soon as targets
	// arrive — the link-failure case of §4.2.3.
	go func() {
		nc, err := net.Dial("tcp", o.Addr())
		if err != nil {
			return
		}
		conn := wire.NewConn(nc)
		_ = conn.Write(wire.MsgHello, wire.Hello{Role: "worker", Name: "doomed"})
		for {
			typ, _, err := conn.Read()
			if err != nil {
				return
			}
			if typ == wire.MsgTargets {
				conn.Close() // die mid-measurement
				return
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for o.NumWorkers() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("saboteur did not connect")
		}
		time.Sleep(5 * time.Millisecond)
	}

	addrs, _, _ := pickTargets(w, 20)
	cli := &client.Client{Addr: o.Addr()}
	ctx, cancelRun := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancelRun()
	out, err := cli.Run(ctx, wire.MeasurementDef{ID: 9, Protocol: "ICMP", OffsetMS: 1000, Rate: 1e6}, addrs, nil)
	if err != nil {
		t.Fatalf("measurement did not survive worker loss: %v", err)
	}
	if len(out.Results) == 0 {
		t.Fatal("no results after worker loss")
	}
}

func TestMeasurementSurvivesInjectedDisconnect(t *testing.T) {
	o, dep, cancel := startCluster(t, 4)
	defer cancel()
	w := world(t)

	// A fifth worker with deterministic fault injection: it probes a
	// handful of targets, then drops its connection mid-measurement (the
	// pre-July-2025 disconnect incidents). The long reconnect floor keeps
	// it out of the rest of the test.
	ctx, cancelChaos := context.WithCancel(context.Background())
	defer cancelChaos()
	wk, err := worker.New(worker.Config{
		Name:         "chaos",
		Orchestrator: o.Addr(),
		NewProber: func(self int) (worker.Prober, error) {
			return worker.NewSimProber(w, dep, self%dep.NumSites())
		},
		ReconnectMin:     time.Minute,
		Logf:             t.Logf,
		FailAfterTargets: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	go wk.Run(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for o.NumWorkers() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("chaos worker did not connect")
		}
		time.Sleep(5 * time.Millisecond)
	}

	addrs, _, _ := pickTargets(w, 20)
	cli := &client.Client{Addr: o.Addr()}
	runCtx, cancelRun := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancelRun()
	out, err := cli.Run(runCtx, wire.MeasurementDef{ID: 11, Protocol: "ICMP", OffsetMS: 1000, Rate: 1e6}, addrs, nil)
	if err != nil {
		t.Fatalf("measurement did not survive the injected disconnect: %v", err)
	}
	if out.Workers != 5 {
		t.Fatalf("measurement started with %d workers, want 5", out.Workers)
	}
	if len(out.Results) == 0 {
		t.Fatal("no results after injected disconnect")
	}
	if o.NumWorkers() >= 5 {
		t.Fatal("injected disconnect did not drop the chaos worker")
	}
}

func TestWorkerReconnects(t *testing.T) {
	w := world(t)
	dep, err := w.NewDeployment("itest-rc", eightSites[:2], netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{Addr: "127.0.0.1:0", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go o.Serve(ctx)

	// A dialer whose first connection gets severed shortly after setup,
	// forcing the worker's automatic reconnect path.
	var mu sync.Mutex
	dials := 0
	d := &net.Dialer{}
	wk, err := worker.New(worker.Config{
		Name:         "flaky",
		Orchestrator: o.Addr(),
		NewProber: func(self int) (worker.Prober, error) {
			return worker.NewSimProber(w, dep, self%dep.NumSites())
		},
		ReconnectMin: 10 * time.Millisecond,
		Logf:         t.Logf,
		Dialer: func(ctx context.Context, addr string) (net.Conn, error) {
			nc, err := d.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			dials++
			first := dials == 1
			mu.Unlock()
			if first {
				go func() {
					time.Sleep(50 * time.Millisecond)
					nc.Close()
				}()
			}
			return nc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go wk.Run(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		d := dials
		mu.Unlock()
		if d >= 2 && o.NumWorkers() >= 1 {
			return // reconnected
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker did not reconnect (dials=%d, workers=%d)", d, o.NumWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRunWithoutWorkersFails(t *testing.T) {
	o, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go o.Serve(ctx)

	cli := &client.Client{Addr: o.Addr()}
	runCtx, cancelRun := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelRun()
	_, err = cli.Run(runCtx, wire.MeasurementDef{ID: 1, Protocol: "ICMP", Rate: 1e6},
		[]netip.Addr{netip.MustParseAddr("192.0.2.1")}, nil)
	if err == nil {
		t.Fatal("measurement without workers should fail")
	}
}

// BenchmarkOrchestratorThroughput measures end-to-end distributed
// measurement throughput (targets streamed, probed and aggregated per
// second) over real loopback TCP — the streaming-aggregation ablation of
// DESIGN.md §6.
func BenchmarkOrchestratorThroughput(b *testing.B) {
	o, _, cancel := startCluster(b, 4)
	defer cancel()
	w := world(b)
	addrs, _, _ := pickTargets(w, 100)
	cli := &client.Client{Addr: o.Addr()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancelRun := context.WithTimeout(context.Background(), 60*time.Second)
		def := wire.MeasurementDef{ID: uint16(i + 100), Protocol: "ICMP", OffsetMS: 1000, Rate: 1e6}
		out, err := cli.Run(ctx, def, addrs, nil)
		cancelRun()
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Results) == 0 {
			b.Fatal("no results")
		}
	}
	b.ReportMetric(float64(len(addrs)), "targets/run")
}
