package orchestrator

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/laces-project/laces/internal/budget"
	"github.com/laces-project/laces/internal/client"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/wire"
	"github.com/laces-project/laces/internal/worker"
)

// syncBuffer is a concurrency-safe sink for flight-recorder dumps.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, b.buf.Len())
	copy(out, b.buf.Bytes())
	return out
}

// decodeFlightDump parses a flight-recorder JSONL dump (possibly several
// concatenated dumps).
func decodeFlightDump(t *testing.T, data []byte) []obs.FlightEvent {
	t.Helper()
	var out []obs.FlightEvent
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var ev obs.FlightEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("flight dump is not valid JSONL: %v", err)
		}
		out = append(out, ev)
	}
	return out
}

// tracedCluster boots an orchestrator (with registry and flight sink)
// plus n traced workers over loopback TCP. The returned cancel silences
// logging before tearing the cluster down, so disconnect messages from
// draining goroutines cannot land after the test completes.
func tracedCluster(t *testing.T, n int, cfg Config) (*Orchestrator, []*obs.Registry, func(format string, args ...any), context.CancelFunc) {
	t.Helper()
	w := world(t)
	dep, err := w.NewDeployment("trace-"+t.Name(), eightSites[:n], netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	var logMu sync.Mutex
	quiet := false
	logf := func(format string, args ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		if !quiet {
			t.Logf(format, args...)
		}
	}
	cfg.Addr = "127.0.0.1:0"
	cfg.Logf = logf
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go o.Serve(ctx)

	regs := make([]*obs.Registry, n)
	for i := 0; i < n; i++ {
		regs[i] = obs.New()
		wk, err := worker.New(worker.Config{
			Name:         eightSites[i],
			Orchestrator: o.Addr(),
			NewProber: func(self int) (worker.Prober, error) {
				return worker.NewSimProber(w, dep, self)
			},
			ReconnectMin: 20 * time.Millisecond,
			Logf:         logf,
			Obs:          regs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		go wk.Run(ctx)
	}
	deadline := time.Now().Add(5 * time.Second)
	for o.NumWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers connected", o.NumWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	shutdown := func() {
		logMu.Lock()
		quiet = true
		logMu.Unlock()
		cancel()
	}
	return o, regs, logf, shutdown
}

// TestDistributedTraceAssembly is the acceptance scenario: one
// orchestrator, two workers and a CLI over real sockets produce a
// single merged trace containing spans from all three processes with
// per-worker attribution, exportable as JSONL and Chrome trace_event.
func TestDistributedTraceAssembly(t *testing.T) {
	oReg := obs.New()
	o, _, _, cancel := tracedCluster(t, 2, Config{Obs: oReg})
	defer cancel()
	w := world(t)
	addrs, _, _ := pickTargets(w, 20)

	cliReg := obs.New()
	cli := &client.Client{Addr: o.Addr(), Obs: cliReg}
	ctx, cancelRun := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelRun()
	out, err := cli.Run(ctx, wire.MeasurementDef{ID: 21, Protocol: "ICMP", OffsetMS: 1000, Rate: 1e6}, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Workers != 2 || len(out.Results) == 0 {
		t.Fatalf("measurement failed: workers=%d results=%d", out.Workers, len(out.Results))
	}

	// After Run the CLI registry holds the assembled cross-process trace.
	spans := cliReg.TraceSpans()
	if len(spans) == 0 {
		t.Fatal("CLI registry holds no trace spans")
	}
	traceID := spans[0].TraceID
	components := map[string]int{}
	workers := map[string]bool{}
	names := map[string]int{}
	for _, sp := range spans {
		if sp.TraceID != traceID {
			t.Fatalf("span %q carries trace %x, want %x — trace did not assemble", sp.Name, sp.TraceID, traceID)
		}
		components[sp.Component]++
		names[sp.Name]++
		if sp.Name == "worker/measure" {
			for _, a := range sp.Attrs {
				if a.Name == "worker" {
					workers[a.Value] = true
				}
			}
		}
	}
	for _, c := range []string{"cli", "orchestrator", "worker-Amsterdam", "worker-New York"} {
		if components[c] == 0 {
			t.Fatalf("no spans from component %q (have %v)", c, components)
		}
	}
	for _, n := range []string{"measure", "orchestrator/measurement", "stream", "aggregate", "worker/measure"} {
		if names[n] == 0 {
			t.Fatalf("span %q missing from assembled trace (have %v)", n, names)
		}
	}
	if names["worker/measure"] != 2 || len(workers) != 2 {
		t.Fatalf("per-worker attribution incomplete: %d worker spans over indices %v", names["worker/measure"], workers)
	}

	// Both export formats round-trip from the same registry.
	ex := cliReg.ExportTrace()
	var jsonl bytes.Buffer
	if err := ex.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadTraceJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(ex.Spans) {
		t.Fatalf("JSONL round trip lost spans: %d != %d", len(back.Spans), len(ex.Spans))
	}
	var chrome bytes.Buffer
	if err := ex.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			procs[ev["args"].(map[string]any)["name"].(string)] = true
		}
	}
	for _, c := range []string{"cli", "orchestrator", "worker-Amsterdam", "worker-New York"} {
		if !procs[c] {
			t.Fatalf("chrome export missing process %q (have %v)", c, procs)
		}
	}
}

// TestTraceChaosWorkerKillReconciles kills a worker mid-shard and pins
// that the assembled trace still reconciles with the budget ledger and
// the Complete frame — no lost or double-counted probe accounting — and
// that the failure auto-dumps both flight recorders.
func TestTraceChaosWorkerKillReconciles(t *testing.T) {
	oReg := obs.New()
	oSink := &syncBuffer{}
	// DailyProbes caps admission: with 5 workers connected each target
	// charges 5 probes, so only 20 of the ~40 requested targets stream.
	o, _, logf, cancel := tracedCluster(t, 4, Config{
		Obs:        oReg,
		FlightSink: oSink,
		Budget:     budget.Budget{DailyProbes: 100},
	})
	defer cancel()
	w := world(t)

	// The chaos worker: probes 5 targets, then dies. The long reconnect
	// floor keeps it from rejoining within the test.
	chaosReg := obs.New()
	chaosSink := &syncBuffer{}
	dep, err := w.NewDeployment("trace-chaos", eightSites[:4], netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelChaos := context.WithCancel(context.Background())
	defer cancelChaos()
	wk, err := worker.New(worker.Config{
		Name:         "chaos",
		Orchestrator: o.Addr(),
		NewProber: func(self int) (worker.Prober, error) {
			return worker.NewSimProber(w, dep, self%dep.NumSites())
		},
		ReconnectMin:     time.Minute,
		Logf:             logf,
		FailAfterTargets: 5,
		Obs:              chaosReg,
		FlightSink:       chaosSink,
	})
	if err != nil {
		t.Fatal(err)
	}
	go wk.Run(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for o.NumWorkers() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("chaos worker did not connect")
		}
		time.Sleep(5 * time.Millisecond)
	}

	addrs, _, _ := pickTargets(w, 20)
	demanded := len(addrs)
	cliReg := obs.New()
	cli := &client.Client{Addr: o.Addr(), Obs: cliReg}
	runCtx, cancelRun := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelRun()
	out, err := cli.Run(runCtx, wire.MeasurementDef{ID: 23, Protocol: "ICMP", OffsetMS: 1000, Rate: 1e6}, addrs, nil)
	if err != nil {
		t.Fatalf("measurement did not survive the chaos kill: %v", err)
	}
	if out.Workers != 5 {
		t.Fatalf("started with %d workers, want 5", out.Workers)
	}

	// Reconcile the trace's accounting against the ledger's invariant:
	// admitted + skipped == demanded, and the stream span streamed
	// exactly the admitted set.
	attr := func(sp obs.TraceSpan, name string) (string, bool) {
		for _, a := range sp.Attrs {
			if a.Name == name {
				return a.Value, true
			}
		}
		return "", false
	}
	spans := cliReg.TraceSpans()
	var kept, skipped, streamed int64 = -1, -1, -1
	var workerSents []int64
	var traceID uint64
	for _, sp := range spans {
		if traceID == 0 {
			traceID = sp.TraceID
		}
		if sp.TraceID != traceID {
			t.Fatalf("span %q carries a foreign trace ID", sp.Name)
		}
		switch sp.Name {
		case "admit":
			if v, ok := attr(sp, "kept"); ok {
				kept, _ = strconv.ParseInt(v, 10, 64)
			}
			if v, ok := attr(sp, "skipped"); ok {
				skipped, _ = strconv.ParseInt(v, 10, 64)
			}
		case "stream":
			if v, ok := attr(sp, "streamed"); ok {
				streamed, _ = strconv.ParseInt(v, 10, 64)
			}
		case "worker/measure":
			if v, ok := attr(sp, "sent"); ok {
				n, _ := strconv.ParseInt(v, 10, 64)
				workerSents = append(workerSents, n)
			}
		}
	}
	if kept < 0 || skipped < 0 || streamed < 0 {
		t.Fatalf("trace is missing accounting spans: kept=%d skipped=%d streamed=%d", kept, skipped, streamed)
	}
	if kept+skipped != int64(demanded) {
		t.Fatalf("ledger reconciliation broken in trace: kept %d + skipped %d != demanded %d", kept, skipped, demanded)
	}
	if skipped == 0 || out.Skipped != skipped {
		t.Fatalf("budget skips: trace says %d, Complete says %d (want equal, nonzero)", skipped, out.Skipped)
	}
	if streamed != kept {
		t.Fatalf("streamed %d of %d admitted targets", streamed, kept)
	}
	// The chaos worker died before handing its span back: exactly the 4
	// survivors report, each having probed every streamed target — no
	// probe lost from, or double-counted into, the assembled trace.
	if len(workerSents) != 4 {
		t.Fatalf("%d worker spans in trace, want 4 (survivors only)", len(workerSents))
	}
	for _, n := range workerSents {
		if n != streamed {
			t.Fatalf("surviving worker probed %d of %d streamed targets", n, streamed)
		}
	}
	// The chaos worker's own record stayed local, marked aborted.
	var chaosSpan *obs.TraceSpan
	for _, sp := range chaosReg.TraceSpans() {
		if sp.Name == "worker/measure" {
			chaosSpan = &sp
			break
		}
	}
	if chaosSpan == nil {
		t.Fatal("chaos worker recorded no local measure span")
	}
	if v, _ := attr(*chaosSpan, "aborted"); v != "true" {
		t.Fatalf("chaos worker span not marked aborted: %+v", chaosSpan.Attrs)
	}
	if v, _ := attr(*chaosSpan, "sent"); v != "5" {
		t.Fatalf("chaos worker span sent=%q, want 5", v)
	}

	// Both flight recorders auto-dumped on the failure trigger.
	oEvents := decodeFlightDump(t, oSink.Bytes())
	kinds := map[string]int{}
	var disconnectFields []obs.Label
	for _, ev := range oEvents {
		kinds[ev.Kind]++
		if ev.Kind == "worker_down" && len(ev.Fields) > 0 {
			disconnectFields = ev.Fields
		}
	}
	if kinds["worker_down"] == 0 || kinds["flight_dump"] == 0 {
		t.Fatalf("orchestrator dump lacks the disconnect trigger: %v", kinds)
	}
	if kinds["budget_denied"] == 0 || kinds["frame_tx"] == 0 || kinds["frame_rx"] == 0 {
		t.Fatalf("orchestrator dump lacks budget/frame events: %v", kinds)
	}
	// Satellite: the disconnect record carries measurement, shard range
	// and per-connection frame counts.
	fieldNames := map[string]bool{}
	for _, f := range disconnectFields {
		fieldNames[f.Name] = true
	}
	for _, want := range []string{"measurement", "shard_base", "shard_end", "frames_tx", "frames_rx"} {
		if !fieldNames[want] {
			t.Fatalf("worker_down event missing %q (have %v)", want, disconnectFields)
		}
	}
	chaosEvents := decodeFlightDump(t, chaosSink.Bytes())
	ckinds := map[string]int{}
	for _, ev := range chaosEvents {
		ckinds[ev.Kind]++
	}
	if ckinds["chaos_kill"] == 0 || ckinds["flight_dump"] == 0 {
		t.Fatalf("chaos worker dump lacks its kill record: %v", ckinds)
	}
}
