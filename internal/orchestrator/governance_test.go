package orchestrator

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"github.com/laces-project/laces/internal/budget"
	"github.com/laces-project/laces/internal/client"
	"github.com/laces-project/laces/internal/wire"
)

// TestStreamingPathEnforcesLedger pins the orchestrator-side governance:
// targets inside an opted-out prefix are never streamed to workers, the
// global probe budget caps the streamed set, and everything withheld is
// reported in the Complete frame's Skipped count.
func TestStreamingPathEnforcesLedger(t *testing.T) {
	w := world(t)
	addrs, _, _ := pickTargets(w, 40)
	if len(addrs) < 60 {
		t.Fatalf("too few sample targets: %d", len(addrs))
	}
	addrs = addrs[:60]

	optedOut := addrs[0]
	reg := budget.NewRegistry()
	reg.AddPrefix(netip.PrefixFrom(optedOut, 24))

	const sites = 8
	const admitted = 40 // of the 59 non-opted targets
	o, _, cancel := startClusterCfg(t, sites, Config{
		Budget: budget.Budget{DailyProbes: sites * admitted},
		OptOut: reg,
	})
	defer cancel()

	cli := &client.Client{Addr: o.Addr()}
	def := wire.MeasurementDef{ID: 7, Protocol: "ICMP", OffsetMS: 1000, Rate: 1e6}
	ctx, cancelRun := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelRun()
	out, err := cli.Run(ctx, def, addrs, nil)
	if err != nil {
		t.Fatal(err)
	}

	wantSkipped := int64(len(addrs) - admitted) // 1 opt-out + 19 over budget
	if out.Skipped != wantSkipped {
		t.Fatalf("Skipped = %d, want %d", out.Skipped, wantSkipped)
	}
	probed := make(map[string]bool)
	for _, r := range out.Results {
		probed[r.Target] = true
	}
	if probed[optedOut.String()] {
		t.Fatalf("opted-out target %s was probed", optedOut)
	}
	if len(probed) > admitted {
		t.Fatalf("results reference %d targets, budget admits %d", len(probed), admitted)
	}
	if len(out.Results) == 0 {
		t.Fatal("governed measurement returned no results at all")
	}

	// Admission is first come, first charged in request order: every
	// probed target must be among the first `admitted` non-opted targets.
	streamed := make(map[string]bool, admitted)
	n := 0
	for _, a := range addrs {
		if a == optedOut {
			continue
		}
		if n++; n > admitted {
			break
		}
		streamed[a.String()] = true
	}
	for tgt := range probed {
		if !streamed[tgt] {
			t.Fatalf("target %s probed but outside the deterministic admitted set", tgt)
		}
	}
}
