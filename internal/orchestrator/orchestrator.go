// Package orchestrator implements the central LACeS controller (§4.2.1):
// it accepts Worker and CLI connections, forwards measurement definitions,
// streams hitlist targets to all workers at the CLI-defined rate
// (synchronized probing, §4.2.3), aggregates the result streams from all
// workers into a single stream towards the CLI, and keeps measurements
// running when workers disconnect mid-run (failure awareness).
package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/laces-project/laces/internal/budget"
	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/rate"
	"github.com/laces-project/laces/internal/wire"
)

// Config parameterises an Orchestrator.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:4000"; use ":0" for
	// an ephemeral port in tests.
	Addr string
	// BatchSize is the number of targets per streamed frame.
	BatchSize int
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Budget, when non-zero, caps the probes the orchestrator will
	// stream over its lifetime (targets arrive as bare addresses, so
	// only the global daily cap applies; the orchestrator treats its
	// uptime as one ledger day). Each target charges one probe per
	// participating worker.
	Budget budget.Budget
	// OptOut, when set, suppresses streaming of targets inside any
	// opted-out prefix. Suppressed targets are reported in the Complete
	// frame's Skipped count — never silently dropped.
	OptOut *budget.Registry
	// Obs receives the orchestrator's telemetry: control-plane frame and
	// byte counts, connected-worker and in-flight-target gauges, rate
	// pacer waits, and a worker_disconnect event per mid-run loss. Nil
	// disables instrumentation. A non-nil registry also enables the
	// distributed-tracing layer: the orchestrator joins the trace carried
	// by the CLI's Run frame, propagates it to workers, ingests their
	// span batches, and runs a flight recorder over frame I/O, budget
	// denials and worker lifecycle.
	Obs *obs.Registry
	// FlightSink receives a flight-recorder JSONL dump on failure
	// triggers (worker disconnect mid-measurement, MsgError, measurement
	// error/timeout). Nil disables automatic dumps; the recorder itself
	// stays queryable through Obs.
	FlightSink io.Writer
}

// Orchestrator accepts workers and serves measurement requests.
type Orchestrator struct {
	cfg Config
	ln  net.Listener
	// ledger enforces responsible-probing governance on the streaming
	// path; nil when the configuration enables none.
	ledger *budget.Ledger

	// stats is the shared control-plane traffic accounting every accepted
	// connection feeds; disconnects counts workers lost mid-run (a nil
	// no-op counter when Config.Obs is nil). rateWaits/rateWaitNanos
	// accumulate the streaming limiters' pacing sleeps across
	// measurements.
	stats         *wire.Stats
	disconnects   *obs.Counter
	rateWaits     atomic.Int64
	rateWaitNanos atomic.Int64

	// flight is the orchestrator's flight recorder (nil without Obs);
	// activeTrace is the trace context of the in-flight measurement, so
	// frame taps and lifecycle events link to it. flightMu serialises
	// automatic dumps to FlightSink.
	flight      *obs.Recorder
	activeTrace atomic.Pointer[obs.TraceContext]
	flightMu    sync.Mutex

	mu      sync.Mutex
	workers map[int]*workerConn
	nextIdx int
	active  *measurement
}

type workerConn struct {
	idx  int
	name string
	conn *wire.Conn
}

// measurement is the state of the (single) in-flight measurement.
type measurement struct {
	id       uint16
	total    atomic.Int64 // targets to stream (post-governance)
	streamed atomic.Int64 // targets streamed to workers so far
	results  chan wire.Result
	done     chan int      // worker indices reporting completion
	gone     chan int      // worker indices lost mid-measurement
	finished chan struct{} // closed at teardown so producers never block
}

// outstanding returns the targets not yet streamed to workers.
func (m *measurement) outstanding() int64 {
	if out := m.total.Load() - m.streamed.Load(); out > 0 {
		return out
	}
	return 0
}

// New starts listening.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1000
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("orchestrator: listening on %s: %w", cfg.Addr, err)
	}
	o := &Orchestrator{
		cfg:     cfg,
		ln:      ln,
		workers: make(map[int]*workerConn),
		stats:   &wire.Stats{},
	}
	if !cfg.Budget.IsZero() || cfg.OptOut != nil {
		o.ledger = budget.NewLedger(cfg.Budget, cfg.OptOut)
	}
	o.disconnects = cfg.Obs.Counter("laces_orchestrator_worker_disconnects_total",
		"Workers lost while connected to this orchestrator.")
	cfg.Obs.SetTraceComponent("orchestrator")
	o.flight = cfg.Obs.EnableFlight("orchestrator", 4096)
	if reg := cfg.Obs; reg != nil {
		st := o.stats
		reg.CounterFunc("laces_wire_frames_total",
			"Control-plane frames moved, by direction.",
			func() float64 { return float64(st.FramesTx()) }, obs.L("dir", "tx"))
		reg.CounterFunc("laces_wire_frames_total",
			"Control-plane frames moved, by direction.",
			func() float64 { return float64(st.FramesRx()) }, obs.L("dir", "rx"))
		reg.CounterFunc("laces_wire_bytes_total",
			"Control-plane bytes moved (frame headers included), by direction.",
			func() float64 { return float64(st.BytesTx()) }, obs.L("dir", "tx"))
		reg.CounterFunc("laces_wire_bytes_total",
			"Control-plane bytes moved (frame headers included), by direction.",
			func() float64 { return float64(st.BytesRx()) }, obs.L("dir", "rx"))
		reg.GaugeFunc("laces_orchestrator_workers",
			"Workers currently connected.",
			func() float64 { return float64(o.NumWorkers()) })
		reg.GaugeFunc("laces_orchestrator_targets_inflight",
			"Targets accepted but not yet streamed in the active measurement.",
			func() float64 {
				o.mu.Lock()
				m := o.active
				o.mu.Unlock()
				if m == nil {
					return 0
				}
				return float64(m.outstanding())
			})
		reg.CounterFunc("laces_rate_waits_total",
			"Times the streaming rate limiter slept for a token.",
			func() float64 { return float64(o.rateWaits.Load()) })
		reg.CounterFunc("laces_rate_wait_seconds_total",
			"Total time the streaming rate limiter spent pacing.",
			func() float64 { return time.Duration(o.rateWaitNanos.Load()).Seconds() })
	}
	return o, nil
}

// Addr returns the bound listen address.
func (o *Orchestrator) Addr() string { return o.ln.Addr().String() }

// NumWorkers returns the number of currently connected workers.
func (o *Orchestrator) NumWorkers() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.workers)
}

// Serve accepts connections until ctx is cancelled.
func (o *Orchestrator) Serve(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		o.ln.Close()
	}()
	for {
		nc, err := o.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("orchestrator: accept: %w", err)
		}
		conn := wire.NewConn(nc)
		conn.SetStats(o.stats)
		if o.flight != nil {
			conn.SetTap(o.frameEvent)
		}
		go o.handle(ctx, conn)
	}
}

// frameEvent is the per-connection wire tap: every frame the
// orchestrator moves becomes one flight-recorder event, linked to the
// active measurement's trace.
func (o *Orchestrator) frameEvent(sent bool, t wire.MsgType, n int) {
	kind := "frame_rx"
	if sent {
		kind = "frame_tx"
	}
	o.flight.Record(kind, t.String(), o.activeTrace.Load(), int64(n))
}

// dumpFlight writes the flight-recorder contents to the configured sink
// — the automatic dump fired on failure triggers. The trigger itself is
// recorded first so the dump names its reason.
func (o *Orchestrator) dumpFlight(reason string) {
	if o.flight == nil || o.cfg.FlightSink == nil {
		return
	}
	o.flight.Record("flight_dump", reason, o.activeTrace.Load(), 0)
	o.flightMu.Lock()
	defer o.flightMu.Unlock()
	if err := o.flight.WriteJSONL(o.cfg.FlightSink); err != nil {
		o.cfg.Logf("orchestrator: flight dump failed: %v", err)
	}
}

// handle dispatches one connection by its hello role.
func (o *Orchestrator) handle(ctx context.Context, conn *wire.Conn) {
	defer conn.Close()
	typ, raw, err := conn.Read()
	if err != nil || typ != wire.MsgHello {
		return
	}
	hello, err := wire.Decode[wire.Hello](raw)
	if err != nil {
		return
	}
	switch hello.Role {
	case "worker":
		o.handleWorker(conn, hello)
	case "cli":
		o.handleCLI(ctx, conn)
	default:
		_ = conn.Write(wire.MsgError, wire.ErrorMsg{Text: "unknown role " + hello.Role})
	}
}

// handleWorker registers the worker and pumps its frames until it
// disconnects.
func (o *Orchestrator) handleWorker(conn *wire.Conn, hello wire.Hello) {
	o.mu.Lock()
	idx := o.nextIdx
	o.nextIdx++
	wc := &workerConn{idx: idx, name: hello.Name, conn: conn}
	o.workers[idx] = wc
	total := len(o.workers)
	o.mu.Unlock()
	o.cfg.Logf("orchestrator: worker %s connected as site %d (%d online)", hello.Name, idx, total)
	o.flight.Record("worker_up", hello.Name, hello.Trace, int64(idx))

	if err := conn.Write(wire.MsgHelloAck, wire.HelloAck{Worker: idx, Workers: total}); err != nil {
		o.dropWorker(idx)
		return
	}
	for {
		typ, raw, err := conn.Read()
		if err != nil {
			o.dropWorker(idx)
			return
		}
		o.mu.Lock()
		m := o.active
		o.mu.Unlock()
		switch typ {
		case wire.MsgResult:
			if m == nil {
				continue // stale result after completion: drop
			}
			res, err := wire.Decode[wire.Result](raw)
			if err != nil {
				continue
			}
			select {
			case m.results <- res:
			case <-m.finished:
				// Measurement tore down while this result was in flight;
				// drop it rather than block the worker's frame pump.
			}
		case wire.MsgWorkerDone:
			if m != nil {
				m.done <- idx
			}
		case wire.MsgTrace:
			// A worker hands back its completed spans (and the
			// trace-linked tail of its flight recorder) at the end of its
			// part of a measurement; ingesting them here is what turns
			// per-process records into one assembled trace.
			batch, err := wire.Decode[wire.TraceBatch](raw)
			if err != nil {
				continue
			}
			o.cfg.Obs.IngestTraceSpans(batch.Spans)
			o.flight.Ingest(batch.Events)
		case wire.MsgError:
			em, err := wire.Decode[wire.ErrorMsg](raw)
			if err != nil {
				continue
			}
			o.cfg.Logf("orchestrator: worker %d error: %s", idx, em.Text)
			o.flight.Record("error", em.Text, o.activeTrace.Load(), int64(idx))
			o.dumpFlight("worker_error")
		}
	}
}

// dropWorker removes a disconnected worker and informs the active
// measurement so it does not wait for it (§4.2.3 failure awareness).
// A loss mid-measurement emits one structured event — log line and obs
// event — carrying the worker, the measurement and the targets still
// unstreamed, so operators can judge the coverage impact at a glance.
func (o *Orchestrator) dropWorker(idx int) {
	o.mu.Lock()
	wc := o.workers[idx]
	delete(o.workers, idx)
	m := o.active
	o.mu.Unlock()
	o.disconnects.Inc()
	name := ""
	if wc != nil {
		name = wc.name
	}
	if m != nil {
		// The full disconnect context an operator needs to judge the
		// loss: which measurement, the shard range the worker had been
		// streamed (every worker probes the same [0, streamed) range),
		// what was still outstanding, and the connection's own
		// frame/byte counts for tell-apart between "died silently" and
		// "died mid-stream".
		outstanding := m.outstanding()
		streamed := m.streamed.Load()
		fields := []obs.Label{
			obs.L("worker", strconv.Itoa(idx)),
			obs.L("name", name),
			obs.L("measurement", strconv.FormatUint(uint64(m.id), 10)),
			obs.L("shard_base", "0"),
			obs.L("shard_end", strconv.FormatInt(streamed, 10)),
			obs.L("targets_total", strconv.FormatInt(m.total.Load(), 10)),
			obs.L("targets_outstanding", strconv.FormatInt(outstanding, 10)),
		}
		if wc != nil {
			cs := wc.conn.ConnStats()
			fields = append(fields,
				obs.L("frames_tx", strconv.FormatInt(cs.FramesTx(), 10)),
				obs.L("frames_rx", strconv.FormatInt(cs.FramesRx(), 10)),
				obs.L("bytes_tx", strconv.FormatInt(cs.BytesTx(), 10)),
				obs.L("bytes_rx", strconv.FormatInt(cs.BytesRx(), 10)))
		}
		o.cfg.Logf("orchestrator: event=worker_disconnect worker=%d name=%q measurement=%d shard=[0,%d) targets_outstanding=%d",
			idx, name, m.id, streamed, outstanding)
		o.cfg.Obs.Event("worker_disconnect", fields...)
		o.flight.Record("worker_down", name, o.activeTrace.Load(), int64(idx), fields...)
		o.dumpFlight("worker_disconnect")
		select {
		case m.gone <- idx:
		default:
		}
		return
	}
	o.cfg.Logf("orchestrator: worker %d disconnected", idx)
	o.flight.Record("worker_down", name, nil, int64(idx))
}

// handleCLI serves one measurement request.
func (o *Orchestrator) handleCLI(ctx context.Context, conn *wire.Conn) {
	typ, raw, err := conn.Read()
	if err != nil || typ != wire.MsgRun {
		return
	}
	req, err := wire.Decode[wire.Run](raw)
	if err != nil {
		_ = conn.Write(wire.MsgError, wire.ErrorMsg{Text: err.Error()})
		return
	}
	if err := o.runMeasurement(ctx, conn, req); err != nil {
		o.flight.Record("error", err.Error(), o.activeTrace.Load(), 0)
		o.dumpFlight("measurement_error")
		_ = conn.Write(wire.MsgError, wire.ErrorMsg{Text: err.Error()})
	}
}

// runMeasurement executes one measurement across the connected workers,
// forwarding every result frame to the CLI.
func (o *Orchestrator) runMeasurement(ctx context.Context, cli *wire.Conn, req wire.Run) error {
	o.mu.Lock()
	if o.active != nil {
		o.mu.Unlock()
		return errors.New("orchestrator: a measurement is already running")
	}
	m := &measurement{
		id:       req.Def.ID,
		results:  make(chan wire.Result, 4096),
		done:     make(chan int, 64),
		gone:     make(chan int, 64),
		finished: make(chan struct{}),
	}
	m.total.Store(int64(len(req.Targets)))
	o.active = m
	participants := make([]*workerConn, 0, len(o.workers))
	for _, wc := range o.workers {
		participants = append(participants, wc)
	}
	// Stable fan-out order (registration index, not map order) so slot
	// assignment and batch delivery are reproducible across runs.
	sort.Slice(participants, func(i, j int) bool { return participants[i].idx < participants[j].idx })
	o.mu.Unlock()
	defer func() {
		close(m.finished)
		o.mu.Lock()
		o.active = nil
		o.mu.Unlock()
	}()

	if len(participants) == 0 {
		return errors.New("orchestrator: no workers connected")
	}
	o.cfg.Logf("orchestrator: measurement %d over %d targets with %d workers",
		req.Def.ID, len(req.Targets), len(participants))

	// Join the trace the CLI minted (or mint a fresh one when the CLI
	// predates tracing): everything the orchestrator and its workers do
	// for this measurement hangs off mspan. The context stays published
	// in activeTrace so frame taps and failure dumps link to it; it is
	// deliberately not cleared at teardown — an error dump fired just
	// after still names the measurement it belongs to.
	mspan := o.cfg.Obs.JoinTrace(req.Trace, "orchestrator/measurement")
	mspan.SetAttr("measurement", strconv.FormatUint(uint64(req.Def.ID), 10))
	mspan.SetAttr("targets", strconv.Itoa(len(req.Targets)))
	o.activeTrace.Store(mspan.Context())
	defer mspan.End() // error paths; the success path ends it first

	// Instruct all workers that a measurement is starting (§4.2.2). The
	// definition carries the measurement span's context, so each worker
	// parents its own spans on it.
	def := req.Def
	def.Trace = mspan.Context()
	alive := make(map[int]*workerConn, len(participants))
	for _, wc := range participants {
		if err := wc.conn.Write(wire.MsgStart, def); err != nil {
			o.dropWorker(wc.idx)
			continue
		}
		alive[wc.idx] = wc
	}
	if len(alive) == 0 {
		return errors.New("orchestrator: all workers failed at start")
	}
	mspan.SetAttr("workers", strconv.Itoa(len(alive)))

	// Responsible-probing governance on the streaming path: targets in
	// an opted-out prefix, or beyond the probe budget, are withheld from
	// every worker before the rate-limited stream starts. The admission
	// order is the request's target order, so the streamed set is
	// deterministic; withheld targets are reported to the CLI in the
	// Complete frame, never silently dropped.
	var skipped int64
	if o.ledger != nil {
		admitSpan := mspan.Child("admit")
		gate := o.ledger.Gate(0)
		perTarget := int64(len(alive))
		kept := make([]string, 0, len(req.Targets))
		for _, ts := range req.Targets {
			addr, err := netip.ParseAddr(ts)
			if err != nil {
				kept = append(kept, ts) // workers reject unparsable targets themselves
				continue
			}
			if gate.AdmitAddr(addr, perTarget) == budget.Admitted {
				kept = append(kept, ts)
			} else {
				skipped++
				o.flight.Record("budget_denied", ts, o.activeTrace.Load(), perTarget)
			}
		}
		if skipped > 0 {
			o.cfg.Logf("orchestrator: governance withheld %d of %d targets", skipped, len(req.Targets))
		}
		req.Targets = kept
		m.total.Store(int64(len(kept)))
		admitSpan.SetAttr("kept", strconv.Itoa(len(kept)))
		admitSpan.SetAttr("skipped", strconv.FormatInt(skipped, 10))
		admitSpan.End()
	}

	// Stream targets to every worker at the CLI-defined rate. Workers
	// probe as targets arrive; the per-worker probe offset is applied at
	// the worker (its site index shifts its probe schedule).
	limiter, err := rate.NewLimiter(maxf(req.Def.Rate, 1), o.cfg.BatchSize, nil)
	if err != nil {
		return err
	}
	defer func() {
		waits, total := limiter.WaitStats()
		o.rateWaits.Add(waits)
		o.rateWaitNanos.Add(total.Nanoseconds())
	}()
	go func() {
		// The stream span is closed before the EndTargets frames go out:
		// workers answer EndTargets with WorkerDone, and the Complete
		// frame's span collection must find the stream span recorded.
		streamSpan := mspan.Child("stream")
		endStream := func() {
			streamSpan.SetAttr("streamed", strconv.FormatInt(m.streamed.Load(), 10))
			streamSpan.End()
		}
		defer endStream() // early-exit paths; the normal path ends it first
		tc := mspan.Context()
		for base := 0; base < len(req.Targets); base += o.cfg.BatchSize {
			end := base + o.cfg.BatchSize
			if end > len(req.Targets) {
				end = len(req.Targets)
			}
			for i := base; i < end; i++ {
				if err := limiter.Wait(ctx); err != nil {
					return
				}
			}
			batch := wire.Targets{Base: base, Addrs: req.Targets[base:end], Trace: tc}
			for idx, wc := range alive {
				//laces:allow maporder each iteration writes to a different worker's connection; there is no shared byte stream to reorder
				if err := wc.conn.Write(wire.MsgTargets, batch); err != nil {
					o.dropWorker(idx)
				}
			}
			m.streamed.Store(int64(end))
		}
		endStream()
		for idx, wc := range alive {
			//laces:allow maporder each iteration writes to a different worker's connection; there is no shared byte stream to reorder
			if err := wc.conn.Write(wire.MsgEndTargets, struct{}{}); err != nil {
				o.dropWorker(idx)
			}
		}
	}()

	// Aggregate: forward results until every (surviving) worker reports
	// done. Worker loss mid-measurement reduces the quorum instead of
	// hanging the run.
	pending := make(map[int]bool, len(alive))
	for idx := range alive {
		pending[idx] = true
	}
	var forwarded int64
	aggSpan := mspan.Child("aggregate")
	defer aggSpan.End() // error paths; the success path ends it first
	timeout := time.NewTimer(5 * time.Minute)
	defer timeout.Stop()
	for len(pending) > 0 {
		select {
		case res := <-m.results:
			forwarded++
			if err := cli.Write(wire.MsgResult, res); err != nil {
				return fmt.Errorf("orchestrator: CLI went away: %w", err)
			}
		case idx := <-m.done:
			delete(pending, idx)
		case idx := <-m.gone:
			delete(pending, idx)
		case <-ctx.Done():
			return ctx.Err()
		case <-timeout.C:
			return errors.New("orchestrator: measurement timed out")
		}
	}
	// Drain results that raced with the final done frames.
	for {
		select {
		case res := <-m.results:
			forwarded++
			if err := cli.Write(wire.MsgResult, res); err != nil {
				return err
			}
		default:
			// Close out the orchestrator's spans, then hand the CLI the
			// assembled trace: the orchestrator's own spans plus every
			// worker batch ingested over MsgTrace, filtered to this
			// measurement's trace ID.
			aggSpan.SetAttr("forwarded", strconv.FormatInt(forwarded, 10))
			aggSpan.End()
			mspan.SetAttr("results", strconv.FormatInt(forwarded, 10))
			mspan.SetAttr("skipped", strconv.FormatInt(skipped, 10))
			mspan.End()
			complete := wire.Complete{Results: forwarded, Workers: len(alive), Skipped: skipped}
			if tc := mspan.Context(); tc != nil {
				complete.Trace = tc
				complete.TraceSpans = o.cfg.Obs.TraceSpansFor(tc.TraceID)
			}
			return cli.Write(wire.MsgComplete, complete)
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
