// Package orchestrator implements the central LACeS controller (§4.2.1):
// it accepts Worker and CLI connections, forwards measurement definitions,
// streams hitlist targets to all workers at the CLI-defined rate
// (synchronized probing, §4.2.3), aggregates the result streams from all
// workers into a single stream towards the CLI, and keeps measurements
// running when workers disconnect mid-run (failure awareness).
package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/laces-project/laces/internal/budget"
	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/rate"
	"github.com/laces-project/laces/internal/wire"
)

// Config parameterises an Orchestrator.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:4000"; use ":0" for
	// an ephemeral port in tests.
	Addr string
	// BatchSize is the number of targets per streamed frame.
	BatchSize int
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Budget, when non-zero, caps the probes the orchestrator will
	// stream over its lifetime (targets arrive as bare addresses, so
	// only the global daily cap applies; the orchestrator treats its
	// uptime as one ledger day). Each target charges one probe per
	// participating worker.
	Budget budget.Budget
	// OptOut, when set, suppresses streaming of targets inside any
	// opted-out prefix. Suppressed targets are reported in the Complete
	// frame's Skipped count — never silently dropped.
	OptOut *budget.Registry
	// Obs receives the orchestrator's telemetry: control-plane frame and
	// byte counts, connected-worker and in-flight-target gauges, rate
	// pacer waits, and a worker_disconnect event per mid-run loss. Nil
	// disables instrumentation.
	Obs *obs.Registry
}

// Orchestrator accepts workers and serves measurement requests.
type Orchestrator struct {
	cfg Config
	ln  net.Listener
	// ledger enforces responsible-probing governance on the streaming
	// path; nil when the configuration enables none.
	ledger *budget.Ledger

	// stats is the shared control-plane traffic accounting every accepted
	// connection feeds; disconnects counts workers lost mid-run (a nil
	// no-op counter when Config.Obs is nil). rateWaits/rateWaitNanos
	// accumulate the streaming limiters' pacing sleeps across
	// measurements.
	stats         *wire.Stats
	disconnects   *obs.Counter
	rateWaits     atomic.Int64
	rateWaitNanos atomic.Int64

	mu      sync.Mutex
	workers map[int]*workerConn
	nextIdx int
	active  *measurement
}

type workerConn struct {
	idx  int
	name string
	conn *wire.Conn
}

// measurement is the state of the (single) in-flight measurement.
type measurement struct {
	id       uint16
	total    atomic.Int64 // targets to stream (post-governance)
	streamed atomic.Int64 // targets streamed to workers so far
	results  chan wire.Result
	done     chan int      // worker indices reporting completion
	gone     chan int      // worker indices lost mid-measurement
	finished chan struct{} // closed at teardown so producers never block
}

// outstanding returns the targets not yet streamed to workers.
func (m *measurement) outstanding() int64 {
	if out := m.total.Load() - m.streamed.Load(); out > 0 {
		return out
	}
	return 0
}

// New starts listening.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1000
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("orchestrator: listening on %s: %w", cfg.Addr, err)
	}
	o := &Orchestrator{
		cfg:     cfg,
		ln:      ln,
		workers: make(map[int]*workerConn),
		stats:   &wire.Stats{},
	}
	if !cfg.Budget.IsZero() || cfg.OptOut != nil {
		o.ledger = budget.NewLedger(cfg.Budget, cfg.OptOut)
	}
	o.disconnects = cfg.Obs.Counter("laces_orchestrator_worker_disconnects_total",
		"Workers lost while connected to this orchestrator.")
	if reg := cfg.Obs; reg != nil {
		st := o.stats
		reg.CounterFunc("laces_wire_frames_total",
			"Control-plane frames moved, by direction.",
			func() float64 { return float64(st.FramesTx()) }, obs.L("dir", "tx"))
		reg.CounterFunc("laces_wire_frames_total",
			"Control-plane frames moved, by direction.",
			func() float64 { return float64(st.FramesRx()) }, obs.L("dir", "rx"))
		reg.CounterFunc("laces_wire_bytes_total",
			"Control-plane bytes moved (frame headers included), by direction.",
			func() float64 { return float64(st.BytesTx()) }, obs.L("dir", "tx"))
		reg.CounterFunc("laces_wire_bytes_total",
			"Control-plane bytes moved (frame headers included), by direction.",
			func() float64 { return float64(st.BytesRx()) }, obs.L("dir", "rx"))
		reg.GaugeFunc("laces_orchestrator_workers",
			"Workers currently connected.",
			func() float64 { return float64(o.NumWorkers()) })
		reg.GaugeFunc("laces_orchestrator_targets_inflight",
			"Targets accepted but not yet streamed in the active measurement.",
			func() float64 {
				o.mu.Lock()
				m := o.active
				o.mu.Unlock()
				if m == nil {
					return 0
				}
				return float64(m.outstanding())
			})
		reg.CounterFunc("laces_rate_waits_total",
			"Times the streaming rate limiter slept for a token.",
			func() float64 { return float64(o.rateWaits.Load()) })
		reg.CounterFunc("laces_rate_wait_seconds_total",
			"Total time the streaming rate limiter spent pacing.",
			func() float64 { return time.Duration(o.rateWaitNanos.Load()).Seconds() })
	}
	return o, nil
}

// Addr returns the bound listen address.
func (o *Orchestrator) Addr() string { return o.ln.Addr().String() }

// NumWorkers returns the number of currently connected workers.
func (o *Orchestrator) NumWorkers() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.workers)
}

// Serve accepts connections until ctx is cancelled.
func (o *Orchestrator) Serve(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		o.ln.Close()
	}()
	for {
		nc, err := o.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("orchestrator: accept: %w", err)
		}
		conn := wire.NewConn(nc)
		conn.SetStats(o.stats)
		go o.handle(ctx, conn)
	}
}

// handle dispatches one connection by its hello role.
func (o *Orchestrator) handle(ctx context.Context, conn *wire.Conn) {
	defer conn.Close()
	typ, raw, err := conn.Read()
	if err != nil || typ != wire.MsgHello {
		return
	}
	hello, err := wire.Decode[wire.Hello](raw)
	if err != nil {
		return
	}
	switch hello.Role {
	case "worker":
		o.handleWorker(conn, hello)
	case "cli":
		o.handleCLI(ctx, conn)
	default:
		_ = conn.Write(wire.MsgError, wire.ErrorMsg{Text: "unknown role " + hello.Role})
	}
}

// handleWorker registers the worker and pumps its frames until it
// disconnects.
func (o *Orchestrator) handleWorker(conn *wire.Conn, hello wire.Hello) {
	o.mu.Lock()
	idx := o.nextIdx
	o.nextIdx++
	wc := &workerConn{idx: idx, name: hello.Name, conn: conn}
	o.workers[idx] = wc
	total := len(o.workers)
	o.mu.Unlock()
	o.cfg.Logf("orchestrator: worker %s connected as site %d (%d online)", hello.Name, idx, total)

	if err := conn.Write(wire.MsgHelloAck, wire.HelloAck{Worker: idx, Workers: total}); err != nil {
		o.dropWorker(idx)
		return
	}
	for {
		typ, raw, err := conn.Read()
		if err != nil {
			o.dropWorker(idx)
			return
		}
		o.mu.Lock()
		m := o.active
		o.mu.Unlock()
		switch typ {
		case wire.MsgResult:
			if m == nil {
				continue // stale result after completion: drop
			}
			res, err := wire.Decode[wire.Result](raw)
			if err != nil {
				continue
			}
			select {
			case m.results <- res:
			case <-m.finished:
				// Measurement tore down while this result was in flight;
				// drop it rather than block the worker's frame pump.
			}
		case wire.MsgWorkerDone:
			if m != nil {
				m.done <- idx
			}
		}
	}
}

// dropWorker removes a disconnected worker and informs the active
// measurement so it does not wait for it (§4.2.3 failure awareness).
// A loss mid-measurement emits one structured event — log line and obs
// event — carrying the worker, the measurement and the targets still
// unstreamed, so operators can judge the coverage impact at a glance.
func (o *Orchestrator) dropWorker(idx int) {
	o.mu.Lock()
	wc := o.workers[idx]
	delete(o.workers, idx)
	m := o.active
	o.mu.Unlock()
	o.disconnects.Inc()
	name := ""
	if wc != nil {
		name = wc.name
	}
	if m != nil {
		outstanding := m.outstanding()
		o.cfg.Logf("orchestrator: event=worker_disconnect worker=%d name=%q measurement=%d targets_outstanding=%d",
			idx, name, m.id, outstanding)
		o.cfg.Obs.Event("worker_disconnect",
			obs.L("worker", strconv.Itoa(idx)),
			obs.L("name", name),
			obs.L("measurement", strconv.FormatUint(uint64(m.id), 10)),
			obs.L("targets_outstanding", strconv.FormatInt(outstanding, 10)))
		select {
		case m.gone <- idx:
		default:
		}
		return
	}
	o.cfg.Logf("orchestrator: worker %d disconnected", idx)
}

// handleCLI serves one measurement request.
func (o *Orchestrator) handleCLI(ctx context.Context, conn *wire.Conn) {
	typ, raw, err := conn.Read()
	if err != nil || typ != wire.MsgRun {
		return
	}
	req, err := wire.Decode[wire.Run](raw)
	if err != nil {
		_ = conn.Write(wire.MsgError, wire.ErrorMsg{Text: err.Error()})
		return
	}
	if err := o.runMeasurement(ctx, conn, req); err != nil {
		_ = conn.Write(wire.MsgError, wire.ErrorMsg{Text: err.Error()})
	}
}

// runMeasurement executes one measurement across the connected workers,
// forwarding every result frame to the CLI.
func (o *Orchestrator) runMeasurement(ctx context.Context, cli *wire.Conn, req wire.Run) error {
	o.mu.Lock()
	if o.active != nil {
		o.mu.Unlock()
		return errors.New("orchestrator: a measurement is already running")
	}
	m := &measurement{
		id:       req.Def.ID,
		results:  make(chan wire.Result, 4096),
		done:     make(chan int, 64),
		gone:     make(chan int, 64),
		finished: make(chan struct{}),
	}
	m.total.Store(int64(len(req.Targets)))
	o.active = m
	participants := make([]*workerConn, 0, len(o.workers))
	for _, wc := range o.workers {
		participants = append(participants, wc)
	}
	// Stable fan-out order (registration index, not map order) so slot
	// assignment and batch delivery are reproducible across runs.
	sort.Slice(participants, func(i, j int) bool { return participants[i].idx < participants[j].idx })
	o.mu.Unlock()
	defer func() {
		close(m.finished)
		o.mu.Lock()
		o.active = nil
		o.mu.Unlock()
	}()

	if len(participants) == 0 {
		return errors.New("orchestrator: no workers connected")
	}
	o.cfg.Logf("orchestrator: measurement %d over %d targets with %d workers",
		req.Def.ID, len(req.Targets), len(participants))

	// Instruct all workers that a measurement is starting (§4.2.2).
	alive := make(map[int]*workerConn, len(participants))
	for _, wc := range participants {
		if err := wc.conn.Write(wire.MsgStart, req.Def); err != nil {
			o.dropWorker(wc.idx)
			continue
		}
		alive[wc.idx] = wc
	}
	if len(alive) == 0 {
		return errors.New("orchestrator: all workers failed at start")
	}

	// Responsible-probing governance on the streaming path: targets in
	// an opted-out prefix, or beyond the probe budget, are withheld from
	// every worker before the rate-limited stream starts. The admission
	// order is the request's target order, so the streamed set is
	// deterministic; withheld targets are reported to the CLI in the
	// Complete frame, never silently dropped.
	var skipped int64
	if o.ledger != nil {
		gate := o.ledger.Gate(0)
		perTarget := int64(len(alive))
		kept := make([]string, 0, len(req.Targets))
		for _, ts := range req.Targets {
			addr, err := netip.ParseAddr(ts)
			if err != nil {
				kept = append(kept, ts) // workers reject unparsable targets themselves
				continue
			}
			if gate.AdmitAddr(addr, perTarget) == budget.Admitted {
				kept = append(kept, ts)
			} else {
				skipped++
			}
		}
		if skipped > 0 {
			o.cfg.Logf("orchestrator: governance withheld %d of %d targets", skipped, len(req.Targets))
		}
		req.Targets = kept
		m.total.Store(int64(len(kept)))
	}

	// Stream targets to every worker at the CLI-defined rate. Workers
	// probe as targets arrive; the per-worker probe offset is applied at
	// the worker (its site index shifts its probe schedule).
	limiter, err := rate.NewLimiter(maxf(req.Def.Rate, 1), o.cfg.BatchSize, nil)
	if err != nil {
		return err
	}
	defer func() {
		waits, total := limiter.WaitStats()
		o.rateWaits.Add(waits)
		o.rateWaitNanos.Add(total.Nanoseconds())
	}()
	go func() {
		for base := 0; base < len(req.Targets); base += o.cfg.BatchSize {
			end := base + o.cfg.BatchSize
			if end > len(req.Targets) {
				end = len(req.Targets)
			}
			for i := base; i < end; i++ {
				if err := limiter.Wait(ctx); err != nil {
					return
				}
			}
			batch := wire.Targets{Base: base, Addrs: req.Targets[base:end]}
			for idx, wc := range alive {
				//laces:allow maporder each iteration writes to a different worker's connection; there is no shared byte stream to reorder
				if err := wc.conn.Write(wire.MsgTargets, batch); err != nil {
					o.dropWorker(idx)
				}
			}
			m.streamed.Store(int64(end))
		}
		for idx, wc := range alive {
			//laces:allow maporder each iteration writes to a different worker's connection; there is no shared byte stream to reorder
			if err := wc.conn.Write(wire.MsgEndTargets, struct{}{}); err != nil {
				o.dropWorker(idx)
			}
		}
	}()

	// Aggregate: forward results until every (surviving) worker reports
	// done. Worker loss mid-measurement reduces the quorum instead of
	// hanging the run.
	pending := make(map[int]bool, len(alive))
	for idx := range alive {
		pending[idx] = true
	}
	var forwarded int64
	timeout := time.NewTimer(5 * time.Minute)
	defer timeout.Stop()
	for len(pending) > 0 {
		select {
		case res := <-m.results:
			forwarded++
			if err := cli.Write(wire.MsgResult, res); err != nil {
				return fmt.Errorf("orchestrator: CLI went away: %w", err)
			}
		case idx := <-m.done:
			delete(pending, idx)
		case idx := <-m.gone:
			delete(pending, idx)
		case <-ctx.Done():
			return ctx.Err()
		case <-timeout.C:
			return errors.New("orchestrator: measurement timed out")
		}
	}
	// Drain results that raced with the final done frames.
	for {
		select {
		case res := <-m.results:
			forwarded++
			if err := cli.Write(wire.MsgResult, res); err != nil {
				return err
			}
		default:
			return cli.Write(wire.MsgComplete, wire.Complete{Results: forwarded, Workers: len(alive), Skipped: skipped})
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
