package client

import (
	"bytes"
	"context"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/laces-project/laces/internal/wire"
)

func sampleOutcome() *Outcome {
	return &Outcome{
		Workers: 4,
		Results: []wire.Result{
			{Measurement: 1, Target: "1.0.0.1", TxWorker: 0, RxWorker: 0, RTTMicros: 900},
			{Measurement: 1, Target: "1.0.0.1", TxWorker: 1, RxWorker: 0, RTTMicros: 1100},
			{Measurement: 1, Target: "1.0.1.1", TxWorker: 0, RxWorker: 0, RTTMicros: 500},
			{Measurement: 1, Target: "1.0.1.1", TxWorker: 1, RxWorker: 2, RTTMicros: 700},
			{Measurement: 1, Target: "1.0.1.1", TxWorker: 2, RxWorker: 3, RTTMicros: 800},
		},
	}
}

func TestReceiverSets(t *testing.T) {
	sets := sampleOutcome().ReceiverSets()
	if len(sets["1.0.0.1"]) != 1 {
		t.Fatalf("unicast target receiver set: %v", sets["1.0.0.1"])
	}
	if len(sets["1.0.1.1"]) != 3 {
		t.Fatalf("anycast target receiver set: %v", sets["1.0.1.1"])
	}
}

func TestCandidates(t *testing.T) {
	cands := sampleOutcome().Candidates()
	if len(cands) != 1 || cands[0] != "1.0.1.1" {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleOutcome().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if lines[0] != "target,tx_worker,rx_worker,rtt_us" {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.0.0.1,0,0,900") {
		t.Fatalf("row: %s", lines[1])
	}
}

// fakeOrchestrator speaks just enough of the protocol to exercise the
// client's framing, error and completion paths.
func fakeOrchestrator(t *testing.T, script func(*wire.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		conn := wire.NewConn(nc)
		defer conn.Close()
		// Consume hello + run.
		if typ, _, err := conn.Read(); err != nil || typ != wire.MsgHello {
			return
		}
		if typ, _, err := conn.Read(); err != nil || typ != wire.MsgRun {
			return
		}
		script(conn)
	}()
	return ln.Addr().String()
}

func TestRunCollectsResultsAndComplete(t *testing.T) {
	addr := fakeOrchestrator(t, func(conn *wire.Conn) {
		_ = conn.Write(wire.MsgResult, wire.Result{Measurement: 9, Target: "1.2.3.4", RxWorker: 1, RTTMicros: 42})
		_ = conn.Write(wire.MsgResult, wire.Result{Measurement: 9, Target: "1.2.3.4", RxWorker: 2, RTTMicros: 43})
		_ = conn.Write(wire.MsgComplete, wire.Complete{Results: 2, Workers: 3})
	})
	cli := &Client{Addr: addr}
	streamed := 0
	out, err := cli.Run(context.Background(), wire.MeasurementDef{ID: 9, Protocol: "ICMP"},
		[]netip.Addr{netip.MustParseAddr("1.2.3.4")}, func(wire.Result) { streamed++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Workers != 3 || streamed != 2 {
		t.Fatalf("outcome: %d results, %d workers, %d streamed", len(out.Results), out.Workers, streamed)
	}
}

func TestRunPropagatesOrchestratorError(t *testing.T) {
	addr := fakeOrchestrator(t, func(conn *wire.Conn) {
		_ = conn.Write(wire.MsgError, wire.ErrorMsg{Text: "no workers connected"})
	})
	cli := &Client{Addr: addr}
	_, err := cli.Run(context.Background(), wire.MeasurementDef{ID: 1, Protocol: "ICMP"}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "no workers connected") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunHonoursContextCancel(t *testing.T) {
	addr := fakeOrchestrator(t, func(conn *wire.Conn) {
		time.Sleep(5 * time.Second) // never answer
	})
	cli := &Client{Addr: addr}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := cli.Run(ctx, wire.MeasurementDef{ID: 1, Protocol: "ICMP"}, nil, nil); err == nil {
		t.Fatal("cancelled run should fail")
	}
}

func TestRunDialFailure(t *testing.T) {
	cli := &Client{Addr: "127.0.0.1:1"} // nothing listening
	if _, err := cli.Run(context.Background(), wire.MeasurementDef{}, nil, nil); err == nil {
		t.Fatal("dial failure should propagate")
	}
}

func TestRunOrchestratorDiesMidStream(t *testing.T) {
	// The orchestrator delivers part of the result stream and then the
	// connection drops (process crash, network partition). The client
	// must surface an error rather than returning a silently truncated
	// outcome or hanging.
	addr := fakeOrchestrator(t, func(conn *wire.Conn) {
		_ = conn.Write(wire.MsgResult, wire.Result{Measurement: 4, Target: "1.2.3.4", RxWorker: 1, RTTMicros: 10})
		conn.Close() // abrupt death before MsgComplete
	})
	cli := &Client{Addr: addr}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := cli.Run(ctx, wire.MeasurementDef{ID: 4, Protocol: "ICMP"},
		[]netip.Addr{netip.MustParseAddr("1.2.3.4")}, nil)
	if err == nil {
		t.Fatal("mid-stream orchestrator death must be reported as an error")
	}
	if ctx.Err() != nil {
		t.Fatal("client hung until the test deadline instead of failing fast")
	}
}

func TestRunGarbageFrame(t *testing.T) {
	// A protocol violation (unknown message type) must fail the run.
	addr := fakeOrchestrator(t, func(conn *wire.Conn) {
		_ = conn.Write(wire.MsgType(250), wire.Complete{})
	})
	cli := &Client{Addr: addr}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cli.Run(ctx, wire.MeasurementDef{ID: 4, Protocol: "ICMP"}, nil, nil); err == nil {
		t.Fatal("unknown frame type accepted")
	}
}
