// Package client implements the LACeS CLI component (§4.2.1): it creates
// a measurement definition, submits it to the Orchestrator, and collects
// the aggregated result stream into a single output — the paper's "at the
// CLI, results are stored as a single file".
package client

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sort"
	"strconv"

	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/wire"
)

// Client submits measurements to an Orchestrator.
type Client struct {
	// Addr is the Orchestrator's TCP address.
	Addr string
	// Dialer allows tests to intercept connections; nil uses net.Dialer.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
	// Obs, when set, makes the CLI the origin of a distributed trace: it
	// mints the trace context carried on the Run frame and ingests the
	// assembled cross-process spans handed back on Complete, so after
	// Run the registry holds the full CLI+orchestrator+workers trace.
	Obs *obs.Registry
}

// Outcome summarises a finished measurement.
type Outcome struct {
	Results []wire.Result
	Workers int
	// Skipped counts targets the orchestrator's responsible-probing
	// ledger refused to stream (opt-out or budget).
	Skipped int64
}

// ReceiverSets groups results by target and returns the distinct receiving
// worker set per target — the classification input of §2.2.
func (o *Outcome) ReceiverSets() map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, r := range o.Results {
		s, ok := out[r.Target]
		if !ok {
			s = make(map[int]bool)
			out[r.Target] = s
		}
		s[r.RxWorker] = true
	}
	return out
}

// Candidates returns the targets whose replies reached two or more
// workers.
func (o *Outcome) Candidates() []string {
	var out []string
	for t, s := range o.ReceiverSets() {
		if len(s) >= 2 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Run submits the measurement and blocks until completion, invoking
// onResult (if non-nil) per streamed result.
func (c *Client) Run(ctx context.Context, def wire.MeasurementDef, targets []netip.Addr, onResult func(wire.Result)) (*Outcome, error) {
	dial := c.Dialer
	if dial == nil {
		d := &net.Dialer{}
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	nc, err := dial(ctx, c.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing orchestrator: %w", err)
	}
	conn := wire.NewConn(nc)
	defer conn.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	// Mint the root of the cross-process trace (no-op on a nil
	// registry): its context rides the Hello and Run frames, the
	// orchestrator and workers parent their spans on it, and the
	// assembled spans come back on Complete.
	if c.Obs != nil && c.Obs.TraceComponent() == "" {
		c.Obs.SetTraceComponent("cli")
	}
	root := c.Obs.StartTrace("measure")
	defer root.End() // error paths; the Complete path ends it first

	if err := conn.Write(wire.MsgHello, wire.Hello{Role: "cli", Name: "laces-cli", Trace: root.Context()}); err != nil {
		return nil, err
	}
	req := wire.Run{Def: def, Trace: root.Context()}
	for _, a := range targets {
		req.Targets = append(req.Targets, a.String())
	}
	if err := conn.Write(wire.MsgRun, req); err != nil {
		return nil, err
	}

	out := &Outcome{}
	for {
		typ, raw, err := conn.Read()
		if err != nil {
			return nil, fmt.Errorf("client: reading results: %w", err)
		}
		switch typ {
		case wire.MsgResult:
			res, err := wire.Decode[wire.Result](raw)
			if err != nil {
				return nil, err
			}
			out.Results = append(out.Results, res)
			if onResult != nil {
				onResult(res)
			}
		case wire.MsgComplete:
			comp, err := wire.Decode[wire.Complete](raw)
			if err != nil {
				return nil, err
			}
			out.Workers = comp.Workers
			out.Skipped = comp.Skipped
			root.SetAttr("results", strconv.FormatInt(comp.Results, 10))
			root.SetAttr("workers", strconv.Itoa(comp.Workers))
			root.End()
			c.Obs.IngestTraceSpans(comp.TraceSpans)
			return out, nil
		case wire.MsgError:
			em, _ := wire.Decode[wire.ErrorMsg](raw)
			return nil, fmt.Errorf("client: orchestrator error: %s", em.Text)
		default:
			return nil, fmt.Errorf("client: unexpected frame %v", typ)
		}
	}
}

// WriteCSV stores the outcome as the single result file of §4.2.2.
func (o *Outcome) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"target", "tx_worker", "rx_worker", "rtt_us"}); err != nil {
		return err
	}
	for _, r := range o.Results {
		rec := []string{r.Target, strconv.Itoa(r.TxWorker), strconv.Itoa(r.RxWorker),
			strconv.FormatInt(r.RTTMicros, 10)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
