package obs

import (
	"crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// maxTraceSpans bounds the per-registry distributed-trace span log. A
// measurement produces tens of spans per component; long-lived servers
// drop the excess (counted, published as
// laces_obs_trace_spans_dropped_total) rather than grow without bound.
const maxTraceSpans = 8192

// TraceContext is the portable identity of a position in a distributed
// trace: the trace it belongs to and the span that is current at the
// sender. It is what wire frames carry across process boundaries; a
// receiver joins the trace by opening spans parented on SpanID.
//
// The zero value means "no trace": frames from peers built before
// tracing simply omit the field.
type TraceContext struct {
	TraceID uint64 `json:"trace_id"`
	SpanID  uint64 `json:"span_id"`
}

// Valid reports whether the context names a real trace.
func (tc *TraceContext) Valid() bool {
	if tc == nil {
		return false
	}
	return tc.TraceID != 0
}

// TraceSpan is one completed span of a distributed trace as it appears
// in exports and on the wire. Component attributes the span to the
// process that emitted it ("cli", "orchestrator", "worker-amsterdam").
type TraceSpan struct {
	TraceID   uint64    `json:"trace_id"`
	SpanID    uint64    `json:"span_id"`
	Parent    uint64    `json:"parent,omitempty"`
	Component string    `json:"component,omitempty"`
	Name      string    `json:"name"`
	Start     time.Time `json:"start"`
	Seconds   float64   `json:"seconds"`
	Attrs     []Label   `json:"attrs,omitempty"`
}

// traceLog is the bounded completed-trace-span list plus the component
// name stamped onto every span this registry emits.
type traceLog struct {
	mu        sync.Mutex
	component string
	records   []TraceSpan
	dropped   int64
}

// idSeed seeds the trace/span ID sequence from crypto/rand once per
// process so concurrent components mint disjoint IDs; the counter walk
// plus splitmix64 finalizer keeps minting allocation-free after that.
var idSeed struct {
	once sync.Once
	ctr  atomic.Uint64
}

// newID mints a process-unique non-zero 64-bit trace or span ID. IDs
// are identifiers, not census content: they never influence probe
// bytes, so the crypto/rand seed does not break determinism contracts.
func newID() uint64 {
	idSeed.once.Do(func() {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			idSeed.ctr.Store(binary.LittleEndian.Uint64(b[:]))
		}
	})
	for {
		x := idSeed.ctr.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// ActiveSpan is an in-flight distributed-trace span. Unlike the legacy
// path-based Span it carries a TraceContext that can cross process
// boundaries via wire frames. Methods on a nil *ActiveSpan (from a
// disabled registry) are no-ops costing one branch.
type ActiveSpan struct {
	r      *Registry
	tc     TraceContext
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Label
	done  bool
}

// SetTraceComponent names the process for every trace span and flight
// event this registry emits ("orchestrator", "worker-ams01").
func (r *Registry) SetTraceComponent(name string) {
	if r == nil {
		return
	}
	r.traces.mu.Lock()
	r.traces.component = name
	r.traces.mu.Unlock()
}

// TraceComponent returns the component name set by SetTraceComponent.
func (r *Registry) TraceComponent() string {
	if r == nil {
		return ""
	}
	r.traces.mu.Lock()
	defer r.traces.mu.Unlock()
	return r.traces.component
}

// StartTrace mints a fresh trace and opens its root span. The CLI calls
// this once per measurement; everything downstream joins via the
// propagated context.
func (r *Registry) StartTrace(name string) *ActiveSpan {
	if r == nil {
		return nil
	}
	return &ActiveSpan{
		r:     r,
		tc:    TraceContext{TraceID: newID(), SpanID: newID()},
		name:  name,
		start: time.Now(), //laces:allow detnow trace span timestamps are operator-facing telemetry, not census content
	}
}

// JoinTrace opens a span as a child of a context received from a remote
// peer. A nil or zero context (old peer, tracing off upstream) mints a
// fresh trace instead, so the local component still gets a coherent
// record.
func (r *Registry) JoinTrace(tc *TraceContext, name string) *ActiveSpan {
	if r == nil {
		return nil
	}
	if !tc.Valid() {
		return r.StartTrace(name)
	}
	return &ActiveSpan{
		r:      r,
		tc:     TraceContext{TraceID: tc.TraceID, SpanID: newID()},
		parent: tc.SpanID,
		name:   name,
		start:  time.Now(), //laces:allow detnow trace span timestamps are operator-facing telemetry, not census content
	}
}

// Context returns the span's propagatable identity, for embedding into
// outbound wire frames. Nil span returns nil, which marshals to an
// absent field.
func (s *ActiveSpan) Context() *TraceContext {
	if s == nil {
		return nil
	}
	return &TraceContext{TraceID: s.tc.TraceID, SpanID: s.tc.SpanID}
}

// Child opens a sub-span within the same process.
func (s *ActiveSpan) Child(name string) *ActiveSpan {
	if s == nil {
		return nil
	}
	return &ActiveSpan{
		r:      s.r,
		tc:     TraceContext{TraceID: s.tc.TraceID, SpanID: newID()},
		parent: s.tc.SpanID,
		name:   name,
		start:  time.Now(), //laces:allow detnow trace span timestamps are operator-facing telemetry, not census content
	}
}

// SetAttr attaches a key=value attribute to the span (recorded at End).
// Later writes win over earlier ones for the same key.
func (s *ActiveSpan) SetAttr(name, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Name == name {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Label{Name: name, Value: value})
	s.mu.Unlock()
}

// End completes the span, appending its record to the registry's trace
// log, and returns the duration. Ending twice records once.
func (s *ActiveSpan) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start) //laces:allow detnow trace span durations are operator-facing telemetry, not census content
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return d
	}
	s.done = true
	// Snapshot the attributes: the recorded span may be marshalled (the
	// Complete frame's span collection) while a late SetAttr — say a
	// deferred double-End path — still holds the live slice.
	var attrs []Label
	if len(s.attrs) > 0 {
		attrs = append(attrs, s.attrs...)
	}
	s.mu.Unlock()
	l := &s.r.traces
	l.mu.Lock()
	if len(l.records) < maxTraceSpans {
		l.records = append(l.records, TraceSpan{
			TraceID:   s.tc.TraceID,
			SpanID:    s.tc.SpanID,
			Parent:    s.parent,
			Component: l.component,
			Name:      s.name,
			Start:     s.start,
			Seconds:   d.Seconds(),
			Attrs:     attrs,
		})
	} else {
		l.dropped++
	}
	l.mu.Unlock()
	return d
}

// IngestTraceSpans appends spans received from a remote component
// (worker batches forwarded over MsgTrace) to the local trace log, so
// one registry can hold the assembled cross-process trace.
func (r *Registry) IngestTraceSpans(spans []TraceSpan) {
	if r == nil {
		return
	}
	l := &r.traces
	l.mu.Lock()
	for i := range spans {
		if len(l.records) < maxTraceSpans {
			l.records = append(l.records, spans[i])
		} else {
			l.dropped++
		}
	}
	l.mu.Unlock()
}

// TraceSpans returns every completed trace span in completion order
// (local spans interleaved with ingested remote ones).
func (r *Registry) TraceSpans() []TraceSpan {
	if r == nil {
		return nil
	}
	r.traces.mu.Lock()
	defer r.traces.mu.Unlock()
	out := make([]TraceSpan, len(r.traces.records))
	copy(out, r.traces.records)
	return out
}

// TraceSpansFor returns the completed spans belonging to one trace.
func (r *Registry) TraceSpansFor(traceID uint64) []TraceSpan {
	if r == nil {
		return nil
	}
	r.traces.mu.Lock()
	defer r.traces.mu.Unlock()
	var out []TraceSpan
	for _, ts := range r.traces.records {
		if ts.TraceID == traceID {
			out = append(out, ts)
		}
	}
	return out
}

// SpansDropped returns the number of legacy path-span records dropped
// at the maxSpans cap.
func (r *Registry) SpansDropped() int64 {
	if r == nil {
		return 0
	}
	r.spans.mu.Lock()
	defer r.spans.mu.Unlock()
	return r.spans.dropped
}

// TraceSpansDropped returns the number of trace spans dropped at the
// maxTraceSpans cap.
func (r *Registry) TraceSpansDropped() int64 {
	if r == nil {
		return 0
	}
	r.traces.mu.Lock()
	defer r.traces.mu.Unlock()
	return r.traces.dropped
}
