package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind discriminates the stored instrument.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindFloatCounter
)

// promType maps the stored kind to its exposition type.
func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc, kindFloatCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered series: a named instrument plus its label
// set.
type metric struct {
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fcount  *FloatCounter
	hist    *Histogram
	fn      func() float64
}

// value evaluates a scalar metric at read time.
func (m *metric) value() float64 {
	switch m.kind {
	case kindCounter:
		return float64(m.counter.Value())
	case kindGauge:
		return float64(m.gauge.Value())
	case kindFloatCounter:
		return m.fcount.Value()
	case kindCounterFunc, kindGaugeFunc:
		return m.fn()
	}
	return 0
}

// family groups every series sharing one metric name: they must agree
// on type and help, and the exposition emits them under one
// HELP/TYPE header.
type family struct {
	name    string
	help    string
	kind    metricKind
	series  []*metric // insertion order
	byLabel map[string]*metric
}

// Registry is the telemetry root: a named, labelled set of instruments
// plus the span log, event log and census progress state. All methods
// are safe for concurrent use and nil-safe — a nil *Registry hands out
// nil instruments whose methods are no-ops, so a pipeline wired for
// telemetry runs unobserved at the cost of one branch per call site.
//
// Get-or-create is by (name, label set): two call sites asking for the
// same series share the underlying instrument. Registration takes the
// registry lock; hot loops must resolve handles once, outside the loop.
type Registry struct {
	mu    sync.Mutex
	fams  []*family // insertion order, for deterministic exposition
	index map[string]*family

	spans    spanLog
	traces   traceLog
	events   eventLog
	progress progressState
	flight   atomic.Pointer[Recorder]
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{index: make(map[string]*family)}
}

// labelKey serialises a label set into a map key. Labels are sorted by
// name first so call-site ordering does not split series.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Name)
		sb.WriteByte(0x1)
		sb.WriteString(l.Value)
		sb.WriteByte(0x2)
	}
	return sb.String()
}

// sortLabels returns the labels in canonical (name-sorted) order.
func sortLabels(labels []Label) []Label {
	if len(labels) <= 1 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookup finds or creates the series for (name, labels), panicking on a
// type conflict — a programming error a test would catch immediately.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *metric {
	labels = sortLabels(labels)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.index[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, byLabel: make(map[string]*metric)}
		r.fams = append(r.fams, fam)
		r.index[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.kind.promType(), kind.promType()))
	}
	m := fam.byLabel[key]
	if m == nil {
		m = &metric{labels: labels, kind: kind}
		switch kind {
		case kindCounter:
			m.counter = new(Counter)
		case kindGauge:
			m.gauge = new(Gauge)
		case kindFloatCounter:
			m.fcount = new(FloatCounter)
		case kindHistogram:
			// hist filled by caller (bounds vary)
		}
		fam.series = append(fam.series, m)
		fam.byLabel[key] = m
	}
	return m
}

// Counter returns the counter series (name, labels), creating it on
// first use. Nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels).counter
}

// Gauge returns the gauge series (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels).gauge
}

// FloatCounter returns a float-valued counter series (seconds totals).
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindFloatCounter, labels).fcount
}

// Histogram returns the histogram series (name, labels) over the given
// bucket bounds (DefLatencyBuckets when nil). Bounds are fixed by the
// first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	if m.hist == nil {
		m.hist = newHistogram(bounds)
	}
	h := m.hist
	r.mu.Unlock()
	return h
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — the bridge for packages that keep their own atomic
// accounting (netsim telemetry, the budget ledger, archive decode
// counts) without importing obs. Re-registering the same series
// replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	m := r.lookup(name, help, kindCounterFunc, labels)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge series read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	m := r.lookup(name, help, kindGaugeFunc, labels)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// NumSeries returns the number of registered series (histograms count
// once), for tests and the metrics dump.
func (r *Registry) NumSeries() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, fam := range r.fams {
		n += len(fam.series)
	}
	return n
}
