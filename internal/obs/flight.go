package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// FlightEvent is one entry in a component's flight recorder: a
// timestamped structured record of control-plane activity (frame I/O,
// budget denials, chaos activations, worker lifecycle). TraceID/SpanID
// link the event to the distributed trace that was current when it was
// recorded, when one was.
type FlightEvent struct {
	At        time.Time `json:"at"`
	Component string    `json:"component,omitempty"`
	Kind      string    `json:"kind"`
	Name      string    `json:"name,omitempty"`
	TraceID   uint64    `json:"trace_id,omitempty"`
	SpanID    uint64    `json:"span_id,omitempty"`
	N         int64     `json:"n,omitempty"`
	Fields    []Label   `json:"fields,omitempty"`
}

// Recorder is a bounded lock-free ring of FlightEvents — the per-
// component flight recorder. Writers claim a slot with one atomic add
// and publish with one atomic pointer store; there is no lock on the
// record path, so frame-I/O taps can record from every connection
// goroutine without contention. When the ring wraps, the oldest events
// are overwritten and counted as dropped.
//
// Methods on a nil *Recorder are no-ops, so components record
// unconditionally and the disabled path costs one branch.
type Recorder struct {
	component string
	slots     []atomic.Pointer[FlightEvent]
	mask      uint64
	next      atomic.Uint64
}

// NewRecorder returns a flight recorder for the named component
// retaining the most recent size events (rounded up to a power of two,
// minimum 16).
func NewRecorder(component string, size int) *Recorder {
	if size < 16 {
		size = 16
	}
	n := 16
	for n < size {
		n <<= 1
	}
	return &Recorder{
		component: component,
		slots:     make([]atomic.Pointer[FlightEvent], n),
		mask:      uint64(n - 1),
	}
}

// Record appends an event to the ring. tc may be nil (no trace
// current); fields are optional ordered key=value pairs. The enabled
// path costs one allocation (the event) — acceptable at control-plane
// rates; the nil path costs one branch and zero allocations when called
// without fields.
func (f *Recorder) Record(kind, name string, tc *TraceContext, n int64, fields ...Label) {
	if f == nil {
		return
	}
	ev := &FlightEvent{
		At:        time.Now(), //laces:allow detnow flight-recorder timestamps are operator-facing telemetry, not census content
		Component: f.component,
		Kind:      kind,
		Name:      name,
		N:         n,
		Fields:    fields,
	}
	if tc != nil {
		ev.TraceID, ev.SpanID = tc.TraceID, tc.SpanID
	}
	idx := f.next.Add(1) - 1
	f.slots[idx&f.mask].Store(ev)
}

// Ingest appends already-formed events (a remote component's batch,
// original timestamps and component names preserved) to the ring, so
// one recorder can hold a merged cross-process dump.
func (f *Recorder) Ingest(events []FlightEvent) {
	if f == nil {
		return
	}
	for i := range events {
		ev := events[i]
		idx := f.next.Add(1) - 1
		f.slots[idx&f.mask].Store(&ev)
	}
}

// Component returns the component name the recorder was created with.
func (f *Recorder) Component() string {
	if f == nil {
		return ""
	}
	return f.component
}

// Total returns the number of events ever recorded.
func (f *Recorder) Total() int64 {
	if f == nil {
		return 0
	}
	return int64(f.next.Load())
}

// Dropped returns the number of events overwritten by ring wrap.
func (f *Recorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	total := f.next.Load()
	if size := uint64(len(f.slots)); total > size {
		return int64(total - size)
	}
	return 0
}

// Snapshot returns the retained events, oldest first. Taken while
// writers are active it is best-effort: a slot overwritten mid-read
// yields the newer event.
func (f *Recorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	total := f.next.Load()
	size := uint64(len(f.slots))
	start := uint64(0)
	if total > size {
		start = total - size
	}
	out := make([]FlightEvent, 0, total-start)
	for i := start; i < total; i++ {
		if ev := f.slots[i&f.mask].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	return out
}

// WriteJSONL dumps the retained events as one JSON object per line —
// the flight-recorder dump format, written automatically on failure
// triggers (worker disconnect, MsgError, reconciliation mismatch) and
// on demand.
func (f *Recorder) WriteJSONL(w io.Writer) error {
	if f == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range f.Snapshot() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EnableFlight installs a flight recorder for the named component on
// the registry (replacing any previous one) and returns it. Size is the
// retained-event count, rounded up to a power of two.
func (r *Registry) EnableFlight(component string, size int) *Recorder {
	if r == nil {
		return nil
	}
	rec := NewRecorder(component, size)
	r.flight.Store(rec)
	return rec
}

// Flight returns the installed flight recorder, or nil when none is
// enabled. The nil result is itself safe to record against.
func (r *Registry) Flight() *Recorder {
	if r == nil {
		return nil
	}
	return r.flight.Load()
}

// FlightDropped returns the installed recorder's overwritten-event
// count (zero when no recorder is enabled).
func (r *Registry) FlightDropped() int64 {
	if r == nil {
		return 0
	}
	return r.flight.Load().Dropped()
}
