package obs

// Shared instrumentation for the census pipeline's measurement stages
// (manycast, gcdmeas, chaosdns). Every stage resolves the same four
// metric families — labelled by stage name — plus the progress counter
// and a pipeline span, through one Stage call, so the exposition stays
// uniform and a new stage cannot invent divergent series names.

// Cell is one shard's telemetry accumulator for a sharded stage loop:
// shard s writes only cell s (plain fields, no atomics), and the totals
// merge into the stage counters after the loop joins. Padding keeps
// neighbouring shards off each other's cache line.
type Cell struct {
	Probes  int64
	Replies int64
	_       [48]byte
}

// MergeCells sums a per-shard cell slice after the loop has joined.
func MergeCells(cells []Cell) (probes, replies int64) {
	for i := range cells {
		probes += cells[i].Probes
		replies += cells[i].Replies
	}
	return probes, replies
}

// StageInstruments bundles the handles one census stage run uses. All
// fields are nil (no-op) when resolved from a nil registry, so stages
// instrument unconditionally at the cost of one branch per update.
type StageInstruments struct {
	Probes  *Counter   // laces_stage_probes_total{stage=...}
	Replies *Counter   // laces_stage_replies_total{stage=...}
	Denied  *Counter   // laces_stage_denied_total{stage=...}
	Seconds *Histogram // laces_stage_seconds{stage=...}
	Done    *Counter   // the shared live-progress counter
	Span    *Span      // "census/<stage>"
}

// Stage begins one stage run over total targets: it resolves the stage's
// metric handles, opens its pipeline span and resets the live-progress
// state. Close the run with End.
func (r *Registry) Stage(stage string, total int) StageInstruments {
	if r == nil {
		return StageInstruments{} // all-nil instruments: every method is a one-branch no-op
	}
	si := StageInstruments{
		Probes: r.Counter("laces_stage_probes_total",
			"Probes transmitted per census stage.", L("stage", stage)),
		Replies: r.Counter("laces_stage_replies_total",
			"Replies received per census stage.", L("stage", stage)),
		Denied: r.Counter("laces_stage_denied_total",
			"Targets denied by the responsible-probing gate per census stage.", L("stage", stage)),
		Seconds: r.Histogram("laces_stage_seconds",
			"Wall-clock seconds per census stage run.", nil, L("stage", stage)),
		Done: r.ProgressDone(),
		Span: r.StartSpan("census/" + stage),
	}
	r.BeginStage(stage, int64(total))
	return si
}

// End closes the stage run: the span is recorded and its duration
// observed into the stage-seconds histogram.
func (si StageInstruments) End() {
	si.Seconds.Observe(si.Span.End().Seconds())
}
