package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("laces_test_total", "test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) returns the same instrument.
	if c2 := r.Counter("laces_test_total", "test counter"); c2 != c {
		t.Fatal("get-or-create returned a different counter")
	}
	// A different label set is a different series.
	cl := r.Counter("laces_test_total", "test counter", L("stage", "x"))
	if cl == c {
		t.Fatal("labelled series aliases the unlabelled one")
	}
	g := r.Gauge("laces_test_gauge", "test gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	fc := r.FloatCounter("laces_test_seconds_total", "seconds")
	fc.Add(0.25)
	fc.Add(0.5)
	if got := fc.Value(); got != 0.75 {
		t.Fatalf("float counter = %v, want 0.75", got)
	}
	if r.NumSeries() != 4 {
		t.Fatalf("NumSeries = %d, want 4", r.NumSeries())
	}
}

// TestLabelOrderCanonical pins that label ordering at the call site
// does not split series.
func TestLabelOrderCanonical(t *testing.T) {
	r := New()
	a := r.Counter("laces_t_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("laces_t_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order at the call site split the series")
	}
}

// TestNilRegistryNoOps pins the disabled-telemetry contract: every
// instrument from a nil registry is usable and inert.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.Gauge("x", "")
	g.Set(3)
	h := r.Histogram("x", "", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	fc := r.FloatCounter("x", "")
	fc.Add(1)
	var st *Striped
	st.Add(3, 5)
	if st.Value() != 0 {
		t.Fatal("nil striped counter holds a value")
	}
	sp := r.StartSpan("census")
	sp.Child("stage").End()
	sp.End()
	r.Event("kind", L("k", "v"))
	r.BeginStage("s", 10)
	r.ProgressDone().Inc()
	r.SetBudgetFunc(func() int64 { return 1 })
	if p := r.Progress(); p.BudgetRemaining != -1 || p.Done != 0 {
		t.Fatalf("nil progress = %+v", p)
	}
	ps := r.StartProgress(&bytes.Buffer{}, time.Millisecond)
	ps.Stop()
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatal("nil snapshot has metrics")
	}
}

// TestDisabledPathAllocs pins the zero-alloc contract of the disabled
// (nil-registry) hot path: one branch, no allocation.
func TestDisabledPathAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	h := r.Histogram("x", "", nil)
	var st *Striped
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		h.Observe(0.5)
		st.Add(7, 1)
	}); n != 0 {
		t.Fatalf("disabled instruments allocate %.1f objects/op, want 0", n)
	}
}

// TestEnabledPathAllocs pins the zero-alloc contract of the live hot
// path: pre-resolved instruments update atomically without allocating.
func TestEnabledPathAllocs(t *testing.T) {
	r := New()
	c := r.Counter("laces_hot_total", "")
	h := r.Histogram("laces_hot_seconds", "", nil)
	st := new(Striped)
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		h.Observe(0.003)
		st.Add(11, 1)
	}); n != 0 {
		t.Fatalf("live instruments allocate %.1f objects/op, want 0", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("laces_h_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1, 1} // (<=0.1)=2, (<=1)=1, (<=10)=1, +Inf=1
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 102.65 {
		t.Fatalf("sum = %v, want 102.65", h.Sum())
	}
}

func TestStriped(t *testing.T) {
	var s Striped
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(uint64(g*1000+i), 1)
			}
		}(g)
	}
	wg.Wait()
	if s.Value() != 8000 {
		t.Fatalf("striped sum = %d, want 8000", s.Value())
	}
}

// TestStripedSplit pins the packed event-pair idiom: adds of
// lo | hi<<32 from concurrent goroutines unpack into independent field
// sums, and a nil receiver reads as zero.
func TestStripedSplit(t *testing.T) {
	var s Striped
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				n := int64(1)
				if i%4 != 0 { // 750 of 1000 carry the high field
					n |= 1 << 32
				}
				s.Add(uint64(g*1000+i), n)
			}
		}(g)
	}
	wg.Wait()
	lo, hi := s.Split()
	if lo != 8000 || hi != 6000 {
		t.Fatalf("split = (%d, %d), want (8000, 6000)", lo, hi)
	}
	var nilStriped *Striped
	if lo, hi := nilStriped.Split(); lo != 0 || hi != 0 {
		t.Fatalf("nil split = (%d, %d), want (0, 0)", lo, hi)
	}
}

// promLine matches one valid Prometheus text-format sample line.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+0-9.eE]+$`)

// TestPrometheusExposition pins the text format: HELP/TYPE headers
// precede samples, every sample line parses, histograms emit
// cumulative buckets with a +Inf terminator plus _sum and _count.
func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("laces_a_total", "a counter", L("stage", `q"uo\te`)).Add(3)
	r.Gauge("laces_b", "a gauge").Set(-2)
	h := r.Histogram("laces_c_seconds", "a histogram", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(5)
	r.CounterFunc("laces_d_total", "func counter", func() float64 { return 42 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	types := map[string]bool{}
	var samples int
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid sample line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !types[name] && !types[base] {
			t.Fatalf("sample %q precedes its TYPE header", line)
		}
		samples++
	}
	for _, want := range []string{
		`laces_a_total{stage="q\"uo\\te"} 3`,
		"laces_b -2",
		`laces_c_seconds_bucket{le="0.5"} 1`,
		`laces_c_seconds_bucket{le="1"} 2`,
		`laces_c_seconds_bucket{le="+Inf"} 3`,
		"laces_c_seconds_sum 5.9",
		"laces_c_seconds_count 3",
		"laces_d_total 42",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if samples < 8 {
		t.Fatalf("only %d samples rendered:\n%s", samples, text)
	}
}

func TestEvents(t *testing.T) {
	r := New()
	var sunk []Event
	r.OnEvent(func(e Event) { sunk = append(sunk, e) })
	for i := 0; i < maxEvents+10; i++ {
		r.Event("tick", L("i", fmt.Sprint(i)))
	}
	evs := r.Events()
	if len(evs) != maxEvents {
		t.Fatalf("retained %d events, want %d", len(evs), maxEvents)
	}
	// Oldest-first: the first retained event is number 10.
	if got := evs[0].Fields[0].Value; got != "10" {
		t.Fatalf("oldest retained event i=%s, want 10", got)
	}
	if len(sunk) != maxEvents+10 {
		t.Fatalf("sink saw %d events, want %d", len(sunk), maxEvents+10)
	}
	if s := evs[0].String(); s != "tick i=10" {
		t.Fatalf("event string = %q", s)
	}
}

func TestSpans(t *testing.T) {
	r := New()
	sp := r.StartSpan("census")
	st := sp.Child("anycast_icmp")
	st.Child("shard0").End()
	st.End()
	sp.End()
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	if spans[0].Path != "census/anycast_icmp/shard0" || spans[2].Path != "census" {
		t.Fatalf("span paths wrong: %+v", spans)
	}
}

func TestProgressAndStream(t *testing.T) {
	r := New()
	r.BeginStage("anycast_icmp", 100)
	r.ProgressDone().Add(25)
	r.SetBudgetFunc(func() int64 { return 900 })
	p := r.Progress()
	if p.Stage != "anycast_icmp" || p.Done != 25 || p.Total != 100 || p.BudgetRemaining != 900 {
		t.Fatalf("progress = %+v", p)
	}
	// BeginStage resets the done counter.
	r.BeginStage("gcd_icmp", 50)
	if p := r.Progress(); p.Done != 0 || p.Stage != "gcd_icmp" {
		t.Fatalf("after BeginStage: %+v", p)
	}
	var buf bytes.Buffer
	ps := r.StartProgress(&buf, 5*time.Millisecond)
	r.ProgressDone().Add(10)
	time.Sleep(25 * time.Millisecond)
	ps.Stop()
	out := buf.String()
	if !strings.Contains(out, "stage=gcd_icmp") || !strings.Contains(out, "budget 900") {
		t.Fatalf("progress stream output %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("progress stream did not terminate the line")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := New()
	r.Counter("laces_a_total", "a", L("stage", "x")).Add(3)
	r.Histogram("laces_h_seconds", "h", []float64{1, 2}).Observe(1.5)
	r.StartSpan("census").End()
	r.Event("note", L("k", "v"))
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Two registered series plus the three always-present self-telemetry
	// drop counters.
	if len(snap.Metrics) != 5 || len(snap.Spans) != 1 || len(snap.Events) != 1 {
		t.Fatalf("snapshot = %d metrics / %d spans / %d events", len(snap.Metrics), len(snap.Spans), len(snap.Events))
	}
	if snap.Metrics[0].Value != 3 || snap.Metrics[1].Count != 1 {
		t.Fatalf("snapshot values wrong: %+v", snap.Metrics)
	}
	for i, want := range []string{
		"laces_obs_spans_dropped_total",
		"laces_obs_trace_spans_dropped_total",
		"laces_obs_flight_events_dropped_total",
	} {
		m := snap.Metrics[2+i]
		if m.Name != want || m.Value != 0 {
			t.Fatalf("drop counter %d = %+v, want %s 0", i, m, want)
		}
	}
}

// TestConcurrentRegistryWrites exercises concurrent get-or-create,
// updates, exposition and snapshotting — the contract the CI race job
// checks.
func TestConcurrentRegistryWrites(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("laces_conc_total", "c", L("g", fmt.Sprint(g%4))).Inc()
				r.Histogram("laces_conc_seconds", "h", nil, L("g", fmt.Sprint(g%4))).Observe(float64(i) / 100)
				r.Gauge("laces_conc_gauge", "g").Set(int64(i))
				if i%50 == 0 {
					r.Event("tick", L("g", fmt.Sprint(g)))
					sp := r.StartSpan("conc")
					sp.End()
				}
			}
		}(g)
	}
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for i := 0; i < 20; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
			}
			r.Snapshot()
		}
	}()
	wg.Wait()
	scrapeWG.Wait()
	var total int64
	for g := 0; g < 4; g++ {
		total += r.Counter("laces_conc_total", "c", L("g", fmt.Sprint(g))).Value()
	}
	if total != 8*200 {
		t.Fatalf("concurrent counter total = %d, want 1600", total)
	}
}

// BenchmarkObsCounterParallel measures contended counter adds — the
// cost ceiling for per-probe instrumentation under full parallelism.
func BenchmarkObsCounterParallel(b *testing.B) {
	r := New()
	c := r.Counter("laces_bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkObsStripedParallel is the striped variant netsim's per-probe
// accounting uses.
func BenchmarkObsStripedParallel(b *testing.B) {
	var s Striped
	b.RunParallel(func(pb *testing.PB) {
		var k uint64
		for pb.Next() {
			k++
			s.Add(k, 1)
		}
	})
}

// BenchmarkObsHistogramObserve is the single-thread histogram cost.
func BenchmarkObsHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("laces_bench_seconds", "", nil)
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
