package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progressState tracks the census's current stage for the live
// progress stream: stage name, target total, a hot-path done counter
// and an optional budget-remaining reader.
type progressState struct {
	mu         sync.Mutex
	stage      string
	total      int64
	stageStart time.Time
	done       Counter
	budgetFn   func() int64
}

// BeginStage marks the start of a pipeline stage processing total
// targets, resetting the per-stage progress counter.
func (r *Registry) BeginStage(stage string, total int64) {
	if r == nil {
		return
	}
	p := &r.progress
	p.mu.Lock()
	p.stage = stage
	p.total = total
	p.stageStart = time.Now() //laces:allow detnow live-progress rate/ETA is wall-clock telemetry, not census content
	p.mu.Unlock()
	p.done.reset()
}

// ProgressDone returns the per-stage done counter: stage loops bump it
// once per processed target so the progress stream can show live rate
// and ETA. Nil registry returns a nil (no-op) counter.
func (r *Registry) ProgressDone() *Counter {
	if r == nil {
		return nil
	}
	return &r.progress.done
}

// SetBudgetFunc installs a reader for the remaining global probe
// budget, shown on the progress line; nil (or a never-installed
// reader) omits it.
func (r *Registry) SetBudgetFunc(fn func() int64) {
	if r == nil {
		return
	}
	r.progress.mu.Lock()
	r.progress.budgetFn = fn
	r.progress.mu.Unlock()
}

// Progress is one sample of the census's live state.
type Progress struct {
	Stage   string
	Done    int64
	Total   int64
	Elapsed time.Duration // since the stage began
	// BudgetRemaining is the unspent global budget, or -1 when no
	// budget reader is installed.
	BudgetRemaining int64
}

// Progress samples the current stage state.
func (r *Registry) Progress() Progress {
	if r == nil {
		return Progress{BudgetRemaining: -1}
	}
	p := &r.progress
	p.mu.Lock()
	out := Progress{
		Stage:           p.stage,
		Total:           p.total,
		BudgetRemaining: -1,
	}
	if !p.stageStart.IsZero() {
		out.Elapsed = time.Since(p.stageStart) //laces:allow detnow live-progress rate/ETA is wall-clock telemetry, not census content
	}
	fn := p.budgetFn
	p.mu.Unlock()
	out.Done = p.done.Value()
	if fn != nil {
		out.BudgetRemaining = fn()
	}
	return out
}

// ProgressStream is a live census progress line: a background ticker
// rendering stage, throughput, ETA and remaining budget to a terminal
// (stderr), rewriting in place with "\r".
type ProgressStream struct {
	r        *Registry
	w        io.Writer
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
}

// StartProgress launches the progress stream, sampling the registry
// every interval (defaulting to 500 ms). Call Stop to end it; a nil
// registry returns a stream whose Stop is a no-op.
func (r *Registry) StartProgress(w io.Writer, interval time.Duration) *ProgressStream {
	if r == nil || w == nil {
		return &ProgressStream{}
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	ps := &ProgressStream{
		r:        r,
		w:        w,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go ps.run()
	return ps
}

// Stop halts the stream, printing a final sample and a newline.
func (ps *ProgressStream) Stop() {
	if ps == nil || ps.stop == nil {
		return
	}
	close(ps.stop)
	<-ps.done
}

func (ps *ProgressStream) run() {
	defer close(ps.done)
	t := time.NewTicker(ps.interval)
	defer t.Stop()
	var lastDone int64
	lastAt := time.Now() //laces:allow detnow live-progress rate/ETA is wall-clock telemetry, not census content
	var width int
	for {
		select {
		case <-t.C:
			now := time.Now() //laces:allow detnow live-progress rate/ETA is wall-clock telemetry, not census content
			p := ps.r.Progress()
			rate := float64(p.Done-lastDone) / now.Sub(lastAt).Seconds()
			lastDone, lastAt = p.Done, now
			width = ps.render(p, rate, width)
		case <-ps.stop:
			p := ps.r.Progress()
			ps.render(p, 0, width)
			fmt.Fprintln(ps.w)
			return
		}
	}
}

// render writes one in-place progress line, padding to the previous
// line's width so shrinking lines do not leave stale tails.
func (ps *ProgressStream) render(p Progress, rate float64, prevWidth int) int {
	line := "census: starting"
	if p.Stage != "" {
		line = fmt.Sprintf("census: stage=%s %d/%d targets", p.Stage, p.Done, p.Total)
		if p.Total > 0 {
			line += fmt.Sprintf(" (%.1f%%)", 100*float64(p.Done)/float64(p.Total))
		}
		if rate > 0 {
			line += fmt.Sprintf(" %.0f targets/s", rate)
			if left := p.Total - p.Done; left > 0 {
				line += fmt.Sprintf(" eta %.1fs", float64(left)/rate)
			}
		}
		if p.BudgetRemaining >= 0 {
			line += fmt.Sprintf(" budget %d", p.BudgetRemaining)
		}
	}
	w := len(line)
	for len(line) < prevWidth {
		line += " "
	}
	fmt.Fprintf(ps.w, "\r%s", line)
	return w
}
