package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// TraceExport is a portable trace dump: the assembled distributed-trace
// spans plus the flight-recorder events that were retained alongside
// them. It is what `laces trace export`, `-trace` flags and the
// /debug/trace API route serialize.
type TraceExport struct {
	Spans  []TraceSpan   `json:"spans"`
	Events []FlightEvent `json:"events,omitempty"`
}

// ExportTrace assembles the registry's current trace view: every
// completed trace span (local and ingested), the flight-recorder
// contents, and the legacy path-based census spans converted into
// trace-span form (trace_id 0 marks a local-only span; Perfetto renders
// them on the component's track alongside the distributed spans).
func (r *Registry) ExportTrace() *TraceExport {
	if r == nil {
		return &TraceExport{}
	}
	ex := &TraceExport{Spans: r.TraceSpans()}
	component := r.TraceComponent()
	for i, sp := range r.Spans() {
		ex.Spans = append(ex.Spans, TraceSpan{
			SpanID:    uint64(i + 1),
			Component: component,
			Name:      sp.Path,
			Start:     sp.Start,
			Seconds:   sp.Seconds,
		})
	}
	if f := r.Flight(); f != nil {
		ex.Events = f.Snapshot()
	}
	return ex
}

// traceLine is the JSONL framing: exactly one of span or event per
// line, so streams from different components concatenate into a valid
// merged trace.
type traceLine struct {
	Span  *TraceSpan   `json:"span,omitempty"`
	Event *FlightEvent `json:"event,omitempty"`
}

// WriteJSONL writes the export as one span or event per line.
//
//laces:allow nilsafe TraceExport is a data carrier, not an instrument; Registry.ExportTrace never returns nil even on a nil registry
func (e *TraceExport) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range e.Spans {
		if err := enc.Encode(traceLine{Span: &e.Spans[i]}); err != nil {
			return err
		}
	}
	for i := range e.Events {
		if err := enc.Encode(traceLine{Event: &e.Events[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceJSONL parses a JSONL trace stream previously written with
// WriteJSONL (or a concatenation of several).
func ReadTraceJSONL(r io.Reader) (*TraceExport, error) {
	ex := &TraceExport{}
	dec := json.NewDecoder(r)
	for {
		var line traceLine
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return ex, nil
			}
			return nil, fmt.Errorf("trace jsonl: %w", err)
		}
		if line.Span != nil {
			ex.Spans = append(ex.Spans, *line.Span)
		}
		if line.Event != nil {
			ex.Events = append(ex.Events, *line.Event)
		}
	}
}

// MergeTraces concatenates exports from several components into one.
func MergeTraces(parts ...*TraceExport) *TraceExport {
	out := &TraceExport{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Spans = append(out.Spans, p.Spans...)
		out.Events = append(out.Events, p.Events...)
	}
	return out
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "M" names a process, ph "X" is a complete span (ts+dur), ph "i" an
// instant. Perfetto and chrome://tracing load the resulting JSON
// directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the top-level trace_event envelope.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// hexID renders a span/trace ID the way trace viewers expect.
func hexID(v uint64) string { return "0x" + strconv.FormatUint(v, 16) }

// WriteChrome writes the export in Chrome trace_event JSON. Each
// component becomes one process (pid), named via process_name metadata,
// so a merged CLI+orchestrator+workers trace renders with per-worker
// attribution. Output is deterministic for a given export: components
// are pid-assigned in sorted order and events sorted by time.
//
//laces:allow nilsafe TraceExport is a data carrier, not an instrument; Registry.ExportTrace never returns nil even on a nil registry
func (e *TraceExport) WriteChrome(w io.Writer) error {
	componentPid := make(map[string]int)
	name := func(c string) string {
		if c == "" {
			return "laces"
		}
		return c
	}
	for _, sp := range e.Spans {
		componentPid[name(sp.Component)] = 0
	}
	for _, ev := range e.Events {
		componentPid[name(ev.Component)] = 0
	}
	components := make([]string, 0, len(componentPid))
	for c := range componentPid { //laces:allow maporder sorted immediately below
		components = append(components, c)
	}
	sort.Strings(components)
	doc := chromeDoc{TraceEvents: []chromeEvent{}}
	for i, c := range components {
		componentPid[c] = i + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  i + 1,
			Args: map[string]string{"name": c},
		})
	}

	spans := make([]TraceSpan, len(e.Spans))
	copy(spans, e.Spans)
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		if spans[i].Component != spans[j].Component {
			return spans[i].Component < spans[j].Component
		}
		return spans[i].Name < spans[j].Name
	})
	for _, sp := range spans {
		args := map[string]string{
			"trace_id": hexID(sp.TraceID),
			"span_id":  hexID(sp.SpanID),
		}
		if sp.Parent != 0 {
			args["parent"] = hexID(sp.Parent)
		}
		for _, a := range sp.Attrs {
			args[a.Name] = a.Value
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   sp.Start.UnixMicro(),
			Dur:  int64(sp.Seconds * 1e6),
			Pid:  componentPid[name(sp.Component)],
			Args: args,
		})
	}

	events := make([]FlightEvent, len(e.Events))
	copy(events, e.Events)
	sort.SliceStable(events, func(i, j int) bool {
		if !events[i].At.Equal(events[j].At) {
			return events[i].At.Before(events[j].At)
		}
		if events[i].Component != events[j].Component {
			return events[i].Component < events[j].Component
		}
		return events[i].Kind < events[j].Kind
	})
	for _, ev := range events {
		args := map[string]string{}
		if ev.Name != "" {
			args["name"] = ev.Name
		}
		if ev.TraceID != 0 {
			args["trace_id"] = hexID(ev.TraceID)
		}
		if ev.N != 0 {
			args["n"] = strconv.FormatInt(ev.N, 10)
		}
		for _, f := range ev.Fields {
			args[f.Name] = f.Value
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: ev.Kind,
			Cat:  "flight",
			Ph:   "i",
			S:    "p",
			Ts:   ev.At.UnixMicro(),
			Pid:  componentPid[name(ev.Component)],
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
