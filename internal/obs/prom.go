package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// writeLabels renders {k="v",...}, with extra appended last (the
// histogram "le" label). Empty sets render nothing.
func writeLabels(w *bufio.Writer, labels []Label, extra ...Label) {
	if len(labels)+len(extra) == 0 {
		return
	}
	w.WriteByte('{')
	first := true
	for _, set := range [2][]Label{labels, extra} {
		for _, l := range set {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(l.Name)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(l.Value))
			w.WriteByte('"')
		}
	}
	w.WriteByte('}')
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): one HELP/TYPE header per
// family, families in registration order, series in registration order
// within a family. Histograms emit cumulative _bucket series plus _sum
// and _count. Func-backed series are evaluated at call time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, fam := range fams {
		if fam.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(fam.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.name)
		bw.WriteByte(' ')
		bw.WriteString(fam.kind.promType())
		bw.WriteByte('\n')
		r.mu.Lock()
		series := make([]*metric, len(fam.series))
		copy(series, fam.series)
		r.mu.Unlock()
		for _, m := range series {
			if m.kind == kindHistogram {
				writeHistogram(bw, fam.name, m)
				continue
			}
			bw.WriteString(fam.name)
			writeLabels(bw, m.labels)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(m.value()))
			bw.WriteByte('\n')
		}
	}
	// Self-telemetry families, appended after the registered series:
	// drop counts of the bounded span/trace/flight logs. Always exposed
	// (even at zero) so dashboards can alert on the first drop.
	writeSelfCounter(bw, "laces_obs_spans_dropped_total",
		"Completed path spans dropped at the span-log cap.", float64(r.SpansDropped()))
	writeSelfCounter(bw, "laces_obs_trace_spans_dropped_total",
		"Distributed-trace spans dropped at the trace-log cap.", float64(r.TraceSpansDropped()))
	writeSelfCounter(bw, "laces_obs_flight_events_dropped_total",
		"Flight-recorder events overwritten by ring wrap.", float64(r.FlightDropped()))
	return bw.Flush()
}

// writeSelfCounter renders one label-free counter family.
func writeSelfCounter(bw *bufio.Writer, name, help string, v float64) {
	bw.WriteString("# HELP ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(escapeHelp(help))
	bw.WriteString("\n# TYPE ")
	bw.WriteString(name)
	bw.WriteString(" counter\n")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// writeHistogram renders one histogram series: cumulative buckets with
// le bounds, then _sum and _count.
func writeHistogram(bw *bufio.Writer, name string, m *metric) {
	h := m.hist
	if h == nil {
		return
	}
	counts := h.BucketCounts()
	var cum int64
	for i, bound := range h.Bounds() {
		cum += counts[i]
		bw.WriteString(name)
		bw.WriteString("_bucket")
		writeLabels(bw, m.labels, L("le", formatFloat(bound)))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	cum += counts[len(counts)-1]
	bw.WriteString(name)
	bw.WriteString("_bucket")
	writeLabels(bw, m.labels, L("le", "+Inf"))
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_sum")
	writeLabels(bw, m.labels)
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(h.Sum()))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_count")
	writeLabels(bw, m.labels)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(h.Count(), 10))
	bw.WriteByte('\n')
}
