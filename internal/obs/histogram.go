package obs

import (
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default latency bounds in seconds, matching
// the conventional Prometheus ladder: microsecond-scale simulator stages
// through multi-minute census runs.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// DefSizeBuckets are the default size bounds in bytes: exponential from
// 64 B (one small wire frame) to 16 MiB (the wire frame cap).
var DefSizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// Histogram is a fixed-bucket histogram with atomic bucket counts, an
// atomic observation count and a lock-free float sum. Bucket bounds are
// immutable after construction, so Observe is allocation-free. Nil-safe
// like the other instruments.
type Histogram struct {
	// bounds are the ascending upper bounds; observations above the last
	// bound land in the implicit +Inf bucket.
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sum     FloatCounter
}

// newHistogram builds a histogram over the given bounds (defaulting to
// DefLatencyBuckets when empty).
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
//
//laces:hotpath linear bucket scan plus three atomic adds per observation
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}
