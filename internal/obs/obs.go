// Package obs is the census telemetry core: dependency-free counters,
// gauges and fixed-bucket histograms with atomic updates, lightweight
// pipeline spans (census → stage → shard), a bounded structured-event
// log, Prometheus text exposition and a JSON Snapshot.
//
// The design contract mirrors internal/netsim's Impairer hook: hot-path
// instrumentation must be zero-alloc, and a disabled registry must
// compile down to near-no-ops. Every instrument type is nil-safe — a
// *Counter, *Gauge, *Histogram or *Span obtained from a nil *Registry
// is nil, and calling its methods costs exactly one branch — so
// measurement loops carry a single pre-resolved handle and no
// conditional wiring. Telemetry never feeds back into measurement
// results: a census Document is byte-identical with observation on or
// off, which the determinism guards pin.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; methods on a nil *Counter are no-ops, so handles
// resolved from a disabled registry cost one branch on the hot path.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
//
//laces:hotpath one branch plus one atomic add per event
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
//
//laces:hotpath one branch plus one atomic add per event
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// reset zeroes the counter (progress bookkeeping between stages).
func (c *Counter) reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is an atomically updated instantaneous value. Nil-safe like
// Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
//
//laces:hotpath one branch plus one atomic store per event
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (negative to decrement).
//
//laces:hotpath one branch plus one atomic add per event
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatCounter is a monotonically increasing float64 counter (seconds
// totals). Add uses a CAS loop over the float bits, so it is lock-free
// and allocation-free.
type FloatCounter struct{ bits atomic.Uint64 }

// Add increments the counter by v.
func (c *FloatCounter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current total (0 for a nil counter).
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// numStripes is the stripe count of a Striped counter. Power of two so
// the stripe index is a mask, comfortably above typical GOMAXPROCS.
const numStripes = 64

// stripe is one cache-line-padded counter cell: 8 bytes of value plus
// padding to 64 bytes, so adjacent stripes never share a line.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// Striped is a contention-avoiding counter for loops that update from
// many goroutines at once (the simulator's per-probe accounting): adds
// land on one of 64 padded stripes selected by a caller-supplied key
// (shard index, target ID — anything spread across workers), and reads
// sum the stripes. Nil-safe like Counter.
type Striped struct{ cells [numStripes]stripe }

// Add increments the stripe selected by key.
//
//laces:hotpath one atomic add per probe, striped to dodge cache-line contention
func (s *Striped) Add(key uint64, n int64) {
	if s != nil {
		s.cells[key&(numStripes-1)].v.Add(n)
	}
}

// Value sums all stripes.
func (s *Striped) Value() int64 {
	if s == nil {
		return 0
	}
	var sum int64
	for i := range s.cells {
		sum += s.cells[i].v.Load()
	}
	return sum
}

// Split reads a striped counter whose adds pack two correlated 32-bit
// fields into one value (lo | hi<<32) — the idiom for counting an event
// pair (probe issued, reply delivered) with a single atomic update. It
// unpacks per stripe before summing, so each field only overflows past
// 2^32 events landing on a single stripe (~2.7×10^11 events total at
// uniform key spread). Nil-safe.
func (s *Striped) Split() (lo, hi int64) {
	if s == nil {
		return 0, 0
	}
	for i := range s.cells {
		v := s.cells[i].v.Load()
		lo += v & (1<<32 - 1)
		hi += v >> 32
	}
	return lo, hi
}
