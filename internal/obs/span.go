package obs

import (
	"sync"
	"time"
)

// maxSpans bounds the per-registry span log. A census run produces a
// few hundred spans (one per stage plus one per shard per stage);
// long-lived servers drop the excess rather than grow without bound.
const maxSpans = 4096

// SpanRecord is one completed span as it appears in a Snapshot. Path
// encodes the hierarchy with "/" separators: "census/anycast_icmp/
// shard3" is a shard span inside a stage span inside the census span.
type SpanRecord struct {
	Path    string    `json:"path"`
	Start   time.Time `json:"start"`
	Seconds float64   `json:"seconds"`
}

// spanLog is the bounded completed-span list.
type spanLog struct {
	mu      sync.Mutex
	records []SpanRecord
	dropped int64
}

// Span is an in-flight timed section of the pipeline. Spans form a
// tree via Child; ending a span appends its record to the registry.
// Methods on a nil *Span (from a disabled registry) are no-ops, so
// stage code creates and ends spans unconditionally.
type Span struct {
	r     *Registry
	path  string
	start time.Time
}

// StartSpan opens a root span named path.
func (r *Registry) StartSpan(path string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, path: path, start: time.Now()} //laces:allow detnow span durations are wall-clock telemetry, not census content
}

// Child opens a sub-span: its path is the parent's path plus "/name".
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{r: s.r, path: s.path + "/" + name, start: time.Now()} //laces:allow detnow span durations are wall-clock telemetry, not census content
}

// End closes the span, recording its duration, and returns it.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start) //laces:allow detnow span durations are wall-clock telemetry, not census content
	l := &s.r.spans
	l.mu.Lock()
	if len(l.records) < maxSpans {
		l.records = append(l.records, SpanRecord{Path: s.path, Start: s.start, Seconds: d.Seconds()})
	} else {
		l.dropped++
	}
	l.mu.Unlock()
	return d
}

// Spans returns the completed spans in completion order.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spans.mu.Lock()
	defer r.spans.mu.Unlock()
	out := make([]SpanRecord, len(r.spans.records))
	copy(out, r.spans.records)
	return out
}
