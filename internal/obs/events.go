package obs

import (
	"strings"
	"sync"
	"time"
)

// maxEvents bounds the per-registry event ring.
const maxEvents = 256

// Event is one structured operational event: a kind plus ordered
// key=value fields (worker disconnects, governance interventions).
type Event struct {
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Fields []Label   `json:"fields,omitempty"`
}

// String renders the event as one structured log line:
// "kind k1=v1 k2=v2".
func (e Event) String() string {
	var sb strings.Builder
	sb.WriteString(e.Kind)
	for _, f := range e.Fields {
		sb.WriteByte(' ')
		sb.WriteString(f.Name)
		sb.WriteByte('=')
		sb.WriteString(f.Value)
	}
	return sb.String()
}

// eventLog is a bounded ring of recent events plus an optional sink.
type eventLog struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total int64
	sink  func(Event)
}

// Event records a structured event and forwards it to the sink, if one
// is installed. Field order is preserved.
func (r *Registry) Event(kind string, fields ...Label) {
	if r == nil {
		return
	}
	ev := Event{At: time.Now(), Kind: kind, Fields: fields} //laces:allow detnow telemetry event timestamps are operator-facing wall clock; census bytes never include them
	l := &r.events
	l.mu.Lock()
	if len(l.ring) < maxEvents {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next] = ev
		l.next = (l.next + 1) % maxEvents
	}
	l.total++
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		sink(ev)
	}
}

// OnEvent installs a synchronous event sink (a structured logger). One
// sink at a time; nil uninstalls.
func (r *Registry) OnEvent(sink func(Event)) {
	if r == nil {
		return
	}
	r.events.mu.Lock()
	r.events.sink = sink
	r.events.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	l := &r.events
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if len(l.ring) == maxEvents {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	return out
}
