package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceAssembly pins the single-process trace lifecycle: mint, join
// from a propagated context, child spans, attributes, component
// stamping and trace-ID filtering.
func TestTraceAssembly(t *testing.T) {
	r := New()
	r.SetTraceComponent("cli")
	root := r.StartTrace("measure")
	if root.Context() == nil || !root.Context().Valid() {
		t.Fatal("minted trace has no valid context")
	}
	child := root.Child("send")
	child.SetAttr("targets", "100")
	child.SetAttr("targets", "200") // later write wins
	child.End()
	root.End()
	root.End() // double End records once

	// A second component joins via the propagated context.
	r2 := New()
	r2.SetTraceComponent("orchestrator")
	joined := r2.JoinTrace(root.Context(), "orchestrator/measurement")
	joined.End()

	spans := r.TraceSpans()
	if len(spans) != 2 {
		t.Fatalf("cli recorded %d spans, want 2", len(spans))
	}
	if spans[0].Name != "send" || spans[0].Parent != root.Context().SpanID {
		t.Fatalf("child span wrong: %+v", spans[0])
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Value != "200" {
		t.Fatalf("attr overwrite failed: %+v", spans[0].Attrs)
	}
	if spans[0].Component != "cli" || spans[1].Component != "cli" {
		t.Fatalf("component not stamped: %+v", spans)
	}

	remote := r2.TraceSpans()
	if len(remote) != 1 || remote[0].TraceID != root.Context().TraceID {
		t.Fatalf("joined span did not keep the trace ID: %+v", remote)
	}
	if remote[0].Parent != root.Context().SpanID {
		t.Fatalf("joined span parent = %x, want %x", remote[0].Parent, root.Context().SpanID)
	}

	// Ingesting the remote batch assembles the cross-process trace.
	r.IngestTraceSpans(remote)
	got := r.TraceSpansFor(root.Context().TraceID)
	if len(got) != 3 {
		t.Fatalf("assembled trace has %d spans, want 3", len(got))
	}
	// A nil/zero context joins as a fresh trace rather than trace 0.
	fresh := r.JoinTrace(nil, "standalone")
	if fresh.Context().TraceID == 0 || fresh.Context().TraceID == root.Context().TraceID {
		t.Fatalf("nil-context join minted trace %x", fresh.Context().TraceID)
	}
	fresh.End()
}

// TestTraceIDsUnique pins that minted IDs are non-zero and distinct
// under concurrency.
func TestTraceIDsUnique(t *testing.T) {
	const n = 2000
	ids := make(chan uint64, 4*n)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ids <- newID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[uint64]bool, 4*n)
	for id := range ids {
		if id == 0 {
			t.Fatal("minted zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %x", id)
		}
		seen[id] = true
	}
}

// TestFlightRecorderRing pins the ring semantics: bounded retention,
// oldest-first snapshots, wrap counting.
func TestFlightRecorderRing(t *testing.T) {
	rec := NewRecorder("worker-a", 16)
	tc := &TraceContext{TraceID: 7, SpanID: 9}
	for i := 0; i < 20; i++ {
		rec.Record("frame_rx", fmt.Sprintf("ev%d", i), tc, int64(i))
	}
	if rec.Total() != 20 || rec.Dropped() != 4 {
		t.Fatalf("total=%d dropped=%d, want 20/4", rec.Total(), rec.Dropped())
	}
	evs := rec.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	if evs[0].Name != "ev4" || evs[15].Name != "ev19" {
		t.Fatalf("ring order wrong: first=%s last=%s", evs[0].Name, evs[15].Name)
	}
	if evs[0].Component != "worker-a" || evs[0].TraceID != 7 || evs[0].SpanID != 9 {
		t.Fatalf("event fields wrong: %+v", evs[0])
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 16 {
		t.Fatalf("JSONL dump has %d lines, want 16", n)
	}
}

// TestFlightRecorderConcurrent exercises the lock-free record path from
// many goroutines (the CI race job runs this under -race).
func TestFlightRecorderConcurrent(t *testing.T) {
	r := New()
	rec := r.EnableFlight("orchestrator", 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Flight().Record("frame_tx", "Targets", nil, int64(i))
			}
		}(g)
	}
	wg.Wait()
	if rec.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", rec.Total())
	}
	if got := len(rec.Snapshot()); got != 64 {
		t.Fatalf("snapshot = %d events, want 64", got)
	}
	if rec.Dropped() != 4000-64 {
		t.Fatalf("dropped = %d, want %d", rec.Dropped(), 4000-64)
	}
}

// TestDropCountsPublished pins satellite telemetry: the bounded-log
// drop counts appear in both the Prometheus exposition and Snapshot.
func TestDropCountsPublished(t *testing.T) {
	r := New()
	// Overflow the trace log in one batch, the flight ring by four.
	batch := make([]TraceSpan, maxTraceSpans+3)
	for i := range batch {
		batch[i] = TraceSpan{TraceID: 1, SpanID: uint64(i + 1), Name: "s"}
	}
	r.IngestTraceSpans(batch)
	r.EnableFlight("cli", 16)
	for i := 0; i < 20; i++ {
		r.Flight().Record("k", "", nil, 0)
	}
	if r.TraceSpansDropped() != 3 || r.FlightDropped() != 4 || r.SpansDropped() != 0 {
		t.Fatalf("drops = %d/%d/%d", r.TraceSpansDropped(), r.FlightDropped(), r.SpansDropped())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"laces_obs_spans_dropped_total 0",
		"laces_obs_trace_spans_dropped_total 3",
		"laces_obs_flight_events_dropped_total 4",
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
	snap := r.Snapshot()
	byName := map[string]float64{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m.Value
	}
	if byName["laces_obs_trace_spans_dropped_total"] != 3 || byName["laces_obs_flight_events_dropped_total"] != 4 {
		t.Fatalf("snapshot drop counters wrong: %+v", byName)
	}
}

// goldenExport is a fixed-timestamp export used by the JSONL and
// Perfetto golden tests.
func goldenExport() *TraceExport {
	t0 := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	return &TraceExport{
		Spans: []TraceSpan{
			{TraceID: 0xabc, SpanID: 1, Component: "cli", Name: "measure", Start: t0, Seconds: 1.5},
			{TraceID: 0xabc, SpanID: 2, Parent: 1, Component: "orchestrator", Name: "orchestrator/measurement",
				Start: t0.Add(10 * time.Millisecond), Seconds: 1.2, Attrs: []Label{L("measurement", "m1")}},
			{TraceID: 0xabc, SpanID: 3, Parent: 2, Component: "worker-a", Name: "worker/measure",
				Start: t0.Add(20 * time.Millisecond), Seconds: 1.0, Attrs: []Label{L("sent", "42")}},
		},
		Events: []FlightEvent{
			{At: t0.Add(5 * time.Millisecond), Component: "orchestrator", Kind: "frame_tx",
				Name: "Start", TraceID: 0xabc, SpanID: 2, N: 64},
		},
	}
}

// TestTraceJSONLRoundTrip pins the JSONL framing: write, read back,
// merge.
func TestTraceJSONLRoundTrip(t *testing.T) {
	ex := goldenExport()
	var buf bytes.Buffer
	if err := ex.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 4 {
		t.Fatalf("JSONL has %d lines, want 4", n)
	}
	back, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 3 || len(back.Events) != 1 {
		t.Fatalf("round trip = %d spans / %d events", len(back.Spans), len(back.Events))
	}
	if back.Spans[2].Attrs[0].Value != "42" || !back.Spans[0].Start.Equal(ex.Spans[0].Start) {
		t.Fatalf("round trip mangled spans: %+v", back.Spans)
	}
	merged := MergeTraces(back, goldenExport(), nil)
	if len(merged.Spans) != 6 || len(merged.Events) != 2 {
		t.Fatalf("merge = %d spans / %d events", len(merged.Spans), len(merged.Events))
	}
}

// TestChromeExportGolden pins the Perfetto-loadable trace_event output
// byte-for-byte against testdata/trace_golden.json, plus structural
// properties a viewer depends on.
func TestChromeExportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenExport().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "trace_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export deviates from golden:\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	// 3 process_name metadata + 3 complete spans + 1 instant.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("chrome export has %d events, want 7", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 3 || phases["X"] != 3 || phases["i"] != 1 {
		t.Fatalf("phase counts = %v", phases)
	}
}

// TestTraceDisabledPathAllocs pins the zero-alloc contract of the
// disabled tracing path: nil registry, nil recorder, nil spans.
func TestTraceDisabledPathAllocs(t *testing.T) {
	var r *Registry
	var rec *Recorder
	tc := &TraceContext{TraceID: 1, SpanID: 2}
	if n := testing.AllocsPerRun(200, func() {
		sp := r.StartTrace("x")
		sp.SetAttr("a", "b")
		ch := sp.Child("y")
		_ = ch.Context()
		ch.End()
		sp.End()
		r.JoinTrace(tc, "z").End()
		rec.Record("k", "n", tc, 1)
		r.Flight().Record("k", "n", nil, 0)
		r.IngestTraceSpans(nil)
	}); n != 0 {
		t.Fatalf("disabled tracing allocates %.1f objects/op, want 0", n)
	}
}

// BenchmarkTraceEventRing measures the contended flight-recorder record
// path — the cost every frame send/recv pays when tracing is on.
func BenchmarkTraceEventRing(b *testing.B) {
	rec := NewRecorder("bench", 4096)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		tc := &TraceContext{TraceID: 1, SpanID: 2}
		for pb.Next() {
			rec.Record("frame_rx", "Targets", tc, 512)
		}
	})
}
