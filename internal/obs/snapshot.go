package obs

import (
	"encoding/json"
	"io"
	"time"
)

// SnapshotBucket is one histogram bucket in a Snapshot: the upper bound
// and the non-cumulative count.
type SnapshotBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// SnapshotMetric is one series in a Snapshot. Scalar series carry
// Value; histograms carry Count, Sum and Buckets.
type SnapshotMetric struct {
	Name   string  `json:"name"`
	Type   string  `json:"type"`
	Labels []Label `json:"labels,omitempty"`

	Value float64 `json:"value"`

	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []SnapshotBucket `json:"buckets,omitempty"`
}

// Snapshot is the end-of-run telemetry dump: every series' final
// value, the completed span tree and the retained events. It is what
// `laces census -obs` and `laces-experiments -obs` write and what
// `laces metrics` renders.
type Snapshot struct {
	TakenAt time.Time        `json:"taken_at"`
	Metrics []SnapshotMetric `json:"metrics"`
	Spans   []SpanRecord     `json:"spans,omitempty"`
	Events  []Event          `json:"events,omitempty"`
}

// Snapshot captures the registry's current state. Func-backed series
// are evaluated; histograms include their full bucket layout.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	snap := &Snapshot{TakenAt: time.Now()} //laces:allow detnow snapshot capture time is operator-facing telemetry, not census content
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, fam := range fams {
		r.mu.Lock()
		series := make([]*metric, len(fam.series))
		copy(series, fam.series)
		r.mu.Unlock()
		for _, m := range series {
			sm := SnapshotMetric{Name: fam.name, Type: fam.kind.promType(), Labels: m.labels}
			if m.kind == kindHistogram && m.hist != nil {
				sm.Count = m.hist.Count()
				sm.Sum = m.hist.Sum()
				counts := m.hist.BucketCounts()
				for i, b := range m.hist.Bounds() {
					if counts[i] != 0 {
						sm.Buckets = append(sm.Buckets, SnapshotBucket{LE: b, Count: counts[i]})
					}
				}
				if inf := counts[len(counts)-1]; inf != 0 {
					sm.Buckets = append(sm.Buckets, SnapshotBucket{LE: -1, Count: inf})
				}
			} else {
				sm.Value = m.value()
			}
			snap.Metrics = append(snap.Metrics, sm)
		}
	}
	// Self-telemetry: the bounded-log drop counts, always present so a
	// saturated span log or wrapped flight recorder names itself in the
	// dump instead of silently truncating.
	snap.Metrics = append(snap.Metrics,
		SnapshotMetric{Name: "laces_obs_spans_dropped_total", Type: "counter", Value: float64(r.SpansDropped())},
		SnapshotMetric{Name: "laces_obs_trace_spans_dropped_total", Type: "counter", Value: float64(r.TraceSpansDropped())},
		SnapshotMetric{Name: "laces_obs_flight_events_dropped_total", Type: "counter", Value: float64(r.FlightDropped())},
	)
	snap.Spans = r.Spans()
	snap.Events = r.Events()
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
//
//laces:allow nilsafe Snapshot is a data carrier, not an instrument; Registry.Snapshot never returns nil even on a nil registry
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot previously written with WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
