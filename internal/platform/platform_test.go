package platform

import (
	"testing"

	"github.com/laces-project/laces/internal/netsim"
)

var testWorld = mustWorld()

func mustWorld() *netsim.World {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		panic(err)
	}
	return w
}

func TestDeploymentSizes(t *testing.T) {
	cases := []struct {
		name string
		mk   func(*netsim.World) (*netsim.Deployment, error)
		want int
	}{
		{"EU-NA", EUNA2, 2},
		{"1-per-continent", OnePerContinent6, 6},
		{"2-per-continent", TwoPerContinent11, 11},
		{"ccTLD", CcTLD, 12},
		{"Melbicom", Melbicom, 16},
		{"Vultr+Melbicom", VultrMelbicom, 48},
	}
	for _, tc := range cases {
		d, err := tc.mk(testWorld)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if d.NumSites() != tc.want {
			t.Errorf("%s has %d sites, want %d", tc.name, d.NumSites(), tc.want)
		}
	}
	tangled, err := Tangled(testWorld, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	if tangled.NumSites() != 32 {
		t.Errorf("TANGLED has %d sites, want 32", tangled.NumSites())
	}
}

func TestMelbicomAsiaCoverage(t *testing.T) {
	// §5.4: Melbicom provides only a single VP in Asia/Oceania, which is
	// why it misses regional anycast there.
	d, _ := Melbicom(testWorld)
	apac := 0
	for _, s := range d.Sites {
		switch s.City.Continent.String() {
		case "AS", "OC":
			apac++
		}
	}
	if apac != 1 {
		t.Fatalf("Melbicom has %d APAC sites, want exactly 1", apac)
	}
}

func TestArkGrowth(t *testing.T) {
	if got := ArkSize(0, false); got != 160 {
		t.Errorf("Ark v4 at census start = %d, want 160", got)
	}
	if got := ArkSize(540, false); got != 250 {
		t.Errorf("Ark v4 at day 540 = %d, want 250", got)
	}
	if got := ArkSize(0, true); got != 90 {
		t.Errorf("Ark v6 at start = %d, want 90", got)
	}
	// Monotone non-decreasing growth.
	prev := 0
	for day := 0; day <= 540; day += 10 {
		n := ArkSize(day, false)
		if n < prev {
			t.Fatalf("Ark shrank at day %d: %d < %d", day, n, prev)
		}
		prev = n
	}
	// The January 2025 step increase (§7) is visible.
	if ArkSize(295, false) <= ArkSize(285, false) {
		t.Error("no visible VP step around day 290")
	}
}

func TestArkVPs(t *testing.T) {
	vps, err := Ark(testWorld, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(vps) != ArkSize(100, false) {
		t.Fatalf("Ark pool size %d, want %d", len(vps), ArkSize(100, false))
	}
	for _, vp := range vps {
		if vp.FiltersSpecifics {
			t.Error("IPv4 Ark VPs must not filter specifics")
		}
		if !vp.Loc.IsValid() {
			t.Errorf("VP %s has invalid location", vp.Name)
		}
	}
	v6, err := Ark(testWorld, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	filters := 0
	for _, vp := range v6 {
		if vp.FiltersSpecifics {
			filters++
		}
	}
	if filters != 2 {
		t.Fatalf("IPv6 Ark pool has %d filtering VPs, want exactly 2 (§6)", filters)
	}
}

func TestArkDeterministic(t *testing.T) {
	a, _ := Ark(testWorld, 200, false)
	b, _ := Ark(testWorld, 200, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Ark pool not deterministic")
		}
	}
}

func TestAtlasSpacing(t *testing.T) {
	vps, err := Atlas(testWorld, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(vps) < 150 {
		t.Fatalf("Atlas pool too small: %d", len(vps))
	}
	for i := 0; i < len(vps); i++ {
		for j := i + 1; j < len(vps); j++ {
			if vps[i].Loc.DistanceKm(vps[j].Loc) < 100 {
				t.Fatalf("VPs %s and %s within 100km", vps[i].Name, vps[j].Name)
			}
		}
	}
	// Thinning to 1000 km must shrink the pool substantially (Fig 11).
	thin, _ := Atlas(testWorld, 1000)
	if len(thin) >= len(vps)/2 {
		t.Fatalf("1000km thinning kept %d of %d VPs", len(thin), len(vps))
	}
}

func TestParticipation(t *testing.T) {
	vps, _ := Atlas(testWorld, 100)
	p1 := Participating(vps, 1, 0.9)
	p2 := Participating(vps, 2, 0.9)
	if len(p1) == 0 || len(p1) == len(vps) {
		t.Fatalf("participation filter degenerate: %d of %d", len(p1), len(vps))
	}
	// Different salts yield different subsets (variable participation).
	same := true
	if len(p1) != len(p2) {
		same = false
	} else {
		for i := range p1 {
			if p1[i].Name != p2[i].Name {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("participation identical across measurements")
	}
	if got := Participating(vps, 3, 1.0); len(got) != len(vps) {
		t.Error("rate 1.0 should keep everyone")
	}
}

func TestAtlasCredits(t *testing.T) {
	// App B: 23,821 targets × 481 VPs × 3 credits ≈ 34 M ≈ the paper's
	// 37 M credit campaign.
	got := AtlasCredits(23821, 481, 1)
	if got < 30_000_000 || got > 40_000_000 {
		t.Fatalf("credit model = %d, want ~34M", got)
	}
}
