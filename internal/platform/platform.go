// Package platform defines the measurement platforms the paper deploys
// LACeS on: the TANGLED anycast testbed on Vultr (32 sites), the
// ccTLD-registry and Melbicom deployments of the replicability study
// (§5.4), the reduced deployments of the cost study (§5.5.1), and the
// unicast VP pools used for latency measurements — CAIDA Ark (growing over
// the census, §4.3) and RIPE Atlas (§5.1.2, App B).
package platform

import (
	"fmt"

	"github.com/laces-project/laces/internal/cities"
	"github.com/laces-project/laces/internal/netsim"
)

// Tangled returns the TANGLED testbed deployment: all 32 Vultr metros
// (§4.2.1), announcing under the given routing policy.
func Tangled(w *netsim.World, policy netsim.RoutingPolicy) (*netsim.Deployment, error) {
	return w.NewDeployment("TANGLED", cities.VultrMetros(), policy)
}

// CcTLDCities are the 12 locations of the registry-operated anycast
// production deployment of §5.4.
func CcTLDCities() []string {
	return []string{
		"Amsterdam", "Frankfurt", "London", "Paris", "Stockholm", "Vienna",
		"New York", "Los Angeles", "Tokyo", "Singapore", "Sao Paulo", "Sydney",
	}
}

// CcTLD returns the 12-site ccTLD registry deployment.
func CcTLD(w *netsim.World) (*netsim.Deployment, error) {
	return w.NewDeployment("ccTLD", CcTLDCities(), netsim.PolicyUnmodified)
}

// MelbicomCities are the 16 Melbicom locations (§5.4): Europe- and
// US-heavy, with a single VP in Asia and none in Oceania — which is why
// that deployment misses regional anycast there.
func MelbicomCities() []string {
	return []string{
		"Amsterdam", "Frankfurt", "London", "Madrid", "Paris", "Stockholm",
		"Warsaw", "Moscow", "New York", "Miami", "Los Angeles", "Dallas",
		"Chicago", "Atlanta", "Sao Paulo", "Singapore",
	}
}

// Melbicom returns the 16-site Melbicom deployment.
func Melbicom(w *netsim.World) (*netsim.Deployment, error) {
	return w.NewDeployment("Melbicom", MelbicomCities(), netsim.PolicyUnmodified)
}

// VultrMelbicom returns the combined 48-site deployment of §5.4.
func VultrMelbicom(w *netsim.World) (*netsim.Deployment, error) {
	return w.NewDeployment("Vultr+Melbicom",
		append(append([]string{}, cities.VultrMetros()...), MelbicomCities()...),
		netsim.PolicyUnmodified)
}

// EUNA2 is the two-VP deployment of Table 4 (one in North America, one in
// Europe).
func EUNA2(w *netsim.World) (*netsim.Deployment, error) {
	return w.NewDeployment("EU-NA", []string{"Amsterdam", "New York"}, netsim.PolicyUnmodified)
}

// OnePerContinent6 is the six-VP deployment of Table 4.
func OnePerContinent6(w *netsim.World) (*netsim.Deployment, error) {
	return w.NewDeployment("1-per-continent",
		[]string{"New York", "Sao Paulo", "Amsterdam", "Johannesburg", "Tokyo", "Sydney"},
		netsim.PolicyUnmodified)
}

// TwoPerContinent11 is the eleven-VP deployment of Table 4: two sites per
// continent maximising geographical distance, one in Africa.
func TwoPerContinent11(w *netsim.World) (*netsim.Deployment, error) {
	return w.NewDeployment("2-per-continent",
		[]string{"New York", "Los Angeles", "Sao Paulo", "Santiago",
			"Madrid", "Stockholm", "Johannesburg",
			"Tokyo", "Mumbai", "Sydney", "Melbourne"},
		netsim.PolicyUnmodified)
}

// ArkSize returns the modelled number of Ark VPs on a census day: the
// platform grew from ~160 IPv4 / ~90 IPv6 monitors in mid-2024 to ~250 /
// ~150 by September 2025 (§4.3), with a step increase in January 2025
// (§7, Fig 9/10 annotations).
func ArkSize(day int, v6 bool) int {
	lo, hi := 160, 250
	if v6 {
		lo, hi = 90, 150
	}
	const growStart, growEnd = 80, 540
	switch {
	case day <= growStart:
		return lo
	case day >= growEnd:
		return hi
	default:
		n := lo + (hi-lo)*(day-growStart)/(growEnd-growStart)
		// The January 2025 VP batch (~day 290) lands as a visible step.
		if day >= 290 {
			n += 12
			if n > hi {
				n = hi
			}
		}
		return n
	}
}

// Ark returns the Ark VP pool for a census day. VPs are placed at
// population-weighted cities (several monitors may share a metro, as on
// the real platform); exactly two IPv6 VPs sit in ASes that filter
// more-specific announcements — the Fastly false-positive mechanism the
// paper diagnosed in §6.
func Ark(w *netsim.World, day int, v6 bool) ([]netsim.VP, error) {
	n := ArkSize(day, v6)
	fam := "v4"
	if v6 {
		fam = "v6"
	}
	vps := make([]netsim.VP, 0, n)
	all := w.DB.All()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("ark-%s-%03d", fam, i)
		city := all[w.SampleCity(uint64(i), "ark-"+fam)]
		vp, err := w.NewVP(name, city.Name, 0)
		if err != nil {
			return nil, err
		}
		if v6 && (i == 7 || i == 41) {
			vp.FiltersSpecifics = true
		}
		vps = append(vps, vp)
	}
	return vps, nil
}

// Atlas returns the RIPE Atlas VP pool: one probe per database city,
// thinned so no two VPs are within minSpacingKm (the paper used 100 km,
// App B). Participation is the caller's concern (see Participating).
func Atlas(w *netsim.World, minSpacingKm float64) ([]netsim.VP, error) {
	var vps []netsim.VP
	for _, c := range w.DB.All() {
		ok := true
		for _, v := range vps {
			if v.Loc.DistanceKm(c.Location) < minSpacingKm {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		vp, err := w.NewVP("atlas-"+c.Name, c.Name, 0)
		if err != nil {
			return nil, err
		}
		vps = append(vps, vp)
	}
	return vps, nil
}

// Participating filters a VP pool by per-measurement participation: RIPE
// Atlas probes frequently fail to return results (§5.2: "large variability
// ... due to inconsistency in the number of RIPE Atlas nodes
// participating"). The filter is deterministic in (measurement salt, VP).
func Participating(vps []netsim.VP, salt uint64, rate float64) []netsim.VP {
	if rate >= 1 {
		return vps
	}
	out := make([]netsim.VP, 0, len(vps))
	h := salt
	for _, vp := range vps {
		h = h*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
		for _, c := range vp.Name {
			h ^= uint64(c)
			h *= 0x100000001b3
		}
		if float64(h>>11)/(1<<53) < rate {
			out = append(out, vp)
		}
	}
	return out
}

// AtlasCreditsPerProbe is the RIPE Atlas credit cost of one ping result
// (App B: the 23,821-target campaign against 481 VPs cost 37 M credits).
const AtlasCreditsPerProbe = 3

// AtlasCredits returns the credit cost of a campaign.
func AtlasCredits(targets, vps, attempts int) int64 {
	return int64(targets) * int64(vps) * int64(attempts) * AtlasCreditsPerProbe
}

// TangledCities returns the TANGLED metro list (the Vultr data centres).
func TangledCities() []string { return cities.VultrMetros() }
