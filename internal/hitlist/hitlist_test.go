package hitlist

import (
	"testing"
	"testing/quick"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

var testWorld = mustWorld()

func mustWorld() *netsim.World {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		panic(err)
	}
	return w
}

func TestQuarterOf(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 89: 0, 90: 90, 179: 90, 180: 180, 533: 450, -5: 0}
	for day, want := range cases {
		if got := QuarterOf(day); got != want {
			t.Errorf("QuarterOf(%d) = %d, want %d", day, got, want)
		}
	}
}

func TestScanMatchesResponsiveness(t *testing.T) {
	h := Scan(testWorld, SourceISI, false, 0)
	if h.Len() == 0 {
		t.Fatal("empty ISI scan")
	}
	for _, e := range h.Entries {
		tg := &testWorld.TargetsV4[e.TargetID]
		if !tg.Responsive[packet.ICMP] {
			t.Fatalf("ISI scan included ICMP-unresponsive target %d", e.TargetID)
		}
		if !e.Protocols[packet.ICMP] {
			t.Fatal("ISI entry not flagged ICMP")
		}
		if e.Prefix != tg.Prefix || e.Addr != tg.Addr {
			t.Fatal("entry prefix/addr mismatch")
		}
	}
}

func TestMergeUnionsProtocols(t *testing.T) {
	isi := Scan(testWorld, SourceISI, false, 0)
	zmap := Scan(testWorld, SourceZmap, false, 0)
	dns := Scan(testWorld, SourceDNS, false, 0)
	merged, err := Merge(isi, zmap, dns)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() < isi.Len() || merged.Len() < zmap.Len() {
		t.Fatal("merge lost entries")
	}
	// The union must equal the number of targets responsive to >= 1
	// scanned protocol (= all targets, by world construction).
	if merged.Len() != len(testWorld.TargetsV4) {
		t.Fatalf("merged %d entries, world has %d responsive targets", merged.Len(), len(testWorld.TargetsV4))
	}
	// Entry protocol flags must equal the target's responsiveness.
	for _, e := range merged.Entries {
		tg := &testWorld.TargetsV4[e.TargetID]
		if e.Protocols != tg.Responsive {
			t.Fatalf("target %d: protocols %v, responsive %v", e.TargetID, e.Protocols, tg.Responsive)
		}
	}
	// Sorted by ID, no duplicates.
	for i := 1; i < merged.Len(); i++ {
		if merged.Entries[i].TargetID <= merged.Entries[i-1].TargetID {
			t.Fatal("merged entries not strictly sorted")
		}
	}
}

func TestMergeIdempotent(t *testing.T) {
	a := Scan(testWorld, SourceISI, false, 0)
	m1, err := Merge(a, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Len() != a.Len() {
		t.Fatalf("self-merge changed size: %d vs %d", m1.Len(), a.Len())
	}
}

func TestMergeRejectsMixedFamilies(t *testing.T) {
	v4 := Scan(testWorld, SourceISI, false, 0)
	v6 := Scan(testWorld, SourceTUM, true, 0)
	if _, err := Merge(v4, v6); err == nil {
		t.Fatal("merging v4 and v6 lists should fail")
	}
}

func TestForDayComposition(t *testing.T) {
	v4 := ForDay(testWorld, false, 0)
	st := v4.Stats()
	// Paper shape: ICMP coverage > TCP coverage >> DNS coverage for IPv4.
	if !(st.ByProto[packet.ICMP] > st.ByProto[packet.TCP] &&
		st.ByProto[packet.TCP] > st.ByProto[packet.DNS]) {
		t.Fatalf("v4 protocol composition off: %v", st.ByProto)
	}
	v6 := ForDay(testWorld, true, 0)
	st6 := v6.Stats()
	// IPv6 skews to TCP relative to IPv4 (§5.3.2): the TCP share of the
	// v6 hitlist must exceed the TCP share of the v4 hitlist.
	v4TCPShare := float64(st.ByProto[packet.TCP]) / float64(st.Total)
	v6TCPShare := float64(st6.ByProto[packet.TCP]) / float64(st6.Total)
	if v6TCPShare <= v4TCPShare {
		t.Fatalf("v6 TCP share %.2f should exceed v4 %.2f", v6TCPShare, v4TCPShare)
	}
}

func TestQuarterlyGrowth(t *testing.T) {
	early := ForDay(testWorld, true, 0)
	late := ForDay(testWorld, true, 500)
	if late.Len() <= early.Len() {
		t.Fatalf("v6 hitlist should grow: day0=%d day500=%d", early.Len(), late.Len())
	}
	// Growth only lands at quarter boundaries.
	d89 := ForDay(testWorld, true, 89)
	if d89.Len() != early.Len() {
		t.Fatal("hitlist changed before the quarterly refresh")
	}
	d90 := ForDay(testWorld, true, 90)
	if d90.Len() <= d89.Len() {
		t.Fatal("no growth at the day-90 refresh")
	}
}

func TestFilterProtocol(t *testing.T) {
	h := ForDay(testWorld, false, 0)
	for _, p := range packet.Protocols() {
		sub := h.FilterProtocol(p)
		for _, e := range sub {
			if !e.Protocols[p] {
				t.Fatalf("FilterProtocol(%v) returned non-%v entry", p, p)
			}
		}
		if len(sub) != h.Stats().ByProto[p] {
			t.Fatalf("FilterProtocol(%v) size %d, stats say %d", p, len(sub), h.Stats().ByProto[p])
		}
	}
}

func TestIDsOrder(t *testing.T) {
	h := ForDay(testWorld, false, 0)
	ids := h.IDs()
	if len(ids) != h.Len() {
		t.Fatal("IDs length mismatch")
	}
	f := func(i uint16) bool {
		k := int(i) % len(ids)
		return ids[k] == h.Entries[k].TargetID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSourceString(t *testing.T) {
	for s, want := range map[Source]string{SourceISI: "ISI", SourceZmap: "Zmap", SourceDNS: "OpenINTEL", SourceTUM: "TUM"} {
		if s.String() != want {
			t.Errorf("%v != %s", s, want)
		}
	}
	if Source(9).String() != "Source(9)" {
		t.Error("unknown source formatting")
	}
}
