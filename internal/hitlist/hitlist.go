// Package hitlist assembles the census input (§4.1 of the paper): the set
// of responsive prefixes LACeS probes, one representative address per /24
// (IPv4) or /48 (IPv6).
//
// The paper merges several sources — ISI's ping-responsive ranking, Zmap
// TCP scans, OpenINTEL nameserver addresses and the TUM IPv6 hitlist —
// and refreshes quarterly. Here each source is a protocol-scoped scan of
// the simulated world; Merge unions them exactly like the paper's union
// of 4.3 M responsive /24s.
package hitlist

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

// Entry is one hitlist row: a prefix and its representative probe address.
type Entry struct {
	TargetID int
	Prefix   netip.Prefix
	Addr     netip.Addr
	// Protocols records which probing protocols this entry is expected to
	// answer (which source scans found it).
	Protocols [3]bool
}

// Hitlist is an ordered set of entries for one address family.
type Hitlist struct {
	V6      bool
	Day     int // quarterly snapshot day the list was built for
	Entries []Entry
}

// Len returns the number of entries.
func (h *Hitlist) Len() int { return len(h.Entries) }

// QuarterOf floors a census day to its quarterly hitlist refresh day
// (§4.1: "we update hitlists quarterly, in sync with ISI's").
func QuarterOf(day int) int {
	if day < 0 {
		return 0
	}
	return day - day%90
}

// Source identifies one upstream hitlist provider.
type Source uint8

// Hitlist sources modelled after §4.1.
const (
	SourceISI  Source = iota // ISI ping-responsive IPv4 ranking
	SourceZmap               // Zmap TCP scans of the routable space
	SourceDNS                // OpenINTEL authoritative nameserver addresses
	SourceTUM                // TUM IPv6 hitlist
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceISI:
		return "ISI"
	case SourceZmap:
		return "Zmap"
	case SourceDNS:
		return "OpenINTEL"
	case SourceTUM:
		return "TUM"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// protocol returns the probing protocol a source discovers targets with.
func (s Source) protocol() packet.Protocol {
	switch s {
	case SourceZmap:
		return packet.TCP
	case SourceDNS:
		return packet.DNS
	default:
		return packet.ICMP
	}
}

// Scan builds the single-source hitlist for the world at a census day:
// every target responsive to the source's protocol and already present in
// the quarterly snapshot.
func Scan(w *netsim.World, src Source, v6 bool, day int) *Hitlist {
	snap := QuarterOf(day)
	proto := src.protocol()
	h := &Hitlist{V6: v6, Day: snap}
	w.IterTargets(v6, 0, func(batch []netsim.Target) bool {
		for i := range batch {
			tg := &batch[i]
			if tg.HitlistFromDay > snap || !tg.Responsive[proto] {
				continue
			}
			var ps [3]bool
			ps[proto] = true
			h.Entries = append(h.Entries, Entry{
				TargetID:  tg.ID,
				Prefix:    tg.Prefix,
				Addr:      tg.Addr,
				Protocols: ps,
			})
		}
		return true
	})
	return h
}

// Merge unions hitlists of the same family, OR-ing protocol flags of
// duplicate prefixes. The result is sorted by target ID.
func Merge(lists ...*Hitlist) (*Hitlist, error) {
	if len(lists) == 0 {
		return &Hitlist{}, nil
	}
	out := &Hitlist{V6: lists[0].V6, Day: lists[0].Day}
	byID := make(map[int]int)
	for _, l := range lists {
		if l.V6 != out.V6 {
			return nil, fmt.Errorf("hitlist: cannot merge mixed address families")
		}
		if l.Day > out.Day {
			out.Day = l.Day
		}
		for _, e := range l.Entries {
			if j, ok := byID[e.TargetID]; ok {
				for p := range e.Protocols {
					out.Entries[j].Protocols[p] = out.Entries[j].Protocols[p] || e.Protocols[p]
				}
				continue
			}
			byID[e.TargetID] = len(out.Entries)
			out.Entries = append(out.Entries, e)
		}
	}
	sort.Slice(out.Entries, func(i, j int) bool {
		return out.Entries[i].TargetID < out.Entries[j].TargetID
	})
	return out, nil
}

// ForDay builds the full merged hitlist for a census day, combining the
// family's sources exactly as §4.1 describes: ISI + Zmap + OpenINTEL for
// IPv4, TUM + Zmap + OpenINTEL for IPv6.
func ForDay(w *netsim.World, v6 bool, day int) *Hitlist {
	var lists []*Hitlist
	if v6 {
		lists = []*Hitlist{
			Scan(w, SourceTUM, true, day),
			Scan(w, SourceZmap, true, day),
			Scan(w, SourceDNS, true, day),
		}
	} else {
		lists = []*Hitlist{
			Scan(w, SourceISI, false, day),
			Scan(w, SourceZmap, false, day),
			Scan(w, SourceDNS, false, day),
		}
	}
	merged, err := Merge(lists...)
	if err != nil {
		// Unreachable: families are consistent by construction.
		panic(err)
	}
	return merged
}

// FilterProtocol returns the entries answering the given protocol — the
// per-protocol probe list of a measurement.
func (h *Hitlist) FilterProtocol(p packet.Protocol) []Entry {
	var out []Entry
	for _, e := range h.Entries {
		if e.Protocols[p] {
			out = append(out, e)
		}
	}
	return out
}

// IDs returns all target IDs on the list.
func (h *Hitlist) IDs() []int {
	out := make([]int, len(h.Entries))
	for i, e := range h.Entries {
		out[i] = e.TargetID
	}
	return out
}

// Stats summarises a hitlist.
type Stats struct {
	Total    int
	ByProto  [3]int
	Quarters int
}

// Stats computes summary counts.
func (h *Hitlist) Stats() Stats {
	s := Stats{Total: len(h.Entries)}
	for _, e := range h.Entries {
		for p := range e.Protocols {
			if e.Protocols[p] {
				s.ByProto[p]++
			}
		}
	}
	return s
}
