package manycast

import (
	"reflect"
	"testing"
)

// TestRunParallelByteIdentical: the sharded target loop must reproduce the
// sequential observations, order included, at every worker count.
func TestRunParallelByteIdentical(t *testing.T) {
	d := tangled(t)
	opts := baseOpts()
	opts.Parallelism = 1
	seq, err := Run(testWorld, d, testHL, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7, 16} {
		opts.Parallelism = workers
		par, err := Run(testWorld, d, testHL, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Observations, par.Observations) {
			t.Fatalf("parallelism=%d: observations diverge from sequential run", workers)
		}
		if seq.ProbesSent != par.ProbesSent {
			t.Fatalf("parallelism=%d: probes %d vs sequential %d", workers, par.ProbesSent, seq.ProbesSent)
		}
		if seq.Duration != par.Duration || seq.Workers != par.Workers {
			t.Fatalf("parallelism=%d: metadata diverges", workers)
		}
	}
}

// TestRunParallelWithMissingWorkers covers the sharded loop interacting
// with the failure-awareness path.
func TestRunParallelWithMissingWorkers(t *testing.T) {
	d := tangled(t)
	opts := baseOpts()
	opts.MissingWorkers = map[int]bool{2: true, 17: true}
	opts.Parallelism = 1
	seq, err := Run(testWorld, d, testHL, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	par, err := Run(testWorld, d, testHL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Observations, par.Observations) || seq.ProbesSent != par.ProbesSent {
		t.Fatal("parallel degraded run diverges from sequential")
	}
}

// TestCountParticipants pins the accounting fix: only in-range true
// entries reduce the participant count.
func TestCountParticipants(t *testing.T) {
	cases := []struct {
		name    string
		sites   int
		missing map[int]bool
		want    int
	}{
		{"nil map", 32, nil, 32},
		{"one outage", 32, map[int]bool{4: true}, 31},
		{"false entry ignored", 32, map[int]bool{4: false}, 32},
		{"out of range ignored", 32, map[int]bool{32: true, -1: true, 999: true}, 32},
		{"mixed", 32, map[int]bool{0: true, 31: true, 12: false, 50: true}, 30},
	}
	for _, c := range cases {
		if got := CountParticipants(c.sites, c.missing); got != c.want {
			t.Errorf("%s: CountParticipants(%d, %v) = %d, want %d", c.name, c.sites, c.missing, got, c.want)
		}
	}
}

// TestResultWorkersIgnoresBogusMissingEntries exercises the fix through
// Run itself.
func TestResultWorkersIgnoresBogusMissingEntries(t *testing.T) {
	d := tangled(t)
	opts := baseOpts()
	opts.MissingWorkers = map[int]bool{100: true, 5: false}
	res, err := Run(testWorld, d, testHL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != d.NumSites() {
		t.Fatalf("workers = %d, want full %d (bogus entries must not count)", res.Workers, d.NumSites())
	}
}
