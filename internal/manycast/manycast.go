// Package manycast implements the anycast-based measurement stage of
// LACeS (§4.2): probing every hitlist target once from every site of an
// anycast deployment with synchronized, offset-spaced probes, then
// classifying targets by the number of distinct vantage points that
// received replies. One receiving VP means unicast; two or more make the
// target an anycast candidate (AC) for the follow-up GCD stage.
//
// This is the in-process engine used by the census pipeline and the
// experiment harness. The distributed Orchestrator/Worker plane
// (internal/orchestrator, internal/worker) performs the same measurement
// over real sockets and reuses this package's classification.
package manycast

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
	"time"

	"github.com/laces-project/laces/internal/budget"
	"github.com/laces-project/laces/internal/hitlist"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/par"
	"github.com/laces-project/laces/internal/rate"
)

// StageLabel names the anycast-based stage's metric label for a
// protocol run: anycast_icmp, anycast_tcp or anycast_dns.
func StageLabel(p packet.Protocol) string {
	return "anycast_" + strings.ToLower(p.String())
}

// Options configures one anycast-based measurement.
type Options struct {
	Protocol packet.Protocol
	// Start is the measurement start time; it positions the measurement
	// on the census timeline (route churn, temporary anycast, …).
	Start time.Time
	// Offset is the spacing between consecutive workers' probes to the
	// same target (§4.2.3; the paper's default is 1 s, "mimicking a
	// regular ping sequence").
	Offset time.Duration
	// Rate is the hitlist consumption rate in targets per second (R3).
	// Zero means 10,000/s, the paper-equivalent daily-census rate.
	Rate float64
	// StaticProbes disables per-worker payload variation, reproducing the
	// §5.1.4 load-balancer control experiment.
	StaticProbes bool
	// MeasurementID seeds flow headers; runs with the same ID share flow
	// hashing.
	MeasurementID uint16
	// MissingWorkers marks deployment sites that are disconnected for the
	// duration of the run (failure awareness, §4.2.3: the measurement is
	// completed by the remaining workers). Only in-range true entries
	// count; out-of-range indices and false values are ignored.
	MissingWorkers map[int]bool
	// Parallelism shards the target loop across this many goroutines
	// (<= 0 means GOMAXPROCS, 1 is sequential). The result is
	// byte-identical at every worker count: shards are contiguous hitlist
	// ranges whose observation buffers merge back in hitlist order.
	Parallelism int
	// Gate is the responsible-probing admission gate (R3 governance): it
	// is consulted once per hitlist entry, in hitlist order, before the
	// (possibly sharded) probing loop runs, charging one budget unit per
	// participating site. Denied entries are skipped and accounted in
	// Result.Usage — never silently dropped. A nil gate admits
	// everything, reproducing the ungoverned run byte-for-byte.
	Gate *budget.Gate
	// Obs receives the stage's telemetry (laces_stage_* series, the
	// pipeline span and live progress). Nil disables instrumentation;
	// telemetry never changes the result — the census is byte-identical
	// with Obs set or nil.
	Obs *obs.Registry
}

// DefaultRate is the daily-census hitlist rate in targets per second.
const DefaultRate = 10_000

// TargetObs is the per-target observation: which deployment sites
// received replies. Receiver sets are bitmasks, so deployments are limited
// to 64 sites — enough for Vultr+Melbicom's 48.
type TargetObs struct {
	TargetID  int
	Receivers uint64
}

// NumReceivers returns the count of distinct receiving VPs.
func (o TargetObs) NumReceivers() int { return bits.OnesCount64(o.Receivers) }

// IsCandidate reports whether the anycast-based stage classifies the
// target as an anycast candidate (two or more receiving VPs, §2.2).
func (o TargetObs) IsCandidate() bool { return o.NumReceivers() >= 2 }

// Result is the outcome of one measurement.
type Result struct {
	Deployment string
	Protocol   packet.Protocol
	Start      time.Time
	// Observations holds one entry per responsive hitlist target, in
	// hitlist order.
	Observations []TargetObs
	// ProbesSent counts transmitted probes (the probing-cost accounting
	// of Table 4).
	ProbesSent int64
	// Workers is the number of participating deployment sites.
	Workers int
	// Duration is the modelled wall-clock duration of the run at the
	// configured rate and offsets.
	Duration time.Duration
	// Usage is the governance accounting when Options.Gate was set: the
	// probe demand presented to the ledger and the split between charged
	// and denied targets (zero when ungoverned).
	Usage budget.Usage
}

// Candidates returns the IDs of targets classified as anycast candidates.
func (r *Result) Candidates() []int {
	var out []int
	for _, o := range r.Observations {
		if o.IsCandidate() {
			out = append(out, o.TargetID)
		}
	}
	return out
}

// CandidateSet returns the candidates as a set.
func (r *Result) CandidateSet() map[int]bool {
	out := make(map[int]bool)
	for _, o := range r.Observations {
		if o.IsCandidate() {
			out[o.TargetID] = true
		}
	}
	return out
}

// ReceiverHistogram buckets targets by number of receiving VPs — the rows
// of Table 2 and the x-axis of Fig 5.
func (r *Result) ReceiverHistogram() map[int]int {
	out := make(map[int]int)
	for _, o := range r.Observations {
		if n := o.NumReceivers(); n > 0 {
			out[n]++
		}
	}
	return out
}

// Run executes an anycast-based measurement of the hitlist entries
// answering opts.Protocol against the deployment.
func Run(w *netsim.World, d *netsim.Deployment, hl *hitlist.Hitlist, opts Options) (*Result, error) {
	if d.NumSites() > 64 {
		return nil, fmt.Errorf("manycast: deployment has %d sites, receiver bitmask supports 64", d.NumSites())
	}
	if opts.Rate == 0 {
		opts.Rate = DefaultRate
	}
	pacer, err := rate.NewPacer(opts.Start, opts.Rate, opts.Offset)
	if err != nil {
		return nil, fmt.Errorf("manycast: %w", err)
	}
	res := &Result{
		Deployment: d.Name,
		Protocol:   opts.Protocol,
		Start:      opts.Start,
		Workers:    CountParticipants(d.NumSites(), opts.MissingWorkers),
	}
	entries := hl.FilterProtocol(opts.Protocol)

	// Governance pre-pass: admission is decided sequentially in hitlist
	// order — the same total order the sequential probing loop uses — so
	// the admitted set (and therefore the result) is identical at every
	// Parallelism setting. Each entry demands one probe per participating
	// site.
	if opts.Gate != nil {
		perEntry := int64(res.Workers)
		entries = budget.Filter(opts.Gate, entries, &res.Usage, func(e hitlist.Entry) (*netsim.Target, int64) {
			return w.TargetAt(hl.V6, e.TargetID), perEntry
		})
	}

	// Stage telemetry: per-shard cells absorb the hot-loop counting (no
	// shared atomics on the probe path), merged into the laces_stage_*
	// series after the shards join. All handles are no-ops when Obs is
	// nil, and nothing below feeds back into the result.
	si := opts.Obs.Stage(StageLabel(opts.Protocol), len(entries))
	cells := make([]obs.Cell, par.NumShards(len(entries), opts.Parallelism))

	// Sharded execution: contiguous hitlist ranges probed concurrently,
	// each into its own observation buffer and probe counter. Every probe
	// is a pure function of (seed, target, worker, schedule), so merging
	// the buffers in shard order reproduces the sequential run exactly.
	observations, probes := par.Gather(len(entries), opts.Parallelism, func(start, end int, sh *par.Shard[TargetObs]) {
		cell := &cells[sh.Index]
		ssp := si.Span.Child("shard" + strconv.Itoa(sh.Index))
		for i := start; i < end; i++ {
			e := entries[i]
			tg := w.TargetAt(hl.V6, e.TargetID)
			var mask uint64
			for wk := 0; wk < d.NumSites(); wk++ {
				if opts.MissingWorkers[wk] {
					continue
				}
				varying := uint64(wk + 1)
				if opts.StaticProbes {
					varying = 0
				}
				ctx := netsim.ProbeCtx{
					At: pacer.SendTime(i, wk),
					Flow: netsim.FlowKey{
						Proto:          opts.Protocol,
						StaticFlow:     uint64(opts.MeasurementID) + 1,
						VaryingPayload: varying,
					},
					Gap: opts.Offset,
					Seq: uint64(e.TargetID),
				}
				sh.Count++
				if del, ok := w.ProbeAnycast(d, wk, tg, ctx); ok {
					cell.Replies++
					if opts.MissingWorkers[del.WorkerIdx] {
						// Replies routed to a dead site are lost.
						continue
					}
					mask |= 1 << uint(del.WorkerIdx)
				}
			}
			if mask != 0 {
				sh.Out = append(sh.Out, TargetObs{TargetID: e.TargetID, Receivers: mask})
			}
			si.Done.Inc()
		}
		ssp.End()
	})
	res.Observations, res.ProbesSent = observations, probes
	res.Duration = pacer.Duration(len(entries), d.NumSites())
	opts.Gate.Observe(probes)
	si.Probes.Add(probes)
	_, replies := obs.MergeCells(cells)
	si.Replies.Add(replies)
	si.Denied.Add(int64(res.Usage.OptOutTargets + res.Usage.BudgetTargets))
	si.End()
	return res, nil
}

// CountParticipants returns the number of deployment sites taking part in
// a measurement: numSites minus the entries of missing that are both true
// and a valid site index. Out-of-range indices and explicit false values
// must not reduce the count — a map carrying them previously miscounted
// participants and fired spurious few-workers alerts.
func CountParticipants(numSites int, missing map[int]bool) int {
	n := numSites
	for wk, dead := range missing {
		if dead && wk >= 0 && wk < numSites {
			n--
		}
	}
	return n
}

// MultiProtocol runs one measurement per protocol and returns them keyed
// by protocol — the daily census probes ICMP, TCP and DNS (§4.3).
func MultiProtocol(w *netsim.World, d *netsim.Deployment, hl *hitlist.Hitlist, base Options, protos []packet.Protocol) (map[packet.Protocol]*Result, error) {
	out := make(map[packet.Protocol]*Result, len(protos))
	for _, p := range protos {
		opts := base
		opts.Protocol = p
		// Protocol runs are sequential: offset each start by the previous
		// run's duration.
		r, err := Run(w, d, hl, opts)
		if err != nil {
			return nil, err
		}
		out[p] = r
		base.Start = base.Start.Add(r.Duration)
	}
	return out, nil
}
