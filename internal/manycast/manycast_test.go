package manycast

import (
	"testing"
	"time"

	"github.com/laces-project/laces/internal/hitlist"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/platform"
)

var (
	testWorld = mustWorld()
	testHL    = hitlist.ForDay(testWorld, false, 0)
)

func mustWorld() *netsim.World {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		panic(err)
	}
	return w
}

func tangled(t testing.TB) *netsim.Deployment {
	t.Helper()
	d, err := platform.Tangled(testWorld, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func baseOpts() Options {
	return Options{
		Protocol:      packet.ICMP,
		Start:         netsim.DayTime(1),
		Offset:        time.Second,
		MeasurementID: 1,
	}
}

func TestRunBasics(t *testing.T) {
	d := tangled(t)
	res, err := Run(testWorld, d, testHL, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	icmpEntries := len(testHL.FilterProtocol(packet.ICMP))
	if res.ProbesSent != int64(icmpEntries*32) {
		t.Fatalf("probes sent = %d, want %d", res.ProbesSent, icmpEntries*32)
	}
	if len(res.Observations) == 0 || len(res.Observations) > icmpEntries {
		t.Fatalf("observations = %d of %d entries", len(res.Observations), icmpEntries)
	}
	if res.Workers != 32 {
		t.Fatalf("workers = %d", res.Workers)
	}
	// At the default 10k/s rate and 1s offsets the run is dominated by
	// the hitlist sweep plus the 31s worker tail.
	if res.Duration <= 31*time.Second {
		t.Fatalf("duration %v implausible", res.Duration)
	}
}

func TestCandidatesSupersetOfDetectableAnycast(t *testing.T) {
	d := tangled(t)
	res, err := Run(testWorld, d, testHL, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	cands := res.CandidateSet()
	truth := testWorld.GroundTruthAnycast(false, 1)

	tp, fn := 0, 0
	for id := range truth {
		if !testWorld.TargetsV4[id].Responsive[packet.ICMP] {
			continue
		}
		if cands[id] {
			tp++
		} else {
			fn++
		}
	}
	if tp == 0 {
		t.Fatal("no true anycast detected")
	}
	fnr := float64(fn) / float64(tp+fn)
	// The paper measures ~6% FNR for the anycast-based stage (Table 1);
	// accept single-digit to low-teens at test scale.
	if fnr > 0.18 {
		t.Fatalf("anycast-based FNR = %.1f%%, too high", fnr*100)
	}
	// And FPs exist but don't dominate: paper has 58.5% of ACs unconfirmed.
	fp := 0
	for id := range cands {
		if !truth[id] {
			fp++
		}
	}
	if fp == 0 {
		t.Fatal("no false positives at all — tie-split/global-unicast mechanisms dead")
	}
	frac := float64(fp) / float64(len(cands))
	if frac < 0.2 || frac > 0.8 {
		t.Fatalf("unconfirmed share of ACs = %.2f, want ~0.5-0.6", frac)
	}
}

func TestReceiverHistogramDominatedByTwo(t *testing.T) {
	// Table 2/Fig 5: disagreement (FPs) concentrates at 2 receiving VPs.
	d := tangled(t)
	res, err := Run(testWorld, d, testHL, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	hist := res.ReceiverHistogram()
	truth := testWorld.GroundTruthAnycast(false, 1)
	fpByCount := map[int]int{}
	for _, o := range res.Observations {
		if o.IsCandidate() && !truth[o.TargetID] {
			fpByCount[o.NumReceivers()]++
		}
	}
	for n, c := range fpByCount {
		if n >= 6 && c > fpByCount[2]/4 {
			t.Fatalf("unexpected FP mass at %d receivers: %d (2-receiver FPs: %d)", n, c, fpByCount[2])
		}
	}
	if hist[1] == 0 || hist[2] == 0 {
		t.Fatalf("histogram missing unicast or 2-VP bucket: %v", hist)
	}
}

func TestReducedRateSameCandidates(t *testing.T) {
	// §5.5.2: probing at 1/8th the rate must find the same candidates.
	d := tangled(t)
	full, err := Run(testWorld, d, testHL, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	slow := baseOpts()
	slow.Rate = DefaultRate / 8
	reduced, err := Run(testWorld, d, testHL, slow)
	if err != nil {
		t.Fatal(err)
	}
	a, b := full.CandidateSet(), reduced.CandidateSet()
	diff := 0
	for id := range a {
		if !b[id] {
			diff++
		}
	}
	for id := range b {
		if !a[id] {
			diff++
		}
	}
	// Identical in the paper's experiment; allow a sliver of churn noise
	// (the slower run spans more route-churn periods).
	if float64(diff) > 0.05*float64(len(a)) {
		t.Fatalf("candidate sets differ by %d of %d at reduced rate", diff, len(a))
	}
	if reduced.Duration <= full.Duration {
		t.Fatal("reduced-rate run should take longer")
	}
}

func TestMissingWorkersReduceCoverage(t *testing.T) {
	// Failure awareness (§4.2.3/§7): with workers down the measurement
	// completes, but candidates whose replies only reached dead sites are
	// lost.
	d := tangled(t)
	full, err := Run(testWorld, d, testHL, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := baseOpts()
	opts.MissingWorkers = map[int]bool{0: true, 5: true, 11: true, 17: true, 23: true, 29: true}
	degraded, err := Run(testWorld, d, testHL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Workers != 26 {
		t.Fatalf("workers = %d, want 26", degraded.Workers)
	}
	if degraded.ProbesSent >= full.ProbesSent {
		t.Fatal("missing workers should send fewer probes")
	}
	if len(degraded.CandidateSet()) >= len(full.CandidateSet()) {
		t.Fatal("degraded run should find fewer candidates (Fig 9's AC drops)")
	}
	for _, o := range degraded.Observations {
		for wk := range opts.MissingWorkers {
			if o.Receivers&(1<<uint(wk)) != 0 {
				t.Fatal("dead worker appears as receiver")
			}
		}
	}
}

func TestStaticProbesOption(t *testing.T) {
	// §5.1.4's control: static probes yield (nearly) identical results.
	d := tangled(t)
	varying, err := Run(testWorld, d, testHL, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := baseOpts()
	opts.StaticProbes = true
	static, err := Run(testWorld, d, testHL, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := varying.CandidateSet(), static.CandidateSet()
	diff := 0
	for id := range a {
		if !b[id] {
			diff++
		}
	}
	for id := range b {
		if !a[id] {
			diff++
		}
	}
	if float64(diff) > 0.01*float64(len(a)+1) {
		t.Fatalf("static vs varying candidate sets differ by %d of %d", diff, len(a))
	}
}

func TestMultiProtocolCoverage(t *testing.T) {
	// Fig 7: ICMP finds the most candidates; TCP and DNS add exclusive
	// ones.
	d := tangled(t)
	results, err := MultiProtocol(testWorld, d, testHL, baseOpts(), packet.Protocols())
	if err != nil {
		t.Fatal(err)
	}
	icmp := results[packet.ICMP].CandidateSet()
	tcp := results[packet.TCP].CandidateSet()
	dns := results[packet.DNS].CandidateSet()
	if !(len(icmp) > len(tcp) && len(tcp) > len(dns)) {
		t.Fatalf("protocol ordering broken: icmp=%d tcp=%d dns=%d", len(icmp), len(tcp), len(dns))
	}
	dnsOnly := 0
	for id := range dns {
		if !icmp[id] && !tcp[id] {
			dnsOnly++
		}
	}
	if dnsOnly == 0 {
		t.Fatal("no DNS-only anycast found (the G-Root/eBay pattern of §5.3.1)")
	}
}

func TestDeploymentTooLarge(t *testing.T) {
	names := make([]string, 0, 65)
	for i := 0; i < 65; i++ {
		names = append(names, "Tokyo")
	}
	d, err := testWorld.NewDeployment("huge", names, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(testWorld, d, testHL, baseOpts()); err == nil {
		t.Fatal("65-site deployment must be rejected (64-bit receiver mask)")
	}
}

func BenchmarkRunICMP(b *testing.B) {
	d := tangled(b)
	opts := baseOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(testWorld, d, testHL, opts); err != nil {
			b.Fatal(err)
		}
	}
}
