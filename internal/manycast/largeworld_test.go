package manycast

import (
	"runtime"
	"testing"
	"time"

	"github.com/laces-project/laces/internal/hitlist"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

// TestLargeWorldCensusSmoke drives the census's full-universe stage over
// an Internet-scale lazy world: ~1M IPv4 /24s and 80k ASes, hitlist
// assembly plus a sharded anycast-based measurement, with peak live heap
// bounded far below what eager materialization would need. Run by CI's
// test job; skipped in -short.
func TestLargeWorldCensusSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("Internet-scale world: skipped in -short")
	}
	w, err := netsim.New(netsim.PaperScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n := w.NumTargets(false); n < 1_000_000 {
		t.Fatalf("paper-scale world has %d IPv4 targets, want >= 1M", n)
	}
	hl := hitlist.ForDay(w, false, 10)
	if hl.Len() < 900_000 {
		t.Fatalf("hitlist covers %d targets, want >= 900k", hl.Len())
	}
	d, err := w.NewDeployment("smoke", []string{"Amsterdam", "New York", "Singapore", "Sao Paulo"}, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, d, hl, Options{
		Protocol: packet.ICMP,
		Start:    netsim.DayTime(10),
		Offset:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbesSent < int64(hl.Len()) {
		t.Fatalf("sent %d probes over %d entries", res.ProbesSent, hl.Len())
	}
	if cands := res.Candidates(); len(cands) == 0 {
		t.Fatal("anycast-based stage found no candidates at paper scale")
	}
	// The world must stay streaming-bounded: live targets capped by the
	// arena, and total live heap (world + hitlist + observations) far
	// under the ~several-hundred-MB an eager 1M-target universe costs.
	if live := w.MaterializedTargets(); live > 1<<17 {
		t.Fatalf("%d targets live, want <= %d (2 families x the default arena)", live, 1<<17)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if heap := ms.HeapAlloc >> 20; heap > 512 {
		t.Fatalf("live heap %d MB after at-scale census stage, want <= 512 MB", heap)
	}
	t.Logf("probed %d entries (%d probes), %d candidates, %d targets live, heap %d MB",
		hl.Len(), res.ProbesSent, len(res.Candidates()), w.MaterializedTargets(), ms.HeapAlloc>>20)
	runtime.KeepAlive(w)
}
