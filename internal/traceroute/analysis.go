package traceroute

import (
	"sort"
	"time"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

// Fanout summarises traces to one target from many vantage points.
type Fanout struct {
	TargetID int
	// IngressCities are the distinct metros of the target operator's
	// edge routers observed on forward paths (the ingress PoPs of
	// §5.1.3).
	IngressCities map[int]bool
	// PoPRouters are the distinct operator edge-router labels — the
	// ACE-style site fingerprints.
	PoPRouters map[string]bool
	// ServerCities are the distinct final-responder metros; a single
	// entry with multiple ingress PoPs is the global-BGP unicast
	// signature.
	ServerCities map[int]bool
	// Traces and Reached count the attempted and completed traces.
	Traces, Reached int
	// ProbesSent accounts probing cost (R3).
	ProbesSent int64
}

// MultiIngress reports whether forward paths enter the operator network
// at two or more distinct PoPs.
func (f *Fanout) MultiIngress() bool { return len(f.IngressCities) >= 2 }

// GlobalBGP reports the §5.1.3 confirmation: traffic ingresses at
// multiple PoPs yet always terminates at one server — a globally
// announced, internally unicast prefix.
func (f *Fanout) GlobalBGP() bool {
	return f.MultiIngress() && len(f.ServerCities) == 1
}

// Measure traces the target from every vantage point and aggregates the
// fan-out evidence.
func Measure(w *netsim.World, vps []netsim.VP, tg *netsim.Target, opts Options) (*Fanout, error) {
	f := &Fanout{
		TargetID:      tg.ID,
		IngressCities: make(map[int]bool),
		PoPRouters:    make(map[string]bool),
		ServerCities:  make(map[int]bool),
	}
	for _, vp := range vps {
		p, err := Run(w, vp, tg, opts)
		if err != nil {
			return nil, err
		}
		f.Traces++
		f.ProbesSent += p.ProbesSent
		for _, h := range p.Hops {
			if h.PoP && h.Owner == tg.Origin {
				f.IngressCities[h.CityIdx] = true
				f.PoPRouters[h.Router] = true
			}
			if h.Dest {
				f.ServerCities[h.CityIdx] = true
			}
		}
		if p.Reached {
			f.Reached++
		}
	}
	return f, nil
}

// EnumerateSites returns the ACE-style site count for an anycast target:
// the number of distinct site fingerprints observed across vantage points
// (§2.3; §5.2 names this the future-work route to better enumeration).
// Each trace contributes the operator edge router's label when it
// replied, falling back to the terminal responder's metro when the edge
// router stayed silent — combining evidence the way ACE combined CHAOS
// records with traceroute. Router fingerprints separate sites in nearby
// metros that GCD merges (§6's Prague/Bratislava/Vienna case).
func EnumerateSites(w *netsim.World, vps []netsim.VP, tg *netsim.Target, opts Options) (int, error) {
	// Two evidence tiers, never mixed per site: the terminal responder's
	// metro when the trace completes, and the edge router's label when
	// the target itself stays silent. A completed trace subsumes the
	// router evidence for its site, so the union cannot double-count.
	metros := make(map[int]bool)
	routers := make(map[string]int) // label → metro (-1 when unknown)
	for _, vp := range vps {
		p, err := Run(w, vp, tg, opts)
		if err != nil {
			return 0, err
		}
		var popLabel string
		popCity := -1
		for _, h := range p.Hops {
			if h.PoP && h.Owner == tg.Origin && h.Router != "" {
				popLabel, popCity = h.Router, h.CityIdx
			}
			if h.Dest {
				metros[h.CityIdx] = true
			}
		}
		if popLabel != "" {
			routers[popLabel] = popCity
		}
	}
	n := len(metros)
	for _, city := range routers {
		if city >= 0 && !metros[city] {
			n++
		}
	}
	return n, nil
}

// ConfirmGlobalBGP screens census candidates: for each listed target it
// traces from the vantage points and reports the IDs whose paths show the
// global-BGP unicast signature. The census publishes the flag so data
// consumers can separate globally announced unicast from anycast (§5.1.3:
// "Knowing of globally announced prefixes that route to a single location
// is valuable"; future work: "include global BGP in our census").
func ConfirmGlobalBGP(w *netsim.World, vps []netsim.VP, targets []*netsim.Target, at time.Time) (confirmed []int, probes int64, err error) {
	opts := Options{At: at, Measurement: uint16(netsim.DayOf(at))}
	for _, tg := range targets {
		if !tg.Responsive[packet.ICMP] {
			// Traceroute's terminal confirmation needs an echo responder;
			// candidate screening skips silent targets like the GCD stage
			// does.
			continue
		}
		f, err := Measure(w, vps, tg, opts)
		if err != nil {
			return nil, probes, err
		}
		probes += f.ProbesSent
		if f.GlobalBGP() {
			confirmed = append(confirmed, tg.ID)
		}
	}
	sort.Ints(confirmed)
	return confirmed, probes, nil
}
