package traceroute

import (
	"testing"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

// BenchmarkRun times one full trace including probe encoding, the
// simulated path walk, time-exceeded quoting and identity recovery — the
// per-target cost of the census's global-BGP screening stage.
func BenchmarkRun(b *testing.B) {
	w := testWorld(b)
	vp := vpAt(b, w, "bench-vp", "Amsterdam")
	var tg *netsim.Target
	for i := range w.TargetsV4 {
		cand := &w.TargetsV4[i]
		if cand.Kind == netsim.GlobalUnicast && cand.Responsive[packet.ICMP] {
			tg = cand
			break
		}
	}
	if tg == nil {
		b.Fatal("no global-unicast target")
	}
	opts := Options{At: netsim.DayTime(5)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(w, vp, tg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureFanout times the multi-VP fan-out measurement used per
// screened ℳ candidate (12 VPs by default in the pipeline).
func BenchmarkMeasureFanout(b *testing.B) {
	w := testWorld(b)
	cities := []string{"Amsterdam", "Tokyo", "Los Angeles", "Sao Paulo",
		"Sydney", "Johannesburg", "Frankfurt", "Singapore", "New York",
		"London", "Mumbai", "Stockholm"}
	var vps []netsim.VP
	for i, c := range cities {
		vps = append(vps, vpAt(b, w, "bench-fan-"+string(rune('a'+i)), c))
	}
	var tg *netsim.Target
	for i := range w.TargetsV4 {
		cand := &w.TargetsV4[i]
		if cand.Kind == netsim.GlobalUnicast && cand.Responsive[packet.ICMP] {
			tg = cand
			break
		}
	}
	if tg == nil {
		b.Fatal("no global-unicast target")
	}
	opts := Options{At: netsim.DayTime(5)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Measure(w, vps, tg, opts); err != nil {
			b.Fatal(err)
		}
	}
}
