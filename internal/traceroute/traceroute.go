// Package traceroute implements TTL-based forward-path measurement over
// the simulated Internet, and the analyses LACeS derives from it:
//
//   - confirming global-BGP unicast: §5.1.3 uses traceroute to show that
//     Microsoft-style ℳ prefixes ingress the operator network at distinct
//     PoPs while terminating at a single server, and names "include global
//     BGP in our census" as future work — implemented here and surfaced as
//     the census GlobalBGP flag (internal/core);
//   - ACE-style site enumeration from router fingerprints (Fan et al.,
//     §2.3), the paper's §5.2 future-work route to separating anycast
//     sites that GCD merges (the Prague/Bratislava/Vienna case of §6).
//
// The engine sends real probe bytes: each TTL step encodes an ICMP echo
// with the LACeS identity payload behind an IPv4/IPv6 header, routers
// answer with ICMP time-exceeded errors quoting the probe, and the engine
// recovers the identity from the quote exactly as a raw-socket
// implementation would.
package traceroute

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

// Options configures a trace.
type Options struct {
	// At positions the trace on the census timeline.
	At time.Time
	// MaxTTL bounds the probe TTL (default 30).
	MaxTTL int
	// Measurement tags probe identities.
	Measurement uint16
}

func (o Options) maxTTL() int {
	if o.MaxTTL <= 0 {
		return 30
	}
	return o.MaxTTL
}

// Hop is one answered (or silent) TTL step.
type Hop struct {
	TTL int
	// Router is the responding router's name; empty for a silent hop.
	Router string
	// Owner is the responding router's operating AS (0 = source gateway
	// or silent hop).
	Owner netsim.ASN
	// CityIdx locates the router; -1 for silent hops.
	CityIdx int
	// RTT is the measured round-trip time; 0 for silent hops.
	RTT time.Duration
	// PoP marks the target operator's edge router.
	PoP bool
	// Dest marks the final echo reply from the target itself.
	Dest bool
}

// Path is the outcome of one trace.
type Path struct {
	VP       string
	TargetID int
	Hops     []Hop
	// Reached reports whether the target answered the final probe.
	Reached bool
	// ProbesSent counts transmitted probes (cost accounting, R3).
	ProbesSent int64
}

// Terminal returns the last replying hop, or ok=false for an entirely
// silent path.
func (p *Path) Terminal() (Hop, bool) {
	for i := len(p.Hops) - 1; i >= 0; i-- {
		if p.Hops[i].Router != "" {
			return p.Hops[i], true
		}
	}
	return Hop{}, false
}

// Run traces the forward path from vp to the target. Probe packets are
// fully encoded and the identity is recovered from the quoted datagram in
// each time-exceeded answer, so the probe-matching path is exercised on
// real bytes end to end.
func Run(w *netsim.World, vp netsim.VP, tg *netsim.Target, opts Options) (*Path, error) {
	hops := w.TracePath(vp, tg, opts.At)
	p := &Path{VP: vp.Name, TargetID: tg.ID}
	v6 := tg.Addr.Is6() && !tg.Addr.Is4In6()

	for ttl := 1; ttl <= len(hops) && ttl <= opts.maxTTL(); ttl++ {
		h := hops[ttl-1]
		id := packet.Identity{
			Measurement: opts.Measurement,
			Worker:      uint8(ttl),
			TxTime:      opts.At.Add(time.Duration(ttl) * 20 * time.Millisecond),
		}
		probe, err := encodeProbe(id, vp, tg, ttl, v6)
		if err != nil {
			return nil, fmt.Errorf("traceroute: ttl %d: %w", ttl, err)
		}
		p.ProbesSent++

		switch {
		case h.Dest:
			if !tg.Responsive[packet.ICMP] {
				// The path reaches the target but it never answers echo
				// probes; the trace ends with silence.
				p.Hops = append(p.Hops, silent(ttl))
				continue
			}
			got, err := answerEcho(probe, v6, vp, tg)
			if err != nil {
				return nil, fmt.Errorf("traceroute: ttl %d echo: %w", ttl, err)
			}
			if got != id.Measurement {
				return nil, fmt.Errorf("traceroute: ttl %d: reply for measurement %d, sent %d", ttl, got, id.Measurement)
			}
			p.Hops = append(p.Hops, Hop{
				TTL: ttl, Router: h.Label, Owner: h.Owner,
				CityIdx: h.CityIdx, RTT: h.RTT, Dest: true,
			})
			p.Reached = true
		case h.NoReply:
			p.Hops = append(p.Hops, silent(ttl))
		default:
			gotID, err := answerTimeExceeded(probe, v6, vp, tg)
			if err != nil {
				return nil, fmt.Errorf("traceroute: ttl %d time-exceeded: %w", ttl, err)
			}
			if gotID.Measurement != opts.Measurement || gotID.Worker != uint8(ttl) {
				return nil, fmt.Errorf("traceroute: ttl %d: quoted identity %+v does not match probe", ttl, gotID)
			}
			p.Hops = append(p.Hops, Hop{
				TTL: ttl, Router: h.Label, Owner: h.Owner,
				CityIdx: h.CityIdx, RTT: h.RTT, PoP: h.PoP,
			})
		}
	}
	return p, nil
}

// silent is the "*" row.
func silent(ttl int) Hop { return Hop{TTL: ttl, CityIdx: -1} }

// encodeProbe builds the full probe datagram bytes for one TTL step.
func encodeProbe(id packet.Identity, vp netsim.VP, tg *netsim.Target, ttl int, v6 bool) ([]byte, error) {
	echo := packet.NewICMPProbe(id, v6)
	src := sourceAddr(vp, v6)
	if v6 {
		icmp, err := echo.AppendToV6(nil, src, tg.Addr)
		if err != nil {
			return nil, err
		}
		hdr := packet.IPv6{HopLimit: uint8(ttl), NextHeader: packet.ProtoICMPv6, Src: src, Dst: tg.Addr}
		b, err := hdr.AppendTo(nil, len(icmp))
		if err != nil {
			return nil, err
		}
		return append(b, icmp...), nil
	}
	icmp := echo.AppendTo(nil)
	hdr := packet.IPv4{TTL: uint8(ttl), Protocol: packet.ProtoICMP, Src: src, Dst: tg.Addr}
	b, err := hdr.AppendTo(nil, len(icmp))
	if err != nil {
		return nil, err
	}
	return append(b, icmp...), nil
}

// answerTimeExceeded plays the router side: quote the probe in a
// time-exceeded error, put it on the wire, then decode it back and
// recover the identity like the receiving socket would.
func answerTimeExceeded(probe []byte, v6 bool, vp netsim.VP, tg *netsim.Target) (packet.Identity, error) {
	if v6 {
		// ICMPv6 errors quote as much of the packet as fits; identity
		// recovery for v6 works on the quoted bytes after the IPv6
		// header.
		te := packet.NewTimeExceeded(true, probe)
		src := tg.Addr
		wire, err := te.AppendToV6(nil, src, sourceAddr(vp, true))
		if err != nil {
			return packet.Identity{}, err
		}
		var dec packet.TimeExceeded
		if err := dec.DecodeFromV6(wire, src, sourceAddr(vp, true)); err != nil {
			return packet.Identity{}, err
		}
		var hdr packet.IPv6
		payload, err := hdr.DecodeFrom(dec.Quote)
		if err != nil {
			return packet.Identity{}, err
		}
		if len(payload) < 8 {
			return packet.Identity{}, fmt.Errorf("quoted ICMPv6 too short")
		}
		return packet.ParseICMPPayload(payload[8:])
	}
	wire := packet.NewTimeExceeded(false, probe).AppendTo(nil)
	var dec packet.TimeExceeded
	if err := dec.DecodeFrom(wire); err != nil {
		return packet.Identity{}, err
	}
	return dec.QuotedIdentity()
}

// answerEcho plays the target side for the final hop: decode the probe,
// produce the echo reply, decode that, and return the measurement tag.
func answerEcho(probe []byte, v6 bool, vp netsim.VP, tg *netsim.Target) (uint16, error) {
	if v6 {
		var hdr packet.IPv6
		payload, err := hdr.DecodeFrom(probe)
		if err != nil {
			return 0, err
		}
		var req packet.ICMPEcho
		if err := req.DecodeFromV6(payload, hdr.Src, hdr.Dst); err != nil {
			return 0, err
		}
		wire, err := req.EchoReply(true).AppendToV6(nil, tg.Addr, sourceAddr(vp, true))
		if err != nil {
			return 0, err
		}
		var rep packet.ICMPEcho
		if err := rep.DecodeFromV6(wire, tg.Addr, sourceAddr(vp, true)); err != nil {
			return 0, err
		}
		id, err := packet.ParseICMPPayload(rep.Payload)
		return id.Measurement, err
	}
	var hdr packet.IPv4
	payload, err := hdr.DecodeFrom(probe)
	if err != nil {
		return 0, err
	}
	var req packet.ICMPEcho
	if err := req.DecodeFrom(payload); err != nil {
		return 0, err
	}
	wire := req.EchoReply(false).AppendTo(nil)
	var rep packet.ICMPEcho
	if err := rep.DecodeFrom(wire); err != nil {
		return 0, err
	}
	id, err := packet.ParseICMPPayload(rep.Payload)
	return id.Measurement, err
}

// sourceAddr gives the VP a stable documentation-range source address.
func sourceAddr(vp netsim.VP, v6 bool) netip.Addr {
	h := uint32(0x811c9dc5)
	for _, c := range vp.Name {
		h ^= uint32(c)
		h *= 16777619
	}
	if v6 {
		var b [16]byte
		b[0], b[1] = 0x20, 0x01
		b[2], b[3] = 0x0d, 0xb8
		b[12] = byte(h >> 24)
		b[13] = byte(h >> 16)
		b[14] = byte(h >> 8)
		b[15] = byte(h) | 1
		return netip.AddrFrom16(b)
	}
	// 198.18.0.0/15 (benchmarking range).
	return netip.AddrFrom4([4]byte{198, 18, byte(h >> 8), byte(h) | 1})
}
