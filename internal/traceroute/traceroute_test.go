package traceroute

import (
	"sync"
	"testing"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

var (
	worldOnce sync.Once
	world     *netsim.World
)

func testWorld(t testing.TB) *netsim.World {
	t.Helper()
	worldOnce.Do(func() {
		w, err := netsim.New(netsim.TestConfig())
		if err != nil {
			t.Fatal(err)
		}
		world = w
	})
	return world
}

func vpAt(t testing.TB, w *netsim.World, name, city string) netsim.VP {
	t.Helper()
	vp, err := w.NewVP(name, city, 0)
	if err != nil {
		t.Fatal(err)
	}
	return vp
}

func firstTarget(t testing.TB, w *netsim.World, keep func(*netsim.Target) bool) *netsim.Target {
	t.Helper()
	for i := range w.TargetsV4 {
		tg := &w.TargetsV4[i]
		if keep(tg) {
			return tg
		}
	}
	t.Fatal("no matching target")
	return nil
}

func TestRunReachesUnicastTarget(t *testing.T) {
	w := testWorld(t)
	vp := vpAt(t, w, "tr-ams", "Amsterdam")
	tg := firstTarget(t, w, func(tg *netsim.Target) bool {
		return tg.Kind == netsim.Unicast && tg.Responsive[packet.ICMP] && len(tg.TempWindows) == 0
	})
	p, err := Run(w, vp, tg, Options{At: netsim.DayTime(4), Measurement: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Reached {
		t.Fatal("trace did not reach a responsive unicast target")
	}
	last := p.Hops[len(p.Hops)-1]
	if !last.Dest || last.Router != tg.Addr.String() {
		t.Fatalf("terminal hop %+v is not the target", last)
	}
	if p.ProbesSent != int64(len(p.Hops)) {
		t.Fatalf("ProbesSent=%d for %d hops", p.ProbesSent, len(p.Hops))
	}
	// TTLs must be sequential from 1.
	for i, h := range p.Hops {
		if h.TTL != i+1 {
			t.Fatalf("hop %d has TTL %d", i, h.TTL)
		}
	}
	// Replied RTTs never decrease (each reply transits every earlier
	// router).
	var prev int64 = -1
	for _, h := range p.Hops {
		if h.Router == "" {
			continue
		}
		if n := h.RTT.Nanoseconds(); n <= prev {
			t.Fatalf("RTT inversion at TTL %d", h.TTL)
		} else {
			prev = n
		}
	}
}

func TestRunIdentityMismatchCaught(t *testing.T) {
	// The engine validates quoted identities; a mismatch would be a bug,
	// so Run must never report one on a healthy world. (The invariant is
	// enforced inside Run; this test just exercises a broad sweep.)
	w := testWorld(t)
	vp := vpAt(t, w, "tr-syd", "Sydney")
	n := 0
	for i := range w.TargetsV4 {
		if n >= 120 {
			break
		}
		tg := &w.TargetsV4[i]
		if !tg.Responsive[packet.ICMP] {
			continue
		}
		n++
		if _, err := Run(w, vp, tg, Options{At: netsim.DayTime(6), Measurement: uint16(i)}); err != nil {
			t.Fatalf("target %d: %v", tg.ID, err)
		}
	}
}

func TestRunUnresponsiveTargetEndsSilent(t *testing.T) {
	w := testWorld(t)
	vp := vpAt(t, w, "tr-nyc", "New York")
	tg := firstTarget(t, w, func(tg *netsim.Target) bool {
		return !tg.Responsive[packet.ICMP]
	})
	p, err := Run(w, vp, tg, Options{At: netsim.DayTime(4)})
	if err != nil {
		t.Fatal(err)
	}
	if p.Reached {
		t.Fatal("trace claims to reach an ICMP-unresponsive target")
	}
	if last := p.Hops[len(p.Hops)-1]; last.Router != "" && last.Dest {
		t.Fatalf("unresponsive target produced a terminal reply: %+v", last)
	}
}

func TestMaxTTLTruncates(t *testing.T) {
	w := testWorld(t)
	vp := vpAt(t, w, "tr-lon", "London")
	tg := firstTarget(t, w, func(tg *netsim.Target) bool {
		return tg.Responsive[packet.ICMP]
	})
	p, err := Run(w, vp, tg, Options{At: netsim.DayTime(4), MaxTTL: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) > 2 {
		t.Fatalf("MaxTTL=2 but %d hops recorded", len(p.Hops))
	}
	if p.Reached {
		t.Fatal("2-hop budget cannot reach any target (gateway + transit)")
	}
}

func TestMeasureGlobalBGPSignature(t *testing.T) {
	w := testWorld(t)
	vps := []netsim.VP{
		vpAt(t, w, "fan-1", "Amsterdam"), vpAt(t, w, "fan-2", "Tokyo"),
		vpAt(t, w, "fan-3", "Los Angeles"), vpAt(t, w, "fan-4", "Sao Paulo"),
		vpAt(t, w, "fan-5", "Sydney"), vpAt(t, w, "fan-6", "Johannesburg"),
		vpAt(t, w, "fan-7", "Frankfurt"), vpAt(t, w, "fan-8", "Singapore"),
	}
	opts := Options{At: netsim.DayTime(5)}

	confirmed := 0
	checked := 0
	for i := range w.TargetsV4 {
		tg := &w.TargetsV4[i]
		if tg.Kind != netsim.GlobalUnicast || !tg.Responsive[packet.ICMP] {
			continue
		}
		checked++
		if checked > 40 {
			break
		}
		f, err := Measure(w, vps, tg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.ServerCities) > 1 {
			t.Fatalf("global-unicast target %d shows %d server cities", tg.ID, len(f.ServerCities))
		}
		if f.GlobalBGP() {
			confirmed++
		}
	}
	if checked == 0 {
		t.Fatal("no global-unicast targets")
	}
	if confirmed < checked/2 {
		t.Fatalf("only %d/%d global-unicast targets confirmed by traceroute; §5.1.3 signature too weak", confirmed, checked)
	}
}

func TestUnicastNeverConfirmsGlobalBGP(t *testing.T) {
	w := testWorld(t)
	vps := []netsim.VP{
		vpAt(t, w, "neg-1", "Amsterdam"), vpAt(t, w, "neg-2", "Tokyo"),
		vpAt(t, w, "neg-3", "Los Angeles"), vpAt(t, w, "neg-4", "Sydney"),
	}
	opts := Options{At: netsim.DayTime(5)}
	checked := 0
	for i := range w.TargetsV4 {
		tg := &w.TargetsV4[i]
		if tg.Kind != netsim.Unicast || !tg.Responsive[packet.ICMP] || len(tg.TempWindows) > 0 {
			continue
		}
		checked++
		if checked > 60 {
			break
		}
		f, err := Measure(w, vps, tg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if f.GlobalBGP() {
			t.Fatalf("plain unicast target %d confirmed as global BGP: %+v", tg.ID, f)
		}
	}
	if checked == 0 {
		t.Fatal("no unicast targets")
	}
}

func TestEnumerateSitesTracksTruthForAnycast(t *testing.T) {
	w := testWorld(t)
	// A well-spread VP set: one per continent plus extras.
	names := []string{"Amsterdam", "Frankfurt", "London", "New York", "Los Angeles",
		"Chicago", "Tokyo", "Singapore", "Mumbai", "Sao Paulo", "Sydney",
		"Johannesburg", "Stockholm", "Madrid", "Toronto", "Seoul"}
	var vps []netsim.VP
	for i, n := range names {
		vps = append(vps, vpAt(t, w, "enum-"+string(rune('a'+i)), n))
	}
	opts := Options{At: netsim.DayTime(5)}
	tested := 0
	for i := range w.TargetsV4 {
		tg := &w.TargetsV4[i]
		if tg.Kind != netsim.Anycast || !tg.Responsive[packet.ICMP] ||
			len(tg.Sites) < 3 || len(tg.Sites) > 8 || len(tg.TempWindows) > 0 {
			continue
		}
		tested++
		if tested > 15 {
			break
		}
		n, err := EnumerateSites(w, vps, tg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 || n > len(tg.Sites) {
			t.Fatalf("target %d: enumerated %d sites, truth has %d — enumeration must be a lower bound",
				tg.ID, n, len(tg.Sites))
		}
	}
	if tested == 0 {
		t.Fatal("no mid-size anycast targets")
	}
}

func TestConfirmGlobalBGPScreensCandidates(t *testing.T) {
	w := testWorld(t)
	vps := []netsim.VP{
		vpAt(t, w, "scr-1", "Amsterdam"), vpAt(t, w, "scr-2", "Tokyo"),
		vpAt(t, w, "scr-3", "Los Angeles"), vpAt(t, w, "scr-4", "Sao Paulo"),
		vpAt(t, w, "scr-5", "Sydney"), vpAt(t, w, "scr-6", "Johannesburg"),
	}
	var cands []*netsim.Target
	for i := range w.TargetsV4 {
		tg := &w.TargetsV4[i]
		if tg.Kind == netsim.GlobalUnicast || (tg.Kind == netsim.Unicast && len(tg.TempWindows) == 0) {
			cands = append(cands, tg)
		}
		if len(cands) >= 50 {
			break
		}
	}
	ids, probes, err := ConfirmGlobalBGP(w, vps, cands, netsim.DayTime(5))
	if err != nil {
		t.Fatal(err)
	}
	if probes == 0 {
		t.Fatal("no probes accounted")
	}
	byID := make(map[int]*netsim.Target)
	for _, tg := range cands {
		byID[tg.ID] = tg
	}
	for _, id := range ids {
		if byID[id].Kind != netsim.GlobalUnicast {
			t.Fatalf("confirmed %v target %d as global BGP", byID[id].Kind, id)
		}
	}
}

func TestRunIPv6Target(t *testing.T) {
	w := testWorld(t)
	vp := vpAt(t, w, "tr-v6", "Frankfurt")
	var tg *netsim.Target
	for i := range w.TargetsV6 {
		cand := &w.TargetsV6[i]
		if cand.Responsive[packet.ICMP] && cand.Kind == netsim.Anycast && len(cand.TempWindows) == 0 {
			tg = cand
			break
		}
	}
	if tg == nil {
		t.Fatal("no v6 anycast target")
	}
	p, err := Run(w, vp, tg, Options{At: netsim.DayTime(4), Measurement: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Reached {
		t.Fatal("v6 trace did not reach the target")
	}
	last := p.Hops[len(p.Hops)-1]
	if !last.Dest {
		t.Fatalf("terminal hop not Dest: %+v", last)
	}
	// The ICMPv6 encode path ran for every TTL; identity validation inside
	// Run would have failed loudly on any checksum or quote corruption.
	if p.ProbesSent < 3 {
		t.Fatalf("suspiciously short v6 trace: %d probes", p.ProbesSent)
	}
}
