package experiments

import (
	"io"
	"sort"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/stats"
)

// ---------------------------------------------------------------------------
// §6 — ground-truth validation per operator

// ValidationRow audits the census against one operator's ground truth.
type ValidationRow struct {
	Operator string
	// Prefixes is the operator's anycast prefix count on the hitlist
	// (measurable with ICMP or TCP).
	Prefixes int
	// InG counts prefixes the census confirms with GCD.
	InG int
	// InM counts prefixes only the anycast-based stage flags.
	InM int
	// Missed counts prefixes absent from both.
	Missed int
	// FPs counts census 𝒢 prefixes of this operator that ground truth
	// says are unicast today.
	FPs int
}

// GroundTruth compares the daily census against the generator's oracle per
// modelled operator, reproducing the §6 validation (Cloudflare: "no FPs
// and no FNs"; ccTLDs: regional deployments partially missed; G-Root:
// DNS-only).
func (e *Env) GroundTruth(v6 bool) ([]ValidationRow, error) {
	c, err := e.DailyCensus(dayGroundTruth, v6)
	if err != nil {
		return nil, err
	}
	inG := stats.NewSet(c.G())
	inM := stats.NewSet(c.M())
	truth := e.gTruth(dayGroundTruth, v6)

	rows := make(map[int]*ValidationRow)
	e.World.IterTargets(v6, 0, func(batch []netsim.Target) bool {
		for i := range batch {
			tg := &batch[i]
			if tg.Operator < 0 {
				continue
			}
			row, ok := rows[tg.Operator]
			if !ok {
				row = &ValidationRow{Operator: e.World.Operators[tg.Operator].Name}
				rows[tg.Operator] = row
			}
			anycastToday := truth[tg.ID]
			if anycastToday && (tg.Responsive[packet.ICMP] || tg.Responsive[packet.TCP]) {
				row.Prefixes++
				switch {
				case inG[tg.ID]:
					row.InG++
				case inM[tg.ID]:
					row.InM++
				default:
					row.Missed++
				}
			}
			if !anycastToday && inG[tg.ID] {
				row.FPs++
			}
		}
		return true
	})
	out := make([]ValidationRow, 0, len(rows))
	for _, r := range rows {
		if r.Prefixes > 0 || r.FPs > 0 {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefixes > out[j].Prefixes })
	return out, nil
}

// RenderValidation prints the per-operator audit.
func RenderValidation(w io.Writer, rows []ValidationRow, v6 bool) error {
	fam := "IPv4"
	if v6 {
		fam = "IPv6"
	}
	t := stats.Table{
		Title:  "§6 ground-truth validation (" + fam + ")",
		Header: []string{"operator", "anycast prefixes", "in G", "in M only", "missed", "FPs"},
	}
	for _, r := range rows {
		t.Add(r.Operator, fmtInt(r.Prefixes), fmtInt(r.InG), fmtInt(r.InM), fmtInt(r.Missed), fmtInt(r.FPs))
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------------
// RunAll drives every experiment and renders it to w; the regeneration
// entry point of cmd/laces-experiments.

// RunAll executes the full evaluation suite. Long experiments honour the
// skipLongitudinal flag (the 77-run history dominates wall-clock).
func (e *Env) RunAll(w io.Writer, skipLongitudinal bool) error {
	type step struct {
		name string
		run  func() error
	}
	nl := func() { io.WriteString(w, "\n") }
	steps := []step{
		{"Table 1", func() error {
			rows, err := e.Table1()
			if err != nil {
				return err
			}
			return RenderTable1(w, rows)
		}},
		{"Table 2", func() error {
			rows, err := e.Table2()
			if err != nil {
				return err
			}
			return RenderTable2(w, rows)
		}},
		{"Table 3", func() error {
			rows, err := e.Table3()
			if err != nil {
				return err
			}
			return RenderTable3(w, rows)
		}},
		{"Table 4", func() error {
			rows, err := e.Table4()
			if err != nil {
				return err
			}
			return RenderTable4(w, rows)
		}},
		{"Table 5", func() error {
			rows, err := e.Table5()
			if err != nil {
				return err
			}
			return RenderTable5(w, rows)
		}},
		{"Table 6", func() error {
			rows, err := e.Table6()
			if err != nil {
				return err
			}
			return RenderTable6(w, rows)
		}},
		{"Fig 5", func() error {
			series, err := e.Fig5()
			if err != nil {
				return err
			}
			return RenderFig5(w, series)
		}},
		{"Fig 6", func() error {
			r, err := e.Fig6()
			if err != nil {
				return err
			}
			return RenderFig6(w, r)
		}},
		{"Fig 7/13", func() error {
			r, err := e.ProtocolVenn(false)
			if err != nil {
				return err
			}
			return RenderProtocolVenn(w, r)
		}},
		{"Fig 14", func() error {
			r, err := e.ProtocolVenn(true)
			if err != nil {
				return err
			}
			return RenderProtocolVenn(w, r)
		}},
		{"Fig 8", func() error {
			r, err := e.Fig8()
			if err != nil {
				return err
			}
			return RenderFig8(w, r)
		}},
		{"Fig 11", func() error {
			rows, err := e.Fig11()
			if err != nil {
				return err
			}
			return RenderFig11(w, rows)
		}},
		{"Fig 12", func() error {
			r, err := e.Fig12()
			if err != nil {
				return err
			}
			return RenderFig12(w, r)
		}},
		{"§5.7 sweep", func() error {
			r, err := e.PartialAnycastSweep()
			if err != nil {
				return err
			}
			return RenderSweep(w, r)
		}},
		{"§6 validation", func() error {
			rows, err := e.GroundTruth(false)
			if err != nil {
				return err
			}
			return RenderValidation(w, rows, false)
		}},
		{"§5.1.3 M decomposition", func() error {
			r, err := e.MDecomposition()
			if err != nil {
				return err
			}
			return RenderMDecomposition(w, r)
		}},
		{"§5.2 enumeration comparison", func() error {
			rows, err := e.EnumComparison()
			if err != nil {
				return err
			}
			return RenderEnumComparison(w, rows)
		}},
		{"chaos resilience", func() error {
			r, err := e.ChaosResilience(false)
			if err != nil {
				return err
			}
			return RenderChaosResilience(w, r)
		}},
	}
	if !skipLongitudinal {
		steps = append(steps,
			step{"Fig 9", func() error {
				h, err := e.Fig9()
				if err != nil {
					return err
				}
				return RenderFig9(w, h)
			}},
			step{"Fig 10", func() error {
				r, err := e.Fig10()
				if err != nil {
					return err
				}
				return RenderFig10(w, r)
			}},
		)
	}
	for _, s := range steps {
		if err := s.run(); err != nil {
			return err
		}
		nl()
	}
	return nil
}
