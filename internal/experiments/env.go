// Package experiments regenerates every table and figure of the paper's
// evaluation (§5–§7, appendices) against the simulated world. Each
// experiment is a method on Env returning typed rows plus a Render method
// printing the paper-style table; cmd/laces-experiments and the root
// benchmark suite drive them. The per-experiment index lives in DESIGN.md
// §5; paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/laces-project/laces/internal/core"
	"github.com/laces-project/laces/internal/hitlist"
	"github.com/laces-project/laces/internal/longitudinal"
	"github.com/laces-project/laces/internal/manycast"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/platform"
)

// Env bundles the world and the cached expensive intermediates shared
// between experiments (GCD_LS sweeps, daily censuses).
type Env struct {
	World   *netsim.World
	Tangled *netsim.Deployment
	// Obs, when set before the first experiment runs, receives telemetry
	// from every census pipeline the environment builds. Results are
	// byte-identical with or without it.
	Obs *obs.Registry

	mu       sync.Mutex
	gcdls    map[lsKey]*core.GCDLSResult
	censuses map[lsKey]*core.DailyCensus

	histOnce sync.Once
	hist     *longitudinal.History
	histErr  error

	mdecompOnce sync.Once
	mdecomp     *MDecompResult
	mdecompErr  error
}

type lsKey struct {
	day int
	v6  bool
}

// NewEnv builds an experiment environment from a world configuration.
func NewEnv(cfg netsim.Config) (*Env, error) {
	w, err := netsim.New(cfg)
	if err != nil {
		return nil, err
	}
	d, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		return nil, err
	}
	return &Env{
		World:    w,
		Tangled:  d,
		gcdls:    make(map[lsKey]*core.GCDLSResult),
		censuses: make(map[lsKey]*core.DailyCensus),
	}, nil
}

var (
	defaultEnvOnce sync.Once
	defaultEnv     *Env
	defaultEnvErr  error
)

// Default returns the shared experiment-scale environment (DefaultConfig
// world), built once per process.
func Default() (*Env, error) {
	defaultEnvOnce.Do(func() {
		defaultEnv, defaultEnvErr = NewEnv(netsim.DefaultConfig())
	})
	return defaultEnv, defaultEnvErr
}

// GCDLS returns the (cached) full-hitlist GCD sweep for a day and family,
// using the Ark pool grown to that day plus a thinned Atlas complement —
// ~230 VPs, matching the paper's 227-VP December 2024 sweep.
func (e *Env) GCDLS(day int, v6 bool) (*core.GCDLSResult, error) {
	key := lsKey{day, v6}
	e.mu.Lock()
	if r, ok := e.gcdls[key]; ok {
		e.mu.Unlock()
		return r, nil
	}
	e.mu.Unlock()
	vps, err := e.GCDLSVPs(day, v6)
	if err != nil {
		return nil, err
	}
	r := core.RunGCDLS(e.World, vps, v6, day)
	e.mu.Lock()
	e.gcdls[key] = r
	e.mu.Unlock()
	return r, nil
}

// GCDLSVPs returns the large VP pool used for GCD_LS sweeps.
func (e *Env) GCDLSVPs(day int, v6 bool) ([]netsim.VP, error) {
	ark, err := platform.Ark(e.World, day, v6)
	if err != nil {
		return nil, err
	}
	atlas, err := platform.Atlas(e.World, 400)
	if err != nil {
		return nil, err
	}
	return append(ark, atlas...), nil
}

// DailyCensus returns the (cached) daily census for a day and family,
// produced by a fresh pipeline seeded with that day's GCD_LS sweep —
// mirroring the production pipeline state around that date.
func (e *Env) DailyCensus(day int, v6 bool) (*core.DailyCensus, error) {
	key := lsKey{day, v6}
	e.mu.Lock()
	if c, ok := e.censuses[key]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	ls, err := e.GCDLS(day, v6)
	if err != nil {
		return nil, err
	}
	pipe, err := core.NewPipeline(e.World, core.Config{
		Deployment: e.Tangled,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(e.World, day, v6)
		},
		Obs: e.Obs,
	})
	if err != nil {
		return nil, err
	}
	pipe.SeedFeedback(v6, ls.IDs())
	c, err := pipe.RunDaily(day, v6, core.DayOptions{})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.censuses[key] = c
	e.mu.Unlock()
	return c, nil
}

// anycastRun executes one anycast-based ICMP measurement with the given
// deployment at a day and returns the result.
func (e *Env) anycastRun(d *netsim.Deployment, day int, v6 bool, offset time.Duration, id uint16) (*manycast.Result, error) {
	hl := hitlist.ForDay(e.World, v6, day)
	return manycast.Run(e.World, d, hl, manycast.Options{
		Protocol:      packet.ICMP,
		Start:         netsim.DayTime(day),
		Offset:        offset,
		MeasurementID: id,
	})
}

// gTruth returns the ground-truth anycast oracle for a day.
func (e *Env) gTruth(day int, v6 bool) map[int]bool {
	return e.World.GroundTruthAnycast(v6, day)
}

// Experiment days, aligned with the paper's roadmap (Fig 4).
const (
	dayFig5        = 30  // synchronous probing study (early, pre-census)
	dayFig7        = 45  // protocol coverage
	dayTable2      = 180 // Sep '24
	dayFig6        = 180 // Ark=164 vs Atlas comparison, Sep '24
	dayTable4      = 270 // Dec '24 (GCD_LS month)
	dayTable6      = 274 // Dec 20, '24 BGPTools comparison
	dayTable3      = 300 // Jan '25 ccTLD replicability
	dayTable5      = 291 // Jan 6, '25 hypergiant ranking
	daySweep       = 240 // Nov '24 GCD_IPv4 sweep
	dayFig8        = 420 // May '25 routing communities
	dayTable1      = 510 // Aug '25 GCD_LS comparison
	dayChaos       = 150 // CHAOS side-by-side
	dayGroundTruth = 291
)

// fmtInt renders an int with thousands separators for table output.
func fmtInt(n int) string {
	if n < 0 {
		return "-" + fmtInt(-n)
	}
	s := fmt.Sprint(n)
	out := ""
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			out += ","
		}
		out += string(c)
	}
	return out
}
