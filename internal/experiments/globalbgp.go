package experiments

import (
	"io"
	"sort"

	"github.com/laces-project/laces/internal/core"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
	"github.com/laces-project/laces/internal/stats"
)

// ---------------------------------------------------------------------------
// §5.1.3 — decomposing ℳ with traceroute (and the paper's future work of
// publishing global-BGP unicast in the census)

// MOriginRow is one origin AS's share of ℳ.
type MOriginRow struct {
	Origin netsim.ASN
	Name   string
	// M counts the AS's prefixes in today's ℳ.
	M int
	// GlobalBGP counts those confirmed as globally announced unicast by
	// the traceroute screening stage.
	GlobalBGP int
}

// MDecompResult decomposes one day's ℳ set.
type MDecompResult struct {
	Day    int
	MTotal int
	// GlobalBGP is the number of ℳ prefixes carrying the traceroute
	// confirmation flag.
	GlobalBGP int
	// TopOrigins lists the largest contributing ASes (descending ℳ).
	TopOrigins []MOriginRow
	// TracerouteProbes is the screening stage's probing cost.
	TracerouteProbes int64
}

// MDecomposition runs a daily census with the traceroute screening stage
// enabled and decomposes ℳ by origin AS. The paper observes that > 70% of
// ℳ on any given day originates from Microsoft's AS 8075, confirms the
// ingress pattern with traceroute, and names including global BGP in the
// census as future work (§5.1.3) — this experiment is that pipeline.
func (e *Env) MDecomposition() (*MDecompResult, error) {
	e.mdecompOnce.Do(func() {
		e.mdecomp, e.mdecompErr = e.runMDecomposition(dayTable2)
	})
	return e.mdecomp, e.mdecompErr
}

func (e *Env) runMDecomposition(day int) (*MDecompResult, error) {
	// Seed the feedback loop from the census-start sweep (the sweeps that
	// chronologically precede the measurement day). Seeding never changes
	// ℳ — feedback-only entries carry no anycast-based candidacy — so the
	// decomposition itself is seeding-independent.
	ls, err := e.GCDLS(0, false)
	if err != nil {
		return nil, err
	}
	pipe, err := core.NewPipeline(e.World, core.Config{
		Deployment: e.Tangled,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(e.World, day, v6)
		},
		ConfirmGlobalBGP: true,
	})
	if err != nil {
		return nil, err
	}
	pipe.SeedFeedback(false, ls.IDs())
	c, err := pipe.RunDaily(day, false, core.DayOptions{})
	if err != nil {
		return nil, err
	}

	r := &MDecompResult{Day: day, TracerouteProbes: c.ProbesTracerouteStage}
	perAS := make(map[netsim.ASN]*MOriginRow)
	for _, id := range c.M() {
		e2 := c.Entries[id]
		r.MTotal++
		row, ok := perAS[e2.Origin]
		if !ok {
			row = &MOriginRow{Origin: e2.Origin}
			if a, found := e.World.ASByNumber(e2.Origin); found {
				row.Name = a.Name
			}
			perAS[e2.Origin] = row
		}
		row.M++
		if e2.GlobalBGP {
			r.GlobalBGP++
			row.GlobalBGP++
		}
	}
	for _, row := range perAS {
		r.TopOrigins = append(r.TopOrigins, *row)
	}
	sort.Slice(r.TopOrigins, func(i, j int) bool {
		if r.TopOrigins[i].M != r.TopOrigins[j].M {
			return r.TopOrigins[i].M > r.TopOrigins[j].M
		}
		return r.TopOrigins[i].Origin < r.TopOrigins[j].Origin
	})
	if len(r.TopOrigins) > 8 {
		r.TopOrigins = r.TopOrigins[:8]
	}
	return r, nil
}

// RenderMDecomposition prints the ℳ decomposition.
func RenderMDecomposition(w io.Writer, r *MDecompResult) error {
	t := stats.Table{
		Title:  "§5.1.3: traceroute decomposition of M (anycast-based only, not GCD-confirmed)",
		Header: []string{"origin AS", "name", "prefixes in M", "global-BGP confirmed"},
	}
	for _, row := range r.TopOrigins {
		t.Add(int(row.Origin), row.Name, fmtInt(row.M), fmtInt(row.GlobalBGP))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, "  M total "+fmtInt(r.MTotal)+
		"; global-BGP confirmed "+fmtInt(r.GlobalBGP)+
		"; traceroute probes "+fmtInt(int(r.TracerouteProbes))+"\n")
	return err
}
