package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/laces-project/laces/internal/chaosdns"
	"github.com/laces-project/laces/internal/gcdmeas"
	"github.com/laces-project/laces/internal/hitlist"
	"github.com/laces-project/laces/internal/manycast"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/platform"
	"github.com/laces-project/laces/internal/stats"
)

// ---------------------------------------------------------------------------
// Fig 5 — false positives by receiving count for probe intervals (§5.1.5)

// Fig5Series is one probing-interval curve.
type Fig5Series struct {
	Label    string
	Interval time.Duration
	// FPsByReceivers buckets unconfirmed candidates (ℳ) by receiving-VP
	// count, 2..16 as in the figure.
	FPsByReceivers map[int]int
	TotalFPs       int
}

// Fig5 compares MAnycast2-style sequential probing (13-minute and 1-minute
// inter-probe intervals) with LACeS synchronized probing (1 s and 0 s).
func (e *Env) Fig5() ([]Fig5Series, error) {
	truth := e.gTruth(dayFig5, false)
	series := []Fig5Series{
		{Label: "MAnycast2 13m", Interval: 13 * time.Minute},
		{Label: "MAnycast2 1m", Interval: time.Minute},
		{Label: "LACeS 1s (synchronous)", Interval: time.Second},
		{Label: "LACeS 0s (synchronous)", Interval: 0},
	}
	for i := range series {
		res, err := e.anycastRun(e.Tangled, dayFig5, false, series[i].Interval, uint16(0x50+i))
		if err != nil {
			return nil, err
		}
		series[i].FPsByReceivers = make(map[int]int)
		for _, obs := range res.Observations {
			if !obs.IsCandidate() || truth[obs.TargetID] {
				continue
			}
			series[i].TotalFPs++
			if n := obs.NumReceivers(); n <= 16 {
				series[i].FPsByReceivers[n]++
			}
		}
	}
	return series, nil
}

// RenderFig5 prints the figure as a table of FP counts per receiving
// bucket.
func RenderFig5(w io.Writer, series []Fig5Series) error {
	t := stats.Table{
		Title:  "Fig 5: false positives by number of receiving VPs and probe interval",
		Header: []string{"# receiving"},
	}
	for _, s := range series {
		t.Header = append(t.Header, s.Label)
	}
	for n := 2; n <= 16; n++ {
		cells := []any{n}
		for _, s := range series {
			cells = append(cells, s.FPsByReceivers[n])
		}
		t.Add(cells...)
	}
	cells := []any{"total FPs"}
	for _, s := range series {
		cells = append(cells, fmtInt(s.TotalFPs))
	}
	t.Add(cells...)
	return t.Render(w)
}

// ---------------------------------------------------------------------------
// Fig 6 — site-enumeration CDF, Ark vs RIPE Atlas (§5.2, App B)

// Fig6Result holds the two platform CDFs plus the hypergiant markers.
type Fig6Result struct {
	ArkVPs     int
	AtlasVPs   int
	Ark        *stats.CDF
	Atlas      *stats.CDF
	Hypergiant map[string]int // operator → max sites enumerated (Ark)
}

// Fig6 runs GCD towards the day's anycast candidates on both platforms and
// builds the per-prefix site-count distributions.
func (e *Env) Fig6() (*Fig6Result, error) {
	c, err := e.DailyCensus(dayFig6, false)
	if err != nil {
		return nil, err
	}
	// Restrict to ICMP-responsive candidates (both platforms ping).
	var ids []int
	for _, id := range c.Candidates() {
		if e.World.TargetsV4[id].Responsive[packet.ICMP] {
			ids = append(ids, id)
		}
	}
	ark, err := platform.Ark(e.World, dayFig6, false)
	if err != nil {
		return nil, err
	}
	atlasAll, err := platform.Atlas(e.World, 100)
	if err != nil {
		return nil, err
	}
	atlas := platform.Participating(atlasAll, 0xa71a5, 0.93)

	at := netsim.DayTime(dayFig6)
	out := &Fig6Result{ArkVPs: len(ark), AtlasVPs: len(atlas), Hypergiant: make(map[string]int)}
	for platformIdx, vps := range [][]netsim.VP{ark, atlas} {
		rep := gcdmeas.Run(e.World, ids, false, gcdmeas.Campaign{VPs: vps, Proto: packet.ICMP, At: at})
		var counts []int
		for id, o := range rep.Outcomes {
			if !o.Result.Anycast {
				continue
			}
			n := o.Result.NumSites()
			counts = append(counts, n) //laces:allow maporder stats.NewCDF sorts a copy of the values, so accumulation order never reaches the output
			if platformIdx == 0 {
				tg := &e.World.TargetsV4[id]
				if tg.Operator >= 0 {
					name := e.World.Operators[tg.Operator].Name
					if n > out.Hypergiant[name] {
						out.Hypergiant[name] = n
					}
				}
			}
		}
		if platformIdx == 0 {
			out.Ark = stats.NewCDF(counts)
		} else {
			out.Atlas = stats.NewCDF(counts)
		}
	}
	return out, nil
}

// RenderFig6 prints quantiles of both CDFs and the hypergiant markers.
func RenderFig6(w io.Writer, r *Fig6Result) error {
	t := stats.Table{
		Title: fmt.Sprintf("Fig 6: sites detected per prefix — Ark (%d VPs) vs RIPE Atlas (%d VPs)",
			r.ArkVPs, r.AtlasVPs),
		Header: []string{"quantile", "Ark", "Atlas"},
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		t.Add(fmt.Sprintf("p%02.0f", q*100), r.Ark.Quantile(q), r.Atlas.Quantile(q))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	t2 := stats.Table{
		Title:  "Hypergiant enumeration (Ark)",
		Header: []string{"operator", "max sites"},
	}
	names := make([]string, 0, len(r.Hypergiant))
	for n := range r.Hypergiant {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t2.Add(n, r.Hypergiant[n])
	}
	return t2.Render(w)
}

// ---------------------------------------------------------------------------
// Fig 7 / Fig 13 (IPv4) and Fig 14 (IPv6) — protocol coverage (§5.3)

// ProtocolVennResult is the UpSet decomposition of per-protocol candidate
// sets.
type ProtocolVennResult struct {
	V6     bool
	Totals map[string]int
	Rows   []stats.UpSetRow
}

// ProtocolVenn runs the anycast-based stage per protocol and intersects
// the candidate sets.
func (e *Env) ProtocolVenn(v6 bool) (*ProtocolVennResult, error) {
	hl := hitlist.ForDay(e.World, v6, dayFig7)
	results, err := manycast.MultiProtocol(e.World, e.Tangled, hl, manycast.Options{
		Start:         netsim.DayTime(dayFig7),
		Offset:        time.Second,
		MeasurementID: 0x70,
	}, packet.Protocols())
	if err != nil {
		return nil, err
	}
	fam := "v4"
	if v6 {
		fam = "v6"
	}
	names := []string{"ICMP" + fam, "TCP" + fam, "DNS" + fam}
	sets := []stats.Set{
		stats.NewSet(results[packet.ICMP].Candidates()),
		stats.NewSet(results[packet.TCP].Candidates()),
		stats.NewSet(results[packet.DNS].Candidates()),
	}
	out := &ProtocolVennResult{V6: v6, Totals: make(map[string]int)}
	for i, n := range names {
		out.Totals[n] = len(sets[i])
	}
	out.Rows = stats.UpSet(names, sets)
	return out, nil
}

// RenderProtocolVenn prints the UpSet rows.
func RenderProtocolVenn(w io.Writer, r *ProtocolVennResult) error {
	fig := "Fig 7/13"
	if r.V6 {
		fig = "Fig 14"
	}
	t := stats.Table{
		Title:  fig + ": anycast candidates per protocol (exclusive intersections)",
		Header: []string{"set", "count", "share"},
	}
	names := make([]string, 0, len(r.Totals))
	for n := range r.Totals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.Add("total "+n, fmtInt(r.Totals[n]), "")
	}
	for _, row := range r.Rows {
		t.Add(row.Label(), fmtInt(row.Count), fmt.Sprintf("%.1f%%", 100*row.Share))
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------------
// Fig 8 — routing policies (BGP communities, §5.6)

// Fig8Result decomposes candidate sets across announcement policies.
type Fig8Result struct {
	Totals       map[string]int
	GCDConfirmed map[string]int
	Rows         []stats.UpSetRow
}

// Fig8 measures under the three Vultr announcement policies and audits
// each candidate set against ground truth GCD.
func (e *Env) Fig8() (*Fig8Result, error) {
	truth := e.gTruth(dayFig8, false)
	policies := []netsim.RoutingPolicy{netsim.PolicyUnmodified, netsim.PolicyTransitsOnly, netsim.PolicyIXPsOnly}
	names := make([]string, len(policies))
	sets := make([]stats.Set, len(policies))
	out := &Fig8Result{Totals: make(map[string]int), GCDConfirmed: make(map[string]int)}
	for i, pol := range policies {
		d, err := platform.Tangled(e.World, pol)
		if err != nil {
			return nil, err
		}
		res, err := e.anycastRun(d, dayFig8, false, time.Second, uint16(0x80+i))
		if err != nil {
			return nil, err
		}
		names[i] = pol.String()
		sets[i] = stats.NewSet(res.Candidates())
		out.Totals[names[i]] = len(sets[i])
		for id := range sets[i] {
			if truth[id] {
				out.GCDConfirmed[names[i]]++
			}
		}
	}
	out.Rows = stats.UpSet(names, sets)
	return out, nil
}

// RenderFig8 prints policy totals and intersections.
func RenderFig8(w io.Writer, r *Fig8Result) error {
	t := stats.Table{
		Title:  "Fig 8: anycast candidates under different routing policies",
		Header: []string{"announcement", "ACs", "GCD-confirmed"},
	}
	for _, n := range []string{"Unmodified", "Transits-only", "IXPs-only"} {
		t.Add(n, fmtInt(r.Totals[n]), fmtInt(r.GCDConfirmed[n]))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	t2 := stats.Table{
		Title:  "Exclusive intersections",
		Header: []string{"set", "count"},
	}
	for _, row := range r.Rows {
		t2.Add(row.Label(), fmtInt(row.Count))
	}
	return t2.Render(w)
}

// ---------------------------------------------------------------------------
// Fig 11 — RIPE Atlas inter-node distance vs cost and enumeration (App B)

// Fig11Row is one thinning step.
type Fig11Row struct {
	SpacingKm   float64
	VPs         int
	Credits     int64
	CostPct     float64 // probing-cost increase relative to 1000 km
	Enumeration int     // sites enumerated for the reference CDN prefix
	EnumPct     float64 // enumeration increase relative to 1000 km
}

// Fig11 sweeps the Atlas inter-node spacing from 1000 km down to 100 km,
// measuring a wide Cloudflare-like prefix.
func (e *Env) Fig11() ([]Fig11Row, error) {
	// Reference prefix: widest Cloudflare-like deployment.
	cf := e.World.OperatorByName("Cloudflare")
	refID := -1
	for i := range e.World.TargetsV4 {
		tg := &e.World.TargetsV4[i]
		if tg.Operator == cf && tg.Responsive[packet.ICMP] {
			refID = tg.ID
			break
		}
	}
	if refID < 0 {
		return nil, fmt.Errorf("experiments: no Cloudflare-like reference prefix")
	}
	spacings := []float64{1000, 800, 600, 400, 200, 100}
	rows := make([]Fig11Row, 0, len(spacings))
	at := netsim.DayTime(dayFig6)
	for _, sp := range spacings {
		vps, err := platform.Atlas(e.World, sp)
		if err != nil {
			return nil, err
		}
		rep := gcdmeas.Run(e.World, []int{refID}, false, gcdmeas.Campaign{VPs: vps, Proto: packet.ICMP, At: at})
		rows = append(rows, Fig11Row{
			SpacingKm:   sp,
			VPs:         len(vps),
			Credits:     platform.AtlasCredits(1, len(vps), 1),
			Enumeration: rep.Outcomes[refID].Result.NumSites(),
		})
	}
	base := rows[0]
	for i := range rows {
		rows[i].CostPct = 100 * (float64(rows[i].VPs)/float64(base.VPs) - 1)
		rows[i].EnumPct = 100 * (float64(rows[i].Enumeration)/float64(base.Enumeration) - 1)
	}
	return rows, nil
}

// RenderFig11 prints the thinning sweep.
func RenderFig11(w io.Writer, rows []Fig11Row) error {
	t := stats.Table{
		Title:  "Fig 11: probing cost and enumeration vs Atlas inter-node distance",
		Header: []string{"spacing (km)", "VPs", "credits/target", "cost +%", "sites", "enum +%"},
	}
	for _, r := range rows {
		t.Add(int(r.SpacingKm), r.VPs, fmtInt(int(r.Credits)),
			fmt.Sprintf("%+.0f%%", r.CostPct), r.Enumeration, fmt.Sprintf("%+.0f%%", r.EnumPct))
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------------
// Fig 12 — CHAOS vs anycast-based vs GCD enumeration (App C)

// Fig12Row groups nameservers by unique-CHAOS-record count and averages
// the enumeration of the other two methods.
type Fig12Row struct {
	ChaosRecords int
	Nameservers  int
	AvgAnycast   float64 // mean receiving-VP count (anycast-based)
	AvgGCD       float64 // mean GCD site count
}

// Fig12Result carries the rows plus the App C census statistics.
type Fig12Result struct {
	Rows  []Fig12Row
	Stats chaosdns.Stats
}

// Fig12 runs the three methodologies side by side on the nameserver
// hitlist with the same 32-VP deployment.
func (e *Env) Fig12() (*Fig12Result, error) {
	hl := hitlist.ForDay(e.World, false, dayChaos)
	at := netsim.DayTime(dayChaos)
	chaos, _ := chaosdns.Census(e.World, e.Tangled, hl, at, nil, 0, nil)

	// Anycast-based receiving counts (DNS probing).
	res, err := manycast.Run(e.World, e.Tangled, hl, manycast.Options{
		Protocol:      packet.DNS,
		Start:         at.Add(2 * time.Hour),
		Offset:        time.Second,
		MeasurementID: 0xc0,
	})
	if err != nil {
		return nil, err
	}
	recv := make(map[int]int)
	for _, obs := range res.Observations {
		recv[obs.TargetID] = obs.NumReceivers()
	}

	// GCD enumeration with the same deployment's sites as unicast VPs.
	var vps []netsim.VP
	for i, name := range platform.TangledCities() {
		vp, err := e.World.NewVP(fmt.Sprintf("tangled-gcd-%02d", i), name, 0)
		if err != nil {
			return nil, err
		}
		vps = append(vps, vp)
	}
	var dnsIDs []int
	for id, obs := range chaos {
		if obs.Supported && e.World.TargetsV4[id].Responsive[packet.ICMP] {
			dnsIDs = append(dnsIDs, id)
		}
	}
	// Probe in ascending ID order, not map order, so the campaign is
	// byte-reproducible run to run.
	sort.Ints(dnsIDs)
	rep := gcdmeas.Run(e.World, dnsIDs, false, gcdmeas.Campaign{VPs: vps, Proto: packet.ICMP, At: at})

	type acc struct {
		n, any, gcd int
	}
	buckets := make(map[int]*acc)
	for id, obs := range chaos {
		if !obs.Supported {
			continue
		}
		k := obs.UniqueRecords()
		b, ok := buckets[k]
		if !ok {
			b = &acc{}
			buckets[k] = b
		}
		b.n++
		b.any += recv[id]
		if o, ok := rep.Outcomes[id]; ok {
			b.gcd += o.Result.NumSites()
		}
	}
	out := &Fig12Result{Stats: chaosdns.Summarize(chaos)}
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		b := buckets[k]
		out.Rows = append(out.Rows, Fig12Row{
			ChaosRecords: k,
			Nameservers:  b.n,
			AvgAnycast:   float64(b.any) / float64(b.n),
			AvgGCD:       float64(b.gcd) / float64(b.n),
		})
	}
	return out, nil
}

// RenderFig12 prints the comparison.
func RenderFig12(w io.Writer, r *Fig12Result) error {
	t := stats.Table{
		Title: fmt.Sprintf("Fig 12: enumeration by methodology (nameservers=%d, no CHAOS=%d, multi-record=%d)",
			r.Stats.Probed, r.Stats.Unsupported, r.Stats.MultiRecord),
		Header: []string{"unique CHAOS records", "nameservers", "avg anycast-based VPs", "avg GCD sites"},
	}
	for _, row := range r.Rows {
		t.Add(row.ChaosRecords, row.Nameservers,
			fmt.Sprintf("%.1f", row.AvgAnycast), fmt.Sprintf("%.1f", row.AvgGCD))
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------------
// §5.7 — GCD_IPv4 /32 sweep: partial anycast

// SweepResult summarises the address-granularity sweep.
type SweepResult struct {
	AnycastPrefixes int // /24s with any anycast address
	Partial         int // of which the representative is unicast
	PartialPct      float64
	Probes          int64
}

// PartialAnycastSweep runs the GCD_IPv4-style sweep with 13 VPs over all
// prefixes originated by operators with global backbones (the candidate
// population for partial anycast) plus a unicast control sample.
func (e *Env) PartialAnycastSweep() (*SweepResult, error) {
	ark, err := platform.Ark(e.World, daySweep, false)
	if err != nil {
		return nil, err
	}
	vps := ark[:13] // §5.7: "we used 13 VPs spanning multiple continents"
	var ids []int
	for i := range e.World.TargetsV4 {
		tg := &e.World.TargetsV4[i]
		if tg.Operator >= 0 || tg.Kind == netsim.PartialAnycast {
			ids = append(ids, tg.ID)
		}
	}
	outcomes, probes, _ := gcdmeas.SweepAddrs(e.World, ids, false, gcdmeas.DefaultSweepOffsets(),
		gcdmeas.Campaign{VPs: vps, Proto: packet.ICMP, At: netsim.DayTime(daySweep)})
	res := &SweepResult{Probes: probes}
	for _, o := range outcomes {
		res.AnycastPrefixes++
		if o.Partial() {
			res.Partial++
		}
	}
	if res.AnycastPrefixes > 0 {
		res.PartialPct = 100 * float64(res.Partial) / float64(res.AnycastPrefixes)
	}
	return res, nil
}

// RenderSweep prints the §5.7 summary.
func RenderSweep(w io.Writer, r *SweepResult) error {
	_, err := fmt.Fprintf(w, "GCD_IPv4 sweep (§5.7): %s /24s with anycast addresses, %s partial anycast (%.1f%%), %s probes\n",
		fmtInt(r.AnycastPrefixes), fmtInt(r.Partial), r.PartialPct, fmtInt(int(r.Probes)))
	return err
}
