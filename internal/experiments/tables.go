package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/laces-project/laces/internal/core"
	"github.com/laces-project/laces/internal/external"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
	"github.com/laces-project/laces/internal/stats"
)

// ---------------------------------------------------------------------------
// Table 1 — anycast candidates vs GCD_LS (§5.1.1)

// Table1Row is one family's comparison.
type Table1Row struct {
	Protocol string
	core.Compare
}

// Table1 compares the anycast-based candidates (feedback excluded) of both
// families against the same-day GCD_LS sweep.
func (e *Env) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, v6 := range []bool{false, true} {
		res, err := e.anycastRun(e.Tangled, dayTable1, v6, time.Second, 0x7a)
		if err != nil {
			return nil, err
		}
		ls, err := e.GCDLS(dayTable1, v6)
		if err != nil {
			return nil, err
		}
		name := "ICMPv4"
		if v6 {
			name = "ICMPv6"
		}
		rows = append(rows, Table1Row{Protocol: name, Compare: core.CompareACsToGCDLS(res.CandidateSet(), ls)})
	}
	return rows, nil
}

// RenderTable1 prints the Table 1 layout.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	t := stats.Table{
		Title:  "Table 1: anycast candidates (AC) vs GCD_LS",
		Header: []string{"Protocol", "AC", "GCDLS", "AC∩GCDLS", "FNs (FNR%)", "¬GCDLS"},
	}
	for _, r := range rows {
		t.Add(r.Protocol, fmtInt(r.ACs), fmtInt(r.GCDLS),
			fmt.Sprintf("%s (%s)", fmtInt(r.Intersection), stats.Pct(r.Intersection, r.GCDLS)),
			fmt.Sprintf("%s (%.1f%%)", fmtInt(r.FNs), 100*r.FNRate),
			fmtInt(r.NotGCDLS))
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 2 — candidates by number of receiving VPs vs GCD (§5.1.3)

// Table2Row is one receiving-VP bucket.
type Table2Row struct {
	Bucket     string
	Candidates int
	G          int // GCD-confirmed
	M          int // not confirmed
	OverlapPct float64
}

// table2Buckets are the paper's receiving-count bins.
var table2Buckets = []struct {
	lo, hi int
	label  string
}{
	{2, 2, "2"}, {3, 3, "3"}, {4, 4, "4"}, {5, 5, "5"},
	{6, 10, "6-10"}, {11, 15, "11-15"}, {16, 20, "16-20"},
	{21, 25, "21-25"}, {26, 32, "26-32"},
}

// Table2 buckets the daily census candidates by receiving-VP count and
// splits them into 𝒢 and ℳ.
func (e *Env) Table2() ([]Table2Row, error) {
	c, err := e.DailyCensus(dayTable2, false)
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(table2Buckets))
	for i, b := range table2Buckets {
		rows[i].Bucket = b.label
	}
	for _, id := range c.Candidates() {
		entry := c.Entries[id]
		n := entry.MaxReceivers
		for i, b := range table2Buckets {
			if n >= b.lo && n <= b.hi {
				rows[i].Candidates++
				if entry.InG() {
					rows[i].G++
				} else {
					rows[i].M++
				}
				break
			}
		}
	}
	for i := range rows {
		if rows[i].Candidates > 0 {
			rows[i].OverlapPct = 100 * float64(rows[i].G) / float64(rows[i].Candidates)
		}
	}
	return rows, nil
}

// RenderTable2 prints the Table 2 layout.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	t := stats.Table{
		Title:  "Table 2: anycast-based ICMPv4 results per number of receiving VPs",
		Header: []string{"# receiving", "Candidate", "G (GCD)", "M (¬GCD)", "Overlap %"},
	}
	var tot Table2Row
	for _, r := range rows {
		t.Add(r.Bucket, fmtInt(r.Candidates), fmtInt(r.G), fmtInt(r.M), fmt.Sprintf("%.2f%%", r.OverlapPct))
		tot.Candidates += r.Candidates
		tot.G += r.G
		tot.M += r.M
	}
	pct := 0.0
	if tot.Candidates > 0 {
		pct = 100 * float64(tot.G) / float64(tot.Candidates)
	}
	t.Add("Total", fmtInt(tot.Candidates), fmtInt(tot.G), fmtInt(tot.M), fmt.Sprintf("%.2f%%", pct))
	return t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 3 — replicability on an independent ccTLD deployment (§5.4)

// Table3Row compares candidate sets across deployments for one protocol.
type Table3Row struct {
	Protocol     string
	Ours         int
	CcTLD        int
	Intersection int
}

// Table3 runs the anycast-based measurement on TANGLED and on the 12-site
// ccTLD registry deployment.
func (e *Env) Table3() ([]Table3Row, error) {
	cctld, err := platform.CcTLD(e.World)
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, v6 := range []bool{false, true} {
		ours, err := e.anycastRun(e.Tangled, dayTable3, v6, time.Second, 0x31)
		if err != nil {
			return nil, err
		}
		theirs, err := e.anycastRun(cctld, dayTable3, v6, time.Second, 0x32)
		if err != nil {
			return nil, err
		}
		a := stats.NewSet(ours.Candidates())
		b := stats.NewSet(theirs.Candidates())
		name := "ICMPv4"
		if v6 {
			name = "ICMPv6"
		}
		rows = append(rows, Table3Row{Protocol: name, Ours: len(a), CcTLD: len(b), Intersection: a.Intersect(b)})
	}
	return rows, nil
}

// RenderTable3 prints the Table 3 layout.
func RenderTable3(w io.Writer, rows []Table3Row) error {
	t := stats.Table{
		Title:  "Table 3: ACs found using two distinct anycast deployments",
		Header: []string{"Protocol", "ACs ours", "ACs ccTLD", "Intersection"},
	}
	for _, r := range rows {
		t.Add(r.Protocol, fmtInt(r.Ours), fmtInt(r.CcTLD), fmtInt(r.Intersection))
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 4 — deployment size vs candidates, FNs and probing cost (§5.5.1)

// Table4Row is one deployment's outcome.
type Table4Row struct {
	Deployment string
	VPs        int
	ACs        int
	MissedLS   int // GCD_LS prefixes not in the candidate set
	MissedPct  float64
	Cost       int64 // probes sent
}

// Table4 measures with the reduced and alternative deployments, comparing
// each candidate set against the GCD_LS reference, plus the GCD_LS row
// itself.
func (e *Env) Table4() ([]Table4Row, error) {
	ls, err := e.GCDLS(dayTable4, false)
	if err != nil {
		return nil, err
	}
	deployments := []struct {
		name string
		mk   func(*netsim.World) (*netsim.Deployment, error)
	}{
		{"EU-NA", platform.EUNA2},
		{"1-per-continent", platform.OnePerContinent6},
		{"2-per-continent", platform.TwoPerContinent11},
		{"ccTLD", platform.CcTLD},
		{"Melbicom", platform.Melbicom},
		{"TANGLED (Vultr)", func(w *netsim.World) (*netsim.Deployment, error) {
			return platform.Tangled(w, netsim.PolicyUnmodified)
		}},
		{"Vultr+Melbicom", platform.VultrMelbicom},
	}
	var rows []Table4Row
	for i, spec := range deployments {
		d, err := spec.mk(e.World)
		if err != nil {
			return nil, err
		}
		res, err := e.anycastRun(d, dayTable4, false, time.Second, uint16(0x40+i))
		if err != nil {
			return nil, err
		}
		cands := res.CandidateSet()
		missed := 0
		for id := range ls.Anycast {
			if !cands[id] {
				missed++
			}
		}
		rows = append(rows, Table4Row{
			Deployment: spec.name,
			VPs:        d.NumSites(),
			ACs:        len(cands),
			MissedLS:   missed,
			MissedPct:  100 * float64(missed) / float64(len(ls.Anycast)),
			Cost:       res.ProbesSent,
		})
	}
	rows = append(rows, Table4Row{
		Deployment: "GCD_LS (full)",
		VPs:        ls.VPs,
		ACs:        len(ls.Anycast),
		MissedLS:   0,
		Cost:       ls.ProbesSent,
	})
	return rows, nil
}

// RenderTable4 prints the Table 4 layout.
func RenderTable4(w io.Writer, rows []Table4Row) error {
	t := stats.Table{
		Title:  "Table 4: anycast candidates, missed GCD_LS prefixes and probing cost per deployment",
		Header: []string{"Deployment", "VPs", "ACs", "¬GCD_LS (%)", "Cost (probes)"},
	}
	for _, r := range rows {
		t.Add(r.Deployment, r.VPs, fmtInt(r.ACs),
			fmt.Sprintf("%s (%.1f%%)", fmtInt(r.MissedLS), r.MissedPct),
			fmtInt(int(r.Cost)))
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 5 — largest ASes by anycast prefixes (§6)

// Table5Row is one AS's census counts.
type Table5Row struct {
	ASN  netsim.ASN
	Name string
	V4   int
	V6   int
}

// Table5 ranks origin ASes by GCD-confirmed prefixes in the daily census.
func (e *Env) Table5() ([]Table5Row, error) {
	counts := make(map[netsim.ASN]*Table5Row)
	for _, v6 := range []bool{false, true} {
		c, err := e.DailyCensus(dayTable5, v6)
		if err != nil {
			return nil, err
		}
		for _, id := range c.G() {
			origin := c.Entries[id].Origin
			row, ok := counts[origin]
			if !ok {
				row = &Table5Row{ASN: origin}
				if a, found := e.World.ASByNumber(origin); found {
					row.Name = a.Name
				}
				counts[origin] = row
			}
			if v6 {
				row.V6++
			} else {
				row.V4++
			}
		}
	}
	rows := make([]Table5Row, 0, len(counts))
	for _, r := range counts {
		rows = append(rows, *r)
	}
	// The paper's Table 5 is ordered by IPv4 rank.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].V4 != rows[j].V4 {
			return rows[i].V4 > rows[j].V4
		}
		if rows[i].V6 != rows[j].V6 {
			return rows[i].V6 > rows[j].V6
		}
		return rows[i].ASN < rows[j].ASN
	})
	if len(rows) > 8 {
		rows = rows[:8]
	}
	return rows, nil
}

// RenderTable5 prints the Table 5 layout.
func RenderTable5(w io.Writer, rows []Table5Row) error {
	t := stats.Table{
		Title:  "Table 5: largest ASes by number of anycast prefixes",
		Header: []string{"AS", "Organization", "IPv4 (/24)", "IPv6 (/48)"},
	}
	for _, r := range rows {
		t.Add(uint32(r.ASN), r.Name, fmtInt(r.V4), fmtInt(r.V6))
	}
	return t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 6 — BGPTools whole-prefix classification vs GCD (§5.8, App D)

// Table6 runs the BGPTools-style census and audits its prefixes against
// our GCD-confirmed set.
func (e *Env) Table6() ([]external.SizeRow, error) {
	bt, err := external.RunBGPTools(e.World, false, dayTable6)
	if err != nil {
		return nil, err
	}
	c, err := e.DailyCensus(dayTable6, false)
	if err != nil {
		return nil, err
	}
	g := make(map[int]bool)
	for _, id := range c.G() {
		g[id] = true
	}
	return bt.SizeTable(e.World, false, g), nil
}

// RenderTable6 prints the Table 6 layout.
func RenderTable6(w io.Writer, rows []external.SizeRow) error {
	t := stats.Table{
		Title:  "Table 6: BGP prefixes classified anycast by BGPTools, by size, with GCD verdicts of contained /24s",
		Header: []string{"Prefix size", "Occurrence", "Anycast", "Unicast", "Unresponsive"},
	}
	for _, r := range rows {
		t.Add(fmt.Sprintf("/%d", r.Bits), fmtInt(r.Occurrence), fmtInt(r.Anycast),
			fmtInt(r.Unicast), fmtInt(r.Unresponsive))
	}
	tot := external.Totals(rows)
	t.Add("Total", fmtInt(tot.Occurrence), fmtInt(tot.Anycast), fmtInt(tot.Unicast), fmtInt(tot.Unresponsive))
	return t.Render(w)
}
