package experiments

import (
	"io"
	"sort"

	"github.com/laces-project/laces/internal/gcdmeas"
	"github.com/laces-project/laces/internal/igreedy"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/platform"
	"github.com/laces-project/laces/internal/stats"
	"github.com/laces-project/laces/internal/traceroute"
)

// ---------------------------------------------------------------------------
// §5.2 future work — traceroute-assisted enumeration vs GCD

// EnumCompareRow compares site-enumeration methods for one operator.
type EnumCompareRow struct {
	Operator string
	// TrueSites is the generator's ground truth.
	TrueSites int
	// GCDSites is iGreedy's disjoint-disc lower bound.
	GCDSites int
	// TracerouteSites is the ACE-style router-fingerprint count.
	TracerouteSites int
}

// EnumComparison measures one representative prefix per modelled operator
// with both enumeration methods from the same Ark pool. The paper names
// traceroute the future-work route to better enumeration (§5.2, citing
// Fan et al.) because GCD merges sites in nearby metros — the §6
// Prague/Bratislava/Vienna case; router fingerprints separate them.
func (e *Env) EnumComparison() ([]EnumCompareRow, error) {
	day := dayGroundTruth
	vps, err := platform.Ark(e.World, day, false)
	if err != nil {
		return nil, err
	}
	at := netsim.DayTime(day)
	var rows []EnumCompareRow
	for oi := range e.World.Operators {
		op := &e.World.Operators[oi]
		if len(op.Sites) < 2 {
			continue
		}
		tg := e.representativePrefix(oi, day)
		if tg == nil {
			continue
		}
		rep := gcdmeas.Run(e.World, []int{tg.ID}, false, gcdmeas.Campaign{
			VPs: vps, Proto: packet.ICMP, At: at, Analysis: igreedy.Options{},
		})
		gcdSites := 0
		if out, ok := rep.Outcomes[tg.ID]; ok && out.Result.Anycast {
			gcdSites = out.Result.NumSites()
		}
		trSites, err := traceroute.EnumerateSites(e.World, vps, tg, traceroute.Options{At: at})
		if err != nil {
			return nil, err
		}
		rows = append(rows, EnumCompareRow{
			Operator:        op.Name,
			TrueSites:       len(op.Sites),
			GCDSites:        gcdSites,
			TracerouteSites: trSites,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].TrueSites > rows[j].TrueSites })
	return rows, nil
}

// representativePrefix returns an ICMP-responsive prefix of the operator
// that is anycast on the measurement day.
func (e *Env) representativePrefix(oi, day int) *netsim.Target {
	for i := range e.World.TargetsV4 {
		tg := &e.World.TargetsV4[i]
		if tg.Operator == oi && tg.Responsive[packet.ICMP] && tg.KindAt(day) == netsim.Anycast {
			return tg
		}
	}
	return nil
}

// RenderEnumComparison prints the method comparison.
func RenderEnumComparison(w io.Writer, rows []EnumCompareRow) error {
	t := stats.Table{
		Title:  "§5.2 future work: site enumeration — GCD vs traceroute fingerprints (one prefix per operator)",
		Header: []string{"operator", "true sites", "GCD", "traceroute"},
	}
	for _, r := range rows {
		t.Add(r.Operator, r.TrueSites, r.GCDSites, r.TracerouteSites)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := io.WriteString(w,
		"  both are lower bounds; traceroute separates nearby sites that GCD merges (§6)\n")
	return err
}
