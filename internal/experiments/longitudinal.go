package experiments

import (
	"fmt"
	"io"

	"github.com/laces-project/laces/internal/longitudinal"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/stats"
)

// longitudinalStride compresses the 534-day census for the experiment
// harness: every 7th day. Persistence counts scale accordingly (documented
// in EXPERIMENTS.md).
const longitudinalStride = 7

// History returns the shared longitudinal run (Fig 9 and Fig 10 share it).
func (e *Env) History() (*longitudinal.History, error) {
	e.histOnce.Do(func() {
		e.hist, e.histErr = longitudinal.Run(e.World, longitudinal.Config{
			Days:   534,
			Stride: longitudinalStride,
			Events: longitudinal.DefaultEvents(),
		})
	})
	return e.hist, e.histErr
}

// Fig9 returns the detection-count time series.
func (e *Env) Fig9() (*longitudinal.History, error) { return e.History() }

// RenderFig9 prints the per-day series for both families.
func RenderFig9(w io.Writer, h *longitudinal.History) error {
	for _, v6 := range []bool{false, true} {
		fam := "IPv4"
		if v6 {
			fam = "IPv6"
		}
		t := stats.Table{
			Title: fmt.Sprintf("Fig 9 (%s): detection counts by method and protocol over time", fam),
			Header: []string{"day", "hitlist", "AC ICMP", "AC TCP", "AC DNS",
				"GCD ICMP", "GCD TCP", "G total", "M total", "workers"},
		}
		for _, s := range h.Summaries(v6) {
			t.Add(s.Day, fmtInt(s.Hitlist),
				fmtInt(s.AC[packet.ICMP]), fmtInt(s.AC[packet.TCP]), fmtInt(s.AC[packet.DNS]),
				fmtInt(s.GCD[packet.ICMP]), fmtInt(s.GCD[packet.TCP]),
				fmtInt(s.GTotal), fmtInt(s.MTotal), s.Workers)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	t := stats.Table{
		Title:  "GCD_LS sweeps (§5.1.1/§7)",
		Header: []string{"day", "family", "anycast prefixes"},
	}
	for _, run := range h.GCDLS {
		fam := "IPv4"
		if run.V6 {
			fam = "IPv6"
		}
		t.Add(run.Day, fam, fmtInt(run.Anycast))
	}
	return t.Render(w)
}

// Fig10Result is the persistence distribution.
type Fig10Result struct {
	Stride  int
	Runs    int
	CDF     *stats.CDF
	Union   int
	AllDays int
	// GCD-restricted statistics (§5.1.6).
	GUnion   int
	GAllDays int
}

// Fig10 computes the cumulative persistence counts of Fig 10 from the
// shared longitudinal history.
func (e *Env) Fig10() (*Fig10Result, error) {
	h, err := e.History()
	if err != nil {
		return nil, err
	}
	union, all := h.UnionAnycast(false)
	gu, ga := h.UnionG(false)
	return &Fig10Result{
		Stride:   longitudinalStride,
		Runs:     len(h.Summaries(false)),
		CDF:      h.PersistenceCDF(false),
		Union:    union,
		AllDays:  all,
		GUnion:   gu,
		GAllDays: ga,
	}, nil
}

// RenderFig10 prints the persistence distribution.
func RenderFig10(w io.Writer, r *Fig10Result) error {
	if _, err := fmt.Fprintf(w,
		"Fig 10: persistence over %d runs (stride %d days)\n"+
			"  union ever-anycast: %s; detected on every run: %s (%.0f%%)\n"+
			"  GCD-confirmed union: %s; every run: %s (%.0f%%)\n",
		r.Runs, r.Stride,
		fmtInt(r.Union), fmtInt(r.AllDays), 100*float64(r.AllDays)/float64(max(1, r.Union)),
		fmtInt(r.GUnion), fmtInt(r.GAllDays), 100*float64(r.GAllDays)/float64(max(1, r.GUnion))); err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Cumulative count of prefixes anycast for at most X runs",
		Header: []string{"≤ runs", "cumulative prefixes"},
	}
	for _, q := range []int{1, 2, 5, 10, 20, 40, 60, r.Runs} {
		if q > r.Runs {
			break
		}
		t.Add(q, fmtInt(int(r.CDF.P(q)*float64(r.CDF.Len()))))
	}
	return t.Render(w)
}
