package experiments

import (
	"fmt"
	"io"

	"github.com/laces-project/laces/internal/chaos"
	"github.com/laces-project/laces/internal/core"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/platform"
	"github.com/laces-project/laces/internal/stats"
)

// dayChaosResilience is the census day the resilience experiment runs on;
// every built-in scenario's window covers it.
const dayChaosResilience = 180

// ChaosResilience runs the full registered chaos scenario suite: one daily
// census per scenario (same seed, same feedback seeding) scored against
// the simulator's anycast oracle, next to the clean baseline. This is the
// resilience table behind the census's "survived 17 months of incidents"
// claim: it quantifies how much accuracy each failure class costs.
func (e *Env) ChaosResilience(v6 bool) (*chaos.Report, error) {
	return e.ChaosResilienceScenarios(v6, chaos.Scenarios())
}

// ChaosResilienceScenarios scores a specific scenario list (tests use a
// subset to bound wall-clock).
func (e *Env) ChaosResilienceScenarios(v6 bool, scenarios []chaos.Scenario) (*chaos.Report, error) {
	baseline, err := e.DailyCensus(dayChaosResilience, v6)
	if err != nil {
		return nil, err
	}
	truth := e.responsiveTruth(dayChaosResilience, v6)
	rep := &chaos.Report{
		V6:       v6,
		Baseline: scoreCensus("baseline", "no faults injected", baseline, truth),
	}
	for _, sc := range scenarios {
		day := dayChaosResilience
		if !sc.ActiveOn(day) {
			if day = sc.FirstActiveDay(534); day < 0 {
				continue // never fires on the census timeline
			}
		}
		c, err := e.chaosCensus(day, v6, sc)
		if err != nil {
			return nil, fmt.Errorf("chaos scenario %s: %w", sc.Name, err)
		}
		t := truth
		if day != dayChaosResilience {
			t = e.responsiveTruth(day, v6)
		}
		rep.Scenarios = append(rep.Scenarios, scoreCensus(sc.Name, sc.Description, c, t))
	}
	return rep, nil
}

// chaosCensus runs one daily census under a scenario, with the same
// pipeline construction and feedback seeding as the cached clean census.
func (e *Env) chaosCensus(day int, v6 bool, sc chaos.Scenario) (*core.DailyCensus, error) {
	ls, err := e.GCDLS(day, v6)
	if err != nil {
		return nil, err
	}
	pipe, err := core.NewPipeline(e.World, core.Config{
		Deployment: e.Tangled,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(e.World, day, v6)
		},
	})
	if err != nil {
		return nil, err
	}
	pipe.SeedFeedback(v6, ls.IDs())
	return pipe.RunDaily(day, v6, core.DayOptions{Chaos: &sc})
}

// responsiveTruth is the anycast oracle restricted to targets at least one
// probing protocol can see — prefixes no probe can elicit a reply from are
// not recall failures of the pipeline.
func (e *Env) responsiveTruth(day int, v6 bool) map[int]bool {
	truth := e.World.GroundTruthAnycast(v6, day)
	out := make(map[int]bool, len(truth))
	for id := range truth {
		tg := e.World.TargetAt(v6, id)
		if tg.Responsive[packet.ICMP] || tg.Responsive[packet.TCP] || tg.Responsive[packet.DNS] {
			out[id] = true
		}
	}
	return out
}

// scoreCensus folds one census into a report row.
func scoreCensus(name, desc string, c *core.DailyCensus, truth map[int]bool) chaos.Outcome {
	g := stats.NewSet(c.G())
	m := stats.NewSet(c.M())
	return chaos.Outcome{
		Scenario:    name,
		Description: desc,
		Day:         c.DayIndex,
		Workers:     c.Workers,
		GCount:      len(g),
		MCount:      len(m),
		G:           chaos.Score(g, truth),
		M:           chaos.Score(m, truth),
	}
}

// RenderChaosResilience prints the resilience table.
func RenderChaosResilience(w io.Writer, r *chaos.Report) error { return r.Render(w) }
