package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/laces-project/laces/internal/chaos"
)

// TestChaosResilienceSuite exercises every registered scenario through a
// full daily census and asserts the resilience table's qualitative shape:
// GCD confirmation keeps its precision under every failure class, churn
// scenarios inflate ℳ, and outages reduce participation.
func TestChaosResilienceSuite(t *testing.T) {
	e := env(t)
	rep, err := e.ChaosResilience(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) < 6 {
		t.Fatalf("suite ran %d scenarios, want >= 6", len(rep.Scenarios))
	}
	base := rep.Baseline
	if base.GCount == 0 || base.MCount == 0 {
		t.Fatalf("degenerate baseline: |G|=%d |M|=%d", base.GCount, base.MCount)
	}
	if base.G.Precision() < 0.99 {
		t.Fatalf("baseline G precision %.3f", base.G.Precision())
	}
	byName := make(map[string]chaos.Outcome, len(rep.Scenarios))
	for _, o := range rep.Scenarios {
		byName[o.Scenario] = o
		// The GCD stage's precision is the census's headline robustness:
		// no failure class may make 𝒢 start lying.
		if o.G.Precision() < 0.99 {
			t.Errorf("%s: G precision dropped to %.3f", o.Scenario, o.G.Precision())
		}
	}
	if o := byName[chaos.ScenarioSiteOutage]; o.Workers >= base.Workers {
		t.Errorf("site outage kept %d workers (baseline %d)", o.Workers, base.Workers)
	}
	for _, churn := range []string{chaos.ScenarioFlappingUpstream, chaos.ScenarioClockSkew} {
		if o := byName[churn]; o.MCount <= base.MCount {
			t.Errorf("%s: M did not inflate (%d <= baseline %d)", churn, o.MCount, base.MCount)
		}
	}
	if o := byName[chaos.ScenarioLatencyStorm]; o.G.Recall() >= base.G.Recall() {
		t.Errorf("latency storm did not reduce G recall (%.3f >= %.3f)",
			o.G.Recall(), base.G.Recall())
	}

	var buf bytes.Buffer
	if err := RenderChaosResilience(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "baseline") || !strings.Contains(out, chaos.ScenarioSiteOutage) {
		t.Fatal("rendered table missing rows")
	}
}
