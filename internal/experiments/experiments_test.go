package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"github.com/laces-project/laces/internal/netsim"
)

// The shape tests run on a test-scale environment; each asserts the
// paper's qualitative result for its table or figure.
var (
	envOnce sync.Once
	testEnv *Env
)

func env(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() {
		e, err := NewEnv(netsim.TestConfig())
		if err != nil {
			t.Fatal(err)
		}
		testEnv = e
	})
	return testEnv
}

func TestTable1Shape(t *testing.T) {
	rows, err := env(t).Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Intersection == 0 {
			t.Fatalf("%s: no AC∩GCDLS agreement", r.Protocol)
		}
		// Paper: FNR 5.9-6.0%; accept generous test-scale noise but the
		// anycast-based stage must catch the vast majority.
		if r.FNRate > 0.2 {
			t.Errorf("%s: FNR %.1f%% too high", r.Protocol, 100*r.FNRate)
		}
	}
	// IPv4: a large unconfirmed share (Table 1: 58.5%), driven by the
	// global-unicast ℳ population.
	if share := float64(rows[0].NotGCDLS) / float64(rows[0].ACs); share < 0.3 {
		t.Errorf("v4 ¬GCDLS share = %.2f, want the paper's large-ℳ shape", share)
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ICMPv6") {
		t.Fatal("render missing rows")
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := env(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Bucket != "2" || rows[len(rows)-1].Bucket != "26-32" {
		t.Fatal("bucket layout wrong")
	}
	// Paper: the 2-receiver bucket is the largest and overwhelmingly ℳ
	// (4% confirmed); high buckets are overwhelmingly 𝒢 (≥99%).
	two := rows[0]
	if two.Candidates == 0 || two.OverlapPct > 40 {
		t.Fatalf("2-receiver bucket: %+v — should be mostly unconfirmed", two)
	}
	top := rows[len(rows)-1]
	if top.Candidates == 0 || top.OverlapPct < 90 {
		t.Fatalf("26-32 bucket: %+v — should be almost fully confirmed", top)
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := env(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// §5.4: our 32-site deployment finds more candidates than the
		// 12-site ccTLD platform, with substantial intersection.
		if r.Ours <= r.CcTLD {
			t.Errorf("%s: ours=%d should exceed ccTLD=%d", r.Protocol, r.Ours, r.CcTLD)
		}
		if r.Intersection == 0 || r.Intersection > r.CcTLD {
			t.Errorf("%s: intersection %d out of range", r.Protocol, r.Intersection)
		}
		if float64(r.Intersection) < 0.5*float64(r.CcTLD) {
			t.Errorf("%s: intersection %d too small vs ccTLD %d", r.Protocol, r.Intersection, r.CcTLD)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable3(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := env(t).Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("want 7 deployments + GCD_LS, got %d", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Deployment] = r
	}
	// Cost grows with VP count; GCD_LS costs the most by far.
	if !(byName["EU-NA"].Cost < byName["TANGLED (Vultr)"].Cost &&
		byName["TANGLED (Vultr)"].Cost < byName["Vultr+Melbicom"].Cost &&
		byName["Vultr+Melbicom"].Cost < byName["GCD_LS (full)"].Cost) {
		t.Fatalf("cost ordering broken: %+v", rows)
	}
	// Fewer VPs → more missed GCD_LS prefixes (EU-NA misses the most).
	if byName["EU-NA"].MissedLS <= byName["TANGLED (Vultr)"].MissedLS {
		t.Errorf("EU-NA should miss more than TANGLED: %d vs %d",
			byName["EU-NA"].MissedLS, byName["TANGLED (Vultr)"].MissedLS)
	}
	// Even two VPs catch the vast majority (paper: 84%).
	euna := byName["EU-NA"]
	if euna.MissedPct > 35 {
		t.Errorf("EU-NA missed %.0f%% — paper expects most anycast visible from 2 VPs", euna.MissedPct)
	}
	var buf bytes.Buffer
	if err := RenderTable4(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := env(t).Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("only %d operator rows", len(rows))
	}
	names := map[string]Table5Row{}
	for _, r := range rows {
		names[r.Name] = r
	}
	// Google leads IPv4; Cloudflare Spectrum leads IPv6 (Table 5).
	g, okG := names["Google Cloud"]
	cs, okS := names["Cloudflare Spectrum"]
	if !okG || !okS {
		t.Fatalf("hypergiants missing from top ASes: %+v", rows)
	}
	if g.V4 == 0 || cs.V6 == 0 {
		t.Fatalf("hypergiant counts empty: google=%+v spectrum=%+v", g, cs)
	}
	for _, r := range rows {
		if r.V4 > g.V4 {
			t.Errorf("%s has more v4 anycast than Google-like: %d > %d", r.Name, r.V4, g.V4)
		}
		if r.V6 > cs.V6 {
			t.Errorf("%s has more v6 anycast than Spectrum-like: %d > %d", r.Name, r.V6, cs.V6)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable5(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTable6Shape(t *testing.T) {
	rows, err := env(t).Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("size table rows: %d", len(rows))
	}
	tot := rows[0]
	tot.Occurrence = 0
	for _, r := range rows {
		tot.Occurrence += r.Occurrence
		tot.Anycast += r.Anycast
		tot.Unicast += r.Unicast
	}
	// The BGPTools whole-prefix assumption drags in unicast /24s.
	if tot.Unicast == 0 {
		t.Fatal("no unicast slots inside BGPTools prefixes — Table 6's point lost")
	}
	var buf bytes.Buffer
	if err := RenderTable6(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFig5Shape(t *testing.T) {
	series, err := env(t).Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("want 4 series, got %d", len(series))
	}
	// FP ordering: 13m > 1m >= 1s >= 0s (Fig 5).
	if !(series[0].TotalFPs > series[1].TotalFPs &&
		series[1].TotalFPs >= series[2].TotalFPs &&
		series[2].TotalFPs >= series[3].TotalFPs) {
		t.Fatalf("FP ordering broken: %d %d %d %d",
			series[0].TotalFPs, series[1].TotalFPs, series[2].TotalFPs, series[3].TotalFPs)
	}
	// FPs concentrate at 2 receiving VPs in every series.
	for _, s := range series {
		max := 0
		for n, c := range s.FPsByReceivers {
			if c > s.FPsByReceivers[max] {
				max = n
			}
			_ = c
		}
		if max != 2 {
			t.Errorf("%s: FP mode at %d receivers, want 2", s.Label, max)
		}
	}
	var buf bytes.Buffer
	if err := RenderFig5(&buf, series); err != nil {
		t.Fatal(err)
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := env(t).Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if r.Ark.Len() == 0 || r.Atlas.Len() == 0 {
		t.Fatal("empty CDFs")
	}
	// App B: Atlas (more VPs) achieves higher maximum enumeration.
	if r.AtlasVPs <= r.ArkVPs {
		t.Fatalf("Atlas pool (%d) should exceed Ark (%d)", r.AtlasVPs, r.ArkVPs)
	}
	if r.Atlas.Max() < r.Ark.Max() {
		t.Errorf("Atlas max enumeration %d below Ark %d", r.Atlas.Max(), r.Ark.Max())
	}
	// Hypergiant markers exist and dominate the tail.
	if len(r.Hypergiant) == 0 {
		t.Fatal("no hypergiant markers")
	}
	if r.Hypergiant["Cloudflare"] < r.Hypergiant["Google Cloud"] {
		t.Errorf("Cloudflare-like (%d) should out-enumerate Google-like (%d)",
			r.Hypergiant["Cloudflare"], r.Hypergiant["Google Cloud"])
	}
	var buf bytes.Buffer
	if err := RenderFig6(&buf, r); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolVennShape(t *testing.T) {
	for _, v6 := range []bool{false, true} {
		r, err := env(t).ProtocolVenn(v6)
		if err != nil {
			t.Fatal(err)
		}
		fam := "v4"
		if v6 {
			fam = "v6"
		}
		icmp, tcp, dns := r.Totals["ICMP"+fam], r.Totals["TCP"+fam], r.Totals["DNS"+fam]
		if !(icmp > tcp && tcp > dns && dns > 0) {
			t.Fatalf("%s protocol totals out of order: %d/%d/%d", fam, icmp, tcp, dns)
		}
		// Largest exclusive bucket: ICMP-only for IPv4 (Fig 13: 19,095 =
		// 57.7%); ICMP∩TCP for IPv6 (Fig 14's 7,643 bucket — the v6
		// hitlists derive from TCP services, §5.3.2).
		wantTop := "ICMP" + fam
		if v6 {
			wantTop = "ICMP" + fam + "∩TCP" + fam
		}
		if r.Rows[0].Label() != wantTop {
			t.Errorf("%s: largest bucket is %s, want %s", fam, r.Rows[0].Label(), wantTop)
		}
		var buf bytes.Buffer
		if err := RenderProtocolVenn(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := env(t).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// §5.6: Transits-only finds the most ACs but the fewest GCD-confirmed.
	if r.Totals["Transits-only"] <= r.Totals["Unmodified"] {
		t.Errorf("Transits-only ACs %d should exceed Unmodified %d",
			r.Totals["Transits-only"], r.Totals["Unmodified"])
	}
	if r.GCDConfirmed["Transits-only"] > r.GCDConfirmed["IXPs-only"] {
		t.Errorf("Transits-only confirmed %d should not exceed IXPs-only %d",
			r.GCDConfirmed["Transits-only"], r.GCDConfirmed["IXPs-only"])
	}
	// The three-way intersection is the largest bucket (Fig 8: 17,813).
	if len(r.Rows) == 0 || len(r.Rows[0].Members) != 3 {
		t.Fatalf("largest bucket should be the triple intersection: %+v", r.Rows[0])
	}
	var buf bytes.Buffer
	if err := RenderFig8(&buf, r); err != nil {
		t.Fatal(err)
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := env(t).Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatal("too few thinning steps")
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.SpacingKm != 1000 || last.SpacingKm != 100 {
		t.Fatal("spacing sweep endpoints wrong")
	}
	// App B: cost rises much faster than enumeration as spacing shrinks.
	if last.VPs <= first.VPs {
		t.Fatal("denser spacing should add VPs")
	}
	if last.Enumeration < first.Enumeration {
		t.Fatal("denser spacing should not lose sites")
	}
	if last.CostPct <= last.EnumPct {
		t.Errorf("cost increase (%.0f%%) should exceed enumeration increase (%.0f%%)",
			last.CostPct, last.EnumPct)
	}
	var buf bytes.Buffer
	if err := RenderFig11(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := env(t).Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Probed == 0 || r.Stats.Unsupported == 0 {
		t.Fatalf("census stats degenerate: %+v", r.Stats)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("too few record buckets: %d", len(r.Rows))
	}
	// Enumeration correlates: buckets with more CHAOS records have higher
	// anycast-based enumeration on average (compare first vs last).
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.ChaosRecords <= first.ChaosRecords {
		t.Fatal("rows not ordered by record count")
	}
	if last.AvgAnycast <= first.AvgAnycast {
		t.Errorf("enumeration does not grow with CHAOS records: %.1f vs %.1f",
			first.AvgAnycast, last.AvgAnycast)
	}
	var buf bytes.Buffer
	if err := RenderFig12(&buf, r); err != nil {
		t.Fatal(err)
	}
}

func TestPartialAnycastSweepShape(t *testing.T) {
	r, err := env(t).PartialAnycastSweep()
	if err != nil {
		t.Fatal(err)
	}
	if r.AnycastPrefixes == 0 || r.Partial == 0 {
		t.Fatalf("sweep degenerate: %+v", r)
	}
	// §5.7: partial anycast is a small share (8%) of anycast prefixes.
	if r.PartialPct > 30 {
		t.Errorf("partial share %.0f%% too high", r.PartialPct)
	}
	var buf bytes.Buffer
	if err := RenderSweep(&buf, r); err != nil {
		t.Fatal(err)
	}
}

func TestGroundTruthShape(t *testing.T) {
	rows, err := env(t).GroundTruth(false)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ValidationRow{}
	for _, r := range rows {
		byName[r.Operator] = r
	}
	// §6: Cloudflare fully accurate for IPv4 (no FPs, no FNs).
	cf := byName["Cloudflare"]
	if cf.Prefixes == 0 || cf.Missed > 0 || cf.FPs > 0 {
		t.Errorf("Cloudflare-like validation not clean: %+v", cf)
	}
	// Quad9 and root-like DNS operators detected.
	if byName["Quad9"].InG == 0 {
		t.Errorf("Quad9-like not GCD-confirmed: %+v", byName["Quad9"])
	}
	// G-Root is DNS-only: never GCD-measurable, detectable via ℳ at best.
	groot := byName["G-Root"]
	if groot.InG > 0 {
		t.Errorf("G-Root cannot be GCD-confirmed (ICMP/TCP-unresponsive): %+v", groot)
	}
	var buf bytes.Buffer
	if err := RenderValidation(&buf, rows, false); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryFiguresShape(t *testing.T) {
	if testing.Short() {
		t.Skip("longitudinal history in -short mode")
	}
	e := env(t)
	h, err := e.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Summaries(false)) == 0 {
		t.Fatal("no longitudinal summaries")
	}
	r, err := e.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if r.Union == 0 || r.AllDays == 0 {
		t.Fatalf("persistence degenerate: %+v", r)
	}
	var buf bytes.Buffer
	if err := RenderFig9(&buf, h); err != nil {
		t.Fatal(err)
	}
	if err := RenderFig10(&buf, r); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllRendersEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full driver sweep in -short mode")
	}
	var buf bytes.Buffer
	if err := env(t).RunAll(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
		"Fig 5", "Fig 6", "Fig 7/13", "Fig 14", "Fig 8", "Fig 11", "Fig 12",
		"GCD_IPv4 sweep", "ground-truth validation",
		"traceroute decomposition of M", "site enumeration",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestMDecompositionShape(t *testing.T) {
	r, err := env(t).MDecomposition()
	if err != nil {
		t.Fatal(err)
	}
	if r.MTotal == 0 {
		t.Fatal("empty M set")
	}
	if len(r.TopOrigins) == 0 {
		t.Fatal("no origin decomposition")
	}
	// §5.1.3: the Microsoft-style global-BGP AS dominates ℳ...
	top := r.TopOrigins[0]
	if top.Origin != 8075 {
		t.Errorf("top M origin = AS%d (%s), want the global-BGP AS 8075", top.Origin, top.Name)
	}
	// ...and traceroute confirms the bulk of its prefixes as globally
	// announced unicast (multi-PoP ingress, single server).
	if top.GlobalBGP < top.M/2 {
		t.Errorf("only %d/%d of the top origin's M prefixes confirmed global-BGP", top.GlobalBGP, top.M)
	}
	if r.GlobalBGP == 0 || r.GlobalBGP > r.MTotal {
		t.Errorf("global-BGP total %d out of range (M=%d)", r.GlobalBGP, r.MTotal)
	}
	if r.TracerouteProbes == 0 {
		t.Error("traceroute stage reported no probing cost")
	}
	var buf bytes.Buffer
	if err := RenderMDecomposition(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "8075") {
		t.Fatal("render missing the global-BGP AS")
	}
}

func TestEnumComparisonShape(t *testing.T) {
	rows, err := env(t).EnumComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("only %d operators compared", len(rows))
	}
	var tracerouteWins, gcdZeroTracerouteFinds bool
	for _, r := range rows {
		// Both methods are lower bounds on the truth.
		if r.GCDSites > r.TrueSites {
			t.Errorf("%s: GCD %d exceeds truth %d", r.Operator, r.GCDSites, r.TrueSites)
		}
		if r.TracerouteSites > r.TrueSites {
			t.Errorf("%s: traceroute %d exceeds truth %d", r.Operator, r.TracerouteSites, r.TrueSites)
		}
		if r.TracerouteSites > r.GCDSites {
			tracerouteWins = true
		}
		if r.GCDSites == 0 && r.TracerouteSites >= 2 {
			gcdZeroTracerouteFinds = true
		}
	}
	// §5.2/§6: router fingerprints separate sites GCD merges — at least
	// one regional deployment must be invisible to GCD yet enumerated by
	// traceroute, and traceroute must win somewhere.
	if !tracerouteWins {
		t.Error("traceroute never beat GCD enumeration")
	}
	if !gcdZeroTracerouteFinds {
		t.Error("no GCD-invisible deployment enumerated by traceroute (the ccTLD case)")
	}
	var buf bytes.Buffer
	if err := RenderEnumComparison(&buf, rows); err != nil {
		t.Fatal(err)
	}
}
