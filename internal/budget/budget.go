// Package budget is the responsible-probing governance layer of the
// census pipeline (R3, §4.2.2). The paper's rate.Limiter/Pacer bound how
// fast LACeS probes; this package bounds how much and whom: a
// deterministic probe-budget ledger (per-day global, per-origin-AS and
// per-prefix caps), an opt-out registry honouring networks that asked not
// to be measured, and an adaptive rate controller that steps the
// effective probing rate down in powers of two when abuse complaints
// arrive — mirroring §5.5.2's result that census accuracy survives at
// 1/8th the normal rate.
//
// The determinism contract mirrors internal/par's: admission decisions
// are made in a sequential pre-pass over each stage's target list (the
// same total order the sequential loop uses), so the set of admitted
// targets — and therefore the census document — is byte-identical at
// every Parallelism setting. The ledger's counters are atomic, so the
// parallel shards that later execute the admitted probes can charge
// actual-transmission accounting concurrently without a lock.
//
// All budget accounting is in probe units of demand: a target presented
// to the ledger demands its worst-case transmission count (sites for the
// anycast-based stage, VPs × attempts for GCD). Spent + Skipped ==
// Demanded holds exactly by construction, which is the reconciliation
// the published responsibility block is audited against.
package budget

import (
	"fmt"
	"strconv"
	"strings"
)

// Budget caps one census day's probing. Each cap is in probes per day;
// zero means unlimited, so the zero value disables governance entirely
// and a pipeline configured with it is byte-identical to one without a
// budget.
type Budget struct {
	// DailyProbes caps the total probes charged per census day.
	DailyProbes int64
	// PerASProbes caps the probes charged against any single origin AS
	// per census day — the per-network sensitivity knob.
	PerASProbes int64
	// PerPrefixProbes caps the probes charged against any single target
	// prefix per census day.
	PerPrefixProbes int64
}

// IsZero reports whether the budget is the zero value (unlimited).
func (b Budget) IsZero() bool {
	return b.DailyProbes == 0 && b.PerASProbes == 0 && b.PerPrefixProbes == 0
}

// String renders the budget in ParseBudget's syntax.
func (b Budget) String() string {
	if b.IsZero() {
		return "unlimited"
	}
	var parts []string
	if b.DailyProbes > 0 {
		parts = append(parts, "daily:"+strconv.FormatInt(b.DailyProbes, 10))
	}
	if b.PerASProbes > 0 {
		parts = append(parts, "as:"+strconv.FormatInt(b.PerASProbes, 10))
	}
	if b.PerPrefixProbes > 0 {
		parts = append(parts, "prefix:"+strconv.FormatInt(b.PerPrefixProbes, 10))
	}
	return strings.Join(parts, ",")
}

// ParseBudget parses a budget spec: either a bare probe count ("250000",
// the global daily cap) or comma-separated key:value pairs with keys
// daily, as and prefix ("daily:250000,as:5000,prefix:200"). An empty
// string is the zero (unlimited) budget.
func ParseBudget(s string) (Budget, error) {
	var b Budget
	s = strings.TrimSpace(s)
	if s == "" {
		return b, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n < 0 {
			return b, fmt.Errorf("budget: negative cap %d", n)
		}
		b.DailyProbes = n
		return b, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return Budget{}, fmt.Errorf("budget: %q is neither a probe count nor key:value (daily, as, prefix)", part)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil || n < 0 {
			return Budget{}, fmt.Errorf("budget: bad cap %q for %q", val, key)
		}
		switch strings.TrimSpace(key) {
		case "daily":
			b.DailyProbes = n
		case "as":
			b.PerASProbes = n
		case "prefix":
			b.PerPrefixProbes = n
		default:
			return Budget{}, fmt.Errorf("budget: unknown cap %q (daily, as, prefix)", key)
		}
	}
	return b, nil
}

// Decision is the ledger's verdict on one target.
type Decision uint8

// Admission decisions.
const (
	// Admitted: the target may be probed; its demand was charged.
	Admitted Decision = iota
	// DeniedBudget: probing the target would exceed a configured cap.
	DeniedBudget
	// DeniedOptOut: the target's prefix or origin AS is in the opt-out
	// registry. Opt-out denials are never charged against the budget.
	DeniedOptOut
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Admitted:
		return "admitted"
	case DeniedBudget:
		return "denied-budget"
	case DeniedOptOut:
		return "denied-optout"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}

// Usage is one measurement stage's governance accounting, in budget
// units of demand. The identity Spent + Skipped == Demanded holds by
// construction (Record maintains it), which is what the published
// responsibility block reconciles against.
type Usage struct {
	// Demanded is the total probe demand presented to the ledger.
	Demanded int64 `json:"demanded"`
	// Spent is the demand charged for admitted targets.
	Spent int64 `json:"spent"`
	// Skipped is the demand denied — by a cap or by the opt-out
	// registry. Always Demanded - Spent.
	Skipped int64 `json:"skipped"`
	// OptOutProbes is the slice of Skipped attributable to opt-outs.
	OptOutProbes int64 `json:"optout_probes,omitempty"`
	// OptOutTargets counts probing decisions suppressed by the opt-out
	// registry. A decision is one (target, stage-run) presentation: a
	// target probed by three protocol runs counts three times, mirroring
	// the three measurements that were not sent.
	OptOutTargets int `json:"optout_targets,omitempty"`
	// BudgetTargets counts probing decisions suppressed by a budget cap
	// (same per-stage-run granularity as OptOutTargets).
	BudgetTargets int `json:"budget_targets,omitempty"`
}

// Record folds one admission decision for a target demanding `probes`
// units into the usage.
func (u *Usage) Record(d Decision, probes int64) {
	u.Demanded += probes
	switch d {
	case Admitted:
		u.Spent += probes
	case DeniedBudget:
		u.Skipped += probes
		u.BudgetTargets++
	case DeniedOptOut:
		u.Skipped += probes
		u.OptOutProbes += probes
		u.OptOutTargets++
	}
}

// Add accumulates another stage's usage.
func (u *Usage) Add(v Usage) {
	u.Demanded += v.Demanded
	u.Spent += v.Spent
	u.Skipped += v.Skipped
	u.OptOutProbes += v.OptOutProbes
	u.OptOutTargets += v.OptOutTargets
	u.BudgetTargets += v.BudgetTargets
}

// Reconciles reports whether the accounting identity holds.
func (u Usage) Reconciles() bool { return u.Spent+u.Skipped == u.Demanded }
