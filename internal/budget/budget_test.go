package budget

import (
	"net/netip"
	"strings"
	"sync"
	"testing"

	"github.com/laces-project/laces/internal/netsim"
)

func mkTarget(id int, prefix string, origin netsim.ASN) *netsim.Target {
	p := netip.MustParsePrefix(prefix)
	return &netsim.Target{ID: id, Prefix: p, Addr: p.Addr(), Origin: origin}
}

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in      string
		want    Budget
		wantErr bool
	}{
		{"", Budget{}, false},
		{"250000", Budget{DailyProbes: 250000}, false},
		{"daily:100,as:10,prefix:2", Budget{DailyProbes: 100, PerASProbes: 10, PerPrefixProbes: 2}, false},
		{"as:10", Budget{PerASProbes: 10}, false},
		{" prefix:7 ", Budget{PerPrefixProbes: 7}, false},
		{"-5", Budget{}, true},
		{"daily:x", Budget{}, true},
		{"weekly:5", Budget{}, true},
		{"nonsense", Budget{}, true},
	}
	for _, c := range cases {
		got, err := ParseBudget(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseBudget(%q): err = %v, wantErr = %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseBudget(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if !(Budget{}).IsZero() || (Budget{DailyProbes: 1}).IsZero() {
		t.Fatal("IsZero wrong")
	}
	if s := (Budget{DailyProbes: 5, PerASProbes: 2}).String(); s != "daily:5,as:2" {
		t.Fatalf("String() = %q", s)
	}
}

func TestLedgerCaps(t *testing.T) {
	l := NewLedger(Budget{DailyProbes: 100, PerASProbes: 60, PerPrefixProbes: 30}, nil)
	g := l.Gate(0)
	a1 := mkTarget(1, "10.0.0.0/24", 65001)
	a2 := mkTarget(2, "10.0.1.0/24", 65001)
	b1 := mkTarget(3, "10.1.0.0/24", 65002)

	if d := g.Admit(a1, 30); d != Admitted {
		t.Fatalf("a1 first 30: %v", d)
	}
	// Per-prefix cap: a second charge against the same prefix busts 30.
	if d := g.Admit(a1, 1); d != DeniedBudget {
		t.Fatalf("a1 over prefix cap: %v", d)
	}
	// Per-AS cap: 30 already charged to AS65001; 31 more busts 60.
	if d := g.Admit(a2, 31); d != DeniedBudget {
		t.Fatalf("a2 over AS cap: %v", d)
	}
	if d := g.Admit(a2, 30); d != Admitted {
		t.Fatalf("a2 at AS cap: %v", d)
	}
	// Global cap: 60 spent; 41 more busts 100.
	if d := g.Admit(b1, 41); d != DeniedBudget {
		t.Fatalf("b1 over daily cap: %v", d)
	}
	if d := g.Admit(b1, 30); d != Admitted {
		t.Fatalf("b1 within all caps: %v", d)
	}
	if got := l.Spent(0); got != 90 {
		t.Fatalf("spent = %d, want 90", got)
	}
	if got := l.Remaining(0); got != 10 {
		t.Fatalf("remaining = %d, want 10", got)
	}
	// A new day starts fresh.
	if d := l.Gate(1).Admit(a1, 30); d != Admitted {
		t.Fatalf("day 1 a1: %v", d)
	}
	if got := l.Spent(0); got != 90 {
		t.Fatalf("day 0 spent changed to %d", got)
	}
}

func TestLedgerZeroValueAdmitsEverything(t *testing.T) {
	l := NewLedger(Budget{}, nil)
	g := l.Gate(0)
	tg := mkTarget(1, "10.0.0.0/24", 65001)
	for i := 0; i < 1000; i++ {
		if d := g.Admit(tg, 1_000_000); d != Admitted {
			t.Fatalf("zero budget denied at %d: %v", i, d)
		}
	}
	var nilGate *Gate
	if d := nilGate.Admit(tg, 1); d != Admitted {
		t.Fatalf("nil gate: %v", d)
	}
	nilGate.Observe(5) // must not panic
	var nilLedger *Ledger
	if nilLedger.Gate(0) != nil {
		t.Fatal("nil ledger must yield nil gate")
	}
	if nilLedger.Remaining(3) != -1 || nilLedger.Spent(3) != 0 {
		t.Fatal("nil ledger accounting")
	}
}

func TestRegistryLoadAndMatch(t *testing.T) {
	const file = `
# opted-out networks
1.2.3.0/24
prefix 10.9.0.0/24   # keyword form
AS64500
as 64501
`
	r, err := LoadRegistry(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	want := []string{"1.2.3.0/24", "10.9.0.0/24", "AS64500", "AS64501"}
	got := r.Entries()
	if len(got) != len(want) {
		t.Fatalf("Entries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Entries[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if e, ok := r.Match(netip.MustParsePrefix("1.2.3.0/24"), 1); !ok || e != "1.2.3.0/24" {
		t.Fatalf("prefix match: %q %v", e, ok)
	}
	if e, ok := r.Match(netip.MustParsePrefix("5.5.5.0/24"), 64500); !ok || e != "AS64500" {
		t.Fatalf("AS match: %q %v", e, ok)
	}
	if _, ok := r.Match(netip.MustParsePrefix("5.5.5.0/24"), 1); ok {
		t.Fatal("unexpected match")
	}
	if e, ok := r.MatchAddr(netip.MustParseAddr("1.2.3.77")); !ok || e != "1.2.3.0/24" {
		t.Fatalf("addr match: %q %v", e, ok)
	}
	if _, ok := r.MatchAddr(netip.MustParseAddr("9.9.9.9")); ok {
		t.Fatal("unexpected addr match")
	}

	for _, bad := range []string{"banana", "prefix", "a b c", "frob 1.2.3.0/24"} {
		if _, err := LoadRegistry(strings.NewReader(bad)); err == nil {
			t.Errorf("LoadRegistry(%q) did not fail", bad)
		}
	}
}

func TestLedgerOptOutAuditTrail(t *testing.T) {
	r := NewRegistry()
	r.AddPrefix(netip.MustParsePrefix("1.2.3.0/24"))
	r.AddAS(64500)
	l := NewLedger(Budget{DailyProbes: 1000}, r)
	g := l.Gate(0)

	opted := mkTarget(1, "1.2.3.0/24", 65001)
	asOpted := mkTarget(2, "7.7.7.0/24", 64500)
	clean := mkTarget(3, "8.8.8.0/24", 65001)

	if d := g.Admit(opted, 16); d != DeniedOptOut {
		t.Fatalf("opted prefix: %v", d)
	}
	if d := g.Admit(opted, 16); d != DeniedOptOut {
		t.Fatalf("opted prefix again: %v", d)
	}
	if d := g.Admit(asOpted, 16); d != DeniedOptOut {
		t.Fatalf("opted AS: %v", d)
	}
	if d := g.Admit(clean, 16); d != Admitted {
		t.Fatalf("clean target: %v", d)
	}
	// Opt-out denials are never charged to the budget.
	if got := l.Spent(0); got != 16 {
		t.Fatalf("spent = %d, want 16", got)
	}
	touched := r.Touched()
	if len(touched) != 2 {
		t.Fatalf("Touched = %+v", touched)
	}
	if touched[0].Entry != "1.2.3.0/24" || touched[0].Targets != 2 || touched[0].Probes != 32 {
		t.Fatalf("prefix touch = %+v", touched[0])
	}
	if touched[1].Entry != "AS64500" || touched[1].Targets != 1 || touched[1].Probes != 16 {
		t.Fatalf("AS touch = %+v", touched[1])
	}
}

func TestUsageRecordReconciles(t *testing.T) {
	var u Usage
	u.Record(Admitted, 10)
	u.Record(DeniedBudget, 5)
	u.Record(DeniedOptOut, 3)
	if !u.Reconciles() {
		t.Fatalf("usage does not reconcile: %+v", u)
	}
	if u.Demanded != 18 || u.Spent != 10 || u.Skipped != 8 ||
		u.OptOutProbes != 3 || u.OptOutTargets != 1 || u.BudgetTargets != 1 {
		t.Fatalf("usage = %+v", u)
	}
	var sum Usage
	sum.Add(u)
	sum.Add(u)
	if sum.Demanded != 36 || !sum.Reconciles() {
		t.Fatalf("sum = %+v", sum)
	}
}

func TestStepRate(t *testing.T) {
	cases := []struct {
		complaints, maxSteps int
		want                 float64
		wantSteps            int
	}{
		{0, 0, 8000, 0},
		{1, 0, 4000, 1},
		{2, 0, 2000, 2},
		{3, 0, 1000, 3},
		{9, 0, 1000, 3}, // floored at 1/8th
		{-2, 0, 8000, 0},
		{5, 5, 250, 5},
	}
	for _, c := range cases {
		got, steps := StepRate(8000, c.complaints, c.maxSteps)
		if got != c.want || steps != c.wantSteps {
			t.Errorf("StepRate(8000, %d, %d) = %v/%d, want %v/%d",
				c.complaints, c.maxSteps, got, steps, c.want, c.wantSteps)
		}
	}
}

// TestLedgerConcurrentAccounting hammers Admit/Observe from goroutines;
// run under -race this pins the shard-safe accounting claim.
func TestLedgerConcurrentAccounting(t *testing.T) {
	r := NewRegistry()
	r.AddAS(64500)
	l := NewLedger(Budget{DailyProbes: 1 << 40}, r)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := l.Gate(w % 2)
			tg := mkTarget(w, "10.0.0.0/24", netsim.ASN(65000+w%3))
			opted := mkTarget(100+w, "11.0.0.0/24", 64500)
			for i := 0; i < 500; i++ {
				g.Admit(tg, 2)
				g.Admit(opted, 1)
				g.Observe(3)
			}
		}(w)
	}
	wg.Wait()
	if got := l.Spent(0) + l.Spent(1); got != 8*500*2 {
		t.Fatalf("spent = %d, want %d", got, 8*500*2)
	}
	if got := l.Observed(0) + l.Observed(1); got != 8*500*3 {
		t.Fatalf("observed = %d, want %d", got, 8*500*3)
	}
	var targets int64
	for _, tc := range r.Touched() {
		targets += tc.Targets
	}
	if targets != 8*500 {
		t.Fatalf("audit targets = %d, want %d", targets, 8*500)
	}
}
