package budget

// DefaultMaxRateSteps floors the adaptive rate controller at 1/8th of
// the configured rate — the slowest setting §5.5.2 shows preserves
// census accuracy.
const DefaultMaxRateSteps = 3

// StepRate is the adaptive rate controller: each complaint signal steps
// the effective probing rate down by a power of two, floored after
// maxSteps halvings (<= 0 selects DefaultMaxRateSteps, i.e. 1/8th).
// It returns the effective rate and the number of steps actually taken.
//
// The controller is memoryless and deterministic: the effective rate is
// a pure function of (base, complaints), so a census day re-run with the
// same chaos scenario paces identically.
func StepRate(base float64, complaints, maxSteps int) (float64, int) {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxRateSteps
	}
	steps := complaints
	if steps < 0 {
		steps = 0
	}
	if steps > maxSteps {
		steps = maxSteps
	}
	return base / float64(int64(1)<<uint(steps)), steps
}
