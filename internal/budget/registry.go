package budget

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/laces-project/laces/internal/netsim"
)

// Registry is the opt-out list: networks that asked not to be measured.
// It holds exact census prefixes and AS-level entries; every suppression
// is recorded in an audit trail (Touched) so an operator can show an
// opted-out network exactly what the census did — and did not — send.
//
// Lookups are safe for concurrent use; the audit trail is updated under
// a mutex, and its deterministic order comes from sorting at read time,
// not from update order.
type Registry struct {
	prefixes map[netip.Prefix]bool
	asns     map[netsim.ASN]bool

	mu      sync.Mutex
	touched map[string]*Touch
}

// Touch is one audit-trail row: an opt-out entry and what it suppressed.
type Touch struct {
	// Entry is the registry entry as loaded ("1.2.3.0/24" or "AS64500").
	Entry string `json:"entry"`
	// Targets counts probing decisions the entry suppressed — one per
	// (target, stage-run) presentation, so a target covered by three
	// protocol runs counts three times.
	Targets int64 `json:"targets"`
	// Probes counts the probe demand the entry suppressed.
	Probes int64 `json:"probes"`
}

// NewRegistry returns an empty opt-out registry.
func NewRegistry() *Registry {
	return &Registry{
		prefixes: make(map[netip.Prefix]bool),
		asns:     make(map[netsim.ASN]bool),
		touched:  make(map[string]*Touch),
	}
}

// AddPrefix registers an exact prefix opt-out.
func (r *Registry) AddPrefix(p netip.Prefix) { r.prefixes[p.Masked()] = true }

// AddAS registers an AS-level opt-out: every prefix originated by the AS
// is suppressed.
func (r *Registry) AddAS(a netsim.ASN) { r.asns[a] = true }

// Len returns the number of registered entries (0 for a nil registry).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.prefixes) + len(r.asns)
}

// Entries returns the registered entries in deterministic order:
// prefixes in canonical numeric order, then ASes ascending.
func (r *Registry) Entries() []string {
	pfx := make([]netip.Prefix, 0, len(r.prefixes))
	for p := range r.prefixes {
		pfx = append(pfx, p)
	}
	sort.Slice(pfx, func(i, j int) bool {
		if c := pfx[i].Addr().Compare(pfx[j].Addr()); c != 0 {
			return c < 0
		}
		return pfx[i].Bits() < pfx[j].Bits()
	})
	asns := make([]netsim.ASN, 0, len(r.asns))
	for a := range r.asns {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	out := make([]string, 0, len(pfx)+len(asns))
	for _, p := range pfx {
		out = append(out, p.String())
	}
	for _, a := range asns {
		out = append(out, fmt.Sprintf("AS%d", a))
	}
	return out
}

// Match reports whether a (prefix, origin) pair is opted out, returning
// the matching entry. Exact-prefix entries win over AS entries so the
// audit trail names the most specific opt-out.
func (r *Registry) Match(pfx netip.Prefix, origin netsim.ASN) (string, bool) {
	if r == nil {
		return "", false
	}
	if r.prefixes[pfx.Masked()] {
		return pfx.Masked().String(), true
	}
	if r.asns[origin] {
		return fmt.Sprintf("AS%d", origin), true
	}
	return "", false
}

// MatchAddr reports whether an address falls inside any opted-out prefix
// — the lookup the orchestrator's streaming path uses, where targets are
// bare addresses with no origin information. Registries are small
// (operator-maintained), so a linear scan is fine.
func (r *Registry) MatchAddr(addr netip.Addr) (string, bool) {
	if r == nil {
		return "", false
	}
	for p := range r.prefixes {
		if p.Contains(addr) {
			return p.String(), true
		}
	}
	return "", false
}

// touch records a suppression in the audit trail.
func (r *Registry) touch(entry string, probes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.touched[entry]
	if t == nil {
		t = &Touch{Entry: entry}
		r.touched[entry] = t
	}
	t.Targets++
	t.Probes += probes
}

// Touched returns the audit trail: every registry entry that suppressed
// probing, with how much it suppressed, in deterministic entry order.
func (r *Registry) Touched() []Touch {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Touch, 0, len(r.touched))
	for _, t := range r.touched {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entry < out[j].Entry })
	return out
}

// LoadRegistry parses an opt-out file. One entry per line; # starts a
// comment. Accepted forms:
//
//	1.2.3.0/24           exact prefix
//	prefix 1.2.3.0/24    exact prefix, keyword form
//	AS64500              origin AS
//	as 64500             origin AS, keyword form
func LoadRegistry(rd io.Reader) (*Registry, error) {
	r := NewRegistry()
	sc := bufio.NewScanner(rd)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		token := fields[0]
		if len(fields) == 2 {
			switch strings.ToLower(fields[0]) {
			case "prefix", "as":
				token = fields[1]
			default:
				return nil, fmt.Errorf("budget: opt-out line %d: unknown keyword %q", line, fields[0])
			}
		} else if len(fields) > 2 {
			return nil, fmt.Errorf("budget: opt-out line %d: too many fields", line)
		}
		if p, err := netip.ParsePrefix(token); err == nil {
			r.AddPrefix(p)
			continue
		}
		num := strings.TrimPrefix(strings.ToUpper(token), "AS")
		if n, err := strconv.ParseUint(num, 10, 32); err == nil {
			r.AddAS(netsim.ASN(n))
			continue
		}
		return nil, fmt.Errorf("budget: opt-out line %d: %q is neither a prefix nor an AS", line, token)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("budget: reading opt-out registry: %w", err)
	}
	return r, nil
}

// LoadRegistryFile loads an opt-out registry from a file path.
func LoadRegistryFile(path string) (*Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("budget: opening opt-out registry: %w", err)
	}
	defer f.Close()
	r, err := LoadRegistry(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
