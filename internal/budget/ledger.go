package budget

import (
	"net/netip"
	"sync"
	"sync/atomic"

	"github.com/laces-project/laces/internal/netsim"
)

// Ledger is the probe-budget accountant: per-census-day state holding
// the global, per-AS and per-prefix charge counters, plus the opt-out
// registry consulted before any cap.
//
// Admission (Gate.Admit) is check-and-charge under a per-day mutex and
// MUST be called in a deterministic target order — the measurement
// stages guarantee this with a sequential pre-pass over their target
// lists before sharding the probing itself. Observation counters
// (Gate.Observe) are atomic and may be charged concurrently from
// parallel shards.
type Ledger struct {
	budget Budget
	reg    *Registry

	// Lifetime decision telemetry across all days, atomically updated
	// at each admission verdict. Read via Decisions; never consulted by
	// admission logic, so counting cannot change what is admitted.
	admitted     atomic.Int64
	deniedBudget atomic.Int64
	deniedOptOut atomic.Int64

	mu   sync.Mutex
	days map[int]*dayState
}

// Decisions returns the ledger's lifetime admission telemetry: how many
// presentations were admitted, denied by a cap and denied by the
// opt-out registry. Zero for a nil ledger.
func (l *Ledger) Decisions() (admitted, deniedBudget, deniedOptOut int64) {
	if l == nil {
		return 0, 0, 0
	}
	return l.admitted.Load(), l.deniedBudget.Load(), l.deniedOptOut.Load()
}

// count records one decision into the lifetime telemetry.
func (l *Ledger) count(d Decision) Decision {
	switch d {
	case Admitted:
		l.admitted.Add(1)
	case DeniedBudget:
		l.deniedBudget.Add(1)
	case DeniedOptOut:
		l.deniedOptOut.Add(1)
	}
	return d
}

// dayState is one census day's charge counters.
type dayState struct {
	mu        sync.Mutex
	spent     atomic.Int64 // budget units charged (admitted demand)
	observed  atomic.Int64 // probes actually transmitted (shard-charged)
	perAS     map[netsim.ASN]int64
	perPrefix map[netip.Prefix]int64
}

// NewLedger builds a ledger over a budget and an optional opt-out
// registry (nil means no opt-outs).
func NewLedger(b Budget, reg *Registry) *Ledger {
	return &Ledger{budget: b, reg: reg, days: make(map[int]*dayState)}
}

// Budget returns the configured caps.
func (l *Ledger) Budget() Budget { return l.budget }

// Registry returns the attached opt-out registry (nil when none).
func (l *Ledger) Registry() *Registry {
	if l == nil {
		return nil
	}
	return l.reg
}

// day returns (creating if needed) the state for a census day.
func (l *Ledger) day(d int) *dayState {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.days[d]
	if st == nil {
		st = &dayState{
			perAS:     make(map[netsim.ASN]int64),
			perPrefix: make(map[netip.Prefix]int64),
		}
		l.days[d] = st
	}
	return st
}

// Spent returns the budget units charged on a census day.
func (l *Ledger) Spent(day int) int64 {
	if l == nil {
		return 0
	}
	return l.day(day).spent.Load()
}

// Observed returns the probes parallel shards reported actually
// transmitting on a census day.
func (l *Ledger) Observed(day int) int64 {
	if l == nil {
		return 0
	}
	return l.day(day).observed.Load()
}

// Remaining returns the unspent global daily budget, or -1 when the
// daily cap is unlimited.
func (l *Ledger) Remaining(day int) int64 {
	if l == nil || l.budget.DailyProbes == 0 {
		return -1
	}
	rem := l.budget.DailyProbes - l.day(day).spent.Load()
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Gate binds the ledger to one census day — the handle a measurement
// stage consults. A nil ledger yields a nil gate, which admits
// everything at zero cost (the ungoverned fast path).
func (l *Ledger) Gate(day int) *Gate {
	if l == nil {
		return nil
	}
	return &Gate{led: l, st: l.day(day)}
}

// Gate is a ledger bound to a census day.
type Gate struct {
	led *Ledger
	st  *dayState
}

// Admit decides whether one target may be probed, charging its demand of
// `probes` budget units on admission. The opt-out registry is consulted
// first (opt-out denials are never charged); then every configured cap
// must have room, or the target is denied without partial charging.
// Calls must be made in deterministic target order — see the package
// comment's determinism contract.
func (g *Gate) Admit(tg *netsim.Target, probes int64) Decision {
	if g == nil {
		return Admitted
	}
	return g.led.count(g.admit(tg, probes))
}

// admit is Admit without the decision telemetry.
func (g *Gate) admit(tg *netsim.Target, probes int64) Decision {
	if entry, ok := g.led.reg.Match(tg.Prefix, tg.Origin); ok {
		g.led.reg.touch(entry, probes)
		return DeniedOptOut
	}
	b := g.led.budget
	if b.IsZero() {
		return Admitted
	}
	st := g.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if b.DailyProbes > 0 && st.spent.Load()+probes > b.DailyProbes {
		return DeniedBudget
	}
	if b.PerASProbes > 0 && st.perAS[tg.Origin]+probes > b.PerASProbes {
		return DeniedBudget
	}
	if b.PerPrefixProbes > 0 && st.perPrefix[tg.Prefix]+probes > b.PerPrefixProbes {
		return DeniedBudget
	}
	st.spent.Add(probes)
	if b.PerASProbes > 0 {
		st.perAS[tg.Origin] += probes
	}
	if b.PerPrefixProbes > 0 {
		st.perPrefix[tg.Prefix] += probes
	}
	return Admitted
}

// AdmitAddr is the address-only admission the orchestrator's streaming
// path uses: targets there are bare addresses with no origin AS, so only
// the opt-out prefixes and the global daily cap apply.
func (g *Gate) AdmitAddr(addr netip.Addr, probes int64) Decision {
	if g == nil {
		return Admitted
	}
	return g.led.count(g.admitAddr(addr, probes))
}

// admitAddr is AdmitAddr without the decision telemetry.
func (g *Gate) admitAddr(addr netip.Addr, probes int64) Decision {
	if entry, ok := g.led.reg.MatchAddr(addr); ok {
		g.led.reg.touch(entry, probes)
		return DeniedOptOut
	}
	b := g.led.budget
	if b.DailyProbes == 0 {
		return Admitted
	}
	st := g.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.spent.Load()+probes > b.DailyProbes {
		return DeniedBudget
	}
	st.spent.Add(probes)
	return Admitted
}

// Observe charges actually-transmitted probes to the day's observation
// counter. Atomic: parallel shards call it concurrently.
func (g *Gate) Observe(probes int64) {
	if g == nil || probes == 0 {
		return
	}
	g.st.observed.Add(probes)
}

// Filter is the sequential admission pre-pass every measurement stage
// runs before its (possibly sharded) probing loop: items are presented
// to the gate in slice order, each decision is recorded into u, and the
// admitted items are returned in order (never aliasing the input's
// backing array). info returns an item's target and probe demand; a nil
// target means the item is outside the ledger's scope (e.g. an
// out-of-range ID the probing loop skips anyway) and passes through
// uncharged. Centralising the loop keeps the admission/accounting
// contract in one place — a stage cannot diverge from it.
func Filter[T any](g *Gate, items []T, u *Usage, info func(T) (*netsim.Target, int64)) []T {
	kept := items[:0:0]
	for _, it := range items {
		tg, probes := info(it)
		if tg == nil {
			kept = append(kept, it)
			continue
		}
		dec := g.Admit(tg, probes)
		u.Record(dec, probes)
		if dec == Admitted {
			kept = append(kept, it)
		}
	}
	return kept
}
