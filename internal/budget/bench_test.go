package budget

import (
	"net/netip"
	"testing"

	"github.com/laces-project/laces/internal/netsim"
)

// BenchmarkBudgetLedger measures the sequential admission pre-pass the
// census stages pay per target when governance is active: an opt-out
// lookup plus a three-cap check-and-charge. CI runs it at one iteration
// (BENCH_budget.json) so a regression on this per-target cost is visible
// in the artifact trail.
func BenchmarkBudgetLedger(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 64; i++ {
		reg.AddAS(netsim.ASN(90000 + i))
	}
	reg.AddPrefix(netip.MustParsePrefix("203.0.113.0/24"))

	const nTargets = 4096
	targets := make([]*netsim.Target, nTargets)
	for i := range targets {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
		targets[i] = &netsim.Target{ID: i, Prefix: p, Addr: p.Addr(), Origin: netsim.ASN(65000 + i%97)}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		l := NewLedger(Budget{
			DailyProbes:     int64(nTargets) * 40,
			PerASProbes:     2000,
			PerPrefixProbes: 64,
		}, reg)
		g := l.Gate(n)
		var u Usage
		for _, tg := range targets {
			u.Record(g.Admit(tg, 48), 48)
		}
		if !u.Reconciles() {
			b.Fatalf("usage does not reconcile: %+v", u)
		}
	}
}
