// Package worker implements the LACeS Worker (§4.2.1): the component
// deployed at each anycast site. Workers receive measurement definitions
// and hitlist targets from the Orchestrator, transmit probes, capture
// replies (which may answer probes transmitted by *other* workers — the
// heart of anycast-based measurement), match them to the ongoing
// measurement via the echoed probe identity, and stream results straight
// back: workers store neither the hitlist nor results (§4.2.3), and they
// reconnect automatically after connection loss (the fix of §7).
package worker

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"time"

	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/wire"
)

// Reply is one captured reply attributable to the ongoing measurement.
type Reply struct {
	// TxWorker is the worker whose probe elicited the reply, recovered
	// from the echoed identity.
	TxWorker int
	RTT      time.Duration
}

// Prober abstracts the probing backend. The production backend crafts raw
// packets; tests and the simulation substrate use SimProber, which pushes
// real packet bytes through the codecs against the simulated Internet.
type Prober interface {
	// ProbeTarget transmits this worker's probe towards addr and returns
	// the replies this worker captures for that target, across all
	// transmitting workers.
	ProbeTarget(def wire.MeasurementDef, addr netip.Addr, txTime time.Time) ([]Reply, error)
}

// ProberFactory builds the prober once the Orchestrator assigns this
// worker its site index.
type ProberFactory func(self int) (Prober, error)

// Config parameterises a Worker.
type Config struct {
	Name         string
	Orchestrator string // TCP address of the Orchestrator
	NewProber    ProberFactory
	// ReconnectMin/Max bound the exponential reconnect backoff.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Dialer allows tests to intercept connections; nil uses net.Dialer.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
	// FailAfterTargets, when positive, forcibly drops the connection after
	// this many targets have been probed in a session — deterministic
	// mid-measurement disconnect injection (chaos testing of the §4.2.3
	// failure awareness: the orchestrator must complete the measurement
	// with the surviving workers while this one backs off and reconnects).
	FailAfterTargets int64
	// Obs receives the worker's telemetry: control-plane frame/byte
	// counts and targets probed. Nil disables instrumentation.
	Obs *obs.Registry
}

// Worker runs the worker loop.
type Worker struct {
	cfg Config
	// stats is shared across reconnect sessions so the exposed frame and
	// byte counters are cumulative for the worker's lifetime; probed
	// counts targets this worker transmitted probes for.
	stats  *wire.Stats
	probed *obs.Counter
}

// New validates the configuration and returns a Worker.
func New(cfg Config) (*Worker, error) {
	if cfg.Orchestrator == "" {
		return nil, fmt.Errorf("worker: missing orchestrator address")
	}
	if cfg.NewProber == nil {
		return nil, fmt.Errorf("worker: missing prober factory")
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 100 * time.Millisecond
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Dialer == nil {
		d := &net.Dialer{}
		cfg.Dialer = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	w := &Worker{cfg: cfg, stats: &wire.Stats{}}
	w.probed = cfg.Obs.Counter("laces_worker_targets_probed_total",
		"Targets this worker transmitted probes for.")
	if reg := cfg.Obs; reg != nil {
		st := w.stats
		reg.CounterFunc("laces_wire_frames_total",
			"Control-plane frames moved, by direction.",
			func() float64 { return float64(st.FramesTx()) }, obs.L("dir", "tx"))
		reg.CounterFunc("laces_wire_frames_total",
			"Control-plane frames moved, by direction.",
			func() float64 { return float64(st.FramesRx()) }, obs.L("dir", "rx"))
		reg.CounterFunc("laces_wire_bytes_total",
			"Control-plane bytes moved (frame headers included), by direction.",
			func() float64 { return float64(st.BytesTx()) }, obs.L("dir", "tx"))
		reg.CounterFunc("laces_wire_bytes_total",
			"Control-plane bytes moved (frame headers included), by direction.",
			func() float64 { return float64(st.BytesRx()) }, obs.L("dir", "rx"))
	}
	return w, nil
}

// Run connects to the Orchestrator and serves measurements until ctx is
// cancelled, reconnecting with exponential backoff on connection loss.
func (w *Worker) Run(ctx context.Context) error {
	backoff := w.cfg.ReconnectMin
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := w.session(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.cfg.Logf("worker %s: session ended: %v; reconnecting in %v", w.cfg.Name, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > w.cfg.ReconnectMax {
			backoff = w.cfg.ReconnectMax
		}
	}
}

// session runs one connection lifecycle: hello, then serve frames.
func (w *Worker) session(ctx context.Context) error {
	nc, err := w.cfg.Dialer(ctx, w.cfg.Orchestrator)
	if err != nil {
		return fmt.Errorf("worker: dialing: %w", err)
	}
	conn := wire.NewConn(nc)
	conn.SetStats(w.stats)
	defer conn.Close()

	// Tear the connection down when ctx ends so blocking reads unblock.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	if err := conn.Write(wire.MsgHello, wire.Hello{Role: "worker", Name: w.cfg.Name}); err != nil {
		return err
	}
	typ, raw, err := conn.Read()
	if err != nil {
		return fmt.Errorf("worker: awaiting hello-ack: %w", err)
	}
	if typ != wire.MsgHelloAck {
		return fmt.Errorf("worker: expected hello-ack, got %v", typ)
	}
	ack, err := wire.Decode[wire.HelloAck](raw)
	if err != nil {
		return err
	}
	prober, err := w.cfg.NewProber(ack.Worker)
	if err != nil {
		return fmt.Errorf("worker: building prober: %w", err)
	}
	w.cfg.Logf("worker %s: connected as site %d of %d", w.cfg.Name, ack.Worker, ack.Workers)

	var def wire.MeasurementDef
	var sent int64
	for {
		typ, raw, err := conn.Read()
		if err != nil {
			return fmt.Errorf("worker: reading: %w", err)
		}
		switch typ {
		case wire.MsgStart:
			def, err = wire.Decode[wire.MeasurementDef](raw)
			if err != nil {
				return err
			}
			sent = 0
		case wire.MsgTargets:
			batch, err := wire.Decode[wire.Targets](raw)
			if err != nil {
				return err
			}
			for _, s := range batch.Addrs {
				addr, err := netip.ParseAddr(s)
				if err != nil {
					continue // skip malformed targets, keep probing
				}
				//laces:allow detnow the live worker stamps probes with real send time; deterministic runs use the simulated prober path
				replies, err := prober.ProbeTarget(def, addr, time.Now())
				if err != nil {
					return fmt.Errorf("worker: probing %s: %w", addr, err)
				}
				sent++
				w.probed.Inc()
				if w.cfg.FailAfterTargets > 0 && sent >= w.cfg.FailAfterTargets {
					return fmt.Errorf("worker: injected disconnect after %d targets", sent)
				}
				for _, r := range replies {
					res := wire.Result{
						Measurement: def.ID,
						Target:      s,
						TxWorker:    r.TxWorker,
						RxWorker:    ack.Worker,
						RTTMicros:   r.RTT.Microseconds(),
					}
					if err := conn.Write(wire.MsgResult, res); err != nil {
						return err
					}
				}
			}
		case wire.MsgEndTargets:
			if err := conn.Write(wire.MsgWorkerDone, wire.WorkerDone{Worker: ack.Worker, Sent: sent}); err != nil {
				return err
			}
		case wire.MsgError:
			em, _ := wire.Decode[wire.ErrorMsg](raw)
			return fmt.Errorf("worker: orchestrator error: %s", em.Text)
		default:
			return fmt.Errorf("worker: unexpected frame %v", typ)
		}
	}
}
