// Package worker implements the LACeS Worker (§4.2.1): the component
// deployed at each anycast site. Workers receive measurement definitions
// and hitlist targets from the Orchestrator, transmit probes, capture
// replies (which may answer probes transmitted by *other* workers — the
// heart of anycast-based measurement), match them to the ongoing
// measurement via the echoed probe identity, and stream results straight
// back: workers store neither the hitlist nor results (§4.2.3), and they
// reconnect automatically after connection loss (the fix of §7).
package worker

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/wire"
)

// Reply is one captured reply attributable to the ongoing measurement.
type Reply struct {
	// TxWorker is the worker whose probe elicited the reply, recovered
	// from the echoed identity.
	TxWorker int
	RTT      time.Duration
}

// Prober abstracts the probing backend. The production backend crafts raw
// packets; tests and the simulation substrate use SimProber, which pushes
// real packet bytes through the codecs against the simulated Internet.
type Prober interface {
	// ProbeTarget transmits this worker's probe towards addr and returns
	// the replies this worker captures for that target, across all
	// transmitting workers.
	ProbeTarget(def wire.MeasurementDef, addr netip.Addr, txTime time.Time) ([]Reply, error)
}

// ProberFactory builds the prober once the Orchestrator assigns this
// worker its site index.
type ProberFactory func(self int) (Prober, error)

// Config parameterises a Worker.
type Config struct {
	Name         string
	Orchestrator string // TCP address of the Orchestrator
	NewProber    ProberFactory
	// ReconnectMin/Max bound the exponential reconnect backoff.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Dialer allows tests to intercept connections; nil uses net.Dialer.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
	// FailAfterTargets, when positive, forcibly drops the connection after
	// this many targets have been probed in a session — deterministic
	// mid-measurement disconnect injection (chaos testing of the §4.2.3
	// failure awareness: the orchestrator must complete the measurement
	// with the surviving workers while this one backs off and reconnects).
	FailAfterTargets int64
	// Obs receives the worker's telemetry: control-plane frame/byte
	// counts and targets probed. Nil disables instrumentation. A non-nil
	// registry also enables tracing: the worker joins the measurement
	// trace carried by MsgStart, emits a worker/measure span per
	// measurement, hands its spans back over MsgTrace, and runs a flight
	// recorder over frame I/O and lifecycle events.
	Obs *obs.Registry
	// FlightSink receives a flight-recorder JSONL dump on failure
	// triggers (injected disconnect, probe error, orchestrator MsgError).
	// Nil disables automatic dumps.
	FlightSink io.Writer
}

// Worker runs the worker loop.
type Worker struct {
	cfg Config
	// stats is shared across reconnect sessions so the exposed frame and
	// byte counters are cumulative for the worker's lifetime; probed
	// counts targets this worker transmitted probes for.
	stats  *wire.Stats
	probed *obs.Counter

	// flight is the worker's flight recorder (nil without Obs);
	// activeTrace holds the in-flight measurement's trace context so
	// frame taps and dumps link to it. flightMu serialises dumps.
	flight      *obs.Recorder
	activeTrace atomic.Pointer[obs.TraceContext]
	flightMu    sync.Mutex
}

// New validates the configuration and returns a Worker.
func New(cfg Config) (*Worker, error) {
	if cfg.Orchestrator == "" {
		return nil, fmt.Errorf("worker: missing orchestrator address")
	}
	if cfg.NewProber == nil {
		return nil, fmt.Errorf("worker: missing prober factory")
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 100 * time.Millisecond
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Dialer == nil {
		d := &net.Dialer{}
		cfg.Dialer = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	w := &Worker{cfg: cfg, stats: &wire.Stats{}}
	w.probed = cfg.Obs.Counter("laces_worker_targets_probed_total",
		"Targets this worker transmitted probes for.")
	component := "worker"
	if cfg.Name != "" {
		component = "worker-" + cfg.Name
	}
	cfg.Obs.SetTraceComponent(component)
	w.flight = cfg.Obs.EnableFlight(component, 1024)
	if reg := cfg.Obs; reg != nil {
		st := w.stats
		reg.CounterFunc("laces_wire_frames_total",
			"Control-plane frames moved, by direction.",
			func() float64 { return float64(st.FramesTx()) }, obs.L("dir", "tx"))
		reg.CounterFunc("laces_wire_frames_total",
			"Control-plane frames moved, by direction.",
			func() float64 { return float64(st.FramesRx()) }, obs.L("dir", "rx"))
		reg.CounterFunc("laces_wire_bytes_total",
			"Control-plane bytes moved (frame headers included), by direction.",
			func() float64 { return float64(st.BytesTx()) }, obs.L("dir", "tx"))
		reg.CounterFunc("laces_wire_bytes_total",
			"Control-plane bytes moved (frame headers included), by direction.",
			func() float64 { return float64(st.BytesRx()) }, obs.L("dir", "rx"))
	}
	return w, nil
}

// Run connects to the Orchestrator and serves measurements until ctx is
// cancelled, reconnecting with exponential backoff on connection loss.
func (w *Worker) Run(ctx context.Context) error {
	backoff := w.cfg.ReconnectMin
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := w.session(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.cfg.Logf("worker %s: session ended: %v; reconnecting in %v", w.cfg.Name, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > w.cfg.ReconnectMax {
			backoff = w.cfg.ReconnectMax
		}
	}
}

// frameEvent is the wire tap: every frame this worker moves becomes one
// flight-recorder event linked to the active measurement's trace.
func (w *Worker) frameEvent(sent bool, t wire.MsgType, n int) {
	kind := "frame_rx"
	if sent {
		kind = "frame_tx"
	}
	w.flight.Record(kind, t.String(), w.activeTrace.Load(), int64(n))
}

// dumpFlight writes the flight recorder to the configured sink on a
// failure trigger, recording the trigger first so the dump names it.
func (w *Worker) dumpFlight(reason string) {
	if w.flight == nil || w.cfg.FlightSink == nil {
		return
	}
	w.flight.Record("flight_dump", reason, w.activeTrace.Load(), 0)
	w.flightMu.Lock()
	defer w.flightMu.Unlock()
	if err := w.flight.WriteJSONL(w.cfg.FlightSink); err != nil {
		w.cfg.Logf("worker %s: flight dump failed: %v", w.cfg.Name, err)
	}
}

// session runs one connection lifecycle: hello, then serve frames.
func (w *Worker) session(ctx context.Context) error {
	nc, err := w.cfg.Dialer(ctx, w.cfg.Orchestrator)
	if err != nil {
		return fmt.Errorf("worker: dialing: %w", err)
	}
	conn := wire.NewConn(nc)
	conn.SetStats(w.stats)
	if w.flight != nil {
		conn.SetTap(w.frameEvent)
	}
	defer conn.Close()

	// Tear the connection down when ctx ends so blocking reads unblock.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	if err := conn.Write(wire.MsgHello, wire.Hello{Role: "worker", Name: w.cfg.Name}); err != nil {
		return err
	}
	typ, raw, err := conn.Read()
	if err != nil {
		return fmt.Errorf("worker: awaiting hello-ack: %w", err)
	}
	if typ != wire.MsgHelloAck {
		return fmt.Errorf("worker: expected hello-ack, got %v", typ)
	}
	ack, err := wire.Decode[wire.HelloAck](raw)
	if err != nil {
		return err
	}
	prober, err := w.cfg.NewProber(ack.Worker)
	if err != nil {
		return fmt.Errorf("worker: building prober: %w", err)
	}
	w.cfg.Logf("worker %s: connected as site %d of %d", w.cfg.Name, ack.Worker, ack.Workers)

	var def wire.MeasurementDef
	var sent int64
	// mspan is the worker's span for the in-flight measurement, parented
	// on the orchestrator's context from MsgStart; resTrace is its
	// propagatable identity, stamped onto every Result frame.
	var mspan *obs.ActiveSpan
	var resTrace *obs.TraceContext
	for {
		typ, raw, err := conn.Read()
		if err != nil {
			return fmt.Errorf("worker: reading: %w", err)
		}
		switch typ {
		case wire.MsgStart:
			def, err = wire.Decode[wire.MeasurementDef](raw)
			if err != nil {
				return err
			}
			sent = 0
			mspan = w.cfg.Obs.JoinTrace(def.Trace, "worker/measure")
			mspan.SetAttr("worker", strconv.Itoa(ack.Worker))
			mspan.SetAttr("measurement", strconv.FormatUint(uint64(def.ID), 10))
			resTrace = mspan.Context()
			w.activeTrace.Store(resTrace)
		case wire.MsgTargets:
			batch, err := wire.Decode[wire.Targets](raw)
			if err != nil {
				return err
			}
			for _, s := range batch.Addrs {
				addr, err := netip.ParseAddr(s)
				if err != nil {
					continue // skip malformed targets, keep probing
				}
				//laces:allow detnow the live worker stamps probes with real send time; deterministic runs use the simulated prober path
				replies, err := prober.ProbeTarget(def, addr, time.Now())
				if err != nil {
					return fmt.Errorf("worker: probing %s: %w", addr, err)
				}
				sent++
				w.probed.Inc()
				if w.cfg.FailAfterTargets > 0 && sent >= w.cfg.FailAfterTargets {
					// The injected death mimics a real crash: the span is
					// closed into the *local* registry (marked aborted) but
					// never handed to the orchestrator — exactly what a
					// killed process would leave behind.
					w.flight.Record("chaos_kill", "injected_disconnect", resTrace, sent)
					mspan.SetAttr("sent", strconv.FormatInt(sent, 10))
					mspan.SetAttr("aborted", "true")
					mspan.End()
					w.dumpFlight("injected_disconnect")
					return fmt.Errorf("worker: injected disconnect after %d targets", sent)
				}
				for _, r := range replies {
					res := wire.Result{
						Measurement: def.ID,
						Target:      s,
						TxWorker:    r.TxWorker,
						RxWorker:    ack.Worker,
						RTTMicros:   r.RTT.Microseconds(),
						Trace:       resTrace,
					}
					if err := conn.Write(wire.MsgResult, res); err != nil {
						return err
					}
				}
			}
		case wire.MsgEndTargets:
			// Close the measurement span and hand the orchestrator this
			// worker's part of the trace before reporting done, so the
			// assembled trace is complete by the time the quorum empties.
			if mspan != nil {
				mspan.SetAttr("sent", strconv.FormatInt(sent, 10))
				mspan.End()
				if tc := resTrace; tc != nil {
					batch := wire.TraceBatch{
						Component: w.cfg.Obs.TraceComponent(),
						Worker:    ack.Worker,
						Spans:     w.cfg.Obs.TraceSpansFor(tc.TraceID),
					}
					for _, ev := range w.flight.Snapshot() {
						if ev.TraceID == tc.TraceID {
							batch.Events = append(batch.Events, ev)
						}
					}
					if err := conn.Write(wire.MsgTrace, batch); err != nil {
						return err
					}
				}
				mspan = nil
			}
			if err := conn.Write(wire.MsgWorkerDone, wire.WorkerDone{Worker: ack.Worker, Sent: sent}); err != nil {
				return err
			}
		case wire.MsgError:
			em, _ := wire.Decode[wire.ErrorMsg](raw)
			w.flight.Record("error", em.Text, w.activeTrace.Load(), 0)
			w.dumpFlight("orchestrator_error")
			return fmt.Errorf("worker: orchestrator error: %s", em.Text)
		default:
			return fmt.Errorf("worker: unexpected frame %v", typ)
		}
	}
}
