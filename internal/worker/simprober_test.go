package worker

import (
	"net/netip"
	"testing"
	"time"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/wire"
)

var (
	testWorld = mustWorld()
	testDep   = mustDep()
)

func mustWorld() *netsim.World {
	cfg := netsim.TestConfig()
	cfg.V4Targets = 3000
	cfg.V6Targets = 800
	cfg.NumASes = 150
	w, err := netsim.New(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func mustDep() *netsim.Deployment {
	d, err := testWorld.NewDeployment("prober-test",
		[]string{"Amsterdam", "New York", "Tokyo", "Sydney", "Sao Paulo", "Johannesburg"},
		netsim.PolicyUnmodified)
	if err != nil {
		panic(err)
	}
	return d
}

func TestNewSimProberValidatesSite(t *testing.T) {
	if _, err := NewSimProber(testWorld, testDep, -1); err == nil {
		t.Fatal("negative site accepted")
	}
	if _, err := NewSimProber(testWorld, testDep, testDep.NumSites()); err == nil {
		t.Fatal("out-of-range site accepted")
	}
	if _, err := NewSimProber(testWorld, testDep, 0); err != nil {
		t.Fatal(err)
	}
}

// workerUnion probes a target from every worker site and unions the
// replies each one captures.
func workerUnion(t *testing.T, def wire.MeasurementDef, tg *netsim.Target) map[int]bool {
	t.Helper()
	now := time.Now()
	recv := map[int]bool{}
	for self := 0; self < testDep.NumSites(); self++ {
		p, err := NewSimProber(testWorld, testDep, self)
		if err != nil {
			t.Fatal(err)
		}
		replies, err := p.ProbeTarget(def, tg.Addr, now)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range replies {
			if r.TxWorker < 0 || r.TxWorker >= testDep.NumSites() {
				t.Fatalf("identity recovered out-of-range TxWorker %d", r.TxWorker)
			}
			if r.RTT <= 0 {
				t.Fatal("non-positive RTT")
			}
			recv[self] = true
		}
	}
	return recv
}

// protoTargets returns a responsive target of each interesting kind for a
// protocol.
func protoTargets(proto packet.Protocol) (anycast, unicast *netsim.Target) {
	for i := range testWorld.TargetsV4 {
		tg := &testWorld.TargetsV4[i]
		if !tg.Responsive[proto] {
			continue
		}
		switch {
		case anycast == nil && tg.Kind == netsim.Anycast && len(tg.Sites) >= 20 && tg.AnycastBornDay == 0:
			anycast = tg
		case unicast == nil && tg.Kind == netsim.Unicast && len(tg.TempWindows) == 0:
			if a, ok := testWorld.ASByNumber(tg.Origin); ok && !a.TieSplit && !a.Wobbly && !a.Drifty {
				unicast = tg
			}
		}
		if anycast != nil && unicast != nil {
			return
		}
	}
	return
}

func TestProbeTargetAllProtocols(t *testing.T) {
	// Every protocol's reply must round-trip through the real codecs and
	// recover worker identities; anycast targets surface at multiple
	// sites, clean unicast at exactly one.
	for _, proto := range []string{"ICMP", "TCP", "DNS"} {
		p, _ := packet.ParseProtocol(proto)
		anycast, unicast := protoTargets(p)
		if anycast == nil || unicast == nil {
			t.Fatalf("%s: no suitable sample targets", proto)
		}
		def := wire.MeasurementDef{ID: 5, Protocol: proto, OffsetMS: 1000}
		if got := workerUnion(t, def, anycast); len(got) < 2 {
			t.Errorf("%s: wide anycast target captured at %d sites", proto, len(got))
		}
		if got := workerUnion(t, def, unicast); len(got) != 1 {
			t.Errorf("%s: clean unicast captured at %d sites", proto, len(got))
		}
	}
}

func TestProbeTargetTotalConservation(t *testing.T) {
	// Summed over all workers, captured replies equal the number of
	// probes the target answered: the distributed computation partitions
	// the reply stream exactly (no loss, no duplication).
	anycast, _ := protoTargets(packet.ICMP)
	def := wire.MeasurementDef{ID: 6, Protocol: "ICMP", OffsetMS: 1000}
	now := time.Now()
	total := 0
	for self := 0; self < testDep.NumSites(); self++ {
		p, _ := NewSimProber(testWorld, testDep, self)
		replies, err := p.ProbeTarget(def, anycast.Addr, now)
		if err != nil {
			t.Fatal(err)
		}
		total += len(replies)
	}
	if total != testDep.NumSites() {
		t.Fatalf("captured %d replies for %d probes", total, testDep.NumSites())
	}
}

func TestProbeTargetUnknownAddress(t *testing.T) {
	p, _ := NewSimProber(testWorld, testDep, 0)
	def := wire.MeasurementDef{ID: 7, Protocol: "ICMP"}
	// An address outside the simulated world yields silence, not error.
	replies, err := p.ProbeTarget(def, netip.MustParseAddr("203.0.113.99"), time.Now())
	if err != nil || len(replies) != 0 {
		t.Fatalf("unknown address: %v, %d replies", err, len(replies))
	}
}

func TestProbeTargetBadProtocol(t *testing.T) {
	p, _ := NewSimProber(testWorld, testDep, 0)
	def := wire.MeasurementDef{ID: 8, Protocol: "QUIC"}
	if _, err := p.ProbeTarget(def, testWorld.TargetsV4[0].Addr, time.Now()); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestWorkerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Orchestrator: "x:1"}); err == nil {
		t.Fatal("missing prober factory accepted")
	}
	w, err := New(Config{Orchestrator: "x:1", NewProber: func(int) (Prober, error) { return nil, nil }})
	if err != nil || w == nil {
		t.Fatal(err)
	}
}
