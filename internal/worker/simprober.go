package worker

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/wire"
)

// SimProber probes the simulated Internet. It is deterministic, so every
// worker process computes — independently, without cross-worker
// communication — exactly the replies that would arrive at *its own* site,
// including replies elicited by other workers' probes. That mirrors the
// real system, where "the Internet" routes each reply to whichever anycast
// site is closest in BGP terms.
//
// To keep the distributed path faithful, each reply round-trips through
// the real packet codecs: the probe is encoded to bytes, the target's
// answer is built from those bytes, and the identity is parsed back from
// the echoed fields before a result is produced.
type SimProber struct {
	World      *netsim.World
	Deployment *netsim.Deployment
	Self       int

	index map[netip.Addr]int // representative address → target ID, per family
	v6    bool
}

// NewSimProber builds a prober for one worker site.
func NewSimProber(w *netsim.World, d *netsim.Deployment, self int) (*SimProber, error) {
	if self < 0 || self >= d.NumSites() {
		return nil, fmt.Errorf("simprober: site %d outside deployment of %d", self, d.NumSites())
	}
	return &SimProber{World: w, Deployment: d, Self: self}, nil
}

// buildIndex maps representative addresses to targets for one family.
func (p *SimProber) buildIndex(v6 bool) {
	if p.index != nil && p.v6 == v6 {
		return
	}
	p.index = make(map[netip.Addr]int, p.World.NumTargets(v6))
	p.World.IterTargets(v6, 0, func(batch []netsim.Target) bool {
		for i := range batch {
			p.index[batch[i].Addr] = batch[i].ID
		}
		return true
	})
	p.v6 = v6
}

// ProbeTarget implements Prober.
func (p *SimProber) ProbeTarget(def wire.MeasurementDef, addr netip.Addr, txTime time.Time) ([]Reply, error) {
	proto, err := packet.ParseProtocol(def.Protocol)
	if err != nil {
		return nil, err
	}
	p.buildIndex(def.V6)
	id, ok := p.index[addr]
	if !ok {
		return nil, nil // address not part of the simulated world: silence
	}
	tg := p.World.TargetAt(def.V6, id)
	offset := time.Duration(def.OffsetMS) * time.Millisecond

	var replies []Reply
	for wk := 0; wk < p.Deployment.NumSites(); wk++ {
		identity := packet.Identity{
			Measurement: def.ID,
			Worker:      uint8(wk),
			TxTime:      txTime.Add(time.Duration(wk-p.Self) * offset).UTC(),
		}
		ctx := netsim.ProbeCtx{
			At:   identity.TxTime,
			Flow: netsim.FlowKey{Proto: proto, StaticFlow: uint64(def.ID) + 1, VaryingPayload: uint64(wk + 1)},
			Gap:  offset,
			Seq:  uint64(id),
		}
		del, ok := p.World.ProbeAnycast(p.Deployment, wk, tg, ctx)
		if !ok || del.WorkerIdx != p.Self {
			continue
		}
		reply, err := p.replyThroughCodecs(proto, identity, del)
		if err != nil {
			return nil, err
		}
		replies = append(replies, reply)
	}
	return replies, nil
}

// replyThroughCodecs encodes the original probe, synthesises the target's
// answer from the probe bytes, and recovers the identity from the echoed
// fields — the same matching a production worker performs on sniffed
// replies (§4.2.2).
func (p *SimProber) replyThroughCodecs(proto packet.Protocol, identity packet.Identity, del netsim.Delivery) (Reply, error) {
	switch proto {
	case packet.ICMP:
		probe := packet.NewICMPProbe(identity, false)
		buf := probe.AppendTo(nil)
		var rx packet.ICMPEcho
		if err := rx.DecodeFrom(buf); err != nil {
			return Reply{}, fmt.Errorf("simprober: decoding own probe: %w", err)
		}
		replyBytes := rx.EchoReply(false).AppendTo(nil)
		var echoed packet.ICMPEcho
		if err := echoed.DecodeFrom(replyBytes); err != nil {
			return Reply{}, fmt.Errorf("simprober: decoding reply: %w", err)
		}
		got, err := packet.ParseICMPPayload(echoed.Payload)
		if err != nil {
			return Reply{}, fmt.Errorf("simprober: recovering identity: %w", err)
		}
		return Reply{TxWorker: int(got.Worker), RTT: del.RTT}, nil

	case packet.TCP:
		probe := packet.NewTCPProbe(identity)
		rst := probe.RSTReply()
		if !rst.IsProbeReply(identity.Measurement) {
			return Reply{}, fmt.Errorf("simprober: RST did not match measurement")
		}
		return Reply{TxWorker: int(packet.TCPAckWorker(rst.Seq)), RTT: del.RTT}, nil

	case packet.DNS:
		q := packet.NewDNSProbe(identity, "census.laces.example", packet.DNSTypeA, packet.DNSClassIN)
		buf, err := q.AppendTo(nil)
		if err != nil {
			return Reply{}, err
		}
		var rxq packet.DNSMessage
		if err := rxq.DecodeFrom(buf); err != nil {
			return Reply{}, err
		}
		respBytes, err := rxq.Reply().AppendTo(nil)
		if err != nil {
			return Reply{}, err
		}
		var resp packet.DNSMessage
		if err := resp.DecodeFrom(respBytes); err != nil {
			return Reply{}, err
		}
		got, _, err := packet.ParseDNSProbeName(resp.Question[0].Name)
		if err != nil {
			return Reply{}, fmt.Errorf("simprober: recovering DNS identity: %w", err)
		}
		return Reply{TxWorker: int(got.Worker), RTT: del.RTT}, nil
	}
	return Reply{}, fmt.Errorf("simprober: unsupported protocol %v", proto)
}
