package chaos

import (
	"time"

	"github.com/laces-project/laces/internal/cities"
	"github.com/laces-project/laces/internal/packet"
)

// Built-in scenario names.
const (
	ScenarioSiteOutage       = "site-outage"
	ScenarioRegionalBlackout = "regional-blackout"
	ScenarioLossyTransit     = "lossy-transit"
	ScenarioLatencyStorm     = "latency-storm"
	ScenarioFlappingUpstream = "flapping-upstream"
	ScenarioClockSkew        = "clock-skew"
	ScenarioReplyThrottle    = "reply-throttle"
	ScenarioAbuseComplaints  = "abuse-complaints"
)

// Builtins returns the shipped scenario suite. They are registered at
// init; the slice is in registration order. Windowed scenarios are all
// active around census day 180 (the Sep-2024 mark the paper's own
// incidents cluster around) so one mid-census day exercises every one.
func Builtins() []Scenario {
	return []Scenario{
		{
			Name:        ScenarioSiteOutage,
			Description: "three deployment sites dark for seven weeks (the pre-fix worker-loss incidents)",
			Impairments: []Impairment{
				{Kind: SiteOutage, Scope: Scope{Days: Days(150, 200), Workers: []int{2, 11, 23}}},
			},
		},
		{
			Name:        ScenarioRegionalBlackout,
			Description: "probes from European sites and vantage points blackholed for a month",
			Impairments: []Impairment{
				{Kind: Partition, Scope: Scope{Days: Days(165, 195),
					WorkerContinents: []cities.Continent{cities.Europe}}},
			},
		},
		{
			Name:        ScenarioLossyTransit,
			Description: "a chronic lossy transit drops 35% of probe traffic",
			Impairments: []Impairment{
				{Kind: Loss, Frac: 0.35},
			},
		},
		{
			Name:        ScenarioLatencyStorm,
			Description: "congestion adds 18ms +/- 14ms to every path, widening GCD discs",
			Impairments: []Impairment{
				{Kind: Delay, Delay: 18 * time.Millisecond, Jitter: 14 * time.Millisecond},
			},
		},
		{
			Name:        ScenarioFlappingUpstream,
			Description: "recurring three-week windows of amplified route flapping (Fig 9's instability spikes)",
			Impairments: []Impairment{
				{Kind: RouteFlap, Frac: 0.6, Skew: 3 * time.Hour, Scope: Scope{Days: Days(170, 190)}},
				{Kind: RouteFlap, Frac: 0.6, Skew: 3 * time.Hour, Scope: Scope{Days: Days(330, 350)}},
				{Kind: RouteFlap, Frac: 0.6, Skew: 3 * time.Hour, Scope: Scope{Days: Days(490, 510)}},
			},
		},
		{
			Name:        ScenarioClockSkew,
			Description: "two workers probe with clocks two hours fast, landing in wrong churn epochs",
			Impairments: []Impairment{
				{Kind: ClockSkew, Skew: 2 * time.Hour, Scope: Scope{Workers: []int{7, 19}}},
			},
		},
		{
			Name:        ScenarioAbuseComplaints,
			Description: "operator complaints arrive in waves: one halving for a month, three (the 1/8th-rate floor) for a week",
			Impairments: []Impairment{
				{Kind: AbuseComplaint, Scope: Scope{Days: Days(160, 190)}},
				{Kind: AbuseComplaint, Scope: Scope{Days: Days(176, 183)}},
				{Kind: AbuseComplaint, Scope: Scope{Days: Days(176, 183)}},
			},
		},
		{
			Name:        ScenarioReplyThrottle,
			Description: "half of all ICMP (target, worker) pairs rate-limited for the day",
			Impairments: []Impairment{
				{Kind: Throttle, Frac: 0.5, Scope: Scope{Protocols: []packet.Protocol{packet.ICMP}}},
			},
		},
	}
}

func init() {
	for _, s := range Builtins() {
		Register(s)
	}
}
