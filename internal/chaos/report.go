package chaos

import (
	"fmt"
	"io"

	"github.com/laces-project/laces/internal/stats"
)

// MethodStats scores one census method's output against ground truth.
type MethodStats struct {
	TP, FP, FN int
}

// Precision is TP/(TP+FP); a method that claims nothing is vacuously
// precise.
func (m MethodStats) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall is TP/(TP+FN).
func (m MethodStats) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// Score compares a claimed ID set against the ground-truth ID set.
func Score(claimed, truth map[int]bool) MethodStats {
	var s MethodStats
	for id := range claimed {
		if truth[id] {
			s.TP++
		} else {
			s.FP++
		}
	}
	for id := range truth {
		if !claimed[id] {
			s.FN++
		}
	}
	return s
}

// Outcome is one census run scored against ground truth — the clean
// baseline or one scenario.
type Outcome struct {
	Scenario    string
	Description string
	// Day is the census day the run executed on (windowed scenarios run
	// on a day inside their window).
	Day int
	// Workers is the number of participating deployment sites.
	Workers int
	// GCount and MCount are the published set sizes.
	GCount, MCount int
	// G scores 𝒢 (GCD-confirmed) and M scores ℳ (anycast-based only)
	// against the simulator's anycast oracle.
	G, M MethodStats
}

// Report is the resilience table: census accuracy under each chaos
// scenario against the clean baseline.
type Report struct {
	V6        bool
	Baseline  Outcome
	Scenarios []Outcome
}

// Render prints the resilience table.
func (r *Report) Render(w io.Writer) error {
	fam := "IPv4"
	if r.V6 {
		fam = "IPv6"
	}
	t := stats.Table{
		Title: "chaos resilience (" + fam + "): census accuracy vs ground truth",
		Header: []string{"scenario", "day", "workers", "|G|", "G prec", "G rec",
			"|M|", "M prec", "dG rec"},
	}
	row := func(o Outcome, base *Outcome) {
		delta := "-"
		if base != nil {
			delta = fmt.Sprintf("%+.3f", o.G.Recall()-base.G.Recall())
		}
		t.Add(o.Scenario, fmt.Sprint(o.Day), fmt.Sprint(o.Workers),
			fmt.Sprint(o.GCount), fmt.Sprintf("%.3f", o.G.Precision()),
			fmt.Sprintf("%.3f", o.G.Recall()), fmt.Sprint(o.MCount),
			fmt.Sprintf("%.3f", o.M.Precision()), delta)
	}
	row(r.Baseline, nil)
	for _, o := range r.Scenarios {
		row(o, &r.Baseline)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	for _, o := range r.Scenarios {
		if _, err := fmt.Fprintf(w, "  %-18s %s\n", o.Scenario, o.Description); err != nil {
			return err
		}
	}
	return nil
}
