package chaos

import (
	"testing"
	"time"

	"github.com/laces-project/laces/internal/cities"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

var testWorld = mustWorld()

func mustWorld() *netsim.World {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		panic(err)
	}
	return w
}

func testDeployment(t *testing.T) *netsim.Deployment {
	t.Helper()
	d, err := testWorld.NewDeployment("chaos-test", []string{
		"Amsterdam", "New York", "Tokyo", "Sydney", "Frankfurt", "Singapore",
	}, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func icmpTarget(t *testing.T) *netsim.Target {
	t.Helper()
	for i := range testWorld.TargetsV4 {
		if testWorld.TargetsV4[i].Responsive[packet.ICMP] {
			return &testWorld.TargetsV4[i]
		}
	}
	t.Fatal("no ICMP-responsive target")
	return nil
}

func probeCtx(day int, proto packet.Protocol, tg *netsim.Target) netsim.ProbeCtx {
	return netsim.ProbeCtx{
		At:   netsim.DayTime(day).Add(time.Hour),
		Flow: netsim.FlowKey{Proto: proto, StaticFlow: 1},
		Gap:  time.Second,
		Seq:  uint64(tg.ID),
	}
}

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry has %d scenarios, want >= 6", len(names))
	}
	for _, want := range []string{
		ScenarioSiteOutage, ScenarioRegionalBlackout, ScenarioLossyTransit,
		ScenarioLatencyStorm, ScenarioFlappingUpstream, ScenarioClockSkew,
		ScenarioReplyThrottle,
	} {
		sc, ok := Lookup(want)
		if !ok {
			t.Fatalf("built-in %q not registered", want)
		}
		if sc.Description == "" || len(sc.Impairments) == 0 {
			t.Fatalf("built-in %q is empty", want)
		}
		if !sc.ActiveOn(180) {
			t.Fatalf("built-in %q not active on the resilience day 180", want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("Names() not sorted")
		}
	}
	if got := len(Scenarios()); got != len(names) {
		t.Fatalf("Scenarios() returned %d, want %d", got, len(names))
	}
}

func TestScopeDays(t *testing.T) {
	all := Scope{}
	if !all.ActiveOn(0) || !all.ActiveOn(533) {
		t.Fatal("zero-day scope should cover the whole timeline")
	}
	windowed := Scope{Days: Days(10, 20)}
	if windowed.ActiveOn(9) || !windowed.ActiveOn(10) || !windowed.ActiveOn(20) || windowed.ActiveOn(21) {
		t.Fatal("day window not inclusive [10, 20]")
	}
	// A day-0-only window must not collide with the zero value's
	// whole-timeline meaning.
	day0 := Scope{Days: Days(0, 0)}
	if !day0.ActiveOn(0) || day0.ActiveOn(1) || day0.ActiveOn(533) {
		t.Fatal("Days(0, 0) did not scope to day 0 only")
	}
	sc := Scenario{Impairments: []Impairment{{Kind: Blackhole, Scope: windowed}}}
	if sc.ActiveOn(9) || !sc.ActiveOn(15) {
		t.Fatal("scenario activity does not follow impairment windows")
	}
	if d := sc.FirstActiveDay(534); d != 10 {
		t.Fatalf("FirstActiveDay = %d, want 10", d)
	}
	if d := sc.FirstActiveDay(5); d != -1 {
		t.Fatalf("FirstActiveDay before the window = %d, want -1", d)
	}
}

func TestEngineBlackholeAndScopes(t *testing.T) {
	d := testDeployment(t)
	tg := icmpTarget(t)

	eng := NewEngine(testWorld, Scenario{Name: "bh", Impairments: []Impairment{
		{Kind: Blackhole, Scope: Scope{Days: Days(5, 6), Protocols: []packet.Protocol{packet.ICMP}}},
	}})
	if !eng.ImpairAnycast(d, 0, tg, probeCtx(5, packet.ICMP, tg)).Drop {
		t.Fatal("in-window ICMP probe not dropped")
	}
	if eng.ImpairAnycast(d, 0, tg, probeCtx(7, packet.ICMP, tg)).Drop {
		t.Fatal("out-of-window probe dropped")
	}
	if eng.ImpairAnycast(d, 0, tg, probeCtx(5, packet.TCP, tg)).Drop {
		t.Fatal("out-of-protocol probe dropped")
	}

	// Worker scope.
	eng = NewEngine(testWorld, Scenario{Name: "bh-w", Impairments: []Impairment{
		{Kind: Blackhole, Scope: Scope{Workers: []int{2}}},
	}})
	if !eng.ImpairAnycast(d, 2, tg, probeCtx(5, packet.ICMP, tg)).Drop {
		t.Fatal("scoped worker not dropped")
	}
	if eng.ImpairAnycast(d, 1, tg, probeCtx(5, packet.ICMP, tg)).Drop {
		t.Fatal("unscoped worker dropped")
	}
	// Worker-index scopes never apply to unicast probes.
	vp, err := testWorld.NewVP("chaos-vp", "Amsterdam", 0)
	if err != nil {
		t.Fatal(err)
	}
	if eng.ImpairUnicast(vp, tg, packet.ICMP, netsim.DayTime(5)).Drop {
		t.Fatal("worker-scoped impairment hit a unicast VP")
	}

	// Origin-AS scope.
	eng = NewEngine(testWorld, Scenario{Name: "bh-as", Impairments: []Impairment{
		{Kind: Blackhole, Scope: Scope{Origins: []netsim.ASN{tg.Origin}}},
	}})
	if !eng.ImpairAnycast(d, 0, tg, probeCtx(5, packet.ICMP, tg)).Drop {
		t.Fatal("origin-scoped probe not dropped")
	}
	var other *netsim.Target
	for i := range testWorld.TargetsV4 {
		cand := &testWorld.TargetsV4[i]
		if cand.Origin != tg.Origin && cand.Responsive[packet.ICMP] {
			other = cand
			break
		}
	}
	if other == nil {
		t.Fatal("no second origin in the test world")
	}
	if eng.ImpairAnycast(d, 0, other, probeCtx(5, packet.ICMP, other)).Drop {
		t.Fatal("other-origin probe dropped")
	}

	// Target-ID scope.
	eng = NewEngine(testWorld, Scenario{Name: "bh-tg", Impairments: []Impairment{
		{Kind: Blackhole, Scope: Scope{TargetIDs: []int{tg.ID}}},
	}})
	if !eng.ImpairAnycast(d, 0, tg, probeCtx(5, packet.ICMP, tg)).Drop ||
		eng.ImpairAnycast(d, 0, other, probeCtx(5, packet.ICMP, other)).Drop {
		t.Fatal("target-ID scope mismatch")
	}
}

func TestEnginePartitionByContinent(t *testing.T) {
	d := testDeployment(t)
	tg := icmpTarget(t)
	eng := NewEngine(testWorld, Scenario{Name: "part", Impairments: []Impairment{
		{Kind: Partition, Scope: Scope{WorkerContinents: []cities.Continent{cities.Europe}}},
	}})
	// Site 0 is Amsterdam (EU), site 2 is Tokyo (AS).
	if !eng.ImpairAnycast(d, 0, tg, probeCtx(5, packet.ICMP, tg)).Drop {
		t.Fatal("European site not partitioned")
	}
	if eng.ImpairAnycast(d, 2, tg, probeCtx(5, packet.ICMP, tg)).Drop {
		t.Fatal("Asian site partitioned")
	}
	// Unicast VPs partition by their own continent.
	ams, err := testWorld.NewVP("part-ams", "Amsterdam", 0)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := testWorld.NewVP("part-tok", "Tokyo", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.ImpairUnicast(ams, tg, packet.ICMP, netsim.DayTime(5)).Drop {
		t.Fatal("European VP not partitioned")
	}
	if eng.ImpairUnicast(tok, tg, packet.ICMP, netsim.DayTime(5)).Drop {
		t.Fatal("Asian VP partitioned")
	}
}

func TestEngineLossFractionAndDeterminism(t *testing.T) {
	d := testDeployment(t)
	eng := NewEngine(testWorld, Scenario{Name: "loss", Impairments: []Impairment{
		{Kind: Loss, Frac: 0.4},
	}})
	drops := 0
	n := 0
	for i := range testWorld.TargetsV4 {
		tg := &testWorld.TargetsV4[i]
		if !tg.Responsive[packet.ICMP] {
			continue
		}
		n++
		ctx := probeCtx(5, packet.ICMP, tg)
		first := eng.ImpairAnycast(d, 1, tg, ctx)
		if eng.ImpairAnycast(d, 1, tg, ctx) != first {
			t.Fatal("loss verdict not deterministic")
		}
		if first.Drop {
			drops++
		}
		if n >= 2000 {
			break
		}
	}
	frac := float64(drops) / float64(n)
	if frac < 0.35 || frac > 0.45 {
		t.Fatalf("loss fraction %.3f, want ~0.4", frac)
	}
}

func TestEngineDelayJitterAndSkew(t *testing.T) {
	d := testDeployment(t)
	tg := icmpTarget(t)
	eng := NewEngine(testWorld, Scenario{Name: "dl", Impairments: []Impairment{
		{Kind: Delay, Delay: 30 * time.Millisecond, Jitter: 20 * time.Millisecond},
		{Kind: ClockSkew, Skew: 2 * time.Hour, Scope: Scope{Workers: []int{1}}},
	}})
	pi := eng.ImpairAnycast(d, 0, tg, probeCtx(5, packet.ICMP, tg))
	if pi.ExtraRTT < 30*time.Millisecond || pi.ExtraRTT >= 50*time.Millisecond {
		t.Fatalf("delay %v outside [30ms, 50ms)", pi.ExtraRTT)
	}
	if pi.TimeShift != 0 {
		t.Fatal("unskewed worker got a time shift")
	}
	pi = eng.ImpairAnycast(d, 1, tg, probeCtx(5, packet.ICMP, tg))
	if pi.TimeShift != 2*time.Hour {
		t.Fatalf("skewed worker shift %v, want 2h", pi.TimeShift)
	}
}

func TestEngineThrottleStableWithinDay(t *testing.T) {
	d := testDeployment(t)
	eng := NewEngine(testWorld, Scenario{Name: "thr", Impairments: []Impairment{
		{Kind: Throttle, Frac: 0.5},
	}})
	tg := icmpTarget(t)
	ctxA := probeCtx(5, packet.ICMP, tg)
	ctxB := probeCtx(5, packet.ICMP, tg)
	ctxB.At = ctxB.At.Add(3 * time.Hour) // later the same day
	if eng.ImpairAnycast(d, 0, tg, ctxA).Drop != eng.ImpairAnycast(d, 0, tg, ctxB).Drop {
		t.Fatal("throttle verdict flapped within one day")
	}
}

func TestEngineMissingWorkers(t *testing.T) {
	d := testDeployment(t)
	eng := NewEngine(testWorld, Scenario{Name: "so", Impairments: []Impairment{
		{Kind: SiteOutage, Scope: Scope{Days: Days(10, 12), Workers: []int{1, 4}}},
	}})
	if got := eng.MissingWorkers(d, 9); got != nil {
		t.Fatalf("outage before window: %v", got)
	}
	got := eng.MissingWorkers(d, 11)
	if len(got) != 2 || !got[1] || !got[4] {
		t.Fatalf("outage workers = %v, want {1, 4}", got)
	}
	// Continent-scoped outage resolves via site locations.
	eng = NewEngine(testWorld, Scenario{Name: "so-eu", Impairments: []Impairment{
		{Kind: SiteOutage, Scope: Scope{WorkerContinents: []cities.Continent{cities.Europe}}},
	}})
	got = eng.MissingWorkers(d, 0)
	if len(got) != 2 || !got[0] || !got[4] { // Amsterdam, Frankfurt
		t.Fatalf("EU outage workers = %v, want {0, 4}", got)
	}
}

func TestScoreAndStats(t *testing.T) {
	truth := map[int]bool{1: true, 2: true, 3: true}
	claimed := map[int]bool{2: true, 3: true, 9: true}
	s := Score(claimed, truth)
	if s.TP != 2 || s.FP != 1 || s.FN != 1 {
		t.Fatalf("score = %+v", s)
	}
	if p := s.Precision(); p < 0.66 || p > 0.67 {
		t.Fatalf("precision = %f", p)
	}
	if r := s.Recall(); r < 0.66 || r > 0.67 {
		t.Fatalf("recall = %f", r)
	}
	empty := Score(nil, nil)
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatal("vacuous precision/recall should be 1")
	}
}
