// Package chaos is a deterministic fault-injection engine for the census
// pipeline. The paper's headline claims — responsible, fast, longitudinal —
// were earned by surviving 17 months of real operational incidents (the
// Sep–Dec 2024 DNS tooling bug, pre-July-2025 worker disconnections, route
// churn events), but a reproduction that models failures as two hardcoded
// booleans cannot ask "what if" questions. This package generalises the
// failure model in the style of tc-netem/litmus impairment harnesses:
//
//   - an Impairment is one fault (packet loss, delay+jitter, blackhole,
//     site outage, regional partition, route-flap amplification, worker
//     clock skew, reply throttling) bounded by a Scope (target set, origin
//     AS, worker site, protocol, continent, day range);
//   - a Scenario is a named schedule of impairments over the census
//     timeline; a registry ships ≥6 built-ins (see registry.go);
//   - an Engine compiles a scenario against a world and implements
//     netsim.Impairer, the nil-checked hook on the probe hot path;
//   - a Report compares census accuracy (precision/recall of 𝒢 and ℳ
//     against the simulator's ground truth) under chaos with a clean
//     baseline — the resilience table of `laces-experiments chaos`.
//
// Everything is a pure function of (world seed, impairment index, probe
// identity): the same seed and scenario always yield a byte-identical
// census, so chaos runs are reproducible experiments, not flaky tests.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"github.com/laces-project/laces/internal/cities"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

// Kind classifies an impairment.
type Kind uint8

// Impairment kinds.
const (
	// Loss drops a fraction (Frac) of matching probes independently.
	Loss Kind = iota
	// Delay adds Delay ± Jitter of latency to matching probes.
	Delay
	// Blackhole drops every matching probe.
	Blackhole
	// SiteOutage disconnects the scoped deployment sites: they neither
	// transmit probes nor capture replies (the pre-July-2025 worker-loss
	// events). The census pipeline resolves it via Engine.MissingWorkers;
	// at the probe hook it drops the scoped workers' transmissions.
	SiteOutage
	// Partition drops traffic between the scoped worker/VP continents and
	// the scoped target continents — a regional blackout.
	Partition
	// RouteFlap amplifies route churn: matching probes are shifted across
	// routing stability epochs (by up to ±Skew, with probability Frac), so
	// workers observe disagreeing path states — the upstream-flapping
	// false-positive mechanism of Fig 5 turned up to eleven.
	RouteFlap
	// ClockSkew offsets the scoped workers' clocks by Skew: their probes
	// are stamped into the wrong churn epochs (and, for large skews, the
	// wrong census day).
	ClockSkew
	// Throttle drops a fraction (Frac) of matching replies with coarse
	// per-(target, worker, day) keying — sustained target-side rate
	// limiting rather than random loss.
	Throttle
	// AbuseComplaint models a network operator complaining about being
	// probed. It never touches individual probes: the governance layer
	// (internal/budget) counts the complaints active on a census day via
	// Engine.ComplaintsOn and steps the effective probing rate down one
	// power of two per complaint — the paper's 1/8th-rate operating
	// point (§5.5.2) after three.
	AbuseComplaint
)

// String names the kind as used in scenario catalogs.
func (k Kind) String() string {
	switch k {
	case Loss:
		return "loss"
	case Delay:
		return "delay"
	case Blackhole:
		return "blackhole"
	case SiteOutage:
		return "site-outage"
	case Partition:
		return "partition"
	case RouteFlap:
		return "route-flap"
	case ClockSkew:
		return "clock-skew"
	case Throttle:
		return "throttle"
	case AbuseComplaint:
		return "abuse-complaint"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Scope bounds where and when an impairment applies. The zero value
// matches everything: every field is a filter that, when empty, does not
// constrain.
type Scope struct {
	// Days is the inclusive census-day window. The zero value means the
	// whole timeline; build windows with Days(from, to), which keeps a
	// day-0-only window distinct from the zero value.
	Days netsim.DayRange
	// Workers lists deployment site indices; nil matches all sites.
	// Worker-scoped impairments never apply to unicast (GCD) probes.
	Workers []int
	// TargetIDs lists target IDs; nil matches all targets.
	TargetIDs []int
	// Origins lists origin ASNs; nil matches all.
	Origins []netsim.ASN
	// Protocols lists probe protocols; nil matches all.
	Protocols []packet.Protocol
	// WorkerContinents constrains the probing side (deployment site or
	// unicast VP) by continent; nil matches all.
	WorkerContinents []cities.Continent
	// TargetContinents constrains the responder side by the target's
	// canonical location; nil matches all.
	TargetContinents []cities.Continent
}

// Days builds an inclusive day window. A window of [0, 0] would collide
// with the zero DayRange (which Scope treats as "the whole timeline"), so
// it is encoded with From = -1: census days are never negative, which
// keeps the window matching exactly day 0 while staying distinct from the
// zero value. Always build windows with this constructor, not literals.
func Days(from, to int) netsim.DayRange {
	if from == 0 && to == 0 {
		from = -1
	}
	return netsim.DayRange{From: from, To: to}
}

// allDays reports whether the scope covers the whole timeline.
func allDays(r netsim.DayRange) bool { return r == (netsim.DayRange{}) }

// ActiveOn reports whether the scope's day window covers census day d.
func (s Scope) ActiveOn(d int) bool { return allDays(s.Days) || s.Days.Contains(d) }

// Impairment is one fault: a kind, its parameters, and the scope it
// applies in.
type Impairment struct {
	Kind  Kind
	Scope Scope

	// Frac is the drop (Loss, Throttle) or trigger (RouteFlap)
	// probability in (0, 1].
	Frac float64
	// Delay and Jitter parameterise added latency (Delay kind).
	Delay  time.Duration
	Jitter time.Duration
	// Skew is the clock offset (ClockSkew) or the maximum epoch shift
	// (RouteFlap).
	Skew time.Duration
}

// Scenario is a named, ordered schedule of impairments over the census
// timeline. The order is part of the scenario's identity: per-impairment
// hash salts derive from the position, so reordering hash-consuming
// impairments changes which individual probes are hit (never whether the
// run is deterministic).
type Scenario struct {
	Name        string
	Description string
	Impairments []Impairment
}

// ActiveOn reports whether any impairment applies on census day d.
func (s Scenario) ActiveOn(day int) bool {
	for _, imp := range s.Impairments {
		if imp.Scope.ActiveOn(day) {
			return true
		}
	}
	return false
}

// FirstActiveDay returns the earliest census day (from 0) on which the
// scenario has an active impairment, or -1 when it never fires in
// [0, horizon).
func (s Scenario) FirstActiveDay(horizon int) int {
	for day := 0; day < horizon; day++ {
		if s.ActiveOn(day) {
			return day
		}
	}
	return -1
}

// registry holds named scenarios. Access is not synchronised: Register
// from init functions or before measurements start.
var registry = map[string]Scenario{}

// Register adds (or replaces) a named scenario in the registry.
func Register(s Scenario) {
	if s.Name == "" {
		panic("chaos: scenario needs a name")
	}
	registry[s.Name] = s
}

// Lookup returns a registered scenario by name.
func Lookup(name string) (Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Scenarios returns all registered scenarios in name order.
func Scenarios() []Scenario {
	out := make([]Scenario, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
