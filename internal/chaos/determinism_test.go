package chaos_test

// Census-level determinism: the acceptance bar for the chaos layer is that
// the same world seed and scenario always produce a byte-identical
// DailyCensus — chaos runs are reproducible experiments, not flaky tests.
// This lives in an external test package so it can drive the full core
// pipeline (core imports chaos).

import (
	"bytes"
	"testing"

	"github.com/laces-project/laces/internal/chaos"
	"github.com/laces-project/laces/internal/core"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
)

// censusJSON runs one daily census under a scenario on a fresh world and
// pipeline, and returns its published JSON bytes.
func censusJSON(t *testing.T, day int, sc *chaos.Scenario) []byte {
	t.Helper()
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := core.NewPipeline(w, core.Config{
		Deployment: dep,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(w, day, v6)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := pipe.RunDaily(day, false, core.DayOptions{Chaos: sc})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestChaosCensusByteIdentical(t *testing.T) {
	for _, name := range []string{chaos.ScenarioFlappingUpstream, chaos.ScenarioLossyTransit} {
		sc, ok := chaos.Lookup(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		day := 180
		a := censusJSON(t, day, &sc)
		b := censusJSON(t, day, &sc)
		if !bytes.Equal(a, b) {
			t.Fatalf("scenario %q: same seed + scenario produced different censuses", name)
		}
		clean := censusJSON(t, day, nil)
		if bytes.Equal(a, clean) {
			t.Fatalf("scenario %q had no effect on the census", name)
		}
	}
}

func TestChaosEngineLeftUninstalled(t *testing.T) {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := core.NewPipeline(w, core.Config{
		Deployment: dep,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(w, day, v6)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := chaos.Lookup(chaos.ScenarioLossyTransit)
	if _, err := pipe.RunDaily(180, false, core.DayOptions{Chaos: &sc}); err != nil {
		t.Fatal(err)
	}
	if w.Impairer() != nil {
		t.Fatal("RunDaily leaked the chaos engine on the world")
	}
}
