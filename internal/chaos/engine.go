package chaos

import (
	"time"

	"github.com/laces-project/laces/internal/cities"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

// Engine is a Scenario compiled against a World: it implements
// netsim.Impairer, turning scope lists into constant-time set lookups.
// Install it with World.SetImpairer (the census pipeline does this for the
// duration of a day's run when DayOptions carries a chaos plan).
//
// Every verdict is a pure function of (world seed, impairment position,
// probe identity): two runs with the same seed and scenario impair exactly
// the same probes.
type Engine struct {
	seed   uint64
	sc     Scenario
	comp   []compiled
	contOf []cities.Continent // continent per world city index
}

// compiled is one impairment with its scope lists turned into lookups.
type compiled struct {
	kind                Kind
	frac                float64
	delay, jitter, skew time.Duration

	days    netsim.DayRange
	allDays bool
	salt    uint64

	workers      map[int]bool        // nil = all sites
	workerScoped bool                // site-index scope set (anycast-only)
	targets      map[int]bool        // nil = all targets
	origins      map[netsim.ASN]bool // nil = all origins
	protoMask    uint8               // 0 = all protocols
	wCont, tCont uint8               // continent bitmasks, 0 = all
}

// NewEngine compiles a scenario against a world.
func NewEngine(w *netsim.World, sc Scenario) *Engine {
	all := w.DB.All()
	e := &Engine{seed: w.Seed(), sc: sc, contOf: make([]cities.Continent, len(all))}
	for i, c := range all {
		e.contOf[i] = c.Continent
	}
	e.comp = make([]compiled, 0, len(sc.Impairments))
	for i, imp := range sc.Impairments {
		c := compiled{
			kind:    imp.Kind,
			frac:    imp.Frac,
			delay:   imp.Delay,
			jitter:  imp.Jitter,
			skew:    imp.Skew,
			days:    imp.Scope.Days,
			allDays: allDays(imp.Scope.Days),
			// The salt folds the impairment's position and kind so two
			// impairments of one scenario never share hash streams.
			salt: mix(0xc4a05, uint64(i), uint64(imp.Kind)),
		}
		if imp.Scope.Workers != nil {
			c.workerScoped = true
			c.workers = make(map[int]bool, len(imp.Scope.Workers))
			for _, wk := range imp.Scope.Workers {
				c.workers[wk] = true
			}
		}
		if imp.Scope.TargetIDs != nil {
			c.targets = make(map[int]bool, len(imp.Scope.TargetIDs))
			for _, id := range imp.Scope.TargetIDs {
				c.targets[id] = true
			}
		}
		if imp.Scope.Origins != nil {
			c.origins = make(map[netsim.ASN]bool, len(imp.Scope.Origins))
			for _, a := range imp.Scope.Origins {
				c.origins[a] = true
			}
		}
		for _, p := range imp.Scope.Protocols {
			c.protoMask |= 1 << uint(p)
		}
		for _, ct := range imp.Scope.WorkerContinents {
			c.wCont |= 1 << uint(ct)
		}
		for _, ct := range imp.Scope.TargetContinents {
			c.tCont |= 1 << uint(ct)
		}
		e.comp = append(e.comp, c)
	}
	return e
}

// Scenario returns the scenario the engine was compiled from.
func (e *Engine) Scenario() Scenario { return e.sc }

// matchCommon checks the day window and target-side scopes.
func (c *compiled) matchCommon(day int, tg *netsim.Target, proto packet.Protocol, contOf []cities.Continent) bool {
	if !c.allDays && !c.days.Contains(day) {
		return false
	}
	if c.targets != nil && !c.targets[tg.ID] {
		return false
	}
	if c.origins != nil && !c.origins[tg.Origin] {
		return false
	}
	if c.protoMask != 0 && c.protoMask&(1<<uint(proto)) == 0 {
		return false
	}
	if c.tCont != 0 && c.tCont&(1<<uint(contOf[tg.CityIdx])) == 0 {
		return false
	}
	return true
}

// ImpairAnycast implements netsim.Impairer for the anycast-based stage.
func (e *Engine) ImpairAnycast(d *netsim.Deployment, worker int, tg *netsim.Target, ctx netsim.ProbeCtx) netsim.ProbeImpairment {
	day := netsim.DayOf(ctx.At)
	at := uint64(ctx.At.UnixNano())
	var out netsim.ProbeImpairment
	for i := range e.comp {
		c := &e.comp[i]
		if !c.matchCommon(day, tg, ctx.Flow.Proto, e.contOf) {
			continue
		}
		if c.workers != nil && !c.workers[worker] {
			continue
		}
		if c.wCont != 0 && c.wCont&(1<<uint(e.contOf[d.Sites[worker].CityIdx])) == 0 {
			continue
		}
		switch c.kind {
		case Blackhole, Partition, SiteOutage:
			// SiteOutage here covers direct engine installs; the census
			// pipeline additionally resolves outages via MissingWorkers so
			// replies routed towards dead sites are lost too.
			out.Drop = true
			return out
		case Loss:
			if chance(mix(e.seed, c.salt, uint64(tg.ID), uint64(worker), at), c.frac) {
				out.Drop = true
				return out
			}
		case Throttle:
			// Coarse keying: a throttled (target, worker) pair stays
			// throttled for the day — sustained rate limiting.
			if chance(mix(e.seed, c.salt, uint64(tg.ID), uint64(worker), uint64(day)), c.frac) {
				out.Drop = true
				return out
			}
		case Delay:
			out.ExtraRTT += c.delay +
				time.Duration(unitFloat(mix(e.seed, c.salt, uint64(tg.ID), uint64(worker), at))*float64(c.jitter))
		case ClockSkew:
			out.TimeShift += c.skew
		case RouteFlap:
			h := mix(e.seed, c.salt, uint64(tg.ID), uint64(worker), uint64(ctx.At.Unix()/60))
			if chance(h, c.frac) {
				// Shift uniformly in (-Skew, +Skew): probes land in
				// neighbouring stability epochs, so workers disagree.
				out.TimeShift += time.Duration((unitFloat(splitmix64(h))*2 - 1) * float64(c.skew))
			}
		}
	}
	return out
}

// ImpairUnicast implements netsim.Impairer for the latency (GCD) stage.
// Worker-index scopes and the worker-only kinds (SiteOutage, ClockSkew,
// RouteFlap) never apply to unicast vantage points.
func (e *Engine) ImpairUnicast(vp netsim.VP, tg *netsim.Target, proto packet.Protocol, at time.Time) netsim.ProbeImpairment {
	day := netsim.DayOf(at)
	atKey := uint64(at.UnixNano())
	vpKey := uint64(0) // hashed lazily: most probes match no impairment
	var out netsim.ProbeImpairment
	for i := range e.comp {
		c := &e.comp[i]
		if c.workerScoped {
			continue
		}
		switch c.kind {
		case SiteOutage, ClockSkew, RouteFlap, AbuseComplaint:
			continue
		}
		if !c.matchCommon(day, tg, proto, e.contOf) {
			continue
		}
		if c.wCont != 0 && c.wCont&(1<<uint(e.contOf[vp.CityIdx])) == 0 {
			continue
		}
		if vpKey == 0 {
			vpKey = hashString(vp.Name)
		}
		switch c.kind {
		case Blackhole, Partition:
			out.Drop = true
			return out
		case Loss:
			if chance(mix(e.seed, c.salt, uint64(tg.ID), vpKey, atKey), c.frac) {
				out.Drop = true
				return out
			}
		case Throttle:
			if chance(mix(e.seed, c.salt, uint64(tg.ID), vpKey, uint64(day)), c.frac) {
				out.Drop = true
				return out
			}
		case Delay:
			out.ExtraRTT += c.delay +
				time.Duration(unitFloat(mix(e.seed, c.salt, uint64(tg.ID), vpKey, atKey))*float64(c.jitter))
		}
	}
	return out
}

// MissingWorkers resolves the deployment sites disconnected on census day
// `day` by active SiteOutage impairments, or nil when none are. The census
// pipeline feeds this into the measurement so dead sites neither transmit
// nor capture — the exact semantics of the legacy MissingWorkers option.
func (e *Engine) MissingWorkers(d *netsim.Deployment, day int) map[int]bool {
	var out map[int]bool
	for i := range e.comp {
		c := &e.comp[i]
		if c.kind != SiteOutage || (!c.allDays && !c.days.Contains(day)) {
			continue
		}
		for wk := 0; wk < d.NumSites(); wk++ {
			if c.workers != nil && !c.workers[wk] {
				continue
			}
			if c.wCont != 0 && c.wCont&(1<<uint(e.contOf[d.Sites[wk].CityIdx])) == 0 {
				continue
			}
			if out == nil {
				out = make(map[int]bool)
			}
			out[wk] = true
		}
	}
	return out
}

// ComplaintsOn counts the AbuseComplaint impairments active on census
// day `day` — the signal the governance layer's adaptive rate controller
// (budget.StepRate) consumes. Complaints never impair individual probes;
// they only step the day's effective probing rate down.
func (e *Engine) ComplaintsOn(day int) int {
	n := 0
	for i := range e.comp {
		c := &e.comp[i]
		if c.kind == AbuseComplaint && (c.allDays || c.days.Contains(day)) {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Deterministic hashing, mirroring netsim's conventions (netsim keeps its
// mixers private; the streams here are salted differently anyway so the
// engine never replays a routing decision's hash).

// splitmix64 is the SplitMix64 finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix hashes a sequence of 64-bit values into one.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9e6c63d0876a9a47)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// chance reports whether the event keyed by h occurs with probability p.
func chance(h uint64, p float64) bool { return unitFloat(h) < p }

// hashString folds a string into a uint64 (FNV-1a).
func hashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}
