package wire

import (
	"net"
	"strings"
	"testing"
	"testing/quick"
)

// pipePair returns two framed connections talking over an in-memory pipe.
func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestRoundTripMessages(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()

	go func() {
		_ = a.Write(MsgHello, Hello{Role: "worker", Name: "ams01"})
		_ = a.Write(MsgResult, Result{Measurement: 7, Target: "192.0.2.1", TxWorker: 3, RxWorker: 9, RTTMicros: 1500})
	}()

	typ, raw, err := b.Read()
	if err != nil || typ != MsgHello {
		t.Fatalf("read 1: %v %v", typ, err)
	}
	h, err := Decode[Hello](raw)
	if err != nil || h.Role != "worker" || h.Name != "ams01" {
		t.Fatalf("hello decode: %+v %v", h, err)
	}

	typ, raw, err = b.Read()
	if err != nil || typ != MsgResult {
		t.Fatalf("read 2: %v %v", typ, err)
	}
	r, err := Decode[Result](raw)
	if err != nil || r.Measurement != 7 || r.RxWorker != 9 || r.RTTMicros != 1500 {
		t.Fatalf("result decode: %+v %v", r, err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(m uint16, tx, rx uint8, rtt int64) bool {
		a, b := pipePair()
		defer a.Close()
		defer b.Close()
		want := Result{Measurement: m, Target: "10.0.0.1", TxWorker: int(tx), RxWorker: int(rx), RTTMicros: rtt}
		go func() { _ = a.Write(MsgResult, want) }()
		typ, raw, err := b.Read()
		if err != nil || typ != MsgResult {
			return false
		}
		got, err := Decode[Result](raw)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWritersDoNotInterleave(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()

	const n = 100
	go func() {
		done := make(chan struct{})
		for g := 0; g < 4; g++ {
			go func(g int) {
				for i := 0; i < n; i++ {
					_ = a.Write(MsgResult, Result{Measurement: uint16(g), TxWorker: i})
				}
				done <- struct{}{}
			}(g)
		}
		for g := 0; g < 4; g++ {
			<-done
		}
	}()

	for i := 0; i < 4*n; i++ {
		typ, raw, err := b.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if typ != MsgResult {
			t.Fatalf("frame %d corrupted: type %v", i, typ)
		}
		if _, err := Decode[Result](raw); err != nil {
			t.Fatalf("frame %d corrupted: %v", i, err)
		}
	}
}

func TestLargeBatch(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	batch := Targets{Base: 0}
	for i := 0; i < 10000; i++ {
		batch.Addrs = append(batch.Addrs, "198.51.100.7")
	}
	go func() { _ = a.Write(MsgTargets, batch) }()
	typ, raw, err := b.Read()
	if err != nil || typ != MsgTargets {
		t.Fatal(err)
	}
	got, err := Decode[Targets](raw)
	if err != nil || len(got.Addrs) != 10000 {
		t.Fatalf("batch decode: %d addrs, %v", len(got.Addrs), err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	a, b := net.Pipe()
	ca := NewConn(a)
	defer ca.Close()
	defer b.Close()
	go func() {
		// Hand-craft a frame header declaring an absurd length.
		_, _ = b.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgHello)})
	}()
	if _, _, err := ca.Read(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame not rejected: %v", err)
	}
}

func TestDecodeError(t *testing.T) {
	if _, err := Decode[Result]([]byte(`{"m": "not-a-number"}`)); err == nil {
		t.Fatal("bad payload should fail to decode")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, typ := range []MsgType{MsgHello, MsgHelloAck, MsgStart, MsgTargets,
		MsgEndTargets, MsgResult, MsgWorkerDone, MsgComplete, MsgError, MsgRun} {
		if strings.HasPrefix(typ.String(), "MsgType(") {
			t.Errorf("message type %d has no name", typ)
		}
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Error("unknown type formatting")
	}
}
