// Package wire defines the message protocol between the three LACeS
// components (§4.2.1): the CLI that defines measurements, the central
// Orchestrator, and the Workers deployed at the anycast sites.
//
// Frames are length-prefixed: a 4-byte big-endian payload length, a 1-byte
// message type, and a JSON payload. JSON keeps the protocol debuggable and
// the worker binary small; the probing hot path never serialises per-probe
// state (targets stream in batches, results stream back one frame per
// reply, and the Orchestrator performs all aggregation — Workers hold no
// hitlist and no result store, §4.2.3).
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/laces-project/laces/internal/obs"
)

// MsgType identifies a frame's payload.
type MsgType uint8

// Protocol messages.
const (
	MsgHello      MsgType = iota + 1 // Worker/CLI → Orchestrator: introduce
	MsgHelloAck                      // Orchestrator → Worker: assigned index
	MsgStart                         // Orchestrator → Worker: measurement definition
	MsgTargets                       // Orchestrator → Worker: hitlist batch
	MsgEndTargets                    // Orchestrator → Worker: hitlist complete
	MsgResult                        // Worker → Orchestrator → CLI: one reply
	MsgWorkerDone                    // Worker → Orchestrator: finished probing
	MsgComplete                      // Orchestrator → CLI: measurement complete
	MsgError                         // any → any: fatal error
	MsgRun                           // CLI → Orchestrator: run a measurement
	MsgTrace                         // Worker → Orchestrator: completed trace spans
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgStart:
		return "start"
	case MsgTargets:
		return "targets"
	case MsgEndTargets:
		return "end-targets"
	case MsgResult:
		return "result"
	case MsgWorkerDone:
		return "worker-done"
	case MsgComplete:
		return "complete"
	case MsgError:
		return "error"
	case MsgRun:
		return "run"
	case MsgTrace:
		return "trace"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// MaxFrame bounds a frame payload; larger frames indicate protocol
// corruption.
const MaxFrame = 16 << 20

// Hello introduces a connection to the Orchestrator.
//
// Trace carries the sender's distributed-trace context when tracing is
// on. The field is a pointer on every frame that carries it: omitempty
// does not elide zero struct values, so a pointer is what keeps frames
// from pre-tracing peers byte-compatible.
type Hello struct {
	Role  string            `json:"role"` // "worker" or "cli"
	Name  string            `json:"name"`
	Trace *obs.TraceContext `json:"trace,omitempty"`
}

// HelloAck assigns a worker its site index.
type HelloAck struct {
	Worker  int `json:"worker"`
	Workers int `json:"workers"` // total expected sites
}

// MeasurementDef is the measurement definition the CLI creates and the
// Orchestrator forwards to Workers (§4.2.2).
type MeasurementDef struct {
	ID       uint16  `json:"id"`
	Protocol string  `json:"protocol"` // ICMP, TCP or DNS
	V6       bool    `json:"v6"`
	OffsetMS int64   `json:"offset_ms"` // inter-worker probe spacing
	Rate     float64 `json:"rate"`      // hitlist targets per second
	Zone     string  `json:"zone,omitempty"`
	// Trace is the orchestrator's measurement-span context; workers
	// parent their measure spans on it.
	Trace *obs.TraceContext `json:"trace,omitempty"`
}

// Run asks the Orchestrator to execute a measurement over the given
// targets.
type Run struct {
	Def     MeasurementDef `json:"def"`
	Targets []string       `json:"targets"`
	// Trace is the CLI's root-span context — the origin of the
	// cross-process trace the orchestrator and workers join.
	Trace *obs.TraceContext `json:"trace,omitempty"`
}

// Targets streams a hitlist batch to a Worker.
type Targets struct {
	Base  int               `json:"base"` // index of the first address in the batch
	Addrs []string          `json:"addrs"`
	Trace *obs.TraceContext `json:"trace,omitempty"`
}

// Result is one captured reply, matched to the measurement via the echoed
// probe identity (§4.2.2).
type Result struct {
	Measurement uint16            `json:"m"`
	Target      string            `json:"t"`
	TxWorker    int               `json:"tx"`
	RxWorker    int               `json:"rx"`
	RTTMicros   int64             `json:"rtt_us"`
	Trace       *obs.TraceContext `json:"trace,omitempty"`
}

// WorkerDone reports a Worker finished its probe stream.
type WorkerDone struct {
	Worker int   `json:"worker"`
	Sent   int64 `json:"sent"`
}

// Complete ends a measurement towards the CLI.
type Complete struct {
	Results int64 `json:"results"`
	Workers int   `json:"workers"`
	// Skipped counts targets the orchestrator's responsible-probing
	// ledger refused to stream (opt-out or budget); omitted when no
	// governance is configured, keeping old CLIs compatible.
	Skipped int64             `json:"skipped,omitempty"`
	Trace   *obs.TraceContext `json:"trace,omitempty"`
	// TraceSpans is the assembled cross-process trace: the
	// orchestrator's own spans plus every worker batch it ingested,
	// handed back so the CLI holds the complete record.
	TraceSpans []obs.TraceSpan `json:"trace_spans,omitempty"`
}

// TraceBatch carries a component's completed spans (and the
// trace-linked tail of its flight recorder) back to the orchestrator at
// the end of its part of a measurement.
type TraceBatch struct {
	Component string            `json:"component"`
	Worker    int               `json:"worker"`
	Spans     []obs.TraceSpan   `json:"spans,omitempty"`
	Events    []obs.FlightEvent `json:"events,omitempty"`
}

// ErrorMsg carries a fatal error.
type ErrorMsg struct {
	Text string `json:"text"`
}

// Stats is shared frame/byte accounting for one side of the control
// plane: every Conn carrying the same *Stats adds its traffic there.
// Counters are atomic; a nil *Stats disables accounting at the cost of
// one branch per frame.
type Stats struct {
	framesTx, framesRx atomic.Int64
	bytesTx, bytesRx   atomic.Int64
}

// FramesTx returns the frames written across all attached conns.
func (s *Stats) FramesTx() int64 {
	if s == nil {
		return 0
	}
	return s.framesTx.Load()
}

// FramesRx returns the frames read across all attached conns.
func (s *Stats) FramesRx() int64 {
	if s == nil {
		return 0
	}
	return s.framesRx.Load()
}

// BytesTx returns the bytes written (headers included).
func (s *Stats) BytesTx() int64 {
	if s == nil {
		return 0
	}
	return s.bytesTx.Load()
}

// BytesRx returns the bytes read (headers included).
func (s *Stats) BytesRx() int64 {
	if s == nil {
		return 0
	}
	return s.bytesRx.Load()
}

// Tap observes every frame a Conn moves: direction, type and size in
// bytes (header included). Taps feed the flight recorder's frame-I/O
// events; they run on the frame path and must not block.
type Tap func(sent bool, t MsgType, bytes int)

// Conn wraps a net.Conn with framed, concurrency-safe writes and buffered
// reads.
type Conn struct {
	c     net.Conn
	br    *bufio.Reader
	mu    sync.Mutex // serialises writers
	stats *Stats
	local Stats // always-on per-conn accounting
	tap   Tap
}

// SetStats attaches shared traffic accounting (nil detaches). Attach
// before the first frame moves: the counters are not retroactive.
// Per-conn accounting (ConnStats) stays on regardless.
func (c *Conn) SetStats(s *Stats) { c.stats = s }

// SetTap installs a frame observer (nil uninstalls). Install before the
// first frame moves.
func (c *Conn) SetTap(t Tap) { c.tap = t }

// ConnStats returns this connection's own frame/byte counters — the
// per-worker attribution the orchestrator reports on disconnect.
func (c *Conn) ConnStats() *Stats { return &c.local }

// NewConn wraps a transport connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// Write sends one frame.
func (c *Conn) Write(t MsgType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: encoding %v: %w", t, err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: %v frame of %d bytes exceeds limit", t, len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.c.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing %v header: %w", t, err)
	}
	if _, err := c.c.Write(payload); err != nil {
		return fmt.Errorf("wire: writing %v payload: %w", t, err)
	}
	n := len(hdr) + len(payload)
	c.local.framesTx.Add(1)
	c.local.bytesTx.Add(int64(n))
	if s := c.stats; s != nil {
		s.framesTx.Add(1)
		s.bytesTx.Add(int64(n))
	}
	if tap := c.tap; tap != nil {
		tap(true, t, n)
	}
	return nil
}

// Read receives one frame. The returned payload is only valid until the
// next Read.
func (c *Conn) Read() (MsgType, json.RawMessage, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: reading payload: %w", err)
	}
	c.local.framesRx.Add(1)
	c.local.bytesRx.Add(int64(len(hdr)) + int64(n))
	if s := c.stats; s != nil {
		s.framesRx.Add(1)
		s.bytesRx.Add(int64(len(hdr)) + int64(n))
	}
	if tap := c.tap; tap != nil {
		tap(false, MsgType(hdr[4]), len(hdr)+int(n))
	}
	return MsgType(hdr[4]), payload, nil
}

// Decode unmarshals a frame payload into T.
func Decode[T any](raw json.RawMessage) (T, error) {
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, fmt.Errorf("wire: decoding %T: %w", v, err)
	}
	return v, nil
}
