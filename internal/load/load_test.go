package load

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/laces-project/laces/internal/api"
	"github.com/laces-project/laces/internal/archive"
	"github.com/laces-project/laces/internal/core"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/platform"
	"github.com/laces-project/laces/internal/query"
)

// loadTarget builds a small archived-and-indexed serving tier for the
// generator to drive in-process.
func loadTarget(t *testing.T) (*api.Server, []int, []string) {
	t.Helper()
	cfg := netsim.TestConfig()
	cfg.V4Targets = 1500
	cfg.NumASes = 100
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	gcd := func(day int, v6 bool) ([]netsim.VP, error) { return platform.Ark(w, day, v6) }
	pipe, err := core.NewPipeline(w, core.Config{Deployment: d, GCDVPs: gcd})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	aw, err := archive.Create(dir, archive.Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	var prefixes []string
	days := []int{0, 1, 2, 3}
	for _, day := range days {
		c, err := pipe.RunDaily(day, false, core.DayOptions{})
		if err != nil {
			t.Fatal(err)
		}
		doc := c.Document()
		if day == 0 {
			for _, e := range doc.Entries[:3] {
				prefixes = append(prefixes, e.Prefix)
			}
		}
		if err := aw.Append(day, doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := query.Build(a, filepath.Join(t.TempDir(), "timeline.idx"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Open(ix.Path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	s, err := api.NewServer(w, d, gcd, func() int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	s.Archive = a
	s.Query = q
	return s, days, prefixes
}

// TestRunInProcess drives a full run against the serving tier and
// checks the report invariants: every scheduled request issued, none
// failed, the determinism probe passed, revalidation produced 304s.
func TestRunInProcess(t *testing.T) {
	s, days, prefixes := loadTarget(t)
	rep, err := Run(Config{
		Handler:    s.Handler(),
		Days:       days,
		Prefixes:   prefixes,
		Requests:   300,
		Workers:    3,
		Seed:       7,
		Revalidate: 0.5,
		PageSize:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema || rep.Target != "in-process" {
		t.Fatalf("report header: %q %q", rep.Schema, rep.Target)
	}
	if rep.Requests != 300 {
		t.Fatalf("issued %d requests, scheduled 300", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d requests failed", rep.Errors)
	}
	if !rep.DeterminismOK {
		t.Fatalf("determinism probe failed: %s", rep.DeterminismNote)
	}
	if rep.NotModified == 0 {
		t.Fatal("50%% conditional workload produced no 304s")
	}
	if rep.ReqPerSec <= 0 || rep.WallSeconds < 0 {
		t.Fatalf("throughput degenerate: %v req/s over %vs", rep.ReqPerSec, rep.WallSeconds)
	}
	if rep.AllocPerOp <= 0 {
		t.Fatalf("in-process run must report alloc/op, got %v", rep.AllocPerOp)
	}
	if len(rep.Ops) == 0 {
		t.Fatal("no per-op stats")
	}
	var sum int64
	for _, o := range rep.Ops {
		sum += o.Requests
	}
	if sum != rep.Requests {
		t.Fatalf("per-op requests %d != total %d", sum, rep.Requests)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Requests != rep.Requests {
		t.Fatal("report round-trip lost data")
	}
}

// TestRunPaced exercises the open-loop path: a rate plus duration sizes
// the schedule and the pacer spaces the sends.
func TestRunPaced(t *testing.T) {
	s, days, prefixes := loadTarget(t)
	rep, err := Run(Config{
		Handler:  s.Handler(),
		Days:     days,
		Prefixes: prefixes,
		Rate:     2000,
		Requests: 100,
		Workers:  2,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 100 || rep.Errors != 0 {
		t.Fatalf("paced run: %d requests, %d errors", rep.Requests, rep.Errors)
	}
	if rep.RatePerSec != 2000 {
		t.Fatalf("report rate %v", rep.RatePerSec)
	}
}

// TestScheduleDeterministic: the schedule is a pure function of the
// seed — equal seeds agree op for op, different seeds diverge.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{
		Family:   "ipv4",
		Days:     []int{0, 1, 2},
		Prefixes: []string{"10.0.0.0/24", "10.0.1.0/24"},
		Mix:      DefaultMix,
		Seed:     42, Revalidate: 0.3, PageSize: 10,
	}
	pr := &probeResult{
		dayEtags: map[int]string{0: `"a"`, 1: `"b"`, 2: `"c"`},
		idxEtag:  `"idx"`,
	}
	s1 := buildSchedule(cfg, 500, pr)
	s2 := buildSchedule(cfg, 500, pr)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different schedules")
	}
	cfg.Seed = 43
	s3 := buildSchedule(cfg, 500, pr)
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleFoldsPrefixOps: without prefixes, timeline/stability
// weight folds into day fetches instead of generating unroutable ops.
func TestScheduleFoldsPrefixOps(t *testing.T) {
	rep := Config{Family: "ipv4", Days: []int{0}, Mix: DefaultMix}
	rep.Mix.Day += rep.Mix.Timeline + rep.Mix.Stability
	rep.Mix.Timeline, rep.Mix.Stability = 0, 0
	pr := &probeResult{dayEtags: map[int]string{0: `"a"`}}
	for _, o := range buildSchedule(rep, 200, pr) {
		if o.kind == OpTimeline || o.kind == OpStability {
			t.Fatalf("prefix-keyed op %q scheduled with no prefixes", o.kind)
		}
	}
}

// TestQuantileInterpolation pins the histogram quantile math against a
// hand-checked distribution.
func TestQuantileInterpolation(t *testing.T) {
	reg := obs.New()
	h := reg.Histogram("t", "t", []float64{0.1, 0.2, 0.5}, obs.L("op", "x"))
	for i := 0; i < 80; i++ {
		h.Observe(0.05) // bucket le=0.1
	}
	for i := 0; i < 20; i++ {
		h.Observe(0.3) // bucket le=0.5
	}
	p50 := quantile(h, 0.50)
	if p50 <= 0 || p50 > 0.1 {
		t.Fatalf("p50 = %v, want within (0, 0.1]", p50)
	}
	p95 := quantile(h, 0.95)
	if p95 <= 0.2 || p95 > 0.5 {
		t.Fatalf("p95 = %v, want within (0.2, 0.5]", p95)
	}
	if q := quantile(reg.Histogram("t", "t", []float64{0.1}, obs.L("op", "empty")), 0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v", q)
	}
}

// TestConfigValidation pins the constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("no target accepted")
	}
	if _, err := Run(Config{Handler: discardHandler{}, BaseURL: "http://x"}); err == nil {
		t.Fatal("two targets accepted")
	}
	if _, err := Run(Config{Handler: discardHandler{}}); err == nil {
		t.Fatal("no days accepted")
	}
	if _, err := Run(Config{Handler: discardHandler{}, Days: []int{0}, Revalidate: 2}); err == nil {
		t.Fatal("revalidate fraction 2 accepted")
	}
}

type discardHandler struct{}

func (discardHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {}
