package load

// The loadgen report: BENCH_api.json. Quantiles are interpolated from
// the fixed-bucket latency histograms — the same shape every other
// BENCH_*.json in CI uses — so the report is cheap to produce, stable
// to diff, and needs no raw-sample retention.

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"time"

	"github.com/laces-project/laces/internal/obs"
)

// ReportSchema versions the BENCH_api.json document.
const ReportSchema = "laces-loadgen/v1"

// OpStats is the per-op-kind section of the report.
type OpStats struct {
	Op          string  `json:"op"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	NotModified int64   `json:"not_modified"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// Report is the whole BENCH_api.json document.
type Report struct {
	Schema          string    `json:"schema"`
	Target          string    `json:"target"` // "in-process" or the base URL
	Family          string    `json:"family"`
	Days            int       `json:"days"`
	Prefixes        int       `json:"prefixes"`
	Seed            int64     `json:"seed"`
	Workers         int       `json:"workers"`
	RatePerSec      float64   `json:"rate_per_sec"` // 0 = closed loop
	Revalidate      float64   `json:"revalidate_fraction"`
	ScheduledOps    int       `json:"scheduled_ops"`
	Requests        int64     `json:"requests"`
	Errors          int64     `json:"errors"`
	NotModified     int64     `json:"not_modified"`
	NotModifiedRate float64   `json:"not_modified_rate"`
	WallSeconds     float64   `json:"wall_seconds"`
	ReqPerSec       float64   `json:"req_per_sec"`
	P50Ms           float64   `json:"p50_ms"`
	P95Ms           float64   `json:"p95_ms"`
	P99Ms           float64   `json:"p99_ms"`
	AllocPerOp      float64   `json:"alloc_bytes_per_op"` // 0 when not in-process
	DeterminismOK   bool      `json:"determinism_ok"`
	DeterminismNote string    `json:"determinism_note,omitempty"`
	Ops             []OpStats `json:"ops"`
}

// WriteJSON emits the report as indented JSON with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// quantile interpolates the q-quantile (0 < q < 1) in seconds from a
// fixed-bucket histogram: linear within the bucket that crosses the
// target rank. The +Inf bucket clamps to the last finite bound — a
// deliberate under-report that keeps the value finite and the report
// diffable.
func quantile(h *obs.Histogram, q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	bounds := h.Bounds()
	counts := h.BucketCounts()
	var cum float64
	lower := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			upper := bounds[i]
			frac := (rank - cum) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum = next
		if i < len(bounds) {
			lower = bounds[i]
		}
	}
	if len(bounds) > 0 {
		return bounds[len(bounds)-1]
	}
	return 0
}

// merge folds a set of histograms into one (shared bounds assumed) for
// the report's overall quantiles.
func mergedQuantile(hists map[string]*obs.Histogram, q float64) float64 {
	var bounds []float64
	var counts []int64
	for _, h := range hists {
		b, c := h.Bounds(), h.BucketCounts()
		if counts == nil {
			bounds = b
			counts = make([]int64, len(c))
		}
		for i, v := range c {
			counts[i] += v
		}
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	lower := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			frac := (rank - cum) / float64(c)
			return lower + frac*(bounds[i]-lower)
		}
		cum = next
		if i < len(bounds) {
			lower = bounds[i]
		}
	}
	return bounds[len(bounds)-1]
}

func ms(seconds float64) float64 { return round3(seconds * 1e3) }

func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }

// buildReport assembles the final document from the run's tallies.
func buildReport(cfg Config, total int, wall time.Duration, allocPerOp float64,
	pr *probeResult, hists map[string]*obs.Histogram, tallies *[5]opTally) *Report {
	target := "in-process"
	if cfg.BaseURL != "" {
		target = cfg.BaseURL
	}
	rep := &Report{
		Schema:          ReportSchema,
		Target:          target,
		Family:          cfg.Family,
		Days:            len(cfg.Days),
		Prefixes:        len(cfg.Prefixes),
		Seed:            cfg.Seed,
		Workers:         cfg.Workers,
		RatePerSec:      cfg.Rate,
		Revalidate:      cfg.Revalidate,
		ScheduledOps:    total,
		WallSeconds:     round3(wall.Seconds()),
		AllocPerOp:      math.Round(allocPerOp),
		DeterminismOK:   pr.detOK,
		DeterminismNote: pr.detNote,
	}
	for kind, h := range hists {
		t := &tallies[opIndex(kind)]
		reqs := t.requests.Load()
		if reqs == 0 {
			continue
		}
		rep.Requests += reqs
		rep.Errors += t.errors.Load()
		rep.NotModified += t.notModified.Load()
		rep.Ops = append(rep.Ops, OpStats{
			Op:          kind,
			Requests:    reqs,
			Errors:      t.errors.Load(),
			NotModified: t.notModified.Load(),
			P50Ms:       ms(quantile(h, 0.50)),
			P95Ms:       ms(quantile(h, 0.95)),
			P99Ms:       ms(quantile(h, 0.99)),
		})
	}
	sort.Slice(rep.Ops, func(i, j int) bool { return rep.Ops[i].Op < rep.Ops[j].Op })
	if rep.Requests > 0 {
		rep.NotModifiedRate = round3(float64(rep.NotModified) / float64(rep.Requests))
	}
	if wall > 0 {
		rep.ReqPerSec = round3(float64(rep.Requests) / wall.Seconds())
	}
	rep.P50Ms = ms(mergedQuantile(hists, 0.50))
	rep.P95Ms = ms(mergedQuantile(hists, 0.95))
	rep.P99Ms = ms(mergedQuantile(hists, 0.99))
	return rep
}
