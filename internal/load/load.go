// Package load is the deterministic mixed-workload generator behind
// `laces loadgen` and CI's api-load-smoke job: it drives the serving
// tier (internal/api) with a dashboard-shaped request mix — day fetch /
// timeline / events / stability / aggregates — measures latency into
// fixed-bucket histograms (internal/obs), paces the open-loop schedule
// with internal/rate, and emits the BENCH_api.json report.
//
// Determinism contract: the request schedule is a pure function of the
// config (seeded math/rand, single stream, pregenerated before any
// request fires), so two runs against the same archive issue the same
// requests in the same order. A pre-phase probe additionally verifies
// the server side of the contract — stable ETags, 304 on revalidation,
// byte-identical paginated walks — and reports it as determinism_ok.
// Only the latency numbers are wall-clock: time here is the measurement
// instrument, never an input to what gets requested.
package load

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/rate"
)

// Op kind names, also the report's per-op keys.
const (
	OpDay        = "day"
	OpTimeline   = "timeline"
	OpEvents     = "events"
	OpStability  = "stability"
	OpAggregates = "aggregates"
)

// Mix weights the workload by op kind. Zero-weight kinds are never
// issued; an all-zero mix gets DefaultMix.
type Mix struct {
	Day        int `json:"day"`
	Timeline   int `json:"timeline"`
	Events     int `json:"events"`
	Stability  int `json:"stability"`
	Aggregates int `json:"aggregates"`
}

// DefaultMix approximates a dashboard fleet: mostly day fetches and
// timelines, a steady trickle of event scans, stability checks and
// aggregate panels.
var DefaultMix = Mix{Day: 50, Timeline: 25, Events: 10, Stability: 10, Aggregates: 5}

func (m Mix) total() int { return m.Day + m.Timeline + m.Events + m.Stability + m.Aggregates }

// Config describes one load run. Exactly one of Handler (in-process)
// or BaseURL (live server) must be set.
type Config struct {
	// Handler serves requests in-process: no sockets, so the measured
	// path is the serving tier itself and alloc/op can be reported.
	Handler http.Handler
	// BaseURL targets a live server ("http://host:port") instead.
	BaseURL string

	// Family plus the target lists the schedule draws from. Days is
	// required; Prefixes may be empty (prefix-keyed ops then fold into
	// day fetches).
	Family   string
	Days     []int
	Prefixes []string

	Mix Mix
	// Rate is the open-loop request rate per second (paced via
	// rate.Pacer). 0 means closed-loop: as fast as the workers go.
	Rate float64
	// Duration bounds the run. With Rate set, it also sizes the
	// schedule (Rate × Duration requests); closed-loop runs stop at
	// whichever of Duration / Requests comes first.
	Duration time.Duration
	// Requests overrides the schedule length (0 = derive: Rate×Duration
	// when paced, DefaultRequests otherwise).
	Requests int
	// Workers is the concurrency (default DefaultWorkers).
	Workers int
	// Seed drives the schedule RNG; equal seeds mean equal schedules.
	Seed int64
	// Revalidate is the fraction [0,1] of requests sent conditionally
	// (If-None-Match with the ETag discovered in the probe phase) — the
	// dashboard-revalidation share of the workload.
	Revalidate float64
	// PageSize is the ?limit= for event scans (default 100).
	PageSize int

	// Clock abstracts time for tests; nil means wall clock.
	Clock rate.Clock
	// Obs receives the latency histograms; nil means a private registry.
	Obs *obs.Registry
}

// Defaults for unset knobs.
const (
	DefaultWorkers  = 4
	DefaultRequests = 2000
	DefaultPageSize = 100
)

// latencyBounds is the request-latency bucket ladder in seconds: 1-2-5
// steps from 1µs (in-process cache hit) to 10s, fine enough for p99
// interpolation on both in-process and socket paths.
var latencyBounds = []float64{
	1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1, 2, 5, 10,
}

// wallClock is the one place real time enters the load generator: the
// generator's whole purpose is measuring real request latency.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() } //laces:allow detnow the load generator measures wall-clock request latency by design

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// op is one preplanned request.
type op struct {
	kind string
	path string
	inm  string // If-None-Match value, "" = unconditional
}

// client issues one GET. do discards the body (hot path); get returns
// it (probe phase).
type client interface {
	do(path, inm string) (status int, n int64, err error)
	get(path, inm string) (status int, etag string, body []byte, err error)
}

// handlerClient drives an http.Handler in-process with a reusable
// response writer. Not safe for concurrent use: one per worker.
type handlerClient struct {
	h http.Handler
	w discardRW
}

// discardRW counts body bytes and keeps headers/status only.
type discardRW struct {
	hdr    http.Header
	status int
	n      int64
}

func (w *discardRW) Header() http.Header { return w.hdr }
func (w *discardRW) WriteHeader(c int)   { w.status = c }
func (w *discardRW) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
func (w *discardRW) Flush() {}

func (c *handlerClient) request(path, inm string) (*http.Request, error) {
	u, err := url.Parse(path)
	if err != nil {
		return nil, err
	}
	r := &http.Request{
		Method: http.MethodGet, URL: u,
		Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header: make(http.Header, 2), Host: "loadgen", RequestURI: path,
	}
	if inm != "" {
		r.Header["If-None-Match"] = []string{inm}
	}
	return r, nil
}

func (c *handlerClient) do(path, inm string) (int, int64, error) {
	r, err := c.request(path, inm)
	if err != nil {
		return 0, 0, err
	}
	c.w.status, c.w.n = http.StatusOK, 0
	if c.w.hdr == nil {
		c.w.hdr = make(http.Header, 8)
	}
	for k := range c.w.hdr {
		delete(c.w.hdr, k)
	}
	c.h.ServeHTTP(&c.w, r)
	return c.w.status, c.w.n, nil
}

func (c *handlerClient) get(path, inm string) (int, string, []byte, error) {
	r, err := c.request(path, inm)
	if err != nil {
		return 0, "", nil, err
	}
	w := &bufRW{hdr: make(http.Header, 8), status: http.StatusOK}
	c.h.ServeHTTP(w, r)
	return w.status, w.hdr.Get("Etag"), w.body, nil
}

// bufRW captures the body for the probe phase.
type bufRW struct {
	hdr    http.Header
	status int
	body   []byte
}

func (w *bufRW) Header() http.Header { return w.hdr }
func (w *bufRW) WriteHeader(c int)   { w.status = c }
func (w *bufRW) Write(p []byte) (int, error) {
	w.body = append(w.body, p...)
	return len(p), nil
}
func (w *bufRW) Flush() {}

// httpClient targets a live server over sockets.
type httpClient struct {
	base string
	c    *http.Client
}

func (c *httpClient) roundTrip(path, inm string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	return c.c.Do(req)
}

func (c *httpClient) do(path, inm string) (int, int64, error) {
	resp, err := c.roundTrip(path, inm)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, n, err
}

func (c *httpClient) get(path, inm string) (int, string, []byte, error) {
	resp, err := c.roundTrip(path, inm)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Etag"), body, err
}

// Run executes one load run: probe phase (ETag discovery + determinism
// checks), schedule generation, the timed phase, and the report.
func Run(cfg Config) (*Report, error) {
	if (cfg.Handler == nil) == (cfg.BaseURL == "") {
		return nil, fmt.Errorf("load: exactly one of Handler or BaseURL must be set")
	}
	if len(cfg.Days) == 0 {
		return nil, fmt.Errorf("load: at least one archived day is required")
	}
	if cfg.Family == "" {
		cfg.Family = "ipv4"
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	if len(cfg.Prefixes) == 0 {
		// Without prefixes the prefix-keyed ops have no targets; their
		// weight folds into day fetches.
		cfg.Mix.Day += cfg.Mix.Timeline + cfg.Mix.Stability
		cfg.Mix.Timeline, cfg.Mix.Stability = 0, 0
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.Revalidate < 0 || cfg.Revalidate > 1 {
		return nil, fmt.Errorf("load: revalidate fraction %v outside [0,1]", cfg.Revalidate)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = wallClock{}
	}
	total := cfg.Requests
	if total <= 0 {
		if cfg.Rate > 0 && cfg.Duration > 0 {
			total = int(cfg.Rate * cfg.Duration.Seconds())
		} else {
			total = DefaultRequests
		}
	}

	newClient := func() client {
		if cfg.Handler != nil {
			return &handlerClient{h: cfg.Handler}
		}
		return &httpClient{base: strings.TrimRight(cfg.BaseURL, "/"), c: &http.Client{Timeout: 30 * time.Second}}
	}

	pr, err := probe(newClient(), cfg)
	if err != nil {
		return nil, err
	}
	schedule := buildSchedule(cfg, total, pr)

	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	hists := make(map[string]*obs.Histogram)
	for _, kind := range []string{OpDay, OpTimeline, OpEvents, OpStability, OpAggregates} {
		hists[kind] = reg.Histogram("laces_loadgen_request_seconds",
			"Load-generator request latency, by op.", latencyBounds, obs.L("op", kind))
	}
	var tallies [5]opTally

	var pacer *rate.Pacer
	if cfg.Rate > 0 {
		p, err := rate.NewPacer(clock.Now(), cfg.Rate, 0)
		if err != nil {
			return nil, err
		}
		pacer = p
	}
	ctx := context.Background()
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = clock.Now().Add(cfg.Duration)
	}

	var ms0 runtime.MemStats
	inProcess := cfg.Handler != nil
	if inProcess {
		runtime.ReadMemStats(&ms0)
	}
	start := clock.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := newClient()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(schedule) {
					return
				}
				if !deadline.IsZero() && clock.Now().After(deadline) {
					return
				}
				if pacer != nil {
					if err := clock.Sleep(ctx, pacer.SendTime(i, 0).Sub(clock.Now())); err != nil {
						return
					}
				}
				o := &schedule[i]
				t0 := clock.Now()
				status, _, err := c.do(o.path, o.inm)
				hists[o.kind].Observe(clock.Now().Sub(t0).Seconds())
				ti := opIndex(o.kind)
				tallies[ti].requests.Add(1)
				switch {
				case err != nil || status >= 400:
					tallies[ti].errors.Add(1)
				case status == http.StatusNotModified:
					tallies[ti].notModified.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := clock.Now().Sub(start)
	allocPerOp := 0.0
	if inProcess {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		var done int64
		for i := range tallies {
			done += tallies[i].requests.Load()
		}
		if done > 0 {
			allocPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(done)
		}
	}
	return buildReport(cfg, total, wall, allocPerOp, pr, hists, &tallies), nil
}

// opIndex maps an op kind to its tally slot.
func opIndex(kind string) int {
	switch kind {
	case OpDay:
		return 0
	case OpTimeline:
		return 1
	case OpEvents:
		return 2
	case OpStability:
		return 3
	default:
		return 4
	}
}

type opTally struct {
	requests    atomic.Int64
	errors      atomic.Int64
	notModified atomic.Int64
}

// probeResult carries what the warm-up phase discovered.
type probeResult struct {
	dayEtags map[int]string
	idxEtag  string
	detOK    bool
	detNote  string
}

// probe warms the server, collects the validators conditional requests
// revalidate against, and verifies the determinism contract: stable
// ETags (and a 304 on immediate revalidation) per archived day, and a
// byte-identical paginated events walk when run twice.
func probe(c client, cfg Config) (*probeResult, error) {
	pr := &probeResult{dayEtags: make(map[int]string), detOK: true}
	days := cfg.Days
	if len(days) > 64 {
		days = days[:64] // bound the probe; the schedule still uses every day
	}
	for _, d := range days {
		path := fmt.Sprintf("/v1/census?day=%d&family=%s", d, cfg.Family)
		st, etag, _, err := c.get(path, "")
		if err != nil {
			return nil, fmt.Errorf("load: probe %s: %w", path, err)
		}
		if st != http.StatusOK {
			return nil, fmt.Errorf("load: probe %s: status %d", path, st)
		}
		if etag == "" {
			pr.detOK = false
			pr.detNote = fmt.Sprintf("day %d served without an ETag", d)
			continue
		}
		pr.dayEtags[d] = etag
		st2, etag2, _, err := c.get(path, etag)
		if err != nil {
			return nil, err
		}
		if st2 != http.StatusNotModified || etag2 != etag {
			pr.detOK = false
			pr.detNote = fmt.Sprintf("day %d: revalidation answered %d with ETag %q (want 304 with %q)", d, st2, etag2, etag)
		}
	}
	if cfg.Mix.Events > 0 || cfg.Mix.Aggregates > 0 || cfg.Mix.Timeline > 0 || cfg.Mix.Stability > 0 {
		h1, etag, n1, err := eventsWalk(c, cfg)
		if err != nil {
			return nil, err
		}
		pr.idxEtag = etag
		h2, _, n2, err := eventsWalk(c, cfg)
		if err != nil {
			return nil, err
		}
		if h1 != h2 || n1 != n2 {
			pr.detOK = false
			pr.detNote = fmt.Sprintf("paginated events walk not reproducible (%d pages %016x vs %d pages %016x)", n1, h1, n2, h2)
		}
	}
	return pr, nil
}

// eventsWalk pages through the full event list and digests the bytes.
func eventsWalk(c client, cfg Config) (uint64, string, int, error) {
	h := fnv.New64a()
	pages := 0
	etag := ""
	path := fmt.Sprintf("/v1/events?family=%s&limit=%d", cfg.Family, cfg.PageSize)
	for {
		st, tag, body, err := c.get(path, "")
		if err != nil {
			return 0, "", 0, fmt.Errorf("load: events walk: %w", err)
		}
		if st != http.StatusOK {
			return 0, "", 0, fmt.Errorf("load: events walk: status %d on %s", st, path)
		}
		if etag == "" {
			etag = tag
		}
		h.Write(body)
		pages++
		var page struct {
			NextPageToken string `json:"next_page_token"`
		}
		if err := json.Unmarshal(body, &page); err != nil {
			return 0, "", 0, fmt.Errorf("load: events walk: %w", err)
		}
		if page.NextPageToken == "" {
			return h.Sum64(), etag, pages, nil
		}
		path = "/v1/events?page_token=" + page.NextPageToken
	}
}

// buildSchedule pregenerates the whole request sequence from one seeded
// stream: deterministic for a given config, independent of worker count
// and timing.
func buildSchedule(cfg Config, total int, pr *probeResult) []op {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mix := cfg.Mix
	cum := [5]int{mix.Day, 0, 0, 0, 0}
	cum[1] = cum[0] + mix.Timeline
	cum[2] = cum[1] + mix.Events
	cum[3] = cum[2] + mix.Stability
	cum[4] = cum[3] + mix.Aggregates
	schedule := make([]op, total)
	for i := range schedule {
		r := rng.Intn(cum[4])
		reval := rng.Float64() < cfg.Revalidate
		var o op
		switch {
		case r < cum[0]:
			day := cfg.Days[rng.Intn(len(cfg.Days))]
			o = op{kind: OpDay, path: fmt.Sprintf("/v1/census?day=%d&family=%s", day, cfg.Family)}
			if reval {
				o.inm = pr.dayEtags[day]
			}
		case r < cum[1]:
			p := cfg.Prefixes[rng.Intn(len(cfg.Prefixes))]
			o = op{kind: OpTimeline, path: fmt.Sprintf("/v1/timeline/%s?family=%s", p, cfg.Family)}
			if reval {
				o.inm = pr.idxEtag
			}
		case r < cum[2]:
			a := cfg.Days[rng.Intn(len(cfg.Days))]
			b := cfg.Days[rng.Intn(len(cfg.Days))]
			if a > b {
				a, b = b, a
			}
			o = op{kind: OpEvents, path: fmt.Sprintf("/v1/events?family=%s&from=%d&to=%d&limit=%d", cfg.Family, a, b, cfg.PageSize)}
			if reval {
				o.inm = pr.idxEtag
			}
		case r < cum[3]:
			p := cfg.Prefixes[rng.Intn(len(cfg.Prefixes))]
			o = op{kind: OpStability, path: fmt.Sprintf("/v1/stability?family=%s&prefix=%s", cfg.Family, url.QueryEscape(p))}
			if reval {
				o.inm = pr.idxEtag
			}
		default:
			o = op{kind: OpAggregates, path: "/v1/aggregates?family=" + cfg.Family}
			if reval {
				o.inm = pr.idxEtag
			}
		}
		schedule[i] = o
	}
	return schedule
}
