package packet

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	v4src = netip.MustParseAddr("192.0.2.1")
	v4dst = netip.MustParseAddr("198.51.100.7")
	v6src = netip.MustParseAddr("2001:db8::1")
	v6dst = netip.MustParseAddr("2001:db8:ffff::42")
)

func TestIPv4RoundTrip(t *testing.T) {
	payload := []byte("hello anycast")
	h := IPv4{TOS: 0x10, ID: 0xbeef, TTL: 57, Protocol: ProtoICMP, Src: v4src, Dst: v4dst}
	buf, err := h.AppendTo(nil, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, payload...)

	var got IPv4
	gotPayload, err := got.DecodeFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != v4src || got.Dst != v4dst || got.Protocol != ProtoICMP ||
		got.TTL != 57 || got.ID != 0xbeef || got.TOS != 0x10 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if string(gotPayload) != string(payload) {
		t.Fatalf("payload mismatch: %q", gotPayload)
	}
	if got.PayloadLen != len(payload) {
		t.Fatalf("PayloadLen = %d, want %d", got.PayloadLen, len(payload))
	}
}

func TestIPv4DefaultTTL(t *testing.T) {
	h := IPv4{Src: v4src, Dst: v4dst, Protocol: ProtoTCP}
	buf, err := h.AppendTo(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got IPv4
	if _, err := got.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	if got.TTL != 64 {
		t.Fatalf("default TTL = %d, want 64", got.TTL)
	}
}

func TestIPv4RejectsV6Addrs(t *testing.T) {
	h := IPv4{Src: v6src, Dst: v4dst}
	if _, err := h.AppendTo(nil, 0); err == nil {
		t.Fatal("expected error for IPv6 source in IPv4 header")
	}
}

func TestIPv4RejectsOversize(t *testing.T) {
	h := IPv4{Src: v4src, Dst: v4dst}
	if _, err := h.AppendTo(nil, 65536); err == nil {
		t.Fatal("expected error for oversize payload")
	}
}

func TestIPv4DecodeCorruption(t *testing.T) {
	h := IPv4{Src: v4src, Dst: v4dst, Protocol: ProtoICMP}
	buf, _ := h.AppendTo(nil, 0)

	var got IPv4
	// Truncated.
	if _, err := got.DecodeFrom(buf[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated decode err = %v, want ErrTruncated", err)
	}
	// Checksum corruption.
	bad := append([]byte(nil), buf...)
	bad[8] ^= 0xff
	if _, err := got.DecodeFrom(bad); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupt decode err = %v, want ErrBadChecksum", err)
	}
	// Wrong version.
	bad = append([]byte(nil), buf...)
	bad[0] = 0x65
	if _, err := got.DecodeFrom(bad); err == nil {
		t.Fatal("version 6 in IPv4 decode should fail")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	h := IPv6{TrafficClass: 0xa2, FlowLabel: 0xabcde, NextHeader: ProtoICMPv6, HopLimit: 33, Src: v6src, Dst: v6dst}
	buf, err := h.AppendTo(nil, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, payload...)

	var got IPv6
	gotPayload, err := got.DecodeFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != v6src || got.Dst != v6dst || got.NextHeader != ProtoICMPv6 ||
		got.HopLimit != 33 || got.TrafficClass != 0xa2 || got.FlowLabel != 0xabcde {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(gotPayload) != len(payload) {
		t.Fatalf("payload length mismatch: %d", len(gotPayload))
	}
}

func TestIPv6RejectsV4Addrs(t *testing.T) {
	h := IPv6{Src: v4src, Dst: v6dst}
	if _, err := h.AppendTo(nil, 0); err == nil {
		t.Fatal("expected error for IPv4 source in IPv6 header")
	}
}

func TestIPv6DecodeTruncated(t *testing.T) {
	var got IPv6
	if _, err := got.DecodeFrom(make([]byte, 20)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// Declared payload longer than buffer.
	h := IPv6{Src: v6src, Dst: v6dst, NextHeader: ProtoUDP}
	buf, _ := h.AppendTo(nil, 100)
	if _, err := got.DecodeFrom(buf); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestIPv4PropertyRoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, proto uint8, a, b [4]byte, plen uint8) bool {
		h := IPv4{
			TOS: tos, ID: id, TTL: ttl, Protocol: proto,
			Src: netip.AddrFrom4(a), Dst: netip.AddrFrom4(b),
		}
		buf, err := h.AppendTo(nil, int(plen))
		if err != nil {
			return false
		}
		buf = append(buf, make([]byte, plen)...)
		var got IPv4
		payload, err := got.DecodeFrom(buf)
		if err != nil {
			return false
		}
		wantTTL := ttl
		if wantTTL == 0 {
			wantTTL = 64
		}
		return got.Src == h.Src && got.Dst == h.Dst && got.Protocol == proto &&
			got.ID == id && got.TOS == tos && got.TTL == wantTTL && len(payload) == int(plen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
