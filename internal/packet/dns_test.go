package packet

import (
	"errors"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDNSQueryRoundTrip(t *testing.T) {
	q := NewDNSProbe(testIdentity, "probe.example.org", DNSTypeA, DNSClassIN)
	buf, err := q.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got DNSMessage
	if err := got.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	if got.Response || got.ID != q.ID || len(got.Question) != 1 {
		t.Fatalf("decoded query mismatch: %+v", got)
	}
	if got.Question[0].Type != DNSTypeA || got.Question[0].Class != DNSClassIN {
		t.Fatalf("question type/class mismatch: %+v", got.Question[0])
	}
	id, zone, err := ParseDNSProbeName(got.Question[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if id != testIdentity {
		t.Fatalf("identity mismatch: %+v vs %+v", id, testIdentity)
	}
	if zone != "probe.example.org" {
		t.Fatalf("zone = %q", zone)
	}
}

func TestDNSReplyEchoesQuestion(t *testing.T) {
	q := NewDNSProbe(testIdentity, "probe.example.org", DNSTypeA, DNSClassIN)
	addr := netip.MustParseAddr("203.0.113.9").As4()
	resp := q.Reply(DNSRecord{
		Name: q.Question[0].Name, Type: DNSTypeA, Class: DNSClassIN,
		TTL: 300, Data: addr[:],
	})
	buf, err := resp.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got DNSMessage
	if err := got.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.RA {
		t.Fatal("reply flags wrong")
	}
	// Identity recoverable from the echoed question even at a worker that
	// did not send the query.
	id, _, err := ParseDNSProbeName(got.Question[0].Name)
	if err != nil || id != testIdentity {
		t.Fatalf("identity from reply: %+v, %v", id, err)
	}
	a, err := got.Answer[0].Addr()
	if err != nil || a != netip.MustParseAddr("203.0.113.9") {
		t.Fatalf("answer addr = %v, %v", a, err)
	}
}

func TestDNSChaosProbe(t *testing.T) {
	q := NewDNSProbe(testIdentity, "", DNSTypeTXT, DNSClassCHAOS)
	if q.Question[0].Name != "id.server." {
		t.Fatalf("CHAOS probe name = %q, want id.server.", q.Question[0].Name)
	}
	if q.Question[0].Class != DNSClassCHAOS || q.Question[0].Type != DNSTypeTXT {
		t.Fatalf("CHAOS probe question: %+v", q.Question[0])
	}
	// Worker recoverable from message ID (RFC 4892 names can't carry it).
	if uint8(q.ID>>8) != testIdentity.Worker {
		t.Fatalf("worker not in message ID: %#x", q.ID)
	}

	resp := q.Reply(DNSRecord{
		Name: "id.server.", Type: DNSTypeTXT, Class: DNSClassCHAOS,
		Data: txtData("ams01.example-cdn.net"),
	})
	buf, err := resp.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got DNSMessage
	if err := got.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	strs, err := got.Answer[0].TXT()
	if err != nil || len(strs) != 1 || strs[0] != "ams01.example-cdn.net" {
		t.Fatalf("TXT round trip: %v, %v", strs, err)
	}
}

func TestDNSTXTMultipleStrings(t *testing.T) {
	rec := DNSRecord{Type: DNSTypeTXT, Data: append(txtData("auth1"), txtData("auth2")...)}
	strs, err := rec.TXT()
	if err != nil || len(strs) != 2 || strs[0] != "auth1" || strs[1] != "auth2" {
		t.Fatalf("TXT = %v, %v", strs, err)
	}
	// Truncated string data.
	rec.Data = []byte{5, 'a'}
	if _, err := rec.TXT(); err == nil {
		t.Fatal("truncated TXT should fail")
	}
	// Wrong type.
	rec = DNSRecord{Type: DNSTypeA, Data: []byte{1, 2, 3, 4}}
	if _, err := rec.TXT(); err == nil {
		t.Fatal("TXT() on A record should fail")
	}
}

func TestDNSNameCompressionPointer(t *testing.T) {
	// Hand-craft a response using a compression pointer for the answer
	// name (pointing at the question name at offset 12).
	q := DNSMessage{ID: 1, Question: []DNSQuestion{{Name: "ns1.example.org.", Type: DNSTypeA, Class: DNSClassIN}}}
	buf, err := q.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mark as response with one answer.
	buf[2] |= 0x80
	put16(buf, 6, 1)
	// Answer: pointer to offset 12, type A, class IN, TTL 60, 4-byte rdata.
	buf = append(buf, 0xc0, 12)
	var fixed [10]byte
	put16(fixed[:], 0, DNSTypeA)
	put16(fixed[:], 2, DNSClassIN)
	put32(fixed[:], 4, 60)
	put16(fixed[:], 8, 4)
	buf = append(buf, fixed[:]...)
	buf = append(buf, 203, 0, 113, 77)

	var got DNSMessage
	if err := got.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	if got.Answer[0].Name != "ns1.example.org." {
		t.Fatalf("compressed name = %q", got.Answer[0].Name)
	}
	a, _ := got.Answer[0].Addr()
	if a != netip.MustParseAddr("203.0.113.77") {
		t.Fatalf("rdata = %v", a)
	}
}

func TestDNSCompressionLoopRejected(t *testing.T) {
	// Header + a name that is a pointer to itself.
	buf := make([]byte, 12, 14)
	put16(buf, 4, 1) // one question
	buf = append(buf, 0xc0, 12)
	var got DNSMessage
	if err := got.DecodeFrom(buf); err == nil {
		t.Fatal("self-referencing pointer must be rejected")
	}
}

func TestDNSDecodeTruncated(t *testing.T) {
	var got DNSMessage
	if err := got.DecodeFrom(make([]byte, 5)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	q := NewDNSProbe(testIdentity, "example.org", DNSTypeA, DNSClassIN)
	buf, _ := q.AppendTo(nil)
	if err := got.DecodeFrom(buf[:len(buf)-3]); err == nil {
		t.Fatal("truncated question should fail")
	}
}

func TestDNSLabelLimits(t *testing.T) {
	long := strings.Repeat("a", 64)
	m := DNSMessage{Question: []DNSQuestion{{Name: long + ".org", Type: DNSTypeA, Class: DNSClassIN}}}
	if _, err := m.AppendTo(nil); err == nil {
		t.Fatal("64-byte label must be rejected")
	}
	m.Question[0].Name = "a..b.org"
	if _, err := m.AppendTo(nil); err == nil {
		t.Fatal("empty label must be rejected")
	}
}

func TestDNSRootName(t *testing.T) {
	m := DNSMessage{Question: []DNSQuestion{{Name: ".", Type: DNSTypeA, Class: DNSClassIN}}}
	buf, err := m.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got DNSMessage
	if err := got.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	if got.Question[0].Name != "." {
		t.Fatalf("root name = %q", got.Question[0].Name)
	}
}

func TestDNSProbeNameProperty(t *testing.T) {
	f := func(meas uint16, worker uint8, nanos int64) bool {
		id := Identity{
			Measurement: meas,
			Worker:      worker,
			TxTime:      time.Unix(0, nanos).UTC(),
		}
		got, zone, err := ParseDNSProbeName(DNSProbeName(id, "census.example.com"))
		return err == nil && got == id && zone == "census.example.com"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseDNSProbeNameRejectsForeign(t *testing.T) {
	for _, name := range []string{
		"www.example.com.",
		"lx-zz-07-00.example.com.",
		"lx-0001-07.example.com.",
		"singlelabel",
	} {
		if _, _, err := ParseDNSProbeName(name); err == nil {
			t.Errorf("ParseDNSProbeName(%q) should fail", name)
		}
	}
}

// txtData encodes one TXT character-string.
func txtData(s string) []byte {
	return append([]byte{byte(len(s))}, s...)
}

func BenchmarkDNSQueryEncode(b *testing.B) {
	q := NewDNSProbe(testIdentity, "probe.example.org", DNSTypeA, DNSClassIN)
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = q.AppendTo(buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSDecode(b *testing.B) {
	q := NewDNSProbe(testIdentity, "probe.example.org", DNSTypeA, DNSClassIN)
	buf, _ := q.AppendTo(nil)
	var m DNSMessage
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.DecodeFrom(buf); err != nil {
			b.Fatal(err)
		}
	}
}
