package packet

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestTCPRoundTripV4(t *testing.T) {
	seg := NewTCPProbe(testIdentity)
	buf, err := seg.AppendTo(nil, v4src, v4dst)
	if err != nil {
		t.Fatal(err)
	}
	var got TCPSegment
	if err := got.DecodeFrom(buf, v4src, v4dst); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != seg.SrcPort || got.DstPort != TCPProbePort ||
		got.Seq != seg.Seq || got.Ack != seg.Ack {
		t.Fatalf("fields mismatch: %+v vs %+v", got, seg)
	}
	if !got.HasFlags(TCPFlagSYN | TCPFlagACK) {
		t.Fatal("probe must be SYN/ACK")
	}
}

func TestTCPRoundTripV6(t *testing.T) {
	seg := NewTCPProbe(testIdentity)
	buf, err := seg.AppendTo(nil, v6src, v6dst)
	if err != nil {
		t.Fatal(err)
	}
	var got TCPSegment
	if err := got.DecodeFrom(buf, v6src, v6dst); err != nil {
		t.Fatal(err)
	}
	if got.Ack != seg.Ack {
		t.Fatalf("ack mismatch: %#x vs %#x", got.Ack, seg.Ack)
	}
}

func TestTCPChecksumBindsAddresses(t *testing.T) {
	seg := NewTCPProbe(testIdentity)
	buf, _ := seg.AppendTo(nil, v4src, v4dst)
	var got TCPSegment
	other := netip.MustParseAddr("203.0.113.200")
	if err := got.DecodeFrom(buf, v4src, other); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("wrong-address err = %v, want ErrBadChecksum", err)
	}
}

func TestTCPMixedFamiliesRejected(t *testing.T) {
	seg := NewTCPProbe(testIdentity)
	if _, err := seg.AppendTo(nil, v4src, v6dst); err == nil {
		t.Fatal("mixed families should fail")
	}
}

func TestTCPDecodeTruncated(t *testing.T) {
	var got TCPSegment
	if err := got.DecodeFrom(make([]byte, 10), v4src, v4dst); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestRSTReplyEchoesAckAsSeq(t *testing.T) {
	// RFC 9293: RST in response to our SYN/ACK carries SEQ = our ACK.
	// This is how the identity survives the round trip.
	probe := NewTCPProbe(testIdentity)
	rst := probe.RSTReply()
	if !rst.HasFlags(TCPFlagRST) {
		t.Fatal("reply must set RST")
	}
	if rst.Seq != probe.Ack {
		t.Fatalf("RST seq = %#x, want probe ack %#x", rst.Seq, probe.Ack)
	}
	if rst.SrcPort != probe.DstPort || rst.DstPort != probe.SrcPort {
		t.Fatal("RST must swap ports")
	}
	if !rst.IsProbeReply(testIdentity.Measurement) {
		t.Fatal("RST should be recognised as a probe reply")
	}
	if rst.IsProbeReply(testIdentity.Measurement + 1) {
		t.Fatal("RST should not match a different measurement")
	}
}

func TestTCPAckIdentityRoundTrip(t *testing.T) {
	tx := time.Date(2025, 1, 6, 10, 30, 0, 250_000_000, time.UTC)
	for worker := 0; worker < 256; worker += 17 {
		ack := TCPAck(uint8(worker), tx)
		if got := TCPAckWorker(ack); got != uint8(worker) {
			t.Fatalf("worker round trip: got %d want %d", got, worker)
		}
	}
}

func TestTCPAckRTTRecovery(t *testing.T) {
	f := func(worker uint8, rttMicros uint32) bool {
		rtt := time.Duration(rttMicros%10_000_000) * time.Microsecond // < 10s
		tx := time.Date(2025, 3, 1, 8, 0, 0, 0, time.UTC).Add(time.Duration(rttMicros) * time.Microsecond)
		ack := TCPAck(worker, tx)
		got := TCPAckRTT(ack, tx.Add(rtt))
		return got == rtt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPAckRTTWrap(t *testing.T) {
	// TX just below the 24-bit microsecond wrap; RX just above it.
	tx := time.Unix(0, 0).Add(time.Duration(tcpAckMicrosMask) * time.Microsecond)
	ack := TCPAck(3, tx)
	rtt := 150 * time.Millisecond
	if got := TCPAckRTT(ack, tx.Add(rtt)); got != rtt {
		t.Fatalf("wrapped RTT = %v, want %v", got, rtt)
	}
}

func TestTCPProbeStaticFlowHeaders(t *testing.T) {
	// §5.1.4: source/destination ports must not vary across workers or
	// probes of the same measurement, keeping per-flow load balancers
	// deterministic.
	now := time.Now()
	a := NewTCPProbe(Identity{Measurement: 500, Worker: 0, TxTime: now})
	b := NewTCPProbe(Identity{Measurement: 500, Worker: 31, TxTime: now.Add(time.Second)})
	if a.SrcPort != b.SrcPort || a.DstPort != b.DstPort {
		t.Fatalf("flow headers differ: %d/%d vs %d/%d", a.SrcPort, a.DstPort, b.SrcPort, b.DstPort)
	}
}

func TestTCPPropertyRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, a, b [4]byte) bool {
		src := netip.AddrFrom4(a)
		dst := netip.AddrFrom4(b)
		seg := TCPSegment{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags}
		buf, err := seg.AppendTo(nil, src, dst)
		if err != nil {
			return false
		}
		var got TCPSegment
		if err := got.DecodeFrom(buf, src, dst); err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && got.Seq == seq &&
			got.Ack == ack && got.Flags == flags
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTCPProbeEncode(b *testing.B) {
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		seg := NewTCPProbe(testIdentity)
		var err error
		buf, err = seg.AppendTo(buf, v4src, v4dst)
		if err != nil {
			b.Fatal(err)
		}
	}
}
