package packet

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

var testIdentity = Identity{
	Measurement: 0x2a17,
	Worker:      7,
	TxTime:      time.Date(2024, 3, 21, 12, 0, 0, 123456789, time.UTC),
}

func TestICMPv4RoundTrip(t *testing.T) {
	req := NewICMPProbe(testIdentity, false)
	buf := req.AppendTo(nil)

	var got ICMPEcho
	if err := got.DecodeFrom(buf); err != nil {
		t.Fatal(err)
	}
	if !got.IsRequest() || got.IsReply() {
		t.Fatalf("decoded type %d should be a request", got.Type)
	}
	if got.ID != req.ID || got.Seq != req.Seq {
		t.Fatalf("id/seq mismatch: %+v vs %+v", got, req)
	}
	id, err := ParseICMPPayload(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != testIdentity {
		t.Fatalf("identity round trip: got %+v want %+v", id, testIdentity)
	}
}

func TestICMPv6RoundTripWithPseudoHeader(t *testing.T) {
	req := NewICMPProbe(testIdentity, true)
	buf, err := req.AppendToV6(nil, v6src, v6dst)
	if err != nil {
		t.Fatal(err)
	}
	var got ICMPEcho
	if err := got.DecodeFromV6(buf, v6src, v6dst); err != nil {
		t.Fatal(err)
	}
	if got.Type != ICMPv6EchoRequest {
		t.Fatalf("type = %d, want ICMPv6 echo request", got.Type)
	}
	// Decoding against a different address must fail the checksum: the
	// pseudo-header binds the ICMPv6 message to its IP endpoints. (Note a
	// plain swap would pass — the Internet checksum is commutative.)
	other := netip.MustParseAddr("2001:db8::dead")
	if err := got.DecodeFromV6(buf, v6src, other); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("wrong-address decode err = %v, want ErrBadChecksum", err)
	}
}

func TestICMPv6RequiresV6Addrs(t *testing.T) {
	req := NewICMPProbe(testIdentity, true)
	if _, err := req.AppendToV6(nil, v4src, v6dst); err == nil {
		t.Fatal("AppendToV6 with IPv4 source should fail")
	}
}

func TestICMPEchoReplyEchoesPayload(t *testing.T) {
	req := NewICMPProbe(testIdentity, false)
	reply := req.EchoReply(false)
	if !reply.IsReply() {
		t.Fatal("EchoReply should produce a reply type")
	}
	if reply.ID != req.ID || reply.Seq != req.Seq {
		t.Fatal("reply must echo id and seq")
	}
	id, err := ParseICMPPayload(reply.Payload)
	if err != nil || id != testIdentity {
		t.Fatalf("reply payload identity: %+v, %v", id, err)
	}
	v6 := req.EchoReply(true)
	if v6.Type != ICMPv6EchoReply {
		t.Fatalf("v6 reply type = %d", v6.Type)
	}
}

func TestICMPDecodeCorruption(t *testing.T) {
	buf := NewICMPProbe(testIdentity, false).AppendTo(nil)
	var got ICMPEcho
	if err := got.DecodeFrom(buf[:4]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated err = %v", err)
	}
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0x01
	if err := got.DecodeFrom(bad); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupt err = %v, want ErrBadChecksum", err)
	}
}

func TestICMPChecksumCoversWholeMessage(t *testing.T) {
	f := func(id, seq uint16, payload []byte) bool {
		m := ICMPEcho{Type: ICMPv4EchoRequest, ID: id, Seq: seq, Payload: payload}
		buf := m.AppendTo(nil)
		var got ICMPEcho
		if err := got.DecodeFrom(buf); err != nil {
			return false
		}
		return got.ID == id && got.Seq == seq && string(got.Payload) == string(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestICMPProbeStaticFlowFields(t *testing.T) {
	// §5.1.4: flow headers must stay static across workers for the same
	// measurement so per-flow load balancers don't split probes. The ICMP
	// Seq (used in flow hashing by some LBs) depends only on measurement.
	a := NewICMPProbe(Identity{Measurement: 99, Worker: 1, TxTime: time.Now()}, false)
	b := NewICMPProbe(Identity{Measurement: 99, Worker: 30, TxTime: time.Now()}, false)
	if a.Seq != b.Seq {
		t.Fatalf("Seq differs across workers: %d vs %d", a.Seq, b.Seq)
	}
}

func BenchmarkICMPProbeEncode(b *testing.B) {
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		m := NewICMPProbe(testIdentity, false)
		buf = m.AppendTo(buf)
	}
}

func BenchmarkICMPDecode(b *testing.B) {
	buf := NewICMPProbe(testIdentity, false).AppendTo(nil)
	var m ICMPEcho
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.DecodeFrom(buf); err != nil {
			b.Fatal(err)
		}
	}
}
