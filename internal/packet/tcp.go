package packet

import (
	"fmt"
	"net/netip"
)

// TCP flag bits.
const (
	TCPFlagFIN = 1 << iota
	TCPFlagSYN
	TCPFlagRST
	TCPFlagPSH
	TCPFlagACK
	TCPFlagURG
)

// TCPHeaderLen is the length of a TCP header without options; LACeS probes
// carry none.
const TCPHeaderLen = 20

// TCPProbePort is the high destination port LACeS sends SYN/ACK probes to
// (§4.2.3: "TCP probing uses SYN/ACK packets to high port numbers, for
// which we receive RST packets" — responsible because no state is created
// at the target).
const TCPProbePort = 62853

// TCPSegment is a TCP header (options unsupported) plus payload.
type TCPSegment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Payload          []byte
}

// HasFlags reports whether all of the given flag bits are set.
func (s *TCPSegment) HasFlags(f uint8) bool { return s.Flags&f == f }

// AppendTo appends the encoded segment with a correct pseudo-header
// checksum for the given address pair (both IPv4 or both IPv6).
func (s *TCPSegment) AppendTo(dst []byte, src, dstAddr netip.Addr) ([]byte, error) {
	if src.Is4() != dstAddr.Is4() {
		return nil, fmt.Errorf("tcp: mixed address families (src=%v dst=%v)", src, dstAddr)
	}
	off := len(dst)
	var b [TCPHeaderLen]byte
	put16(b[:], 0, s.SrcPort)
	put16(b[:], 2, s.DstPort)
	put32(b[:], 4, s.Seq)
	put32(b[:], 8, s.Ack)
	b[12] = 5 << 4 // data offset: 5 words, no options
	b[13] = s.Flags
	win := s.Window
	if win == 0 {
		win = 65535
	}
	put16(b[:], 14, win)
	dst = append(dst, b[:]...)
	dst = append(dst, s.Payload...)

	segLen := len(dst) - off
	var initial uint32
	if src.Is4() {
		sa, da := src.As4(), dstAddr.As4()
		initial = pseudoHeaderSum(sa[:], da[:], ProtoTCP, segLen)
	} else {
		sa, da := src.As16(), dstAddr.As16()
		initial = pseudoHeaderSum(sa[:], da[:], ProtoTCP, segLen)
	}
	cs := Checksum(dst[off:], initial)
	put16(dst, off+16, cs)
	return dst, nil
}

// DecodeFrom parses a TCP segment and verifies the pseudo-header checksum.
// The Payload slice aliases b.
func (s *TCPSegment) DecodeFrom(b []byte, src, dst netip.Addr) error {
	if len(b) < TCPHeaderLen {
		return fmt.Errorf("tcp: %w", ErrTruncated)
	}
	var initial uint32
	if src.Is4() && dst.Is4() {
		sa, da := src.As4(), dst.As4()
		initial = pseudoHeaderSum(sa[:], da[:], ProtoTCP, len(b))
	} else {
		sa, da := src.As16(), dst.As16()
		initial = pseudoHeaderSum(sa[:], da[:], ProtoTCP, len(b))
	}
	if Checksum(b, initial) != 0 {
		return fmt.Errorf("tcp: %w", ErrBadChecksum)
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(b) {
		return fmt.Errorf("tcp: data offset %d: %w", dataOff, ErrTruncated)
	}
	s.SrcPort = get16(b, 0)
	s.DstPort = get16(b, 2)
	s.Seq = get32(b, 4)
	s.Ack = get32(b, 8)
	s.Flags = b[13]
	s.Window = get16(b, 14)
	s.Payload = b[dataOff:]
	return nil
}

// NewTCPProbe builds the SYN/ACK probe for the identity. The
// acknowledgement number carries the identity per §4.2.2; the source port
// is derived from the measurement ID so that flow headers stay static
// across a measurement (keeping per-flow load balancers from splitting
// probes to the same target — §5.1.4).
func NewTCPProbe(id Identity) *TCPSegment {
	return &TCPSegment{
		SrcPort: 33000 + id.Measurement%16384,
		DstPort: TCPProbePort,
		Seq:     uint32(id.Measurement)<<16 | uint32(id.Worker)<<8 | 1,
		Ack:     TCPAck(id.Worker, id.TxTime),
		Flags:   TCPFlagSYN | TCPFlagACK,
	}
}

// RSTReply returns the RST segment a target with no matching connection
// sends back for an unsolicited SYN/ACK: per RFC 9293 §3.10.7.1, the RST
// carries SEQ = SEG.ACK and swapped ports. This echoes our encoded
// acknowledgement number back to whichever worker receives it.
func (s *TCPSegment) RSTReply() *TCPSegment {
	return &TCPSegment{
		SrcPort: s.DstPort,
		DstPort: s.SrcPort,
		Seq:     s.Ack,
		Flags:   TCPFlagRST,
	}
}

// IsProbeReply reports whether the segment looks like the RST elicited by
// a LACeS SYN/ACK probe of the given measurement: RST flag, source port
// equal to the probe port, and destination port matching the
// measurement-derived source port.
func (s *TCPSegment) IsProbeReply(measurement uint16) bool {
	return s.HasFlags(TCPFlagRST) &&
		s.SrcPort == TCPProbePort &&
		s.DstPort == 33000+measurement%16384
}
