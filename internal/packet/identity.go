package packet

import (
	"fmt"
	"strings"
	"time"
)

// Identity is the probe identity LACeS embeds in every probe so that the
// reply alone — arriving possibly at a *different* worker than the sender,
// which is the whole point of anycast-based measurement — carries enough
// information to attribute it: which measurement, which worker transmitted,
// and when (§4.2.2).
//
// The echo field differs per protocol:
//   - ICMP: the 16-byte echo payload (targets echo it verbatim);
//   - DNS:  the query name (responders copy the question section);
//   - TCP:  the acknowledgement number of our SYN/ACK, which the target's
//     RST echoes as its sequence number. Only 32 bits are available, so
//     TCP carries a truncated identity (worker + wrapped microseconds).
type Identity struct {
	Measurement uint16    // measurement run identifier
	Worker      uint8     // index of the transmitting worker
	TxTime      time.Time // transmission timestamp
}

// icmpMagic marks LACeS ICMP payloads; responses not carrying it belong to
// other traffic and are discarded by workers ("Workers capture responses
// ... and ensure they belong to the ongoing measurement").
var icmpMagic = [4]byte{'L', 'A', 'C', 'E'}

// ICMPPayloadLen is the fixed length of the identity payload carried in
// ICMP echo probes.
const ICMPPayloadLen = 16

// AppendICMPPayload appends the 16-byte identity payload:
// magic(4) | measurement(2) | worker(1) | version(1) | txUnixNanos(8).
//
//laces:hotpath encodes every outgoing probe; appends into the caller's buffer
func (id Identity) AppendICMPPayload(dst []byte) []byte {
	var b [ICMPPayloadLen]byte
	copy(b[0:4], icmpMagic[:])
	put16(b[:], 4, id.Measurement)
	b[6] = id.Worker
	b[7] = 1 // payload format version
	nanos := uint64(id.TxTime.UnixNano())
	put32(b[:], 8, uint32(nanos>>32))
	put32(b[:], 12, uint32(nanos))
	return append(dst, b[:]...)
}

// ParseICMPPayload recovers an identity from an echoed ICMP payload.
func ParseICMPPayload(b []byte) (Identity, error) {
	if len(b) < ICMPPayloadLen {
		return Identity{}, fmt.Errorf("identity: payload %d bytes: %w", len(b), ErrTruncated)
	}
	if [4]byte(b[0:4]) != icmpMagic {
		return Identity{}, ErrBadMagic
	}
	if b[7] != 1 {
		return Identity{}, fmt.Errorf("identity: unsupported payload version %d", b[7])
	}
	nanos := uint64(get32(b, 8))<<32 | uint64(get32(b, 12))
	return Identity{
		Measurement: get16(b, 4),
		Worker:      b[6],
		TxTime:      time.Unix(0, int64(nanos)).UTC(),
	}, nil
}

// tcpAckMicrosBits is the number of low bits of the transmit timestamp (in
// microseconds) packed into the TCP acknowledgement number. 2^24 µs ≈ 16.8 s
// of wrap, far above any plausible RTT, so RTT recovery is unambiguous.
const tcpAckMicrosBits = 24

const tcpAckMicrosMask = 1<<tcpAckMicrosBits - 1

// TCPAck packs a truncated identity into a 32-bit acknowledgement number:
// worker(8) | txMicros(24). The measurement ID is carried out of band (the
// worker knows which measurement it is listening for, and validates the
// source port pair instead).
func TCPAck(worker uint8, txTime time.Time) uint32 {
	micros := uint32(txTime.UnixMicro()) & tcpAckMicrosMask
	return uint32(worker)<<tcpAckMicrosBits | micros
}

// TCPAckWorker extracts the worker index from an echoed acknowledgement
// number (the sequence number of the RST reply).
func TCPAckWorker(ack uint32) uint8 { return uint8(ack >> tcpAckMicrosBits) }

// TCPAckRTT recovers the round-trip time from an echoed acknowledgement
// number given the receive time, handling the 24-bit wrap. The result is
// accurate to 1 µs for RTTs below ~16.8 s.
func TCPAckRTT(ack uint32, rxTime time.Time) time.Duration {
	txMicros := ack & tcpAckMicrosMask
	rxMicros := uint32(rxTime.UnixMicro()) & tcpAckMicrosMask
	delta := (rxMicros - txMicros) & tcpAckMicrosMask
	return time.Duration(delta) * time.Microsecond
}

// dnsLabelPrefix starts every LACeS DNS probe label.
const dnsLabelPrefix = "lx"

// DNSProbeName builds the query name carrying the identity, e.g.
// "lx-002a-07-16fedcba98765432.probe.example.org." for measurement 0x2a,
// worker 7. Responders echo the question section, so the name round-trips
// in the reply (§4.2.2: "for DNS we encode information in the domain name
// of the request").
func DNSProbeName(id Identity, zone string) string {
	zone = strings.TrimSuffix(zone, ".")
	return fmt.Sprintf("%s-%04x-%02x-%016x.%s.",
		dnsLabelPrefix, id.Measurement, id.Worker, uint64(id.TxTime.UnixNano()), zone)
}

// ParseDNSProbeName recovers the identity and zone from a probe query name.
func ParseDNSProbeName(name string) (id Identity, zone string, err error) {
	name = strings.TrimSuffix(name, ".")
	label, rest, ok := strings.Cut(name, ".")
	if !ok {
		return Identity{}, "", fmt.Errorf("identity: query name %q has no zone: %w", name, ErrNotProbe)
	}
	parts := strings.Split(label, "-")
	if len(parts) != 4 || parts[0] != dnsLabelPrefix {
		return Identity{}, "", fmt.Errorf("identity: label %q: %w", label, ErrNotProbe)
	}
	var meas uint16
	var worker uint8
	var nanos uint64
	if _, err := fmt.Sscanf(parts[1], "%04x", &meas); err != nil {
		return Identity{}, "", fmt.Errorf("identity: measurement field %q: %w", parts[1], ErrNotProbe)
	}
	if _, err := fmt.Sscanf(parts[2], "%02x", &worker); err != nil {
		return Identity{}, "", fmt.Errorf("identity: worker field %q: %w", parts[2], ErrNotProbe)
	}
	if _, err := fmt.Sscanf(parts[3], "%016x", &nanos); err != nil {
		return Identity{}, "", fmt.Errorf("identity: txtime field %q: %w", parts[3], ErrNotProbe)
	}
	return Identity{
		Measurement: meas,
		Worker:      worker,
		TxTime:      time.Unix(0, int64(nanos)).UTC(),
	}, rest, nil
}
