package packet

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestICMPPayloadRoundTrip(t *testing.T) {
	f := func(meas uint16, worker uint8, nanos int64) bool {
		id := Identity{Measurement: meas, Worker: worker, TxTime: time.Unix(0, nanos).UTC()}
		got, err := ParseICMPPayload(id.AppendICMPPayload(nil))
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestICMPPayloadRejectsForeign(t *testing.T) {
	// Too short.
	if _, err := ParseICMPPayload([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short payload err = %v, want ErrTruncated", err)
	}
	// Wrong magic (e.g. a regular ping payload).
	b := make([]byte, ICMPPayloadLen)
	copy(b, "ping")
	if _, err := ParseICMPPayload(b); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign payload err = %v, want ErrBadMagic", err)
	}
	// Wrong version.
	b = testIdentity.AppendICMPPayload(nil)
	b[7] = 99
	if _, err := ParseICMPPayload(b); err == nil {
		t.Fatal("unknown payload version should be rejected")
	}
}

func TestICMPPayloadExtraBytesTolerated(t *testing.T) {
	// Some targets pad echoed payloads; trailing bytes must not break
	// identity recovery.
	b := testIdentity.AppendICMPPayload(nil)
	b = append(b, 0xde, 0xad)
	got, err := ParseICMPPayload(b)
	if err != nil || got != testIdentity {
		t.Fatalf("padded payload: %+v, %v", got, err)
	}
}

func TestIdentityTimestampPrecision(t *testing.T) {
	// Nanosecond precision must survive: RTTs feed GCD radii where 1 ms
	// is already 100 km of disc radius.
	tx := time.Date(2024, 6, 1, 0, 0, 0, 999999999, time.UTC)
	id := Identity{Measurement: 1, Worker: 2, TxTime: tx}
	got, err := ParseICMPPayload(id.AppendICMPPayload(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !got.TxTime.Equal(tx) {
		t.Fatalf("timestamp = %v, want %v", got.TxTime, tx)
	}
}

func TestTCPAckWorkerExhaustive(t *testing.T) {
	tx := time.Now()
	for w := 0; w < 256; w++ {
		if got := TCPAckWorker(TCPAck(uint8(w), tx)); got != uint8(w) {
			t.Fatalf("worker %d round-trips to %d", w, got)
		}
	}
}

// BenchmarkProbeEncodeIdentity compares the three identity carriers
// (ICMP payload, DNS query name, TCP acknowledgement number) — the
// encoding-format ablation of DESIGN.md §6.
func BenchmarkProbeEncodeIdentity(b *testing.B) {
	b.Run("ICMPPayload", func(b *testing.B) {
		buf := make([]byte, 0, ICMPPayloadLen)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = testIdentity.AppendICMPPayload(buf[:0])
		}
	})
	b.Run("DNSName", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = DNSProbeName(testIdentity, "census.example")
		}
	})
	b.Run("TCPAck", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = TCPAck(testIdentity.Worker, testIdentity.TxTime)
		}
	})
}
