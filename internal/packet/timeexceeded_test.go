package packet

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

// buildQuotedProbe encodes a full ICMPv4 echo probe (IP header + ICMP) as
// a router would see it: the bytes that end up quoted in a time-exceeded
// error.
func buildQuotedProbe(t testing.TB, id Identity) []byte {
	t.Helper()
	echo := NewICMPProbe(id, false)
	ip := IPv4{
		TTL:      1,
		Protocol: ProtoICMP,
		Src:      netip.MustParseAddr("192.0.2.1"),
		Dst:      netip.MustParseAddr("198.51.100.7"),
	}
	icmp := echo.AppendTo(nil)
	b, err := ip.AppendTo(nil, len(icmp))
	if err != nil {
		t.Fatal(err)
	}
	return append(b, icmp...)
}

func TestTimeExceededRoundTripV4(t *testing.T) {
	id := Identity{Measurement: 0x1ace, Worker: 7, TxTime: time.Unix(1711000000, 123000).UTC()}
	quote := buildQuotedProbe(t, id)

	wire := NewTimeExceeded(false, quote).AppendTo(nil)

	var m TimeExceeded
	if err := m.DecodeFrom(wire); err != nil {
		t.Fatal(err)
	}
	if !m.IsTimeExceeded() {
		t.Fatalf("type %d not recognised as time-exceeded", m.Type)
	}
	got, err := m.QuotedIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if got.Measurement != id.Measurement || got.Worker != id.Worker || !got.TxTime.Equal(id.TxTime) {
		t.Fatalf("quoted identity = %+v, want %+v", got, id)
	}
}

func TestTimeExceededRoundTripV6(t *testing.T) {
	src := netip.MustParseAddr("2001:db8::1")
	dst := netip.MustParseAddr("2001:db8::2")
	quote := []byte("quoted-v6-datagram-bytes")
	wire, err := NewTimeExceeded(true, quote).AppendToV6(nil, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var m TimeExceeded
	if err := m.DecodeFromV6(wire, src, dst); err != nil {
		t.Fatal(err)
	}
	if m.Type != ICMPv6TimeExceeded {
		t.Fatalf("type = %d, want %d", m.Type, ICMPv6TimeExceeded)
	}
	if string(m.Quote) != string(quote) {
		t.Fatalf("quote = %q, want %q", m.Quote, quote)
	}
}

func TestTimeExceededChecksumValidation(t *testing.T) {
	wire := NewTimeExceeded(false, []byte("some quote")).AppendTo(nil)
	wire[len(wire)-1] ^= 0xff
	var m TimeExceeded
	if err := m.DecodeFrom(wire); err == nil {
		t.Fatal("corrupted time-exceeded accepted")
	}
}

func TestTimeExceededTruncated(t *testing.T) {
	var m TimeExceeded
	if err := m.DecodeFrom([]byte{11, 0, 0}); err == nil {
		t.Fatal("3-byte message accepted")
	}
	// A quote cut below the identity payload must fail identity recovery.
	id := Identity{Measurement: 1, Worker: 2, TxTime: time.Unix(0, 0)}
	quote := buildQuotedProbe(t, id)
	short := NewTimeExceeded(false, quote[:IPv4HeaderLen+8])
	if _, err := short.QuotedIdentity(); err == nil {
		t.Fatal("truncated quote yielded an identity")
	}
}

func TestTimeExceededRejectsNonICMPQuote(t *testing.T) {
	ip := IPv4{
		TTL:      1,
		Protocol: ProtoTCP,
		Src:      netip.MustParseAddr("192.0.2.1"),
		Dst:      netip.MustParseAddr("198.51.100.7"),
	}
	b, err := ip.AppendTo(nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, make([]byte, 20)...)
	m := NewTimeExceeded(false, b)
	if _, err := m.QuotedIdentity(); err == nil {
		t.Fatal("TCP quote yielded an ICMP identity")
	}
}

func TestTimeExceededQuotedIdentityProperty(t *testing.T) {
	f := func(meas uint16, worker uint8, nanos int64) bool {
		id := Identity{Measurement: meas, Worker: worker, TxTime: time.Unix(0, nanos).UTC()}
		quote := buildQuotedProbe(t, id)
		wire := NewTimeExceeded(false, quote).AppendTo(nil)
		var m TimeExceeded
		if err := m.DecodeFrom(wire); err != nil {
			return false
		}
		got, err := m.QuotedIdentity()
		if err != nil {
			return false
		}
		return got.Measurement == meas && got.Worker == worker && got.TxTime.Equal(id.TxTime)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
