package packet

import (
	"testing"
	"testing/quick"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Example from RFC 1071 §3: words 0001 f203 f4f5 f6f7 sum to ddf2
	// (pre-complement); the checksum is its complement 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Trailing odd byte is padded with zero on the right.
	if got, want := Checksum([]byte{0xff}, 0), ^uint16(0xff00); got != want {
		t.Fatalf("Checksum odd = %#04x, want %#04x", got, want)
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(nil, 0); got != 0xffff {
		t.Fatalf("Checksum(nil) = %#04x, want 0xffff", got)
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	// Property: embedding the checksum of data into the data makes the
	// whole verify to 0 — the standard Internet checksum validity test.
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0) // checksum field must be 16-bit aligned
		}
		buf := make([]byte, len(data)+2)
		copy(buf, data)
		cs := Checksum(buf, 0) // checksum with zeroed checksum field at end
		put16(buf, len(data), cs)
		return Checksum(buf, 0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsBitFlip(t *testing.T) {
	f := func(data []byte, pos uint16, bit uint8) bool {
		if len(data) < 4 {
			return true
		}
		buf := make([]byte, len(data)+2)
		copy(buf, data)
		put16(buf, len(data), Checksum(buf[:len(data)], 0))
		// flip one bit
		p := int(pos) % len(data)
		buf[p] ^= 1 << (bit % 8)
		return Checksum(buf, 0) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolString(t *testing.T) {
	cases := map[Protocol]string{ICMP: "ICMP", TCP: "TCP", DNS: "DNS", Protocol(9): "Protocol(9)"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("Protocol(%d).String() = %q, want %q", p, p, want)
		}
	}
}

func TestParseProtocolRoundTrip(t *testing.T) {
	for _, p := range Protocols() {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProtocol("QUIC"); err == nil {
		t.Error("ParseProtocol of unknown name should fail")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	f := func(v16 uint16, v32 uint32) bool {
		b := make([]byte, 6)
		put16(b, 0, v16)
		put32(b, 2, v32)
		return get16(b, 0) == v16 && get32(b, 2) == v32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
