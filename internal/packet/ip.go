package packet

import (
	"fmt"
	"net/netip"
)

// IP protocol numbers used by LACeS probes.
const (
	ProtoICMP   = 1
	ProtoTCP    = 6
	ProtoUDP    = 17
	ProtoICMPv6 = 58
)

// IPv4HeaderLen is the length of an IPv4 header without options; LACeS
// never emits options.
const IPv4HeaderLen = 20

// IPv6HeaderLen is the fixed IPv6 header length.
const IPv6HeaderLen = 40

// IPv4 is a minimal IPv4 header (no options). Zero value plus Src/Dst/
// Protocol/TTL is a valid probe header after AppendTo fills in lengths and
// checksum.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr
	// PayloadLen is set by DecodeFrom; AppendTo derives it from payloadLen.
	PayloadLen int
}

// AppendTo appends the encoded header for a packet carrying payloadLen
// upper-layer bytes.
func (h *IPv4) AppendTo(dst []byte, payloadLen int) ([]byte, error) {
	if !h.Src.Is4() || !h.Dst.Is4() {
		return nil, fmt.Errorf("packet: IPv4 header requires 4-byte addresses (src=%v dst=%v)", h.Src, h.Dst)
	}
	total := IPv4HeaderLen + payloadLen
	if total > 0xffff {
		return nil, fmt.Errorf("packet: IPv4 total length %d exceeds 65535", total)
	}
	off := len(dst)
	var b [IPv4HeaderLen]byte
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	put16(b[:], 2, uint16(total))
	put16(b[:], 4, h.ID)
	// flags+fragment offset zero: probes are never fragmented.
	ttl := h.TTL
	if ttl == 0 {
		ttl = 64
	}
	b[8] = ttl
	b[9] = h.Protocol
	src := h.Src.As4()
	dstA := h.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dstA[:])
	cs := Checksum(b[:], 0)
	put16(b[:], 10, cs)
	_ = off
	return append(dst, b[:]...), nil
}

// DecodeFrom parses an IPv4 header from b, returning the payload bytes.
func (h *IPv4) DecodeFrom(b []byte) (payload []byte, err error) {
	if len(b) < IPv4HeaderLen {
		return nil, fmt.Errorf("ipv4: %w", ErrTruncated)
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("ipv4: version %d: %w", b[0]>>4, ErrNotProbe)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return nil, fmt.Errorf("ipv4: bad IHL %d: %w", ihl, ErrTruncated)
	}
	if Checksum(b[:ihl], 0) != 0 {
		return nil, fmt.Errorf("ipv4: %w", ErrBadChecksum)
	}
	total := int(get16(b, 2))
	if total < ihl || total > len(b) {
		return nil, fmt.Errorf("ipv4: total length %d outside packet of %d bytes: %w", total, len(b), ErrTruncated)
	}
	h.TOS = b[1]
	h.ID = get16(b, 4)
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Src = netip.AddrFrom4([4]byte(b[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	h.PayloadLen = total - ihl
	return b[ihl:total], nil
}

// IPv6 is the fixed IPv6 header.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits used
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr
	PayloadLen   int // set by DecodeFrom
}

// AppendTo appends the encoded header for payloadLen upper-layer bytes.
func (h *IPv6) AppendTo(dst []byte, payloadLen int) ([]byte, error) {
	if !h.Src.Is6() || h.Src.Is4In6() || !h.Dst.Is6() || h.Dst.Is4In6() {
		return nil, fmt.Errorf("packet: IPv6 header requires 16-byte addresses (src=%v dst=%v)", h.Src, h.Dst)
	}
	if payloadLen > 0xffff {
		return nil, fmt.Errorf("packet: IPv6 payload length %d exceeds 65535", payloadLen)
	}
	var b [IPv6HeaderLen]byte
	b[0] = 6<<4 | h.TrafficClass>>4
	b[1] = h.TrafficClass<<4 | byte(h.FlowLabel>>16&0x0f)
	b[2] = byte(h.FlowLabel >> 8)
	b[3] = byte(h.FlowLabel)
	put16(b[:], 4, uint16(payloadLen))
	b[6] = h.NextHeader
	hop := h.HopLimit
	if hop == 0 {
		hop = 64
	}
	b[7] = hop
	src := h.Src.As16()
	dstA := h.Dst.As16()
	copy(b[8:24], src[:])
	copy(b[24:40], dstA[:])
	return append(dst, b[:]...), nil
}

// DecodeFrom parses an IPv6 header from b, returning the payload bytes.
// Extension headers are not traversed: LACeS probes never carry them.
func (h *IPv6) DecodeFrom(b []byte) (payload []byte, err error) {
	if len(b) < IPv6HeaderLen {
		return nil, fmt.Errorf("ipv6: %w", ErrTruncated)
	}
	if b[0]>>4 != 6 {
		return nil, fmt.Errorf("ipv6: version %d: %w", b[0]>>4, ErrNotProbe)
	}
	h.TrafficClass = b[0]<<4 | b[1]>>4
	h.FlowLabel = uint32(b[1]&0x0f)<<16 | uint32(b[2])<<8 | uint32(b[3])
	plen := int(get16(b, 4))
	if IPv6HeaderLen+plen > len(b) {
		return nil, fmt.Errorf("ipv6: payload length %d outside packet of %d bytes: %w", plen, len(b), ErrTruncated)
	}
	h.NextHeader = b[6]
	h.HopLimit = b[7]
	h.Src = netip.AddrFrom16([16]byte(b[8:24]))
	h.Dst = netip.AddrFrom16([16]byte(b[24:40]))
	h.PayloadLen = plen
	return b[IPv6HeaderLen : IPv6HeaderLen+plen], nil
}
