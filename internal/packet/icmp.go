package packet

import (
	"fmt"
	"net/netip"
)

// ICMP message types used by LACeS.
const (
	ICMPv4EchoRequest = 8
	ICMPv4EchoReply   = 0
	ICMPv6EchoRequest = 128
	ICMPv6EchoReply   = 129
)

// ICMPEcho is an ICMP echo request or reply, shared between ICMPv4 and
// ICMPv6 (they differ only in type codes and checksum pseudo-header).
type ICMPEcho struct {
	Type    uint8
	Code    uint8
	ID      uint16
	Seq     uint16
	Payload []byte
}

// IsRequest reports whether the message is an echo request in either
// family.
func (m *ICMPEcho) IsRequest() bool {
	return m.Type == ICMPv4EchoRequest || m.Type == ICMPv6EchoRequest
}

// IsReply reports whether the message is an echo reply in either family.
func (m *ICMPEcho) IsReply() bool {
	return m.Type == ICMPv4EchoReply || m.Type == ICMPv6EchoReply
}

// AppendTo appends the encoded ICMPv4 message with correct checksum.
//
//laces:hotpath encodes every outgoing ICMPv4 probe; appends into the caller's buffer
func (m *ICMPEcho) AppendTo(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, m.Type, m.Code, 0, 0)
	var hdr [4]byte
	put16(hdr[:], 0, m.ID)
	put16(hdr[:], 2, m.Seq)
	dst = append(dst, hdr[:]...)
	dst = append(dst, m.Payload...)
	cs := Checksum(dst[off:], 0)
	put16(dst, off+2, cs)
	return dst
}

// AppendToV6 appends the encoded ICMPv6 message; the checksum covers the
// IPv6 pseudo-header, so source and destination addresses are required.
func (m *ICMPEcho) AppendToV6(dst []byte, src, dstAddr netip.Addr) ([]byte, error) {
	if !src.Is6() || !dstAddr.Is6() {
		return nil, fmt.Errorf("icmpv6: pseudo-header requires IPv6 addresses (src=%v dst=%v)", src, dstAddr)
	}
	off := len(dst)
	dst = append(dst, m.Type, m.Code, 0, 0)
	var hdr [4]byte
	put16(hdr[:], 0, m.ID)
	put16(hdr[:], 2, m.Seq)
	dst = append(dst, hdr[:]...)
	dst = append(dst, m.Payload...)
	s := src.As16()
	d := dstAddr.As16()
	initial := pseudoHeaderSum(s[:], d[:], ProtoICMPv6, len(dst)-off)
	cs := Checksum(dst[off:], initial)
	put16(dst, off+2, cs)
	return dst, nil
}

// DecodeFrom parses an ICMPv4 message, verifying the checksum. The Payload
// slice aliases b.
//
//laces:hotpath decodes every incoming ICMPv4 reply; the happy path is allocation-free
func (m *ICMPEcho) DecodeFrom(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("icmp: %w", ErrTruncated) //laces:allow hotalloc error path, not the per-packet happy path
	}
	if Checksum(b, 0) != 0 {
		return fmt.Errorf("icmp: %w", ErrBadChecksum) //laces:allow hotalloc error path, not the per-packet happy path
	}
	m.decodeFields(b)
	return nil
}

// DecodeFromV6 parses an ICMPv6 message, verifying the pseudo-header
// checksum.
func (m *ICMPEcho) DecodeFromV6(b []byte, src, dst netip.Addr) error {
	if len(b) < 8 {
		return fmt.Errorf("icmpv6: %w", ErrTruncated)
	}
	s := src.As16()
	d := dst.As16()
	initial := pseudoHeaderSum(s[:], d[:], ProtoICMPv6, len(b))
	if Checksum(b, initial) != 0 {
		return fmt.Errorf("icmpv6: %w", ErrBadChecksum)
	}
	m.decodeFields(b)
	return nil
}

//laces:hotpath shared by the v4 and v6 decoders; aliases the input, never copies
func (m *ICMPEcho) decodeFields(b []byte) {
	m.Type = b[0]
	m.Code = b[1]
	m.ID = get16(b, 4)
	m.Seq = get16(b, 6)
	m.Payload = b[8:]
}

// NewICMPProbe builds the echo request carrying the probe identity for the
// given address family. id.Worker also seeds the ICMP identifier so that
// kernels demultiplex replies back to the right socket, and seq carries
// the low bits of the measurement for quick filtering.
func NewICMPProbe(id Identity, v6 bool) *ICMPEcho {
	typ := uint8(ICMPv4EchoRequest)
	if v6 {
		typ = ICMPv6EchoRequest
	}
	return &ICMPEcho{
		Type:    typ,
		ID:      uint16(id.Worker)<<8 | uint16(id.Measurement&0xff),
		Seq:     id.Measurement,
		Payload: id.AppendICMPPayload(nil),
	}
}

// EchoReply returns the reply a well-behaved target produces for the
// request: identical ID, Seq and payload with the reply type. The
// simulator uses this to generate responses from real request bytes.
func (m *ICMPEcho) EchoReply(v6 bool) *ICMPEcho {
	typ := uint8(ICMPv4EchoReply)
	if v6 {
		typ = ICMPv6EchoReply
	}
	return &ICMPEcho{Type: typ, Code: 0, ID: m.ID, Seq: m.Seq, Payload: m.Payload}
}
