// Package packet implements the wire formats LACeS probes with: IPv4/IPv6
// headers, ICMP echo (v4 and v6), TCP SYN/ACK and RST segments, UDP
// datagrams and DNS messages (A, AAAA and CHAOS TXT queries).
//
// All encoders write real, checksum-correct bytes; all decoders parse them
// back, so the probe-identity round trip the paper relies on (§4.2.2: "we
// encode the sending Worker ID and the transmission time in fields that are
// echoed in responses from targets") is exercised on genuine packets even
// when the transport is the network simulator.
//
// The layer design follows the in-place decoding idiom: each layer type has
// DecodeFrom([]byte) that resets the receiver, and AppendTo(dst []byte)
// that appends the encoded form, avoiding per-packet allocation in the hot
// probing path.
package packet

import (
	"errors"
	"fmt"
)

// Protocol identifies a probing protocol supported by LACeS (R4:
// multi-protocol probing).
type Protocol uint8

// Probing protocols.
const (
	ICMP Protocol = iota // ICMP echo (ping)
	TCP                  // TCP SYN/ACK to a high port, expecting RST
	DNS                  // DNS over UDP: A/AAAA or CHAOS TXT query
	numProtocols
)

// Protocols lists all probing protocols once.
func Protocols() []Protocol { return []Protocol{ICMP, TCP, DNS} }

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ICMP:
		return "ICMP"
	case TCP:
		return "TCP"
	case DNS:
		return "DNS"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// ParseProtocol converts a protocol name (as printed by String, case
// sensitive) back into a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "ICMP":
		return ICMP, nil
	case "TCP":
		return TCP, nil
	case "DNS":
		return DNS, nil
	}
	return 0, fmt.Errorf("packet: unknown protocol %q", s)
}

// Errors shared by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadMagic    = errors.New("packet: probe identity magic mismatch")
	ErrNotProbe    = errors.New("packet: not a LACeS probe")
)

// Checksum computes the Internet checksum (RFC 1071) over data with the
// given initial partial sum, which callers use to fold in pseudo-headers.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	i := 0
	for ; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < len(data) {
		sum += uint32(data[i]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of a TCP/UDP/ICMPv6
// pseudo-header: src, dst, zero+protocol, and the upper-layer length.
func pseudoHeaderSum(src, dst []byte, proto uint8, length int) uint32 {
	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(b[i])<<8 | uint32(b[i+1])
		}
	}
	add(src)
	add(dst)
	sum += uint32(proto)
	sum += uint32(length >> 16)
	sum += uint32(length & 0xffff)
	return sum
}

// put16 writes v big-endian at b[off:].
func put16(b []byte, off int, v uint16) {
	b[off] = byte(v >> 8)
	b[off+1] = byte(v)
}

// put32 writes v big-endian at b[off:].
func put32(b []byte, off int, v uint32) {
	b[off] = byte(v >> 24)
	b[off+1] = byte(v >> 16)
	b[off+2] = byte(v >> 8)
	b[off+3] = byte(v)
}

// get16 reads a big-endian uint16 at b[off:].
func get16(b []byte, off int) uint16 {
	return uint16(b[off])<<8 | uint16(b[off+1])
}

// get32 reads a big-endian uint32 at b[off:].
func get32(b []byte, off int) uint32 {
	return uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
}
