package packet

import (
	"fmt"
	"net/netip"
	"strings"
)

// DNS record types and classes used by LACeS (§4.2.3: A and CHAOS TXT
// queries; §5.3.2: AAAA for IPv6 hitlists).
const (
	DNSTypeA    uint16 = 1
	DNSTypeTXT  uint16 = 16
	DNSTypeAAAA uint16 = 28

	DNSClassIN    uint16 = 1
	DNSClassCHAOS uint16 = 3
)

// DNS header flag bits (within the 16-bit flags word).
const (
	dnsFlagQR uint16 = 1 << 15
	dnsFlagRD uint16 = 1 << 8
	dnsFlagRA uint16 = 1 << 7
)

// maxDNSNameLen bounds decoded name length per RFC 1035.
const maxDNSNameLen = 255

// DNSQuestion is one entry of the question section.
type DNSQuestion struct {
	Name  string // fully qualified, trailing dot optional
	Type  uint16
	Class uint16
}

// DNSRecord is one resource record of the answer section. For TXT records
// Data holds the concatenated character strings; for A/AAAA it holds the
// address bytes.
type DNSRecord struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// TXT returns the record data interpreted as a TXT character-string
// sequence, decoded into its strings.
func (r DNSRecord) TXT() ([]string, error) {
	if r.Type != DNSTypeTXT {
		return nil, fmt.Errorf("dns: record type %d is not TXT", r.Type)
	}
	var out []string
	b := r.Data
	for len(b) > 0 {
		n := int(b[0])
		if 1+n > len(b) {
			return nil, fmt.Errorf("dns: TXT string: %w", ErrTruncated)
		}
		out = append(out, string(b[1:1+n]))
		b = b[1+n:]
	}
	return out, nil
}

// Addr returns the record data interpreted as an IP address (A or AAAA).
func (r DNSRecord) Addr() (netip.Addr, error) {
	a, ok := netip.AddrFromSlice(r.Data)
	if !ok {
		return netip.Addr{}, fmt.Errorf("dns: %d-byte rdata is not an address", len(r.Data))
	}
	return a, nil
}

// DNSMessage is a DNS query or response with the sections LACeS uses.
type DNSMessage struct {
	ID       uint16
	Response bool
	RD       bool
	RA       bool
	RCode    uint8
	Question []DNSQuestion
	Answer   []DNSRecord
}

// AppendTo appends the encoded message. Names are encoded without
// compression (legal, and what a minimal prober emits).
func (m *DNSMessage) AppendTo(dst []byte) ([]byte, error) {
	var hdr [12]byte
	put16(hdr[:], 0, m.ID)
	var flags uint16
	if m.Response {
		flags |= dnsFlagQR
	}
	if m.RD {
		flags |= dnsFlagRD
	}
	if m.RA {
		flags |= dnsFlagRA
	}
	flags |= uint16(m.RCode & 0x0f)
	put16(hdr[:], 2, flags)
	put16(hdr[:], 4, uint16(len(m.Question)))
	put16(hdr[:], 6, uint16(len(m.Answer)))
	dst = append(dst, hdr[:]...)

	var err error
	for _, q := range m.Question {
		dst, err = appendDNSName(dst, q.Name)
		if err != nil {
			return nil, err
		}
		var b [4]byte
		put16(b[:], 0, q.Type)
		put16(b[:], 2, q.Class)
		dst = append(dst, b[:]...)
	}
	for _, r := range m.Answer {
		dst, err = appendDNSName(dst, r.Name)
		if err != nil {
			return nil, err
		}
		if len(r.Data) > 0xffff {
			return nil, fmt.Errorf("dns: rdata of %d bytes too long", len(r.Data))
		}
		var b [10]byte
		put16(b[:], 0, r.Type)
		put16(b[:], 2, r.Class)
		put32(b[:], 4, r.TTL)
		put16(b[:], 8, uint16(len(r.Data)))
		dst = append(dst, b[:]...)
		dst = append(dst, r.Data...)
	}
	return dst, nil
}

// DecodeFrom parses a DNS message, following compression pointers in
// names (responders commonly compress the answer section).
func (m *DNSMessage) DecodeFrom(b []byte) error {
	if len(b) < 12 {
		return fmt.Errorf("dns: header: %w", ErrTruncated)
	}
	m.ID = get16(b, 0)
	flags := get16(b, 2)
	m.Response = flags&dnsFlagQR != 0
	m.RD = flags&dnsFlagRD != 0
	m.RA = flags&dnsFlagRA != 0
	m.RCode = uint8(flags & 0x0f)
	qd := int(get16(b, 4))
	an := int(get16(b, 6))

	m.Question = m.Question[:0]
	m.Answer = m.Answer[:0]
	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := decodeDNSName(b, off)
		if err != nil {
			return fmt.Errorf("dns: question %d: %w", i, err)
		}
		off = n
		if off+4 > len(b) {
			return fmt.Errorf("dns: question %d fixed part: %w", i, ErrTruncated)
		}
		m.Question = append(m.Question, DNSQuestion{
			Name:  name,
			Type:  get16(b, off),
			Class: get16(b, off+2),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := decodeDNSName(b, off)
		if err != nil {
			return fmt.Errorf("dns: answer %d: %w", i, err)
		}
		off = n
		if off+10 > len(b) {
			return fmt.Errorf("dns: answer %d fixed part: %w", i, ErrTruncated)
		}
		rec := DNSRecord{
			Name:  name,
			Type:  get16(b, off),
			Class: get16(b, off+2),
			TTL:   get32(b, off+4),
		}
		rdLen := int(get16(b, off+8))
		off += 10
		if off+rdLen > len(b) {
			return fmt.Errorf("dns: answer %d rdata: %w", i, ErrTruncated)
		}
		rec.Data = b[off : off+rdLen]
		off += rdLen
		m.Answer = append(m.Answer, rec)
	}
	return nil
}

// appendDNSName appends name in wire format (length-prefixed labels).
func appendDNSName(dst []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 {
				return nil, fmt.Errorf("dns: empty label in %q", name)
			}
			if len(label) > 63 {
				return nil, fmt.Errorf("dns: label %q exceeds 63 bytes", label)
			}
			dst = append(dst, byte(len(label)))
			dst = append(dst, label...)
		}
	}
	return append(dst, 0), nil
}

// decodeDNSName reads a possibly compressed name starting at off,
// returning the dotted name and the offset just past it in the original
// stream.
func decodeDNSName(b []byte, off int) (string, int, error) {
	var sb strings.Builder
	end := -1 // offset after the name in the original stream
	jumps := 0
	for {
		if off >= len(b) {
			return "", 0, fmt.Errorf("dns name: %w", ErrTruncated)
		}
		c := int(b[off])
		switch {
		case c == 0:
			if end == -1 {
				end = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, end, nil
		case c&0xc0 == 0xc0: // compression pointer
			if off+1 >= len(b) {
				return "", 0, fmt.Errorf("dns name pointer: %w", ErrTruncated)
			}
			if end == -1 {
				end = off + 2
			}
			off = (c&0x3f)<<8 | int(b[off+1])
			jumps++
			if jumps > 32 {
				return "", 0, fmt.Errorf("dns name: too many compression pointers")
			}
		case c&0xc0 != 0:
			return "", 0, fmt.Errorf("dns name: reserved label type %#x", c&0xc0)
		default:
			if off+1+c > len(b) {
				return "", 0, fmt.Errorf("dns label: %w", ErrTruncated)
			}
			if sb.Len()+c+1 > maxDNSNameLen {
				return "", 0, fmt.Errorf("dns name exceeds %d bytes", maxDNSNameLen)
			}
			sb.Write(b[off+1 : off+1+c])
			sb.WriteByte('.')
			off += 1 + c
		}
	}
}

// NewDNSProbe builds the DNS query for the identity. For IN-class probes
// the query asks for the probe name itself (qtype A or AAAA), encoding the
// identity in the name. For CHAOS probes the conventional
// "id.server" / "hostname.bind" names (RFC 4892) cannot carry the
// identity, so the DNS message ID carries the worker index instead.
func NewDNSProbe(id Identity, zone string, qtype uint16, class uint16) *DNSMessage {
	q := DNSQuestion{Type: qtype, Class: class}
	msgID := id.Measurement
	if class == DNSClassCHAOS {
		q.Name = "id.server."
		q.Type = DNSTypeTXT
		msgID = uint16(id.Worker)<<8 | id.Measurement&0xff
	} else {
		q.Name = DNSProbeName(id, zone)
	}
	return &DNSMessage{ID: msgID, RD: false, Question: []DNSQuestion{q}}
}

// Reply builds a response to the query echoing the question section, with
// the given answers. Simulated targets use this.
func (m *DNSMessage) Reply(answers ...DNSRecord) *DNSMessage {
	return &DNSMessage{
		ID:       m.ID,
		Response: true,
		RD:       m.RD,
		RA:       true,
		Question: append([]DNSQuestion(nil), m.Question...),
		Answer:   answers,
	}
}
