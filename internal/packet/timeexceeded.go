package packet

import (
	"fmt"
	"net/netip"
)

// ICMP time-exceeded message types (RFC 792 / RFC 4443). Traceroute relies
// on routers answering TTL-expired probes with these messages, quoting the
// offending datagram so the sender can match the response to its probe.
const (
	ICMPv4TimeExceeded = 11
	ICMPv6TimeExceeded = 3
)

// icmpErrHeaderLen is the fixed ICMP error header: type, code, checksum
// and 4 unused bytes before the quoted datagram.
const icmpErrHeaderLen = 8

// TimeExceeded is an ICMP "time exceeded in transit" error, carrying the
// leading bytes of the expired datagram. The traceroute engine extracts
// the probe identity from the quote exactly as it would from a reply.
type TimeExceeded struct {
	Type uint8
	Code uint8
	// Quote is the start of the original datagram: its IP header plus at
	// least the first 8 payload bytes (RFC 792; modern routers quote
	// more, RFC 1812 §4.3.2.3).
	Quote []byte
}

// NewTimeExceeded builds the error message a router emits when the quoted
// datagram's TTL expires.
func NewTimeExceeded(v6 bool, quote []byte) *TimeExceeded {
	typ := uint8(ICMPv4TimeExceeded)
	if v6 {
		typ = ICMPv6TimeExceeded
	}
	return &TimeExceeded{Type: typ, Quote: quote}
}

// IsTimeExceeded reports whether the type is a time-exceeded error in
// either family.
func (m *TimeExceeded) IsTimeExceeded() bool {
	return m.Type == ICMPv4TimeExceeded || m.Type == ICMPv6TimeExceeded
}

// AppendTo appends the encoded ICMPv4 error with correct checksum.
func (m *TimeExceeded) AppendTo(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, m.Type, m.Code, 0, 0, 0, 0, 0, 0)
	dst = append(dst, m.Quote...)
	cs := Checksum(dst[off:], 0)
	put16(dst, off+2, cs)
	return dst
}

// AppendToV6 appends the encoded ICMPv6 error; the checksum covers the
// IPv6 pseudo-header.
func (m *TimeExceeded) AppendToV6(dst []byte, src, dstAddr netip.Addr) ([]byte, error) {
	if !src.Is6() || !dstAddr.Is6() {
		return nil, fmt.Errorf("icmpv6 time-exceeded: pseudo-header requires IPv6 addresses (src=%v dst=%v)", src, dstAddr)
	}
	off := len(dst)
	dst = append(dst, m.Type, m.Code, 0, 0, 0, 0, 0, 0)
	dst = append(dst, m.Quote...)
	s := src.As16()
	d := dstAddr.As16()
	initial := pseudoHeaderSum(s[:], d[:], ProtoICMPv6, len(dst)-off)
	cs := Checksum(dst[off:], initial)
	put16(dst, off+2, cs)
	return dst, nil
}

// DecodeFrom parses an ICMPv4 time-exceeded message, verifying the
// checksum. The Quote slice aliases b.
func (m *TimeExceeded) DecodeFrom(b []byte) error {
	if len(b) < icmpErrHeaderLen {
		return fmt.Errorf("icmp time-exceeded: %w", ErrTruncated)
	}
	if Checksum(b, 0) != 0 {
		return fmt.Errorf("icmp time-exceeded: %w", ErrBadChecksum)
	}
	m.Type = b[0]
	m.Code = b[1]
	m.Quote = b[icmpErrHeaderLen:]
	return nil
}

// DecodeFromV6 parses an ICMPv6 time-exceeded message, verifying the
// pseudo-header checksum.
func (m *TimeExceeded) DecodeFromV6(b []byte, src, dst netip.Addr) error {
	if len(b) < icmpErrHeaderLen {
		return fmt.Errorf("icmpv6 time-exceeded: %w", ErrTruncated)
	}
	s := src.As16()
	d := dst.As16()
	initial := pseudoHeaderSum(s[:], d[:], ProtoICMPv6, len(b))
	if Checksum(b, initial) != 0 {
		return fmt.Errorf("icmpv6 time-exceeded: %w", ErrBadChecksum)
	}
	m.Type = b[0]
	m.Code = b[1]
	m.Quote = b[icmpErrHeaderLen:]
	return nil
}

// QuotedIdentity recovers the probe identity from the quoted datagram of
// an ICMPv4 error: it parses the quoted IPv4 header, then the quoted ICMP
// echo header and payload. Routers that truncate the quote below the
// identity payload produce ErrTruncated.
func (m *TimeExceeded) QuotedIdentity() (Identity, error) {
	var ip IPv4
	payload, err := ip.DecodeFrom(m.Quote)
	if err != nil {
		return Identity{}, fmt.Errorf("quoted datagram: %w", err)
	}
	if ip.Protocol != ProtoICMP {
		return Identity{}, fmt.Errorf("quoted datagram: protocol %d is not ICMP", ip.Protocol)
	}
	if len(payload) < icmpErrHeaderLen {
		return Identity{}, fmt.Errorf("quoted ICMP header: %w", ErrTruncated)
	}
	// The quoted echo's checksum may be recomputed by the quoting router
	// after TTL decrement implementations vary; match on structure only.
	return ParseICMPPayload(payload[8:])
}
