package packet

import (
	"fmt"
	"net/netip"
)

// UDPHeaderLen is the fixed UDP header length.
const UDPHeaderLen = 8

// DNSPort is the well-known DNS port.
const DNSPort = 53

// UDPDatagram is a UDP header plus payload.
type UDPDatagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// AppendTo appends the encoded datagram with a correct pseudo-header
// checksum for the given address pair.
func (u *UDPDatagram) AppendTo(dst []byte, src, dstAddr netip.Addr) ([]byte, error) {
	if src.Is4() != dstAddr.Is4() {
		return nil, fmt.Errorf("udp: mixed address families (src=%v dst=%v)", src, dstAddr)
	}
	total := UDPHeaderLen + len(u.Payload)
	if total > 0xffff {
		return nil, fmt.Errorf("udp: datagram length %d exceeds 65535", total)
	}
	off := len(dst)
	var b [UDPHeaderLen]byte
	put16(b[:], 0, u.SrcPort)
	put16(b[:], 2, u.DstPort)
	put16(b[:], 4, uint16(total))
	dst = append(dst, b[:]...)
	dst = append(dst, u.Payload...)

	var initial uint32
	if src.Is4() {
		sa, da := src.As4(), dstAddr.As4()
		initial = pseudoHeaderSum(sa[:], da[:], ProtoUDP, total)
	} else {
		sa, da := src.As16(), dstAddr.As16()
		initial = pseudoHeaderSum(sa[:], da[:], ProtoUDP, total)
	}
	cs := Checksum(dst[off:], initial)
	if cs == 0 {
		cs = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	put16(dst, off+6, cs)
	return dst, nil
}

// DecodeFrom parses a UDP datagram and verifies the checksum (unless the
// sender disabled it by transmitting zero). The Payload slice aliases b.
func (u *UDPDatagram) DecodeFrom(b []byte, src, dst netip.Addr) error {
	if len(b) < UDPHeaderLen {
		return fmt.Errorf("udp: %w", ErrTruncated)
	}
	length := int(get16(b, 4))
	if length < UDPHeaderLen || length > len(b) {
		return fmt.Errorf("udp: length field %d outside datagram of %d bytes: %w", length, len(b), ErrTruncated)
	}
	if get16(b, 6) != 0 {
		var initial uint32
		if src.Is4() && dst.Is4() {
			sa, da := src.As4(), dst.As4()
			initial = pseudoHeaderSum(sa[:], da[:], ProtoUDP, length)
		} else {
			sa, da := src.As16(), dst.As16()
			initial = pseudoHeaderSum(sa[:], da[:], ProtoUDP, length)
		}
		if cs := Checksum(b[:length], initial); cs != 0 && cs != 0xffff {
			return fmt.Errorf("udp: %w", ErrBadChecksum)
		}
	}
	u.SrcPort = get16(b, 0)
	u.DstPort = get16(b, 2)
	u.Payload = b[UDPHeaderLen:length]
	return nil
}
