package rate

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterConcurrentAllow: with a frozen clock the bucket never
// refills, so across any number of racing goroutines exactly `burst`
// Allow calls may succeed — the token-conservation invariant the census
// worker pool relies on.
func TestLimiterConcurrentAllow(t *testing.T) {
	const (
		burst      = 100
		goroutines = 16
		perG       = 50 // 16×50 = 800 attempts against 100 tokens
	)
	clk := NewFakeClock(epoch)
	l, err := NewLimiter(1, burst, clk)
	if err != nil {
		t.Fatal(err)
	}
	var granted int64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if l.Allow() {
					atomic.AddInt64(&granted, 1)
				}
			}
		}()
	}
	wg.Wait()
	if granted != burst {
		t.Fatalf("granted %d tokens, want exactly %d", granted, burst)
	}
	if l.Allow() {
		t.Fatal("bucket should be empty after burst exhaustion")
	}
}

// TestLimiterConcurrentWait: every concurrent Wait must eventually obtain
// a token (the FakeClock turns sleeps into deterministic advances), and
// no call may error under contention.
func TestLimiterConcurrentWait(t *testing.T) {
	const (
		goroutines = 8
		perG       = 40
	)
	clk := NewFakeClock(epoch)
	l, err := NewLimiter(1000, 1, clk)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(goroutines)
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := l.Wait(ctx); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Wait failed: %v", err)
	}
	// 320 tokens at 1000/s: the fake clock must have advanced at least the
	// refill time for the tokens beyond the initial burst.
	if min := 300 * time.Millisecond; clk.Now().Sub(epoch) < min {
		t.Fatalf("clock advanced %v, want >= %v", clk.Now().Sub(epoch), min)
	}
}

// TestLimiterMixedAllowWait races both acquisition paths (run under
// -race; the assertions are the absence of data races plus liveness).
func TestLimiterMixedAllowWait(t *testing.T) {
	clk := NewFakeClock(epoch)
	l, err := NewLimiter(500, 4, clk)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	var granted int64
	const waiters, pollers, perG = 4, 4, 25
	wg.Add(waiters + pollers)
	for g := 0; g < waiters; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := l.Wait(ctx); err == nil {
					atomic.AddInt64(&granted, 1)
				}
			}
		}()
	}
	for g := 0; g < pollers; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if l.Allow() {
					atomic.AddInt64(&granted, 1)
				}
			}
		}()
	}
	wg.Wait()
	if granted < waiters*perG {
		t.Fatalf("granted %d tokens, want at least the %d Wait successes", granted, waiters*perG)
	}
}
