package rate

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// TestConstructorsRejectNonPositiveRates sweeps the full non-positive
// edge for both abstractions, including the pathological float inputs a
// governance layer could compute (negative after misconfigured halving,
// NaN from 0/0).
func TestConstructorsRejectNonPositiveRates(t *testing.T) {
	for _, r := range []float64{0, -1, -1e9, math.Inf(-1)} {
		if _, err := NewLimiter(r, 8, nil); !errors.Is(err, ErrRateZero) {
			t.Errorf("NewLimiter(%v) error = %v, want ErrRateZero", r, err)
		}
		if _, err := NewPacer(time.Unix(0, 0), r, time.Second); !errors.Is(err, ErrRateZero) {
			t.Errorf("NewPacer(%v) error = %v, want ErrRateZero", r, err)
		}
	}
	// NaN comparisons are false, so NaN would slip through a `<= 0`
	// check — pin today's behavior explicitly: NaN is not rejected, and
	// callers must not forward NaN rates. (StepRate never produces one.)
	if _, err := NewLimiter(math.NaN(), 1, nil); err != nil {
		t.Errorf("NewLimiter(NaN) unexpectedly rejected: %v", err)
	}
}

// TestLimiterWaitCancelledMidWait cancels the context while Wait is
// genuinely blocked on the real clock (not pre-cancelled), and checks
// Wait returns promptly with the context error wrapped.
func TestLimiterWaitCancelledMidWait(t *testing.T) {
	l, err := NewLimiter(0.0001, 1, nil) // one token per ~3 hours
	if err != nil {
		t.Fatal(err)
	}
	if !l.Allow() {
		t.Fatal("initial burst token missing")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Wait(ctx) }()
	// Give Wait time to enter its sleep before cancelling.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait error = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after mid-wait cancellation")
	}
}

// TestLimiterWaitDeadlineMidWait is the deadline twin: a context that
// expires while Wait sleeps must surface DeadlineExceeded.
func TestLimiterWaitDeadlineMidWait(t *testing.T) {
	l, err := NewLimiter(0.0001, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Allow() {
		t.Fatal("initial burst token missing")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait error = %v, want wrapped DeadlineExceeded", err)
	}
}

// TestLimiterConcurrentAllowNeverOversells hammers Allow from many
// goroutines with a frozen clock: exactly the burst can succeed, no
// matter the interleaving. Run under -race this also pins the lock
// discipline (the CI race job does).
func TestLimiterConcurrentAllowNeverOversells(t *testing.T) {
	const burst = 64
	clk := NewFakeClock(time.Unix(0, 0))
	l, err := NewLimiter(1, burst, clk)
	if err != nil {
		t.Fatal(err)
	}
	var granted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < 100; i++ {
				if l.Allow() {
					local++
				}
			}
			mu.Lock()
			granted += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if granted != burst {
		t.Fatalf("granted %d tokens from a frozen %d-token bucket", granted, burst)
	}
	// One second of refill buys exactly one more.
	clk.Advance(time.Second)
	if !l.Allow() {
		t.Fatal("refilled token missing")
	}
	if l.Allow() {
		t.Fatal("oversold after refill")
	}
}

// TestPacerZeroOffsetAndDuration pins the degenerate pacer inputs the
// orchestrator can produce: zero worker offset (all workers synchronized
// exactly) and non-positive target counts.
func TestPacerZeroOffsetAndDuration(t *testing.T) {
	start := time.Unix(1000, 0)
	p, err := NewPacer(start, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SendTime(0, 5); !got.Equal(start) {
		t.Fatalf("zero offset: worker 5 sends at %v, want %v", got, start)
	}
	if p.Duration(0, 8) != 0 || p.Duration(-3, 8) != 0 {
		t.Fatal("non-positive target counts must have zero duration")
	}
	if got, want := p.Duration(1, 1), p.Period(); got != want {
		t.Fatalf("single probe duration = %v, want one period %v", got, want)
	}
}
