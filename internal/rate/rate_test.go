package rate

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2024, 3, 21, 0, 0, 0, 0, time.UTC) // census start date

func TestNewLimiterRejectsBadRate(t *testing.T) {
	for _, r := range []float64{0, -1} {
		if _, err := NewLimiter(r, 1, nil); err == nil {
			t.Errorf("NewLimiter(%v) should fail", r)
		}
	}
}

func TestLimiterAllowBurst(t *testing.T) {
	clk := NewFakeClock(epoch)
	l, err := NewLimiter(10, 5, clk)
	if err != nil {
		t.Fatal(err)
	}
	// Full burst available immediately.
	for i := 0; i < 5; i++ {
		if !l.Allow() {
			t.Fatalf("token %d should be available from initial burst", i)
		}
	}
	if l.Allow() {
		t.Fatal("bucket should be empty after burst")
	}
	// After 100ms at 10/s exactly one token refills.
	clk.Advance(100 * time.Millisecond)
	if !l.Allow() {
		t.Fatal("one token should have refilled")
	}
	if l.Allow() {
		t.Fatal("only one token should have refilled")
	}
}

func TestLimiterRefillCapped(t *testing.T) {
	clk := NewFakeClock(epoch)
	l, _ := NewLimiter(100, 3, clk)
	for l.Allow() {
	}
	clk.Advance(time.Hour) // would refill 360k tokens; cap is 3
	n := 0
	for l.Allow() {
		n++
	}
	if n != 3 {
		t.Fatalf("refill not capped at burst: got %d tokens", n)
	}
}

func TestLimiterWaitAdvancesFakeClock(t *testing.T) {
	clk := NewFakeClock(epoch)
	l, _ := NewLimiter(1000, 1, clk)
	ctx := context.Background()
	start := clk.Now()
	for i := 0; i < 100; i++ {
		if err := l.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := clk.Now().Sub(start)
	// 100 tokens at 1000/s with burst 1: ~99ms of simulated waiting.
	if elapsed < 90*time.Millisecond || elapsed > 110*time.Millisecond {
		t.Fatalf("simulated elapsed = %v, want ~99ms", elapsed)
	}
}

func TestLimiterWaitHonoursContext(t *testing.T) {
	l, _ := NewLimiter(0.0001, 1, nil) // one token per ~3 hours
	if !l.Allow() {
		t.Fatal("initial token missing")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Wait(ctx); err == nil {
		t.Fatal("Wait should fail on cancelled context")
	}
}

func TestLimiterConservation(t *testing.T) {
	// Property: over any sequence of Allow calls and clock advances, the
	// number of granted tokens never exceeds burst + rate×elapsed.
	f := func(steps []uint8) bool {
		clk := NewFakeClock(epoch)
		const perSec, burst = 50.0, 10
		l, _ := NewLimiter(perSec, burst, clk)
		granted := 0
		var elapsed time.Duration
		for _, s := range steps {
			if s%2 == 0 {
				if l.Allow() {
					granted++
				}
			} else {
				d := time.Duration(s) * time.Millisecond
				clk.Advance(d)
				elapsed += d
			}
		}
		maxAllowed := float64(burst) + perSec*elapsed.Seconds() + 1e-6
		return float64(granted) <= maxAllowed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPacerSchedule(t *testing.T) {
	p, err := NewPacer(epoch, 100, time.Second) // 100 targets/s, 1s worker offset
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SendTime(0, 0); !got.Equal(epoch) {
		t.Fatalf("first probe at %v, want %v", got, epoch)
	}
	// Target 10, worker 3: 10×10ms + 3×1s.
	want := epoch.Add(100*time.Millisecond + 3*time.Second)
	if got := p.SendTime(10, 3); !got.Equal(want) {
		t.Fatalf("SendTime(10,3) = %v, want %v", got, want)
	}
}

func TestPacerSameTargetSpacedByOffset(t *testing.T) {
	// The paper's synchronized probing: probes to the same target from
	// consecutive workers are exactly Offset apart (like a ping sequence).
	p, _ := NewPacer(epoch, 1000, time.Second)
	f := func(i uint16, w uint8) bool {
		if w == 0 {
			return true
		}
		a := p.SendTime(int(i), int(w-1))
		b := p.SendTime(int(i), int(w))
		return b.Sub(a) == time.Second
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacerDuration(t *testing.T) {
	p, _ := NewPacer(epoch, 10, time.Second) // 100ms period
	// 5 targets, 3 workers: last probe at 4×100ms + 2×1s, plus one period.
	want := 400*time.Millisecond + 2*time.Second + 100*time.Millisecond
	if got := p.Duration(5, 3); got != want {
		t.Fatalf("Duration = %v, want %v", got, want)
	}
	if p.Duration(0, 3) != 0 {
		t.Fatal("Duration of empty measurement should be 0")
	}
}

func TestPacerMonotone(t *testing.T) {
	p, _ := NewPacer(epoch, 333, 250*time.Millisecond)
	f := func(i uint16, w uint8) bool {
		t0 := p.SendTime(int(i), int(w))
		t1 := p.SendTime(int(i)+1, int(w))
		return t1.After(t0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewPacerRejectsBadRate(t *testing.T) {
	if _, err := NewPacer(epoch, 0, 0); err == nil {
		t.Fatal("NewPacer(0) should fail")
	}
}

func TestFakeClockSleepCancelled(t *testing.T) {
	clk := NewFakeClock(epoch)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := clk.Sleep(ctx, time.Second); err == nil {
		t.Fatal("Sleep with cancelled context should fail")
	}
	if !clk.Now().Equal(epoch) {
		t.Fatal("cancelled Sleep must not advance the clock")
	}
}

func TestRealClockSleep(t *testing.T) {
	var c realClock
	start := c.Now()
	if err := c.Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.Now().Sub(start) < time.Millisecond {
		t.Fatal("realClock.Sleep returned too early")
	}
	if err := c.Sleep(context.Background(), -time.Second); err != nil {
		t.Fatal("negative sleep should return immediately without error")
	}
}

func BenchmarkLimiterAllow(b *testing.B) {
	clk := NewFakeClock(epoch)
	l, _ := NewLimiter(1e9, 1<<30, clk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Allow()
	}
}
