// Package rate implements the probing-rate control LACeS uses to satisfy
// its "responsible measurement" requirement (R3): the Orchestrator streams
// hitlist targets to Workers at a CLI-defined rate, and §5.5.2 of the paper
// shows accuracy is maintained even at 1/8th the normal rate.
//
// Two abstractions are provided:
//
//   - Limiter: a classic token bucket, safe for concurrent use, with both
//     blocking (Wait) and non-blocking (Allow) acquisition and an
//     injectable clock so simulations and tests never sleep.
//   - Pacer: converts a desired packets-per-second rate into the precise
//     send timestamp for the i-th probe, which is what the Orchestrator
//     uses to schedule synchronized probes with per-worker offsets.
package rate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time for testability. The zero Limiter uses the real
// clock.
type Clock interface {
	Now() time.Time
	// Sleep waits for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() } //laces:allow detnow realClock is the one place wall time enters; everything else injects Clock

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ErrRateZero is returned when constructing a limiter or pacer with a
// non-positive rate.
var ErrRateZero = errors.New("rate: packets-per-second must be positive")

// Limiter is a token bucket: capacity Burst tokens, refilled at PerSecond
// tokens per second. A Limiter must be created with NewLimiter.
type Limiter struct {
	perSecond float64
	burst     float64
	clock     Clock

	// Pacer-wait telemetry: how often Wait had to sleep and for how
	// long in total. Atomic so readers never contend with the bucket
	// mutex; read via WaitStats.
	waits     atomic.Int64
	waitNanos atomic.Int64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// WaitStats returns the limiter's sleep telemetry: the number of times
// Wait blocked and the total requested sleep time. Zero for a nil
// limiter.
func (l *Limiter) WaitStats() (waits int64, total time.Duration) {
	if l == nil {
		return 0, 0
	}
	return l.waits.Load(), time.Duration(l.waitNanos.Load())
}

// NewLimiter returns a token bucket producing perSecond tokens per second
// with the given burst capacity (minimum 1). A nil clock uses real time.
func NewLimiter(perSecond float64, burst int, clock Clock) (*Limiter, error) {
	if perSecond <= 0 {
		return nil, ErrRateZero
	}
	if burst < 1 {
		burst = 1
	}
	if clock == nil {
		clock = realClock{}
	}
	return &Limiter{
		perSecond: perSecond,
		burst:     float64(burst),
		clock:     clock,
		tokens:    float64(burst),
		last:      clock.Now(),
	}, nil
}

// Rate returns the configured tokens-per-second rate.
func (l *Limiter) Rate() float64 { return l.perSecond }

// refillLocked advances the bucket to now. Caller holds l.mu.
func (l *Limiter) refillLocked(now time.Time) {
	elapsed := now.Sub(l.last)
	if elapsed <= 0 {
		return
	}
	l.last = now
	l.tokens += elapsed.Seconds() * l.perSecond
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
}

// Allow reports whether one token is immediately available, consuming it
// if so.
func (l *Limiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked(l.clock.Now())
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// Wait blocks until a token is available or ctx is done.
func (l *Limiter) Wait(ctx context.Context) error {
	for {
		l.mu.Lock()
		now := l.clock.Now()
		l.refillLocked(now)
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return nil
		}
		need := 1 - l.tokens
		wait := time.Duration(need / l.perSecond * float64(time.Second))
		l.mu.Unlock()
		l.waits.Add(1)
		l.waitNanos.Add(int64(wait))
		if err := l.clock.Sleep(ctx, wait); err != nil {
			return fmt.Errorf("rate: waiting for token: %w", err)
		}
	}
}

// Pacer computes deterministic send times for a sequence of probes sent at
// a fixed rate starting from a base time. Unlike Limiter it holds no
// mutable state, so the Orchestrator can compute the schedule of probe i
// for worker w as:
//
//	send(i, w) = Start + i/Rate + w×Offset
//
// which is exactly the synchronized probing scheme of §4.2.3: every target
// receives one probe from each worker, spaced Offset apart, while the
// hitlist is consumed at Rate targets/second.
type Pacer struct {
	start  time.Time
	period time.Duration
	offset time.Duration
}

// NewPacer creates a pacer for the given targets-per-second rate and
// inter-worker offset.
func NewPacer(start time.Time, perSecond float64, workerOffset time.Duration) (*Pacer, error) {
	if perSecond <= 0 {
		return nil, ErrRateZero
	}
	return &Pacer{
		start:  start,
		period: time.Duration(float64(time.Second) / perSecond),
		offset: workerOffset,
	}, nil
}

// SendTime returns the scheduled transmit time of the probe for target
// index i from worker index w.
func (p *Pacer) SendTime(i, w int) time.Time {
	return p.start.Add(time.Duration(i)*p.period + time.Duration(w)*p.offset)
}

// Duration returns the total wall-clock time needed to probe n targets
// with nWorkers workers: the send time of the last probe plus one period.
func (p *Pacer) Duration(n, nWorkers int) time.Duration {
	if n <= 0 {
		return 0
	}
	last := time.Duration(n-1)*p.period + time.Duration(nWorkers-1)*p.offset
	return last + p.period
}

// Period returns the inter-target spacing.
func (p *Pacer) Period() time.Duration { return p.period }

// Offset returns the inter-worker spacing.
func (p *Pacer) Offset() time.Duration { return p.offset }

// FakeClock is a manually advanced clock for tests and simulation. It
// implements Clock. Sleep advances the clock instead of blocking, which
// lets rate-limited pipelines run at full speed deterministically.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock returns a FakeClock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the fake clock by d immediately.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *FakeClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
