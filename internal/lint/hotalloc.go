package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc is the static complement to the repo's AllocsPerRun guards:
// functions annotated //laces:hotpath (the netsim probe path, the
// packet codecs, the striped-counter adds) must stay allocation-free,
// so inside them the analyzer bans
//
//   - any fmt call (Sprintf and friends allocate on every invocation),
//   - string concatenation inside a loop,
//   - implicit interface boxing of a concrete argument or conversion,
//   - append to a slice the function declared without preallocated
//     capacity.
//
// The runtime guards catch a regression only on the benchmarked
// configuration; this catches it on every path at compile time.
type Hotalloc struct{}

// Name implements Analyzer.
func (Hotalloc) Name() string { return "hotalloc" }

// Doc implements Analyzer.
func (Hotalloc) Doc() string {
	return "//laces:hotpath functions must not call fmt, concatenate strings in loops, box into interfaces, or append to non-preallocated slices"
}

// Run implements Analyzer.
func (a Hotalloc) Run(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			diags = append(diags, a.checkHot(p, fd)...)
		}
	}
	return diags
}

// checkHot walks one hot function's body.
func (a Hotalloc) checkHot(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: a.Name(),
			Pos:      p.position(n),
			Message:  fmt.Sprintf(format, args...) + fmt.Sprintf(" in //laces:hotpath function %s", fd.Name.Name),
		})
	}
	prealloc := preallocated(p.Info, fd)
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init != nil {
					walk(n.Init, inLoop)
				}
				if n.Cond != nil {
					walk(n.Cond, inLoop)
				}
				if n.Post != nil {
					walk(n.Post, inLoop)
				}
				walk(n.Body, true)
				return false
			case *ast.RangeStmt:
				walk(n.X, inLoop)
				walk(n.Body, true)
				return false
			case *ast.BinaryExpr:
				if n.Op == token.ADD && inLoop && isStringType(p.Info, n) {
					report(n, "string concatenation inside a loop allocates per iteration")
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && inLoop && len(n.Lhs) == 1 && isStringType(p.Info, n.Lhs[0]) {
					report(n, "string concatenation inside a loop allocates per iteration")
				}
			case *ast.CallExpr:
				diags = append(diags, a.checkCall(p, fd, n, prealloc)...)
			}
			return true
		})
	}
	walk(fd.Body, false)
	return diags
}

// checkCall inspects one call inside a hot function.
func (a Hotalloc) checkCall(p *Package, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: a.Name(),
			Pos:      p.position(n),
			Message:  fmt.Sprintf(format, args...) + fmt.Sprintf(" in //laces:hotpath function %s", fd.Name.Name),
		})
	}

	// fmt anywhere on a hot path allocates (formatting state, boxing).
	if pkgPath, fn, ok := pkgFunc(p.Info, call); ok && pkgPath == "fmt" {
		report(call, "call to fmt.%s allocates", fn)
		return diags
	}

	// append to a slice this function declared without capacity.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if b, bok := p.Info.Uses[id].(*types.Builtin); bok && b.Name() == "append" {
			if tid, tok := call.Args[0].(*ast.Ident); tok {
				if obj := p.Info.ObjectOf(tid); obj != nil {
					if grew, known := prealloc[obj]; known && !grew {
						report(call, "append to %q, declared in this function without preallocated capacity, reallocates as it grows", tid.Name)
					}
				}
			}
			return diags
		}
	}

	// Interface boxing: a concrete argument passed to an interface
	// parameter, or an explicit conversion to an interface type.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && !isInterfaceExpr(p.Info, call.Args[0]) && !isNilExpr(call.Args[0]) {
			report(call, "conversion of a concrete value to interface %s allocates", tv.Type.String())
		}
		return diags
	}
	sig := callSignature(p.Info, call)
	if sig == nil {
		return diags
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && !isInterfaceExpr(p.Info, arg) && !isNilExpr(arg) {
			report(arg, "argument boxes a concrete value into interface parameter %s", pt.String())
		}
	}
	return diags
}

// callSignature resolves the static signature of a call, or nil for
// builtins and type conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig
}

// isStringType reports whether the expression's static type is a
// string.
func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isInterfaceExpr reports whether the expression is already
// interface-typed (no boxing happens passing it on).
func isInterfaceExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && types.IsInterface(tv.Type)
}

// isNilExpr matches the untyped nil literal.
func isNilExpr(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// preallocated maps every slice-typed object DECLARED in fd to whether
// its declaration carries capacity: `make([]T, n)` / `make([]T, n, c)`
// / a non-empty literal count as preallocated; `var s []T`, `[]T{}` and
// `make([]T, 0)` do not. Objects not in the map (parameters, fields,
// package vars) are out of the analyzer's sight and never reported.
func preallocated(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		out[obj] = rhsPreallocates(info, rhs)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				record(id, rhs)
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					record(id, rhs)
				}
			}
		}
		return true
	})
	return out
}

// rhsPreallocates reports whether a slice initializer reserves
// capacity.
func rhsPreallocates(info *types.Info, rhs ast.Expr) bool {
	switch rhs := rhs.(type) {
	case nil:
		return false // var s []T
	case *ast.CallExpr:
		id, ok := rhs.Fun.(*ast.Ident)
		if ok && id.Name == "make" {
			if b, bok := info.Uses[id].(*types.Builtin); bok && b.Name() == "make" {
				if len(rhs.Args) >= 3 {
					return true // make([]T, n, c)
				}
				if len(rhs.Args) == 2 {
					// make([]T, n): preallocated unless n is literally 0.
					lit, isLit := rhs.Args[1].(*ast.BasicLit)
					return !(isLit && lit.Value == "0")
				}
				return false
			}
		}
		return true // some producer call — its allocation is not ours to judge
	case *ast.CompositeLit:
		return len(rhs.Elts) > 0
	default:
		return true // copies of existing slices etc.
	}
}
