// Package lint is the project's static-analysis suite: a dependency-free
// (stdlib go/ast + go/parser + go/types only) analyzer framework that
// moves LACeS's mechanical invariants — seed→byte-identical documents,
// zero-alloc probe paths, nil-safe telemetry instruments, status-before-
// body API responses — from runtime golden tests into checks that run on
// every package on every CI run, via cmd/laces-lint.
//
// Each Analyzer inspects one type-checked package and reports typed
// diagnostics with file:line positions. Findings fail the build; the
// audited escape hatch is a
//
//	//laces:allow <analyzer> <reason>
//
// comment on (or immediately above) the offending line. Malformed or
// unknown directives are themselves findings, so the allowlist stays
// greppable and honest.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"position"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package as the analyzers see it:
// syntax with comments, full type information, and enough identity
// (module and import path) for analyzers to scope themselves. Test
// files are excluded — the invariants the suite enforces are about
// shipped census code, and tests legitimately use wall clocks and maps.
type Package struct {
	// Path is the package's import path; Module is the module path it
	// belongs to (analyzers scope on the relation between the two).
	Path   string
	Module string
	Dir    string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// InternalTo reports whether the package is part of the module's
// internal tree (or is the module root package) — the scope of the
// determinism analyzers. cmd/ and examples/ binaries are drivers, not
// census code, and fall outside it.
func (p *Package) InternalTo() bool {
	return p.Path == p.Module || strings.HasPrefix(p.Path, p.Module+"/internal/")
}

// PathEndsWith reports whether the package's import path ends in
// suffix (e.g. "internal/obs") — how package-scoped analyzers match
// both the real package and a testdata corpus loaded under a synthetic
// path.
func (p *Package) PathEndsWith(suffix string) bool {
	return p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix)
}

// Analyzer is one invariant check. Run inspects a single package and
// returns its findings; the framework applies //laces:allow suppression
// afterwards, so analyzers report every violation unconditionally.
type Analyzer interface {
	Name() string
	Doc() string
	Run(p *Package) []Diagnostic
}

// Suite returns the full analyzer suite in stable order.
func Suite() []Analyzer {
	return []Analyzer{
		Detnow{},
		Maporder{},
		Nilsafe{},
		Hotalloc{},
		Httporder{},
	}
}

// AnalyzerNames returns the names valid in //laces:allow directives.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Suite() {
		names = append(names, a.Name())
	}
	return names
}

// Run executes the analyzers over the packages, applies directive
// suppression, folds in directive-syntax findings, and returns the
// surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	var out []Diagnostic
	for _, p := range pkgs {
		dirs := collectDirectives(p, known)
		out = append(out, dirs.malformed...)
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				if !dirs.allows(a.Name(), d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// position is shorthand for a node's resolved position.
func (p *Package) position(n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}

// pkgFunc resolves a call of the form pkg.Fn to its package import path
// and function name, when Fun is a selector over an imported package
// name. ok is false for method calls and locals.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
