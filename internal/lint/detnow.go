package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// Detnow enforces the census determinism contract: the same seed must
// produce byte-identical documents, so census-producing code (the
// module's internal tree and root package) must not read ambient
// nondeterminism — the wall clock, the global math/rand generators, or
// the process environment. Simulated time flows through rate.Clock and
// explicit day/At parameters; randomness through seeded rand.New
// sources and the world's own mixers. The few legitimate wall-clock
// users (telemetry timestamps, the real clock implementation itself,
// worker runtime paths) carry //laces:allow detnow annotations, making
// the permitted wall-time surface greppable.
type Detnow struct{}

// Name implements Analyzer.
func (Detnow) Name() string { return "detnow" }

// Doc implements Analyzer.
func (Detnow) Doc() string {
	return "no time.Now/global math/rand/os.Getenv in census-producing packages (inject rate.Clock / seeded sources instead)"
}

// detnowBanned maps package path → banned function predicate and the
// advice attached to the finding.
func detnowBanned(pkgPath, fn string) (string, bool) {
	switch pkgPath {
	case "time":
		switch fn {
		case "Now", "Since", "Until":
			return "breaks seed→byte-identical census output; inject a rate.Clock or take the timestamp as a parameter", true
		}
	case "math/rand", "math/rand/v2":
		// Seeded, locally-owned generators (rand.New(rand.NewSource(seed)))
		// are the deterministic idiom; only the package-level global
		// generator and unseeded constructors are banned.
		if !strings.HasPrefix(fn, "New") {
			return "uses the globally seeded generator; build a seeded *rand.Rand with rand.New(rand.NewSource(seed))", true
		}
	case "os":
		switch fn {
		case "Getenv", "LookupEnv", "Environ":
			return "makes census output depend on the process environment; thread configuration through Config instead", true
		}
	}
	return "", false
}

// Run implements Analyzer.
func (d Detnow) Run(p *Package) []Diagnostic {
	if !p.InternalTo() {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn, ok := pkgFunc(p.Info, call)
			if !ok {
				return true
			}
			if advice, banned := detnowBanned(pkgPath, fn); banned {
				diags = append(diags, Diagnostic{
					Analyzer: d.Name(),
					Pos:      p.position(call),
					Message:  fmt.Sprintf("call to %s.%s %s", pkgPath, fn, advice),
				})
			}
			return true
		})
	}
	return diags
}
