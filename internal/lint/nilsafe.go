package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Nilsafe pins the internal/obs contract from the telemetry PR: every
// instrument handed out by a disabled (nil) registry is nil, and
// calling any exported method on it must cost exactly one branch — so
// every exported pointer-receiver method on an exported obs type must
// begin with a nil-receiver guard. Accepted shapes:
//
//	func (c *T) M() { if c == nil { return ... }; ... }   // early return
//	func (c *T) M() { if c != nil { ... } }               // guarded body
//	func (c *T) M() { c.Other(...) }                      // delegate to a guarded method
//
// A method that dereferences an unguarded receiver turns the "disabled
// telemetry costs one branch" promise into a panic.
type Nilsafe struct{}

// Name implements Analyzer.
func (Nilsafe) Name() string { return "nilsafe" }

// Doc implements Analyzer.
func (Nilsafe) Doc() string {
	return "exported pointer-receiver methods on internal/obs types must begin with a nil-receiver guard"
}

// Run implements Analyzer.
func (a Nilsafe) Run(p *Package) []Diagnostic {
	if !p.PathEndsWith("internal/obs") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvName, typeName, ok := pointerRecv(fd)
			if !ok || !token.IsExported(typeName) {
				continue
			}
			if nilGuarded(p.Info, fd.Body, recvName) {
				continue
			}
			diags = append(diags, Diagnostic{
				Analyzer: a.Name(),
				Pos:      p.position(fd.Name),
				Message: fmt.Sprintf("exported method (*%s).%s must begin with a nil-receiver guard — instruments from a disabled registry are nil and promise one-branch no-ops",
					typeName, fd.Name.Name),
			})
		}
	}
	return diags
}

// pointerRecv extracts the receiver name and pointed-to type name of a
// pointer-receiver method. Unnamed receivers cannot be dereferenced and
// are trivially nil-safe.
func pointerRecv(fd *ast.FuncDecl) (recvName, typeName string, ok bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	star, isPtr := field.Type.(*ast.StarExpr)
	if !isPtr {
		return "", "", false
	}
	base := star.X
	if idx, isIdx := base.(*ast.IndexExpr); isIdx { // generic receiver
		base = idx.X
	}
	id, isID := base.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return "", "", false
	}
	return field.Names[0].Name, id.Name, true
}

// nilGuarded reports whether the body starts with an accepted
// nil-receiver guard shape.
func nilGuarded(info *types.Info, body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return true // empty method dereferences nothing
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		if first.Init == nil && condHasNilCheck(first.Cond, recv, token.EQL) && endsInReturn(first.Body) {
			return true
		}
		// Whole-body guard: the if wraps everything the method does.
		if len(body.List) == 1 && first.Init == nil && first.Else == nil &&
			condHasNilCheck(first.Cond, recv, token.NEQ) {
			return true
		}
	case *ast.ExprStmt:
		if len(body.List) == 1 && delegatesTo(first.X, recv) {
			return true
		}
	case *ast.ReturnStmt:
		if len(body.List) == 1 && len(first.Results) == 1 && delegatesTo(first.Results[0], recv) {
			return true
		}
	}
	return false
}

// endsInReturn reports whether a guard body unconditionally leaves the
// method: its last statement is a return or a panic.
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	default:
		return false
	}
}

// condHasNilCheck reports whether cond contains `recv <op> nil` in a
// position that guards the whole condition: the comparison itself, the
// left arm of || (for == guards) or && (for != guards), possibly
// nested.
func condHasNilCheck(cond ast.Expr, recv string, op token.Token) bool {
	if paren, ok := cond.(*ast.ParenExpr); ok {
		return condHasNilCheck(paren.X, recv, op)
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op == op && isRecvNilComparison(be, recv) {
		return true
	}
	// `recv == nil || more` still returns early on nil; `recv != nil &&
	// more` still short-circuits every dereference behind the guard.
	if (op == token.EQL && be.Op == token.LOR) || (op == token.NEQ && be.Op == token.LAND) {
		return condHasNilCheck(be.X, recv, op)
	}
	return false
}

// isRecvNilComparison matches `recv <op> nil` / `nil <op> recv`.
func isRecvNilComparison(be *ast.BinaryExpr, recv string) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && isRecv(be.Y))
}

// delegatesTo reports whether the expression is a single call on the
// receiver itself (`c.Add(1)`) — nil-safety is the callee's job, which
// this analyzer checks too.
func delegatesTo(e ast.Expr, recv string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == recv
}
