package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directives are magic comments under the //laces: prefix:
//
//	//laces:allow <analyzer> <reason>   audited suppression of one finding
//	//laces:hotpath [reason]            marks a function for the hotalloc pass
//
// An allow applies to findings of the named analyzer on the directive's
// own line (trailing-comment form) or on the next code line below it
// (standalone or doc-comment form). The reason is mandatory: an
// exemption nobody can explain is a finding, not a waiver.

const directivePrefix = "//laces:"

// allowKey identifies one suppressible location.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

// directiveSet is the per-package directive index the runner consults.
type directiveSet struct {
	allowed   map[allowKey]bool
	malformed []Diagnostic
}

// allows reports whether a finding by analyzer at pos is suppressed.
func (ds *directiveSet) allows(analyzer string, pos token.Position) bool {
	return ds.allowed[allowKey{analyzer, pos.Filename, pos.Line}]
}

// collectDirectives scans every comment in the package for //laces:
// directives, recording allow targets and reporting malformed or
// unknown ones as findings of the "directive" pseudo-analyzer (which
// cannot itself be suppressed).
func collectDirectives(p *Package, known map[string]bool) *directiveSet {
	ds := &directiveSet{allowed: make(map[allowKey]bool)}
	for _, f := range p.Files {
		codeLines := fileCodeLines(p.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				verb, args, _ := strings.Cut(rest, " ")
				switch verb {
				case "hotpath":
					// Valid anywhere; consumed by hotalloc via the
					// function's doc comment. An optional reason rides
					// along unvalidated.
				case "allow":
					fields := strings.Fields(args)
					switch {
					case len(fields) == 0:
						ds.malformed = append(ds.malformed, Diagnostic{
							Analyzer: "directive", Pos: pos,
							Message: "//laces:allow needs an analyzer name and a reason",
						})
					case !known[fields[0]]:
						ds.malformed = append(ds.malformed, Diagnostic{
							Analyzer: "directive", Pos: pos,
							Message: fmt.Sprintf("//laces:allow names unknown analyzer %q (known: %s)",
								fields[0], strings.Join(sortedKeys(known), ", ")),
						})
					case len(fields) < 2:
						ds.malformed = append(ds.malformed, Diagnostic{
							Analyzer: "directive", Pos: pos,
							Message: fmt.Sprintf("//laces:allow %s needs a reason — undocumented exemptions are findings", fields[0]),
						})
					default:
						// Trailing comments cover their own line; standalone
						// (or doc-comment) directives cover the code line
						// below them.
						if hasLine(codeLines, pos.Line) {
							ds.allowed[allowKey{fields[0], pos.Filename, pos.Line}] = true
						} else if next, ok := nextCodeLine(codeLines, pos.Line); ok {
							ds.allowed[allowKey{fields[0], pos.Filename, next}] = true
						}
					}
				default:
					ds.malformed = append(ds.malformed, Diagnostic{
						Analyzer: "directive", Pos: pos,
						Message: fmt.Sprintf("unknown //laces: directive %q (know: allow, hotpath)", verb),
					})
				}
			}
		}
	}
	return ds
}

// fileCodeLines returns the sorted set of lines carrying non-comment
// tokens, used to attach a standalone directive to the statement below
// it (skipping over the rest of a doc comment).
func fileCodeLines(fset *token.FileSet, f *ast.File) []int {
	seen := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		seen[fset.Position(n.Pos()).Line] = true
		seen[fset.Position(n.End()).Line] = true
		return true
	})
	lines := make([]int, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	return lines
}

// nextCodeLine returns the first code line strictly after line.
func nextCodeLine(codeLines []int, line int) (int, bool) {
	i := sort.SearchInts(codeLines, line+1)
	if i == len(codeLines) {
		return 0, false
	}
	return codeLines[i], true
}

// hasLine reports whether the sorted line set contains line.
func hasLine(codeLines []int, line int) bool {
	i := sort.SearchInts(codeLines, line)
	return i < len(codeLines) && codeLines[i] == line
}

// isHotpath reports whether the function declaration is annotated
// //laces:hotpath in its doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//laces:hotpath" || strings.HasPrefix(c.Text, "//laces:hotpath ") {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
