package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// corpusModule is the synthetic module identity the golden corpora load
// under; per-corpus import paths hang off its internal tree so the
// package-scoped analyzers fire exactly as they do on the real module.
const corpusModule = "example.com/corpus"

// loadCorpus loads one testdata package through the same pipeline as
// real packages.
func loadCorpus(t *testing.T, dir, asPath string) *Package {
	t.Helper()
	p, err := LoadDir(filepath.Join("testdata", "src", dir), ".", corpusModule, asPath)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	return p
}

// wantRE extracts the backquoted regexes of one `// want` marker.
var wantRE = regexp.MustCompile("// want((?: `[^`]+`)+)")

var wantArgRE = regexp.MustCompile("`([^`]+)`")

// parseWants reads the corpus sources and returns, keyed by file:line,
// the diagnostic regexes expected there.
func parseWants(t *testing.T, dir string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	root := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(root, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, i+1)
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					t.Fatalf("%s: bad want regex %q: %v", key, arg[1], err)
				}
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants
}

// TestCorpora runs the full suite over each golden corpus and requires
// an exact match: every `// want` satisfied, no diagnostic unaccounted
// for.
func TestCorpora(t *testing.T) {
	cases := []struct {
		dir    string
		asPath string
	}{
		{"detnow", corpusModule + "/internal/detnow"},
		{"maporder", corpusModule + "/internal/maporder"},
		{"nilsafe", corpusModule + "/internal/obs"},
		{"hotalloc", corpusModule + "/internal/hotalloc"},
		{"httporder", corpusModule + "/internal/api"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			p := loadCorpus(t, tc.dir, tc.asPath)
			diags := Run([]*Package{p}, Suite())
			wants := parseWants(t, tc.dir)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				matched := false
				for i, re := range wants[key] {
					if re.MatchString(d.Message) {
						wants[key] = append(wants[key][:i], wants[key][i+1:]...)
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, res := range wants {
				for _, re := range res {
					t.Errorf("%s: missing expected diagnostic matching %q", key, re)
				}
			}
		})
	}
}

// TestDirectiveParsing asserts that malformed //laces: directives are
// findings of the non-suppressible "directive" pseudo-analyzer, and a
// well-formed allow suppresses its target. Expectations live here
// rather than as `// want` markers because a directive and a marker
// cannot share a line.
func TestDirectiveParsing(t *testing.T) {
	p := loadCorpus(t, "directive", corpusModule+"/internal/directive")
	diags := Run([]*Package{p}, Suite())

	wantDirective := []string{
		`unknown //laces: directive "frobnicate"`,
		"needs an analyzer name",
		`unknown analyzer "gremlins"`,
		"needs a reason",
	}
	var directiveDiags, otherDiags []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "directive" {
			directiveDiags = append(directiveDiags, d)
		} else {
			otherDiags = append(otherDiags, d)
		}
	}
	if len(directiveDiags) != len(wantDirective) {
		t.Fatalf("got %d directive findings, want %d:\n%v", len(directiveDiags), len(wantDirective), directiveDiags)
	}
	for _, want := range wantDirective {
		found := false
		for _, d := range directiveDiags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive finding containing %q in %v", want, directiveDiags)
		}
	}

	// The corpus has two time.Now calls; only the unsuppressed one may
	// surface.
	if len(otherDiags) != 1 {
		t.Fatalf("got %d non-directive findings, want exactly the unsuppressed time.Now:\n%v", len(otherDiags), otherDiags)
	}
	d := otherDiags[0]
	if d.Analyzer != "detnow" || !strings.Contains(d.Message, "time.Now") {
		t.Errorf("surviving finding should be the unsuppressed time.Now, got %s", d)
	}
}

// TestSuiteNames pins the analyzer set: directives reference analyzers
// by name, so renames are breaking changes.
func TestSuiteNames(t *testing.T) {
	want := []string{"detnow", "maporder", "nilsafe", "hotalloc", "httporder"}
	got := AnalyzerNames()
	if len(got) != len(want) {
		t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
		}
	}
	for _, a := range Suite() {
		if a.Doc() == "" {
			t.Errorf("analyzer %s has no doc", a.Name())
		}
	}
}

// TestLoadRealPackage smoke-tests the module-aware loader against this
// very package.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load("../..", "./internal/lint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Module != "github.com/laces-project/laces" {
		t.Errorf("module = %q", p.Module)
	}
	if !p.InternalTo() {
		t.Error("internal/lint should be internal to the module")
	}
	if !p.PathEndsWith("internal/lint") {
		t.Error("PathEndsWith(internal/lint) should hold")
	}
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Error("loaded package is missing syntax or type information")
	}
}
