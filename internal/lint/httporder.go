package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Httporder enforces the internal/api response discipline: headers are
// set, then exactly one WriteHeader, then the body — the contract the
// writeJSON funnel centralizes. Two kinds of findings:
//
//   - Funnel: any direct WriteHeader call on an http.ResponseWriter is
//     reported; writeJSON itself and the streaming/metrics routes that
//     legitimately bypass it carry //laces:allow httporder annotations,
//     keeping the set of raw status writers enumerable.
//
//   - Order: within any function taking an http.ResponseWriter, a
//     path-sensitive walk flags a direct body Write before WriteHeader
//     (implicitly committing status 200), header mutation after the
//     header is committed (silently dropped by net/http), and duplicate
//     WriteHeader calls ("superfluous response.WriteHeader" at runtime,
//     but only on the path a test happens to exercise).
//
// Passing the writer to another function (writeErr, an encoder, a
// middleware wrapper) conservatively marks the header as committed on
// that path — the callee may have responded — but is never itself a
// finding.
type Httporder struct{}

// Name implements Analyzer.
func (Httporder) Name() string { return "httporder" }

// Doc implements Analyzer.
func (Httporder) Doc() string {
	return "internal/api: headers, then one WriteHeader, then body; direct WriteHeader calls outside the writeJSON funnel need //laces:allow"
}

// Run implements Analyzer.
func (a Httporder) Run(p *Package) []Diagnostic {
	if !p.PathEndsWith("internal/api") {
		return nil
	}
	var diags []Diagnostic

	// Funnel rule: every direct WriteHeader on a ResponseWriter-typed
	// value, anywhere in the package.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "WriteHeader" || !isResponseWriter(p.Info, sel.X) {
				return true
			}
			diags = append(diags, Diagnostic{
				Analyzer: a.Name(),
				Pos:      p.position(call),
				Message:  "direct WriteHeader bypasses the writeJSON funnel; respond through writeJSON/writeErr or annotate the streaming route",
			})
			return true
		})
	}

	// Order rule: walk every function that receives a ResponseWriter.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			for _, w := range writerParams(p.Info, ft) {
				walk := &orderWalk{a: a, p: p, writer: w}
				walk.block(body.List, &wState{})
				diags = append(diags, walk.diags...)
			}
			return true
		})
	}
	return diags
}

// isResponseWriter reports whether the expression's static type is the
// net/http.ResponseWriter interface itself.
func isResponseWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isResponseWriterType(tv.Type)
}

// isResponseWriterType matches the named interface net/http.ResponseWriter.
func isResponseWriterType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// writerParams collects the objects of named http.ResponseWriter
// parameters of a function type.
func writerParams(info *types.Info, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj != nil && isResponseWriterType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// wState is the per-path response state for one writer.
type wState struct {
	headerWritten bool
}

func (s *wState) clone() *wState { c := *s; return &c }

// orderWalk is a path-sensitive statement walker for one writer object.
type orderWalk struct {
	a      Httporder
	p      *Package
	writer types.Object
	diags  []Diagnostic
}

func (o *orderWalk) report(n ast.Node, format string, args ...any) {
	o.diags = append(o.diags, Diagnostic{
		Analyzer: o.a.Name(),
		Pos:      o.p.position(n),
		Message:  fmt.Sprintf(format, args...),
	})
}

// block walks a statement list, mutating st along the way; reports
// whether every path through it terminates (return/panic).
func (o *orderWalk) block(stmts []ast.Stmt, st *wState) bool {
	for _, s := range stmts {
		if o.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt handles one statement; true means control does not continue past
// it on any path.
func (o *orderWalk) stmt(s ast.Stmt, st *wState) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			o.scan(r, st)
		}
		return true
	case *ast.BlockStmt:
		return o.block(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			o.stmt(s.Init, st)
		}
		o.scan(s.Cond, st)
		thenSt := st.clone()
		thenTerm := o.block(s.Body.List, thenSt)
		var elseTerm bool
		elseSt := st.clone()
		if s.Else != nil {
			elseTerm = o.stmt(s.Else, elseSt)
		}
		// Merge the states of paths that fall through. With no else the
		// skipped-branch path keeps st as-is.
		if !thenTerm {
			st.headerWritten = st.headerWritten || thenSt.headerWritten
		}
		if s.Else != nil && !elseTerm {
			st.headerWritten = st.headerWritten || elseSt.headerWritten
		}
		return thenTerm && s.Else != nil && elseTerm
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return o.branches(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			o.stmt(s.Init, st)
		}
		if s.Cond != nil {
			o.scan(s.Cond, st)
		}
		loopSt := st.clone()
		o.block(s.Body.List, loopSt)
		if s.Post != nil {
			o.stmt(s.Post, loopSt)
		}
		st.headerWritten = st.headerWritten || loopSt.headerWritten
		return false
	case *ast.RangeStmt:
		o.scan(s.X, st)
		loopSt := st.clone()
		o.block(s.Body.List, loopSt)
		st.headerWritten = st.headerWritten || loopSt.headerWritten
		return false
	case *ast.ExprStmt:
		o.scan(s.X, st)
		return isPanicCall(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			o.scan(r, st)
		}
		for _, l := range s.Lhs {
			o.scan(l, st)
		}
		return false
	case *ast.DeferStmt:
		o.scan(s.Call, st)
		return false
	case *ast.GoStmt:
		o.scan(s.Call, st)
		return false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.LabeledStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				o.scan(e, st)
				return false
			}
			return true
		})
		return false
	default:
		return false
	}
}

// branches walks switch/type-switch/select bodies: each clause runs on
// its own clone; non-terminated clauses merge back. Without a default
// clause the no-match path keeps the incoming state, so the statement
// never terminates.
func (o *orderWalk) branches(s ast.Stmt, st *wState) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			o.stmt(s.Init, st)
		}
		if s.Tag != nil {
			o.scan(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			o.stmt(s.Init, st)
		}
		o.stmt(s.Assign, st)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	allTerm := true
	merged := false
	for _, c := range body.List {
		var caseStmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				o.scan(e, st)
			}
			if c.List == nil {
				hasDefault = true
			}
			caseStmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				o.stmt(c.Comm, st)
			} else {
				hasDefault = true
			}
			caseStmts = c.Body
		}
		cs := st.clone()
		if !o.block(caseStmts, cs) {
			allTerm = false
			merged = merged || cs.headerWritten
		}
	}
	st.headerWritten = st.headerWritten || merged
	return allTerm && hasDefault
}

// scan visits an expression for writer events, in evaluation-ish
// (pre-order) order.
func (o *orderWalk) scan(e ast.Expr, st *wState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The literal's body is analyzed on its own by Run if it has
			// writer params of its own; a closure over OUR writer runs at
			// an unknown time — treat it as an escape.
			if o.mentionsWriter(n.Body) {
				st.headerWritten = true
			}
			return false
		case *ast.CallExpr:
			o.call(n, st)
			return false // o.call recurses itself
		case *ast.Ident:
			// Bare use of the writer outside a call (composite literal
			// field, assignment source): it escaped; assume responded.
			if o.p.Info.Uses[n] == o.writer {
				st.headerWritten = true
			}
		}
		return true
	})
}

// call classifies one call with respect to the tracked writer.
func (o *orderWalk) call(call *ast.CallExpr, st *wState) {
	// Arguments evaluate first.
	escaped := false
	for _, arg := range call.Args {
		if o.isWriter(arg) {
			escaped = true
			continue // direct pass — handled below, not a bare escape
		}
		o.scan(arg, st)
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch {
		case o.isWriter(sel.X) && sel.Sel.Name == "WriteHeader":
			if st.headerWritten {
				o.report(call, "duplicate WriteHeader on this path — the response status is already committed")
			}
			st.headerWritten = true
			return
		case o.isWriter(sel.X) && sel.Sel.Name == "Write":
			if !st.headerWritten {
				o.report(call, "body Write before WriteHeader implicitly commits status 200; set the status first")
			}
			st.headerWritten = true
			return
		case isHeaderMutation(sel) && o.headerOf(sel.X):
			if st.headerWritten {
				o.report(call, "Header().%s after WriteHeader has no effect — net/http drops mutations once the header is committed", sel.Sel.Name)
			}
			return
		case o.isWriter(sel.X):
			// Some other method on the writer (Flush via assertion is the
			// common one elsewhere): no ordering significance.
			return
		default:
			o.scan(sel.X, st)
		}
	} else if call.Fun != nil {
		o.scan(call.Fun, st)
	}

	if escaped {
		// The writer was handed to another function (writeErr, an
		// encoder constructor, a wrapper): assume it responded.
		st.headerWritten = true
	}
}

// isWriter reports whether the expression is a direct use of the
// tracked writer object (through parens).
func (o *orderWalk) isWriter(e ast.Expr) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	return ok && o.p.Info.Uses[id] == o.writer
}

// headerOf reports whether the expression is `w.Header()` on the
// tracked writer.
func (o *orderWalk) headerOf(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Header" && o.isWriter(sel.X)
}

// isHeaderMutation matches the http.Header mutators.
func isHeaderMutation(sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Set", "Add", "Del":
		return true
	}
	return false
}

// mentionsWriter reports whether the node references the tracked writer
// anywhere.
func (o *orderWalk) mentionsWriter(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && o.p.Info.Uses[id] == o.writer {
			found = true
			return false
		}
		return true
	})
	return found
}

// isPanicCall matches a direct call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
