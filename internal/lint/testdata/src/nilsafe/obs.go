// Package obs is the golden corpus for the nilsafe analyzer; the
// harness loads it under a synthetic import path ending in
// internal/obs so the package-scoped analyzer fires.
package obs

import "sync/atomic"

// Counter mirrors the real instrument shape: a nil *Counter must be a
// one-branch no-op on every exported method.
type Counter struct{ v atomic.Int64 }

func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

func (c *Counter) Inc() { c.Add(1) }

func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) Unguarded() int64 { // want `must begin with a nil-receiver guard`
	return c.v.Load()
}

// WholeBody uses the guarded-body shape.
func (c *Counter) WholeBody(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// CompoundGuard guards with a disjunction whose left arm is the nil check.
func (c *Counter) CompoundGuard(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
}

// GuardTooLate dereferences before the guard.
func (c *Counter) GuardTooLate() int64 { // want `must begin with a nil-receiver guard`
	v := c.v.Load()
	if c == nil {
		return 0
	}
	return v
}

// reset is unexported: callers inside the package own the nil check.
func (c *Counter) reset() { c.v.Store(0) }

// Stateless has a value receiver and cannot be dereferenced through nil.
type Stateless struct{}

func (Stateless) Touch() {}

// hidden is an unexported type; its methods are not part of the
// instrument surface.
type hidden struct{ n int }

func (h *hidden) Bump() { h.n++ }
