// Package directive is the corpus for //laces: directive parsing: every
// malformed directive below must surface as a finding of the
// "directive" pseudo-analyzer, and the one well-formed allow must
// suppress its target. The test harness asserts on messages rather than
// `// want` comments because a directive and a want marker cannot share
// a line (a line comment swallows the rest of the line).
package directive

import "time"

//laces:frobnicate this verb does not exist
func unknownVerb() {}

//laces:allow
func allowWithNothing() {}

//laces:allow gremlins the analyzer name is not real
func allowUnknownAnalyzer() {}

//laces:allow detnow
func allowWithoutReason() {}

func unsuppressed() time.Time {
	return time.Now()
}

func suppressed() time.Time {
	return time.Now() //laces:allow detnow well-formed: analyzer plus reason
}
