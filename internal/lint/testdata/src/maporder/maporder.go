// Package maporder is the golden corpus for the maporder analyzer.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func unsortedAccumulation(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside iteration over a map`
	}
	return keys
}

func sortedAccumulation(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSliceAlsoCounts(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func helperSortCounts(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return sortedKeys(keys)
}

func sortedKeys(keys []string) []string {
	sort.Strings(keys)
	return keys
}

func directPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside iteration over a map`
	}
}

func builderWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside iteration over a map`
	}
	return b.String()
}

func loopLocalIsFine(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		total += len(evens)
	}
	return total
}

func sizeOnlyIsFine(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
