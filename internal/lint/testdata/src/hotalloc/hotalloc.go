// Package hotalloc is the golden corpus for the hotalloc analyzer.
package hotalloc

import "fmt"

type sink func(any)

//laces:hotpath corpus hot function
func fmtOnHotPath(n int) {
	_ = fmt.Sprintf("%d", n) // want `call to fmt\.Sprintf allocates`
}

//laces:hotpath corpus hot function
func concatInLoop(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p // want `string concatenation inside a loop`
	}
	return out
}

//laces:hotpath corpus hot function
func concatOutsideLoopIsFine(a, b string) string {
	return a + b
}

//laces:hotpath corpus hot function
func boxingArg(s sink, n int) {
	s(n) // want `boxes a concrete value into interface parameter`
}

//laces:hotpath corpus hot function
func boxingConversion(n int) any {
	return any(n) // want `conversion of a concrete value to interface`
}

//laces:hotpath corpus hot function
func passingInterfaceIsFine(s sink, v any) {
	s(v)
}

//laces:hotpath corpus hot function
func growingAppend(vs []int) []int {
	var out []int
	for _, v := range vs {
		if v > 0 {
			out = append(out, v) // want `without preallocated capacity`
		}
	}
	return out
}

//laces:hotpath corpus hot function
func preallocatedAppend(vs []int) []int {
	out := make([]int, 0, len(vs))
	for _, v := range vs {
		if v > 0 {
			out = append(out, v)
		}
	}
	return out
}

//laces:hotpath corpus hot function
func appendToParamIsFine(dst []byte, b byte) []byte {
	return append(dst, b)
}

// coldTwin has the same body as fmtOnHotPath but no annotation, so the
// analyzer must stay silent.
func coldTwin(n int) {
	_ = fmt.Sprintf("%d", n)
}
