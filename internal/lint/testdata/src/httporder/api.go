// Package api is the golden corpus for the httporder analyzer; the
// harness loads it under a synthetic import path ending in internal/api
// so the package-scoped analyzer fires.
package api

import (
	"encoding/json"
	"errors"
	"net/http"
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code) //laces:allow httporder corpus funnel: the one sanctioned WriteHeader
	_ = json.NewEncoder(w).Encode(v)
}

func headerAfterWriteHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)                 // want `direct WriteHeader bypasses the writeJSON funnel`
	w.Header().Set("Content-Type", "text/plain") // want `after WriteHeader has no effect`
}

func bodyBeforeHeader(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("hello")) // want `body Write before WriteHeader`
}

func duplicateWriteHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)     // want `direct WriteHeader bypasses the writeJSON funnel`
	w.WriteHeader(http.StatusTeapot) // want `direct WriteHeader bypasses the writeJSON funnel` `duplicate WriteHeader on this path`
}

func headerAfterFunnel(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, "ok")
	w.Header().Set("X-Too-Late", "1") // want `after WriteHeader has no effect`
}

func terminatedErrorPathIsFine(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("q") == "" {
		writeJSON(w, http.StatusBadRequest, errors.New("missing q"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, http.StatusOK, "ok")
}

func orderedStreamingIsFine(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK) //laces:allow httporder corpus streaming route commits status before the body
	_, _ = w.Write([]byte("{}\n"))
}

func switchBothBranchesRespond(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, "get")
	default:
		writeJSON(w, http.StatusMethodNotAllowed, "no")
	}
	w.Header().Set("X-Too-Late", "1") // want `after WriteHeader has no effect`
}
