// Package detnow is the golden corpus for the detnow analyzer: every
// line below marked `// want` must produce exactly the matching
// diagnostics, and no others.
package detnow

import (
	"math/rand"
	"os"
	"time"
)

// Day is a stand-in census timestamp parameter.
type Day struct{ At time.Time }

func bannedCalls() {
	_ = time.Now()              // want `call to time\.Now`
	_ = time.Since(time.Time{}) // want `call to time\.Since`
	_ = time.Until(time.Time{}) // want `call to time\.Until`
	_ = rand.Intn(5)            // want `call to math/rand\.Intn`
	_ = rand.Float64()          // want `call to math/rand\.Float64`
	_, _ = os.LookupEnv("HOME") // want `call to os\.LookupEnv`
	_ = os.Getenv("HOME")       // want `call to os\.Getenv`
}

func seededIsFine() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(5) // method on a locally seeded generator: not the global
}

func parameterTimeIsFine(d Day) int64 {
	return d.At.Unix()
}

func allowedWithReason() time.Time {
	return time.Now() //laces:allow detnow corpus exercises trailing-comment suppression
}

func allowedStandalone() time.Time {
	//laces:allow detnow corpus exercises standalone suppression of the next code line
	return time.Now()
}
