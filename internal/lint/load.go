package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks packages with the stdlib alone: syntax via
// go/parser, types via go/types, and dependency signatures from the
// compiler's export data, located by shelling out to `go list -export`
// (the go tool is the one external program a Go build already
// requires). This keeps the linter free of third-party modules while
// staying module-aware — the source-importer alternative resolves
// imports through GOPATH and cannot see module paths.

// listPackage is the subset of `go list -json` the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Module     *struct{ Path string }
	Standard   bool
	GoFiles    []string
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer from a map of import path →
// compiler export-data file.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typecheck parses and type-checks one package's files.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return files, tpkg, info, nil
}

// Load loads and type-checks the packages matching the go package
// patterns (e.g. "./...") rooted at dir, which must lie inside a
// module. The tree must compile — the linter checks invariants above
// the language, not syntax.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	roots, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool, len(roots))
	for _, r := range roots {
		wanted[r.ImportPath] = true
	}
	all, err := goList(dir, append([]string{"-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,Module"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listPackage
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if wanted[p.ImportPath] {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files, tpkg, info, err := typecheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		module := ""
		if t.Module != nil {
			module = t.Module.Path
		}
		pkgs = append(pkgs, &Package{
			Path:   t.ImportPath,
			Module: module,
			Dir:    t.Dir,
			Fset:   fset,
			Files:  files,
			Types:  tpkg,
			Info:   info,
		})
	}
	return pkgs, nil
}

// LoadDir loads a single directory as one package under a caller-chosen
// synthetic import path — how the golden-diagnostic corpora under
// testdata/ (which `go list` refuses to enumerate) are loaded with the
// same type-checking pipeline as real packages. moduleDir anchors the
// `go list` run that locates export data for the corpus's (stdlib)
// imports; asPath and asModule set the identity package-scoped
// analyzers see.
func LoadDir(dir, moduleDir, asModule, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		goFiles = append(goFiles, name)
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(goFiles)

	// Pre-parse to discover imports, then resolve their export data.
	fset := token.NewFileSet()
	imports := make(map[string]bool)
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range f.Imports {
			imports[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		args := []string{"-export", "-deps", "-json=ImportPath,Export"}
		for path := range imports {
			args = append(args, path)
		}
		sort.Strings(args[3:])
		listed, err := goList(moduleDir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	fset = token.NewFileSet()
	files, tpkg, info, err := typecheck(fset, exportImporter(fset, exports), asPath, dir, goFiles)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:   asPath,
		Module: asModule,
		Dir:    dir,
		Fset:   fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}, nil
}
