package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder hunts the byte-identity killer behind the PR 3 sortedEntries
// fix: iterating a Go map in its randomized order while building
// output. A `range` over a map whose body appends to an outer slice is
// a finding unless the slice is visibly sorted after the loop (the
// collect-keys-then-sort idiom); a body that writes straight to an
// encoder, writer or printer is always a finding — no later sort can
// reorder bytes already emitted.
type Maporder struct{}

// Name implements Analyzer.
func (Maporder) Name() string { return "maporder" }

// Doc implements Analyzer.
func (Maporder) Doc() string {
	return "no map iteration that appends to an unsorted slice or writes to an encoder/writer — map order is randomized per run"
}

// writeMethodNames are method or package-function names whose call
// inside a map-range body emits output in iteration order.
var writeMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "EncodeElement": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
}

// Run implements Analyzer.
func (m Maporder) Run(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapType(p.Info, rs.X) {
					return true
				}
				if rs.Key == nil && rs.Value == nil {
					// `for range m` uses only the map's size.
					return true
				}
				diags = append(diags, m.checkMapRange(p, fd, rs)...)
				return true
			})
		}
	}
	return diags
}

// checkMapRange inspects one map-range statement for order-dependent
// output construction.
func (m Maporder) checkMapRange(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Direct output: method or fmt-style call that writes bytes.
		if name, isWrite := writeCallName(p.Info, call); isWrite {
			diags = append(diags, Diagnostic{
				Analyzer: m.Name(),
				Pos:      p.position(call),
				Message:  fmt.Sprintf("%s inside iteration over a map emits output in randomized map order; iterate a sorted key slice instead", name),
			})
			return true
		}
		// Accumulation: append to a slice declared outside the loop,
		// without a dominating sort after the loop.
		if id, isAppend := call.Fun.(*ast.Ident); isAppend && id.Name == "append" && len(call.Args) > 0 {
			if b, bok := p.Info.Uses[id].(*types.Builtin); !bok || b.Name() != "append" {
				return true
			}
			target := call.Args[0]
			key := exprKey(p.Info, target)
			if key == "" || declaredWithin(p.Info, target, rs.Body.Pos(), rs.Body.End()) {
				return true
			}
			if !sortedAfter(p, fd, rs.End(), key) {
				diags = append(diags, Diagnostic{
					Analyzer: m.Name(),
					Pos:      p.position(call),
					Message:  fmt.Sprintf("append to %q inside iteration over a map accumulates in randomized map order and is never sorted after the loop", exprText(target)),
				})
			}
		}
		return true
	})
	return diags
}

// isMapType reports whether the expression's static type is a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// writeCallName classifies a call as byte-emitting output: a method
// whose name is in writeMethodNames, or the fmt/io printers.
func writeCallName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writeMethodNames[sel.Sel.Name] {
		return "", false
	}
	if pkgPath, fn, ok := pkgFunc(info, call); ok {
		// Package-level call: only the printing/encoding packages count.
		switch pkgPath {
		case "fmt", "io":
			return pkgPath + "." + fn, true
		}
		return "", false
	}
	// Method call (strings.Builder, bufio.Writer, json.Encoder, net
	// connections, ...): the method name is evidence enough — emitting
	// anything per map element is order-dependent.
	return "(" + exprText(sel.X) + ")." + sel.Sel.Name, true
}

// exprKey canonicalizes the identity of an append target: the object of
// the root identifier plus any selector path, so `r.Deltas` in the loop
// and `r.Deltas` in the sort call compare equal.
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return fmt.Sprintf("%p", obj)
		}
	case *ast.SelectorExpr:
		if base := exprKey(info, e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		if base := exprKey(info, e.X); base != "" {
			return base + "[]"
		}
	}
	return ""
}

// exprText renders a short source-ish form of an expression for
// messages.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	default:
		return "expr"
	}
}

// declaredWithin reports whether the expression's root object is
// declared inside [lo, hi] — an append to a loop-local slice does not
// leak iteration order out of the loop body.
func declaredWithin(info *types.Info, e ast.Expr, lo, hi token.Pos) bool {
	root := e
	for {
		switch r := root.(type) {
		case *ast.SelectorExpr:
			root = r.X
			continue
		case *ast.IndexExpr:
			root = r.X
			continue
		}
		break
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.ObjectOf(id)
	return obj != nil && obj.Pos() >= lo && obj.Pos() <= hi
}

// sortedAfter reports whether, somewhere after pos in the enclosing
// function, the accumulated slice is passed through a sort: a
// sort./slices. call taking it, or any call whose name mentions sort
// (sortedEntries and friends), including `x = sortedX(x)` assignment
// forms.
func sortedAfter(p *Package, fd *ast.FuncDecl, pos token.Pos, targetKey string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortCall(p.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			if argMentions(p.Info, arg, targetKey) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sorting calls: the sort and slices packages,
// and any function or method whose name contains "sort" (the repo's
// sortedEntries idiom).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if pkgPath, _, ok := pkgFunc(info, call); ok {
		return pkgPath == "sort" || pkgPath == "slices"
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// argMentions reports whether the argument expression contains the
// target (by canonical key) anywhere inside it — covering sort.Slice(x,
// func...), sort.Strings(x), and sortedEntries(byPrefix(x)) shapes.
func argMentions(info *types.Info, arg ast.Expr, targetKey string) bool {
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if k := exprKey(info, e); k != "" && k == targetKey {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
