package core

import (
	"bytes"
	"net/netip"
	"testing"

	"github.com/laces-project/laces/internal/budget"
	"github.com/laces-project/laces/internal/chaos"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
)

// govWorld builds a fresh world for a seed (governance runs mutate the
// pipeline's feedback state, so every run gets its own pipeline; worlds
// are read-only but cheap enough to build per seed).
func govWorld(t testing.TB, seed uint64) *netsim.World {
	t.Helper()
	cfg := netsim.TestConfig()
	cfg.Seed = seed
	w, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// govPipeline builds a pipeline over w with the given governance knobs.
func govPipeline(t testing.TB, w *netsim.World, b budget.Budget, reg *budget.Registry, parallelism bool) *Pipeline {
	t.Helper()
	d, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	par := 1
	if parallelism {
		par = 4
	}
	p, err := NewPipeline(w, Config{
		Deployment: d,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(w, day, v6)
		},
		IncludeChaos: true,
		Parallelism:  par,
		Budget:       b,
		OptOut:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func docBytes(t testing.TB, c *DailyCensus) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBudgetEighthRateReconcilesAndDeterministic is the acceptance
// contract of the governance layer: with a budget configured at 1/8th of
// a day's probe demand the census still completes, the published
// responsibility block reconciles exactly (spent + skipped == demanded),
// and sequential vs Parallelism>1 runs are byte-identical — across 3
// seeds × 2 chaos scenarios.
func TestBudgetEighthRateReconcilesAndDeterministic(t *testing.T) {
	scenarios := []string{chaos.ScenarioLossyTransit, chaos.ScenarioSiteOutage}
	const day = 160 // inside the windowed scenarios' active ranges
	for _, seed := range []uint64{1, 2, 3} {
		for _, scName := range scenarios {
			sc, ok := chaos.Lookup(scName)
			if !ok {
				t.Fatalf("unknown scenario %s", scName)
			}
			opts := DayOptions{Chaos: &sc}

			// Pass 1: measure the day's full demand with an effectively
			// unlimited budget (the ledger must be active to account it).
			w := govWorld(t, seed)
			probe := govPipeline(t, w, budget.Budget{DailyProbes: 1 << 50}, nil, false)
			c0, err := probe.RunDaily(day, false, opts)
			if err != nil {
				t.Fatal(err)
			}
			if c0.Responsibility == nil {
				t.Fatal("unlimited-but-active ledger published no responsibility block")
			}
			demand := c0.Responsibility.ProbesDemanded
			if demand == 0 || c0.Responsibility.ProbesSkipped != 0 {
				t.Fatalf("probe pass degenerate: %+v", c0.Responsibility)
			}

			// Pass 2: 1/8th of that demand, sequential vs parallel.
			b := budget.Budget{DailyProbes: demand / 8}
			seqC, err := govPipeline(t, govWorld(t, seed), b, nil, false).RunDaily(day, false, opts)
			if err != nil {
				t.Fatalf("seed %d %s sequential: %v", seed, scName, err)
			}
			parC, err := govPipeline(t, govWorld(t, seed), b, nil, true).RunDaily(day, false, opts)
			if err != nil {
				t.Fatalf("seed %d %s parallel: %v", seed, scName, err)
			}
			seqJSON, parJSON := docBytes(t, seqC), docBytes(t, parC)
			if !bytes.Equal(seqJSON, parJSON) {
				t.Fatalf("seed %d %s: sequential vs parallel documents differ under budget", seed, scName)
			}

			r := seqC.Responsibility
			if r == nil {
				t.Fatal("budgeted run published no responsibility block")
			}
			if r.ProbesSpent+r.ProbesSkipped != r.ProbesDemanded {
				t.Fatalf("seed %d %s: spent %d + skipped %d != demanded %d",
					seed, scName, r.ProbesSpent, r.ProbesSkipped, r.ProbesDemanded)
			}
			for name, u := range map[string]budget.Usage{
				"anycast": r.Anycast, "gcd": r.GCD, "chaos": r.Chaos,
			} {
				if !u.Reconciles() {
					t.Fatalf("seed %d %s: %s stage does not reconcile: %+v", seed, scName, name, u)
				}
			}
			if r.ProbesSpent > b.DailyProbes {
				t.Fatalf("seed %d %s: spent %d exceeds cap %d", seed, scName, r.ProbesSpent, b.DailyProbes)
			}
			if r.ProbesSkipped == 0 || r.BudgetTargets == 0 {
				t.Fatalf("seed %d %s: a 1/8th budget skipped nothing: %+v", seed, scName, r)
			}
			if r.BudgetRemaining < 0 || r.BudgetRemaining != b.DailyProbes-r.ProbesSpent {
				t.Fatalf("seed %d %s: remaining %d inconsistent with cap %d - spent %d",
					seed, scName, r.BudgetRemaining, b.DailyProbes, r.ProbesSpent)
			}
			// The census must still complete with findings (§5.5.2: the
			// methodology tolerates reduced probing).
			if len(seqC.Entries) == 0 {
				t.Fatalf("seed %d %s: budgeted census found nothing", seed, scName)
			}
		}
	}
}

// TestZeroValueBudgetByteIdentical pins the governance layer's
// do-no-harm contract: a pipeline configured with the zero-value Budget
// (and no opt-outs) publishes byte-identical documents to a pipeline
// with no governance knobs at all, and neither carries a responsibility
// block.
func TestZeroValueBudgetByteIdentical(t *testing.T) {
	sc, _ := chaos.Lookup(chaos.ScenarioLossyTransit)
	for _, opts := range []DayOptions{{}, {Chaos: &sc}} {
		plain, err := govPipeline(t, govWorld(t, 1), budget.Budget{}, nil, false).RunDaily(30, false, opts)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Responsibility != nil {
			t.Fatal("zero-value budget published a responsibility block")
		}
		parallel, err := govPipeline(t, govWorld(t, 1), budget.Budget{}, nil, true).RunDaily(30, false, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(docBytes(t, plain), docBytes(t, parallel)) {
			t.Fatal("zero-value budget: sequential vs parallel differ")
		}
	}
}

// TestOptOutRegistrySuppressesAndAudits runs a census with one prefix
// and one origin AS opted out and checks the paper-facing contract: the
// opted-out prefix never appears in the published document, the skips
// are accounted (never silently dropped), and the registry's audit
// trail names the entries that suppressed probing.
func TestOptOutRegistrySuppressesAndAudits(t *testing.T) {
	w := govWorld(t, 1)

	// Find a prefix that an ungoverned census publishes, so suppression
	// is observable.
	base, err := govPipeline(t, w, budget.Budget{DailyProbes: 1 << 50}, nil, false).RunDaily(40, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := base.Document()
	if len(doc.Entries) == 0 {
		t.Fatal("baseline census empty")
	}
	victim := doc.Entries[0].Prefix
	victimAS := netsim.ASN(doc.Entries[len(doc.Entries)/2].OriginASN)

	reg := budget.NewRegistry()
	reg.AddPrefix(netip.MustParsePrefix(victim))
	reg.AddAS(victimAS)

	c, err := govPipeline(t, govWorld(t, 1), budget.Budget{}, reg, false).RunDaily(40, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	govDoc := c.Document()
	for i := range govDoc.Entries {
		if govDoc.Entries[i].Prefix == victim {
			t.Fatalf("opted-out prefix %s still published", victim)
		}
		if govDoc.Entries[i].OriginASN == uint32(victimAS) && !govDoc.Entries[i].FromFeedback {
			t.Fatalf("prefix %s of opted-out AS%d still probed", govDoc.Entries[i].Prefix, victimAS)
		}
	}
	r := c.Responsibility
	if r == nil || r.OptOutTargets == 0 || r.OptOutProbes == 0 {
		t.Fatalf("opt-out skips unaccounted: %+v", r)
	}
	if r.ProbesSpent+r.ProbesSkipped != r.ProbesDemanded {
		t.Fatalf("opt-out run does not reconcile: %+v", r)
	}
	touched := reg.Touched()
	if len(touched) == 0 {
		t.Fatal("audit trail empty")
	}
	var sawPrefix bool
	for _, tc := range touched {
		if tc.Entry == victim {
			sawPrefix = true
			if tc.Targets == 0 || tc.Probes == 0 {
				t.Fatalf("audit row degenerate: %+v", tc)
			}
		}
	}
	if !sawPrefix {
		t.Fatalf("audit trail missing %s: %+v", victim, touched)
	}
}

// TestAbuseComplaintStepsRate pins the adaptive rate feedback: an
// AbuseComplaint impairment active on the census day halves the
// effective rate (published in the responsibility block) without
// impairing any probe, and the 3-complaint floor is 1/8th.
func TestAbuseComplaintStepsRate(t *testing.T) {
	complain := func(n int) *chaos.Scenario {
		sc := &chaos.Scenario{Name: "complaints"}
		for i := 0; i < n; i++ {
			sc.Impairments = append(sc.Impairments, chaos.Impairment{Kind: chaos.AbuseComplaint})
		}
		return sc
	}
	for _, tc := range []struct {
		complaints, wantSteps int
		wantRate              float64
	}{
		{1, 1, 5000}, {3, 3, 1250}, {5, 3, 1250},
	} {
		c, err := govPipeline(t, govWorld(t, 1), budget.Budget{}, nil, false).
			RunDaily(20, false, DayOptions{Chaos: complain(tc.complaints)})
		if err != nil {
			t.Fatal(err)
		}
		r := c.Responsibility
		if r == nil {
			t.Fatal("rate-stepped run published no responsibility block")
		}
		if r.RateSteps != tc.wantSteps || r.RateEffective != tc.wantRate {
			t.Fatalf("%d complaints: steps %d rate %v, want %d/%v",
				tc.complaints, r.RateSteps, r.RateEffective, tc.wantSteps, tc.wantRate)
		}
		if len(c.Entries) == 0 {
			t.Fatal("stepped-rate census found nothing")
		}
	}

	// A pure complaint (no budget) must not drop probes: the census at
	// full rate and the complaint run probe the same target set.
	full, err := govPipeline(t, govWorld(t, 1), budget.Budget{}, nil, false).RunDaily(20, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stepped, err := govPipeline(t, govWorld(t, 1), budget.Budget{}, nil, false).
		RunDaily(20, false, DayOptions{Chaos: complain(1)})
	if err != nil {
		t.Fatal(err)
	}
	if full.ProbesAnycastStage != stepped.ProbesAnycastStage {
		t.Fatalf("complaint changed probe count: %d vs %d", full.ProbesAnycastStage, stepped.ProbesAnycastStage)
	}
}

// TestResponsibilityDocumentRoundTrip pins the responsibility block
// through the full document codec chain: WriteJSON → ParseDocument, the
// streaming reader/writer, the day-over-day delta, and DeepCopy.
func TestResponsibilityDocumentRoundTrip(t *testing.T) {
	p := govPipeline(t, govWorld(t, 1), budget.Budget{DailyProbes: 1 << 50}, nil, false)
	c, err := p.RunDaily(10, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := c.Document()
	if doc.Responsibility == nil {
		t.Fatal("no responsibility block")
	}

	// Canonical bytes → ParseDocument.
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	canonical := append([]byte(nil), buf.Bytes()...)
	parsed, err := ParseDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Responsibility == nil || *parsed.Responsibility != *doc.Responsibility {
		t.Fatalf("responsibility did not survive ParseDocument: %+v", parsed.Responsibility)
	}

	// Streaming reader must carry the block in its header, and the
	// streaming writer must reproduce the canonical bytes.
	dr, err := NewDocumentReader(bytes.NewReader(canonical))
	if err != nil {
		t.Fatal(err)
	}
	if dr.Header().Responsibility == nil || *dr.Header().Responsibility != *doc.Responsibility {
		t.Fatalf("responsibility lost by DocumentReader header: %+v", dr.Header().Responsibility)
	}
	var streamed bytes.Buffer
	if err := StreamDocument(&streamed, doc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), canonical) {
		t.Fatal("streaming codec bytes differ from canonical document")
	}

	// Delta chain: a governed day applied on top of its predecessor must
	// reproduce the new day's block.
	c2, err := p.RunDaily(11, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc2 := c2.Document()
	delta := DiffDocuments(doc, doc2)
	rebuilt, err := delta.Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := doc2.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("delta apply lost the responsibility block")
	}

	// DeepCopy must not alias the block.
	cp := doc.DeepCopy()
	cp.Responsibility.ProbesSpent++
	if cp.Responsibility.ProbesSpent == doc.Responsibility.ProbesSpent {
		t.Fatal("DeepCopy aliases the responsibility block")
	}
}
