package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/platform"
)

var testWorld = mustWorld()

func mustWorld() *netsim.World {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		panic(err)
	}
	return w
}

func newPipeline(t testing.TB) *Pipeline {
	t.Helper()
	d, err := platform.Tangled(testWorld, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(testWorld, Config{
		Deployment: d,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(testWorld, day, v6)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(testWorld, Config{}); err == nil {
		t.Fatal("config without deployment should fail")
	}
	d, _ := platform.Tangled(testWorld, netsim.PolicyUnmodified)
	if _, err := NewPipeline(testWorld, Config{Deployment: d}); err == nil {
		t.Fatal("config without GCD VPs should fail")
	}
}

func TestDailyCensusShape(t *testing.T) {
	p := newPipeline(t)
	c, err := p.RunDaily(100, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, m := c.G(), c.M()
	if len(g) == 0 || len(m) == 0 {
		t.Fatalf("census degenerate: |G|=%d |M|=%d", len(g), len(m))
	}
	// The paper's headline split: more than a third of candidates remain
	// unconfirmed (58.5% in Table 1).
	cands := len(c.Candidates())
	if frac := float64(len(m)) / float64(cands); frac < 0.25 || frac > 0.85 {
		t.Fatalf("M share of candidates = %.2f, want ~0.5", frac)
	}
	// G and M are disjoint.
	gs := map[int]bool{}
	for _, id := range g {
		gs[id] = true
	}
	for _, id := range m {
		if gs[id] {
			t.Fatal("G and M overlap")
		}
	}
	// Probing cost: GCD stage probes only candidates — two orders of
	// magnitude cheaper than the anycast stage per target universe (§4.3).
	if c.ProbesGCDStage >= c.ProbesAnycastStage {
		t.Fatalf("GCD stage cost %d should be far below anycast stage %d",
			c.ProbesGCDStage, c.ProbesAnycastStage)
	}
}

func TestCensusAccuracyAgainstGroundTruth(t *testing.T) {
	p := newPipeline(t)
	day := 100
	c, err := p.RunDaily(day, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	truth := testWorld.GroundTruthAnycast(false, day)

	// R1: 𝒢 must be precise — GCD cannot confirm a unicast target in this
	// simulator (stretch ≥ 1), so every 𝒢 member is true anycast.
	for _, id := range c.G() {
		if !truth[id] {
			t.Fatalf("GCD-confirmed target %d is not anycast in ground truth", id)
		}
	}
	// Recall of 𝒢 over ICMP/TCP-responsive anycast should be high.
	missed := 0
	total := 0
	gs := map[int]bool{}
	for _, id := range c.G() {
		gs[id] = true
	}
	for id := range truth {
		tg := &testWorld.TargetsV4[id]
		if !tg.Responsive[packet.ICMP] && !tg.Responsive[packet.TCP] {
			continue // GCD cannot measure DNS-only targets (§5.3.1)
		}
		total++
		if !gs[id] {
			missed++
		}
	}
	if frac := float64(missed) / float64(total); frac > 0.2 {
		t.Fatalf("G misses %.0f%% of measurable anycast", frac*100)
	}
}

func TestMDominatedByGlobalUnicast(t *testing.T) {
	// §5.1.3: >70% of ℳ on any given day originates from the
	// Microsoft-style global-BGP AS.
	p := newPipeline(t)
	c, err := p.RunDaily(50, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ms := 0
	m := c.M()
	for _, id := range m {
		if testWorld.TargetsV4[id].Kind == netsim.GlobalUnicast {
			ms++
		}
	}
	if frac := float64(ms) / float64(len(m)); frac < 0.4 {
		t.Fatalf("global-unicast share of M = %.2f, want dominant", frac)
	}
}

func TestFeedbackLoopCoversFNs(t *testing.T) {
	p := newPipeline(t)
	day := 120

	// Find the anycast-based FNs of a plain daily run.
	c1, err := p.RunDaily(day, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	truth := testWorld.GroundTruthAnycast(false, day)
	inG1 := map[int]bool{}
	for _, id := range c1.G() {
		inG1[id] = true
	}
	var fns []int
	for id := range truth {
		tg := &testWorld.TargetsV4[id]
		if tg.Responsive[packet.ICMP] && !inG1[id] {
			fns = append(fns, id)
		}
	}
	if len(fns) == 0 {
		t.Skip("no FNs to cover on this day")
	}
	// Seed them (as a GCD_LS sweep would) and re-run the next day.
	p.SeedFeedback(false, fns)
	c2, err := p.RunDaily(day+1, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inG2 := map[int]bool{}
	for _, id := range c2.G() {
		inG2[id] = true
	}
	covered := 0
	for _, id := range fns {
		e, ok := c2.Entries[id]
		if !ok {
			t.Fatalf("fed-back target %d absent from census", id)
		}
		if !e.FromFeedback && !e.IsCandidate() {
			t.Fatalf("target %d neither candidate nor feedback-marked", id)
		}
		if inG2[id] {
			covered++
		}
	}
	if covered == 0 {
		t.Fatal("feedback loop confirmed none of the seeded FNs")
	}
}

func TestDailyGAccumulatesIntoFeedback(t *testing.T) {
	p := newPipeline(t)
	if p.FeedbackSize(false) != 0 {
		t.Fatal("fresh pipeline has feedback")
	}
	c, err := p.RunDaily(10, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.FeedbackSize(false) != len(c.G()) {
		t.Fatalf("feedback %d != |G| %d after first day", p.FeedbackSize(false), len(c.G()))
	}
}

func TestGCDLSAndTable1Comparison(t *testing.T) {
	vps, err := platform.Ark(testWorld, 250, false)
	if err != nil {
		t.Fatal(err)
	}
	ls := RunGCDLS(testWorld, vps, false, 250)
	if len(ls.Anycast) == 0 {
		t.Fatal("GCD_LS found nothing")
	}
	truth := testWorld.GroundTruthAnycast(false, 250)
	for id := range ls.Anycast {
		if !truth[id] {
			t.Fatalf("GCD_LS confirmed non-anycast target %d", id)
		}
	}
	// Table 1: compare an anycast-based run against GCD_LS.
	p := newPipeline(t)
	c, err := p.RunDaily(250, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acSet := map[int]bool{}
	for _, id := range c.Candidates() {
		acSet[id] = true
	}
	cmp := CompareACsToGCDLS(acSet, ls)
	if cmp.Intersection == 0 {
		t.Fatal("no agreement between ACs and GCD_LS")
	}
	// Paper: FNR ~6%; tolerate up to 20% at test scale.
	if cmp.FNRate > 0.2 {
		t.Fatalf("FNR = %.1f%%, too high (Table 1 expects single digits)", cmp.FNRate*100)
	}
	// Paper: 58.5% of ACs unconfirmed by GCD_LS.
	if frac := float64(cmp.NotGCDLS) / float64(cmp.ACs); frac < 0.2 || frac > 0.85 {
		t.Fatalf("¬GCDLS share = %.2f, want ~0.5-0.6", frac)
	}
	if s := cmp.String(); !strings.Contains(s, "FNs=") {
		t.Fatalf("comparison string malformed: %s", s)
	}
	// GCD_LS probes nearly the whole hitlist from every VP — the cost
	// that forbids running it daily (at paper scale: 1.3 B probes, days
	// at a responsible rate).
	if ls.ProbesSent < int64(ls.Hitlist)*int64(ls.VPs)*9/10 {
		t.Fatalf("GCD_LS sent %d probes for %d targets × %d VPs", ls.ProbesSent, ls.Hitlist, ls.VPs)
	}
	if ls.Duration(100) <= ls.Duration(1000) {
		t.Fatal("duration model not inversely proportional to rate")
	}
}

func TestDNSOutageAlert(t *testing.T) {
	p := newPipeline(t)
	c, err := p.RunDaily(200, false, DayOptions{DNSBroken: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasAlert(AlertNoResults) {
		t.Fatal("DNS outage did not trigger the canary alert")
	}
	if got := c.CandidatesFor(packet.DNS); len(got) != 0 {
		t.Fatalf("DNS results leaked through the outage: %d", len(got))
	}
}

func TestWorkerLossAlertAndRecovery(t *testing.T) {
	p := newPipeline(t)
	missing := map[int]bool{1: true, 7: true, 13: true, 19: true, 25: true, 31: true}
	c, err := p.RunDaily(201, false, DayOptions{MissingWorkers: missing})
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasAlert(AlertFewWorkers) {
		t.Fatal("missing workers did not trigger alert")
	}
	if c.Workers != 26 {
		t.Fatalf("workers = %d, want 26", c.Workers)
	}
}

func TestBaselineDeviationAlert(t *testing.T) {
	p := newPipeline(t)
	for day := 30; day < 35; day++ {
		if _, err := p.RunDaily(day, false, DayOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// A day with most workers missing collapses candidate counts — and
	// with them the 𝒢 count (the feedback loop still measures fed-back
	// prefixes, so the drop is softened but visible).
	missing := map[int]bool{}
	for i := 0; i < 28; i++ {
		missing[i] = true
	}
	c, err := p.RunDaily(35, false, DayOptions{MissingWorkers: missing})
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasAlert(AlertFewWorkers) {
		t.Fatal("expected worker alert")
	}
	_ = c
}

func TestCensusJSONRoundTrip(t *testing.T) {
	p := newPipeline(t)
	c, err := p.RunDaily(60, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	date, g, m, prefixes, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if date != "2024-05-20" {
		t.Fatalf("census date = %s", date)
	}
	if g != len(c.G()) || m != len(c.M()) {
		t.Fatalf("counts drifted through JSON: %d/%d vs %d/%d", g, m, len(c.G()), len(c.M()))
	}
	if len(prefixes) < g {
		t.Fatal("fewer prefixes than confirmed entries")
	}
}

func TestCensusCSV(t *testing.T) {
	p := newPipeline(t)
	c, err := p.RunDaily(61, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatal("CSV has no data rows")
	}
	if !strings.HasPrefix(lines[0], "prefix,origin_asn") {
		t.Fatalf("CSV header: %s", lines[0])
	}
}

func TestIPv6Census(t *testing.T) {
	p := newPipeline(t)
	c, err := p.RunDaily(100, true, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.G()) == 0 {
		t.Fatal("no IPv6 anycast confirmed")
	}
	for _, id := range c.G() {
		if !testWorld.TargetsV6[id].IsAnycastAt(100) {
			// Backing anycast can false-positive through filtering VPs
			// (§6) — that is the expected exception.
			if testWorld.TargetsV6[id].Kind != netsim.BackingAnycast {
				t.Fatalf("v6 G member %d not anycast (kind %v)", id, testWorld.TargetsV6[id].Kind)
			}
		}
	}
}

func TestChaosAnnotationStage(t *testing.T) {
	d, _ := platform.Tangled(testWorld, netsim.PolicyUnmodified)
	p, err := NewPipeline(testWorld, Config{
		Deployment: d,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(testWorld, day, v6)
		},
		IncludeChaos: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.RunDaily(90, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	annotated, multi := 0, 0
	for id, e := range c.Entries {
		if len(e.ChaosRecords) == 0 {
			continue
		}
		annotated++
		if len(e.ChaosRecords) > 1 {
			multi++
		}
		if !testWorld.TargetsV4[id].Responsive[packet.DNS] {
			t.Fatalf("CHAOS records on non-DNS target %d", id)
		}
	}
	if annotated == 0 {
		t.Fatal("CHAOS stage annotated nothing")
	}
	if multi == 0 {
		t.Fatal("no multi-record (per-site) nameservers annotated")
	}
	// The stage is optional: a default pipeline must not annotate.
	p2, _ := NewPipeline(testWorld, Config{Deployment: d,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(testWorld, day, v6)
		}})
	c2, err := p2.RunDaily(90, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range c2.Entries {
		if len(e.ChaosRecords) != 0 {
			t.Fatal("default pipeline annotated CHAOS records")
		}
	}
}

func TestScreenGlobalBGPFlags(t *testing.T) {
	d, err := platform.Tangled(testWorld, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(testWorld, Config{
		Deployment: d,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(testWorld, day, v6)
		},
		ConfirmGlobalBGP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.RunDaily(40, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.ProbesTracerouteStage == 0 {
		t.Fatal("screening stage sent no probes")
	}
	targets := testWorld.Targets(false)
	flagged := 0
	for id, e := range c.Entries {
		if !e.GlobalBGP {
			continue
		}
		flagged++
		if !e.InM() {
			t.Fatalf("GlobalBGP flag on a non-M entry %d", id)
		}
		if kind := targets[id].Kind; kind != netsim.GlobalUnicast {
			t.Fatalf("GlobalBGP flag on a %v target %d — screening is misfiring", kind, id)
		}
	}
	if flagged == 0 {
		t.Fatal("no global-BGP prefixes flagged — the §5.1.3 stage is inert")
	}
	// The flag must survive publication.
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pubFlagged := 0
	for _, e := range doc.Entries {
		if e.GlobalBGP {
			pubFlagged++
		}
	}
	if pubFlagged != flagged {
		t.Fatalf("published %d global-BGP flags, census has %d", pubFlagged, flagged)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	p := newPipeline(t)
	c, err := p.RunDaily(73, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := c.Document()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Date != doc.Date || parsed.Family != doc.Family ||
		parsed.GCount != doc.GCount || parsed.MCount != doc.MCount ||
		len(parsed.Entries) != len(doc.Entries) {
		t.Fatalf("round trip mismatch: %+v vs %+v", parsed, doc)
	}
	for i := range doc.Entries {
		if !reflect.DeepEqual(doc.Entries[i], parsed.Entries[i]) {
			t.Fatalf("entry %d mismatch:\n%+v\n%+v", i, doc.Entries[i], parsed.Entries[i])
		}
	}
	// G/M classification helpers on published entries agree with counts.
	g, m := 0, 0
	for i := range parsed.Entries {
		if parsed.Entries[i].InG() {
			g++
		}
		if parsed.Entries[i].InM() {
			m++
		}
	}
	if g != parsed.GCount {
		t.Fatalf("document InG count %d != header %d", g, parsed.GCount)
	}
	if m > parsed.MCount {
		// Feedback-only unconfirmed entries are published without AC
		// protocols and are in neither set; InM can only undercount.
		t.Fatalf("document InM count %d exceeds header %d", m, parsed.MCount)
	}
}

func TestSpreadVPs(t *testing.T) {
	mk := func(n int) []netsim.VP {
		out := make([]netsim.VP, n)
		for i := range out {
			out[i].Name = string(rune('a' + i))
		}
		return out
	}
	if got := spreadVPs(mk(5), 12); len(got) != 5 {
		t.Fatalf("small pool should pass through, got %d", len(got))
	}
	got := spreadVPs(mk(26), 4)
	if len(got) != 4 {
		t.Fatalf("want 4 VPs, got %d", len(got))
	}
	seen := map[string]bool{}
	for _, vp := range got {
		if seen[vp.Name] {
			t.Fatalf("duplicate VP %q in spread", vp.Name)
		}
		seen[vp.Name] = true
	}
	if got[0].Name != "a" {
		t.Fatalf("spread should start at the pool head, got %q", got[0].Name)
	}
	if spreadVPs(nil, 4) != nil {
		t.Fatal("nil pool should stay nil")
	}
}
