package core

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/laces-project/laces/internal/chaos"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
)

// TestCensusLazyEagerEquivalence pins the tentpole end-to-end contract:
// the published census document is byte-identical between eager and lazy
// worlds — across seeds, with and without chaos impairments, sequential
// and sharded. The lazy streaming generator must be invisible to every
// stage of the pipeline.
func TestCensusLazyEagerEquivalence(t *testing.T) {
	lossy, ok := chaos.Lookup(chaos.ScenarioLossyTransit)
	if !ok {
		t.Fatal("lossy-transit scenario missing")
	}
	seeds := []uint64{0x1ace5, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := netsim.TestConfig()
		cfg.Seed = seed
		eager, err := netsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.LazyTargets = true
		lazy, err := netsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range []struct {
			name     string
			scenario *chaos.Scenario
		}{
			{"clean", nil},
			{chaos.ScenarioLossyTransit, &lossy},
		} {
			var ref []byte
			var refFrom string
			for _, mode := range []struct {
				name string
				w    *netsim.World
			}{{"eager", eager}, {"lazy", lazy}} {
				for _, parallelism := range []int{1, 4} {
					label := fmt.Sprintf("seed=%#x chaos=%s world=%s par=%d", seed, sc.name, mode.name, parallelism)
					d, err := platform.Tangled(mode.w, netsim.PolicyUnmodified)
					if err != nil {
						t.Fatal(err)
					}
					p, err := NewPipeline(mode.w, Config{
						Deployment:  d,
						Parallelism: parallelism,
						GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
							return platform.Ark(mode.w, day, v6)
						},
					})
					if err != nil {
						t.Fatal(err)
					}
					c, err := p.RunDaily(100, false, DayOptions{Chaos: sc.scenario})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					var buf bytes.Buffer
					if err := c.WriteJSON(&buf); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if ref == nil {
						ref, refFrom = buf.Bytes(), label
						continue
					}
					if !bytes.Equal(ref, buf.Bytes()) {
						t.Errorf("census documents differ: %s vs %s", refFrom, label)
					}
				}
			}
		}
	}
}
