package core

import (
	"bytes"
	"testing"

	"github.com/laces-project/laces/internal/chaos"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/platform"
)

// monitorPipeline builds a fresh pipeline against a fresh test world so
// chaos installs cannot leak across tests.
func monitorPipeline(t *testing.T) (*netsim.World, *Pipeline) {
	t.Helper()
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(w, Config{
		Deployment: dep,
		GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
			return platform.Ark(w, day, v6)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, p
}

// TestMonitorSiteOutageAlerts drives the few-workers canary through a
// windowed chaos site outage: the alert must raise inside the window and
// clear once the sites return.
func TestMonitorSiteOutageAlerts(t *testing.T) {
	_, pipe := monitorPipeline(t)
	sc := chaos.Scenario{Name: "outage-window", Impairments: []chaos.Impairment{
		{Kind: chaos.SiteOutage, Scope: chaos.Scope{Days: chaos.Days(10, 11), Workers: []int{0, 5, 9}}},
	}}
	during, err := pipe.RunDaily(10, false, DayOptions{Chaos: &sc})
	if err != nil {
		t.Fatal(err)
	}
	if !during.HasAlert(AlertFewWorkers) {
		t.Fatal("site outage did not raise the few-workers alert")
	}
	if during.Workers != pipe.Cfg.Deployment.NumSites()-3 {
		t.Fatalf("outage census reports %d workers, want %d",
			during.Workers, pipe.Cfg.Deployment.NumSites()-3)
	}
	after, err := pipe.RunDaily(12, false, DayOptions{Chaos: &sc})
	if err != nil {
		t.Fatal(err)
	}
	if after.HasAlert(AlertFewWorkers) {
		t.Fatal("few-workers alert did not clear after the outage window")
	}
	if after.Workers != pipe.Cfg.Deployment.NumSites() {
		t.Fatal("workers did not return after the outage window")
	}
}

// TestMonitorThrottleRaisesNoWorkerAlert: reply throttling degrades
// results but all sites participate — the worker canary must stay quiet.
func TestMonitorThrottleRaisesNoWorkerAlert(t *testing.T) {
	_, pipe := monitorPipeline(t)
	sc, ok := chaos.Lookup(chaos.ScenarioReplyThrottle)
	if !ok {
		t.Fatal("reply-throttle scenario missing")
	}
	c, err := pipe.RunDaily(10, false, DayOptions{Chaos: &sc})
	if err != nil {
		t.Fatal(err)
	}
	if c.HasAlert(AlertFewWorkers) {
		t.Fatal("throttling raised a worker alert")
	}
	if c.Workers != pipe.Cfg.Deployment.NumSites() {
		t.Fatal("throttling changed the participating worker count")
	}
}

// TestMonitorDNSBlackholeCanary: a protocol-wide blackhole trips the
// no-results canary that the 2024 DNS tooling bug motivated.
func TestMonitorDNSBlackholeCanary(t *testing.T) {
	_, pipe := monitorPipeline(t)
	sc := chaos.Scenario{Name: "dns-dark", Impairments: []chaos.Impairment{
		{Kind: chaos.Blackhole, Scope: chaos.Scope{Protocols: []packet.Protocol{packet.DNS}}},
	}}
	c, err := pipe.RunDaily(10, false, DayOptions{Chaos: &sc})
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasAlert(AlertNoResults) {
		t.Fatal("DNS blackhole did not trip the no-results canary")
	}
}

// TestLegacyShimsMatchChaosPlan is the regression bar for the DayOptions
// generalisation: the legacy DNSBroken/MissingWorkers booleans must
// produce byte-identical censuses to the chaos plan they are shims for.
func TestLegacyShimsMatchChaosPlan(t *testing.T) {
	runJSON := func(opts DayOptions) []byte {
		t.Helper()
		_, pipe := monitorPipeline(t)
		c, err := pipe.RunDaily(7, false, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	legacy := runJSON(DayOptions{
		DNSBroken:      true,
		MissingWorkers: map[int]bool{3: true, 17: true},
	})
	plan := chaos.Scenario{Name: "equivalent", Impairments: []chaos.Impairment{
		{Kind: chaos.Blackhole, Scope: chaos.Scope{Protocols: []packet.Protocol{packet.DNS}}},
		{Kind: chaos.SiteOutage, Scope: chaos.Scope{Workers: []int{3, 17}}},
	}}
	viaChaos := runJSON(DayOptions{Chaos: &plan})
	if !bytes.Equal(legacy, viaChaos) {
		t.Fatal("legacy DNSBroken/MissingWorkers shims diverge from the equivalent chaos plan")
	}

	clean := runJSON(DayOptions{})
	if bytes.Equal(legacy, clean) {
		t.Fatal("shim options had no effect at all")
	}
}

// TestDayOptionsScenarioMerging covers the shim-to-plan compilation.
func TestDayOptionsScenarioMerging(t *testing.T) {
	if (DayOptions{}).scenario() != nil {
		t.Fatal("fault-free options compiled to a non-nil scenario")
	}
	user := chaos.Scenario{Name: "user", Impairments: []chaos.Impairment{{Kind: chaos.Loss, Frac: 0.1}}}
	if got := (DayOptions{Chaos: &user}).scenario(); got != &user {
		t.Fatal("pure chaos options should pass the user scenario through unchanged")
	}
	merged := (DayOptions{Chaos: &user, DNSBroken: true, MissingWorkers: map[int]bool{2: true, 1: true}}).scenario()
	if merged == &user || len(merged.Impairments) != 3 {
		t.Fatalf("merged scenario has %d impairments, want 3 in a copy", len(merged.Impairments))
	}
	if merged.Name != "user" {
		t.Fatalf("merged scenario name %q, want the user scenario's name", merged.Name)
	}
	outage := merged.Impairments[2]
	if outage.Kind != chaos.SiteOutage || len(outage.Scope.Workers) != 2 ||
		outage.Scope.Workers[0] != 1 || outage.Scope.Workers[1] != 2 {
		t.Fatalf("missing-workers shim compiled to %+v", outage)
	}
	if len(user.Impairments) != 1 {
		t.Fatal("merging mutated the user's scenario")
	}
}
