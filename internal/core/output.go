package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/laces-project/laces/internal/budget"
)

// DocumentEntry is the JSON schema of one census row, mirroring the
// fields the public repository publishes (§4.4): both methodologies'
// verdicts independently (R1: "convey confidence in results through
// independently listing the classification for the anycast-based and GCD
// approach"), site counts, geolocations and participating VPs.
type DocumentEntry struct {
	Prefix         string   `json:"prefix"`
	OriginASN      uint32   `json:"origin_asn"`
	ACProtocols    []string `json:"anycast_based_protocols,omitempty"`
	MaxReceivers   int      `json:"anycast_based_vps,omitempty"`
	FromFeedback   bool     `json:"from_feedback,omitempty"`
	GCDMeasured    bool     `json:"gcd_measured"`
	GCDAnycast     bool     `json:"gcd_anycast"`
	GCDSites       int      `json:"gcd_sites,omitempty"`
	GCDCities      []string `json:"gcd_cities,omitempty"`
	GCDVPs         int      `json:"gcd_vps,omitempty"`
	PartialAnycast bool     `json:"partial_anycast,omitempty"`
	GlobalBGP      bool     `json:"global_bgp,omitempty"`
}

// InG reports membership in 𝒢 as published.
func (e *DocumentEntry) InG() bool { return e.GCDAnycast }

// InM reports membership in ℳ as published.
func (e *DocumentEntry) InM() bool { return len(e.ACProtocols) > 0 && !e.GCDAnycast }

// Responsibility is the published R3 governance block: what the
// probe-budget ledger, the opt-out registry and the adaptive rate
// controller did to the census day. All probe figures are in budget
// units of demand (worst-case transmissions presented to the ledger);
// the identity ProbesSpent + ProbesSkipped == ProbesDemanded holds
// exactly — it is the reconciliation audits check. The traceroute
// screening stage is operator-triggered and outside the ledger.
type Responsibility struct {
	// The configured caps (zero = unlimited).
	BudgetDailyProbes     int64 `json:"budget_daily_probes,omitempty"`
	BudgetPerASProbes     int64 `json:"budget_per_as_probes,omitempty"`
	BudgetPerPrefixProbes int64 `json:"budget_per_prefix_probes,omitempty"`

	// Totals across the governed stages.
	ProbesDemanded int64 `json:"probes_demanded"`
	ProbesSpent    int64 `json:"probes_spent"`
	ProbesSkipped  int64 `json:"probes_skipped"`
	OptOutProbes   int64 `json:"optout_probes,omitempty"`
	OptOutTargets  int   `json:"optout_targets,omitempty"`
	BudgetTargets  int   `json:"budget_targets,omitempty"`

	// BudgetRemaining is the unspent global daily budget after the run,
	// or -1 when the daily cap is unlimited.
	BudgetRemaining int64 `json:"budget_remaining"`

	// Adaptive rate feedback: halvings taken in response to abuse
	// complaints and the resulting effective rate (targets/s).
	RateSteps     int     `json:"rate_steps,omitempty"`
	RateEffective float64 `json:"rate_effective,omitempty"`

	// Per-stage accounting (each reconciles independently).
	Anycast budget.Usage `json:"anycast_stage"`
	GCD     budget.Usage `json:"gcd_stage"`
	Chaos   budget.Usage `json:"chaos_stage"`
}

// Total sums the per-stage usages (the block's headline figures).
func (r *Responsibility) Total() budget.Usage {
	var u budget.Usage
	u.Add(r.Anycast)
	u.Add(r.GCD)
	u.Add(r.Chaos)
	return u
}

// Document is the JSON schema of one daily census file — the unit the
// public repository carries and downstream consumers (the dashboard, the
// diff tool) operate on. Entries must stay the last field: the streaming
// codec (DocumentWriter/DocumentReader) depends on every scalar
// preceding the entry array.
type Document struct {
	Date        string `json:"date"`
	Family      string `json:"family"`
	HitlistSize int    `json:"hitlist_size"`
	Workers     int    `json:"workers"`
	GCount      int    `json:"gcd_confirmed"`
	MCount      int    `json:"anycast_based_only"`

	// R3 cost accounting, published so responsible-use budgets are
	// visible in the artifact itself, not just in the runner's memory
	// (§4.2.2: LACeS bounds its daily probing cost by design).
	ProbesAnycastStage    int64 `json:"probes_anycast_stage"`
	ProbesGCDStage        int64 `json:"probes_gcd_stage"`
	ProbesTracerouteStage int64 `json:"probes_traceroute_stage"`

	// Responsibility is the governance block — nil (omitted) when the
	// census ran without a budget, opt-out registry or rate feedback, so
	// ungoverned documents stay byte-identical to earlier releases.
	Responsibility *Responsibility `json:"responsibility,omitempty"`

	Entries []DocumentEntry `json:"entries"`
}

// ProbesTotal sums the published per-stage probing cost.
func (d *Document) ProbesTotal() int64 {
	return d.ProbesAnycastStage + d.ProbesGCDStage + d.ProbesTracerouteStage
}

func protoNames(flags [3]bool) []string {
	var out []string
	for p, set := range flags {
		if set {
			switch p {
			case 0:
				out = append(out, "ICMP")
			case 1:
				out = append(out, "TCP")
			case 2:
				out = append(out, "DNS")
			}
		}
	}
	return out
}

// sortedEntries returns entries in canonical census order: numerically by
// prefix (address, then length) — not by Prefix.String(), which would
// sort "10.0.0.0/24" before "2.0.0.0/24".
func (c *DailyCensus) sortedEntries() []*Entry {
	out := make([]*Entry, 0, len(c.Entries))
	for _, e := range c.Entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return ComparePrefix(out[i].Prefix, out[j].Prefix) < 0
	})
	return out
}

// Document builds the published form of the census: only anycast findings
// are included (§4.4).
func (c *DailyCensus) Document() *Document {
	fam := "ipv4"
	if c.V6 {
		fam = "ipv6"
	}
	doc := &Document{
		Date:        c.Day.Format(time.DateOnly),
		Family:      fam,
		HitlistSize: c.HitlistSize,
		Workers:     c.Workers,
		GCount:      c.CountG(),
		MCount:      c.CountM(),

		ProbesAnycastStage:    c.ProbesAnycastStage,
		ProbesGCDStage:        c.ProbesGCDStage,
		ProbesTracerouteStage: c.ProbesTracerouteStage,
	}
	if c.Responsibility != nil {
		r := *c.Responsibility
		doc.Responsibility = &r
	}
	for _, e := range c.sortedEntries() {
		if !e.IsCandidate() && !e.GCDAnycast && !e.PartialAnycast {
			continue // only anycast findings are published (§4.4)
		}
		doc.Entries = append(doc.Entries, DocumentEntry{
			Prefix:         e.Prefix.String(),
			OriginASN:      uint32(e.Origin),
			ACProtocols:    protoNames(e.ACProtocols),
			MaxReceivers:   e.MaxReceivers,
			FromFeedback:   e.FromFeedback,
			GCDMeasured:    e.GCDMeasured,
			GCDAnycast:     e.GCDAnycast,
			GCDSites:       e.GCDSites,
			GCDCities:      e.GCDCities,
			GCDVPs:         e.GCDVPs,
			PartialAnycast: e.PartialAnycast,
			GlobalBGP:      e.GlobalBGP,
		})
	}
	return doc
}

// WriteJSON publishes the census as the JSON document the public
// repository would carry (the canonical bytes of Document.WriteJSON).
func (c *DailyCensus) WriteJSON(w io.Writer) error {
	return c.Document().WriteJSON(w)
}

// WriteCSV publishes the census as CSV, one row per published prefix.
func (c *DailyCensus) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"prefix", "origin_asn", "ac_protocols", "ac_vps",
		"from_feedback", "gcd_measured", "gcd_anycast", "gcd_sites", "gcd_cities", "gcd_vps", "partial", "global_bgp"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range c.sortedEntries() {
		if !e.IsCandidate() && !e.GCDAnycast && !e.PartialAnycast {
			continue
		}
		rec := []string{
			e.Prefix.String(),
			strconv.FormatUint(uint64(e.Origin), 10),
			strings.Join(protoNames(e.ACProtocols), "+"),
			strconv.Itoa(e.MaxReceivers),
			strconv.FormatBool(e.FromFeedback),
			strconv.FormatBool(e.GCDMeasured),
			strconv.FormatBool(e.GCDAnycast),
			strconv.Itoa(e.GCDSites),
			strings.Join(e.GCDCities, "+"),
			strconv.Itoa(e.GCDVPs),
			strconv.FormatBool(e.PartialAnycast),
			strconv.FormatBool(e.GlobalBGP),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseDocument reads a census document previously written with WriteJSON.
func ParseDocument(r io.Reader) (*Document, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: parsing census JSON: %w", err)
	}
	return &doc, nil
}

// ReadJSON parses a census document previously written with WriteJSON and
// returns summary counts — a convenience wrapper over ParseDocument kept
// for consumers that only need the headline numbers.
func ReadJSON(r io.Reader) (date string, g, m int, prefixes []string, err error) {
	doc, err := ParseDocument(r)
	if err != nil {
		return "", 0, 0, nil, err
	}
	for _, e := range doc.Entries {
		prefixes = append(prefixes, e.Prefix)
	}
	return doc.Date, doc.GCount, doc.MCount, prefixes, nil
}
