package core

import (
	"fmt"
	"slices"
	"sort"
)

// This file is the day-over-day half of the published-document codec.
// Consecutive censuses are highly redundant — the paper's persistence
// analysis (Fig 10) shows most prefixes stay anycast day after day — so
// the archive stores a full snapshot every K days and, between snapshots,
// only what changed. A DocumentDelta applied to the previous day's
// document reproduces the next day's Document exactly, so the canonical
// WriteJSON bytes survive a pack/unpack cycle bit-for-bit.

// DocumentDelta is the difference between two consecutive published
// census documents of the same family.
type DocumentDelta struct {
	// Header carries the new day's scalar fields (Entries stays nil):
	// counts change daily even when no entry does.
	Header Document `json:"header"`
	// Removed lists prefixes present the previous day and gone today, in
	// canonical order.
	Removed []string `json:"removed,omitempty"`
	// Upserts carries every entry that is new or changed today, in
	// canonical order.
	Upserts []DocumentEntry `json:"upserts,omitempty"`
}

// entryEqual reports whether two published rows are identical. Nil and
// empty slices compare equal — under omitempty they encode identically,
// so the distinction cannot survive a JSON round-trip anyway.
func entryEqual(a, b *DocumentEntry) bool {
	return a.Prefix == b.Prefix &&
		a.OriginASN == b.OriginASN &&
		slices.Equal(a.ACProtocols, b.ACProtocols) &&
		a.MaxReceivers == b.MaxReceivers &&
		a.FromFeedback == b.FromFeedback &&
		a.GCDMeasured == b.GCDMeasured &&
		a.GCDAnycast == b.GCDAnycast &&
		a.GCDSites == b.GCDSites &&
		slices.Equal(a.GCDCities, b.GCDCities) &&
		a.GCDVPs == b.GCDVPs &&
		a.PartialAnycast == b.PartialAnycast &&
		a.GlobalBGP == b.GlobalBGP
}

// DiffDocuments computes the delta that transforms prev into cur. Both
// documents must be in canonical entry order (as Document() produces).
func DiffDocuments(prev, cur *Document) *DocumentDelta {
	d := &DocumentDelta{Header: *cur}
	d.Header.Entries = nil

	curBy := make(map[string]*DocumentEntry, len(cur.Entries))
	for i := range cur.Entries {
		curBy[cur.Entries[i].Prefix] = &cur.Entries[i]
	}
	prevBy := make(map[string]*DocumentEntry, len(prev.Entries))
	for i := range prev.Entries {
		e := &prev.Entries[i]
		prevBy[e.Prefix] = e
		if _, ok := curBy[e.Prefix]; !ok {
			d.Removed = append(d.Removed, e.Prefix)
		}
	}
	for i := range cur.Entries {
		e := &cur.Entries[i]
		if pe, ok := prevBy[e.Prefix]; !ok || !entryEqual(pe, e) {
			d.Upserts = append(d.Upserts, *e)
		}
	}
	return d
}

// Apply reconstructs the new day's document from the previous day's. It
// is strict: a removal that names an absent prefix or a family mismatch
// means the delta does not belong to this document chain.
func (d *DocumentDelta) Apply(prev *Document) (*Document, error) {
	if prev.Family != d.Header.Family {
		return nil, fmt.Errorf("core: delta for family %q applied to %q document", d.Header.Family, prev.Family)
	}
	removed := make(map[string]bool, len(d.Removed))
	for _, p := range d.Removed {
		removed[p] = true
	}
	upsert := make(map[string]*DocumentEntry, len(d.Upserts))
	for i := range d.Upserts {
		upsert[d.Upserts[i].Prefix] = &d.Upserts[i]
	}

	out := *d.Header.DeepCopy()
	out.Entries = make([]DocumentEntry, 0, len(prev.Entries)+len(d.Upserts))

	// Walk the previous day in canonical order: drop removals, replace
	// changed rows in place. Entries only present today are collected and
	// merged afterwards — on a typical day there are few or none, which
	// keeps the per-day apply cost close to a copy.
	for i := range prev.Entries {
		p := prev.Entries[i].Prefix
		if removed[p] {
			delete(removed, p)
			continue
		}
		if ue, ok := upsert[p]; ok {
			out.Entries = append(out.Entries, *ue)
			delete(upsert, p)
			continue
		}
		out.Entries = append(out.Entries, prev.Entries[i])
	}
	if len(removed) > 0 {
		for p := range removed {
			return nil, fmt.Errorf("core: delta removes %q which the previous document does not carry", p)
		}
	}
	if len(upsert) > 0 {
		// Genuinely new prefixes: insert each at its canonical position.
		for i := range d.Upserts {
			e := &d.Upserts[i]
			if _, ok := upsert[e.Prefix]; !ok {
				continue
			}
			at := sort.Search(len(out.Entries), func(j int) bool {
				return ComparePrefixStrings(out.Entries[j].Prefix, e.Prefix) >= 0
			})
			out.Entries = slices.Insert(out.Entries, at, *e)
		}
	}
	if len(out.Entries) == 0 {
		// A zero-entry day must reconstruct with nil entries: the
		// canonical form is `"entries": null`, and encoding/json writes
		// `[]` for an empty non-nil slice — which would break the
		// byte-identity contract for fully-withdrawn days.
		out.Entries = nil
	}
	return &out, nil
}

// DeepCopy clones the document so a derived day can be mutated without
// aliasing its predecessor (entry slices of unchanged rows still share
// backing arrays with the delta chain's inputs; entries themselves are
// values).
func (d *Document) DeepCopy() *Document {
	out := *d
	if d.Entries != nil {
		out.Entries = slices.Clone(d.Entries)
	}
	if d.Responsibility != nil {
		r := *d.Responsibility
		out.Responsibility = &r
	}
	return &out
}
