package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/laces-project/laces/internal/gcdmeas"
	"github.com/laces-project/laces/internal/hitlist"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

// GCDLSResult is the outcome of a large-scale GCD sweep over the entire
// hitlist (§5.1.1): the accuracy gold standard that seeds the feedback
// loop, run only periodically because of its probing cost.
type GCDLSResult struct {
	Day        int
	V6         bool
	Hitlist    int
	Anycast    map[int]bool
	ProbesSent int64
	VPs        int
}

// RunGCDLS performs a full-hitlist GCD sweep with the given VP pool at a
// responsible low rate (the paper probed at 100 pps over several days; the
// modelled duration is reported through the probe count).
func RunGCDLS(w *netsim.World, vps []netsim.VP, v6 bool, day int) *GCDLSResult {
	hl := hitlist.ForDay(w, v6, day)
	res := &GCDLSResult{
		Day:     day,
		V6:      v6,
		Hitlist: hl.Len(),
		Anycast: make(map[int]bool),
		VPs:     len(vps),
	}
	at := netsim.DayTime(day)
	// ICMP covers most of the hitlist; TCP mops up the remainder, exactly
	// as in the daily pipeline.
	icmp := hl.FilterProtocol(packet.ICMP)
	icmpIDs := make([]int, 0, len(icmp))
	for _, e := range icmp {
		icmpIDs = append(icmpIDs, e.TargetID)
	}
	rep := gcdmeas.Run(w, icmpIDs, v6, gcdmeas.Campaign{VPs: vps, Proto: packet.ICMP, At: at})
	res.ProbesSent += rep.ProbesSent
	for id, o := range rep.Outcomes {
		if o.Result.Anycast {
			res.Anycast[id] = true
		}
	}
	var tcpIDs []int
	for _, e := range hl.Entries {
		if !e.Protocols[packet.ICMP] && e.Protocols[packet.TCP] {
			tcpIDs = append(tcpIDs, e.TargetID)
		}
	}
	if len(tcpIDs) > 0 {
		rep := gcdmeas.Run(w, tcpIDs, v6, gcdmeas.Campaign{VPs: vps, Proto: packet.TCP, At: at})
		res.ProbesSent += rep.ProbesSent
		for id, o := range rep.Outcomes {
			if o.Result.Anycast {
				res.Anycast[id] = true
			}
		}
	}
	return res
}

// IDs returns the sorted anycast target IDs.
func (r *GCDLSResult) IDs() []int {
	out := make([]int, 0, len(r.Anycast))
	for id := range r.Anycast {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Duration models the wall-clock duration of the sweep at the given
// responsible probing rate in packets per second (§5.1.1 used 100 pps
// "over a period of several days").
func (r *GCDLSResult) Duration(pps float64) time.Duration {
	if pps <= 0 {
		return 0
	}
	return time.Duration(float64(r.ProbesSent) / pps * float64(time.Second))
}

// Compare summarises the agreement between anycast-based candidates and a
// GCD_LS sweep — the Table 1 computation: intersection, anycast-based
// false negatives (with rate), and candidates GCD_LS calls unicast.
type Compare struct {
	ACs          int
	GCDLS        int
	Intersection int
	FNs          int     // GCD_LS anycast missed by the anycast-based stage
	FNRate       float64 // FNs / GCDLS
	NotGCDLS     int     // candidates not confirmed by GCD_LS (mostly FPs)
}

// CompareACsToGCDLS computes Table 1's row for a candidate set (feedback
// excluded) against a GCD_LS sweep.
func CompareACsToGCDLS(acs map[int]bool, ls *GCDLSResult) Compare {
	c := Compare{ACs: len(acs), GCDLS: len(ls.Anycast)}
	for id := range ls.Anycast {
		if acs[id] {
			c.Intersection++
		} else {
			c.FNs++
		}
	}
	if c.GCDLS > 0 {
		c.FNRate = float64(c.FNs) / float64(c.GCDLS)
	}
	c.NotGCDLS = c.ACs - c.Intersection
	return c
}

// String renders the comparison as a Table 1 row.
func (c Compare) String() string {
	return fmt.Sprintf("AC=%d GCDLS=%d AC∩GCDLS=%d (%.1f%%) FNs=%d (%.1f%%) ¬GCDLS=%d",
		c.ACs, c.GCDLS, c.Intersection, 100*float64(c.Intersection)/max1(c.GCDLS),
		c.FNs, 100*c.FNRate, c.NotGCDLS)
}

func max1(n int) float64 {
	if n < 1 {
		return 1
	}
	return float64(n)
}
