// Package core implements the LACeS census pipeline — the paper's primary
// contribution (§4.3, Fig 3):
//
//	hitlist ──anycast-based (TANGLED)──► ACs ∪ feedback ──GCD (Ark)──► 𝒢 / ℳ
//
// Daily, the anycast-based stage probes the full hitlist per protocol and
// yields anycast candidates (ACs). The candidate list is extended with the
// feedback loop (prefixes confirmed by periodic full-hitlist GCD_LS sweeps
// and previous daily runs) so anycast-based false negatives stay covered.
// A follow-up latency measurement towards only the candidates confirms
// anycast with GCD, enumerates and geolocates sites, and splits the census
// into 𝒢 (GCD-confirmed) and ℳ (anycast-based only).
package core

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"time"

	"github.com/laces-project/laces/internal/budget"
	"github.com/laces-project/laces/internal/chaos"
	"github.com/laces-project/laces/internal/chaosdns"
	"github.com/laces-project/laces/internal/gcdmeas"
	"github.com/laces-project/laces/internal/hitlist"
	"github.com/laces-project/laces/internal/igreedy"
	"github.com/laces-project/laces/internal/manycast"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/traceroute"
)

// Entry is one census row: everything LACeS publishes about a prefix on
// one day (§4.4).
type Entry struct {
	TargetID int
	Prefix   netip.Prefix
	Origin   netsim.ASN

	// ACProtocols flags the protocols whose anycast-based measurement
	// classified the prefix as a candidate.
	ACProtocols [3]bool
	// MaxReceivers is the largest receiving-VP count across protocols —
	// the census publishes it as a confidence signal (Table 2: counts of
	// 2 are unreliable).
	MaxReceivers int
	// FromFeedback marks prefixes injected by the feedback loop rather
	// than detected by today's anycast-based stage.
	FromFeedback bool

	// GCDMeasured is true when the latency stage probed the prefix.
	GCDMeasured bool
	// GCDAnycast is the latency-based verdict (membership in 𝒢).
	GCDAnycast bool
	// GCDSites is the enumerated site count (a lower bound, §2.1).
	GCDSites int
	// GCDCities are the geolocated site cities (iGreedy's
	// highest-population rule).
	GCDCities []string
	// GCDVPs is the number of VPs that returned samples; published
	// because enumeration quality depends on it (§4.4).
	GCDVPs int
	// GCDProto is the protocol the latency stage used (ICMP, or TCP for
	// ICMP-unresponsive candidates); meaningful when GCDMeasured.
	GCDProto packet.Protocol

	// PartialAnycast is set by the periodic GCD_IPv4 /32 sweep when the
	// prefix holds both unicast and anycast addresses (§5.7).
	PartialAnycast bool

	// GlobalBGP marks ℳ prefixes whose traceroute screening shows the
	// §5.1.3 signature: forward paths ingress the origin network at two
	// or more PoPs yet terminate at a single server — a globally
	// announced, internally unicast prefix (the paper's Microsoft case;
	// publishing the flag is its stated future work).
	GlobalBGP bool

	// ChaosRecords holds the distinct RFC 4892 identity strings collected
	// from DNS-responsive prefixes when the pipeline's CHAOS census is
	// enabled (§8: "we intend on including it in our daily scanning as it
	// provides insightful information for nameservers").
	ChaosRecords []string
}

// IsCandidate reports whether any protocol's anycast-based stage flagged
// the prefix.
func (e *Entry) IsCandidate() bool {
	return e.ACProtocols[0] || e.ACProtocols[1] || e.ACProtocols[2]
}

// InG reports membership in 𝒢: GCD-confirmed anycast.
func (e *Entry) InG() bool { return e.GCDAnycast }

// InM reports membership in ℳ: anycast-based candidates not confirmed by
// GCD.
func (e *Entry) InM() bool { return e.IsCandidate() && !e.GCDAnycast }

// DailyCensus is the output of one census day for one address family.
type DailyCensus struct {
	Day time.Time
	// DayIndex is the census day number.
	DayIndex int
	V6       bool

	HitlistSize int
	Workers     int

	// Entries is keyed by target ID and holds every prefix that is an AC,
	// fed back, or GCD-measured today.
	Entries map[int]*Entry

	// ReceiverHist buckets today's candidates per protocol by receiving
	// VP count.
	ReceiverHist map[packet.Protocol]map[int]int

	// Cost accounting (R3).
	ProbesAnycastStage    int64
	ProbesGCDStage        int64
	ProbesTracerouteStage int64

	// Responsibility is the governance accounting (budget, opt-outs,
	// rate feedback); nil when the run had no governance active.
	Responsibility *Responsibility

	Alerts []Alert
}

// G returns the sorted target IDs in 𝒢.
func (c *DailyCensus) G() []int { return c.filter(func(e *Entry) bool { return e.InG() }) }

// M returns the sorted target IDs in ℳ.
func (c *DailyCensus) M() []int { return c.filter(func(e *Entry) bool { return e.InM() }) }

// CountG returns |𝒢| without materialising and sorting the ID slice —
// monitoring and reporting only need the count, and G() per day over a
// longitudinal run is measurable allocation churn.
func (c *DailyCensus) CountG() int { return c.count(func(e *Entry) bool { return e.InG() }) }

// CountM returns |ℳ| without materialising and sorting the ID slice.
func (c *DailyCensus) CountM() int { return c.count(func(e *Entry) bool { return e.InM() }) }

func (c *DailyCensus) count(keep func(*Entry) bool) int {
	n := 0
	for _, e := range c.Entries {
		if keep(e) {
			n++
		}
	}
	return n
}

// Candidates returns the sorted IDs of today's anycast candidates.
func (c *DailyCensus) Candidates() []int {
	return c.filter(func(e *Entry) bool { return e.IsCandidate() })
}

// CandidatesFor returns the sorted IDs of candidates detected with one
// protocol.
func (c *DailyCensus) CandidatesFor(p packet.Protocol) []int {
	return c.filter(func(e *Entry) bool { return e.ACProtocols[p] })
}

func (c *DailyCensus) filter(keep func(*Entry) bool) []int {
	var out []int
	for id, e := range c.Entries {
		if keep(e) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Config parameterises a Pipeline.
type Config struct {
	// Deployment runs the anycast-based stage (TANGLED in the paper).
	Deployment *netsim.Deployment
	// GCDVPs supplies the latency-stage VP pool for a census day (Ark,
	// which grows over time).
	GCDVPs func(day int, v6 bool) ([]netsim.VP, error)
	// Protocols probed by the anycast-based stage; default ICMP+TCP+DNS.
	Protocols []packet.Protocol
	// Offset is the inter-worker probe spacing (default 1 s).
	Offset time.Duration
	// Rate is the hitlist rate (targets/s; default manycast.DefaultRate).
	Rate float64
	// GCDAttempts per VP (default 1).
	GCDAttempts int
	// AccumulateDailyG keeps feeding confirmed prefixes back into the
	// candidate list (the Fig 3 purple arrow). Default true (disable only
	// for ablation).
	NoDailyFeedback bool
	// IncludeChaos adds a CHAOS TXT identity census over DNS-responsive
	// census prefixes (§8 extension; App C shows the records are a weak
	// anycast indicator but a useful nameserver annotation).
	IncludeChaos bool
	// ConfirmGlobalBGP adds a traceroute screening stage over ℳ: prefixes
	// whose paths ingress at multiple PoPs but terminate at one server
	// are published with the GlobalBGP flag (§5.1.3 future work).
	ConfirmGlobalBGP bool
	// GlobalBGPVPs caps the traceroute vantage points drawn from the GCD
	// pool (default 12 — the paper's manual confirmation used a handful).
	GlobalBGPVPs int
	// Parallelism shards the hot measurement loops of every census stage
	// (anycast-based, GCD, CHAOS) across this many goroutines: <= 0 means
	// GOMAXPROCS, 1 runs sequentially. The census is byte-identical at
	// every worker count for the same (seed, scenario) inputs — see the
	// README's "Concurrency model" section for the determinism contract.
	Parallelism int
	// Budget caps the census's probing (R3 governance): a per-day global
	// probe cap plus per-origin-AS and per-prefix caps, consulted before
	// every governed stage probes a target. The zero value means
	// unlimited — a pipeline with a zero Budget and no opt-outs produces
	// byte-identical documents to one without governance.
	Budget budget.Budget
	// OptOut is the opt-out registry honoured before any budget cap;
	// nil means none. Takes precedence over OptOutFile.
	OptOut *budget.Registry
	// OptOutFile, when set (and OptOut is nil), loads the opt-out
	// registry from this path at pipeline construction.
	OptOutFile string
	// Obs receives the pipeline's telemetry: per-stage laces_stage_*
	// series, pipeline spans, live progress and (when governance is
	// active) the budget decision counters. Nil disables instrumentation.
	// Telemetry never feeds back into measurement: the census document is
	// byte-identical with Obs set or nil.
	Obs *obs.Registry
	// FlightSink receives a flight-recorder JSONL dump when a census run
	// trips a failure trigger (currently: the governance ledger's
	// Spent+Skipped==Demanded reconciliation identity breaking). Requires
	// a flight recorder enabled on Obs; nil disables automatic dumps.
	FlightSink io.Writer
}

// DayOptions injects per-day conditions (failure modelling, §7). The
// general mechanism is Chaos — a fault-injection plan evaluated for the
// run's day; MissingWorkers and DNSBroken predate it and are kept as shims
// that compile to the equivalent impairments (SiteOutage and a DNS
// blackhole respectively), so legacy callers produce byte-identical
// censuses to the chaos plans they denote.
type DayOptions struct {
	// MissingWorkers marks deployment sites disconnected today (the
	// pre-July-2025 worker-loss events visible in Fig 9). Shim: equivalent
	// to a chaos.SiteOutage impairment over these sites.
	MissingWorkers map[int]bool
	// DNSBroken models the Sep–Dec 2024 tooling bug that flagged all DNS
	// replies invalid: no DNS results survive. Shim: equivalent to a
	// chaos.Blackhole impairment scoped to DNS.
	DNSBroken bool
	// Chaos is the fault-injection plan: every impairment whose scope
	// covers today's census day is applied to the run (probe loss, delay,
	// partitions, site outages, clock skew, route-flap amplification, …).
	Chaos *chaos.Scenario
}

// scenario merges the explicit chaos plan with the legacy shims into the
// effective scenario for a run, or nil when the day is fault-free.
func (o DayOptions) scenario() *chaos.Scenario {
	n := len(o.MissingWorkers)
	if o.Chaos == nil && !o.DNSBroken && n == 0 {
		return nil
	}
	sc := chaos.Scenario{Name: "day-options"}
	if o.Chaos != nil {
		if !o.DNSBroken && n == 0 {
			return o.Chaos
		}
		sc.Name = o.Chaos.Name
		sc.Impairments = append(sc.Impairments, o.Chaos.Impairments...)
	}
	if o.DNSBroken {
		sc.Impairments = append(sc.Impairments, chaos.Impairment{
			Kind:  chaos.Blackhole,
			Scope: chaos.Scope{Protocols: []packet.Protocol{packet.DNS}},
		})
	}
	workers := make([]int, 0, n)
	for wk, dead := range o.MissingWorkers {
		// Entries explicitly set to false are present workers; only true
		// entries translate into a site outage (and a nil Workers scope
		// would mean "all sites", so an all-false map must add nothing).
		if dead {
			workers = append(workers, wk)
		}
	}
	if len(workers) > 0 {
		sort.Ints(workers)
		sc.Impairments = append(sc.Impairments, chaos.Impairment{
			Kind:  chaos.SiteOutage,
			Scope: chaos.Scope{Workers: workers},
		})
	}
	if len(sc.Impairments) == 0 {
		return nil
	}
	return &sc
}

// Pipeline runs daily censuses and maintains the feedback loop.
type Pipeline struct {
	World *netsim.World
	Cfg   Config

	feedback [2]map[int]bool // [v4, v6] fed-back target IDs
	baseline [2][]int        // trailing 𝒢 sizes for monitoring

	// ledger is the probe-budget accountant, nil when the configuration
	// carries no budget and no opt-outs (the ungoverned fast path).
	ledger *budget.Ledger
}

// Ledger exposes the pipeline's probe-budget ledger (nil when the
// configuration enables no governance) for monitoring and the CLI.
func (p *Pipeline) Ledger() *budget.Ledger { return p.ledger }

// dumpFlight writes the registry's flight recorder to the configured
// sink, prefixed with a marker event naming the trigger. No-op without
// a recorder or a sink.
func (p *Pipeline) dumpFlight(reason string) {
	rec := p.Cfg.Obs.Flight()
	if rec == nil || p.Cfg.FlightSink == nil {
		return
	}
	rec.Record("flight_dump", reason, nil, 0)
	_ = rec.WriteJSONL(p.Cfg.FlightSink)
}

// NewPipeline validates the configuration and prepares a pipeline.
func NewPipeline(w *netsim.World, cfg Config) (*Pipeline, error) {
	if cfg.Deployment == nil {
		return nil, fmt.Errorf("core: config needs a deployment")
	}
	if cfg.GCDVPs == nil {
		return nil, fmt.Errorf("core: config needs a GCD VP source")
	}
	if len(cfg.Protocols) == 0 {
		cfg.Protocols = packet.Protocols()
	}
	if cfg.Offset == 0 {
		cfg.Offset = time.Second
	}
	if cfg.OptOut == nil && cfg.OptOutFile != "" {
		reg, err := budget.LoadRegistryFile(cfg.OptOutFile)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		cfg.OptOut = reg
	}
	p := &Pipeline{World: w, Cfg: cfg}
	if !cfg.Budget.IsZero() || cfg.OptOut != nil {
		p.ledger = budget.NewLedger(cfg.Budget, cfg.OptOut)
	}
	if cfg.Obs != nil && p.ledger != nil {
		// Bridge the ledger's lifetime decision telemetry into the
		// registry; the ledger itself stays obs-free.
		led := p.ledger
		cfg.Obs.CounterFunc("laces_budget_admitted_total",
			"Targets admitted by the responsible-probing ledger.",
			func() float64 { a, _, _ := led.Decisions(); return float64(a) })
		cfg.Obs.CounterFunc("laces_budget_denied_total",
			"Targets denied by the responsible-probing ledger, by reason.",
			func() float64 { _, d, _ := led.Decisions(); return float64(d) },
			obs.L("reason", "budget"))
		cfg.Obs.CounterFunc("laces_budget_denied_total",
			"Targets denied by the responsible-probing ledger, by reason.",
			func() float64 { _, _, o := led.Decisions(); return float64(o) },
			obs.L("reason", "optout"))
	}
	p.feedback[0] = make(map[int]bool)
	p.feedback[1] = make(map[int]bool)
	return p, nil
}

func famIdx(v6 bool) int {
	if v6 {
		return 1
	}
	return 0
}

// SeedFeedback injects prefixes into the feedback loop — typically the
// result of a GCD_LS sweep (§5.1.1) or operator ground truth.
func (p *Pipeline) SeedFeedback(v6 bool, ids []int) {
	for _, id := range ids {
		p.feedback[famIdx(v6)][id] = true
	}
}

// FeedbackSize returns the current feedback-list length.
func (p *Pipeline) FeedbackSize(v6 bool) int { return len(p.feedback[famIdx(v6)]) }

// RunDaily executes the full pipeline for one census day and family.
// When the day's options carry a chaos plan (explicitly or via the legacy
// shims), the compiled engine is installed on the world for the duration
// of the run; the world must not serve concurrent measurements meanwhile.
func (p *Pipeline) RunDaily(day int, v6 bool, dayOpts DayOptions) (*DailyCensus, error) {
	w := p.World
	hl := hitlist.ForDay(w, v6, day)
	start := netsim.DayTime(day)

	// Pipeline telemetry: a census-level span over the whole run and a
	// budget reader for the live progress line. Every handle is a no-op
	// when no registry is configured, and nothing below feeds back into
	// the measurement.
	reg := p.Cfg.Obs
	censusSpan := reg.StartSpan("census")
	defer censusSpan.End()
	reg.SetBudgetFunc(func() int64 { return p.ledger.Remaining(day) })

	// Resolve the day's fault plan: site outages become missing workers
	// (dead sites neither transmit nor capture), everything else impairs
	// individual probes through the world hook. Abuse complaints never
	// touch probes — they feed the adaptive rate controller below.
	missing := dayOpts.MissingWorkers
	complaints := 0
	if sc := dayOpts.scenario(); sc != nil {
		eng := chaos.NewEngine(w, *sc)
		missing = mergeMissing(missing, eng.MissingWorkers(p.Cfg.Deployment, day))
		complaints = eng.ComplaintsOn(day)
		w.SetImpairer(eng)
		defer w.SetImpairer(nil)
		reg.Flight().Record("chaos_active", sc.Name, nil, int64(len(sc.Impairments)),
			obs.L("day", strconv.Itoa(day)),
			obs.L("missing_workers", strconv.Itoa(len(missing))),
			obs.L("complaints", strconv.Itoa(complaints)))
	}

	// Responsible-probing governance: the admission gate for every
	// measurement stage, and the complaint-driven rate controller that
	// steps the effective hitlist rate down in powers of two (floored at
	// the paper's 1/8th-rate operating point, §5.5.2).
	gate := p.ledger.Gate(day)
	baseRate := p.Cfg.Rate
	if baseRate == 0 {
		baseRate = manycast.DefaultRate
	}
	effRate, rateSteps := budget.StepRate(baseRate, complaints, 0)

	census := &DailyCensus{
		Day:          start,
		DayIndex:     day,
		V6:           v6,
		HitlistSize:  hl.Len(),
		Workers:      manycast.CountParticipants(p.Cfg.Deployment.NumSites(), missing),
		Entries:      make(map[int]*Entry),
		ReceiverHist: make(map[packet.Protocol]map[int]int),
	}

	// Stage 1: anycast-based measurement, one run per protocol (§4.2).
	base := manycast.Options{
		Start:          start,
		Offset:         p.Cfg.Offset,
		Rate:           effRate,
		MeasurementID:  uint16(day),
		MissingWorkers: missing,
		Parallelism:    p.Cfg.Parallelism,
		Gate:           gate,
		Obs:            reg,
	}
	results, err := manycast.MultiProtocol(w, p.Cfg.Deployment, hl, base, p.Cfg.Protocols)
	if err != nil {
		return nil, fmt.Errorf("core: anycast-based stage: %w", err)
	}
	var anycastUsage, gcdUsage budget.Usage
	numTargets := w.NumTargets(v6)
	for proto, res := range results {
		census.ProbesAnycastStage += res.ProbesSent
		anycastUsage.Add(res.Usage)
		census.ReceiverHist[proto] = res.ReceiverHistogram()
		for _, ob := range res.Observations {
			if !ob.IsCandidate() {
				continue
			}
			e := census.entry(w.TargetAt(v6, ob.TargetID))
			e.ACProtocols[proto] = true
			if n := ob.NumReceivers(); n > e.MaxReceivers {
				e.MaxReceivers = n
			}
		}
	}

	// Stage 2: feedback loop — cover anycast-based FNs (§4.3).
	for id := range p.feedback[famIdx(v6)] {
		if id < 0 || id >= numTargets {
			continue
		}
		tg := w.TargetAt(v6, id)
		if tg.HitlistFromDay > hitlist.QuarterOf(day) {
			continue
		}
		if _, ok := census.Entries[id]; !ok {
			census.entry(tg).FromFeedback = true
		}
	}

	// Stage 3: GCD towards candidates only — two orders of magnitude
	// cheaper than a full-hitlist GCD (§4.3). ICMP first; TCP mops up
	// ICMP-unresponsive candidates. DNS is excluded (processing jitter).
	vps, err := p.Cfg.GCDVPs(day, v6)
	if err != nil {
		return nil, fmt.Errorf("core: GCD VP pool: %w", err)
	}
	var icmpIDs, tcpIDs []int
	for id := range census.Entries {
		tg := w.TargetAt(v6, id)
		switch {
		case tg.Responsive[packet.ICMP]:
			icmpIDs = append(icmpIDs, id)
		case tg.Responsive[packet.TCP]:
			tcpIDs = append(tcpIDs, id)
		}
	}
	// The campaigns' outcomes are order-independent, but the governance
	// gate's admission is order-sensitive by design (first come, first
	// charged) — present targets in sorted ID order so the admitted set
	// never depends on map iteration.
	sort.Ints(icmpIDs)
	sort.Ints(tcpIDs)
	for _, part := range []struct {
		proto packet.Protocol
		ids   []int
	}{{packet.ICMP, icmpIDs}, {packet.TCP, tcpIDs}} {
		if len(part.ids) == 0 {
			continue
		}
		rep := gcdmeas.Run(w, part.ids, v6, gcdmeas.Campaign{
			VPs:         vps,
			Proto:       part.proto,
			At:          start.Add(6 * time.Hour),
			Attempts:    p.Cfg.GCDAttempts,
			Analysis:    igreedy.Options{},
			Parallelism: p.Cfg.Parallelism,
			Gate:        gate,
			Obs:         reg,
		})
		census.ProbesGCDStage += rep.ProbesSent
		gcdUsage.Add(rep.Usage)
		for id, out := range rep.Outcomes {
			e := census.Entries[id]
			e.GCDMeasured = true
			e.GCDProto = part.proto
			e.GCDVPs = out.VPs
			e.GCDAnycast = out.Result.Anycast
			if out.Result.Anycast {
				e.GCDSites = out.Result.NumSites()
				for _, s := range out.Result.Sites {
					e.GCDCities = append(e.GCDCities, s.City.Name)
				}
			}
		}
	}

	// Maintain the feedback loop with today's confirmations.
	if !p.Cfg.NoDailyFeedback {
		for id, e := range census.Entries {
			if e.GCDAnycast {
				p.feedback[famIdx(v6)][id] = true
			}
		}
	}

	// Optional stage 4: CHAOS identity annotation (§8 extension).
	var chaosUsage budget.Usage
	if p.Cfg.IncludeChaos {
		chaosUsage = p.annotateChaos(census, hl, start, gate)
	}

	// Optional stage 5: traceroute screening of ℳ for global-BGP unicast
	// (§5.1.3 future work). Only multi-receiver candidates that GCD
	// measured and judged unicast are worth tracing.
	if p.Cfg.ConfirmGlobalBGP {
		if err := p.screenGlobalBGP(census, vps, start.Add(12*time.Hour)); err != nil {
			return nil, fmt.Errorf("core: global-BGP screening: %w", err)
		}
	}

	// Publish the governance block when any governance was active: a
	// ledger (budget/opt-outs) or complaint-driven rate feedback. With
	// neither, Responsibility stays nil and the document is byte-for-byte
	// what an ungoverned pipeline publishes.
	if p.ledger != nil || rateSteps > 0 {
		resp := &Responsibility{
			Anycast:         anycastUsage,
			GCD:             gcdUsage,
			Chaos:           chaosUsage,
			BudgetRemaining: -1,
			RateSteps:       rateSteps,
		}
		if rateSteps > 0 {
			resp.RateEffective = effRate
		}
		if p.ledger != nil {
			b := p.ledger.Budget()
			resp.BudgetDailyProbes = b.DailyProbes
			resp.BudgetPerASProbes = b.PerASProbes
			resp.BudgetPerPrefixProbes = b.PerPrefixProbes
			resp.BudgetRemaining = p.ledger.Remaining(day)
		}
		total := resp.Total()
		resp.ProbesDemanded = total.Demanded
		resp.ProbesSpent = total.Spent
		resp.ProbesSkipped = total.Skipped
		resp.OptOutProbes = total.OptOutProbes
		resp.OptOutTargets = total.OptOutTargets
		resp.BudgetTargets = total.BudgetTargets
		census.Responsibility = resp
		if !total.Reconciles() {
			// The ledger identity Spent+Skipped==Demanded holds by
			// construction; breaking it means a stage charged probes
			// outside the gate. Surface loudly and dump the flight
			// recorder rather than silently publishing broken accounting.
			fields := []obs.Label{
				{Name: "day", Value: strconv.Itoa(day)},
				{Name: "demanded", Value: strconv.FormatInt(total.Demanded, 10)},
				{Name: "spent", Value: strconv.FormatInt(total.Spent, 10)},
				{Name: "skipped", Value: strconv.FormatInt(total.Skipped, 10)},
			}
			reg.Event("reconcile_mismatch", fields...)
			reg.Flight().Record("reconcile_mismatch", "census", nil,
				total.Demanded-total.Spent-total.Skipped, fields...)
			p.dumpFlight("reconcile_mismatch")
		}
	}

	census.Alerts = p.monitor(census)
	reg.Counter("laces_census_days_total",
		"Census days completed by this pipeline.").Inc()
	return census, nil
}

// screenGlobalBGP traceroutes today's ℳ entries from a spread of the GCD
// pool's vantage points and flags the global-BGP unicast signature.
func (p *Pipeline) screenGlobalBGP(census *DailyCensus, pool []netsim.VP, at time.Time) error {
	limit := p.Cfg.GlobalBGPVPs
	if limit <= 0 {
		limit = 12
	}
	vps := spreadVPs(pool, limit)
	if len(vps) == 0 {
		return nil
	}
	// Candidates in ascending target-ID order, not map order: the
	// traceroute stage consumes them sequentially, and a stable order
	// keeps the probe ledger and any mid-stage cutoff reproducible.
	var candIDs []int
	for id, e := range census.Entries {
		if e.InM() && e.MaxReceivers >= 2 && e.GCDMeasured {
			candIDs = append(candIDs, id)
		}
	}
	sort.Ints(candIDs)
	cands := make([]*netsim.Target, 0, len(candIDs))
	for _, id := range candIDs {
		cands = append(cands, p.World.TargetAt(census.V6, id))
	}
	ids, probes, err := traceroute.ConfirmGlobalBGP(p.World, vps, cands, at)
	if err != nil {
		return err
	}
	census.ProbesTracerouteStage += probes
	for _, id := range ids {
		census.Entries[id].GlobalBGP = true
	}
	return nil
}

// mergeMissing unions two missing-worker sets without mutating either.
// Only entries whose value is true carry over: a key explicitly set to
// false marks a present worker and must not become missing in the union.
func mergeMissing(a, b map[int]bool) map[int]bool {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(map[int]bool, len(a)+len(b))
	for wk, dead := range a {
		if dead {
			out[wk] = true
		}
	}
	for wk, dead := range b {
		if dead {
			out[wk] = true
		}
	}
	return out
}

// spreadVPs picks up to n VPs evenly spaced through the pool (the pool is
// generated with geographic spread, so striding preserves it).
func spreadVPs(pool []netsim.VP, n int) []netsim.VP {
	if len(pool) <= n {
		return pool
	}
	out := make([]netsim.VP, 0, n)
	step := float64(len(pool)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, pool[int(float64(i)*step)])
	}
	return out
}

// annotateChaos queries RFC 4892 identities for the census's
// DNS-responsive prefixes from every deployment site and attaches the
// distinct records to the entries. It returns the stage's governance
// accounting (zero when the gate is nil or no entry qualified).
func (p *Pipeline) annotateChaos(census *DailyCensus, hl *hitlist.Hitlist, start time.Time, gate *budget.Gate) budget.Usage {
	inCensus := make(map[int]bool, len(census.Entries))
	for id := range census.Entries {
		inCensus[id] = true
	}
	sub := &hitlist.Hitlist{V6: hl.V6, Day: hl.Day}
	for _, e := range hl.Entries {
		if inCensus[e.TargetID] && e.Protocols[packet.DNS] {
			sub.Entries = append(sub.Entries, e)
		}
	}
	if sub.Len() == 0 {
		return budget.Usage{}
	}
	recs, usage := chaosdns.Census(p.World, p.Cfg.Deployment, sub, start.Add(9*time.Hour), gate, p.Cfg.Parallelism, p.Cfg.Obs)
	for id, o := range recs {
		if !o.Supported {
			continue
		}
		e := census.Entries[id]
		for rec := range o.Records {
			e.ChaosRecords = append(e.ChaosRecords, rec)
		}
		sort.Strings(e.ChaosRecords)
	}
	return usage
}

// entry returns (creating if needed) the census entry for a target.
func (c *DailyCensus) entry(tg *netsim.Target) *Entry {
	if e, ok := c.Entries[tg.ID]; ok {
		return e
	}
	e := &Entry{TargetID: tg.ID, Prefix: tg.Prefix, Origin: tg.Origin}
	c.Entries[tg.ID] = e
	return e
}

// ApplySweep marks partial-anycast prefixes found by a GCD_IPv4 address
// sweep (§5.7) on the census.
func (c *DailyCensus) ApplySweep(outcomes []gcdmeas.AddrSweepOutcome, w *netsim.World) {
	for _, o := range outcomes {
		if !o.Partial() {
			continue
		}
		e, ok := c.Entries[o.TargetID]
		if !ok {
			e = c.entry(w.TargetAt(c.V6, o.TargetID))
		}
		e.PartialAnycast = true
	}
}
