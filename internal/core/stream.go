package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
)

// This file is the streaming half of the published-document codec: encode
// and decode one DocumentEntry at a time so no layer has to materialize a
// whole census day to move it. The byte format is exactly the one
// Document.WriteJSON produces — a DocumentWriter's output is bit-for-bit
// the document the public repository carries, which is the contract the
// archive layer (internal/archive) builds its integrity checks on.

// ComparePrefix orders prefixes numerically: by address family, then
// address bytes, then prefix length. This is the canonical census order —
// lexicographic ordering of Prefix.String() would sort "10.0.0.0/24"
// before "2.0.0.0/24".
func ComparePrefix(a, b netip.Prefix) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	switch {
	case a.Bits() < b.Bits():
		return -1
	case a.Bits() > b.Bits():
		return 1
	}
	return 0
}

// ComparePrefixStrings orders two published prefix strings canonically.
// Unparsable strings (never produced by the census itself) sort after
// valid prefixes, between themselves by plain string comparison, so the
// order stays total and deterministic.
func ComparePrefixStrings(a, b string) int {
	pa, ea := netip.ParsePrefix(a)
	pb, eb := netip.ParsePrefix(b)
	switch {
	case ea == nil && eb == nil:
		return ComparePrefix(pa, pb)
	case ea == nil:
		return -1
	case eb == nil:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// WriteJSON encodes the document exactly as the public repository carries
// it: two-space indent, entries last, trailing newline. It is the
// canonical byte form — DailyCensus.WriteJSON, the streaming
// DocumentWriter and the archive round-trip all produce or reproduce
// these bytes.
func (d *Document) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// entryElementIndent is the line prefix of an entry element inside the
// canonical document ("entries" array elements sit two levels deep).
const entryElementIndent = "    "

// DocumentWriter streams a census document entry by entry, producing
// bytes identical to Document.WriteJSON without ever holding the entry
// slice. The header scalars must be known up front (the census pipeline
// always knows its counts before publication).
type DocumentWriter struct {
	w   io.Writer
	hdr []byte // canonical header bytes up to and including `"entries": `
	n   int    // entries written
	err error
}

// NewDocumentWriter prepares a streaming writer from the document's
// header scalars; hdr.Entries is ignored.
func NewDocumentWriter(w io.Writer, hdr *Document) (*DocumentWriter, error) {
	// Render the canonical header by encoding the scalar fields with a
	// nil entry slice and splitting at the trailing `null` — this keeps
	// the streamed bytes in lockstep with the Document struct without a
	// hand-maintained field list.
	shell := *hdr
	shell.Entries = nil
	var buf bytes.Buffer
	if err := shell.WriteJSON(&buf); err != nil {
		return nil, err
	}
	b := buf.Bytes()
	suffix := []byte("null\n}\n")
	if !bytes.HasSuffix(b, suffix) {
		return nil, fmt.Errorf("core: document header did not end in an empty entries field (entries must be the last field)")
	}
	return &DocumentWriter{w: w, hdr: b[:len(b)-len(suffix)]}, nil
}

// WriteEntry appends one census row to the stream.
func (dw *DocumentWriter) WriteEntry(e *DocumentEntry) error {
	if dw.err != nil {
		return dw.err
	}
	if dw.n == 0 {
		if _, dw.err = dw.w.Write(dw.hdr); dw.err != nil {
			return dw.err
		}
		if _, dw.err = io.WriteString(dw.w, "[\n"+entryElementIndent); dw.err != nil {
			return dw.err
		}
	} else {
		if _, dw.err = io.WriteString(dw.w, ",\n"+entryElementIndent); dw.err != nil {
			return dw.err
		}
	}
	b, err := json.MarshalIndent(e, entryElementIndent, "  ")
	if err != nil {
		dw.err = err
		return err
	}
	if _, dw.err = dw.w.Write(b); dw.err != nil {
		return dw.err
	}
	dw.n++
	return nil
}

// Close terminates the document. A document with zero entries reproduces
// the canonical `"entries": null` form.
func (dw *DocumentWriter) Close() error {
	if dw.err != nil {
		return dw.err
	}
	if dw.n == 0 {
		if _, dw.err = dw.w.Write(dw.hdr); dw.err != nil {
			return dw.err
		}
		_, dw.err = io.WriteString(dw.w, "null\n}\n")
		return dw.err
	}
	_, dw.err = io.WriteString(dw.w, "\n  ]\n}\n")
	return dw.err
}

// StreamDocument writes an already-materialized document through the
// streaming codec — the archive writer uses it to tee canonical bytes
// into checksums without a second buffer.
func StreamDocument(w io.Writer, d *Document) error {
	dw, err := NewDocumentWriter(w, d)
	if err != nil {
		return err
	}
	for i := range d.Entries {
		if err := dw.WriteEntry(&d.Entries[i]); err != nil {
			return err
		}
	}
	return dw.Close()
}

// DocumentReader decodes a census document one entry at a time. It
// expects the canonical layout (entries as the last field); fields after
// the entry array are ignored — ParseDocument remains the fully general
// path for foreign documents.
type DocumentReader struct {
	dec  *json.Decoder
	hdr  Document
	done bool
}

// NewDocumentReader parses the document header up to the entry array.
func NewDocumentReader(r io.Reader) (*DocumentReader, error) {
	dr := &DocumentReader{dec: json.NewDecoder(r)}
	tok, err := dr.dec.Token()
	if err != nil {
		return nil, fmt.Errorf("core: reading census document: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("core: census document does not start with an object")
	}
	for {
		tok, err := dr.dec.Token()
		if err != nil {
			return nil, fmt.Errorf("core: reading census header: %w", err)
		}
		if d, ok := tok.(json.Delim); ok && d == '}' {
			dr.done = true // no entries field at all
			return dr, nil
		}
		key, ok := tok.(string)
		if !ok {
			return nil, fmt.Errorf("core: unexpected token %v in census header", tok)
		}
		if key != "entries" {
			if err := dr.headerField(key); err != nil {
				return nil, err
			}
			continue
		}
		tok, err = dr.dec.Token()
		if err != nil {
			return nil, fmt.Errorf("core: reading entries field: %w", err)
		}
		switch d := tok.(type) {
		case nil: // "entries": null
			dr.done = true
			return dr, nil
		case json.Delim:
			if d == '[' {
				return dr, nil
			}
		}
		return nil, fmt.Errorf("core: entries field is neither an array nor null")
	}
}

// headerField decodes one scalar header field into the document.
func (dr *DocumentReader) headerField(key string) error {
	var dst any
	switch key {
	case "date":
		dst = &dr.hdr.Date
	case "family":
		dst = &dr.hdr.Family
	case "hitlist_size":
		dst = &dr.hdr.HitlistSize
	case "workers":
		dst = &dr.hdr.Workers
	case "gcd_confirmed":
		dst = &dr.hdr.GCount
	case "anycast_based_only":
		dst = &dr.hdr.MCount
	case "probes_anycast_stage":
		dst = &dr.hdr.ProbesAnycastStage
	case "probes_gcd_stage":
		dst = &dr.hdr.ProbesGCDStage
	case "probes_traceroute_stage":
		dst = &dr.hdr.ProbesTracerouteStage
	case "responsibility":
		dst = &dr.hdr.Responsibility
	default:
		var skip json.RawMessage
		dst = &skip
	}
	if err := dr.dec.Decode(dst); err != nil {
		return fmt.Errorf("core: decoding census header field %q: %w", key, err)
	}
	return nil
}

// Header returns the document's scalar fields (Entries stays nil).
func (dr *DocumentReader) Header() *Document { return &dr.hdr }

// Next decodes the next entry, or returns io.EOF after the last one.
func (dr *DocumentReader) Next() (*DocumentEntry, error) {
	if dr.done {
		return nil, io.EOF
	}
	if dr.dec.More() {
		var e DocumentEntry
		if err := dr.dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("core: decoding census entry: %w", err)
		}
		return &e, nil
	}
	if _, err := dr.dec.Token(); err != nil { // consume ']'
		return nil, fmt.Errorf("core: closing entries array: %w", err)
	}
	dr.done = true
	return nil, io.EOF
}
