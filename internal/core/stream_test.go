package core

import (
	"bytes"
	"io"
	"testing"
)

// synthDoc builds a deterministic synthetic document for codec tests.
func synthDoc(day, entries int) *Document {
	d := &Document{
		Date:               "2024-03-21",
		Family:             "ipv4",
		HitlistSize:        entries * 3,
		Workers:            32,
		ProbesAnycastStage: int64(entries) * 96,
		ProbesGCDStage:     int64(entries) * 7,
	}
	for i := 0; i < entries; i++ {
		e := DocumentEntry{
			Prefix:    synthPrefix(i),
			OriginASN: uint32(64500 + i%200),
		}
		switch i % 3 {
		case 0:
			e.ACProtocols = []string{"ICMP", "TCP"}
			e.MaxReceivers = 2 + (i+day)%7
			e.GCDMeasured = true
			e.GCDAnycast = true
			e.GCDSites = 2 + i%9
			e.GCDCities = []string{"Amsterdam", "Tokyo"}
			e.GCDVPs = 40 + i%13
			d.GCount++
		case 1:
			e.ACProtocols = []string{"DNS"}
			e.MaxReceivers = 2
			e.GCDMeasured = true
			e.GlobalBGP = i%5 == 1
			d.MCount++
		default:
			e.FromFeedback = true
			e.GCDMeasured = true
			e.GCDAnycast = i%2 == 0
			if e.GCDAnycast {
				e.GCDSites = 3
				e.GCDCities = []string{"Sydney"}
				d.GCount++
			}
			e.PartialAnycast = i%7 == 2
		}
		d.Entries = append(d.Entries, e)
	}
	sortEntriesCanonical(d)
	return d
}

// synthPrefix spreads prefixes over addresses whose lexicographic and
// numeric orders differ (2.x vs 10.x vs 100.x).
func synthPrefix(i int) string {
	bases := []string{"2", "10", "100", "192", "23"}
	return bases[i%len(bases)] + "." + itoa((i/5)%250) + "." + itoa(i%250) + ".0/24"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func sortEntriesCanonical(d *Document) {
	es := d.Entries
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && ComparePrefixStrings(es[j].Prefix, es[j-1].Prefix) < 0; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// TestStreamWriterByteIdentical pins the streaming codec's contract: a
// DocumentWriter must produce exactly the canonical WriteJSON bytes.
func TestStreamWriterByteIdentical(t *testing.T) {
	for _, entries := range []int{0, 1, 2, 57} {
		doc := synthDoc(3, entries)
		var want, got bytes.Buffer
		if err := doc.WriteJSON(&want); err != nil {
			t.Fatal(err)
		}
		if err := StreamDocument(&got, doc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("entries=%d: streamed bytes differ from WriteJSON\nwant: %q\ngot:  %q",
				entries, want.String(), got.String())
		}
	}
}

// TestStreamReaderRoundTrip decodes a streamed document entry by entry
// and re-encodes it byte-identically.
func TestStreamReaderRoundTrip(t *testing.T) {
	for _, entries := range []int{0, 1, 41} {
		doc := synthDoc(9, entries)
		var buf bytes.Buffer
		if err := doc.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		dr, err := NewDocumentReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		back := dr.Header().DeepCopy()
		for {
			e, err := dr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			back.Entries = append(back.Entries, *e)
		}
		var again bytes.Buffer
		if err := back.WriteJSON(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("entries=%d: streamed decode lost information", entries)
		}
		if back.ProbesAnycastStage != doc.ProbesAnycastStage || back.GCount != doc.GCount {
			t.Fatalf("header scalars lost: %+v", back)
		}
	}
}

// TestComparePrefixNumeric pins the satellite fix: 2.0.0.0/24 sorts
// before 10.0.0.0/24 despite the lexicographic order saying otherwise.
func TestComparePrefixNumeric(t *testing.T) {
	order := []string{"2.0.0.0/24", "10.0.0.0/24", "10.0.0.0/25", "100.0.0.0/24", "192.0.2.0/24"}
	for i := range order {
		for j := range order {
			got := ComparePrefixStrings(order[i], order[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Fatalf("ComparePrefixStrings(%s, %s) = %d, want %d", order[i], order[j], got, want)
			}
		}
	}
	if ComparePrefixStrings("10.0.0.0/24", "2.0.0.0/24") < 0 {
		t.Fatal("lexicographic ordering leaked back in")
	}
}
