package core

import "fmt"

// Alert is a monitoring finding. The paper added alerting after a tooling
// bug silently dropped all DNS results for three months (§7): "we added an
// alerting system that triggers when canary checks fail or results
// substantially deviate from the baseline".
type Alert struct {
	Kind    AlertKind
	Message string
}

// AlertKind classifies monitoring alerts.
type AlertKind uint8

// Alert kinds.
const (
	// AlertNoResults fires when a probed protocol yields zero results —
	// the canary check that would have caught the 2024 DNS bug.
	AlertNoResults AlertKind = iota
	// AlertFewWorkers fires when deployment sites are missing.
	AlertFewWorkers
	// AlertBaselineDeviation fires when today's 𝒢 count deviates more
	// than 20% from the trailing baseline.
	AlertBaselineDeviation
)

// String names the alert kind.
func (k AlertKind) String() string {
	switch k {
	case AlertNoResults:
		return "no-results"
	case AlertFewWorkers:
		return "few-workers"
	case AlertBaselineDeviation:
		return "baseline-deviation"
	default:
		return fmt.Sprintf("AlertKind(%d)", uint8(k))
	}
}

// baselineWindow is the number of trailing days in the deviation baseline.
const baselineWindow = 14

// monitor evaluates canary checks against the finished census and updates
// the trailing baseline.
func (p *Pipeline) monitor(c *DailyCensus) []Alert {
	var alerts []Alert

	// Canary: protocols that were probed but produced zero candidates
	// and zero observations.
	for _, proto := range p.Cfg.Protocols {
		hist, probed := c.ReceiverHist[proto]
		if probed && len(hist) == 0 {
			alerts = append(alerts, Alert{
				Kind:    AlertNoResults,
				Message: fmt.Sprintf("no %v results collected on day %d", proto, c.DayIndex),
			})
		}
	}

	// Worker participation.
	if c.Workers < p.Cfg.Deployment.NumSites() {
		alerts = append(alerts, Alert{
			Kind: AlertFewWorkers,
			Message: fmt.Sprintf("only %d of %d workers participated",
				c.Workers, p.Cfg.Deployment.NumSites()),
		})
	}

	// Baseline deviation of the 𝒢 count.
	fam := famIdx(c.V6)
	gCount := c.CountG()
	if n := len(p.baseline[fam]); n >= 3 {
		sum := 0
		for _, v := range p.baseline[fam] {
			sum += v
		}
		mean := float64(sum) / float64(n)
		if mean > 0 {
			dev := float64(gCount)/mean - 1
			if dev > 0.2 || dev < -0.2 {
				alerts = append(alerts, Alert{
					Kind: AlertBaselineDeviation,
					Message: fmt.Sprintf("GCD-confirmed count %d deviates %+.0f%% from baseline %.0f",
						gCount, dev*100, mean),
				})
			}
		}
	}
	p.baseline[fam] = append(p.baseline[fam], gCount)
	if len(p.baseline[fam]) > baselineWindow {
		p.baseline[fam] = p.baseline[fam][len(p.baseline[fam])-baselineWindow:]
	}
	return alerts
}

// HasAlert reports whether the census carries an alert of the given kind.
func (c *DailyCensus) HasAlert(kind AlertKind) bool {
	for _, a := range c.Alerts {
		if a.Kind == kind {
			return true
		}
	}
	return false
}
