package core

import (
	"bytes"
	"testing"
)

// evolve produces day+1's document from day's with deterministic churn:
// some rows change sites, a few disappear, a few appear.
func evolve(d *Document, day int) *Document {
	out := d.DeepCopy()
	out.Date = "2024-03-22"
	out.GCount, out.MCount = 0, 0
	out.ProbesAnycastStage += 1000
	kept := out.Entries[:0]
	for i := range out.Entries {
		e := out.Entries[i]
		if (i+day)%11 == 0 {
			continue // withdrawn
		}
		if (i+day)%5 == 0 && e.GCDAnycast {
			e.GCDSites += 2 // deployment growth
		}
		if e.GCDAnycast {
			out.GCount++
		} else if len(e.ACProtocols) > 0 {
			out.MCount++
		}
		kept = append(kept, e)
	}
	out.Entries = kept
	// A couple of new prefixes, placed anywhere; re-sort canonically.
	for i := 0; i < 3; i++ {
		out.Entries = append(out.Entries, DocumentEntry{
			Prefix:      "8." + itoa(day%200) + "." + itoa(i) + ".0/24",
			OriginASN:   65000,
			ACProtocols: []string{"ICMP"},
			GCDMeasured: true,
			GCDAnycast:  true,
			GCDSites:    2,
			GCDCities:   []string{"London"},
		})
		out.GCount++
	}
	sortEntriesCanonical(out)
	return out
}

// TestDeltaRoundTrip packs a chain of evolving documents into deltas and
// proves each day reconstructs byte-for-byte.
func TestDeltaRoundTrip(t *testing.T) {
	prev := synthDoc(0, 60)
	for day := 1; day <= 12; day++ {
		cur := evolve(prev, day)
		delta := DiffDocuments(prev, cur)
		back, err := delta.Apply(prev)
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		var want, got bytes.Buffer
		if err := cur.WriteJSON(&want); err != nil {
			t.Fatal(err)
		}
		if err := back.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("day %d: delta apply did not reproduce the document", day)
		}
		if len(delta.Upserts) >= len(cur.Entries) {
			t.Fatalf("day %d: delta degenerated to a full snapshot (%d upserts / %d entries)",
				day, len(delta.Upserts), len(cur.Entries))
		}
		prev = cur
	}
}

// TestDeltaStrictness rejects deltas applied to the wrong base.
func TestDeltaStrictness(t *testing.T) {
	a := synthDoc(0, 30)
	b := evolve(a, 1)
	delta := DiffDocuments(a, b)

	wrongFam := a.DeepCopy()
	wrongFam.Family = "ipv6"
	if _, err := delta.Apply(wrongFam); err == nil {
		t.Fatal("family mismatch accepted")
	}

	if len(delta.Removed) > 0 {
		stripped := a.DeepCopy()
		kept := stripped.Entries[:0]
		for _, e := range stripped.Entries {
			if e.Prefix != delta.Removed[0] {
				kept = append(kept, e)
			}
		}
		stripped.Entries = kept
		if _, err := delta.Apply(stripped); err == nil {
			t.Fatal("removal of an absent prefix accepted")
		}
	}
}

// TestDeltaToEmptyDay reconstructs a fully-withdrawn day byte-for-byte:
// the result must carry nil entries (canonical `"entries": null`), not
// an empty slice (`[]`).
func TestDeltaToEmptyDay(t *testing.T) {
	a := synthDoc(0, 10)
	b := a.DeepCopy()
	b.Date = "2024-03-22"
	b.Entries = nil
	b.GCount, b.MCount = 0, 0
	delta := DiffDocuments(a, b)
	back, err := delta.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entries != nil {
		t.Fatalf("empty day reconstructed with non-nil entries (len %d)", len(back.Entries))
	}
	var want, got bytes.Buffer
	if err := b.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("empty-day delta not byte-identical:\nwant %q\ngot  %q", want.String(), got.String())
	}
}

// TestDeltaEmpty handles the no-change day: the delta carries only the
// header and applies cleanly.
func TestDeltaEmpty(t *testing.T) {
	a := synthDoc(0, 20)
	b := a.DeepCopy()
	b.Date = "2024-03-22"
	delta := DiffDocuments(a, b)
	if len(delta.Removed) != 0 || len(delta.Upserts) != 0 {
		t.Fatalf("no-change delta carries %d removals, %d upserts", len(delta.Removed), len(delta.Upserts))
	}
	back, err := delta.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := b.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("empty delta did not reproduce the document")
	}
}
