package core

import (
	"bytes"
	"testing"

	"github.com/laces-project/laces/internal/chaos"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
)

// runCensusAt builds a fresh pipeline on w with the given parallelism and
// runs the day-0 census under the scenario, returning the census and its
// published JSON bytes.
func runCensusAt(t *testing.T, w *netsim.World, parallelism int, sc *chaos.Scenario) (*DailyCensus, []byte) {
	t.Helper()
	dep, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(w, Config{
		Deployment:   dep,
		GCDVPs:       func(day int, v6 bool) ([]netsim.VP, error) { return platform.Ark(w, day, v6) },
		IncludeChaos: true,
		Parallelism:  parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := pipe.RunDaily(0, false, DayOptions{Chaos: sc})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return c, buf.Bytes()
}

// compareCensuses asserts the parallel census is byte-identical to the
// sequential one: the published JSON document plus every counter the
// document omits (probe-cost accounting and alerts).
func compareCensuses(t *testing.T, label string, seq, par *DailyCensus, seqJSON, parJSON []byte) {
	t.Helper()
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatalf("%s: parallel census JSON differs from sequential (seq %d bytes, par %d bytes)",
			label, len(seqJSON), len(parJSON))
	}
	if seq.ProbesAnycastStage != par.ProbesAnycastStage {
		t.Fatalf("%s: anycast-stage probes %d (seq) vs %d (par)",
			label, seq.ProbesAnycastStage, par.ProbesAnycastStage)
	}
	if seq.ProbesGCDStage != par.ProbesGCDStage {
		t.Fatalf("%s: GCD-stage probes %d (seq) vs %d (par)",
			label, seq.ProbesGCDStage, par.ProbesGCDStage)
	}
	if seq.Workers != par.Workers {
		t.Fatalf("%s: workers %d (seq) vs %d (par)", label, seq.Workers, par.Workers)
	}
	if len(seq.Alerts) != len(par.Alerts) {
		t.Fatalf("%s: alerts %v (seq) vs %v (par)", label, seq.Alerts, par.Alerts)
	}
}

// TestParallelCensusDeterminism is the engine's core guarantee: for the
// same (seed, scenario) inputs the parallel census is byte-for-byte
// identical to the sequential one — across seeds (the routing model is a
// pure function of the seed) and across chaos scenarios (impairments are
// pure functions of seed and probe identity, so fault injection commutes
// with sharding).
func TestParallelCensusDeterminism(t *testing.T) {
	lossy, ok := chaos.Lookup(chaos.ScenarioLossyTransit)
	if !ok {
		t.Fatal("lossy-transit scenario missing")
	}
	flap, ok := chaos.Lookup(chaos.ScenarioFlappingUpstream)
	if !ok {
		t.Fatal("flapping-upstream scenario missing")
	}

	for _, seed := range []uint64{1, 0xdead, 987654321} {
		cfg := netsim.TestConfig()
		cfg.Seed = seed
		w, err := netsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		scenarios := []struct {
			name string
			sc   *chaos.Scenario
		}{{"clean", nil}}
		// The chaos cross-product only on the first seed keeps the test
		// within a few seconds while still covering ≥3 seeds and ≥2
		// scenarios.
		if seed == 1 {
			scenarios = append(scenarios,
				struct {
					name string
					sc   *chaos.Scenario
				}{"lossy-transit", &lossy},
				struct {
					name string
					sc   *chaos.Scenario
				}{"flapping-upstream", &flap},
			)
		}
		for _, tc := range scenarios {
			label := tc.name
			seqC, seqJSON := runCensusAt(t, w, 1, tc.sc)
			parC, parJSON := runCensusAt(t, w, 0, tc.sc)
			compareCensuses(t, label, seqC, parC, seqJSON, parJSON)
			// Odd worker counts exercise uneven shard boundaries.
			par3C, par3JSON := runCensusAt(t, w, 3, tc.sc)
			compareCensuses(t, label+"/3-workers", seqC, par3C, seqJSON, par3JSON)
		}
	}
}

// TestWorkersCountIgnoresBogusMissingEntries is the measurement-accounting
// bugfix: out-of-range site indices and explicit false entries in
// MissingWorkers must not reduce the participant count (previously they
// fired spurious AlertFewWorkers).
func TestWorkersCountIgnoresBogusMissingEntries(t *testing.T) {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(w, Config{
		Deployment: dep,
		GCDVPs:     func(day int, v6 bool) ([]netsim.VP, error) { return platform.Ark(w, day, v6) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two bogus entries (an out-of-range index and a false value) plus one
	// genuine outage: only the genuine one may count.
	c, err := pipe.RunDaily(0, false, DayOptions{MissingWorkers: map[int]bool{
		999: true,  // out of range
		3:   false, // explicitly present
		5:   true,  // the only real outage
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := dep.NumSites() - 1; c.Workers != want {
		t.Fatalf("workers = %d, want %d", c.Workers, want)
	}

	// An all-bogus map is a fully clean day: full participation, no
	// few-workers alert, and byte-identical output to no map at all.
	pipeClean, err := NewPipeline(w, Config{
		Deployment: dep,
		GCDVPs:     func(day int, v6 bool) ([]netsim.VP, error) { return platform.Ark(w, day, v6) },
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := pipeClean.RunDaily(0, false, DayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pipeBogus, err := NewPipeline(w, Config{
		Deployment: dep,
		GCDVPs:     func(day int, v6 bool) ([]netsim.VP, error) { return platform.Ark(w, day, v6) },
	})
	if err != nil {
		t.Fatal(err)
	}
	bogus, err := pipeBogus.RunDaily(0, false, DayOptions{MissingWorkers: map[int]bool{
		999: true, -1: true, 7: false,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if bogus.Workers != dep.NumSites() {
		t.Fatalf("bogus-map workers = %d, want full %d", bogus.Workers, dep.NumSites())
	}
	if bogus.HasAlert(AlertFewWorkers) {
		t.Fatal("bogus missing-worker map fired AlertFewWorkers")
	}
	var cleanJSON, bogusJSON bytes.Buffer
	if err := clean.WriteJSON(&cleanJSON); err != nil {
		t.Fatal(err)
	}
	if err := bogus.WriteJSON(&bogusJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cleanJSON.Bytes(), bogusJSON.Bytes()) {
		t.Fatal("bogus missing-worker map changed the census output")
	}
}

// TestCountGCountM pins the counting helpers to the slice-materialising
// accessors they replace in the monitor hot path.
func TestCountGCountM(t *testing.T) {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := runCensusAt(t, w, 0, nil)
	if got, want := c.CountG(), len(c.G()); got != want {
		t.Fatalf("CountG = %d, len(G()) = %d", got, want)
	}
	if got, want := c.CountM(), len(c.M()); got != want {
		t.Fatalf("CountM = %d, len(M()) = %d", got, want)
	}
	if c.CountG() == 0 || c.CountM() == 0 {
		t.Fatalf("degenerate census: |G|=%d |M|=%d", c.CountG(), c.CountM())
	}
}
