// Package igreedy implements the latency-based anycast detection,
// enumeration and geolocation algorithm of Cicalese et al.'s iGreedy
// (§2.1 of the LACeS paper), in the streamlined form LACeS ships as
// "MiGreedy" (the paper's improved implementation that "severely reduces
// processing time", §4.3).
//
// Given RTT samples from geographically dispersed vantage points, each
// sample constrains the responder to a disc around the VP with radius
// RTT/2 × c_fibre. Two disjoint discs cannot contain one host — a
// "speed-of-light violation" proving anycast. The minimum set of pairwise
// disjoint discs lower-bounds the number of sites, and each chosen disc is
// geolocated to the highest-population city it contains.
//
// Fast path: for the (overwhelmingly common) unicast case, all discs share
// a common point — the responder. Checking whether every disc contains the
// centre of the smallest disc is an O(n) certificate of "no violation";
// only targets failing it pay for the O(n²) pairwise scan. This is the
// optimisation benchmarked by BenchmarkIGreedyOrdering.
package igreedy

import (
	"sort"
	"time"

	"github.com/laces-project/laces/internal/cities"
	"github.com/laces-project/laces/internal/geo"
)

// Sample is one latency measurement from a vantage point.
type Sample struct {
	VP  string // vantage point name
	Loc geo.Coordinate
	RTT time.Duration
}

// Options tunes the analysis. The zero value is ready to use.
type Options struct {
	// DB is the geolocation city database; nil uses the embedded default.
	DB *cities.DB
	// ProcessingAllowance is subtracted from each RTT before computing
	// the disc radius, discounting target processing delay. Zero (the
	// iGreedy default) is conservative: it can only overestimate radii
	// and therefore never produces a false violation.
	ProcessingAllowance time.Duration
}

func (o Options) db() *cities.DB {
	if o.DB != nil {
		return o.DB
	}
	return cities.Default()
}

// Site is one enumerated anycast site.
type Site struct {
	VP     string   // the vantage point whose disc identified the site
	Disc   geo.Disc // the constraint disc
	City   cities.City
	CityOK bool // false when no database city lies within the disc
}

// Result is the outcome of analysing one target.
type Result struct {
	// Anycast is true when a speed-of-light violation exists.
	Anycast bool
	// Sites is the greedy enumeration: a set of pairwise disjoint discs,
	// each a distinct site (a lower bound, §2.1). For unicast targets it
	// holds the single best-constrained location.
	Sites []Site
	// Samples is the number of usable (positive-RTT) samples analysed.
	Samples int
}

// NumSites returns the enumerated site count.
func (r Result) NumSites() int { return len(r.Sites) }

// disc pairs a sample index with its constraint disc.
type disc struct {
	d  geo.Disc
	vp string
}

// buildDiscs converts samples to discs, dropping unusable samples and
// keeping only the smallest disc per vantage point (the min-RTT filter —
// retransmissions and jitter only ever enlarge a disc).
func buildDiscs(samples []Sample, opts Options) []disc {
	best := make(map[string]int, len(samples))
	var out []disc
	for _, s := range samples {
		rtt := s.RTT - opts.ProcessingAllowance
		if rtt <= 0 {
			if s.RTT <= 0 {
				continue
			}
			rtt = time.Microsecond
		}
		d := disc{d: geo.Disc{Center: s.Loc, RadiusKm: geo.MaxDistanceKm(rtt)}, vp: s.VP}
		if i, seen := best[s.VP]; seen {
			if d.d.RadiusKm < out[i].d.RadiusKm {
				out[i] = d
			}
			continue
		}
		best[s.VP] = len(out)
		out = append(out, d)
	}
	return out
}

// Detect reports whether the samples prove anycast: some pair of discs is
// disjoint. It runs the O(n) common-point certificate first and falls back
// to a pairwise scan sorted so violations are found early.
func Detect(samples []Sample, opts Options) bool {
	discs := buildDiscs(samples, opts)
	anycast, _, _ := detect(discs)
	return anycast
}

// detect returns whether a violation exists and, if so, one disjoint pair.
func detect(discs []disc) (bool, int, int) {
	if len(discs) < 2 {
		return false, 0, 0
	}
	// O(n) certificate: if every disc contains the centre of the smallest
	// disc, all discs pairwise overlap (they share a common point), so no
	// violation exists.
	m := 0
	for i := range discs {
		if discs[i].d.RadiusKm < discs[m].d.RadiusKm {
			m = i
		}
	}
	all := true
	for i := range discs {
		if !discs[i].d.Contains(discs[m].d.Center) {
			all = false
			break
		}
	}
	if all {
		return false, 0, 0
	}
	// Pairwise scan in ascending radius order: small discs are the most
	// discriminating, so true violations exit early.
	order := make([]int, len(discs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return discs[order[a]].d.RadiusKm < discs[order[b]].d.RadiusKm
	})
	for a := 0; a < len(order); a++ {
		da := discs[order[a]]
		for b := a + 1; b < len(order); b++ {
			if !da.d.Overlaps(discs[order[b]].d) {
				return true, order[a], order[b]
			}
		}
	}
	return false, 0, 0
}

// Analyze runs detection, enumeration and geolocation on the samples.
func Analyze(samples []Sample, opts Options) Result {
	discs := buildDiscs(samples, opts)
	res := Result{Samples: len(discs)}
	if len(discs) == 0 {
		return res
	}
	anycast, vi, vj := detect(discs)
	res.Anycast = anycast

	// Greedy maximum-independent-set approximation: repeatedly take the
	// smallest disc disjoint from everything taken. Each taken disc is a
	// distinct site (two disjoint discs cannot share a host).
	order := make([]int, len(discs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return discs[order[a]].d.RadiusKm < discs[order[b]].d.RadiusKm
	})
	var picked []int
	for _, i := range order {
		ok := true
		for _, p := range picked {
			if discs[i].d.Overlaps(discs[p].d) {
				ok = false
				break
			}
		}
		if ok {
			picked = append(picked, i)
		}
	}
	// Greedy maximality does not guarantee it realises a known violation
	// (the witness pair can both overlap an earlier pick); if that
	// happens, rebuild the set seeded with the witness pair so the result
	// is self-consistent: Anycast ⇒ at least two sites.
	if anycast && len(picked) < 2 {
		picked = picked[:0]
		picked = append(picked, vi, vj)
		for _, i := range order {
			if i == vi || i == vj {
				continue
			}
			ok := true
			for _, p := range picked {
				if discs[i].d.Overlaps(discs[p].d) {
					ok = false
					break
				}
			}
			if ok {
				picked = append(picked, i)
			}
		}
	}

	db := opts.db()
	for _, i := range picked {
		s := Site{VP: discs[i].vp, Disc: discs[i].d}
		if c, ok := db.HighestPopulationIn(discs[i].d); ok {
			s.City, s.CityOK = c, true
		} else if c, _, ok := db.Nearest(discs[i].d.Center); ok {
			// No city inside the disc (tiny disc in a remote area):
			// fall back to the nearest city to the VP.
			s.City, s.CityOK = c, false
		}
		res.Sites = append(res.Sites, s)
	}
	return res
}

// DetectNaive is the reference O(n²) detector without the common-point
// fast path; used by tests as ground truth and by the ordering ablation
// benchmark.
func DetectNaive(samples []Sample, opts Options) bool {
	discs := buildDiscs(samples, opts)
	for a := 0; a < len(discs); a++ {
		for b := a + 1; b < len(discs); b++ {
			if !discs[a].d.Overlaps(discs[b].d) {
				return true
			}
		}
	}
	return false
}
