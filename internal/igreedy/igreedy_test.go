package igreedy

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/laces-project/laces/internal/cities"
	"github.com/laces-project/laces/internal/geo"
)

// rttFor fabricates a plausible RTT for a VP observing a responder at the
// given distance: fibre propagation with path stretch plus processing.
func rttFor(distKm, stretch float64) time.Duration {
	ms := 2*distKm*stretch/200.0 + 0.5
	return time.Duration(ms * float64(time.Millisecond))
}

// cityLoc looks up a city location by name.
func cityLoc(t testing.TB, name string) geo.Coordinate {
	t.Helper()
	c, ok := cities.Default().ByName(name)
	if !ok {
		t.Fatalf("city %q missing", name)
	}
	return c.Location
}

// unicastSamples builds samples for a single responder at `at` observed
// from the named VP cities.
func unicastSamples(t testing.TB, at geo.Coordinate, vps []string) []Sample {
	var out []Sample
	for i, name := range vps {
		loc := cityLoc(t, name)
		stretch := 1.2 + 0.05*float64(i%5)
		out = append(out, Sample{VP: name, Loc: loc, RTT: rttFor(loc.DistanceKm(at), stretch)})
	}
	return out
}

var vpCities = []string{
	"Amsterdam", "New York", "Tokyo", "Sydney", "Sao Paulo", "Johannesburg",
	"Frankfurt", "Singapore", "Los Angeles", "Mumbai", "Stockholm", "Santiago",
}

func TestUnicastNotDetected(t *testing.T) {
	// Responder in Warsaw; all VPs ping it with stretch >= 1: no possible
	// violation.
	samples := unicastSamples(t, cityLoc(t, "Warsaw"), vpCities)
	if Detect(samples, Options{}) {
		t.Fatal("unicast target detected as anycast")
	}
	res := Analyze(samples, Options{})
	if res.Anycast {
		t.Fatal("Analyze disagrees with Detect")
	}
	if len(res.Sites) != 1 {
		t.Fatalf("unicast should enumerate exactly 1 site, got %d", len(res.Sites))
	}
}

func TestTwoSiteAnycastDetected(t *testing.T) {
	// Anycast with sites in Amsterdam and Sydney: nearby VPs get small
	// discs around each site — a clear violation.
	ams := cityLoc(t, "Amsterdam")
	syd := cityLoc(t, "Sydney")
	samples := []Sample{
		{VP: "vp-ams", Loc: ams, RTT: rttFor(5, 1.2)}, // hits AMS site
		{VP: "vp-lon", Loc: cityLoc(t, "London"), RTT: rttFor(358, 1.2)},
		{VP: "vp-syd", Loc: syd, RTT: rttFor(10, 1.2)}, // hits SYD site
		{VP: "vp-mel", Loc: cityLoc(t, "Melbourne"), RTT: rttFor(713, 1.25)},
	}
	if !Detect(samples, Options{}) {
		t.Fatal("two-site anycast not detected")
	}
	res := Analyze(samples, Options{})
	if !res.Anycast || len(res.Sites) < 2 {
		t.Fatalf("expected >= 2 sites, got %+v", res)
	}
}

func TestGeolocationPicksAnycastCities(t *testing.T) {
	ams := cityLoc(t, "Amsterdam")
	syd := cityLoc(t, "Sydney")
	samples := []Sample{
		{VP: "vp-ams", Loc: ams, RTT: rttFor(5, 1.2)},
		{VP: "vp-syd", Loc: syd, RTT: rttFor(10, 1.2)},
	}
	res := Analyze(samples, Options{})
	got := map[string]bool{}
	for _, s := range res.Sites {
		if !s.CityOK {
			t.Fatalf("site without city: %+v", s)
		}
		got[s.City.Name] = true
	}
	if !got["Amsterdam"] || !got["Sydney"] {
		t.Fatalf("geolocation = %v, want Amsterdam and Sydney", got)
	}
}

func TestGeolocationHighestPopulation(t *testing.T) {
	// A large disc around Brussels contains Paris and London; iGreedy's
	// rule picks the highest-population city in the area (Paris at 11.1M
	// beats London's 9.6M in our DB).
	samples := []Sample{
		{VP: "vp", Loc: cityLoc(t, "Brussels"), RTT: rttFor(320, 1.0)},
	}
	res := Analyze(samples, Options{})
	if len(res.Sites) != 1 || res.Sites[0].City.Name != "Paris" {
		t.Fatalf("geolocation = %+v, want Paris", res.Sites)
	}
}

func TestNearbySitesMerge(t *testing.T) {
	// Sites in Prague and Vienna (~250 km apart) probed from far away:
	// discs overlap, enumeration merges them into one site — the paper's
	// Prague/Bratislava/Vienna case (§6).
	prg := cityLoc(t, "Prague")
	vie := cityLoc(t, "Vienna")
	samples := []Sample{
		{VP: "vp-waw", Loc: cityLoc(t, "Warsaw"), RTT: rttFor(cityLoc(t, "Warsaw").DistanceKm(prg), 1.3)},
		{VP: "vp-mil", Loc: cityLoc(t, "Milan"), RTT: rttFor(cityLoc(t, "Milan").DistanceKm(vie), 1.3)},
		{VP: "vp-ber", Loc: cityLoc(t, "Berlin"), RTT: rttFor(cityLoc(t, "Berlin").DistanceKm(prg), 1.3)},
	}
	res := Analyze(samples, Options{})
	if res.Anycast {
		t.Fatal("nearby sites should not be separable (GCD FN case)")
	}
	if len(res.Sites) != 1 {
		t.Fatalf("expected merged single site, got %d", len(res.Sites))
	}
}

func TestMinRTTPerVP(t *testing.T) {
	// Two samples from the same VP: only the smaller disc may count.
	ams := cityLoc(t, "Amsterdam")
	samples := []Sample{
		{VP: "vp-ams", Loc: ams, RTT: 80 * time.Millisecond},
		{VP: "vp-ams", Loc: ams, RTT: 10 * time.Millisecond},
	}
	res := Analyze(samples, Options{})
	if res.Samples != 1 {
		t.Fatalf("per-VP coalescing failed: %d discs", res.Samples)
	}
	wantR := geo.MaxDistanceKm(10 * time.Millisecond)
	if r := res.Sites[0].Disc.RadiusKm; r != wantR {
		t.Fatalf("kept radius %f, want min-RTT radius %f", r, wantR)
	}
}

func TestUnusableSamplesDropped(t *testing.T) {
	samples := []Sample{
		{VP: "a", Loc: cityLoc(t, "Tokyo"), RTT: 0},
		{VP: "b", Loc: cityLoc(t, "Tokyo"), RTT: -time.Second},
	}
	res := Analyze(samples, Options{})
	if res.Samples != 0 || len(res.Sites) != 0 || res.Anycast {
		t.Fatalf("unusable samples should yield empty result: %+v", res)
	}
	if Detect(samples, Options{}) {
		t.Fatal("Detect on unusable samples")
	}
}

func TestProcessingAllowanceShrinksDiscs(t *testing.T) {
	// With a processing allowance, two moderately distant sites become
	// separable that raw RTTs cannot separate.
	s := []Sample{
		{VP: "a", Loc: cityLoc(t, "Madrid"), RTT: 8 * time.Millisecond},
		{VP: "b", Loc: cityLoc(t, "Stockholm"), RTT: 8 * time.Millisecond},
	}
	// Raw: radii 800 km each, centres ~2600 km apart: disjoint already.
	// Inflate RTTs so they overlap.
	s[0].RTT, s[1].RTT = 14*time.Millisecond, 14*time.Millisecond
	if Detect(s, Options{}) {
		t.Fatal("precondition: overlapping without allowance")
	}
	if !Detect(s, Options{ProcessingAllowance: 4 * time.Millisecond}) {
		t.Fatal("allowance should shrink discs into disjointness")
	}
}

func TestDetectMatchesNaiveReference(t *testing.T) {
	// Property: the fast detector (common-point certificate + ordered
	// scan) agrees with the brute-force reference on random inputs.
	rng := rand.New(rand.NewSource(42))
	all := cities.Default().All()
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(12)
		samples := make([]Sample, n)
		for i := range samples {
			c := all[rng.Intn(len(all))]
			samples[i] = Sample{
				VP:  c.Name,
				Loc: c.Location,
				RTT: time.Duration(1+rng.Intn(120)) * time.Millisecond,
			}
		}
		if got, want := Detect(samples, Options{}), DetectNaive(samples, Options{}); got != want {
			t.Fatalf("trial %d: fast=%v naive=%v for %+v", trial, got, want, samples)
		}
	}
}

func TestEnumerationInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		all := cities.Default().All()
		n := 2 + int(nRaw%14)
		samples := make([]Sample, n)
		for i := range samples {
			c := all[rng.Intn(len(all))]
			samples[i] = Sample{VP: c.Name, Loc: c.Location,
				RTT: time.Duration(1+rng.Intn(150)) * time.Millisecond}
		}
		res := Analyze(samples, Options{})
		// 1. Site count bounded by distinct VPs.
		if len(res.Sites) > res.Samples {
			return false
		}
		// 2. Chosen discs pairwise disjoint.
		for a := 0; a < len(res.Sites); a++ {
			for b := a + 1; b < len(res.Sites); b++ {
				if res.Sites[a].Disc.Overlaps(res.Sites[b].Disc) {
					return false
				}
			}
		}
		// 3. Anycast ⇔ at least two sites.
		if res.Anycast != (len(res.Sites) >= 2) {
			return false
		}
		// 4. Geolocated city (when found inside) lies within the disc.
		for _, s := range res.Sites {
			if s.CityOK && !s.Disc.Contains(s.City.Location) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestManyVPsEnumerateManySites(t *testing.T) {
	// A CDN with sites in 12 metros observed from VPs in those same
	// metros: enumeration should recover most of them.
	var samples []Sample
	for _, name := range vpCities {
		samples = append(samples, Sample{VP: name, Loc: cityLoc(t, name), RTT: rttFor(15, 1.2)})
	}
	res := Analyze(samples, Options{})
	if !res.Anycast {
		t.Fatal("12-site anycast undetected")
	}
	if len(res.Sites) < 9 {
		t.Fatalf("enumerated %d sites of 12 well-separated ones", len(res.Sites))
	}
}

func BenchmarkDetectUnicast(b *testing.B) {
	samples := unicastSamples(b, cityLoc(b, "Warsaw"), vpCities)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Detect(samples, Options{})
	}
}

// BenchmarkIGreedyOrdering is the MiGreedy ablation (DESIGN.md §6): the
// common-point certificate vs the naive pairwise scan, on the dominant
// unicast workload.
func BenchmarkIGreedyOrdering(b *testing.B) {
	big := make([]Sample, 0, 200)
	all := cities.Default().All()
	warsaw := cityLoc(b, "Warsaw")
	for i := 0; i < 200; i++ {
		c := all[(i*7)%len(all)]
		big = append(big, Sample{VP: c.Name, Loc: c.Location,
			RTT: rttFor(c.Location.DistanceKm(warsaw), 1.25)})
	}
	b.Run("certificate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if Detect(big, Options{}) {
				b.Fatal("unicast misdetected")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if DetectNaive(big, Options{}) {
				b.Fatal("unicast misdetected")
			}
		}
	})
}

func BenchmarkAnalyzeAnycast(b *testing.B) {
	var samples []Sample
	for _, name := range vpCities {
		samples = append(samples, Sample{VP: name, Loc: cityLoc(b, name), RTT: rttFor(15, 1.2)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(samples, Options{})
	}
}
