package report

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"github.com/laces-project/laces/internal/core"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
	"github.com/laces-project/laces/internal/query"
)

var (
	docsOnce sync.Once
	docA     *core.Document // day 100
	docB     *core.Document // day 107
	docsErr  error
)

// censusDocs produces two real census documents a week apart on the test
// world, so diffs exercise genuine day-over-day churn.
func censusDocs(t *testing.T) (*core.Document, *core.Document) {
	t.Helper()
	docsOnce.Do(func() {
		w, err := netsim.New(netsim.TestConfig())
		if err != nil {
			docsErr = err
			return
		}
		dep, err := platform.Tangled(w, netsim.PolicyUnmodified)
		if err != nil {
			docsErr = err
			return
		}
		pipe, err := core.NewPipeline(w, core.Config{
			Deployment: dep,
			GCDVPs: func(day int, v6 bool) ([]netsim.VP, error) {
				return platform.Ark(w, day, v6)
			},
		})
		if err != nil {
			docsErr = err
			return
		}
		a, err := pipe.RunDaily(100, false, core.DayOptions{})
		if err != nil {
			docsErr = err
			return
		}
		b, err := pipe.RunDaily(107, false, core.DayOptions{})
		if err != nil {
			docsErr = err
			return
		}
		docA, docB = a.Document(), b.Document()
	})
	if docsErr != nil {
		t.Fatal(docsErr)
	}
	return docA, docB
}

func TestDiffSelfIsQuiet(t *testing.T) {
	a, _ := censusDocs(t)
	d := Diff(a, a)
	if len(d.Deltas) != 0 {
		t.Fatalf("self-diff reported %d changes: %+v", len(d.Deltas), d.Deltas[0])
	}
	if d.GBefore != d.GAfter || d.MBefore != d.MAfter {
		t.Fatal("self-diff headline counts differ")
	}
}

func TestDiffWeekApartShowsChurn(t *testing.T) {
	a, b := censusDocs(t)
	d := Diff(a, b)
	// The rotating FP pool and temporary anycast guarantee movement over
	// a week (§5.1.6: the anycast-based set has high variability).
	if d.Counts[Appeared] == 0 && d.Counts[Withdrawn] == 0 {
		t.Fatal("a week of census churn produced no appeared/withdrawn prefixes")
	}
	// Every delta's prefix must exist on the relevant side.
	aIdx := make(map[string]bool)
	for _, e := range a.Entries {
		aIdx[e.Prefix] = true
	}
	bIdx := make(map[string]bool)
	for _, e := range b.Entries {
		bIdx[e.Prefix] = true
	}
	for _, delta := range d.Deltas {
		switch delta.Kind {
		case Appeared:
			if aIdx[delta.Prefix] || !bIdx[delta.Prefix] {
				t.Fatalf("appeared prefix %s membership wrong", delta.Prefix)
			}
		case Withdrawn:
			if !aIdx[delta.Prefix] || bIdx[delta.Prefix] {
				t.Fatalf("withdrawn prefix %s membership wrong", delta.Prefix)
			}
		default:
			if !aIdx[delta.Prefix] || !bIdx[delta.Prefix] {
				t.Fatalf("%v prefix %s must be on both sides", delta.Kind, delta.Prefix)
			}
		}
	}
}

func TestDiffDirectionality(t *testing.T) {
	a, b := censusDocs(t)
	fwd := Diff(a, b)
	rev := Diff(b, a)
	if fwd.Counts[Appeared] != rev.Counts[Withdrawn] || fwd.Counts[Withdrawn] != rev.Counts[Appeared] {
		t.Fatalf("appeared/withdrawn not symmetric: fwd=%v rev=%v", fwd.Counts, rev.Counts)
	}
	if fwd.Counts[Confirmed] != rev.Counts[Unconfirmed] {
		t.Fatalf("confirmed/unconfirmed not symmetric: fwd=%v rev=%v", fwd.Counts, rev.Counts)
	}
}

func TestDiffRender(t *testing.T) {
	a, b := censusDocs(t)
	var buf bytes.Buffer
	if err := Diff(a, b).Render(&buf, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "census diff") || !strings.Contains(out, "G ") {
		t.Fatalf("render missing headline:\n%s", out)
	}
}

func TestDiffSyntheticTransitions(t *testing.T) {
	old := &core.Document{Date: "2024-06-01", GCount: 2, MCount: 1, Entries: []core.DocumentEntry{
		{Prefix: "192.0.2.0/24", OriginASN: 1, ACProtocols: []string{"ICMP"}, GCDAnycast: true, GCDSites: 4},
		{Prefix: "198.51.100.0/24", OriginASN: 2, ACProtocols: []string{"ICMP"}},
		{Prefix: "203.0.113.0/24", OriginASN: 3, GCDAnycast: true, GCDSites: 10},
	}}
	new := &core.Document{Date: "2024-06-02", GCount: 2, MCount: 1, Entries: []core.DocumentEntry{
		{Prefix: "192.0.2.0/24", OriginASN: 1, ACProtocols: []string{"ICMP"}, GCDAnycast: false},                // 𝒢 → ℳ
		{Prefix: "198.51.100.0/24", OriginASN: 2, ACProtocols: []string{"ICMP"}, GCDAnycast: true, GCDSites: 3}, // ℳ → 𝒢
		{Prefix: "203.0.113.0/24", OriginASN: 3, GCDAnycast: true, GCDSites: 22},                                // growth
		{Prefix: "192.0.2.128/25", OriginASN: 9, ACProtocols: []string{"TCP"}},                                  // appeared
	}}
	d := Diff(old, new)
	want := map[Change]int{Appeared: 1, Confirmed: 1, Unconfirmed: 1, SitesChanged: 1}
	for k, n := range want {
		if d.Counts[k] != n {
			t.Errorf("%v = %d, want %d", k, d.Counts[k], n)
		}
	}
	if d.Counts[Withdrawn] != 0 {
		t.Errorf("unexpected withdrawals: %d", d.Counts[Withdrawn])
	}
}

func TestDiffFlagTransitions(t *testing.T) {
	old := &core.Document{Date: "a", Entries: []core.DocumentEntry{
		{Prefix: "192.0.2.0/24", ACProtocols: []string{"ICMP"}},
	}}
	new := &core.Document{Date: "b", Entries: []core.DocumentEntry{
		{Prefix: "192.0.2.0/24", ACProtocols: []string{"ICMP"}, GlobalBGP: true},
	}}
	d := Diff(old, new)
	if d.Counts[FlagsChanged] != 1 {
		t.Fatalf("flag transition not detected: %v", d.Counts)
	}
	if !strings.Contains(d.Deltas[0].Note, "global-BGP") {
		t.Fatalf("note %q does not mention global-BGP", d.Deltas[0].Note)
	}
}

func TestDashboardRenders(t *testing.T) {
	a, b := censusDocs(t)
	var buf bytes.Buffer
	if err := Dashboard(&buf, []*core.Document{b, a}); err != nil { // order-insensitive
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LACeS census dashboard", "detections per snapshot",
		"confidence (receiving VPs)", "largest origin ASes", "churn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	// The latest snapshot must be the header's date (sorted internally).
	if !strings.Contains(out, b.Date) {
		t.Fatal("dashboard header missing latest date")
	}
}

func TestDashboardEmpty(t *testing.T) {
	if err := Dashboard(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("empty dashboard should error")
	}
	if err := NewDashboardBuilder().Render(&bytes.Buffer{}); err == nil {
		t.Fatal("empty builder should error")
	}
}

// TestDashboardBuilderMatchesBatch pins the streaming port: feeding the
// builder day by day renders exactly what the materialized Dashboard
// renders.
func TestDashboardBuilderMatchesBatch(t *testing.T) {
	a, b := censusDocs(t)
	var batch bytes.Buffer
	if err := Dashboard(&batch, []*core.Document{a, b}); err != nil {
		t.Fatal(err)
	}
	builder := NewDashboardBuilder()
	builder.Add(a)
	builder.Add(b)
	var streamed bytes.Buffer
	if err := builder.Render(&streamed); err != nil {
		t.Fatal(err)
	}
	if batch.String() != streamed.String() {
		t.Fatalf("streamed dashboard diverges from batch:\n--- batch\n%s\n--- streamed\n%s",
			batch.String(), streamed.String())
	}
	if builder.Snapshots() != 2 {
		t.Fatalf("builder counted %d snapshots", builder.Snapshots())
	}
}

// TestDashboardShowsProbeBudget pins the published R3 cost surface.
func TestDashboardShowsProbeBudget(t *testing.T) {
	a, b := censusDocs(t)
	if a.ProbesAnycastStage <= 0 || a.ProbesGCDStage <= 0 {
		t.Fatalf("census document lacks probe accounting: %+v", a)
	}
	var buf bytes.Buffer
	if err := Dashboard(&buf, []*core.Document{a, b}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "probing cost (R3)") {
		t.Fatalf("dashboard does not surface the probe budget:\n%s", buf.String())
	}
}

// TestDiffOrderingNumeric pins the satellite fix on the diff tool's
// ordering: within a change kind, deltas sort numerically by prefix.
func TestDiffOrderingNumeric(t *testing.T) {
	old := &core.Document{Date: "a", Family: "ipv4"}
	new := &core.Document{Date: "b", Family: "ipv4", Entries: []core.DocumentEntry{
		{Prefix: "2.0.0.0/24", ACProtocols: []string{"ICMP"}},
		{Prefix: "10.0.0.0/24", ACProtocols: []string{"ICMP"}},
		{Prefix: "100.0.0.0/24", ACProtocols: []string{"ICMP"}},
	}}
	d := Diff(old, new)
	if len(d.Deltas) != 3 {
		t.Fatalf("want 3 appeared, got %d", len(d.Deltas))
	}
	want := []string{"2.0.0.0/24", "10.0.0.0/24", "100.0.0.0/24"}
	for i, delta := range d.Deltas {
		if delta.Prefix != want[i] {
			t.Fatalf("delta %d = %s, want %s (numeric order)", i, delta.Prefix, want[i])
		}
	}
}

// TestDiffSymmetryProperty checks Appeared/Withdrawn and
// Confirmed/Unconfirmed duality on randomized documents.
func TestDiffSymmetryProperty(t *testing.T) {
	gen := func(seed int64) *core.Document {
		rng := rand.New(rand.NewSource(seed))
		d := &core.Document{Date: fmt.Sprintf("seed-%d", seed)}
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			e := core.DocumentEntry{
				Prefix:    fmt.Sprintf("10.%d.%d.0/24", rng.Intn(8), rng.Intn(8)),
				OriginASN: uint32(rng.Intn(5) + 1),
				GCDSites:  rng.Intn(20),
			}
			if rng.Intn(2) == 0 {
				e.ACProtocols = []string{"ICMP"}
			}
			e.GCDAnycast = rng.Intn(2) == 0
			e.PartialAnycast = rng.Intn(8) == 0
			e.GlobalBGP = rng.Intn(8) == 0
			// Prefixes must be unique within a document.
			dup := false
			for _, prev := range d.Entries {
				if prev.Prefix == e.Prefix {
					dup = true
					break
				}
			}
			if !dup {
				d.Entries = append(d.Entries, e)
			}
		}
		return d
	}
	f := func(sa, sb int64) bool {
		a, b := gen(sa), gen(sb)
		fwd, rev := Diff(a, b), Diff(b, a)
		return fwd.Counts[Appeared] == rev.Counts[Withdrawn] &&
			fwd.Counts[Withdrawn] == rev.Counts[Appeared] &&
			fwd.Counts[Confirmed] == rev.Counts[Unconfirmed] &&
			fwd.Counts[Unconfirmed] == rev.Counts[Confirmed] &&
			fwd.Counts[SitesChanged] == rev.Counts[SitesChanged] &&
			fwd.Counts[FlagsChanged] == rev.Counts[FlagsChanged]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestChurnAndEvents renders the index-backed longitudinal section and
// checks the load-bearing lines are present and bounded.
func TestChurnAndEvents(t *testing.T) {
	series := []query.SeriesPoint{
		{Day: 0, Entries: 100, GCDConfirmed: 60, AnycastOnly: 40},
		{Day: 1, Entries: 101, GCDConfirmed: 61, AnycastOnly: 40, Added: 3, Removed: 2, ChurnRate: 0.0495},
		{Day: 2, Entries: 99, GCDConfirmed: 60, AnycastOnly: 39, Added: 1, Removed: 3, ChurnRate: 0.0404},
	}
	events := []query.Event{
		{Kind: query.EventOnset, Family: "ipv4", Prefix: "2.0.0.0/24", Day: 1},
		{Kind: query.EventSiteChurn, Family: "ipv4", Prefix: "10.0.0.0/24", Day: 2, PrevDay: 1, PrevSites: 3, Sites: 5},
	}
	var buf bytes.Buffer
	if err := ChurnAndEvents(&buf, series, events, 2, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"churn per day",
		"events: 2 total",
		"onset 1",
		"site-churn 1",
		"sites 3 → 5",
		"day    2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("section missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "day    0") {
		t.Fatalf("maxDays=2 should have dropped day 0:\n%s", out)
	}
}

// TestDashboardGovernanceSection pins the responsible-probing lines: a
// stream with responsibility blocks renders the governance summary, an
// ungoverned stream does not.
func TestDashboardGovernanceSection(t *testing.T) {
	a, b := censusDocs(t)
	var plain bytes.Buffer
	if err := Dashboard(&plain, []*core.Document{a, b}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "governance:") {
		t.Fatal("ungoverned dashboard shows a governance section")
	}

	governed := a.DeepCopy()
	governed.Responsibility = &core.Responsibility{
		BudgetDailyProbes: 1000,
		ProbesDemanded:    900,
		ProbesSpent:       700,
		ProbesSkipped:     200,
		OptOutTargets:     3,
		OptOutProbes:      48,
		BudgetTargets:     9,
		BudgetRemaining:   300,
		RateSteps:         3,
		RateEffective:     1250,
	}
	var buf bytes.Buffer
	if err := Dashboard(&buf, []*core.Document{governed, b.DeepCopy()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"governance: 1 of 2 snapshots governed",
		"opt-out 3 decisions / 48 probes",
		"abuse-complaint rate feedback on 1 snapshots (deepest step 1/8 rate)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	// The latest document (b) is ungoverned, so no latest-day budget line.
	if strings.Contains(out, "latest day budget remaining") {
		t.Fatal("latest-day line shown for ungoverned latest document")
	}
}
