package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/laces-project/laces/internal/core"
)

// DashboardBuilder accumulates a census-document stream into the text
// dashboard, holding O(1) documents no matter how many days flow
// through: per-snapshot trend rows are tiny digests, and only the last
// two documents are retained (composition and churn need them). Feed
// days in date order — exactly what an archive.Range delivers.
type DashboardBuilder struct {
	rows         []trendRow
	prev, latest *core.Document
	// Cumulative R3 probing cost over the stream (the published
	// responsible-use ledger).
	probesAnycast, probesGCD, probesTraceroute int64
	// Cumulative governance accounting over the stream, plus how many
	// snapshots carried a responsibility block at all.
	governedDays                          int
	respDemanded, respSpent, respSkipped  int64
	respOptOutTargets, respBudgetTargets  int
	respOptOutProbes                      int64
	respRateSteppedDays, respMaxRateSteps int
}

// trendRow is the per-snapshot digest behind the detection-trend bars.
type trendRow struct {
	date string
	g, m int
}

// NewDashboardBuilder returns an empty builder.
func NewDashboardBuilder() *DashboardBuilder { return &DashboardBuilder{} }

// Add folds one day's document into the dashboard. The builder retains
// doc until the next Add; callers must not mutate it.
func (b *DashboardBuilder) Add(doc *core.Document) {
	b.rows = append(b.rows, trendRow{date: doc.Date, g: doc.GCount, m: doc.MCount})
	b.probesAnycast += doc.ProbesAnycastStage
	b.probesGCD += doc.ProbesGCDStage
	b.probesTraceroute += doc.ProbesTracerouteStage
	if r := doc.Responsibility; r != nil {
		b.governedDays++
		b.respDemanded += r.ProbesDemanded
		b.respSpent += r.ProbesSpent
		b.respSkipped += r.ProbesSkipped
		b.respOptOutTargets += r.OptOutTargets
		b.respOptOutProbes += r.OptOutProbes
		b.respBudgetTargets += r.BudgetTargets
		if r.RateSteps > 0 {
			b.respRateSteppedDays++
			if r.RateSteps > b.respMaxRateSteps {
				b.respMaxRateSteps = r.RateSteps
			}
		}
	}
	b.prev, b.latest = b.latest, doc
}

// Snapshots reports how many days have been folded in.
func (b *DashboardBuilder) Snapshots() int { return len(b.rows) }

// Render writes the dashboard.
func (b *DashboardBuilder) Render(w io.Writer) error {
	if b.latest == nil {
		return fmt.Errorf("report: dashboard needs at least one census document")
	}
	latest := b.latest
	if _, err := fmt.Fprintf(w, "LACeS census dashboard — %s (%s), %d snapshots\n\n",
		latest.Date, latest.Family, len(b.rows)); err != nil {
		return err
	}

	// Trend: G and M counts per snapshot as scaled bars.
	maxCount := 1
	for _, row := range b.rows {
		if row.g+row.m > maxCount {
			maxCount = row.g + row.m
		}
	}
	if _, err := fmt.Fprintln(w, "detections per snapshot (█ GCD-confirmed, ░ anycast-based only):"); err != nil {
		return err
	}
	for _, row := range b.rows {
		const width = 48
		g := row.g * width / maxCount
		m := row.m * width / maxCount
		if _, err := fmt.Fprintf(w, "  %s  %s%s %6d G %6d M\n",
			row.date, strings.Repeat("█", g), strings.Repeat("░", m), row.g, row.m); err != nil {
			return err
		}
	}

	// Composition of the latest snapshot.
	var conf2, conf3, confMore, partial, globalBGP int
	perAS := make(map[uint32]int)
	for i := range latest.Entries {
		e := &latest.Entries[i]
		switch {
		case e.MaxReceivers == 2:
			conf2++
		case e.MaxReceivers == 3:
			conf3++
		case e.MaxReceivers > 3:
			confMore++
		}
		if e.PartialAnycast {
			partial++
		}
		if e.GlobalBGP {
			globalBGP++
		}
		if e.InG() {
			perAS[e.OriginASN]++
		}
	}
	if _, err := fmt.Fprintf(w, "\nconfidence (receiving VPs): 2 → %d (low, §5.1.3), 3 → %d, 4+ → %d\n",
		conf2, conf3, confMore); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "annotations: partial-anycast %d, global-BGP unicast %d\n",
		partial, globalBGP); err != nil {
		return err
	}

	// R3 probing cost, from the published per-stage accounting: the
	// responsible-use budget is visible in the artifact, not just in the
	// runner's memory.
	if _, err := fmt.Fprintf(w, "probing cost (R3): latest day %s probes; Σ %d snapshots: %s anycast + %s gcd + %s traceroute\n",
		fmtCount(latest.ProbesTotal()), len(b.rows),
		fmtCount(b.probesAnycast), fmtCount(b.probesGCD), fmtCount(b.probesTraceroute)); err != nil {
		return err
	}

	// Responsible-probing governance (the R3 pillar beyond raw cost):
	// budget reconciliation, opt-out honouring and rate feedback, from
	// the documents' published responsibility blocks.
	if b.governedDays > 0 {
		if _, err := fmt.Fprintf(w, "governance: %d of %d snapshots governed; demand %s → spent %s, skipped %s (opt-out %d decisions / %s probes, budget %d decisions)\n",
			b.governedDays, len(b.rows), fmtCount(b.respDemanded), fmtCount(b.respSpent),
			fmtCount(b.respSkipped), b.respOptOutTargets, fmtCount(b.respOptOutProbes),
			b.respBudgetTargets); err != nil {
			return err
		}
		if r := latest.Responsibility; r != nil {
			rem := "unlimited"
			if r.BudgetRemaining >= 0 {
				rem = fmtCount(r.BudgetRemaining) + " probes"
			}
			if _, err := fmt.Fprintf(w, "governance: latest day budget remaining %s", rem); err != nil {
				return err
			}
			if r.RateSteps > 0 {
				if _, err := fmt.Fprintf(w, "; rate stepped down %d× to %.0f targets/s", r.RateSteps, r.RateEffective); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if b.respRateSteppedDays > 0 {
			if _, err := fmt.Fprintf(w, "governance: abuse-complaint rate feedback on %d snapshots (deepest step 1/%d rate)\n",
				b.respRateSteppedDays, 1<<b.respMaxRateSteps); err != nil {
				return err
			}
		}
	}

	// Top origins (the Table 5 view).
	type asCount struct {
		asn uint32
		n   int
	}
	tops := make([]asCount, 0, len(perAS))
	for asn, n := range perAS {
		tops = append(tops, asCount{asn, n})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].n != tops[j].n {
			return tops[i].n > tops[j].n
		}
		return tops[i].asn < tops[j].asn
	})
	if len(tops) > 5 {
		tops = tops[:5]
	}
	if _, err := fmt.Fprintln(w, "\nlargest origin ASes in G:"); err != nil {
		return err
	}
	for i, t := range tops {
		if _, err := fmt.Fprintf(w, "  %d. AS%-8d %d prefixes\n", i+1, t.asn, t.n); err != nil {
			return err
		}
	}

	// Churn between the last two snapshots.
	if b.prev != nil {
		d := Diff(b.prev, latest)
		if _, err := fmt.Fprintf(w, "\nchurn %s → %s: +%d appeared, −%d withdrawn, %d confirmed, %d unconfirmed\n",
			d.From, d.To, d.Counts[Appeared], d.Counts[Withdrawn],
			d.Counts[Confirmed], d.Counts[Unconfirmed]); err != nil {
			return err
		}
	}
	return nil
}

// fmtCount renders a probe count with thousands separators.
func fmtCount(n int64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

// Dashboard renders a text dashboard over a materialized slice of census
// documents — the information the paper's public dashboard surfaces:
// detection-count trends per method, the largest origin ASes, confidence
// composition, churn between consecutive snapshots, and the published R3
// probing budget. Streaming consumers (the archive CLI, the HTTP layer)
// should feed a DashboardBuilder day by day instead of materializing
// every document.
func Dashboard(w io.Writer, docs []*core.Document) error {
	if len(docs) == 0 {
		return fmt.Errorf("report: dashboard needs at least one census document")
	}
	sorted := make([]*core.Document, len(docs))
	copy(sorted, docs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Date < sorted[j].Date })
	b := NewDashboardBuilder()
	for _, d := range sorted {
		b.Add(d)
	}
	return b.Render(w)
}
