package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/laces-project/laces/internal/core"
)

// Dashboard renders a text dashboard over a series of census documents —
// the information the paper's public dashboard surfaces: detection-count
// trends per method, the largest origin ASes, confidence composition, and
// churn between consecutive snapshots.
func Dashboard(w io.Writer, docs []*core.Document) error {
	if len(docs) == 0 {
		return fmt.Errorf("report: dashboard needs at least one census document")
	}
	sorted := make([]*core.Document, len(docs))
	copy(sorted, docs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Date < sorted[j].Date })

	latest := sorted[len(sorted)-1]
	if _, err := fmt.Fprintf(w, "LACeS census dashboard — %s (%s), %d snapshots\n\n",
		latest.Date, latest.Family, len(sorted)); err != nil {
		return err
	}

	// Trend: G and M counts per snapshot as scaled bars.
	maxCount := 1
	for _, d := range sorted {
		if d.GCount+d.MCount > maxCount {
			maxCount = d.GCount + d.MCount
		}
	}
	if _, err := fmt.Fprintln(w, "detections per snapshot (█ GCD-confirmed, ░ anycast-based only):"); err != nil {
		return err
	}
	for _, d := range sorted {
		const width = 48
		g := d.GCount * width / maxCount
		m := d.MCount * width / maxCount
		if _, err := fmt.Fprintf(w, "  %s  %s%s %6d G %6d M\n",
			d.Date, strings.Repeat("█", g), strings.Repeat("░", m), d.GCount, d.MCount); err != nil {
			return err
		}
	}

	// Composition of the latest snapshot.
	var conf2, conf3, confMore, partial, globalBGP int
	perAS := make(map[uint32]int)
	for i := range latest.Entries {
		e := &latest.Entries[i]
		switch {
		case e.MaxReceivers == 2:
			conf2++
		case e.MaxReceivers == 3:
			conf3++
		case e.MaxReceivers > 3:
			confMore++
		}
		if e.PartialAnycast {
			partial++
		}
		if e.GlobalBGP {
			globalBGP++
		}
		if e.InG() {
			perAS[e.OriginASN]++
		}
	}
	if _, err := fmt.Fprintf(w, "\nconfidence (receiving VPs): 2 → %d (low, §5.1.3), 3 → %d, 4+ → %d\n",
		conf2, conf3, confMore); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "annotations: partial-anycast %d, global-BGP unicast %d\n",
		partial, globalBGP); err != nil {
		return err
	}

	// Top origins (the Table 5 view).
	type asCount struct {
		asn uint32
		n   int
	}
	tops := make([]asCount, 0, len(perAS))
	for asn, n := range perAS {
		tops = append(tops, asCount{asn, n})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].n != tops[j].n {
			return tops[i].n > tops[j].n
		}
		return tops[i].asn < tops[j].asn
	})
	if len(tops) > 5 {
		tops = tops[:5]
	}
	if _, err := fmt.Fprintln(w, "\nlargest origin ASes in G:"); err != nil {
		return err
	}
	for i, t := range tops {
		if _, err := fmt.Fprintf(w, "  %d. AS%-8d %d prefixes\n", i+1, t.asn, t.n); err != nil {
			return err
		}
	}

	// Churn between the last two snapshots.
	if len(sorted) >= 2 {
		d := Diff(sorted[len(sorted)-2], latest)
		if _, err := fmt.Fprintf(w, "\nchurn %s → %s: +%d appeared, −%d withdrawn, %d confirmed, %d unconfirmed\n",
			d.From, d.To, d.Counts[Appeared], d.Counts[Withdrawn],
			d.Counts[Confirmed], d.Counts[Unconfirmed]); err != nil {
			return err
		}
	}
	return nil
}
