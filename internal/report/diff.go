// Package report implements downstream tooling over published census
// documents: day-over-day diffing and a text dashboard. The paper
// publishes daily censuses to a public repository with a companion
// dashboard [manycast.net]; this package is the consumer side — the
// operations the project's own monitoring and its data users perform on
// the snapshots (new and withdrawn anycast, confidence changes,
// deployment growth, temporary-anycast churn).
package report

import (
	"fmt"
	"io"
	"sort"

	"github.com/laces-project/laces/internal/core"
)

// Change classifies one prefix's day-over-day transition.
type Change uint8

// Change kinds.
const (
	// Appeared: the prefix entered the census (switched to anycast, or a
	// new false positive — §7's daily-AC value analysis).
	Appeared Change = iota
	// Withdrawn: the prefix left the census entirely.
	Withdrawn
	// Confirmed: moved ℳ → 𝒢 (GCD now agrees).
	Confirmed
	// Unconfirmed: moved 𝒢 → ℳ (GCD no longer agrees).
	Unconfirmed
	// SitesChanged: the enumerated site count moved materially
	// (deployment growth or shrinkage — §7 tracks e.g. the .cz
	// expansion).
	SitesChanged
	// FlagsChanged: partial-anycast or global-BGP annotations changed.
	FlagsChanged
)

// String names the change kind.
func (c Change) String() string {
	switch c {
	case Appeared:
		return "appeared"
	case Withdrawn:
		return "withdrawn"
	case Confirmed:
		return "confirmed"
	case Unconfirmed:
		return "unconfirmed"
	case SitesChanged:
		return "sites-changed"
	case FlagsChanged:
		return "flags-changed"
	default:
		return fmt.Sprintf("Change(%d)", uint8(c))
	}
}

// Delta is one prefix's transition between two census documents.
type Delta struct {
	Prefix string
	Origin uint32
	Kind   Change
	// SitesBefore/SitesAfter accompany SitesChanged.
	SitesBefore, SitesAfter int
	// Note is a short human-readable explanation.
	Note string
}

// DiffResult summarises the transition between two census days.
type DiffResult struct {
	From, To string // dates
	// Counts of each change kind.
	Counts map[Change]int
	// Deltas lists every change, ordered by kind then prefix.
	Deltas []Delta
	// GBefore/GAfter and MBefore/MAfter are the headline counts.
	GBefore, GAfter, MBefore, MAfter int
}

// siteDeltaThreshold is the minimum enumerated-site movement reported as
// SitesChanged; ±1 site is within enumeration noise (§5.2: counts are
// lower bounds that vary with participating VPs).
const siteDeltaThreshold = 2

// Diff compares two census documents (typically consecutive days, same
// family).
func Diff(old, new *core.Document) *DiffResult {
	r := &DiffResult{
		From:    old.Date,
		To:      new.Date,
		Counts:  make(map[Change]int),
		GBefore: old.GCount, GAfter: new.GCount,
		MBefore: old.MCount, MAfter: new.MCount,
	}
	oldBy := entryIndex(old)
	newBy := entryIndex(new)

	add := func(d Delta) {
		r.Counts[d.Kind]++
		r.Deltas = append(r.Deltas, d)
	}

	for p, oe := range oldBy {
		ne, ok := newBy[p]
		if !ok {
			add(Delta{Prefix: p, Origin: oe.OriginASN, Kind: Withdrawn,
				Note: "no longer detected by any method"})
			continue
		}
		switch {
		case oe.InM() && ne.InG():
			add(Delta{Prefix: p, Origin: ne.OriginASN, Kind: Confirmed,
				Note: "GCD now confirms the anycast-based candidate"})
		case oe.InG() && ne.InM():
			add(Delta{Prefix: p, Origin: ne.OriginASN, Kind: Unconfirmed,
				Note: "GCD no longer confirms; anycast-based only"})
		}
		if oe.InG() && ne.InG() && abs(ne.GCDSites-oe.GCDSites) >= siteDeltaThreshold {
			add(Delta{Prefix: p, Origin: ne.OriginASN, Kind: SitesChanged,
				SitesBefore: oe.GCDSites, SitesAfter: ne.GCDSites,
				Note: fmt.Sprintf("enumerated sites %d → %d", oe.GCDSites, ne.GCDSites)})
		}
		if oe.PartialAnycast != ne.PartialAnycast || oe.GlobalBGP != ne.GlobalBGP {
			add(Delta{Prefix: p, Origin: ne.OriginASN, Kind: FlagsChanged,
				Note: flagNote(oe, ne)})
		}
	}
	for p, ne := range newBy {
		if _, ok := oldBy[p]; !ok {
			add(Delta{Prefix: p, Origin: ne.OriginASN, Kind: Appeared,
				Note: appearNote(ne)})
		}
	}

	sort.Slice(r.Deltas, func(i, j int) bool {
		if r.Deltas[i].Kind != r.Deltas[j].Kind {
			return r.Deltas[i].Kind < r.Deltas[j].Kind
		}
		// Canonical numeric prefix order, matching the census itself —
		// not string order, which puts 10.0.0.0/24 before 2.0.0.0/24.
		return core.ComparePrefixStrings(r.Deltas[i].Prefix, r.Deltas[j].Prefix) < 0
	})
	return r
}

func entryIndex(d *core.Document) map[string]*core.DocumentEntry {
	out := make(map[string]*core.DocumentEntry, len(d.Entries))
	for i := range d.Entries {
		out[d.Entries[i].Prefix] = &d.Entries[i]
	}
	return out
}

func appearNote(e *core.DocumentEntry) string {
	switch {
	case e.InG():
		return "new, GCD-confirmed"
	case e.InM():
		return "new anycast-based candidate (unconfirmed — possible FP or temporary anycast)"
	default:
		return "new partial-anycast annotation"
	}
}

func flagNote(o, n *core.DocumentEntry) string {
	switch {
	case !o.PartialAnycast && n.PartialAnycast:
		return "partial anycast detected inside the prefix"
	case o.PartialAnycast && !n.PartialAnycast:
		return "partial-anycast annotation cleared"
	case !o.GlobalBGP && n.GlobalBGP:
		return "traceroute now confirms global-BGP unicast"
	default:
		return "global-BGP annotation cleared"
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// Render prints the diff: a headline, per-kind counts, and the first
// examples of each kind.
func (r *DiffResult) Render(w io.Writer, maxPerKind int) error {
	if maxPerKind <= 0 {
		maxPerKind = 10
	}
	if _, err := fmt.Fprintf(w, "census diff %s → %s\n  G %d → %d, M %d → %d\n",
		r.From, r.To, r.GBefore, r.GAfter, r.MBefore, r.MAfter); err != nil {
		return err
	}
	for k := Appeared; k <= FlagsChanged; k++ {
		n := r.Counts[k]
		if n == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-13s %d\n", k.String()+":", n); err != nil {
			return err
		}
		shown := 0
		for _, d := range r.Deltas {
			if d.Kind != k || shown >= maxPerKind {
				continue
			}
			shown++
			if _, err := fmt.Fprintf(w, "    %-22s AS%-7d %s\n", d.Prefix, d.Origin, d.Note); err != nil {
				return err
			}
		}
		if n > shown {
			if _, err := fmt.Fprintf(w, "    … and %d more\n", n-shown); err != nil {
				return err
			}
		}
	}
	return nil
}
