package report

import (
	"fmt"
	"io"

	"github.com/laces-project/laces/internal/query"
)

// ChurnAndEvents renders the dashboard's longitudinal section from
// timeline-index query results — aggregate churn per indexed day plus
// the detected event stream — instead of re-scanning census documents.
// maxDays bounds the churn table (most recent days win) and maxEvents
// the event listing; zero means a small default for each.
func ChurnAndEvents(w io.Writer, series []query.SeriesPoint, events []query.Event, maxDays, maxEvents int) error {
	if maxDays <= 0 {
		maxDays = 10
	}
	if maxEvents <= 0 {
		maxEvents = 12
	}
	if _, err := fmt.Fprintln(w, "\nchurn per day (from the timeline index):"); err != nil {
		return err
	}
	start := 0
	if len(series) > maxDays {
		start = len(series) - maxDays
	}
	for _, pt := range series[start:] {
		if _, err := fmt.Fprintf(w, "  day %4d  entries %-6d G %-6d M %-6d +%-4d −%-4d churn %.2f%%\n",
			pt.Day, pt.Entries, pt.GCDConfirmed, pt.AnycastOnly,
			pt.Added, pt.Removed, 100*pt.ChurnRate); err != nil {
			return err
		}
	}

	perKind := make(map[query.EventKind]int, len(events))
	for _, e := range events {
		perKind[e.Kind]++
	}
	if _, err := fmt.Fprintf(w, "\nevents: %d total —", len(events)); err != nil {
		return err
	}
	for i, k := range query.EventKinds() {
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s %s %d", sep, k, perKind[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return RenderEvents(w, events, maxEvents)
}

// RenderEvents writes the event listing capped to the max most recent
// entries (zero: a small default) — the one renderer behind both the
// dashboard section and the CLI's `laces query events`.
func RenderEvents(w io.Writer, events []query.Event, max int) error {
	if max <= 0 {
		max = 12
	}
	start := 0
	if len(events) > max {
		start = len(events) - max
		if _, err := fmt.Fprintf(w, "  (showing the %d most recent)\n", max); err != nil {
			return err
		}
	}
	for _, e := range events[start:] {
		detail := e.Detail()
		if detail != "" {
			detail = "  " + detail
		}
		if _, err := fmt.Fprintf(w, "  day %4d  %-10s %-22s%s\n", e.Day, e.Kind, e.Prefix, detail); err != nil {
			return err
		}
	}
	return nil
}
