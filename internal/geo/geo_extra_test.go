package geo

import (
	"math"
	"testing"
	"time"
)

// Edge-case coverage beyond the main suite: antipodal points, pole
// crossings, date-line wrapping and degenerate discs.

func TestDistanceAntipodal(t *testing.T) {
	a := Coordinate{Lat: 0, Lon: 0}
	b := Coordinate{Lat: 0, Lon: 180}
	want := math.Pi * EarthRadiusKm
	if got := a.DistanceKm(b); math.Abs(got-want) > 1 {
		t.Fatalf("antipodal distance = %f, want %f", got, want)
	}
}

func TestDistancePoles(t *testing.T) {
	north := Coordinate{Lat: 90, Lon: 0}
	south := Coordinate{Lat: -90, Lon: 77} // longitude irrelevant at poles
	want := math.Pi * EarthRadiusKm
	if got := north.DistanceKm(south); math.Abs(got-want) > 1 {
		t.Fatalf("pole-to-pole = %f, want %f", got, want)
	}
	// Any point is a quarter-circumference from the pole at lat 0.
	eq := Coordinate{Lat: 0, Lon: -123}
	if got := north.DistanceKm(eq); math.Abs(got-want/2) > 1 {
		t.Fatalf("pole-to-equator = %f, want %f", got, want/2)
	}
}

func TestDistanceAcrossDateLine(t *testing.T) {
	// Suva (178.4°E) to Apia-ish (-172°W): short hop across the
	// antimeridian, not a trip around the globe.
	a := Coordinate{Lat: -18.1, Lon: 178.4}
	b := Coordinate{Lat: -13.8, Lon: -171.8}
	if got := a.DistanceKm(b); got > 1200 {
		t.Fatalf("date-line crossing = %f km, want ~1100", got)
	}
}

func TestZeroRadiusDisc(t *testing.T) {
	p := Coordinate{Lat: 10, Lon: 20}
	d := Disc{Center: p, RadiusKm: 0}
	if !d.Contains(p) {
		t.Fatal("zero-radius disc must contain its center")
	}
	if d.Contains(Coordinate{Lat: 10.1, Lon: 20}) {
		t.Fatal("zero-radius disc must contain nothing else")
	}
	// Two zero-radius discs at the same point still overlap (share it).
	if !d.Overlaps(Disc{Center: p}) {
		t.Fatal("coincident degenerate discs must overlap")
	}
}

func TestWholeEarthDisc(t *testing.T) {
	d := Disc{Center: Coordinate{Lat: 52, Lon: 5}, RadiusKm: math.Pi * EarthRadiusKm}
	for _, p := range []Coordinate{{-52, -175}, {90, 0}, {-90, 0}} {
		if !d.Contains(p) {
			t.Fatalf("whole-earth disc misses %v", p)
		}
	}
}

func TestMinRTTMonotone(t *testing.T) {
	prev := time.Duration(0)
	for km := 0.0; km <= 20000; km += 500 {
		rtt := MinRTT(km)
		if rtt < prev {
			t.Fatalf("MinRTT not monotone at %f km", km)
		}
		prev = rtt
	}
	if MinRTT(-5) != 0 {
		t.Fatal("negative distance should yield zero RTT")
	}
}

func TestMidpointAntipodal(t *testing.T) {
	// Antipodal midpoints are ill-conditioned; the function must still
	// return a valid coordinate equidistant-ish from both.
	a := Coordinate{Lat: 0, Lon: 0}
	b := Coordinate{Lat: 0, Lon: 180}
	m := Midpoint(a, b)
	if !m.IsValid() {
		t.Fatalf("midpoint invalid: %v", m)
	}
}
