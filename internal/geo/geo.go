// Package geo provides the geographic primitives LACeS relies on: great
// circle distance (GCD) computation on the WGS-84 sphere approximation and
// the conversion between round-trip times and the maximum distance a packet
// can have travelled at the speed of light in fibre.
//
// These primitives underpin the iGreedy latency-based anycast detection
// described in §2.1 of the paper: a reply observed with RTT r at a vantage
// point places the responding host inside a disc of radius
// MaxDistanceKm(r) around that vantage point. Two vantage points whose
// discs do not intersect constitute a "speed-of-light violation" and prove
// the probed address is anycast.
package geo

import (
	"fmt"
	"math"
	"time"
)

const (
	// EarthRadiusKm is the mean Earth radius used for great circle
	// distance computation.
	EarthRadiusKm = 6371.0

	// FibreSpeedKmPerSec is the propagation speed of light in optical
	// fibre (~2/3 of c). iGreedy's default (§2.1).
	FibreSpeedKmPerSec = 200000.0

	// degToRad converts degrees to radians.
	degToRad = math.Pi / 180.0
)

// Coordinate is a point on the Earth surface in decimal degrees.
// The zero value is the Gulf of Guinea origin (0°N 0°E), which is a valid
// coordinate; use IsValid to reject out-of-range values from untrusted
// input.
type Coordinate struct {
	Lat float64 // latitude in [-90, 90]
	Lon float64 // longitude in [-180, 180]
}

// IsValid reports whether the coordinate lies within the valid
// latitude/longitude ranges.
func (c Coordinate) IsValid() bool {
	return c.Lat >= -90 && c.Lat <= 90 && c.Lon >= -180 && c.Lon <= 180 &&
		!math.IsNaN(c.Lat) && !math.IsNaN(c.Lon)
}

// String renders the coordinate as "lat,lon" with 4 decimal digits
// (≈11 m resolution), enough for city-level geolocation.
func (c Coordinate) String() string {
	return fmt.Sprintf("%.4f,%.4f", c.Lat, c.Lon)
}

// DistanceKm returns the great circle distance in kilometres between c and
// other, using the haversine formula. Haversine is numerically stable for
// the small angles that dominate anycast site discrimination (nearby sites)
// while remaining accurate antipodally.
func (c Coordinate) DistanceKm(other Coordinate) float64 {
	lat1 := c.Lat * degToRad
	lat2 := other.Lat * degToRad
	dLat := (other.Lat - c.Lat) * degToRad
	dLon := (other.Lon - c.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// MaxDistanceKm converts a round-trip time into the maximum one-way great
// circle distance the reply can have covered assuming propagation at the
// speed of light in fibre. This deliberately ignores queueing and
// processing delay, so it over-estimates the disc radius and therefore
// under-estimates the number of anycast prefixes and sites (§2.1) — it
// never produces a false "speed-of-light violation".
func MaxDistanceKm(rtt time.Duration) float64 {
	if rtt <= 0 {
		return 0
	}
	return rtt.Seconds() / 2 * FibreSpeedKmPerSec
}

// MinRTT returns the smallest physically possible round-trip time for a
// target at the given one-way distance: the inverse of MaxDistanceKm.
func MinRTT(distanceKm float64) time.Duration {
	if distanceKm <= 0 {
		return 0
	}
	return time.Duration(distanceKm * 2 / FibreSpeedKmPerSec * float64(time.Second))
}

// Disc is a spherical cap: every point within RadiusKm great circle
// kilometres of Center. iGreedy represents each vantage point measurement
// as a disc that must contain the responding anycast site.
type Disc struct {
	Center   Coordinate
	RadiusKm float64
}

// Contains reports whether p lies inside the disc (boundary inclusive).
func (d Disc) Contains(p Coordinate) bool {
	return d.Center.DistanceKm(p) <= d.RadiusKm
}

// Overlaps reports whether two discs share at least one point. Two
// non-overlapping discs cannot contain the same host, which is exactly the
// speed-of-light violation iGreedy looks for.
func (d Disc) Overlaps(other Disc) bool {
	return d.Center.DistanceKm(other.Center) <= d.RadiusKm+other.RadiusKm
}

// Midpoint returns the coordinate halfway along the great circle segment
// between a and b. Used by the simulator to place intermediate
// infrastructure and by tests.
func Midpoint(a, b Coordinate) Coordinate {
	lat1 := a.Lat * degToRad
	lon1 := a.Lon * degToRad
	lat2 := b.Lat * degToRad
	lon2 := b.Lon * degToRad

	bx := math.Cos(lat2) * math.Cos(lon2-lon1)
	by := math.Cos(lat2) * math.Sin(lon2-lon1)
	lat := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon := lon1 + math.Atan2(by, math.Cos(lat1)+bx)

	// Normalise longitude to [-180, 180].
	lonDeg := math.Mod(lon/degToRad+540, 360) - 180
	return Coordinate{Lat: lat / degToRad, Lon: lonDeg}
}
