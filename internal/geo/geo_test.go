package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// Reference city coordinates used across the geo tests.
var (
	amsterdam = Coordinate{Lat: 52.3676, Lon: 4.9041}
	newYork   = Coordinate{Lat: 40.7128, Lon: -74.0060}
	sydney    = Coordinate{Lat: -33.8688, Lon: 151.2093}
	saoPaulo  = Coordinate{Lat: -23.5505, Lon: -46.6333}
	tokyo     = Coordinate{Lat: 35.6762, Lon: 139.6503}
	london    = Coordinate{Lat: 51.5074, Lon: -0.1278}
)

func TestDistanceKnownPairs(t *testing.T) {
	// Expected values computed from published great circle distances;
	// tolerance 1% absorbs the spherical-Earth approximation.
	cases := []struct {
		name string
		a, b Coordinate
		want float64
	}{
		{"AMS-NYC", amsterdam, newYork, 5863},
		{"AMS-LHR", amsterdam, london, 358},
		{"NYC-SYD", newYork, sydney, 15990},
		{"GRU-NRT", saoPaulo, tokyo, 18530},
		{"same", tokyo, tokyo, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.a.DistanceKm(tc.b)
			if tc.want == 0 {
				if got != 0 {
					t.Fatalf("DistanceKm = %v, want 0", got)
				}
				return
			}
			if math.Abs(got-tc.want)/tc.want > 0.01 {
				t.Fatalf("DistanceKm = %.0f, want %.0f ±1%%", got, tc.want)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := clampCoord(lat1, lon1)
		b := clampCoord(lat2, lon2)
		d1 := a.DistanceKm(b)
		d2 := b.DistanceKm(a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceNonNegativeAndBounded(t *testing.T) {
	half := math.Pi * EarthRadiusKm // half Earth circumference
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := clampCoord(lat1, lon1)
		b := clampCoord(lat2, lon2)
		d := a.DistanceKm(b)
		return d >= 0 && d <= half+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceIdentity(t *testing.T) {
	f := func(lat, lon float64) bool {
		a := clampCoord(lat, lon)
		return a.DistanceKm(a) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := clampCoord(lat1, lon1)
		b := clampCoord(lat2, lon2)
		c := clampCoord(lat3, lon3)
		// Allow a small epsilon for floating point error.
		return a.DistanceKm(c) <= a.DistanceKm(b)+b.DistanceKm(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinateValidity(t *testing.T) {
	valid := []Coordinate{{0, 0}, {90, 180}, {-90, -180}, amsterdam}
	for _, c := range valid {
		if !c.IsValid() {
			t.Errorf("IsValid(%v) = false, want true", c)
		}
	}
	invalid := []Coordinate{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}}
	for _, c := range invalid {
		if c.IsValid() {
			t.Errorf("IsValid(%v) = true, want false", c)
		}
	}
}

func TestMaxDistanceKm(t *testing.T) {
	// 100 ms RTT → 50 ms one-way → 10,000 km at 200,000 km/s.
	got := MaxDistanceKm(100 * time.Millisecond)
	if math.Abs(got-10000) > 1e-6 {
		t.Fatalf("MaxDistanceKm(100ms) = %v, want 10000", got)
	}
	if MaxDistanceKm(0) != 0 {
		t.Fatal("MaxDistanceKm(0) should be 0")
	}
	if MaxDistanceKm(-time.Second) != 0 {
		t.Fatal("MaxDistanceKm(negative) should be 0")
	}
}

func TestMinRTTInverseOfMaxDistance(t *testing.T) {
	f := func(ms uint16) bool {
		rtt := time.Duration(ms) * time.Millisecond
		d := MaxDistanceKm(rtt)
		back := MinRTT(d)
		return absDuration(back-rtt) < time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiscContains(t *testing.T) {
	d := Disc{Center: amsterdam, RadiusKm: 400}
	if !d.Contains(london) {
		t.Error("Amsterdam disc of 400km should contain London (~358km)")
	}
	if d.Contains(newYork) {
		t.Error("Amsterdam disc of 400km should not contain New York")
	}
	if !d.Contains(amsterdam) {
		t.Error("disc should contain its own center")
	}
}

func TestDiscOverlaps(t *testing.T) {
	a := Disc{Center: amsterdam, RadiusKm: 200}
	b := Disc{Center: london, RadiusKm: 200}
	if !a.Overlaps(b) {
		t.Error("AMS(200km) and LHR(200km) should overlap (~358km apart)")
	}
	c := Disc{Center: newYork, RadiusKm: 1000}
	if a.Overlaps(c) {
		t.Error("AMS(200km) and NYC(1000km) should not overlap (~5863km apart)")
	}
	// Overlap must be symmetric.
	f := func(lat1, lon1, r1, lat2, lon2, r2 float64) bool {
		d1 := Disc{Center: clampCoord(lat1, lon1), RadiusKm: math.Abs(math.Mod(r1, 20000))}
		d2 := Disc{Center: clampCoord(lat2, lon2), RadiusKm: math.Abs(math.Mod(r2, 20000))}
		return d1.Overlaps(d2) == d2.Overlaps(d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiscOverlapImpliedByContainment(t *testing.T) {
	// If both discs contain a common point, they must overlap.
	f := func(lat, lon float64, r1, r2 float64) bool {
		p := clampCoord(lat, lon)
		rad1 := 1 + math.Abs(math.Mod(r1, 5000))
		rad2 := 1 + math.Abs(math.Mod(r2, 5000))
		d1 := Disc{Center: p, RadiusKm: rad1}
		d2 := Disc{Center: Midpoint(p, amsterdam), RadiusKm: rad2}
		if d1.Contains(p) && d2.Contains(p) {
			return d1.Overlaps(d2)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(amsterdam, london)
	// Midpoint must be (half-way ± small epsilon) from both endpoints.
	da := amsterdam.DistanceKm(m)
	db := london.DistanceKm(m)
	if math.Abs(da-db) > 1 {
		t.Fatalf("midpoint unbalanced: %0.1f vs %0.1f km", da, db)
	}
	total := amsterdam.DistanceKm(london)
	if math.Abs(da+db-total) > 1 {
		t.Fatalf("midpoint off the great circle: %0.1f+%0.1f != %0.1f", da, db, total)
	}
	if !m.IsValid() {
		t.Fatalf("midpoint %v out of range", m)
	}
}

func TestMidpointValidRange(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := clampCoord(lat1, lon1)
		b := clampCoord(lat2, lon2)
		return Midpoint(a, b).IsValid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// clampCoord maps arbitrary float inputs from testing/quick into valid
// coordinates, keeping NaN/Inf out.
func clampCoord(lat, lon float64) Coordinate {
	if math.IsNaN(lat) || math.IsInf(lat, 0) {
		lat = 0
	}
	if math.IsNaN(lon) || math.IsInf(lon, 0) {
		lon = 0
	}
	lat = math.Mod(lat, 90)
	lon = math.Mod(lon, 180)
	return Coordinate{Lat: lat, Lon: lon}
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func BenchmarkDistanceKm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = amsterdam.DistanceKm(sydney)
	}
}
