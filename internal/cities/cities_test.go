package cities

import (
	"testing"
	"testing/quick"

	"github.com/laces-project/laces/internal/geo"
)

func TestDefaultDBBasics(t *testing.T) {
	db := Default()
	if db.Len() < 200 {
		t.Fatalf("expected at least 200 cities, got %d", db.Len())
	}
	for _, c := range db.All() {
		if c.Name == "" || c.Country == "" {
			t.Errorf("city with empty name/country: %+v", c)
		}
		if !c.Location.IsValid() {
			t.Errorf("city %s has invalid coordinates %v", c, c.Location)
		}
		if c.Population <= 0 {
			t.Errorf("city %s has non-positive population", c)
		}
		if c.Continent >= numContinents {
			t.Errorf("city %s has unknown continent %d", c, c.Continent)
		}
	}
}

func TestEveryContinentPopulated(t *testing.T) {
	db := Default()
	for _, ct := range Continents() {
		got := db.InContinent(ct)
		if len(got) < 10 {
			t.Errorf("continent %s has only %d cities, want >= 10", ct, len(got))
		}
		// Sorted by descending population.
		for i := 1; i < len(got); i++ {
			if got[i].Population > got[i-1].Population {
				t.Fatalf("InContinent(%s) not sorted: %s > %s", ct, got[i], got[i-1])
			}
		}
	}
}

func TestByName(t *testing.T) {
	db := Default()
	ams, ok := db.ByName("Amsterdam")
	if !ok {
		t.Fatal("Amsterdam not found")
	}
	if ams.Country != "NL" || ams.Continent != Europe {
		t.Fatalf("unexpected Amsterdam entry: %+v", ams)
	}
	if _, ok := db.ByName("Atlantis"); ok {
		t.Fatal("found nonexistent city")
	}
}

func TestVultrMetrosResolve(t *testing.T) {
	db := Default()
	metros := VultrMetros()
	if len(metros) != 32 {
		t.Fatalf("TANGLED should have 32 sites, got %d", len(metros))
	}
	countries := map[string]bool{}
	continents := map[Continent]bool{}
	for _, name := range metros {
		c, ok := db.ByName(name)
		if !ok {
			t.Errorf("Vultr metro %q missing from DB", name)
			continue
		}
		countries[c.Country] = true
		continents[c.Continent] = true
	}
	// Paper: "located in 19 countries on 6 continents".
	if len(countries) < 15 {
		t.Errorf("Vultr metros span %d countries, want many (paper: 19)", len(countries))
	}
	if len(continents) != 6 {
		t.Errorf("Vultr metros span %d continents, want 6", len(continents))
	}
}

func TestNearest(t *testing.T) {
	db := Default()
	got, d, ok := db.Nearest(geo.Coordinate{Lat: 52.4, Lon: 4.9})
	if !ok {
		t.Fatal("Nearest returned no city")
	}
	if got.Name != "Amsterdam" {
		t.Fatalf("Nearest(near AMS) = %s, want Amsterdam", got)
	}
	if d > 20 {
		t.Fatalf("Nearest distance = %v km, want < 20", d)
	}
}

func TestNearestEmptyDB(t *testing.T) {
	db := NewDB(nil)
	if _, _, ok := db.Nearest(geo.Coordinate{}); ok {
		t.Fatal("empty DB should report no nearest city")
	}
	if _, ok := db.HighestPopulationIn(geo.Disc{RadiusKm: 1e9}); ok {
		t.Fatal("empty DB should report no city in disc")
	}
}

func TestHighestPopulationIn(t *testing.T) {
	db := Default()
	ams, _ := db.ByName("Amsterdam")
	// A 400 km disc around Amsterdam includes London (pop 9.6M) which beats
	// every Dutch/Belgian/German city within range.
	got, ok := db.HighestPopulationIn(geo.Disc{Center: ams.Location, RadiusKm: 400})
	if !ok {
		t.Fatal("no city found in disc")
	}
	if got.Name != "London" {
		t.Fatalf("HighestPopulationIn(AMS,400km) = %s, want London", got)
	}
	// A tiny disc selects Amsterdam itself.
	got, ok = db.HighestPopulationIn(geo.Disc{Center: ams.Location, RadiusKm: 10})
	if !ok || got.Name != "Amsterdam" {
		t.Fatalf("HighestPopulationIn(AMS,10km) = %v, want Amsterdam", got)
	}
	// A disc in the middle of the Pacific contains nothing.
	if _, ok := db.HighestPopulationIn(geo.Disc{Center: geo.Coordinate{Lat: -40, Lon: -130}, RadiusKm: 500}); ok {
		t.Fatal("expected empty disc in South Pacific")
	}
}

func TestHighestPopulationInIsInDisc(t *testing.T) {
	db := Default()
	f := func(lat, lon float64, r uint16) bool {
		d := geo.Disc{
			Center:   geo.Coordinate{Lat: float64(int(lat) % 90), Lon: float64(int(lon) % 180)},
			RadiusKm: float64(r%5000) + 1,
		}
		c, ok := db.HighestPopulationIn(d)
		if !ok {
			return true
		}
		return d.Contains(c.Location)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWithinKmSortedAndComplete(t *testing.T) {
	db := Default()
	ams, _ := db.ByName("Amsterdam")
	got := db.WithinKm(ams.Location, 500)
	if len(got) < 5 {
		t.Fatalf("expected several cities within 500km of AMS, got %d", len(got))
	}
	if got[0].Name != "Amsterdam" {
		t.Fatalf("closest city to AMS should be AMS, got %s", got[0])
	}
	prev := -1.0
	for _, c := range got {
		d := c.Location.DistanceKm(ams.Location)
		if d > 500 {
			t.Fatalf("city %s at %.0f km > 500 km", c, d)
		}
		if d < prev {
			t.Fatal("WithinKm result not sorted by distance")
		}
		prev = d
	}
}

func TestNewDBDuplicateNames(t *testing.T) {
	a := City{Name: "X", Country: "AA", Location: geo.Coordinate{Lat: 1}, Population: 10}
	b := City{Name: "X", Country: "BB", Location: geo.Coordinate{Lat: 2}, Population: 20}
	db := NewDB([]City{a, b})
	got, ok := db.ByName("X")
	if !ok || got.Country != "AA" {
		t.Fatalf("duplicate name lookup should return first entry, got %+v", got)
	}
	if db.Len() != 2 {
		t.Fatalf("both entries should remain in list, got %d", db.Len())
	}
}

func TestContinentString(t *testing.T) {
	want := map[Continent]string{
		NorthAmerica: "NA", SouthAmerica: "SA", Europe: "EU",
		Africa: "AF", Asia: "AS", Oceania: "OC",
	}
	for ct, s := range want {
		if ct.String() != s {
			t.Errorf("Continent(%d).String() = %q, want %q", ct, ct.String(), s)
		}
	}
	if Continent(42).String() != "Continent(42)" {
		t.Errorf("unknown continent formatting broken: %s", Continent(42))
	}
}

func BenchmarkHighestPopulationIn(b *testing.B) {
	db := Default()
	d := geo.Disc{Center: geo.Coordinate{Lat: 50, Lon: 8}, RadiusKm: 1000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.HighestPopulationIn(d)
	}
}
