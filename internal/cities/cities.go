// Package cities embeds a world-city database used for two purposes:
//
//   - geolocation: iGreedy infers an anycast site's location as the highest
//     populated city inside the intersection area of the measurement discs
//     (§2.1 of the paper);
//   - world building: the network simulator places vantage points, anycast
//     sites and probed hosts at real city locations so that latency and
//     catchment behaviour is geographically plausible.
//
// Populations are metropolitan-area estimates; exact values are irrelevant —
// only the ordering matters for geolocation.
package cities

import (
	"fmt"
	"sort"

	"github.com/laces-project/laces/internal/geo"
)

// Continent identifies one of the six populated continents, matching the
// paper's deployment descriptions ("19 countries on 6 continents").
type Continent uint8

// Continent values.
const (
	NorthAmerica Continent = iota
	SouthAmerica
	Europe
	Africa
	Asia
	Oceania
	numContinents
)

// String returns the two-letter continent code used in tables.
func (c Continent) String() string {
	switch c {
	case NorthAmerica:
		return "NA"
	case SouthAmerica:
		return "SA"
	case Europe:
		return "EU"
	case Africa:
		return "AF"
	case Asia:
		return "AS"
	case Oceania:
		return "OC"
	default:
		return fmt.Sprintf("Continent(%d)", uint8(c))
	}
}

// Continents lists every continent once, in declaration order.
func Continents() []Continent {
	return []Continent{NorthAmerica, SouthAmerica, Europe, Africa, Asia, Oceania}
}

// City is one database entry.
type City struct {
	Name       string
	Country    string // ISO 3166-1 alpha-2
	Continent  Continent
	Location   geo.Coordinate
	Population int
}

// String formats the city as "Name, CC".
func (c City) String() string { return c.Name + ", " + c.Country }

// DB is a queryable set of cities. The zero value is empty; use Default for
// the embedded database.
type DB struct {
	cities []City
	byName map[string]int
}

// NewDB builds a DB from the given cities. Duplicate names keep the first
// entry for name lookup but remain in the list.
func NewDB(cs []City) *DB {
	db := &DB{
		cities: append([]City(nil), cs...),
		byName: make(map[string]int, len(cs)),
	}
	for i, c := range db.cities {
		if _, dup := db.byName[c.Name]; !dup {
			db.byName[c.Name] = i
		}
	}
	return db
}

var defaultDB = NewDB(worldCities)

// Default returns the embedded world-city database.
func Default() *DB { return defaultDB }

// Len returns the number of cities in the database.
func (db *DB) Len() int { return len(db.cities) }

// All returns the backing city list. Callers must not modify it.
func (db *DB) All() []City { return db.cities }

// ByName returns the city with the given name.
func (db *DB) ByName(name string) (City, bool) {
	i, ok := db.byName[name]
	if !ok {
		return City{}, false
	}
	return db.cities[i], true
}

// InContinent returns all cities in the given continent ordered by
// descending population.
func (db *DB) InContinent(ct Continent) []City {
	var out []City
	for _, c := range db.cities {
		if c.Continent == ct {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Population != out[j].Population {
			return out[i].Population > out[j].Population
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Nearest returns the city closest to p and its distance in km.
// It returns false only for an empty database.
func (db *DB) Nearest(p geo.Coordinate) (City, float64, bool) {
	if len(db.cities) == 0 {
		return City{}, 0, false
	}
	best := -1
	bestD := 0.0
	for i, c := range db.cities {
		d := c.Location.DistanceKm(p)
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	return db.cities[best], bestD, true
}

// HighestPopulationIn returns the highest-population city inside the disc.
// This is iGreedy's geolocation rule. ok is false when no city lies within
// the disc; callers then typically fall back to Nearest of the disc center.
func (db *DB) HighestPopulationIn(d geo.Disc) (City, bool) {
	best := -1
	for i, c := range db.cities {
		if !d.Contains(c.Location) {
			continue
		}
		if best == -1 || c.Population > db.cities[best].Population {
			best = i
		}
	}
	if best == -1 {
		return City{}, false
	}
	return db.cities[best], true
}

// WithinKm returns all cities within radius km of p, ordered by distance.
func (db *DB) WithinKm(p geo.Coordinate, radius float64) []City {
	type cd struct {
		c City
		d float64
	}
	var hits []cd
	for _, c := range db.cities {
		if d := c.Location.DistanceKm(p); d <= radius {
			hits = append(hits, cd{c, d})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].d < hits[j].d })
	out := make([]City, len(hits))
	for i, h := range hits {
		out[i] = h.c
	}
	return out
}

// VultrMetros lists the 32 Vultr data-centre metros used by the TANGLED
// anycast testbed (§4.2.1 of the paper, "all of its 32 sites, located in
// 19 countries on 6 continents"). Every name resolves in the default DB.
func VultrMetros() []string {
	return []string{
		"Amsterdam", "Atlanta", "Bangalore", "Chicago", "Dallas",
		"Delhi", "Frankfurt", "Honolulu", "Johannesburg", "London",
		"Los Angeles", "Madrid", "Manchester", "Melbourne", "Mexico City",
		"Miami", "Mumbai", "New York", "Osaka", "Paris",
		"Sao Paulo", "Santiago", "Seattle", "Seoul", "San Jose",
		"Singapore", "Stockholm", "Sydney", "Tel Aviv", "Tokyo",
		"Toronto", "Warsaw",
	}
}
