package external

import (
	"testing"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
)

var testWorld = mustWorld()

func mustWorld() *netsim.World {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		panic(err)
	}
	return w
}

func TestBGPToolsOverestimatesAnycast(t *testing.T) {
	day := 270
	c, err := RunBGPTools(testWorld, false, day)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Prefixes) == 0 {
		t.Fatal("BGPTools census empty")
	}
	truth := testWorld.GroundTruthAnycast(false, day)

	// Whole-prefix classification must drag unicast /24s along: count
	// targets inside BGPTools-anycast announcements that are unicast.
	unicastInside, anycastInside := 0, 0
	for bi := range c.Prefixes {
		for _, id := range testWorld.BGPPrefixesV4[bi].Targets {
			if truth[id] {
				anycastInside++
			} else {
				unicastInside++
			}
		}
	}
	if anycastInside == 0 {
		t.Fatal("BGPTools found no true anycast at all")
	}
	if unicastInside == 0 {
		t.Fatal("whole-prefix classification dragged in no unicast — Table 6's point is lost")
	}
}

func TestBGPToolsFewerVPsMissRegional(t *testing.T) {
	day := 270
	c, err := RunBGPTools(testWorld, false, day)
	if err != nil {
		t.Fatal(err)
	}
	// Our 32-VP pipeline finds anycast the 4-VP BGPTools census misses
	// (§5.8: 3,756 /24s they miss).
	truth := testWorld.GroundTruthAnycast(false, day)
	missed := 0
	for id := range truth {
		tg := &testWorld.TargetsV4[id]
		if !tg.Responsive[0] { // ICMP
			continue
		}
		if !c.ACTargets[id] && !c.Prefixes[tg.BGPPrefix] {
			missed++
		}
	}
	if missed == 0 {
		t.Fatal("4-VP census missed nothing — implausible")
	}
}

func TestSizeTable(t *testing.T) {
	day := 270
	c, err := RunBGPTools(testWorld, false, day)
	if err != nil {
		t.Fatal(err)
	}
	gcd := testWorld.GroundTruthAnycast(false, day) // GCD verdict oracle
	rows := c.SizeTable(testWorld, false, gcd)
	if len(rows) < 2 {
		t.Fatalf("size table has %d rows, want multiple prefix sizes", len(rows))
	}
	for i, r := range rows {
		if r.Bits < 8 || r.Bits > 24 {
			t.Fatalf("implausible prefix size /%d", r.Bits)
		}
		if i > 0 && rows[i-1].Bits >= r.Bits {
			t.Fatal("rows not sorted by size")
		}
		if r.Anycast < 0 || r.Unicast < 0 || r.Unresponsive < 0 {
			t.Fatalf("negative counts: %+v", r)
		}
		// Slot conservation: anycast+unicast+unresponsive = occurrence ×
		// slots per prefix of this size.
		slots := r.Occurrence * (1 << (24 - r.Bits))
		if r.Anycast+r.Unicast+r.Unresponsive != slots {
			t.Fatalf("slot conservation broken for /%d: %d+%d+%d != %d",
				r.Bits, r.Anycast, r.Unicast, r.Unresponsive, slots)
		}
	}
	tot := Totals(rows)
	if tot.Occurrence != len(c.Prefixes) {
		t.Fatalf("total occurrence %d != census prefixes %d", tot.Occurrence, len(c.Prefixes))
	}
	// /24-only announcements are the most common (Table 6).
	if rows[len(rows)-1].Bits != 24 {
		t.Fatal("no /24 announcements in census")
	}
	if s := rows[len(rows)-1].String(); s == "" {
		t.Fatal("row formatting empty")
	}
}

func TestIPInfoAccumulatesTemporaryAnycast(t *testing.T) {
	vps, err := platform.Ark(testWorld, 300, false)
	if err != nil {
		t.Fatal(err)
	}
	vps = vps[:60] // IPInfo-scale VP pool

	// Find a day where some Imperva-style prefix just left its anycast
	// window (anycast within the trailing month, unicast today).
	ii := testWorld.OperatorByName("Incapsula")
	asn := testWorld.Operators[ii].ASN
	day := -1
	var tempID int
search:
	for i := range testWorld.TargetsV4 {
		tg := &testWorld.TargetsV4[i]
		if tg.Origin != asn || len(tg.TempWindows) == 0 || !tg.Responsive[0] {
			continue
		}
		for _, win := range tg.TempWindows {
			d := win.To + 3
			// Today unicast, but a weekly snapshot inside the window.
			if d < 530 && !tg.IsAnycastAt(d) && win.To >= d-21 && win.From <= d-3 {
				// Make sure a snapshot day (d, d-7, d-14, d-21) hits the window.
				for wk := 0; wk < 4; wk++ {
					if win.Contains(d - 7*wk) {
						day, tempID = d, tg.ID
						break search
					}
				}
			}
		}
	}
	if day < 0 {
		t.Skip("no suitable temporary-anycast window in test world")
	}
	c := RunIPInfo(testWorld, vps, false, day, 4)
	if !c.Prefixes[tempID] {
		t.Fatal("IPInfo accumulation should retain the recently-anycast prefix")
	}
	// Our "daily" view: the prefix is unicast today.
	if testWorld.TargetsV4[tempID].IsAnycastAt(day) {
		t.Fatal("test setup broken: prefix still anycast today")
	}
	// Single-snapshot IPInfo must not contain it.
	single := RunIPInfo(testWorld, vps, false, day, 1)
	if single.Prefixes[tempID] {
		t.Fatal("single snapshot should not retain the reverted prefix")
	}
	if len(single.Prefixes) == 0 {
		t.Fatal("IPInfo single snapshot found nothing")
	}
}

func TestIPInfoAgreesWithTruthMostly(t *testing.T) {
	vps, _ := platform.Ark(testWorld, 300, false)
	c := RunIPInfo(testWorld, vps[:60], false, 300, 1)
	truth := testWorld.GroundTruthAnycast(false, 300)
	for id := range c.Prefixes {
		if !truth[id] {
			t.Fatalf("IPInfo latency census flagged unicast target %d", id)
		}
	}
}
