// Package external re-implements the two third-party anycast censuses the
// paper compares against (§5.8, Appendix D):
//
//   - BGPTools: an anycast-based census using very few VPs that classifies
//     entire BGP announcements as anycast as soon as a single probed
//     address inside is detected — the whole-prefix assumption Table 6
//     shows to be wrong;
//   - IPInfo: a latency-based classification accumulated over weekly
//     snapshots, which retains temporary anycast long after it reverted to
//     unicast.
package external

import (
	"fmt"
	"sort"
	"time"

	"github.com/laces-project/laces/internal/hitlist"
	"github.com/laces-project/laces/internal/igreedy"
	"github.com/laces-project/laces/internal/manycast"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
)

// BGPToolsVPCities are the (four) measurement sites of the BGPTools-style
// census ("with four VPs as of Sep '25", §2.3).
func BGPToolsVPCities() []string {
	return []string{"Amsterdam", "New York", "Singapore", "Sao Paulo"}
}

// BGPToolsCensus is the output of the BGPTools methodology: announced
// prefixes classified as anycast.
type BGPToolsCensus struct {
	// Prefixes holds the indices (into World.BGPPrefixes) of announced
	// prefixes classified anycast.
	Prefixes map[int]bool
	// ACTargets holds the underlying anycast-based candidates.
	ACTargets map[int]bool
}

// RunBGPTools executes the BGPTools-style census: a 4-VP anycast-based
// measurement, no GCD filtering, whole-announcement classification.
func RunBGPTools(w *netsim.World, v6 bool, day int) (*BGPToolsCensus, error) {
	d, err := w.NewDeployment("bgptools", BGPToolsVPCities(), netsim.PolicyUnmodified)
	if err != nil {
		return nil, err
	}
	hl := hitlist.ForDay(w, v6, day)
	res, err := manycast.Run(w, d, hl, manycast.Options{
		Protocol:      packet.ICMP,
		Start:         netsim.DayTime(day).Add(2 * time.Hour),
		Offset:        time.Second,
		MeasurementID: 0xb6,
	})
	if err != nil {
		return nil, err
	}
	c := &BGPToolsCensus{
		Prefixes:  make(map[int]bool),
		ACTargets: res.CandidateSet(),
	}
	for id := range c.ACTargets {
		c.Prefixes[w.TargetAt(v6, id).BGPPrefix] = true
	}
	return c, nil
}

// SizeRow is one row of Table 6: BGP prefixes of one size classified
// anycast by BGPTools, with the GCD verdicts of the /24s (or /48s) inside.
type SizeRow struct {
	Bits         int
	Occurrence   int
	Anycast      int // GCD-confirmed slots
	Unicast      int // responsive slots GCD calls unicast
	Unresponsive int // address slots with no hitlist entry
}

// SizeTable groups the census by announced prefix size and counts slot
// verdicts against a GCD-confirmed set (our census 𝒢), reproducing
// Table 6.
func (c *BGPToolsCensus) SizeTable(w *netsim.World, v6 bool, gcdConfirmed map[int]bool) []SizeRow {
	unit := 24
	if v6 {
		unit = 48
	}
	byBits := make(map[int]*SizeRow)
	for bi := range c.Prefixes {
		bp := w.BGPPrefixAt(v6, bi)
		row, ok := byBits[bp.Prefix.Bits()]
		if !ok {
			row = &SizeRow{Bits: bp.Prefix.Bits()}
			byBits[bp.Prefix.Bits()] = row
		}
		row.Occurrence++
		slots := 1 << (unit - bp.Prefix.Bits())
		row.Unresponsive += slots - len(bp.Targets)
		for _, id := range bp.Targets {
			if gcdConfirmed[id] {
				row.Anycast++
			} else {
				row.Unicast++
			}
		}
	}
	rows := make([]SizeRow, 0, len(byBits))
	for _, r := range byBits {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Bits < rows[j].Bits })
	return rows
}

// Totals sums a size table.
func Totals(rows []SizeRow) SizeRow {
	var t SizeRow
	for _, r := range rows {
		t.Occurrence += r.Occurrence
		t.Anycast += r.Anycast
		t.Unicast += r.Unicast
		t.Unresponsive += r.Unresponsive
	}
	return t
}

// String renders a row.
func (r SizeRow) String() string {
	return fmt.Sprintf("/%d x%d anycast=%d unicast=%d unresponsive=%d",
		r.Bits, r.Occurrence, r.Anycast, r.Unicast, r.Unresponsive)
}

// IPInfoCensus is the output of the IPInfo-style methodology.
type IPInfoCensus struct {
	// Prefixes holds target IDs classified anycast in at least one of the
	// accumulated weekly snapshots.
	Prefixes map[int]bool
	// Weeks is the number of accumulated snapshots.
	Weeks int
}

// RunIPInfo executes the IPInfo-style census at a day: latency-based
// anycast detection over the hitlist, accumulated across trailing weekly
// snapshots (§5.8: "they accumulate anycast prefixes using weekly
// snapshots" — which is why they retain temporary anycast).
func RunIPInfo(w *netsim.World, vps []netsim.VP, v6 bool, day, weeks int) *IPInfoCensus {
	if weeks < 1 {
		weeks = 1
	}
	c := &IPInfoCensus{Prefixes: make(map[int]bool), Weeks: weeks}
	for wk := 0; wk < weeks; wk++ {
		snapDay := day - 7*wk
		if snapDay < 0 {
			break
		}
		hl := hitlist.ForDay(w, v6, snapDay)
		at := netsim.DayTime(snapDay)
		samples := make([]igreedy.Sample, 0, len(vps))
		for _, e := range hl.FilterProtocol(packet.ICMP) {
			tg := w.TargetAt(v6, e.TargetID)
			samples = samples[:0]
			for _, vp := range vps {
				rtt, _, ok := w.ProbeUnicast(vp, tg, packet.ICMP, at, uint64(wk))
				if !ok {
					continue
				}
				samples = append(samples, igreedy.Sample{VP: vp.Name, Loc: vp.Loc, RTT: rtt})
			}
			if igreedy.Detect(samples, igreedy.Options{}) {
				c.Prefixes[e.TargetID] = true
			}
		}
	}
	return c
}
