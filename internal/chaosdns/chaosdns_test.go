package chaosdns

import (
	"testing"

	"github.com/laces-project/laces/internal/hitlist"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/platform"
)

var (
	testWorld  = mustWorld()
	testHL     = hitlist.ForDay(testWorld, false, 0)
	testCensus = mustCensus()
)

func mustWorld() *netsim.World {
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		panic(err)
	}
	return w
}

func mustCensus() map[int]Observation {
	d, err := platform.Tangled(testWorld, netsim.PolicyUnmodified)
	if err != nil {
		panic(err)
	}
	obs, _ := Census(testWorld, d, testHL, netsim.DayTime(40), nil, 1, nil)
	return obs
}

func TestCensusCoversDNSHitlist(t *testing.T) {
	dns := testHL.FilterProtocol(packet.DNS)
	if len(testCensus) != len(dns) {
		t.Fatalf("census covers %d of %d DNS entries", len(testCensus), len(dns))
	}
}

func TestPerSiteRecordsEnumerateSites(t *testing.T) {
	// Anycast nameservers with per-site CHAOS records should show several
	// distinct identities across the 32 workers.
	found := false
	for id, obs := range testCensus {
		tg := &testWorld.TargetsV4[id]
		if tg.Chaos != netsim.ChaosPerSite || !tg.IsAnycastAt(40) || len(tg.Sites) < 8 {
			continue
		}
		found = true
		if !obs.Supported {
			t.Fatalf("per-site CHAOS target %d reported unsupported", id)
		}
		if obs.UniqueRecords() < 2 {
			t.Errorf("wide anycast NS %d returned %d unique records", id, obs.UniqueRecords())
		}
		// Enumeration is bounded by the true site count.
		if obs.UniqueRecords() > len(tg.Sites) {
			t.Errorf("NS %d: %d records > %d sites", id, obs.UniqueRecords(), len(tg.Sites))
		}
	}
	if !found {
		t.Fatal("no wide per-site CHAOS nameservers in test world")
	}
}

func TestCoLocatedServersConfoundChaos(t *testing.T) {
	// Appendix C: unicast nameservers with co-located load-balanced
	// servers return multiple distinct records — a false anycast signal.
	confounded := 0
	for id, obs := range testCensus {
		tg := &testWorld.TargetsV4[id]
		if tg.Chaos == netsim.ChaosPerServer && tg.Kind == netsim.Unicast && obs.MultiRecord() {
			confounded++
		}
	}
	if confounded == 0 {
		t.Fatal("no co-located multi-record unicast nameservers — the Appendix C confounder is missing")
	}
}

func TestReplicatedRecordsSingle(t *testing.T) {
	for id, obs := range testCensus {
		tg := &testWorld.TargetsV4[id]
		if tg.Chaos == netsim.ChaosReplicated && obs.Supported && obs.UniqueRecords() != 1 {
			t.Fatalf("replicated-record NS %d returned %d records", id, obs.UniqueRecords())
		}
	}
}

func TestUnsupportedNameservers(t *testing.T) {
	s := Summarize(testCensus)
	if s.Probed == 0 {
		t.Fatal("nothing probed")
	}
	if s.Unsupported == 0 {
		t.Fatal("every nameserver supports CHAOS — RFC 4892 optionality not modelled")
	}
	if s.MultiRecord == 0 {
		t.Fatal("no multi-record nameservers")
	}
	if s.MultiRecord+s.Unsupported > s.Probed {
		t.Fatal("summary counts inconsistent")
	}
}

func TestGRootDetectableOnlyViaDNS(t *testing.T) {
	// §6: G-Root answers neither ICMP nor TCP; the CHAOS/DNS path is the
	// only way to see it.
	gi := testWorld.OperatorByName("G-Root")
	asn := testWorld.Operators[gi].ASN
	seen := false
	for id, obs := range testCensus {
		if testWorld.TargetsV4[id].Origin == asn && obs.Supported {
			seen = true
		}
	}
	if !seen {
		t.Fatal("G-Root invisible to the DNS census")
	}
}
