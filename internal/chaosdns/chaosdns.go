// Package chaosdns implements the CHAOS TXT census of Appendix C: querying
// nameservers for their RFC 4892 identity (id.server/TXT/CH) from every
// worker of the anycast deployment, counting distinct records as a
// (weak) anycast indicator and enumeration baseline.
//
// The paper's conclusions reproduce here: CHAOS records over-count sites
// for load-balanced co-located servers ("auth1"/"auth2"), under-cover
// because many nameservers do not implement CHAOS, and yet provide a
// useful side-by-side enumeration comparison (Fig 12).
package chaosdns

import (
	"strconv"
	"time"

	"github.com/laces-project/laces/internal/budget"
	"github.com/laces-project/laces/internal/hitlist"
	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/packet"
	"github.com/laces-project/laces/internal/par"
)

// Stage is the CHAOS census's metric label in the laces_stage_* series.
const Stage = "chaos"

// Observation is the CHAOS census output for one nameserver.
type Observation struct {
	TargetID int
	// Supported is false when the target does not answer CHAOS queries
	// (RFC 4892 is optional).
	Supported bool
	// Records is the set of distinct TXT values observed across workers.
	Records map[string]bool
}

// UniqueRecords returns the number of distinct identity strings.
func (o Observation) UniqueRecords() int { return len(o.Records) }

// MultiRecord reports whether the target returned more than one distinct
// record — the naive CHAOS anycast indicator, confounded by co-located
// servers.
func (o Observation) MultiRecord() bool { return len(o.Records) > 1 }

// Census queries every DNS-responsive hitlist entry from every worker of
// the deployment and collects the identity records. The entry loop is
// sharded across `parallelism` goroutines (<= 0 means GOMAXPROCS, 1 is
// sequential); per-target observations are independent, so the returned
// map is identical at every worker count. The gate, when non-nil, is the
// responsible-probing admission pre-pass (one budget unit per deployment
// site per entry, decided sequentially in hitlist order); denied entries
// are skipped and accounted in the returned Usage. reg, when non-nil,
// receives the stage's telemetry (never feeding back into the result).
func Census(w *netsim.World, d *netsim.Deployment, hl *hitlist.Hitlist, at time.Time, gate *budget.Gate, parallelism int, reg *obs.Registry) (map[int]Observation, budget.Usage) {
	entries := hl.FilterProtocol(packet.DNS)
	var usage budget.Usage
	if gate != nil {
		perEntry := int64(d.NumSites())
		entries = budget.Filter(gate, entries, &usage, func(e hitlist.Entry) (*netsim.Target, int64) {
			return w.TargetAt(hl.V6, e.TargetID), perEntry
		})
	}
	si := reg.Stage(Stage, len(entries))
	cells := make([]obs.Cell, par.NumShards(len(entries), parallelism))
	all, probes := par.Gather(len(entries), parallelism, func(start, end int, sh *par.Shard[Observation]) {
		cell := &cells[sh.Index]
		ssp := si.Span.Child("shard" + strconv.Itoa(sh.Index))
		for _, e := range entries[start:end] {
			tg := w.TargetAt(hl.V6, e.TargetID)
			ob := Observation{TargetID: e.TargetID, Records: make(map[string]bool)}
			for wk := 0; wk < d.NumSites(); wk++ {
				ctx := netsim.ProbeCtx{
					At:   at.Add(time.Duration(wk) * time.Second),
					Flow: netsim.FlowKey{Proto: packet.DNS, StaticFlow: 0xc4, VaryingPayload: uint64(wk + 1)},
					Gap:  time.Second,
					Seq:  uint64(e.TargetID),
				}
				sh.Count++
				del, ok := w.ProbeAnycast(d, wk, tg, ctx)
				if !ok {
					continue
				}
				cell.Replies++
				// Each query observes the record of the site (or co-located
				// server) that answered it.
				rec, ok := w.ChaosRecord(tg, del.SiteIdx, uint64(e.TargetID)*64+uint64(wk))
				if !ok {
					continue
				}
				ob.Supported = true
				ob.Records[rec] = true
			}
			sh.Out = append(sh.Out, ob)
			si.Done.Inc()
		}
		ssp.End()
	})
	gate.Observe(probes)
	si.Probes.Add(probes)
	_, replies := obs.MergeCells(cells)
	si.Replies.Add(replies)
	si.Denied.Add(int64(usage.OptOutTargets + usage.BudgetTargets))
	si.End()
	out := make(map[int]Observation, len(entries))
	for _, ob := range all {
		out[ob.TargetID] = ob
	}
	return out, usage
}

// Stats summarises a CHAOS census the way Appendix C reports it.
type Stats struct {
	Probed      int // nameservers probed
	Unsupported int // no CHAOS support
	MultiRecord int // returned multiple distinct records
}

// Summarize computes census statistics.
func Summarize(census map[int]Observation) Stats {
	var s Stats
	for _, o := range census {
		s.Probed++
		if !o.Supported {
			s.Unsupported++
			continue
		}
		if o.MultiRecord() {
			s.MultiRecord++
		}
	}
	return s
}
