package chaosdns

import (
	"reflect"
	"testing"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/platform"
)

// TestCensusParallelByteIdentical: the sharded CHAOS census must return
// the same observation map as the sequential run at every worker count.
func TestCensusParallelByteIdentical(t *testing.T) {
	d, err := platform.Tangled(testWorld, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	at := netsim.DayTime(40)
	seq, _ := Census(testWorld, d, testHL, at, nil, 1, nil)
	for _, workers := range []int{0, 2, 5, 16} {
		par, _ := Census(testWorld, d, testHL, at, nil, workers, nil)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallelism=%d: CHAOS census diverges from sequential run", workers)
		}
	}
}
