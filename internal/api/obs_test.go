package api

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"github.com/laces-project/laces/internal/netsim"
	"github.com/laces-project/laces/internal/obs"
	"github.com/laces-project/laces/internal/platform"
)

// newInstrumentedServer builds a server on its own small world (the
// package-level testWorld stays untouched by telemetry) with a registry
// attached and pprof enabled.
func newInstrumentedServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	w, err := netsim.New(netsim.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := platform.Tangled(w, netsim.PolicyUnmodified)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(w, d,
		func(day int, v6 bool) ([]netsim.VP, error) { return platform.Ark(w, day, v6) },
		func() int { return 3 })
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	if err := s.Instrument(reg); err != nil {
		t.Fatal(err)
	}
	s.EnablePprof = true
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

var (
	promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	// Label values may themselves contain braces (route patterns like
	// /v1/prefix/{prefix...}), so the label block is matched greedily up
	// to the final "} value".
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)
)

// TestMetricsEndpointLiveCensus runs a census through the instrumented
// server and checks the /metrics exposition: valid Prometheus text
// format 0.0.4 carrying at least 25 distinct series spanning the
// stage, netsim, budget, archive-bridge and HTTP families.
func TestMetricsEndpointLiveCensus(t *testing.T) {
	ts, _ := newInstrumentedServer(t)

	resp, err := http.Get(ts.URL + "/v1/census?day=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("census status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}

	series := make(map[string]bool) // name+labels → seen
	typed := make(map[string]bool)  // names with a # TYPE line
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("malformed comment line: %q", line)
			}
			if !promNameRe.MatchString(fields[2]) {
				t.Fatalf("bad metric name in %q", line)
			}
			if fields[1] == "TYPE" {
				typed[fields[2]] = true
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		// Histogram expansion lines (_bucket/_sum/_count) belong to their
		// base family; the base name must still carry a TYPE header.
		base := m[1]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(base, suf) && typed[strings.TrimSuffix(base, suf)] {
				base = strings.TrimSuffix(base, suf)
				break
			}
		}
		if !typed[base] {
			t.Fatalf("sample %q has no # TYPE header", line)
		}
		series[m[1]+m[2]] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(series) < 25 {
		t.Fatalf("exposition carries %d distinct series, want >= 25", len(series))
	}
	for _, want := range []string{
		"laces_stage_probes_total",
		"laces_netsim_probes_total",
		"laces_census_days_total",
		"laces_archive_decodes_total",
		"laces_http_requests_total",
	} {
		found := false
		for s := range series {
			if strings.HasPrefix(s, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s series in exposition", want)
		}
	}
}

// TestMetricsRouteAbsentWithoutRegistry: a server never Instrumented
// must not expose /metrics at all.
func TestMetricsRouteAbsentWithoutRegistry(t *testing.T) {
	resp, err := http.Get(testServer.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uninstrumented /metrics status = %d, want 404", resp.StatusCode)
	}
}

// TestDebugTraceEndpoint: /debug/trace serves the registry's trace
// export in both formats — JSONL by default, Chrome trace_event JSON on
// ?format=chrome — rejects unknown formats, and is absent from an
// uninstrumented server's routing table.
func TestDebugTraceEndpoint(t *testing.T) {
	ts, reg := newInstrumentedServer(t)
	reg.SetTraceComponent("api")
	sp := reg.StartTrace("serve")
	sp.SetAttr("route", "/v1/census")
	sp.End()
	reg.EnableFlight("api", 64).Record("request", "census", nil, 1)

	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	ex, err := obs.ReadTraceJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Spans) == 0 || ex.Spans[0].Name != "serve" || len(ex.Events) != 1 {
		t.Fatalf("trace export spans=%d events=%d", len(ex.Spans), len(ex.Events))
	}

	resp, err = http.Get(ts.URL + "/debug/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome trace status %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export carries no events")
	}

	resp, err = http.Get(ts.URL + "/debug/trace?format=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus format status = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(testServer.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uninstrumented /debug/trace status = %d, want 404", resp.StatusCode)
	}
}

// TestPprofOptIn: /debug/pprof/ answers on an EnablePprof server and is
// absent from the default routing table.
func TestPprofOptIn(t *testing.T) {
	ts, _ := newInstrumentedServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	resp, err = http.Get(testServer.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof on default server status = %d, want 404", resp.StatusCode)
	}
}

// TestErrorResponsesAreTypedJSON pins the response-writing contract for
// error paths: the 4xx status is on the status line (headers before
// body), the body is JSON with an "error" key, and the Content-Type
// is application/json with nosniff — on both instrumented and bare
// servers.
func TestErrorResponsesAreTypedJSON(t *testing.T) {
	ts, _ := newInstrumentedServer(t)
	for _, base := range []string{testServer.URL, ts.URL} {
		for _, tc := range []struct {
			path string
			want int
		}{
			{"/v1/census?day=bogus", http.StatusBadRequest},
			{"/v1/prefix/not-a-prefix", http.StatusBadRequest},
			{"/v1/timeline/10.0.0.0%2F24", http.StatusNotFound}, // no index attached
			{"/v1/days", http.StatusNotFound},                   // no archive attached
		} {
			code, doc := getURL(t, base+tc.path)
			if code != tc.want {
				t.Errorf("%s: status %d, want %d", tc.path, code, tc.want)
			}
			if doc["error"] == "" {
				t.Errorf("%s: no error message in body", tc.path)
			}
		}
	}
}

// TestErrorCounterIncrements: a 4xx response shows up in the route's
// laces_http_errors_total series.
func TestErrorCounterIncrements(t *testing.T) {
	ts, reg := newInstrumentedServer(t)
	resp, err := http.Get(ts.URL + "/v1/census?day=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	errs := reg.Counter("laces_http_errors_total",
		"HTTP responses with status >= 400, by route.", obs.L("route", "GET /v1/census"))
	if errs.Value() != 1 {
		t.Fatalf("error counter = %d, want 1", errs.Value())
	}
	reqs := reg.Counter("laces_http_requests_total",
		"HTTP requests served, by route.", obs.L("route", "GET /v1/census"))
	if reqs.Value() != 1 {
		t.Fatalf("request counter = %d, want 1", reqs.Value())
	}
}

// getURL is get() against an arbitrary server, also checking the typed
// JSON headers every response must carry.
func getURL(t *testing.T, url string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s: Content-Type = %q, want application/json", url, ct)
	}
	if ns := resp.Header.Get("X-Content-Type-Options"); ns != "nosniff" {
		t.Errorf("%s: X-Content-Type-Options = %q, want nosniff", url, ns)
	}
	var doc map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, doc
}
